// Ablation benchmarks for the extension subsystems: the disk-based
// Hexastore (§7 future work), database cracking (§6), the Kowari cyclic
// baseline as a real store (§2.2.2), the cost-based SPARQL planner
// ([41]), and the Turtle front end. These complement the per-figure
// benchmarks in bench_test.go.
package hexastore_test

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"hexastore/internal/core"
	"hexastore/internal/cracking"
	"hexastore/internal/disk"
	"hexastore/internal/graph"
	"hexastore/internal/kowari"
	"hexastore/internal/rdf"
	"hexastore/internal/sparql"
)

// BenchmarkDiskVsMemory compares the in-memory sextuple store with the
// disk-based one on the paper's LQ1 access shape (object-bound,
// property-unbound: everyone related to a course). The disk store pays
// page traversal and CRC costs; the shape of the win (object-headed
// lookup beats anything property-oriented) holds on both substrates.
func BenchmarkDiskVsMemory(b *testing.B) {
	s, ids := lubmFixture(b)

	// Mirror the in-memory store's triples into a disk store.
	var triples [][3]disk.ID
	s.Hexa.Match(core.None, core.None, core.None, func(sub, p, o core.ID) bool {
		triples = append(triples, [3]disk.ID{sub, p, o})
		return true
	})
	dst, err := disk.Create(b.TempDir(), disk.Options{CacheSize: 4096})
	if err != nil {
		b.Fatal(err)
	}
	defer dst.Close()
	if err := dst.BulkLoad(triples); err != nil {
		b.Fatal(err)
	}
	course := ids.Course10

	b.Run("MemoryOSP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			s.Hexa.Match(core.None, core.None, course, func(_, _, _ core.ID) bool { n++; return true })
		}
	})
	b.Run("DiskOSP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			if err := dst.Match(disk.None, disk.None, course, func(_, _, _ disk.ID) bool { n++; return true }); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MemoryFullScan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			s.Hexa.Match(core.None, core.None, core.None, func(_, _, _ core.ID) bool { n++; return true })
		}
	})
	b.Run("DiskFullScan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			if err := dst.Match(disk.None, disk.None, disk.None, func(_, _, _ disk.ID) bool { n++; return true }); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCrackingVsPresorted quantifies the §6 trade-off: paying a
// full sort at load time versus cracking the column incrementally as a
// side effect of the query workload. "FirstTouch" includes construction
// plus one pass over every property; "Converged" measures the steady
// state after the workload has cracked (or sorted) everything.
func BenchmarkCrackingVsPresorted(b *testing.B) {
	s, _ := lubmFixture(b)
	var data []cracking.Triple
	s.Hexa.Match(core.None, core.None, core.None, func(sub, p, o core.ID) bool {
		data = append(data, cracking.Triple{p, sub, o}) // pso permutation
		return true
	})
	props := s.Hexa.HeadIDs(core.PSO)

	b.Run("PresortedFirstTouch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cp := append([]cracking.Triple(nil), data...)
			sortPSO(cp)
			n := 0
			for _, p := range props {
				scanSorted(cp, p, func(cracking.Triple) { n++ })
			}
		}
	})
	b.Run("CrackingFirstTouch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			col := cracking.NewColumn(append([]cracking.Triple(nil), data...))
			n := 0
			for _, p := range props {
				col.Scan(p, func(cracking.Triple) bool { n++; return true })
			}
		}
	})

	sorted := append([]cracking.Triple(nil), data...)
	sortPSO(sorted)
	col := cracking.NewColumn(append([]cracking.Triple(nil), data...))
	for _, p := range props {
		col.Scan(p, func(cracking.Triple) bool { return true })
	}
	b.Run("PresortedConverged", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			for _, p := range props {
				scanSorted(sorted, p, func(cracking.Triple) { n++ })
			}
		}
	})
	b.Run("CrackingConverged", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			for _, p := range props {
				col.Scan(p, func(cracking.Triple) bool { n++; return true })
			}
		}
	})
}

func sortPSO(ts []cracking.Triple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})
}

// scanSorted binary-searches the presorted column for head p.
func scanSorted(ts []cracking.Triple, p core.ID, fn func(cracking.Triple)) {
	lo, hi := 0, len(ts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ts[mid][0] < p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for ; lo < len(ts) && ts[lo][0] == p; lo++ {
		fn(ts[lo])
	}
}

// BenchmarkKowariStoreVsHexastore compares the real cyclic-index store
// with the sextuple store on the operation §2.2.2 singles out: a sorted
// subject list for a property, which Kowari must assemble and sort from
// its pos ordering while the Hexastore reads its pso vector keys.
func BenchmarkKowariStoreVsHexastore(b *testing.B) {
	s, ids := lubmFixture(b)
	kb := kowari.NewBuilder(s.Dict)
	s.Hexa.Match(core.None, core.None, core.None, func(sub, p, o core.ID) bool {
		kb.Add(sub, p, o)
		return true
	})
	ks := kb.Build()
	p := ids.TeacherOf

	b.Run("HexastorePSOKeys", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = s.Hexa.Head(core.PSO, p).Keys()
		}
	})
	b.Run("KowariSortFromPOS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = ks.SubjectsForProperty(p)
		}
	})
}

// BenchmarkPlannerStatsVsGreedy compares the default greedy pattern
// ordering with the statistics-driven planner on a join where ordering
// matters: a highly selective pattern buried behind an unselective one.
func BenchmarkPlannerStatsVsGreedy(b *testing.B) {
	st := core.New()
	rng := rand.New(rand.NewSource(77))
	common := rdf.NewIRI("common")
	rare := rdf.NewIRI("rare")
	for i := 0; i < 30_000; i++ {
		st.AddTriple(rdf.T(numIRI("s", rng.Intn(3000)), common, numIRI("o", rng.Intn(3000))))
	}
	for i := 0; i < 30; i++ {
		st.AddTriple(rdf.T(numIRI("s", i), rare, rdf.NewLiteral("x")))
	}
	src := `SELECT ?s ?o WHERE { ?s <common> ?o . ?s <rare> "x" }`
	q, err := sparql.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	pl := sparql.NewPlanner(graph.Memory(st))

	b.Run("GreedyDefault", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sparql.Eval(graph.Memory(st), q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("StatsPlanner", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pl.Eval(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func numIRI(prefix string, n int) rdf.Term {
	return rdf.NewIRI(prefix + itoa(n))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkTurtleVsNTriplesParse measures the front-end cost of the two
// serializations over the same data.
func BenchmarkTurtleVsNTriplesParse(b *testing.B) {
	var nt, ttl strings.Builder
	ttl.WriteString("@prefix ex: <http://ex/> .\n")
	for i := 0; i < 5000; i++ {
		s, p, o := itoa(i%500), itoa(i%7), itoa(i)
		nt.WriteString("<http://ex/s" + s + "> <http://ex/p" + p + "> <http://ex/o" + o + "> .\n")
		ttl.WriteString("ex:s" + s + " ex:p" + p + " ex:o" + o + " .\n")
	}
	ntSrc, ttlSrc := nt.String(), ttl.String()

	b.Run("NTriples", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ts, err := rdf.NewReader(strings.NewReader(ntSrc)).ReadAll()
			if err != nil || len(ts) != 5000 {
				b.Fatalf("parse: %v (%d)", err, len(ts))
			}
		}
	})
	b.Run("Turtle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ts, err := rdf.ParseTurtle(ttlSrc)
			if err != nil || len(ts) != 5000 {
				b.Fatalf("parse: %v (%d)", err, len(ts))
			}
		}
	})
}

// BenchmarkDiskBulkLoadVsIncremental measures the disk store's two load
// paths.
func BenchmarkDiskBulkLoadVsIncremental(b *testing.B) {
	s, _ := lubmFixture(b)
	var triples [][3]disk.ID
	s.Hexa.Match(core.None, core.None, core.None, func(sub, p, o core.ID) bool {
		triples = append(triples, [3]disk.ID{sub, p, o})
		return true
	})
	if len(triples) > 30_000 {
		triples = triples[:30_000]
	}

	b.Run("BulkLoad", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st, err := disk.Create(b.TempDir(), disk.Options{CacheSize: 4096})
			if err != nil {
				b.Fatal(err)
			}
			if err := st.BulkLoad(triples); err != nil {
				b.Fatal(err)
			}
			st.Close()
		}
	})
	b.Run("IncrementalAdd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st, err := disk.Create(b.TempDir(), disk.Options{CacheSize: 4096})
			if err != nil {
				b.Fatal(err)
			}
			for _, tr := range triples {
				if _, err := st.Add(tr[0], tr[1], tr[2]); err != nil {
					b.Fatal(err)
				}
			}
			st.Close()
		}
	})
}
