// Benchmarks regenerating every table and figure of the paper's
// evaluation (one Benchmark per figure; see DESIGN.md §4 for the
// experiment index) plus the ablation studies of DESIGN.md §5.
//
// The paper plots response time against growing data prefixes; here each
// figure's benchmark times the three competing stores on a fixed-size
// load (the cmd/hexbench tool produces the full prefix sweeps). Shapes,
// not absolute numbers, are the reproduction target: Hexastore ≤ COVP2 ≤
// COVP1 throughout, with the gaps the paper reports.
package hexastore_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"hexastore"
	"hexastore/internal/barton"
	"hexastore/internal/bench"
	"hexastore/internal/core"
	"hexastore/internal/delta"
	"hexastore/internal/disk"
	"hexastore/internal/graph"
	"hexastore/internal/idlist"
	"hexastore/internal/lubm"
	"hexastore/internal/queries"
	"hexastore/internal/query"
	"hexastore/internal/shard"
	"hexastore/internal/sparql"
	"hexastore/internal/triplestore"
	"hexastore/internal/vp"
)

// Shared fixtures, built once.
var (
	bartonOnce sync.Once
	bartonSt   *queries.Stores
	bartonIDs  queries.BartonIDs

	lubmOnce sync.Once
	lubmSt   *queries.Stores
	lubmIDs  queries.LUBMIDs
)

func bartonFixture(b *testing.B) (*queries.Stores, queries.BartonIDs) {
	b.Helper()
	bartonOnce.Do(func() {
		data := barton.Config{Records: 20_000, Seed: 1}.GenerateAll()
		bartonSt = queries.Load(data)
		bartonIDs = queries.ResolveBarton(bartonSt.Dict)
	})
	return bartonSt, bartonIDs
}

func lubmFixture(b *testing.B) (*queries.Stores, queries.LUBMIDs) {
	b.Helper()
	lubmOnce.Do(func() {
		data := lubm.Config{
			Universities: 5, Seed: 1, DeptsPerUniv: 8,
			UndergradPerDept: 60, GradPerDept: 15, CoursesPerDept: 15,
		}.GenerateAll()
		lubmSt = queries.Load(data)
		lubmIDs = queries.ResolveLUBM(lubmSt.Dict)
	})
	return lubmSt, lubmIDs
}

// run3 benchmarks the three store variants of one figure.
func run3(b *testing.B, hexa, covp1, covp2 func()) {
	b.Run("Hexastore", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hexa()
		}
	})
	b.Run("COVP1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			covp1()
		}
	})
	b.Run("COVP2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			covp2()
		}
	})
}

func BenchmarkFig03BartonQ1(b *testing.B) {
	s, ids := bartonFixture(b)
	run3(b,
		func() { queries.BQ1Hexa(s.Hexa, ids) },
		func() { queries.BQ1COVP(s.C1, ids) },
		func() { queries.BQ1COVP(s.C2, ids) })
}

// benchRestricted runs the six series of the 28-property figures.
func benchRestricted(b *testing.B, s *queries.Stores, ids queries.BartonIDs,
	hexa func(props []queries.ID), covp func(st *vp.Store, props []queries.ID)) {
	b.Run("Hexastore", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hexa(nil)
		}
	})
	b.Run("COVP1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			covp(s.C1, nil)
		}
	})
	b.Run("COVP2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			covp(s.C2, nil)
		}
	})
	b.Run("Hexastore_28", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hexa(ids.Restricted28)
		}
	})
	b.Run("COVP1_28", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			covp(s.C1, ids.Restricted28)
		}
	})
	b.Run("COVP2_28", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			covp(s.C2, ids.Restricted28)
		}
	})
}

func BenchmarkFig04BartonQ2(b *testing.B) {
	s, ids := bartonFixture(b)
	benchRestricted(b, s, ids,
		func(props []queries.ID) { queries.BQ2Hexa(s.Hexa, ids, props) },
		func(st *vp.Store, props []queries.ID) { queries.BQ2COVP(st, ids, props) })
}

func BenchmarkFig05BartonQ3(b *testing.B) {
	s, ids := bartonFixture(b)
	benchRestricted(b, s, ids,
		func(props []queries.ID) { queries.BQ3Hexa(s.Hexa, ids, props) },
		func(st *vp.Store, props []queries.ID) { queries.BQ3COVP(st, ids, props) })
}

func BenchmarkFig06BartonQ4(b *testing.B) {
	s, ids := bartonFixture(b)
	benchRestricted(b, s, ids,
		func(props []queries.ID) { queries.BQ4Hexa(s.Hexa, ids, props) },
		func(st *vp.Store, props []queries.ID) { queries.BQ4COVP(st, ids, props) })
}

func BenchmarkFig07BartonQ5(b *testing.B) {
	s, ids := bartonFixture(b)
	run3(b,
		func() { queries.BQ5Hexa(s.Hexa, ids) },
		func() { queries.BQ5COVP(s.C1, ids) },
		func() { queries.BQ5COVP(s.C2, ids) })
}

func BenchmarkFig08BartonQ6(b *testing.B) {
	s, ids := bartonFixture(b)
	benchRestricted(b, s, ids,
		func(props []queries.ID) { queries.BQ6Hexa(s.Hexa, ids, props) },
		func(st *vp.Store, props []queries.ID) { queries.BQ6COVP(st, ids, props) })
}

func BenchmarkFig09BartonQ7(b *testing.B) {
	s, ids := bartonFixture(b)
	run3(b,
		func() { queries.BQ7Hexa(s.Hexa, ids) },
		func() { queries.BQ7COVP(s.C1, ids) },
		func() { queries.BQ7COVP(s.C2, ids) })
}

func BenchmarkFig10LUBMQ1(b *testing.B) {
	s, ids := lubmFixture(b)
	run3(b,
		func() { queries.RelatedHexa(s.Hexa, ids.Course10) },
		func() { queries.RelatedCOVP(s.C1, ids.Course10) },
		func() { queries.RelatedCOVP(s.C2, ids.Course10) })
}

func BenchmarkFig11LUBMQ2(b *testing.B) {
	s, ids := lubmFixture(b)
	run3(b,
		func() { queries.RelatedHexa(s.Hexa, ids.University0) },
		func() { queries.RelatedCOVP(s.C1, ids.University0) },
		func() { queries.RelatedCOVP(s.C2, ids.University0) })
}

func BenchmarkFig12LUBMQ3(b *testing.B) {
	s, ids := lubmFixture(b)
	run3(b,
		func() { queries.LQ3Hexa(s.Hexa, ids.AssocProf10) },
		func() { queries.LQ3COVP(s.C1, ids.AssocProf10) },
		func() { queries.LQ3COVP(s.C2, ids.AssocProf10) })
}

func BenchmarkFig13LUBMQ4(b *testing.B) {
	s, ids := lubmFixture(b)
	run3(b,
		func() { queries.LQ4Hexa(s.Hexa, ids) },
		func() { queries.LQ4COVP(s.C1, ids) },
		func() { queries.LQ4COVP(s.C2, ids) })
}

func BenchmarkFig14LUBMQ5(b *testing.B) {
	s, ids := lubmFixture(b)
	run3(b,
		func() { queries.LQ5Hexa(s.Hexa, ids) },
		func() { queries.LQ5COVP(s.C1, ids) },
		func() { queries.LQ5COVP(s.C2, ids) })
}

// BenchmarkFig15Memory reports index bytes per store as custom metrics
// (bytes/triple), reproducing the memory-consumption comparison.
func BenchmarkFig15Memory(b *testing.B) {
	for _, panel := range []struct {
		name    string
		fixture func(*testing.B) (*queries.Stores, int)
	}{
		{"Barton", func(b *testing.B) (*queries.Stores, int) {
			s, _ := bartonFixture(b)
			return s, s.Hexa.Len()
		}},
		{"LUBM", func(b *testing.B) (*queries.Stores, int) {
			s, _ := lubmFixture(b)
			return s, s.Hexa.Len()
		}},
	} {
		b.Run(panel.name, func(b *testing.B) {
			s, n := panel.fixture(b)
			for i := 0; i < b.N; i++ {
				_ = s.Hexa.Stats()
			}
			b.ReportMetric(float64(s.Hexa.Stats().SizeBytes())/float64(n), "hexa-B/triple")
			b.ReportMetric(float64(s.C1.Stats().SizeBytes())/float64(n), "covp1-B/triple")
			b.ReportMetric(float64(s.C2.Stats().SizeBytes())/float64(n), "covp2-B/triple")
		})
	}
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §5).

// BenchmarkAblationMergeVsHashJoin: §4.2 claims first-step pairwise
// joins being merge-joins is a win; compare against a hash join on the
// same sorted inputs.
func BenchmarkAblationMergeVsHashJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	var ba, bb idlist.Builder
	for i := 0; i < 200_000; i++ {
		ba.Add(idlist.ID(rng.Intn(1_000_000) + 1))
		bb.Add(idlist.ID(rng.Intn(1_000_000) + 1))
	}
	la, lb := ba.Finish(), bb.Finish()
	b.Run("MergeJoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			idlist.MergeJoin(la, lb, func(idlist.ID) { n++ })
		}
	})
	b.Run("HashJoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			idlist.HashJoin(la, lb, func(idlist.ID) { n++ })
		}
	})
}

// BenchmarkAblationCyclicVsSextuple: Kowari-style cyclic orderings
// ({spo, pos, osp}) cannot provide a sorted subject list per property
// (pso); they must assemble it from the pos index. Sextuple indexing
// reads it directly.
func BenchmarkAblationCyclicVsSextuple(b *testing.B) {
	s, ids := lubmFixture(b)
	p := ids.DegreeProps[0]
	b.Run("SextuplePSO", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = s.Hexa.Head(core.PSO, p).Keys()
		}
	})
	b.Run("CyclicViaPOS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var lists []*idlist.List
			s.Hexa.Head(core.POS, p).Range(func(_ core.ID, subjs *idlist.List) bool {
				lists = append(lists, subjs)
				return true
			})
			_ = idlist.UnionAll(lists)
		}
	})
}

// BenchmarkAblationPathExpression: §4.3 — with pso and pos the first
// path join is a merge-join; a subject-sorted-only store must collect
// an unsorted frontier and sort it.
func BenchmarkAblationPathExpression(b *testing.B) {
	s, ids := lubmFixture(b)
	advisorID, _ := s.Dict.Lookup(lubm.PropAdvisor)
	teacherID := ids.TeacherOf
	path := []query.ID{advisorID, teacherID} // advisee → advisor → course
	eng := query.NewEngine(s.Hexa)
	b.Run("HexastorePsoPos", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = eng.PathEndpoints(path)
		}
	})
	b.Run("SubjectSortedOnly", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// COVP1-style: frontier assembled unsorted from the pso
			// table of the first property, deduped and sorted, then
			// joined per hop.
			var fb idlist.Builder
			s.C1.SubjectVec(path[0]).Range(func(_ vp.ID, objs *idlist.List) bool {
				objs.Range(func(o vp.ID) bool {
					fb.Add(o)
					return true
				})
				return true
			})
			frontier := fb.Finish()
			for _, p := range path[1:] {
				sv := s.C1.SubjectVec(p)
				var nb idlist.Builder
				idlist.MergeJoin(frontier, sv.KeyList(), func(node vp.ID) {
					objs, _ := sv.Find(node)
					objs.Range(func(o vp.ID) bool {
						nb.Add(o)
						return true
					})
				})
				frontier = nb.Finish()
			}
		}
	})
}

// BenchmarkUpdateCost: single-triple insert+delete maintains six indices
// in a Hexastore versus one table in COVP1 (§4.2's noted deficiency).
func BenchmarkUpdateCost(b *testing.B) {
	data := lubm.Config{Universities: 2, Seed: 3}.GenerateAll()
	s := queries.Load(data)
	b.Run("HexastoreAddRemove", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			id := core.ID(1_000_000 + i)
			s.Hexa.Add(id, 1, id+1)
			s.Hexa.Remove(id, 1, id+1)
		}
	})
	b.Run("COVP1AddRemove", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			id := vp.ID(1_000_000 + i)
			s.C1.Add(id, 1, id+1)
			s.C1.Remove(id, 1, id+1)
		}
	})
}

// BenchmarkBulkLoadVsIncremental quantifies the Builder's advantage.
func BenchmarkBulkLoadVsIncremental(b *testing.B) {
	data := lubm.Config{Universities: 1, Seed: 4}.GenerateAll()
	dict := hexastore.NewDictionary()
	encoded := make([][3]core.ID, len(data))
	for i, t := range data {
		s, p, o := dict.EncodeTriple(t)
		encoded[i] = [3]core.ID{s, p, o}
	}
	b.Run("Builder", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bl := core.NewBuilder(dict)
			for _, t := range encoded {
				bl.Add(t[0], t[1], t[2])
			}
			_ = bl.Build()
		}
	})
	b.Run("IncrementalAdd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st := hexastore.NewWithDictionary(dict)
			for _, t := range encoded {
				st.Add(t[0], t[1], t[2])
			}
		}
	})
}

// BenchmarkBulkLoad times the sort-once index construction sequentially
// and with the full worker budget on a pre-encoded triple set — the
// isolated cost the parallel build pipeline (Builder.BuildParallel)
// attacks. On a multi-core machine the Parallel series should win by
// roughly the core count's share of the sort time; with GOMAXPROCS=1
// the two are within noise (the parallel path degrades to the
// sequential consuming build).
func BenchmarkBulkLoad(b *testing.B) {
	data := lubm.Config{Universities: 3, Seed: 4}.GenerateAll()
	dict := hexastore.NewDictionary()
	encoded := core.EncodeTriples(dict, data, runtime.GOMAXPROCS(0))
	run := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bl := core.NewBuilder(dict)
				for _, t := range encoded {
					bl.Add(t[0], t[1], t[2])
				}
				_ = bl.BuildParallel(workers)
			}
		}
	}
	b.Run("Sequential", run(1))
	b.Run("Parallel", run(runtime.GOMAXPROCS(0)))
}

// BenchmarkParallelEncode times the dictionary-encoding stage of the
// load pipeline at several worker counts over the sharded dictionary.
func BenchmarkParallelEncode(b *testing.B) {
	data := lubm.Config{Universities: 2, Seed: 4}.GenerateAll()
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = core.EncodeTriples(hexastore.NewDictionary(), data, workers)
			}
		})
	}
}

// BenchmarkSPARQLJoinWorkers times the 3-pattern cyclic join with
// intra-query parallelism off and at the full budget. The join's
// binding tables exceed the parallel row threshold, so at GOMAXPROCS>1
// the expansion and probe steps partition across cores.
func BenchmarkSPARQLJoinWorkers(b *testing.B) {
	s, _ := lubmFixture(b)
	q, err := sparql.Parse(`
		SELECT ?student ?course WHERE {
			?student <lubm:advisor> ?prof .
			?prof <lubm:teacherOf> ?course .
			?student <lubm:takesCourse> ?course
		}`)
	if err != nil {
		b.Fatal(err)
	}
	g := graph.Memory(s.Hexa)
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sparql.EvalWorkers(g, q, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshotRestore measures the disk-image future-work feature.
func BenchmarkSnapshotRestore(b *testing.B) {
	s, _ := lubmFixture(b)
	var buf bytes.Buffer
	if err := s.Hexa.Snapshot(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.Run("Snapshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var w bytes.Buffer
			if err := s.Hexa.Snapshot(&w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Restore", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Restore(bytes.NewReader(raw)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSPARQLJoin times the general-purpose BGP evaluator.
func BenchmarkSPARQLJoin(b *testing.B) {
	s, _ := lubmFixture(b)
	q, err := sparql.Parse(`
		SELECT ?student ?course WHERE {
			?student <lubm:advisor> ?prof .
			?prof <lubm:teacherOf> ?course .
			?student <lubm:takesCourse> ?course
		}`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sparql.Eval(graph.Memory(s.Hexa), q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSPARQLJoinCompression times the same cyclic join on the
// block-compressed (default) and raw index layouts of the memory
// backend — the acceptance tracker for the space/speed trade: the
// compressed path must stay within ~1.2x of raw (block-skipping merges
// and smaller working sets win back most of the varint decode cost).
func BenchmarkSPARQLJoinCompression(b *testing.B) {
	data := lubm.Config{
		Universities: 5, Seed: 1, DeptsPerUniv: 8,
		UndergradPerDept: 60, GradPerDept: 15, CoursesPerDept: 15,
	}.GenerateAll()
	q, err := sparql.Parse(`
		SELECT ?student ?course WHERE {
			?student <lubm:advisor> ?prof .
			?prof <lubm:teacherOf> ?course .
			?student <lubm:takesCourse> ?course
		}`)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name     string
		compress bool
	}{{"Raw", false}, {"Compressed", true}} {
		b.Run(mode.name, func(b *testing.B) {
			bld := core.NewBuilder(nil)
			bld.SetCompression(mode.compress)
			for _, t := range data {
				bld.AddTriple(t)
			}
			st := bld.BuildParallel(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sparql.Eval(graph.Memory(st), q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSPARQLJoinBackends times the evaluator suite of
// bench.SPARQLQueries — the same workload `hexbench -json` snapshots —
// across the three Graph backends: the in-memory Hexastore and the disk
// store take the merge-join engine (both implement graph.SortedSource),
// the flat baseline takes the batched bind-probe fallback.
func BenchmarkSPARQLJoinBackends(b *testing.B) {
	s, _ := lubmFixture(b)

	// Disk backend loaded once with the same triples.
	var triples [][3]core.ID
	s.Hexa.Match(core.None, core.None, core.None, func(ts, tp, to core.ID) bool {
		triples = append(triples, [3]core.ID{ts, tp, to})
		return true
	})
	ds, err := disk.Create(b.TempDir(), disk.Options{CacheSize: 1024})
	if err != nil {
		b.Fatal(err)
	}
	defer ds.Close()
	// Share the dictionary so query constants resolve to the same ids.
	for id := core.ID(1); int(id) <= s.Dict.Len(); id++ {
		ds.Dictionary().Encode(s.Dict.MustDecode(id))
	}
	if err := ds.BulkLoad(triples); err != nil {
		b.Fatal(err)
	}

	base := triplestore.New(s.Dict)
	for _, t := range triples {
		base.Add(t[0], t[1], t[2])
	}

	backends := []struct {
		name string
		g    graph.Graph
	}{
		{"Memory", graph.Memory(s.Hexa)},
		{"Disk", graph.Disk(ds)},
		{"Baseline", graph.Baseline(base)},
	}
	for _, bq := range bench.SPARQLQueries {
		q, err := sparql.Parse(bq.Query)
		if err != nil {
			b.Fatal(err)
		}
		for _, be := range backends {
			b.Run(bq.ID+"/"+be.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := sparql.Eval(be.g, q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkWrite01 is the Go-benchmark twin of the hexbench write01
// figure: the bench.MixedWorkload mixed read/write driver (concurrent
// chain-join SELECTs against a stream of INSERT/DELETE batches) per
// concurrency discipline — the request-locked store versus the MVCC
// delta overlay, with and without the group-committed WAL. The
// BENCH_<rev>.json trajectory tracks the same workload via
// `hexbench -json`.
func BenchmarkWrite01(b *testing.B) {
	s, _ := lubmFixture(b)
	var triples [][3]core.ID
	s.Hexa.Match(core.None, core.None, core.None, func(ts, tp, to core.ID) bool {
		triples = append(triples, [3]core.ID{ts, tp, to})
		return true
	})
	q, err := sparql.Parse(`SELECT ?student ?course WHERE {
		?student <lubm:advisor> ?prof .
		?prof <lubm:teacherOf> ?course }`)
	if err != nil {
		b.Fatal(err)
	}
	build := func() *core.Store {
		bl := core.NewBuilder(s.Dict)
		bl.AddAll(triples)
		return bl.BuildParallel(runtime.GOMAXPROCS(0))
	}

	b.Run("Locked", func(b *testing.B) {
		g := graph.Memory(build())
		var mu sync.RWMutex
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			err := bench.MixedWorkload(func() error {
				mu.RLock()
				defer mu.RUnlock()
				_, err := sparql.Eval(g, q)
				return err
			}, func(ops []graph.TripleOp) error {
				mu.Lock()
				defer mu.Unlock()
				_, _, err := graph.ApplyTriples(g, ops)
				return err
			}, fmt.Sprintf("locked%d", i))
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, withWAL := range []bool{false, true} {
		name := "Overlay"
		if withWAL {
			name = "OverlayWAL"
		}
		b.Run(name, func(b *testing.B) {
			opts := delta.Options{}
			if withWAL {
				opts.WALPath = b.TempDir() + "/bench.wal"
			}
			ov, err := delta.Open(graph.Memory(build()), opts)
			if err != nil {
				b.Fatal(err)
			}
			defer ov.Close()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				err := bench.MixedWorkload(func() error {
					_, err := sparql.Eval(ov, q)
					return err
				}, func(ops []graph.TripleOp) error {
					_, _, err := ov.ApplyTriples(ops)
					return err
				}, fmt.Sprintf("%s%d", name, i))
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShard01 is the Go-benchmark twin of the hexbench shard01
// figure: the bench.ShardReadWorkload concurrent-reader workload
// (scatter joins, a predicate scan, and routed bound-subject lookups,
// intra-query parallelism pinned to 1) against the scatter-gather
// serving tier at 1, 2 and 4 subject-hash shards. The BENCH_<rev>.json
// trajectory tracks the same workload via `hexbench -json`.
func BenchmarkShard01(b *testing.B) {
	data := lubm.Config{
		Universities: 2, Seed: 1, DeptsPerUniv: 8,
		UndergradPerDept: 60, GradPerDept: 15, CoursesPerDept: 15,
	}.GenerateAll()
	qs, err := bench.ShardQueries(data)
	if err != nil {
		b.Fatal(err)
	}
	for _, nshards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", nshards), func(b *testing.B) {
			dict := hexastore.NewDictionary()
			cl, err := shard.OpenCluster(shard.Config{
				Shards:  nshards,
				Dict:    dict,
				Load:    core.EncodeTriples(dict, data, runtime.GOMAXPROCS(0)),
				Workers: runtime.GOMAXPROCS(0),
			})
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := bench.ShardReadWorkload(cl, qs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
