// Command datagen emits the synthetic benchmark data sets as N-Triples.
//
// Usage:
//
//	datagen -dataset lubm -universities 10 > lubm.nt
//	datagen -dataset barton -records 120000 -o barton.nt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"hexastore/internal/barton"
	"hexastore/internal/lubm"
	"hexastore/internal/rdf"
)

func main() {
	var (
		dataset = flag.String("dataset", "lubm", `data set to generate: "lubm" or "barton"`)
		univs   = flag.Int("universities", 10, "LUBM universities")
		records = flag.Int("records", 120000, "Barton catalog records")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	nw := rdf.NewWriter(bw)

	n := 0
	emit := func(t rdf.Triple) bool {
		if err := nw.Write(t); err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		n++
		return true
	}

	switch *dataset {
	case "lubm":
		lubm.Config{Universities: *univs, Seed: *seed}.Generate(emit)
	case "barton":
		barton.Config{Records: *records, Seed: *seed}.Generate(emit)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q (want lubm or barton)\n", *dataset)
		os.Exit(2)
	}
	if err := nw.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	if err := bw.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d triples\n", n)
}
