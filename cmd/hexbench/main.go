// Command hexbench regenerates the tables behind every figure of the
// Hexastore paper's evaluation section (Figures 3–15).
//
// Usage:
//
//	hexbench -all                        # every figure, default scale
//	hexbench -fig fig10                  # one figure
//	hexbench -fig fig04,fig05 -records 60000 -steps 6 -repeats 3
//	hexbench -torture -seed 7 -runs 200  # crash-consistency torture campaign
//
// -torture runs no benchmarks: it drives the crash-consistency torture
// harness (internal/iofault/torture) — seeded randomized workloads
// crashed at every enumerated fault point, reopened, and verified
// against an in-memory reference — and exits non-zero on any invariant
// violation or differential mismatch.
//
// Output is one aligned table per figure: rows are data-prefix sizes,
// columns are the competing stores (response time in seconds, memory in
// MB for fig15a/fig15b). The paper plots these series on log axes; the
// reproduction target is the shape — who wins and by how many orders of
// magnitude — not absolute numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"

	"hexastore/internal/bench"
	"hexastore/internal/govern"
	"hexastore/internal/iofault/torture"
	"hexastore/internal/sparql"
)

func main() {
	var (
		figFlag  = flag.String("fig", "", "comma-separated figure ids (e.g. fig03,fig10); empty with -all for everything")
		all      = flag.Bool("all", false, "run every figure")
		records  = flag.Int("records", 30000, "Barton catalog records to generate")
		univs    = flag.Int("universities", 10, "LUBM universities to generate")
		steps    = flag.Int("steps", 6, "prefix points per figure")
		repeats  = flag.Int("repeats", 3, "timing repeats per point (best-of)")
		seed     = flag.Int64("seed", 1, "generator seed")
		quiet    = flag.Bool("q", false, "suppress progress output")
		listFlag = flag.Bool("list", false, "list known figure ids and exit")
		ablation = flag.String("ablation", "", "comma-separated extension ablations (disk,cracking,kowari) or 'all'")
		write    = flag.Bool("write", false, "run the write01 mixed read/write figure (locked store vs MVCC overlay vs overlay+WAL)")
		jsonOut  = flag.Bool("json", false, "also run the bulk-load, mixed read/write and SPARQL-engine suites and write timings+allocs to BENCH_<rev>.json")
		rev      = flag.String("rev", "", "revision label for the -json snapshot (default: current git short hash, else 'dev')")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0),
			"parallelism budget for the load pipeline and intra-query joins; 1 = sequential")
		timeout = flag.Duration("timeout", 0,
			"per-query deadline applied to every benchmark query (0 = none)")
		memBudget = flag.String("mem-budget", "",
			"per-query soft memory budget applied to every benchmark query (e.g. 64M; empty = unlimited)")
		tortureRun = flag.Bool("torture", false, "run the crash-consistency torture campaign instead of benchmarks")
		runs       = flag.Int("runs", 200, "crash runs for -torture (split across scenarios)")
		batches    = flag.Int("batches", 0, "workload batches per -torture run (0 = harness default)")
	)
	flag.Parse()
	sparql.SetMaxWorkers(*workers)
	budget, err := govern.ParseBytes(*memBudget)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hexbench: -mem-budget: %v\n", err)
		os.Exit(2)
	}
	sparql.SetDefaultLimits(budget, *timeout)

	if *tortureRun {
		logf := func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
		if *quiet {
			logf = nil
		}
		res, err := torture.Run(torture.Options{
			Seed:    *seed,
			Runs:    *runs,
			Batches: *batches,
			Logf:    logf,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "hexbench: torture: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("torture: %d crash runs over %d fault points, %d violations (seed %d)\n",
			res.Runs, res.FaultPoints, len(res.Violations), *seed)
		for _, v := range res.Violations {
			fmt.Printf("  %s\n", v)
		}
		if len(res.Violations) > 0 {
			os.Exit(1)
		}
		return
	}

	if *listFlag {
		for _, id := range bench.FigureIDs {
			fmt.Println(id)
		}
		for _, id := range bench.AblationIDs {
			fmt.Println("ablation-" + id)
		}
		for _, id := range bench.LoadFigureIDs {
			fmt.Println(id)
		}
		for _, id := range bench.WriteFigureIDs {
			fmt.Println(id)
		}
		for _, id := range bench.ShardFigureIDs {
			fmt.Println(id)
		}
		for _, id := range bench.GovernFigureIDs {
			fmt.Println(id)
		}
		for _, id := range bench.TraceFigureIDs {
			fmt.Println(id)
		}
		for _, id := range bench.ServeFigureIDs {
			fmt.Println(id)
		}
		return
	}

	var ids []string
	if *figFlag != "" {
		ids = strings.Split(*figFlag, ",")
	} else if !*all && *ablation == "" && !*jsonOut && !*write {
		fmt.Fprintln(os.Stderr, "hexbench: pass -all, -fig <ids>, -ablation <ids>, -write, or -json; see -list for ids")
		os.Exit(2)
	}

	// -list advertises the load and write suites alongside the paper
	// figures; accept their ids through -fig too instead of bouncing
	// users to the dedicated flags.
	runLoad, runWrite, runSpace, runShard, runGovern, runTrace, runServe := false, *write, false, false, false, false, false
	figIDs := ids[:0]
	for _, id := range ids {
		switch id {
		case "load01":
			runLoad = true
		case "write01":
			runWrite = true
		case "space01":
			runSpace = true
		case "shard01":
			runShard = true
		case "govern01":
			runGovern = true
		case "trace_overhead":
			runTrace = true
		case "serve01", "serve01lat":
			runServe = true
		default:
			figIDs = append(figIDs, id)
		}
	}
	ids = figIDs

	progress := func(msg string) {
		if !*quiet {
			fmt.Fprintln(os.Stderr, msg)
		}
	}

	cfg := bench.Config{
		BartonRecords:    *records,
		LUBMUniversities: *univs,
		Steps:            *steps,
		Repeats:          *repeats,
		Seed:             *seed,
		Workers:          *workers,
	}
	// runSuite executes one benchmark suite, prints its tables, and
	// collects the figures for the -json snapshot; any failure is fatal.
	var snapshot []*bench.Figure
	runSuite := func(run func(bench.Config, func(string)) ([]*bench.Figure, error)) {
		figs, err := run(cfg, progress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hexbench: %v\n", err)
			os.Exit(1)
		}
		for _, f := range figs {
			if err := f.WriteTable(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "hexbench: %v\n", err)
				os.Exit(1)
			}
		}
		snapshot = append(snapshot, figs...)
	}

	if *all || len(ids) > 0 {
		runSuite(func(cfg bench.Config, progress func(string)) ([]*bench.Figure, error) {
			return bench.Run(cfg, ids, progress)
		})
	}

	if *ablation != "" {
		var abl []string
		if *ablation != "all" {
			abl = strings.Split(*ablation, ",")
		}
		runSuite(func(cfg bench.Config, progress func(string)) ([]*bench.Figure, error) {
			return bench.RunAblations(cfg, abl, progress)
		})
	}

	if runLoad && !*jsonOut {
		runSuite(bench.RunLoad)
	}
	if runWrite && !*jsonOut {
		runSuite(bench.RunWrite)
	}
	if runSpace && !*jsonOut {
		runSuite(bench.RunSpace)
	}
	if runShard && !*jsonOut {
		runSuite(bench.RunShard)
	}
	if runGovern && !*jsonOut {
		runSuite(bench.RunGovern)
	}
	if runTrace && !*jsonOut {
		runSuite(bench.RunTrace)
	}
	if runServe && !*jsonOut {
		runSuite(bench.RunServe)
	}

	if *jsonOut {
		runSuite(bench.RunLoad)
		runSuite(bench.RunWrite)
		runSuite(bench.RunSpace)
		runSuite(bench.RunShard)
		runSuite(bench.RunGovern)
		runSuite(bench.RunTrace)
		runSuite(bench.RunServe)
		runSuite(bench.RunSPARQL)

		label := *rev
		if label == "" {
			label = gitRev()
		}
		name := fmt.Sprintf("BENCH_%s.json", label)
		f, err := os.Create(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hexbench: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteJSON(f, label, cfg, snapshot); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "hexbench: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "hexbench: %v\n", err)
			os.Exit(1)
		}
		progress("wrote " + name)
	}
}

// gitRev returns the current short commit hash, or "dev" outside a git
// checkout.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	return strings.TrimSpace(string(out))
}
