// Command hexload bulk-loads an N-Triples file into a Hexastore and
// reports the index statistics the paper's space argument (§4.1) is
// phrased in, optionally writing a binary snapshot for fast reloads.
//
// Usage:
//
//	hexload data.nt
//	hexload -turtle data.ttl
//	hexload -snapshot data.hex data.nt
//	hexload -restore data.hex
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"hexastore"
)

func main() {
	var (
		snapshot = flag.String("snapshot", "", "write a binary snapshot to this path after loading")
		restore  = flag.String("restore", "", "load from a snapshot instead of an N-Triples file")
		turtle   = flag.Bool("turtle", false, "parse the input file as Turtle instead of N-Triples")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0),
			"goroutines for the load pipeline (parse, dictionary encoding, index build); "+
				"1 = sequential, which also makes -snapshot output byte-reproducible "+
				"(parallel encoding assigns dictionary ids in arrival order)")
	)
	flag.Parse()

	var st *hexastore.Store
	start := time.Now()
	switch {
	case *restore != "":
		f, err := os.Open(*restore)
		if err != nil {
			fatal(err)
		}
		st, err = hexastore.Restore(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("restored %s in %v\n", *restore, time.Since(start).Round(time.Millisecond))
	case flag.NArg() == 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		if *turtle {
			st, err = hexastore.LoadTurtleParallel(f, *workers)
		} else {
			st, err = hexastore.LoadNTriplesParallel(f, *workers)
		}
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %s in %v (workers=%d)\n",
			flag.Arg(0), time.Since(start).Round(time.Millisecond), *workers)
	default:
		fmt.Fprintln(os.Stderr, "usage: hexload [-turtle] [-workers n] [-snapshot out.hex] data.nt | hexload -restore in.hex")
		os.Exit(2)
	}

	stats := st.Stats()
	fmt.Printf("triples:             %d\n", stats.Triples)
	fmt.Printf("distinct terms:      %d\n", st.Dictionary().Len())
	fmt.Printf("index headers:       %d\n", stats.Headers)
	fmt.Printf("vector entries:      %d\n", stats.VectorEntries)
	fmt.Printf("terminal-list ids:   %d\n", stats.ListEntries)
	fmt.Printf("total entries:       %d\n", stats.TotalEntries())
	fmt.Printf("expansion factor:    %.3f (worst case 5.0 over a triples table)\n", stats.ExpansionFactor())
	fmt.Printf("index bytes (est.):  %d\n", stats.SizeBytes())

	if *snapshot != "" {
		f, err := os.Create(*snapshot)
		if err != nil {
			fatal(err)
		}
		start = time.Now()
		if err := st.Snapshot(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		info, _ := os.Stat(*snapshot)
		fmt.Printf("snapshot:            %s (%d bytes, %v)\n",
			*snapshot, info.Size(), time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "hexload: %v\n", err)
	os.Exit(1)
}
