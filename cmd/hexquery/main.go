// Command hexquery loads RDF data and runs SPARQL-subset queries
// against a Hexastore.
//
// Usage:
//
//	hexquery -f data.nt 'SELECT ?s WHERE { ?s <type> <Text> } LIMIT 10'
//	hexquery -turtle data.ttl 'ASK { <alice> <knows> <bob> }'
//	hexquery -restore data.hex 'SELECT DISTINCT ?p WHERE { <alice> ?p ?o }'
//	hexquery -disk /path/to/store 'SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 5'
//	hexquery -workers 4 -f data.nt 'SELECT ?s WHERE { ?s ?p ?o } LIMIT 10'
//
// With no query argument the query text is read from stdin. -workers
// bounds the parallelism of both the load pipeline and the intra-query
// join workers (default GOMAXPROCS), matching hexload/hexserver/hexbench.
// -timeout puts a deadline on the query and -mem-budget caps its engine
// memory (oversized join state spills to temp files; 4x the budget
// fails the query instead of OOMing). -explain prints the query plan
// (pattern order and cardinality estimates) without executing;
// -explain-analyze executes and prints the full span tree with
// estimated vs actual rows per step — equivalent to prefixing the query
// with EXPLAIN or EXPLAIN ANALYZE.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"hexastore"
	"hexastore/internal/disk"
	"hexastore/internal/govern"
	"hexastore/internal/graph"
	"hexastore/internal/obs"
	"hexastore/internal/sparql"
)

func main() {
	var (
		file    = flag.String("f", "", "N-Triples file to load")
		turtle  = flag.String("turtle", "", "Turtle file to load instead of -f")
		restore = flag.String("restore", "", "binary snapshot to load instead of -f")
		diskDir = flag.String("disk", "", "query an existing disk-based Hexastore directory")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0),
			"parallelism budget for the load pipeline and intra-query joins; 1 = sequential")
		timeout = flag.Duration("timeout", 0,
			"per-query deadline; an expired query fails with context.DeadlineExceeded (0 = none)")
		memBudget = flag.String("mem-budget", "",
			"per-query soft memory budget (e.g. 64M, 1G); oversized join state spills to temp files, and 4x the budget kills the query instead of OOMing (empty = unlimited)")
		explain = flag.Bool("explain", false,
			"print the query plan (planner choice, pattern order, cardinality estimates) without executing")
		explainAnalyze = flag.Bool("explain-analyze", false,
			"execute the query with tracing and print the span tree (estimated vs actual rows per step)")
	)
	flag.Parse()
	sparql.SetMaxWorkers(*workers)
	budget, err := govern.ParseBytes(*memBudget)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hexquery: -mem-budget: %v\n", err)
		os.Exit(2)
	}
	sparql.SetDefaultLimits(budget, *timeout)

	var (
		st      *hexastore.Store
		diskSt  *disk.Store
		triples int
	)
	switch {
	case *diskDir != "":
		diskSt, err = disk.Open(*diskDir, disk.Options{CacheSize: 4096})
	case *restore != "":
		var f *os.File
		if f, err = os.Open(*restore); err == nil {
			st, err = hexastore.Restore(f)
			f.Close()
		}
	case *turtle != "":
		var f *os.File
		if f, err = os.Open(*turtle); err == nil {
			st, err = hexastore.LoadTurtleParallel(f, *workers)
			f.Close()
		}
	case *file != "":
		var f *os.File
		if f, err = os.Open(*file); err == nil {
			st, err = hexastore.LoadNTriplesParallel(f, *workers)
			f.Close()
		}
	default:
		fmt.Fprintln(os.Stderr, "hexquery: pass -f data.nt, -turtle data.ttl, -restore data.hex, or -disk dir")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hexquery: %v\n", err)
		os.Exit(1)
	}

	src := ""
	if flag.NArg() > 0 {
		src = flag.Arg(0)
	} else {
		raw, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hexquery: reading stdin: %v\n", err)
			os.Exit(1)
		}
		src = string(raw)
	}

	var g graph.Graph
	if diskSt != nil {
		g = graph.Disk(diskSt)
		defer diskSt.Close()
	} else {
		g = hexastore.AsGraph(st)
	}
	triples = g.Len()

	start := time.Now()
	var res *hexastore.Result
	if *explain || *explainAnalyze {
		q, perr := sparql.Parse(src)
		if perr != nil {
			fmt.Fprintf(os.Stderr, "hexquery: %v\n", perr)
			os.Exit(1)
		}
		// The flags mirror the in-query EXPLAIN [ANALYZE] prefix; a
		// prefix already present in the query text wins.
		if q.Explain == sparql.ExplainNone {
			if *explain {
				q.Explain = sparql.ExplainPlan
			} else {
				q.Explain = sparql.ExplainExec
			}
		}
		tr := obs.NewTrace("query")
		res, err = sparql.EvalOpts(context.Background(), g, q, sparql.EvalOptions{Trace: tr})
		tr.Finish()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hexquery: %v\n", err)
			os.Exit(1)
		}
		tr.WriteTree(os.Stdout)
		if q.Explain == sparql.ExplainPlan {
			fmt.Fprintf(os.Stderr, "planned in %v over %d triples\n", time.Since(start), triples)
			return
		}
	} else {
		res, err = sparql.ExecSource(g, src)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hexquery: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	if res.IsAsk {
		fmt.Println(res.Answer)
		fmt.Fprintf(os.Stderr, "answered in %v over %d triples\n", elapsed, triples)
		return
	}
	res.SortRows()
	for _, v := range res.Vars {
		fmt.Printf("?%s\t", v)
	}
	fmt.Println()
	for _, row := range res.Rows {
		for _, v := range res.Vars {
			fmt.Printf("%s\t", row[v])
		}
		fmt.Println()
	}
	fmt.Fprintf(os.Stderr, "%d rows in %v over %d triples\n", len(res.Rows), elapsed, triples)
}
