// Command hexserver serves a Hexastore over HTTP: a SPARQL-subset query
// endpoint (SPARQL 1.1 JSON results), bulk N-Triples/Turtle ingestion,
// and index statistics.
//
// Usage:
//
//	hexserver [-addr :8751] [-load data.nt] [-turtle data.ttl]
//
// Endpoints:
//
//	GET/POST /sparql?query=SELECT...   run a query
//	POST     /triples                  ingest N-Triples (or text/turtle)
//	GET      /stats                    index statistics
//	GET      /healthz                  liveness probe
//
// Example session:
//
//	hexserver -load university.nt &
//	curl 'localhost:8751/sparql?query=SELECT+?s+WHERE+{?s+?p+?o}+LIMIT+5'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"hexastore/internal/core"
	"hexastore/internal/rdf"
	"hexastore/internal/server"
)

func main() {
	addr := flag.String("addr", ":8751", "listen address")
	load := flag.String("load", "", "N-Triples file to load at startup")
	turtle := flag.String("turtle", "", "Turtle file to load at startup")
	flag.Parse()

	st := core.New()
	if *load != "" {
		if err := loadFile(st, *load, false); err != nil {
			log.Fatalf("hexserver: %v", err)
		}
	}
	if *turtle != "" {
		if err := loadFile(st, *turtle, true); err != nil {
			log.Fatalf("hexserver: %v", err)
		}
	}
	log.Printf("hexserver: %d triples loaded, listening on %s", st.Len(), *addr)
	srv := server.New(st)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatalf("hexserver: %v", err)
	}
}

func loadFile(st *core.Store, path string, asTurtle bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var triples []rdf.Triple
	if asTurtle {
		triples, err = rdf.NewTurtleReader(f).ReadAll()
	} else {
		triples, err = rdf.NewReader(f).ReadAll()
	}
	if err != nil {
		return fmt.Errorf("load %s: %w", path, err)
	}
	for _, t := range triples {
		st.AddTriple(t)
	}
	return nil
}
