// Command hexserver serves a Hexastore over HTTP: a SPARQL-subset query
// endpoint (SPARQL 1.1 JSON results), a SPARQL UPDATE endpoint
// (INSERT DATA / DELETE DATA), bulk N-Triples/Turtle ingestion, and
// store statistics. The same HTTP API serves either the in-memory
// Hexastore (default) or the disk-based Hexastore (-disk), optionally
// behind the live-update subsystem (-live / -wal): an MVCC delta overlay
// in which queries pin consistent snapshots and never block on updates,
// plus a group-committed write-ahead log for crash recovery.
//
// With -shards=N the store becomes a sharded scatter-gather serving
// tier: N subject-hash-partitioned stores behind one shared dictionary,
// each with its own delta overlay (and, with -wal, its own log at
// <path>.<i>). Bound-subject patterns route to the owning shard; scans
// scatter to the shards a predicate-aware router selects and gather
// globally sorted streams, so query results are identical for every
// shard count. -ship serves the per-shard WALs over TCP, and -follow
// runs a read-only replica that tails them (from files or tcp://).
//
// Usage:
//
//	hexserver [-addr :8751] [-disk dir] [-load data.nt] [-turtle data.ttl]
//	          [-live] [-wal path] [-compact-threshold n]
//	          [-shards n] [-ship addr]
//	          [-max-queries n] [-query-timeout d] [-mem-budget 64M]
//	          [-plan-cache n] [-result-cache-bytes 32M]
//	hexserver -follow <walprefix|tcp://addr> [-follow-shards n] [-shards n]
//
// Endpoints:
//
//	GET/POST /sparql?query=SELECT...   run a query
//	POST     /sparql update=INSERT...  apply an update (also Content-Type application/sparql-update)
//	POST     /triples                  ingest N-Triples (or text/turtle)
//	GET      /stats                    store statistics (incl. per-shard rows when -shards)
//	GET      /healthz                  liveness probe (process up)
//	GET      /readyz                   readiness probe: 503 while draining for shutdown,
//	                                   while the store is sticky-degraded (poisoned WAL,
//	                                   failed compaction), or while a replica's followers
//	                                   are degraded / beyond -max-replica-lag
//
// Example session:
//
//	hexserver -load university.nt -shards 4 -wal university.wal &
//	curl 'localhost:8751/sparql?query=SELECT+?s+WHERE+{?s+?p+?o}+LIMIT+5'
//	curl -d 'update=INSERT DATA { <s> <p> <o> }' localhost:8751/sparql
//
// With -disk the store persists across restarts; startup files bulk-load
// only into a fresh (empty) disk store. With -wal, updates survive a
// crash: the log replays on the next start, and SIGINT/SIGTERM trigger a
// graceful shutdown — in-flight requests drain, then the store
// checkpoints (delta compacted, snapshot/flush written, WAL truncated;
// with -shards, every shard in turn) before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"hexastore/internal/core"
	"hexastore/internal/delta"
	"hexastore/internal/dictionary"
	"hexastore/internal/disk"
	"hexastore/internal/govern"
	"hexastore/internal/graph"
	"hexastore/internal/rdf"
	"hexastore/internal/server"
	"hexastore/internal/shard"
	"hexastore/internal/sparql"
)

func main() {
	addr := flag.String("addr", ":8751", "listen address")
	diskDir := flag.String("disk", "", "serve a disk-based Hexastore rooted at this directory (created if absent)")
	load := flag.String("load", "", "N-Triples file to load at startup")
	turtle := flag.String("turtle", "", "Turtle file to load at startup")
	cache := flag.Int("cache", 4096, "disk buffer pool capacity in pages")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"goroutines for the startup bulk load and per-query join parallelism; 1 = sequential")
	live := flag.Bool("live", false,
		"serve through the MVCC delta overlay: queries pin snapshots and never block on updates")
	walPath := flag.String("wal", "",
		"write-ahead log path for crash-safe updates (implies -live); replayed on start, truncated at checkpoints; with -shards, shard i logs to <path>.<i>")
	compactThreshold := flag.Int("compact-threshold", 0,
		"delta size triggering background compaction (0 = default, negative = manual only)")
	shards := flag.Int("shards", 1,
		"partition the store into this many subject-hash shards served scatter-gather (each behind its own delta overlay)")
	ship := flag.String("ship", "",
		"serve the WAL(s) on this TCP address for -follow replicas (requires -wal)")
	follow := flag.String("follow", "",
		"run as a read-only replica tailing leader WALs: a path (shard i at <path>.<i> when -follow-shards > 1) or tcp://host:port of a -ship leader")
	followShards := flag.Int("follow-shards", 1, "number of leader WAL streams to tail in -follow mode (the leader's -shards)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	drainGrace := flag.Duration("drain-grace", 0,
		"delay between failing /readyz and stopping the listener on shutdown, so load balancers observe the flip and stop routing here first")
	maxInflight := flag.Int("max-inflight", 1024,
		"concurrently served non-query requests before load-shedding with 503 + Retry-After (0 = unlimited); /sparql traffic is admitted by the query governor instead (-max-queries)")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second,
		"per-request deadline; expiry answers 503 (0 = unlimited)")
	maxQueries := flag.Int("max-queries", 64,
		"concurrently executing /sparql queries; excess waits briefly in a bounded deadline-aware queue, then sheds with 503 + Retry-After (0 = unlimited)")
	queryTimeout := flag.Duration("query-timeout", 0,
		"per-query deadline; an expired query answers 408 (0 = none beyond -request-timeout)")
	memBudget := flag.String("mem-budget", "",
		"per-query soft memory budget (e.g. 64M, 1G); oversized join state spills to temp files, and 4x the budget fails the query with 503 instead of OOMing (empty = unlimited)")
	slowQuery := flag.Duration("slow-query", time.Second,
		"log queries slower than this, with peak memory and spilled bytes (0 = disable)")
	planCache := flag.Int("plan-cache", sparql.DefaultPlanCacheSize,
		"query-shape plan cache capacity in entries: repeated query shapes reuse the memoized join order until statistics refresh (0 = disable)")
	resultCache := flag.String("result-cache-bytes", "32M",
		"snapshot-epoch result cache budget (e.g. 32M, 1G): repeated read queries answer from cache until any write bumps the store epoch (empty or 0 = disable)")
	maxReplicaLag := flag.Duration("max-replica-lag", 30*time.Second,
		"replica readiness bound: /readyz fails when a follower has not heard from its leader within this window (0 = no lag check)")
	pprofFlag := flag.Bool("pprof", false,
		"expose net/http/pprof profiling endpoints under /debug/pprof/ (off by default: they reveal internals and cost CPU on demand)")
	flag.Parse()

	// Large joins inside a single query partition across this many
	// workers (requests are additionally served concurrently by net/http).
	sparql.SetMaxWorkers(*workers)
	budget, err := govern.ParseBytes(*memBudget)
	if err != nil {
		log.Fatalf("hexserver: -mem-budget: %v", err)
	}
	resultCacheBytes, err := govern.ParseBytes(*resultCache)
	if err != nil {
		log.Fatalf("hexserver: -result-cache-bytes: %v", err)
	}

	var triples []rdf.Triple
	for _, f := range []struct {
		path   string
		turtle bool
	}{{*load, false}, {*turtle, true}} {
		if f.path == "" {
			continue
		}
		ts, err := readFile(f.path, f.turtle)
		if err != nil {
			log.Fatalf("hexserver: %v", err)
		}
		triples = append(triples, ts...)
	}

	var (
		g         graph.Graph
		closer    func() error
		followers []*shard.Follower
	)
	switch {
	case *follow != "":
		if *diskDir != "" || len(triples) > 0 || *walPath != "" || *ship != "" {
			log.Fatalf("hexserver: -follow replicas build their state from the leader's WAL alone (no -disk/-load/-turtle/-wal/-ship)")
		}
		cl, fs, err := openReplica(*follow, *shards, *followShards, *compactThreshold)
		if err != nil {
			log.Fatalf("hexserver: %v", err)
		}
		g, closer, followers = cl, cl.Close, fs
	case *shards > 1:
		cl, err := openCluster(*shards, *diskDir, *cache, *walPath, *compactThreshold, triples, *workers)
		if err != nil {
			log.Fatalf("hexserver: %v", err)
		}
		g, closer = cl, cl.Close
	default:
		var err error
		g, closer, err = openStore(*diskDir, *cache, *walPath, triples, *workers)
		if err != nil {
			log.Fatalf("hexserver: %v", err)
		}
		if *live || *walPath != "" {
			ov, oerr := delta.Open(g, delta.Options{
				WALPath:          *walPath,
				SnapshotPath:     snapshotPath(*diskDir, *walPath),
				CompactThreshold: *compactThreshold,
			})
			if oerr != nil {
				log.Fatalf("hexserver: open overlay: %v", oerr)
			}
			// Overlay.Close checkpoints, closes the WAL and the main store.
			g, closer = ov, ov.Close
			if st := ov.Stats(); st.WALBytes > 8 || st.DeltaAdds+st.DeltaDels > 0 {
				log.Printf("hexserver: WAL replay recovered %d pending adds, %d tombstones (%d WAL bytes)",
					st.DeltaAdds, st.DeltaDels, st.WALBytes)
			}
		}
	}

	// -ship: serve the leader's per-shard WALs to TCP followers. The
	// follower protocol resumes from a byte offset, so this is safe to
	// restart; the listener dies with the server.
	var shipListener net.Listener
	if *ship != "" {
		if *walPath == "" {
			log.Fatalf("hexserver: -ship requires -wal (there is no log to ship)")
		}
		paths := walPaths(*walPath, *shards)
		l, err := net.Listen("tcp", *ship)
		if err != nil {
			log.Fatalf("hexserver: ship listen: %v", err)
		}
		shipListener = l
		go func() {
			if err := shard.ServeWAL(l, paths); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("hexserver: ship: %v", err)
			}
		}()
		log.Printf("hexserver: shipping %d WAL stream(s) on %s", len(paths), l.Addr())
	}

	mode := "leader"
	if *follow != "" {
		mode = "replica"
	}
	log.Printf("hexserver: %s, %d triples loaded, listening on %s", mode, g.Len(), *addr)
	srv := server.NewGraph(g)
	srv.SetPlanCacheSize(*planCache)
	srv.SetResultCacheBytes(resultCacheBytes)
	srv.SetReadOnly(*follow != "")
	srv.SetMaxInflight(*maxInflight)
	srv.SetRequestTimeout(*reqTimeout)
	if *pprofFlag {
		srv.EnablePprof()
	}
	// Query governance: /sparql admission moves from the generic
	// inflight semaphore to the governor, which distinguishes why a
	// query ended (canceled, timed out, budget-killed, shed) in both
	// status codes and /stats counters.
	srv.SetGovernor(govern.Config{
		MaxConcurrent: *maxQueries,
		MaxQueue:      *maxQueries,
		QueueTimeout:  5 * time.Second,
		SlowQuery:     *slowQuery,
	})
	srv.SetQueryLimits(*queryTimeout, budget)
	// Readiness follows the backend's sticky failure state: a poisoned
	// WAL or failed compaction pulls the node from rotation and sheds
	// writes while reads keep flowing.
	switch b := g.(type) {
	case *shard.Cluster:
		srv.SetDegradedCheck(b.Degraded)
	case *delta.Overlay:
		srv.SetDegradedCheck(b.Degraded)
	}
	if len(followers) > 0 {
		srv.SetFollowers(*maxReplicaLag, followers...)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// Graceful shutdown: trap SIGINT/SIGTERM, drain in-flight requests,
	// stop replication endpoints, then checkpoint/flush the store (every
	// shard, on a cluster) so nothing relies on the WAL alone.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("hexserver: %v", err)
		}
	case <-ctx.Done():
		// Fail readiness first and give load balancers -drain-grace to
		// observe it: /readyz answers 503 while the listener still
		// accepts, so traffic routes away before connections start
		// being refused, then Shutdown drains what remains in flight.
		srv.SetDraining(true)
		log.Printf("hexserver: shutting down (readyz now failing)")
		if *drainGrace > 0 {
			time.Sleep(*drainGrace)
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		err := httpSrv.Shutdown(shutdownCtx)
		cancel()
		if err != nil {
			log.Printf("hexserver: drain: %v", err)
		}
	}
	if shipListener != nil {
		shipListener.Close()
	}
	for _, f := range followers {
		if err := f.Close(); err != nil {
			log.Printf("hexserver: follower: %v", err)
		}
	}
	if closer != nil {
		if err := closer(); err != nil {
			log.Fatalf("hexserver: checkpoint on shutdown: %v", err)
		}
	}
	log.Printf("hexserver: store checkpointed, bye")
}

// walPaths lists the leader's WAL files: the plain path for a single
// store, <path>.<i> per shard for a cluster (shard.ShardWALPath).
func walPaths(walPath string, shards int) []string {
	if shards <= 1 {
		return []string{walPath}
	}
	paths := make([]string, shards)
	for i := range paths {
		paths[i] = shard.ShardWALPath(walPath, i)
	}
	return paths
}

// openCluster builds the -shards serving tier: the startup triples are
// encoded once against the shared dictionary and bulk-loaded into their
// owning shards by the parallel build pipeline. With -wal, each shard
// restores its checkpoint snapshot and replays its own log first — in
// that case startup files are refused, mirroring openStore.
func openCluster(shards int, diskDir string, cache int, walPath string, compactThreshold int, triples []rdf.Triple, workers int) (*shard.Cluster, error) {
	cfg := shard.Config{
		Shards:           shards,
		Dir:              diskDir,
		CacheSize:        cache,
		WALPath:          walPath,
		CompactThreshold: compactThreshold,
		Workers:          workers,
	}
	if len(triples) > 0 {
		// Encoding before OpenCluster is safe only because OpenCluster
		// refuses Load over any restored state — the encode below would
		// otherwise claim dictionary ids ahead of the restore's terms.
		cfg.Dict = dictionary.New()
		cfg.Load = core.EncodeTriples(cfg.Dict, triples, workers)
	}
	return shard.OpenCluster(cfg)
}

// openReplica builds a -follow replica: an in-memory cluster (no WALs
// of its own) fed by one Follower per leader WAL stream. The followers
// apply through the cluster, so the replica routes by its own
// dictionary ids — its shard count is free to differ from the leader's.
func openReplica(follow string, shards, followShards, compactThreshold int) (*shard.Cluster, []*shard.Follower, error) {
	cl, err := shard.OpenCluster(shard.Config{Shards: shards, CompactThreshold: compactThreshold})
	if err != nil {
		return nil, nil, err
	}
	if followShards <= 0 {
		followShards = 1
	}
	var followers []*shard.Follower
	addr, tcp := strings.CutPrefix(follow, "tcp://")
	for i := 0; i < followShards; i++ {
		var f *shard.Follower
		if tcp {
			f = shard.NewTCPFollower(cl, addr, i, shard.FollowerOptions{})
		} else {
			path := follow
			if followShards > 1 {
				path = shard.ShardWALPath(follow, i)
			}
			f = shard.NewFollower(cl, path, shard.FollowerOptions{})
		}
		f.Start()
		followers = append(followers, f)
	}
	return cl, followers, nil
}

// snapshotPath picks the checkpoint snapshot destination for a
// memory-backed WAL deployment (the disk backend flushes in place).
func snapshotPath(diskDir, walPath string) string {
	if diskDir != "" || walPath == "" {
		return ""
	}
	return walPath + ".snapshot"
}

// readFile parses one startup data file.
func readFile(path string, asTurtle bool) ([]rdf.Triple, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var triples []rdf.Triple
	if asTurtle {
		triples, err = rdf.NewTurtleReader(f).ReadAll()
	} else {
		triples, err = rdf.NewReader(f).ReadAll()
	}
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	return triples, nil
}

// openStore builds the base graph: the disk store (opened or created,
// bulk-loading startup triples into a fresh one) or the in-memory store
// (restored from a WAL checkpoint snapshot when one exists, else
// bulk-built from the startup triples).
func openStore(diskDir string, cache int, walPath string, triples []rdf.Triple, workers int) (graph.Graph, func() error, error) {
	if diskDir != "" {
		g, err := openDisk(diskDir, cache, triples, workers)
		if err != nil {
			return nil, nil, err
		}
		st := graph.Unwrap(g).(*disk.Store)
		return g, st.Close, nil
	}

	if snap := snapshotPath(diskDir, walPath); snap != "" {
		st, ok, err := delta.RestoreSnapshot(snap, true)
		if err != nil {
			return nil, nil, err
		}
		if ok {
			if len(triples) > 0 {
				return nil, nil, fmt.Errorf("snapshot %s already holds %d triples; refusing -load/-turtle", snap, st.Len())
			}
			log.Printf("hexserver: restored %d triples from %s", st.Len(), snap)
			return graph.Memory(st), nil, nil
		}
	}

	// Sort-once bulk construction: far faster than per-triple Add,
	// which pays the six-index insertion cost per statement (§4.2).
	// Encoding and the index build spread across -workers cores, and
	// the consuming build avoids a second copy of the triple set.
	b := core.NewBuilder(nil)
	b.AddAll(core.EncodeTriples(b.Dictionary(), triples, workers))
	return graph.Memory(b.BuildParallel(workers)), nil, nil
}

// openDisk opens (or creates) the disk store and bulk-loads the startup
// triples. A fresh store takes the sorted BulkLoad path; an existing
// store refuses startup files rather than silently double-loading.
func openDisk(dir string, cache int, triples []rdf.Triple, workers int) (graph.Graph, error) {
	opts := disk.Options{CacheSize: cache}
	var (
		st  *disk.Store
		err error
	)
	if disk.Exists(dir) {
		st, err = disk.Open(dir, opts)
	} else {
		st, err = disk.Create(dir, opts)
	}
	if err != nil {
		return nil, err
	}
	if len(triples) > 0 {
		if n := st.Len(); n > 0 {
			st.Close()
			return nil, fmt.Errorf("disk store %s already holds %d triples; refusing -load/-turtle", dir, n)
		}
		ids := core.EncodeTriples(st.Dictionary(), triples, workers)
		if err := st.BulkLoadParallel(ids, workers); err != nil {
			st.Close()
			return nil, err
		}
		if err := st.Flush(); err != nil {
			st.Close()
			return nil, err
		}
	}
	return graph.Disk(st), nil
}
