// Command hexserver serves a Hexastore over HTTP: a SPARQL-subset query
// endpoint (SPARQL 1.1 JSON results), a SPARQL UPDATE endpoint
// (INSERT DATA / DELETE DATA), bulk N-Triples/Turtle ingestion, and
// store statistics. The same HTTP API serves either the in-memory
// Hexastore (default) or the disk-based Hexastore (-disk).
//
// Usage:
//
//	hexserver [-addr :8751] [-disk dir] [-load data.nt] [-turtle data.ttl]
//
// Endpoints:
//
//	GET/POST /sparql?query=SELECT...   run a query
//	POST     /sparql update=INSERT...  apply an update (also Content-Type application/sparql-update)
//	POST     /triples                  ingest N-Triples (or text/turtle)
//	GET      /stats                    store statistics
//	GET      /healthz                  liveness probe
//
// Example session:
//
//	hexserver -load university.nt &
//	curl 'localhost:8751/sparql?query=SELECT+?s+WHERE+{?s+?p+?o}+LIMIT+5'
//	curl -d 'update=INSERT DATA { <s> <p> <o> }' localhost:8751/sparql
//
// With -disk the store persists across restarts; startup files bulk-load
// only into a fresh (empty) disk store.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"

	"hexastore/internal/core"
	"hexastore/internal/disk"
	"hexastore/internal/graph"
	"hexastore/internal/rdf"
	"hexastore/internal/server"
	"hexastore/internal/sparql"
)

func main() {
	addr := flag.String("addr", ":8751", "listen address")
	diskDir := flag.String("disk", "", "serve a disk-based Hexastore rooted at this directory (created if absent)")
	load := flag.String("load", "", "N-Triples file to load at startup")
	turtle := flag.String("turtle", "", "Turtle file to load at startup")
	cache := flag.Int("cache", 4096, "disk buffer pool capacity in pages")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"goroutines for the startup bulk load and per-query join parallelism; 1 = sequential")
	flag.Parse()

	// Large joins inside a single query partition across this many
	// workers (requests are additionally served concurrently by net/http).
	sparql.SetMaxWorkers(*workers)

	var triples []rdf.Triple
	for _, f := range []struct {
		path   string
		turtle bool
	}{{*load, false}, {*turtle, true}} {
		if f.path == "" {
			continue
		}
		ts, err := readFile(f.path, f.turtle)
		if err != nil {
			log.Fatalf("hexserver: %v", err)
		}
		triples = append(triples, ts...)
	}

	var (
		g   graph.Graph
		err error
	)
	if *diskDir != "" {
		g, err = openDisk(*diskDir, *cache, triples, *workers)
	} else {
		// Sort-once bulk construction: far faster than per-triple Add,
		// which pays the six-index insertion cost per statement (§4.2).
		// Encoding and the index build spread across -workers cores, and
		// the consuming build avoids a second copy of the triple set.
		b := core.NewBuilder(nil)
		b.AddAll(core.EncodeTriples(b.Dictionary(), triples, *workers))
		g = graph.Memory(b.BuildParallel(*workers))
	}
	if err != nil {
		log.Fatalf("hexserver: %v", err)
	}

	log.Printf("hexserver: %d triples loaded, listening on %s", g.Len(), *addr)
	srv := server.NewGraph(g)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatalf("hexserver: %v", err)
	}
}

// readFile parses one startup data file.
func readFile(path string, asTurtle bool) ([]rdf.Triple, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var triples []rdf.Triple
	if asTurtle {
		triples, err = rdf.NewTurtleReader(f).ReadAll()
	} else {
		triples, err = rdf.NewReader(f).ReadAll()
	}
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	return triples, nil
}

// openDisk opens (or creates) the disk store and bulk-loads the startup
// triples. A fresh store takes the sorted BulkLoad path; an existing
// store refuses startup files rather than silently double-loading.
func openDisk(dir string, cache int, triples []rdf.Triple, workers int) (graph.Graph, error) {
	opts := disk.Options{CacheSize: cache}
	var (
		st  *disk.Store
		err error
	)
	if disk.Exists(dir) {
		st, err = disk.Open(dir, opts)
	} else {
		st, err = disk.Create(dir, opts)
	}
	if err != nil {
		return nil, err
	}
	if len(triples) > 0 {
		if n := st.Len(); n > 0 {
			st.Close()
			return nil, fmt.Errorf("disk store %s already holds %d triples; refusing -load/-turtle", dir, n)
		}
		ids := core.EncodeTriples(st.Dictionary(), triples, workers)
		if err := st.BulkLoadParallel(ids, workers); err != nil {
			st.Close()
			return nil, err
		}
		if err := st.Flush(); err != nil {
			st.Close()
			return nil, err
		}
	}
	return graph.Disk(st), nil
}
