package hexastore_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"hexastore"
	"hexastore/internal/core"
	"hexastore/internal/delta"
	"hexastore/internal/graph"
)

// canonQuery renders a SELECT result in a canonical, order-free form.
func canonQuery(t *testing.T, db *hexastore.DB, q string) string {
	t.Helper()
	res, err := db.Query(q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	var lines []string
	for _, row := range res.Rows {
		var sb strings.Builder
		vars := append([]string(nil), res.Vars...)
		sort.Strings(vars)
		for _, v := range vars {
			fmt.Fprintf(&sb, "%s=%s;", v, row[v])
		}
		lines = append(lines, sb.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func seedTriples(t *testing.T, db *hexastore.DB, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := db.AddTriple(hexastore.T(
			hexastore.IRI(fmt.Sprintf("s%d", i%17)),
			hexastore.IRI(fmt.Sprintf("p%d", i%5)),
			hexastore.IRI(fmt.Sprintf("o%d", i%23)),
		)); err != nil {
			t.Fatal(err)
		}
	}
}

const compressProbeQuery = `SELECT ?s ?o WHERE { ?s <p1> ?o . ?o ?p ?x }`

// TestWithCompressionEquivalence opens every backend with compression
// on and off, applies the same data and updates, and requires
// identical query results — the facade-level differential gate for the
// block-compressed index layer.
func TestWithCompressionEquivalence(t *testing.T) {
	type mk func(t *testing.T, compress bool) *hexastore.DB
	backends := map[string]mk{
		"memory": func(t *testing.T, compress bool) *hexastore.DB {
			db, err := hexastore.Open(hexastore.WithCompression(compress))
			if err != nil {
				t.Fatal(err)
			}
			return db
		},
		"disk": func(t *testing.T, compress bool) *hexastore.DB {
			db, err := hexastore.Open(hexastore.WithDisk(t.TempDir()), hexastore.WithCompression(compress))
			if err != nil {
				t.Fatal(err)
			}
			return db
		},
		"overlay": func(t *testing.T, compress bool) *hexastore.DB {
			db, err := hexastore.Open(hexastore.WithDeltaOverlay(), hexastore.WithCompression(compress))
			if err != nil {
				t.Fatal(err)
			}
			return db
		},
	}
	for name, make := range backends {
		t.Run(name, func(t *testing.T) {
			var results [2]string
			for i, compress := range []bool{true, false} {
				db := make(t, compress)
				defer db.Close()
				seedTriples(t, db, 200)
				if _, err := db.Update(`INSERT DATA { <extra> <p1> <o1> . <o1> <p2> <z> } ; DELETE DATA { <s1> <p1> <o1> }`); err != nil {
					t.Fatal(err)
				}
				if db.Compact() != nil {
					t.Fatal("compact failed")
				}
				results[i] = canonQuery(t, db, compressProbeQuery)
			}
			if results[0] != results[1] {
				t.Fatalf("compressed and raw results differ:\n%s\nvs\n%s", results[0], results[1])
			}
		})
	}
}

// TestCompressedSnapshotRestore checks snapshot round-trips across
// layouts: a compressed store snapshots to the same bytes as its raw
// twin, and restoring selects the requested layout.
func TestCompressedSnapshotRestore(t *testing.T) {
	triples := make([][3]core.ID, 0, 300)
	for i := 0; i < 300; i++ {
		triples = append(triples, [3]core.ID{core.ID(i%13 + 1), core.ID(i%4 + 14), core.ID(i%19 + 18)})
	}
	var snaps [2]bytes.Buffer
	for i, compress := range []bool{true, false} {
		b := core.NewBuilder(nil)
		b.SetCompression(compress)
		for id := core.ID(1); id <= 36; id++ {
			b.Dictionary().Encode(hexastore.IRI(fmt.Sprintf("t%d", id)))
		}
		b.AddAll(triples)
		st := b.BuildParallel(2)
		if st.Compressed() != compress {
			t.Fatalf("Compressed() = %v, want %v", st.Compressed(), compress)
		}
		if err := st.Snapshot(&snaps[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(snaps[0].Bytes(), snaps[1].Bytes()) {
		t.Fatal("compressed and raw layouts produced different snapshot bytes")
	}
	for _, compress := range []bool{true, false} {
		st, err := core.RestoreWith(bytes.NewReader(snaps[0].Bytes()), compress)
		if err != nil {
			t.Fatal(err)
		}
		if st.Compressed() != compress {
			t.Fatalf("restored Compressed() = %v, want %v", st.Compressed(), compress)
		}
		if got := st.Len(); got != len(dedupe(triples)) {
			t.Fatalf("restored Len = %d", got)
		}
	}
}

func dedupe(ts [][3]core.ID) [][3]core.ID {
	seen := map[[3]core.ID]bool{}
	var out [][3]core.ID
	for _, t := range ts {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// TestCompressedWALRecovery crashes a WAL-backed DB (no Close) after a
// checkpoint plus further updates and reopens it with compression on:
// the checkpoint snapshot restores into a block-compressed main and the
// WAL tail replays on top of it. The same sequence with compression off
// must agree, so recovery is layout-independent.
func TestCompressedWALRecovery(t *testing.T) {
	var results [2]string
	for i, compress := range []bool{true, false} {
		wal := filepath.Join(t.TempDir(), "wal.log")
		open := func() *hexastore.DB {
			db, err := hexastore.Open(hexastore.WithWAL(wal), hexastore.WithCompression(compress))
			if err != nil {
				t.Fatal(err)
			}
			return db
		}
		db := open()
		seedTriples(t, db, 150)
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Update(`INSERT DATA { <post> <p1> <o5> . <o5> <p0> <tail> }`); err != nil {
			t.Fatal(err)
		}
		db = nil //nolint:ineffassign // crash: no Close

		re := open()
		if compress {
			// The restored main must actually be the compressed layout.
			st, ok := coreMain(re)
			if !ok {
				t.Fatal("recovered DB has no core main")
			}
			if !st.Compressed() {
				t.Fatal("recovered main is not compressed")
			}
		}
		results[i] = canonQuery(t, re, compressProbeQuery)
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if results[0] != results[1] {
		t.Fatalf("recovery differs between layouts:\n%s\nvs\n%s", results[0], results[1])
	}
}

// coreMain digs the in-memory main store out of a DB's overlay.
func coreMain(db *hexastore.DB) (*core.Store, bool) {
	ov, ok := db.Graph.(*delta.Overlay)
	if !ok {
		return nil, false
	}
	st, ok := graph.Unwrap(ov.Main()).(*core.Store)
	return st, ok
}
