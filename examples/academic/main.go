// Academic: load a generated LUBM-style university data set and answer
// the kinds of questions the paper's LUBM evaluation (§5.2.2) poses —
// including the object-bound, property-unbound queries that motivate
// sextuple indexing.
package main

import (
	"fmt"
	"log"

	"hexastore"
	"hexastore/internal/lubm"
)

func main() {
	// Generate a two-university data set and bulk-load it.
	b := hexastore.NewBuilder(nil)
	cfg := lubm.Config{Universities: 2, Seed: 42}
	cfg.Generate(func(t hexastore.Triple) bool {
		b.AddTriple(t)
		return true
	})
	st := b.Build()
	fmt.Printf("loaded %d triples about %d resources\n\n", st.Len(), st.Dictionary().Len())

	// LQ1-style: who is related to Course10, in any way? One walk of
	// the ops index — no property enumeration, no unions.
	course10, _ := st.Dictionary().Lookup(lubm.Course(10))
	fmt.Println("Everyone related to Course10 (any property):")
	n := 0
	st.Head(hexastore.OPS, course10).Range(
		func(p hexastore.ID, subjects *hexastore.List) bool {
			prop := st.Dictionary().MustDecode(p)
			fmt.Printf("  via %-28s %d people\n", prop, subjects.Len())
			n += subjects.Len()
			return true
		})
	fmt.Printf("  total: %d\n\n", n)

	// LQ4-style as a SPARQL join: students taking a course taught by
	// their own advisor.
	res, err := hexastore.Query(st, `
		SELECT DISTINCT ?student ?course WHERE {
			?student <lubm:advisor> ?prof .
			?prof <lubm:teacherOf> ?course .
			?student <lubm:takesCourse> ?course
		} LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	res.SortRows()
	fmt.Println("Students taking a course taught by their advisor (first 5):")
	for _, row := range res.Rows {
		fmt.Printf("  %s takes %s\n", row["student"], row["course"])
	}

	// LQ5-style: degree-holders from University0, grouped by degree.
	u0, _ := st.Dictionary().Lookup(lubm.University(0))
	fmt.Println("\nDegrees awarded by University0:")
	for _, dp := range lubm.DegreeProps {
		p, ok := st.Dictionary().Lookup(dp)
		if !ok {
			continue
		}
		holders := st.Subjects(p, u0)
		fmt.Printf("  %-36s %d holders\n", dp, holders.Len())
	}

	// Path expression (§4.3): advisee —advisor→ professor —teacherOf→
	// course: every course reachable through an advisor.
	eng := hexastore.NewEngine(st)
	advisor, _ := st.Dictionary().Lookup(lubm.PropAdvisor)
	teacherOf, _ := st.Dictionary().Lookup(lubm.PropTeacherOf)
	courses := eng.PathEndpoints([]hexastore.ID{advisor, teacherOf})
	fmt.Printf("\ncourses reachable via an advisor (path advisor/teacherOf): %d\n",
		courses.Len())
}
