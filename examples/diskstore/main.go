// Diskstore demonstrates the disk-based Hexastore (the paper's §7 future
// work): creating a persistent store, bulk-loading it, querying all
// eight statement-pattern shapes through the six on-disk B+-trees,
// closing it, and reopening it with the data intact.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"hexastore/internal/disk"
	"hexastore/internal/rdf"
)

func main() {
	dir := filepath.Join(os.TempDir(), "hexastore-diskstore-example")
	os.RemoveAll(dir)

	st, err := disk.Create(dir, disk.Options{CacheSize: 256})
	if err != nil {
		log.Fatal(err)
	}

	// Load a small citation graph.
	iri := rdf.NewIRI
	cites := [][2]string{
		{"paperA", "paperB"}, {"paperA", "paperC"}, {"paperB", "paperC"},
		{"paperC", "paperD"}, {"paperD", "paperE"}, {"paperB", "paperE"},
	}
	for _, c := range cites {
		if _, err := st.AddTriple(rdf.T(iri(c[0]), iri("cites"), iri(c[1]))); err != nil {
			log.Fatal(err)
		}
	}
	for _, meta := range [][3]string{
		{"paperA", "year", "2008"},
		{"paperB", "year", "2007"},
		{"paperC", "year", "2006"},
	} {
		if _, err := st.AddTriple(rdf.T(iri(meta[0]), iri(meta[1]), rdf.NewLiteral(meta[2]))); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("loaded %d triples into %s\n", st.Len(), dir)

	dict := st.Dictionary()
	citesID, _ := dict.Lookup(iri("cites"))
	paperCID, _ := dict.Lookup(iri("paperC"))

	// Object-bound pattern ⟨?, cites, paperC⟩ — answered by the pos tree.
	fmt.Println("\npapers citing paperC (pos tree):")
	if err := st.DecodeMatch(disk.None, citesID, paperCID, func(t rdf.Triple) bool {
		fmt.Printf("  %s\n", t.Subject.Value)
		return true
	}); err != nil {
		log.Fatal(err)
	}

	// Subject-bound pattern ⟨paperC, ?, ?⟩ — answered by the spo tree.
	fmt.Println("\neverything about paperC (spo tree):")
	if err := st.DecodeMatch(paperCID, disk.None, disk.None, func(t rdf.Triple) bool {
		fmt.Printf("  %s %s\n", t.Predicate.Value, t.Object.Value)
		return true
	}); err != nil {
		log.Fatal(err)
	}

	// Persist and reopen.
	if err := st.Close(); err != nil {
		log.Fatal(err)
	}
	st2, err := disk.Open(dir, disk.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer st2.Close()
	fmt.Printf("\nreopened store holds %d triples", st2.Len())
	if err := st2.CheckIntegrity(); err != nil {
		log.Fatal(err)
	}
	fmt.Println(" (integrity check passed)")

	size, err := st2.SizeBytes()
	if err != nil {
		log.Fatal(err)
	}
	stats := st2.FileStats()
	fmt.Printf("on-disk footprint: %d bytes in %d pages (cache hits %d, misses %d)\n",
		size, st2.NumPages(), stats.Hits, stats.Misses)
}
