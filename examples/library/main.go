// Library: a Longwell-style browsing session over the synthetic Barton
// catalog — the workload behind the paper's Barton queries (§5.2.1).
// Each step is a facet refinement the RDF browser would issue.
package main

import (
	"fmt"
	"sort"

	"hexastore"
	"hexastore/internal/barton"
)

func main() {
	b := hexastore.NewBuilder(nil)
	cfg := barton.Config{Records: 20000, Seed: 7}
	cfg.Generate(func(t hexastore.Triple) bool {
		b.AddTriple(t)
		return true
	})
	st := b.Build()
	dict := st.Dictionary()
	fmt.Printf("catalog: %d triples, %d properties\n\n",
		st.Len(), st.Heads(hexastore.PSO))

	lookup := func(t hexastore.Term) hexastore.ID {
		id, _ := dict.Lookup(t)
		return id
	}

	// Step 1 (BQ1): what kinds of resources are in the catalog? A
	// single walk of Type's pos vector.
	typeID := lookup(barton.PropType)
	fmt.Println("Resource types (BQ1):")
	type kv struct {
		name  string
		count int
	}
	var counts []kv
	st.Head(hexastore.POS, typeID).Range(
		func(o hexastore.ID, subjs *hexastore.List) bool {
			counts = append(counts, kv{dict.MustDecode(o).Value, subjs.Len()})
			return true
		})
	sort.Slice(counts, func(i, j int) bool { return counts[i].count > counts[j].count })
	for _, c := range counts {
		fmt.Printf("  %-24s %6d\n", c.name, c.count)
	}

	// Step 2 (BQ2): the user clicks "Text" — which properties do Text
	// resources carry, and how often?
	textSubjects := st.Subjects(typeID, lookup(barton.TypeText))
	fmt.Printf("\nText resources: %d; their properties (BQ2, top 8):\n", textSubjects.Len())
	freq := map[hexastore.ID]int{}
	textSubjects.Range(func(s hexastore.ID) bool {
		st.Head(hexastore.SPO, s).Range(
			func(p hexastore.ID, objs *hexastore.List) bool {
				freq[p] += objs.Len()
				return true
			})
		return true
	})
	var fs []kv
	for p, c := range freq {
		fs = append(fs, kv{dict.MustDecode(p).Value, c})
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i].count > fs[j].count })
	for i := 0; i < len(fs) && i < 8; i++ {
		fmt.Printf("  %-24s %6d\n", fs[i].name, fs[i].count)
	}

	// Step 3 (BQ7): the user spots a Point property with value "end"
	// and asks what it means — retrieve Encoding and Type for those
	// resources.
	endSubjects := st.Subjects(lookup(barton.PropPoint), lookup(barton.PointEnd))
	fmt.Printf("\nResources with Point \"end\": %d (BQ7); first three:\n", endSubjects.Len())
	shown := 0
	endSubjects.Range(func(s hexastore.ID) bool {
		enc := st.Objects(s, lookup(barton.PropEncoding))
		typ := st.Objects(s, typeID)
		if enc.Len() > 0 && typ.Len() > 0 {
			fmt.Printf("  %s: encoding=%s type=%s\n",
				dict.MustDecode(s).Value,
				dict.MustDecode(enc.At(0)).Value,
				dict.MustDecode(typ.At(0)).Value)
			shown++
		}
		return shown < 3
	})
	fmt.Println("  → all are Dates; \"end\" marks end dates.")
}
