// Pathquery demonstrates §4.3 of the paper: evaluating path expressions
// without pre-materializing them. A path query follows a chain of
// properties — here "who is advised by someone who teaches course X" —
// which requires subject-object joins at every internal node.
//
// Thanks to the pso and pos indices, the Hexastore renders the first of
// the n-1 joins in a length-n path as a linear merge-join and the rest
// as sort-merge joins, with no precalculated path tables.
package main

import (
	"fmt"
	"log"

	"hexastore"
)

func main() {
	st := hexastore.New()
	iri := hexastore.IRI

	// A small org chart: employees report to managers, managers lead
	// departments, departments belong to divisions.
	reports := [][2]string{
		{"ann", "mia"}, {"ben", "mia"}, {"cal", "noa"}, {"dee", "noa"}, {"eli", "ovi"},
	}
	leads := [][2]string{
		{"mia", "engineering"}, {"noa", "research"}, {"ovi", "sales"},
	}
	belongs := [][2]string{
		{"engineering", "product-division"},
		{"research", "product-division"},
		{"sales", "gtm-division"},
	}
	for _, r := range reports {
		st.AddTriple(hexastore.T(iri(r[0]), iri("reportsTo"), iri(r[1])))
	}
	for _, l := range leads {
		st.AddTriple(hexastore.T(iri(l[0]), iri("leadsDept"), iri(l[1])))
	}
	for _, b := range belongs {
		st.AddTriple(hexastore.T(iri(b[0]), iri("inDivision"), iri(b[1])))
	}

	eng := hexastore.NewEngine(st)
	dict := st.Dictionary()

	// Path expression: employee --reportsTo--> manager --leadsDept-->
	// department --inDivision--> division. PathEndpoints returns the
	// sorted set of path end nodes; PathPairs streams (start, end).
	props := []hexastore.ID{}
	for _, p := range []string{"reportsTo", "leadsDept", "inDivision"} {
		id, ok := dict.Lookup(iri(p))
		if !ok {
			log.Fatalf("property %s missing", p)
		}
		props = append(props, id)
	}

	fmt.Println("Divisions reachable from any employee via reportsTo/leadsDept/inDivision:")
	ends := eng.PathEndpoints(props)
	ends.Range(func(id hexastore.ID) bool {
		term, err := dict.Decode(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", term.Value)
		return true
	})

	fmt.Println("\nEmployee → division pairs:")
	eng.PathPairs(props, func(start, end hexastore.ID) bool {
		s, err := dict.Decode(start)
		if err != nil {
			log.Fatal(err)
		}
		e, err := dict.Decode(end)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-4s → %s\n", s.Value, e.Value)
		return true
	})

	// Reachability over every property: the transitive neighbourhood of
	// a resource, bounded by hop count (§4.3 discusses why computing all
	// path expressions offline is infeasible; online traversal is not).
	annID, _ := dict.Lookup(iri("ann"))
	fmt.Println("\nEverything reachable from ann within 3 hops:")
	eng.Reachable(annID, 3).Range(func(id hexastore.ID) bool {
		term, err := dict.Decode(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", term.Value)
		return true
	})
}
