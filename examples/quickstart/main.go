// Quickstart: build a small Hexastore, run statement patterns and a
// SPARQL-subset query, and inspect the sextuple index statistics.
package main

import (
	"fmt"
	"log"
	"os"

	"hexastore"
)

func main() {
	st := hexastore.New()

	// The paper's Figure 1 sample data: academic facts about four people.
	facts := [][3]string{
		{"ID1", "type", "FullProfessor"},
		{"ID1", "teacherOf", "AI"},
		{"ID1", "bachelorFrom", "MIT"},
		{"ID1", "mastersFrom", "Cambridge"},
		{"ID1", "phdFrom", "Yale"},
		{"ID2", "type", "AssocProfessor"},
		{"ID2", "worksFor", "MIT"},
		{"ID2", "teacherOf", "DataBases"},
		{"ID2", "bachelorsFrom", "Yale"},
		{"ID2", "phdFrom", "Stanford"},
		{"ID3", "type", "GradStudent"},
		{"ID3", "advisor", "ID2"},
		{"ID3", "teachingAssist", "AI"},
		{"ID3", "bachelorsFrom", "Stanford"},
		{"ID3", "mastersFrom", "Princeton"},
		{"ID4", "type", "GradStudent"},
		{"ID4", "advisor", "ID1"},
		{"ID4", "takesCourse", "DataBases"},
		{"ID4", "bachelorsFrom", "Columbia"},
	}
	for _, f := range facts {
		st.AddTriple(hexastore.T(
			hexastore.IRI(f[0]), hexastore.IRI(f[1]), hexastore.IRI(f[2])))
	}
	fmt.Printf("loaded %d triples\n\n", st.Len())

	// Statement pattern: everything about ID2 (subject-bound, spo index).
	fmt.Println("All facts about ID2:")
	id2, _ := st.Dictionary().Lookup(hexastore.IRI("ID2"))
	if err := st.DecodeMatch(id2, hexastore.None, hexastore.None,
		func(t hexastore.Triple) bool {
			fmt.Printf("  %s\n", t)
			return true
		}); err != nil {
		log.Fatal(err)
	}

	// The paper's first Figure 1(b) query: what relationship does ID2
	// have to MIT? (subject- and object-bound — the sop index.)
	run(st, "Relationship of ID2 to MIT",
		`SELECT ?property WHERE { <ID2> ?property <MIT> }`)

	// The second Figure 1(b) query: people with the same relationship
	// to Stanford as ID1 has to Yale.
	run(st, "Same relationship to Stanford as ID1 has to Yale",
		`SELECT ?person ?property WHERE {
			<ID1> ?property <Yale> .
			?person ?property <Stanford>
		}`)

	// Index statistics — the §4.1 space accounting.
	stats := st.Stats()
	fmt.Printf("index statistics: %d headers, %d vector entries, %d list ids\n",
		stats.Headers, stats.VectorEntries, stats.ListEntries)
	fmt.Printf("space expansion over a triples table: %.2f× (worst case 5×)\n",
		stats.ExpansionFactor())
}

func run(st *hexastore.Store, title, q string) {
	res, err := hexastore.Query(st, q)
	if err != nil {
		fmt.Fprintf(os.Stderr, "query failed: %v\n", err)
		os.Exit(1)
	}
	res.SortRows()
	fmt.Printf("\n%s:\n", title)
	for _, row := range res.Rows {
		for _, v := range res.Vars {
			fmt.Printf("  ?%s = %s", v, row[v])
		}
		fmt.Println()
	}
}
