// Socialgraph: the paper's §3 motivation — querying relationships
// without specifying them. A small social network is loaded and
// answered with the object-headed indexes no property-oriented store
// provides: "who relates to X at all", "who relates to both X and Y",
// and bounded reachability.
package main

import (
	"fmt"
	"math/rand"

	"hexastore"
)

func main() {
	st := hexastore.New()
	dict := st.Dictionary()

	people := make([]hexastore.Term, 200)
	for i := range people {
		people[i] = hexastore.IRI(fmt.Sprintf("person%d", i))
	}
	relations := []hexastore.Term{
		hexastore.IRI("follows"), hexastore.IRI("friendOf"),
		hexastore.IRI("colleagueOf"), hexastore.IRI("mentorOf"),
	}

	rng := rand.New(rand.NewSource(7))
	for i := range people {
		n := 3 + rng.Intn(8)
		for k := 0; k < n; k++ {
			other := rng.Intn(len(people))
			if other == i {
				continue
			}
			st.AddTriple(hexastore.T(
				people[i], relations[rng.Intn(len(relations))], people[other]))
		}
	}
	fmt.Printf("social graph: %d people, %d edges\n\n", len(people), st.Len())

	eng := hexastore.NewEngine(st)
	alice, _ := dict.Lookup(people[0])
	bob, _ := dict.Lookup(people[1])

	// "Who has any relationship to person0?" — one ops walk; a
	// property-table store would visit every relation table.
	fmt.Println("Relations pointing at person0:")
	eng.RelatedResources(alice, func(p, s hexastore.ID) bool {
		fmt.Printf("  %s —%s→ person0\n",
			dict.MustDecode(s).Value, dict.MustDecode(p).Value)
		return true
	})

	// "Who is connected to BOTH person0 and person1 (by anything)?" —
	// a single merge-join of two osp subject vectors (§4.2).
	both := eng.SubjectsRelatedToBothObjects(alice, bob)
	fmt.Printf("\npeople related to both person0 and person1: %d\n", both.Len())
	both.Range(func(s hexastore.ID) bool {
		fmt.Printf("  %s\n", dict.MustDecode(s).Value)
		return true
	})

	// Bounded reachability: person0's network within 2 hops.
	reach := eng.Reachable(alice, 2)
	fmt.Printf("\npeople within 2 hops of person0: %d\n", reach.Len())

	// SPARQL over the graph: mutual follows.
	res, err := hexastore.Query(st, `
		SELECT ?a ?b WHERE {
			?a <follows> ?b .
			?b <follows> ?a
		} LIMIT 5`)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nmutual follows (first %d):\n", len(res.Rows))
	for _, row := range res.Rows {
		fmt.Printf("  %s ⇄ %s\n", row["a"].Value, row["b"].Value)
	}
}
