package hexastore_test

import (
	"strings"
	"sync"
	"testing"

	"hexastore"
)

func TestLoadTurtleFacade(t *testing.T) {
	src := `
		@prefix ex: <http://ex/> .
		ex:alice ex:knows ex:bob, ex:carol ;
		         a ex:Person .`
	st, err := hexastore.LoadTurtle(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 3 {
		t.Fatalf("Len = %d, want 3", st.Len())
	}
	res, err := hexastore.Query(st, `
		PREFIX ex: <http://ex/>
		SELECT ?who WHERE { ex:alice ex:knows ?who } ORDER BY ?who`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if res.Rows[0]["who"].Value != "http://ex/bob" {
		t.Fatalf("first row = %v", res.Rows[0])
	}
}

func TestLoadTurtleError(t *testing.T) {
	if _, err := hexastore.LoadTurtle(strings.NewReader("zzz:a zzz:b zzz:c .")); err == nil {
		t.Fatal("LoadTurtle of undeclared prefix succeeded")
	}
}

func TestParseTurtleFacade(t *testing.T) {
	ts, err := hexastore.ParseTurtle(`<a> <b> <c> .`)
	if err != nil || len(ts) != 1 {
		t.Fatalf("ParseTurtle = (%v, %v)", ts, err)
	}
}

func TestPlannerFacade(t *testing.T) {
	st := hexastore.New()
	st.AddTriple(hexastore.T(hexastore.IRI("a"), hexastore.IRI("p"), hexastore.IRI("b")))
	st.AddTriple(hexastore.T(hexastore.IRI("b"), hexastore.IRI("p"), hexastore.IRI("c")))
	pl := hexastore.NewPlanner(st)
	res, err := pl.Exec(`SELECT ?x ?z WHERE { ?x <p> ?y . ?y <p> ?z }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 (a-b-c chain)", len(res.Rows))
	}
	if res.Rows[0]["x"].Value != "a" || res.Rows[0]["z"].Value != "c" {
		t.Fatalf("row = %v", res.Rows[0])
	}
}

// TestConcurrentReadersAndWriters exercises the store's concurrency
// contract: parallel readers with a concurrent writer must not race
// (run with -race) and every read must observe a consistent snapshot
// size (never more than the number of triples ever added).
func TestConcurrentReadersAndWriters(t *testing.T) {
	st := hexastore.New()
	const writers, readers, n = 2, 4, 500

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				st.Add(hexastore.ID(w*n+i+1), hexastore.ID(i%7+1), hexastore.ID(i%11+1))
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				cnt := st.Count(hexastore.None, hexastore.ID(i%7+1), hexastore.None)
				if cnt < 0 || cnt > writers*n {
					t.Errorf("Count out of range: %d", cnt)
					return
				}
				st.Match(hexastore.None, 1, hexastore.None, func(_, _, _ hexastore.ID) bool {
					return true
				})
			}
		}()
	}
	wg.Wait()
	if st.Len() != writers*n {
		t.Fatalf("Len = %d, want %d", st.Len(), writers*n)
	}
}

func TestConcurrentSPARQLQueries(t *testing.T) {
	st := hexastore.New()
	for i := 1; i <= 100; i++ {
		st.Add(hexastore.ID(i), 101, hexastore.ID(i%10+200))
	}
	// The dictionary is empty of these raw ids' terms, so query through
	// pattern matching concurrently instead.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := st.Count(hexastore.None, 101, hexastore.None)
				if n != 100 {
					t.Errorf("Count = %d, want 100", n)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestWriteTurtleFacadeRoundTrip(t *testing.T) {
	src := `
		@prefix ex: <http://ex/> .
		ex:alice ex:knows ex:bob, ex:carol ; a ex:Person .
		ex:bob ex:age 30 .`
	st, err := hexastore.LoadTurtle(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := hexastore.WriteTurtle(hexastore.AsGraph(st), &sb, map[string]string{"ex": "http://ex/"}); err != nil {
		t.Fatal(err)
	}
	st2, err := hexastore.LoadTurtle(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, sb.String())
	}
	if st2.Len() != st.Len() {
		t.Fatalf("round trip %d -> %d triples\n%s", st.Len(), st2.Len(), sb.String())
	}
}
