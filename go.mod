module hexastore

go 1.22
