// Package hexastore is a production-quality RDF triple store
// implementing the sextuple-indexing architecture of Weiss, Karras and
// Bernstein, "Hexastore: Sextuple Indexing for Semantic Web Data
// Management" (VLDB 2008), with interchangeable storage backends behind
// one Graph interface.
//
// A Hexastore materializes all six orderings of the RDF triple elements
// (spo, sop, pso, pos, osp, ops). The in-memory rendering shares
// terminal lists between index pairs so the worst-case space overhead
// over a plain triples table is five-fold, not six-fold; the disk
// rendering keeps the six orderings as B+-trees in one pagefile (the
// "fully operational disk-based Hexastore" of the paper's §7). In
// exchange, every statement pattern — with any combination of bound
// subject, predicate and object — is answered from a purpose-built
// index.
//
// # Opening a store
//
// Open selects the backend with functional options and returns a handle
// that the SPARQL query and update engines, the serializers, and the
// HTTP server all accept:
//
//	db, _ := hexastore.Open()                          // in-memory Hexastore
//	db, _ := hexastore.Open(hexastore.WithDisk(dir))   // disk-based Hexastore
//	db, _ := hexastore.Open(hexastore.WithBaseline())  // flat triples table
//	defer db.Close()
//
//	db.AddTriple(hexastore.T(
//	    hexastore.IRI("alice"), hexastore.IRI("knows"), hexastore.IRI("bob")))
//
//	res, _ := db.Query(`SELECT ?who WHERE { <alice> <knows> ?who }`)
//	db.Update(`INSERT DATA { <alice> <knows> <carol> }`)
//
// The pre-Graph constructors New, NewBuilder and the package-level Query
// remain as thin wrappers over the in-memory backend.
//
// Bulk loads should use NewBuilder (sort-once construction) or
// LoadNTriples for N-Triples streams. See the examples directory for
// complete programs, and DESIGN.md / EXPERIMENTS.md for the paper
// reproduction.
package hexastore

import (
	"context"
	"errors"
	"io"
	"sync"
	"time"

	"hexastore/internal/core"
	"hexastore/internal/delta"
	"hexastore/internal/dictionary"
	"hexastore/internal/disk"
	"hexastore/internal/graph"
	"hexastore/internal/idlist"
	"hexastore/internal/obs"
	"hexastore/internal/query"
	"hexastore/internal/rdf"
	"hexastore/internal/shard"
	"hexastore/internal/sparql"
	"hexastore/internal/triplestore"
)

// Core data-model types.
type (
	// Store is the six-index in-memory Hexastore.
	Store = core.Store
	// Builder bulk-loads a Store (sort-once, much faster than repeated Add).
	Builder = core.Builder
	// Stats reports index sizes and the §4.1 space-expansion factor.
	Stats = core.Stats
	// Index names one of the six orderings (SPO … OPS).
	Index = core.Index
	// Vec is a sorted key vector with terminal lists, one level of an index.
	Vec = core.Vec
	// List is a sorted id list, the merge-join substrate.
	List = idlist.List
	// ID is a dictionary-encoded resource identifier.
	ID = dictionary.ID
	// Dictionary maps RDF terms to IDs and back.
	Dictionary = dictionary.Dictionary
	// Term is an RDF term (IRI, literal, or blank node).
	Term = rdf.Term
	// Triple is one RDF statement.
	Triple = rdf.Triple
	// Graph is the backend-neutral store interface all query layers
	// accept; see package internal/graph.
	Graph = graph.Graph
	// Engine evaluates patterns, joins and path expressions over a Graph.
	Engine = query.Engine
	// Pattern is a triple pattern with None as the wildcard.
	Pattern = query.Pattern
	// Result holds SPARQL-subset query solutions.
	Result = sparql.Result
	// Row is one query solution.
	Row = sparql.Row
	// UpdateResult reports the effect of a SPARQL UPDATE request.
	UpdateResult = sparql.UpdateResult
	// Trace is a query execution trace: a span tree with per-step
	// cardinality estimates and actuals (see QueryTraced and the
	// EXPLAIN / EXPLAIN ANALYZE query prefixes).
	Trace = obs.Trace
)

// None is the unbound/wildcard marker in patterns.
const None = dictionary.None

// The six index orderings.
const (
	SPO = core.SPO
	SOP = core.SOP
	PSO = core.PSO
	POS = core.POS
	OSP = core.OSP
	OPS = core.OPS
)

// DB is a Graph-backed store handle returned by Open. It embeds the
// backend Graph, so a *DB can be passed anywhere a Graph is accepted
// (sparql.Exec, server.NewGraph, WriteNTriples, …) while adding
// string-level conveniences and lifecycle management.
//
// The DB methods are safe to call concurrently with each other:
// mutations (Update, AddTriple, RemoveTriple) are serialized against
// queries and serializers, because query evaluation nests store read
// locks and a writer arriving between two nested read locks would
// deadlock both goroutines. Calling the embedded Graph's mutation
// methods directly bypasses this guard; callers doing so must not
// mutate while a query is streaming.
type DB struct {
	graph.Graph
	closer io.Closer

	// overlay is the delta overlay behind Graph when Open was given
	// WithWAL or WithDeltaOverlay; nil otherwise.
	overlay *delta.Overlay

	// cluster is the sharded serving tier behind Graph when Open was
	// given WithShards; nil otherwise. Every shard is overlay-wrapped,
	// so the same no-lock reader discipline applies.
	cluster *shard.Cluster

	// mu orders DB-level operations: queries and serializers share it,
	// mutations take it exclusively. With a delta overlay the lock is
	// not taken at all — readers pin immutable snapshots and the
	// overlay serializes its own writers, so queries stream concurrently
	// with updates.
	mu sync.RWMutex

	// queryTimeout and memBudget are the handle-level query limits set
	// with WithQueryTimeout / WithMemBudget; zero means unlimited.
	queryTimeout time.Duration
	memBudget    int64

	// plMu guards the lazily built planner; planCacheSize and
	// resultCacheBytes are the cache budgets it is built with (see
	// WithPlanCache / WithResultCache).
	plMu             sync.Mutex
	pl               *sparql.Planner
	planCacheSize    int
	resultCacheBytes int64
}

// Unwrap exposes the concrete store behind the handle, so the planner
// and server keep their in-memory fast paths when handed a *DB.
func (db *DB) Unwrap() any { return graph.Unwrap(db.Graph) }

// options collects the Open configuration.
type options struct {
	dir              string
	cacheSize        int
	dict             *dictionary.Dictionary
	baseline         bool
	overlay          bool
	shards           int
	walPath          string
	compactThreshold int
	compress         bool
	queryTimeout     time.Duration
	memBudget        int64
	planCacheSize    int
	resultCacheBytes int64
}

// Option configures Open.
type Option func(*options)

// WithDisk selects the disk-based Hexastore rooted at dir. A store
// already present in dir is opened; otherwise a new one is created.
func WithDisk(dir string) Option { return func(o *options) { o.dir = dir } }

// WithDiskCache sets the disk backend's buffer pool capacity in pages
// (0 = pagefile default). It has no effect on in-memory backends.
func WithDiskCache(pages int) Option { return func(o *options) { o.cacheSize = pages } }

// WithDictionary makes an in-memory backend share dict, so several
// stores can be compared on identical ids. The disk backend persists
// its own dictionary and rejects this option.
func WithDictionary(d *Dictionary) Option { return func(o *options) { o.dict = d } }

// WithBaseline selects the unindexed triples-table baseline — the
// "conventional solution" the paper argues against, useful as a
// differential-testing reference.
func WithBaseline() Option { return func(o *options) { o.baseline = true } }

// WithDeltaOverlay wraps the chosen backend in the live-update MVCC
// overlay (package delta): the main indexes stay immutable for readers,
// writes land in a small sorted in-memory delta, queries pin consistent
// snapshots without locking against writers, and background compaction
// folds the delta into the main. Durability follows the backend: on the
// disk backend every DB.Update still ends durable (Flush merges the
// delta into the trees eagerly when no WAL absorbs it); on the memory
// backend there is none. Combine with WithWAL for group-committed
// durability and crash recovery on either backend.
func WithDeltaOverlay() Option { return func(o *options) { o.overlay = true } }

// WithWAL enables the write-ahead log at path (implies WithDeltaOverlay):
// every update is group-committed to the log before it becomes visible,
// and Open replays the log after a crash. For the in-memory backend,
// checkpoints additionally persist the compacted store to path+".snapshot"
// (restored by Open) so the log can be truncated; the disk backend
// truncates after flushing its trees.
func WithWAL(path string) Option {
	return func(o *options) {
		o.walPath = path
		o.overlay = true
	}
}

// WithShards serves the store through the sharded scatter-gather tier
// (package internal/shard): n stores partitioned by subject hash behind
// one shared dictionary, each wrapped in its own delta overlay. Queries
// with a bound subject route to the owning shard; scans scatter to all
// shards holding the predicate and gather globally sorted streams, so
// SPARQL results are byte-identical for every shard count. Combine with
// WithDisk for disk shards under dir/shard<i>, and WithWAL for
// per-shard logs at path.<i> (tailable by shard.Follower replicas).
// Incompatible with WithBaseline. n <= 1 means one shard — still the
// cluster code path, useful for differential testing.
func WithShards(n int) Option { return func(o *options) { o.shards = max(n, 1) } }

// WithCompactThreshold sets the delta size (pending adds + tombstones)
// that triggers background compaction of a delta overlay; 0 keeps the
// default (delta.DefaultCompactThreshold), negative disables automatic
// compaction. No effect without WithDeltaOverlay/WithWAL.
func WithCompactThreshold(n int) Option { return func(o *options) { o.compactThreshold = n } }

// WithCompression selects the block-compressed index layout (on by
// default): delta-encoded varint posting blocks with skip tables, in
// memory (packed vectors built by the bulk loader, snapshot restores,
// and overlay compaction) and on disk (delta-packed B+-tree leaf
// pages). Compression roughly halves — on real RDF data, better than
// halves — bytes per triple while merge-joins skip whole blocks via
// the skip tables; see the space01 benchmark figure. Pass false to keep
// the raw layout (shared terminal lists in memory, fixed-width leaf
// records on disk), which the differential test suites compare against.
//
// A compressed in-memory store converts itself back to the raw layout
// on its first direct Add/Remove (one O(n) pass); live updates through
// WithDeltaOverlay/WithWAL never pay that, because the overlay never
// mutates the main indexes in place.
func WithCompression(on bool) Option { return func(o *options) { o.compress = on } }

// WithQueryTimeout bounds every Query/QueryContext on the handle: an
// evaluation exceeding d fails with context.DeadlineExceeded. A tighter
// deadline already on the QueryContext context wins. 0 (the default)
// means no handle-level deadline.
func WithQueryTimeout(d time.Duration) Option {
	return func(o *options) { o.queryTimeout = d }
}

// WithMemBudget bounds every Query/QueryContext on the handle to a soft
// memory budget of n bytes: a query whose intermediate join state would
// cross it spills oversized partitions to temp files and streams them
// back (results are identical, just slower), and one that cannot be
// kept under the hard cap (4×n) even by spilling fails with
// govern.ErrBudgetExceeded instead of exhausting process memory. 0 (the
// default) means unlimited.
func WithMemBudget(n int64) Option {
	return func(o *options) { o.memBudget = n }
}

// DefaultResultCacheBytes is the handle-level default result-cache
// budget (see WithResultCache).
const DefaultResultCacheBytes = 32 << 20

// WithPlanCache sets the handle's query-shape plan cache capacity in
// entries; negative disables it, 0 keeps the default
// (sparql.DefaultPlanCacheSize). The plan cache memoizes the cost-based
// planner's join order and access-path choices per canonical query
// shape, invalidated when statistics are refreshed.
func WithPlanCache(entries int) Option {
	return func(o *options) { o.planCacheSize = entries }
}

// WithResultCache sets the handle's result-cache budget in bytes;
// negative disables it, 0 keeps the default (DefaultResultCacheBytes).
// The result cache serves repeated read queries directly when the
// store's snapshot epoch is unchanged since the answer was computed;
// any write invalidates it exactly. Backends without snapshot epochs
// (the baseline triples table) never consult it.
func WithResultCache(bytes int64) Option {
	return func(o *options) { o.resultCacheBytes = bytes }
}

// Open returns a Graph-backed store handle. With no options it opens an
// empty in-memory Hexastore; see WithDisk, WithBaseline, WithDictionary,
// WithDiskCache, WithDeltaOverlay, WithWAL, WithQueryTimeout and
// WithMemBudget.
func Open(opts ...Option) (*DB, error) {
	o := options{compress: true}
	for _, fn := range opts {
		fn(&o)
	}
	if o.shards > 0 {
		return openCluster(o)
	}
	var (
		base       graph.Graph
		baseCloser io.Closer
	)
	switch {
	case o.dir != "" && o.baseline:
		return nil, errors.New("hexastore: WithDisk and WithBaseline are mutually exclusive")
	case o.dir != "":
		if o.dict != nil {
			return nil, errors.New("hexastore: WithDictionary is not supported for disk stores (the dictionary is persisted with the store)")
		}
		var (
			st  *disk.Store
			err error
		)
		dopts := disk.Options{CacheSize: o.cacheSize, Uncompressed: !o.compress}
		if disk.Exists(o.dir) {
			st, err = disk.Open(o.dir, dopts)
		} else {
			st, err = disk.Create(o.dir, dopts)
		}
		if err != nil {
			return nil, err
		}
		base, baseCloser = graph.Disk(st), st
	case o.baseline:
		base = graph.Baseline(triplestore.New(o.dict))
	default:
		var st *core.Store
		switch {
		case o.walPath != "" && o.dict != nil:
			return nil, errors.New("hexastore: WithDictionary is not supported with WithWAL (the dictionary is restored from the snapshot)")
		case o.walPath != "":
			// Crash recovery, step 1: restore the last checkpoint
			// snapshot, if one was written; WAL replay (step 2, inside
			// delta.Open) re-applies everything since.
			restored, ok, err := delta.RestoreSnapshot(o.walPath+".snapshot", o.compress)
			if err != nil {
				return nil, err
			}
			if ok {
				st = restored
			} else {
				st = core.New()
			}
		case o.dict != nil:
			st = core.NewShared(o.dict)
		default:
			st = core.New()
		}
		base = graph.Memory(st)
	}

	if !o.overlay {
		return newDB(base, baseCloser, o), nil
	}
	dopts := delta.Options{
		WALPath:          o.walPath,
		CompactThreshold: o.compactThreshold,
		Uncompressed:     !o.compress,
	}
	if o.walPath != "" && o.dir == "" && !o.baseline {
		dopts.SnapshotPath = o.walPath + ".snapshot"
	}
	ov, err := delta.Open(base, dopts)
	if err != nil {
		if baseCloser != nil {
			baseCloser.Close()
		}
		return nil, err
	}
	// The overlay's Close checkpoints, closes the WAL and closes the
	// underlying store, so it replaces the base closer.
	db := newDB(ov, ov, o)
	db.overlay = ov
	return db, nil
}

// newDB assembles the handle shared by every Open path.
func newDB(g graph.Graph, closer io.Closer, o options) *DB {
	return &DB{
		Graph:            g,
		closer:           closer,
		queryTimeout:     o.queryTimeout,
		memBudget:        o.memBudget,
		planCacheSize:    o.planCacheSize,
		resultCacheBytes: o.resultCacheBytes,
	}
}

// openCluster builds the WithShards serving tier: every shard is
// overlay-wrapped by shard.OpenCluster, so the handle needs no DB-level
// lock (readers pin per-shard snapshots, the cluster serializes batch
// writers).
func openCluster(o options) (*DB, error) {
	switch {
	case o.baseline:
		return nil, errors.New("hexastore: WithShards and WithBaseline are mutually exclusive")
	case o.dir != "" && o.dict != nil:
		return nil, errors.New("hexastore: WithDictionary is not supported for disk stores (the dictionary is persisted with the store)")
	case o.walPath != "" && o.dict != nil:
		return nil, errors.New("hexastore: WithDictionary is not supported with WithWAL (the dictionary is restored from the snapshots)")
	}
	c, err := shard.OpenCluster(shard.Config{
		Shards:           o.shards,
		Dict:             o.dict,
		Dir:              o.dir,
		CacheSize:        o.cacheSize,
		WALPath:          o.walPath,
		CompactThreshold: o.compactThreshold,
		Uncompressed:     !o.compress,
	})
	if err != nil {
		return nil, err
	}
	// Cluster.Close checkpoints every shard (overlay compaction +
	// snapshot/flush + WAL truncation) before closing it.
	db := newDB(c, c, o)
	db.cluster = c
	return db, nil
}

// Close flushes and releases the backend. In-memory backends are a
// no-op.
func (db *DB) Close() error {
	if db.closer != nil {
		return db.closer.Close()
	}
	return nil
}

// Flush persists buffered state on durable backends; a no-op otherwise.
func (db *DB) Flush() error { return graph.Flush(db.Graph) }

// Checkpoint folds a delta overlay into its main store, persists the
// result (disk flush, or the WAL-side snapshot for the in-memory
// backend) and truncates the WAL. Without an overlay it is Flush.
func (db *DB) Checkpoint() error {
	if db.cluster != nil {
		return db.cluster.Checkpoint()
	}
	if db.overlay != nil {
		return db.overlay.Checkpoint()
	}
	return db.Flush()
}

// Compact synchronously merges a delta overlay's pending writes into the
// main indexes; a no-op without an overlay.
func (db *DB) Compact() error {
	if db.cluster != nil {
		return db.cluster.Compact()
	}
	if db.overlay != nil {
		return db.overlay.Compact()
	}
	return nil
}

// DeltaStats reports the live-update state of the delta overlay; ok is
// false when the DB was opened without one.
func (db *DB) DeltaStats() (stats delta.Stats, ok bool) {
	if db.overlay == nil {
		return delta.Stats{}, false
	}
	return db.overlay.Stats(), true
}

// ClusterStats reports per-shard statistics of the sharded serving
// tier; ok is false when the DB was opened without WithShards.
func (db *DB) ClusterStats() (stats shard.Stats, ok bool) {
	if db.cluster == nil {
		return shard.Stats{}, false
	}
	return db.cluster.Stats(), true
}

// planner returns the handle's cost-based planner, building dataset
// statistics on first use (Open stays O(1); the first query pays the
// scan) and refreshing them lazily once the store has drifted ≥10% from
// the summary they were built on. A refresh bumps the planner's stats
// epoch — invalidating memoized plans — but stale statistics between
// refreshes only degrade join ordering, never correctness: the result
// cache keys on the store's snapshot epoch, which every write bumps
// immediately.
func (db *DB) planner() *sparql.Planner {
	db.plMu.Lock()
	defer db.plMu.Unlock()
	if db.pl == nil {
		pl := sparql.NewPlanner(db.Graph)
		if db.planCacheSize != 0 {
			pl.SetPlanCacheSize(db.planCacheSize)
		}
		if db.resultCacheBytes != 0 {
			pl.SetResultCacheBytes(db.resultCacheBytes)
		} else {
			pl.SetResultCacheBytes(DefaultResultCacheBytes)
		}
		db.pl = pl
		return pl
	}
	built := db.pl.Stats().Triples
	drift := db.Graph.Len() - built
	if drift < 0 {
		drift = -drift
	}
	if drift > 0 && drift*10 >= built {
		db.pl.Refresh()
	}
	return db.pl
}

// CacheStats reports the handle's plan- and result-cache counters
// (building the planner if no query has run yet).
func (db *DB) CacheStats() sparql.CacheStats { return db.planner().CacheStats() }

// rlock takes the shared DB lock unless the backend is an overlay
// (whose readers pin immutable snapshots instead of locking).
func (db *DB) rlock() func() {
	if db.overlay != nil || db.cluster != nil {
		return func() {}
	}
	db.mu.RLock()
	return db.mu.RUnlock
}

// wlock takes the exclusive DB lock unless the backend is an overlay
// (which serializes its own writers without blocking readers).
func (db *DB) wlock() func() {
	if db.overlay != nil || db.cluster != nil {
		return func() {}
	}
	db.mu.Lock()
	return db.mu.Unlock
}

// AddTriple dictionary-encodes and inserts a triple.
func (db *DB) AddTriple(t Triple) (bool, error) {
	defer db.wlock()()
	return graph.AddTriple(db.Graph, t)
}

// RemoveTriple deletes a triple.
func (db *DB) RemoveTriple(t Triple) (bool, error) {
	defer db.wlock()()
	return graph.RemoveTriple(db.Graph, t)
}

// HasTriple reports whether a triple is present.
func (db *DB) HasTriple(t Triple) (bool, error) {
	defer db.rlock()()
	return graph.HasTriple(db.Graph, t)
}

// Query parses and evaluates a SPARQL-subset SELECT/ASK query. On an
// overlay backend the evaluation pins one consistent snapshot and runs
// without blocking (or being blocked by) Update.
func (db *DB) Query(src string) (*Result, error) {
	return db.QueryContext(context.Background(), src)
}

// QueryContext is Query observing ctx and the handle-level limits
// (WithQueryTimeout, WithMemBudget): the evaluation stops with
// ctx.Err() shortly after ctx is done — mid-join, at block granularity,
// releasing any pinned snapshot — and spills or fails typed when it
// crosses the memory budget.
func (db *DB) QueryContext(ctx context.Context, src string) (*Result, error) {
	defer db.rlock()()
	if db.queryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, db.queryTimeout)
		defer cancel()
	}
	q, err := sparql.Parse(src)
	if err != nil {
		return nil, err
	}
	return db.planner().EvalOpts(ctx, q, sparql.EvalOptions{MemBudget: db.memBudget})
}

// QueryTraced is QueryContext with execution tracing: it returns the
// result alongside the query's span tree — planner choice and pattern
// order with cardinality estimates, per-step rows in/out, merge-vs-probe
// decisions, worker counts, spill volumes, and (on a sharded backend)
// per-shard scanned/pruned stream counts. A query with the EXPLAIN
// prefix returns the plan tree and no rows; with EXPLAIN ANALYZE — or
// with no prefix at all — it returns rows plus the executed trace.
func (db *DB) QueryTraced(ctx context.Context, src string) (*Result, *Trace, error) {
	defer db.rlock()()
	if db.queryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, db.queryTimeout)
		defer cancel()
	}
	q, err := sparql.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	tr := obs.NewTrace("query")
	// A trace must describe the execution that produced these rows, so a
	// traced query never serves from (or fills) the result cache; the
	// plan cache still applies and is reported in the plan span.
	res, err := db.planner().EvalOpts(ctx, q, sparql.EvalOptions{
		MemBudget: db.memBudget, Trace: tr, NoResultCache: true,
	})
	tr.Finish()
	if err != nil {
		return nil, tr, err
	}
	return res, tr, nil
}

// Update parses and applies a SPARQL UPDATE request (INSERT DATA /
// DELETE DATA) and flushes durable backends. On an overlay backend the
// whole request is one atomic batch (single WAL group commit, single
// version swap).
func (db *DB) Update(src string) (*UpdateResult, error) {
	return db.UpdateContext(context.Background(), src)
}

// UpdateContext is Update observing ctx at request granularity: a
// request whose context is already done is not applied at all, but an
// admitted batch always completes — aborting half-applied mutations
// would leave state no client asked for.
func (db *DB) UpdateContext(ctx context.Context, src string) (*UpdateResult, error) {
	defer db.wlock()()
	res, err := sparql.ExecUpdateContext(ctx, db.Graph, src)
	if err != nil {
		return res, err
	}
	return res, db.Flush()
}

// WriteNTriples serializes the store to w in N-Triples syntax.
func (db *DB) WriteNTriples(w io.Writer) error {
	defer db.rlock()()
	return WriteNTriples(graph.Snapshot(db.Graph), w)
}

// WriteTurtle serializes the store to w in Turtle syntax.
func (db *DB) WriteTurtle(w io.Writer, prefixes map[string]string) error {
	defer db.rlock()()
	return WriteTurtle(graph.Snapshot(db.Graph), w, prefixes)
}

// New returns an empty in-memory Hexastore with a fresh dictionary.
func New() *Store { return core.New() }

// NewWithDictionary returns an empty in-memory Hexastore sharing dict.
func NewWithDictionary(dict *Dictionary) *Store { return core.NewShared(dict) }

// NewDictionary returns an empty term dictionary.
func NewDictionary() *Dictionary { return dictionary.New() }

// NewBuilder returns a bulk loader producing a Store that shares dict
// (pass nil for a fresh dictionary).
func NewBuilder(dict *Dictionary) *Builder { return core.NewBuilder(dict) }

// AsGraph adapts an in-memory Store to the Graph interface.
func AsGraph(st *Store) Graph { return graph.Memory(st) }

// NewEngine returns a query engine over the in-memory store st.
func NewEngine(st *Store) *Engine { return query.NewEngine(st) }

// NewGraphEngine returns a query engine over any Graph backend.
func NewGraphEngine(g Graph) *Engine { return query.NewGraphEngine(g) }

// IRI returns an IRI term.
func IRI(iri string) Term { return rdf.NewIRI(iri) }

// Literal returns a literal term.
func Literal(value string) Term { return rdf.NewLiteral(value) }

// Blank returns a blank-node term.
func Blank(label string) Term { return rdf.NewBlank(label) }

// T assembles a triple from three terms.
func T(s, p, o Term) Triple { return rdf.T(s, p, o) }

// ParseTriple parses one N-Triples line.
func ParseTriple(line string) (Triple, error) { return rdf.ParseTriple(line) }

// LoadNTriples bulk-loads an N-Triples stream into a new Store,
// sequentially — dictionary ids are assigned in stream order. Use
// LoadNTriplesParallel to spread parsing, encoding and index
// construction across cores.
func LoadNTriples(r io.Reader) (*Store, error) {
	return LoadNTriplesParallel(r, 1)
}

// LoadNTriplesParallel bulk-loads an N-Triples stream into a new Store
// using up to workers goroutines end to end: chunked line parsing and
// dictionary encoding over a bounded channel (see core.Builder's
// AddNTriples), then the parallel sort-once index build (BuildParallel).
// workers <= 0 means runtime.GOMAXPROCS(0). The loaded graph is
// identical for every worker count; only the dictionary's id assignment
// order depends on it (ids stay dense either way). workers == 1 is
// exactly LoadNTriples.
func LoadNTriplesParallel(r io.Reader, workers int) (*Store, error) {
	b := core.NewBuilder(nil)
	if _, err := b.AddNTriples(r, workers); err != nil {
		return nil, err
	}
	return b.BuildParallel(workers), nil
}

// WriteNTriples serializes every triple of g to w in N-Triples syntax.
func WriteNTriples(g Graph, w io.Writer) error {
	nw := rdf.NewWriter(w)
	var werr error
	if err := graph.DecodeMatch(g, None, None, None, func(t Triple) bool {
		werr = nw.Write(t)
		return werr == nil
	}); err != nil {
		return err
	}
	if werr != nil {
		return werr
	}
	return nw.Flush()
}

// Query parses and evaluates a SPARQL-subset SELECT query against the
// in-memory store st. See package sparql for the supported grammar
// (PREFIX, FILTER, OPTIONAL, UNION, ORDER BY, LIMIT, OFFSET). For other
// backends use QueryGraph or a DB handle from Open.
func Query(st *Store, src string) (*Result, error) { return sparql.Exec(graph.Memory(st), src) }

// QueryGraph parses and evaluates a SPARQL-subset SELECT/ASK query
// against any Graph backend.
func QueryGraph(g Graph, src string) (*Result, error) { return sparql.Exec(g, src) }

// Update parses and applies a SPARQL UPDATE request (INSERT DATA /
// DELETE DATA) against any Graph backend.
func Update(g Graph, src string) (*UpdateResult, error) { return sparql.ExecUpdate(g, src) }

// Planner evaluates queries with cost-based pattern ordering driven by
// dataset statistics. Build one per store and reuse it across queries.
type Planner = sparql.Planner

// NewPlanner builds dataset statistics for the in-memory store st and
// returns a cost-based query planner.
func NewPlanner(st *Store) *Planner { return sparql.NewPlanner(graph.Memory(st)) }

// NewGraphPlanner builds dataset statistics for any Graph backend and
// returns a cost-based query planner.
func NewGraphPlanner(g Graph) *Planner { return sparql.NewPlanner(g) }

// LoadTurtle bulk-loads a Turtle stream into a new Store. The supported
// Turtle subset covers @prefix/@base, prefixed names, 'a', predicate and
// object lists, and literal suffixes; see rdf.TurtleReader.
func LoadTurtle(r io.Reader) (*Store, error) {
	return LoadTurtleParallel(r, 1)
}

// LoadTurtleParallel bulk-loads a Turtle stream with up to workers
// goroutines (workers <= 0 means runtime.GOMAXPROCS(0)). Turtle is
// stateful (@prefix, predicate/object lists), so parsing stays on one
// goroutine; dictionary encoding and the index build parallelize.
func LoadTurtleParallel(r io.Reader, workers int) (*Store, error) {
	b := core.NewBuilder(nil)
	if _, err := b.AddTriples(rdf.NewTurtleReader(r), workers); err != nil {
		return nil, err
	}
	return b.BuildParallel(workers), nil
}

// ParseTurtle parses a complete Turtle document.
func ParseTurtle(src string) ([]Triple, error) { return rdf.ParseTurtle(src) }

// WriteTurtle serializes every triple of g to w in Turtle syntax,
// compacting IRIs against the given prefix map and grouping triples by
// subject (the spo iteration order makes the grouping maximal).
func WriteTurtle(g Graph, w io.Writer, prefixes map[string]string) error {
	var triples []Triple
	if err := graph.DecodeMatch(g, None, None, None, func(t Triple) bool {
		triples = append(triples, t)
		return true
	}); err != nil {
		return err
	}
	return rdf.WriteTurtle(w, prefixes, triples)
}

// Restore reads a snapshot written with (*Store).Snapshot.
func Restore(r io.Reader) (*Store, error) { return core.Restore(r) }
