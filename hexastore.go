// Package hexastore is a production-quality, in-memory RDF triple store
// implementing the sextuple-indexing architecture of Weiss, Karras and
// Bernstein, "Hexastore: Sextuple Indexing for Semantic Web Data
// Management" (VLDB 2008).
//
// A Hexastore materializes all six orderings of the RDF triple elements
// (spo, sop, pso, pos, osp, ops), sharing terminal lists between index
// pairs so the worst-case space overhead over a plain triples table is
// five-fold, not six-fold. In exchange, every statement pattern — with
// any combination of bound subject, predicate and object — is answered
// from a purpose-built index, and all first-step pairwise joins are
// linear merge-joins over sorted vectors.
//
// # Quick start
//
//	st := hexastore.New()
//	st.AddTriple(hexastore.T(
//	    hexastore.IRI("alice"), hexastore.IRI("knows"), hexastore.IRI("bob")))
//
//	res, err := hexastore.Query(st, `SELECT ?who WHERE { <alice> <knows> ?who }`)
//
// Bulk loads should use NewBuilder (sort-once construction) or
// LoadNTriples for N-Triples streams. See the examples directory for
// complete programs, and DESIGN.md / EXPERIMENTS.md for the paper
// reproduction.
package hexastore

import (
	"io"

	"hexastore/internal/core"
	"hexastore/internal/dictionary"
	"hexastore/internal/idlist"
	"hexastore/internal/query"
	"hexastore/internal/rdf"
	"hexastore/internal/sparql"
)

// Core data-model types.
type (
	// Store is the six-index Hexastore.
	Store = core.Store
	// Builder bulk-loads a Store (sort-once, much faster than repeated Add).
	Builder = core.Builder
	// Stats reports index sizes and the §4.1 space-expansion factor.
	Stats = core.Stats
	// Index names one of the six orderings (SPO … OPS).
	Index = core.Index
	// Vec is a sorted key vector with terminal lists, one level of an index.
	Vec = core.Vec
	// List is a sorted id list, the merge-join substrate.
	List = idlist.List
	// ID is a dictionary-encoded resource identifier.
	ID = dictionary.ID
	// Dictionary maps RDF terms to IDs and back.
	Dictionary = dictionary.Dictionary
	// Term is an RDF term (IRI, literal, or blank node).
	Term = rdf.Term
	// Triple is one RDF statement.
	Triple = rdf.Triple
	// Engine evaluates patterns, joins and path expressions over a Store.
	Engine = query.Engine
	// Pattern is a triple pattern with None as the wildcard.
	Pattern = query.Pattern
	// Result holds SPARQL-subset query solutions.
	Result = sparql.Result
	// Row is one query solution.
	Row = sparql.Row
)

// None is the unbound/wildcard marker in patterns.
const None = dictionary.None

// The six index orderings.
const (
	SPO = core.SPO
	SOP = core.SOP
	PSO = core.PSO
	POS = core.POS
	OSP = core.OSP
	OPS = core.OPS
)

// New returns an empty Hexastore with a fresh dictionary.
func New() *Store { return core.New() }

// NewWithDictionary returns an empty Hexastore sharing dict.
func NewWithDictionary(dict *Dictionary) *Store { return core.NewShared(dict) }

// NewDictionary returns an empty term dictionary.
func NewDictionary() *Dictionary { return dictionary.New() }

// NewBuilder returns a bulk loader producing a Store that shares dict
// (pass nil for a fresh dictionary).
func NewBuilder(dict *Dictionary) *Builder { return core.NewBuilder(dict) }

// NewEngine returns a query engine over st.
func NewEngine(st *Store) *Engine { return query.NewEngine(st) }

// IRI returns an IRI term.
func IRI(iri string) Term { return rdf.NewIRI(iri) }

// Literal returns a literal term.
func Literal(value string) Term { return rdf.NewLiteral(value) }

// Blank returns a blank-node term.
func Blank(label string) Term { return rdf.NewBlank(label) }

// T assembles a triple from three terms.
func T(s, p, o Term) Triple { return rdf.T(s, p, o) }

// ParseTriple parses one N-Triples line.
func ParseTriple(line string) (Triple, error) { return rdf.ParseTriple(line) }

// LoadNTriples bulk-loads an N-Triples stream into a new Store.
func LoadNTriples(r io.Reader) (*Store, error) {
	b := core.NewBuilder(nil)
	rd := rdf.NewReader(r)
	for {
		t, err := rd.Read()
		if err == io.EOF {
			return b.Build(), nil
		}
		if err != nil {
			return nil, err
		}
		b.AddTriple(t)
	}
}

// WriteNTriples serializes every triple of st to w in N-Triples syntax.
func WriteNTriples(st *Store, w io.Writer) error {
	nw := rdf.NewWriter(w)
	var werr error
	if err := st.DecodeMatch(None, None, None, func(t Triple) bool {
		werr = nw.Write(t)
		return werr == nil
	}); err != nil {
		return err
	}
	if werr != nil {
		return werr
	}
	return nw.Flush()
}

// Query parses and evaluates a SPARQL-subset SELECT query against st.
// See package sparql for the supported grammar (PREFIX, FILTER,
// OPTIONAL, UNION, ORDER BY, LIMIT, OFFSET).
func Query(st *Store, src string) (*Result, error) { return sparql.Exec(st, src) }

// Planner evaluates queries with cost-based pattern ordering driven by
// dataset statistics. Build one per store and reuse it across queries.
type Planner = sparql.Planner

// NewPlanner builds dataset statistics for st and returns a cost-based
// query planner.
func NewPlanner(st *Store) *Planner { return sparql.NewPlanner(st) }

// LoadTurtle bulk-loads a Turtle stream into a new Store. The supported
// Turtle subset covers @prefix/@base, prefixed names, 'a', predicate and
// object lists, and literal suffixes; see rdf.TurtleReader.
func LoadTurtle(r io.Reader) (*Store, error) {
	b := core.NewBuilder(nil)
	rd := rdf.NewTurtleReader(r)
	for {
		t, err := rd.Read()
		if err == io.EOF {
			return b.Build(), nil
		}
		if err != nil {
			return nil, err
		}
		b.AddTriple(t)
	}
}

// ParseTurtle parses a complete Turtle document.
func ParseTurtle(src string) ([]Triple, error) { return rdf.ParseTurtle(src) }

// WriteTurtle serializes every triple of st to w in Turtle syntax,
// compacting IRIs against the given prefix map and grouping triples by
// subject (the spo iteration order makes the grouping maximal).
func WriteTurtle(st *Store, w io.Writer, prefixes map[string]string) error {
	var triples []Triple
	if err := st.DecodeMatch(None, None, None, func(t Triple) bool {
		triples = append(triples, t)
		return true
	}); err != nil {
		return err
	}
	return rdf.WriteTurtle(w, prefixes, triples)
}

// Restore reads a snapshot written with (*Store).Snapshot.
func Restore(r io.Reader) (*Store, error) { return core.Restore(r) }
