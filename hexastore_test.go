package hexastore_test

import (
	"bytes"
	"strings"
	"testing"

	"hexastore"
)

func TestFacadeQuickstart(t *testing.T) {
	st := hexastore.New()
	st.AddTriple(hexastore.T(
		hexastore.IRI("alice"), hexastore.IRI("knows"), hexastore.IRI("bob")))
	st.AddTriple(hexastore.T(
		hexastore.IRI("bob"), hexastore.IRI("knows"), hexastore.IRI("carol")))

	res, err := hexastore.Query(st, `SELECT ?who WHERE { <alice> <knows> ?who }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0]["who"] != hexastore.IRI("bob") {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestLoadAndWriteNTriples(t *testing.T) {
	src := "<a> <p> <b> .\n<b> <p> \"val\" .\n"
	st, err := hexastore.LoadNTriples(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st.Len())
	}
	var buf bytes.Buffer
	if err := hexastore.WriteNTriples(hexastore.AsGraph(st), &buf); err != nil {
		t.Fatal(err)
	}
	st2, err := hexastore.LoadNTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 2 {
		t.Errorf("round trip Len = %d, want 2", st2.Len())
	}
}

func TestLoadNTriplesError(t *testing.T) {
	if _, err := hexastore.LoadNTriples(strings.NewReader("garbage line\n")); err == nil {
		t.Error("LoadNTriples accepted garbage")
	}
}

func TestFacadeSnapshotRestore(t *testing.T) {
	st := hexastore.New()
	st.AddTriple(hexastore.T(hexastore.IRI("x"), hexastore.IRI("y"), hexastore.Literal("z")))
	var buf bytes.Buffer
	if err := st.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	st2, err := hexastore.Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 1 {
		t.Errorf("restored Len = %d", st2.Len())
	}
}

func TestFacadeEngineAndPatterns(t *testing.T) {
	b := hexastore.NewBuilder(nil)
	b.AddTriple(hexastore.T(hexastore.IRI("s"), hexastore.IRI("p"), hexastore.IRI("o1")))
	b.AddTriple(hexastore.T(hexastore.IRI("s"), hexastore.IRI("p"), hexastore.IRI("o2")))
	st := b.Build()

	eng := hexastore.NewEngine(st)
	s, _ := st.Dictionary().Lookup(hexastore.IRI("s"))
	if got, err := eng.Count(hexastore.Pattern{S: s}); err != nil || got != 2 {
		t.Errorf("Count(s bound) = %d, %v, want 2", got, err)
	}

	stats := st.Stats()
	if stats.Triples != 2 || stats.ExpansionFactor() <= 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestFacadeDictionarySharing(t *testing.T) {
	dict := hexastore.NewDictionary()
	a := hexastore.NewWithDictionary(dict)
	b := hexastore.NewWithDictionary(dict)
	sa, _, _, _ := a.AddTriple(hexastore.T(hexastore.IRI("x"), hexastore.IRI("p"), hexastore.IRI("y")))
	sb, _, _, _ := b.AddTriple(hexastore.T(hexastore.IRI("x"), hexastore.IRI("q"), hexastore.IRI("z")))
	if sa != sb {
		t.Errorf("shared dictionary assigned different ids: %d vs %d", sa, sb)
	}
}
