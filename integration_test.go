package hexastore_test

import (
	"math/rand"
	"sync"
	"testing"

	"hexastore"
	"hexastore/internal/core"
	"hexastore/internal/dictionary"
	"hexastore/internal/triplestore"
	"hexastore/internal/vp"
)

// Cross-store integration tests: the Hexastore, both COVP variants and
// the naive triples table are driven with identical random workloads and
// must agree on every pattern query. The triples table is the reference
// model (trivially correct by construction).

func TestAllStoresAgreeOnRandomWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	dict := dictionary.New()
	hexa := core.NewShared(dict)
	c1 := vp.NewCOVP1(dict)
	c2 := vp.NewCOVP2(dict)
	naive := triplestore.New(dict)

	const resources = 40
	const properties = 8
	for op := 0; op < 8000; op++ {
		s := core.ID(rng.Intn(resources) + 1)
		p := core.ID(rng.Intn(properties) + 1)
		o := core.ID(rng.Intn(resources) + 1)
		if rng.Intn(4) == 0 {
			r1 := hexa.Remove(s, p, o)
			r2 := c1.Remove(s, p, o)
			r3 := c2.Remove(s, p, o)
			r4 := naive.Remove(s, p, o)
			if r1 != r4 || r2 != r4 || r3 != r4 {
				t.Fatalf("op %d: Remove(%d,%d,%d) disagreement: hexa=%v c1=%v c2=%v naive=%v",
					op, s, p, o, r1, r2, r3, r4)
			}
		} else {
			a1 := hexa.Add(s, p, o)
			a2 := c1.Add(s, p, o)
			a3 := c2.Add(s, p, o)
			a4 := naive.Add(s, p, o)
			if a1 != a4 || a2 != a4 || a3 != a4 {
				t.Fatalf("op %d: Add(%d,%d,%d) disagreement", op, s, p, o)
			}
		}
	}

	if hexa.Len() != naive.Len() || c1.Len() != naive.Len() || c2.Len() != naive.Len() {
		t.Fatalf("sizes disagree: hexa=%d c1=%d c2=%d naive=%d",
			hexa.Len(), c1.Len(), c2.Len(), naive.Len())
	}

	// Exhaustive Has agreement.
	for s := core.ID(1); s <= resources; s++ {
		for p := core.ID(1); p <= properties; p++ {
			for o := core.ID(1); o <= resources; o++ {
				want := naive.Has(s, p, o)
				if hexa.Has(s, p, o) != want || c1.Has(s, p, o) != want || c2.Has(s, p, o) != want {
					t.Fatalf("Has(%d,%d,%d) disagreement", s, p, o)
				}
			}
		}
	}

	// Pattern counts: hexastore Match vs naive scan for all 8 shapes.
	for trial := 0; trial < 300; trial++ {
		var s, p, o core.ID
		if rng.Intn(2) == 0 {
			s = core.ID(rng.Intn(resources + 1))
		}
		if rng.Intn(2) == 0 {
			p = core.ID(rng.Intn(properties + 1))
		}
		if rng.Intn(2) == 0 {
			o = core.ID(rng.Intn(resources + 1))
		}
		if got, want := hexa.Count(s, p, o), naive.Count(s, p, o); got != want {
			t.Fatalf("Count(%d,%d,%d): hexa=%d naive=%d", s, p, o, got, want)
		}
	}

	// Per-property object-bound selections: COVP vs naive.
	for p := core.ID(1); p <= properties; p++ {
		for o := core.ID(1); o <= resources; o++ {
			want := naive.Count(core.None, p, o)
			if got := c1.SubjectsByObject(p, o).Len(); got != want {
				t.Fatalf("COVP1 SubjectsByObject(%d,%d) = %d, naive = %d", p, o, got, want)
			}
			if got := c2.SubjectsByObject(p, o).Len(); got != want {
				t.Fatalf("COVP2 SubjectsByObject(%d,%d) = %d, naive = %d", p, o, got, want)
			}
		}
	}
}

// TestConcurrentReadersWithWriter exercises the store's locking under
// the race detector: concurrent pattern reads during mutation must be
// safe and self-consistent.
func TestConcurrentReadersWithWriter(t *testing.T) {
	st := hexastore.New()
	for i := 0; i < 500; i++ {
		st.Add(core.ID(i%20+1), core.ID(i%5+1), core.ID(i%30+1))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := core.ID(rng.Intn(21))
				p := core.ID(rng.Intn(6))
				st.Count(s, p, core.None)
				st.Stats()
			}
		}(int64(g))
	}

	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 3000; i++ {
		s := core.ID(rng.Intn(20) + 1)
		p := core.ID(rng.Intn(5) + 1)
		o := core.ID(rng.Intn(30) + 1)
		if rng.Intn(2) == 0 {
			st.Add(s, p, o)
		} else {
			st.Remove(s, p, o)
		}
	}
	close(stop)
	wg.Wait()

	// Final consistency: six views agree.
	n := st.Len()
	if got := st.Count(core.None, core.None, core.None); got != n {
		t.Errorf("Count(all) = %d, Len = %d", got, n)
	}
}
