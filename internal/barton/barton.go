// Package barton generates a synthetic library-catalog data set standing
// in for the MIT Barton Libraries dump used in the Hexastore paper's
// evaluation (§5.1.1). The real dump (61M triples, 285 unique
// properties, highly irregular) is not redistributable here; this
// generator reproduces the structural features the paper's seven Barton
// queries (BQ1–BQ7) exercise:
//
//   - a dominant Type property whose object distribution is skewed, with
//     Type: Text the heavy class (BQ1, BQ2);
//   - a Language property with a French minority (BQ4);
//   - an Origin property with a DLC subpopulation (BQ5);
//   - Records links from catalog records to other subjects whose Type
//     supports the BQ5/BQ6 inference step;
//   - Point: "end" resources carrying Encoding and Type: Date (BQ7);
//   - a long Zipf-distributed tail of rare properties, 285 in total,
//     with multi-valued attributes — "the vast majority of properties
//     appear infrequently" (§5.1.1).
//
// The substitution is documented in DESIGN.md §3: the queries bind
// exactly these properties and objects, so preserving the cardinality
// profile preserves the performance shape.
package barton

import (
	"fmt"
	"math"
	"math/rand"

	"hexastore/internal/rdf"
)

// Namespace prefixes all generated IRIs.
const Namespace = "barton:"

// TotalProperties is the number of distinct properties the generator can
// emit, matching the paper's Barton count.
const TotalProperties = 285

// Named properties exercised by the benchmark queries.
var (
	PropType      = rdf.NewIRI(Namespace + "Type")
	PropLanguage  = rdf.NewIRI(Namespace + "Language")
	PropOrigin    = rdf.NewIRI(Namespace + "Origin")
	PropRecords   = rdf.NewIRI(Namespace + "Records")
	PropPoint     = rdf.NewIRI(Namespace + "Point")
	PropEncoding  = rdf.NewIRI(Namespace + "Encoding")
	PropTitle     = rdf.NewIRI(Namespace + "Title")
	PropAuthor    = rdf.NewIRI(Namespace + "Author")
	PropSubject   = rdf.NewIRI(Namespace + "Subject")
	PropDate      = rdf.NewIRI(Namespace + "Date")
	PropFormat    = rdf.NewIRI(Namespace + "Format")
	PropPublisher = rdf.NewIRI(Namespace + "Publisher")
)

// Objects the queries bind.
var (
	TypeText    = rdf.NewIRI(Namespace + "Text")
	TypeDate    = rdf.NewIRI(Namespace + "Date")
	TypeImage   = rdf.NewIRI(Namespace + "Image")
	TypeSound   = rdf.NewIRI(Namespace + "Sound")
	TypeMap     = rdf.NewIRI(Namespace + "Map")
	TypeNotated = rdf.NewIRI(Namespace + "NotatedMusic")

	LangFrench  = rdf.NewLiteral("French")
	LangEnglish = rdf.NewLiteral("English")
	LangGerman  = rdf.NewLiteral("German")
	LangSpanish = rdf.NewLiteral("Spanish")

	OriginDLC   = rdf.NewLiteral("DLC")
	OriginOther = rdf.NewLiteral("OCLC")

	PointEnd   = rdf.NewLiteral("end")
	PointStart = rdf.NewLiteral("start")

	EncodingMarc = rdf.NewLiteral("marc8")
)

// typeClasses with cumulative weights: Text dominates, as in the catalog.
var typeClasses = []struct {
	term   rdf.Term
	weight int
}{
	{TypeText, 55},
	{TypeNotated, 12},
	{TypeSound, 10},
	{TypeImage, 9},
	{TypeMap, 7},
	{TypeDate, 7},
}

var languages = []struct {
	term   rdf.Term
	weight int
}{
	{LangEnglish, 70},
	{LangFrench, 12},
	{LangGerman, 10},
	{LangSpanish, 8},
}

// TailProperty returns the i-th rare ("tail") property; i ranges over
// [0, TotalProperties-12) — the 12 named properties above complete the
// 285 total.
func TailProperty(i int) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("%sprop%d", Namespace, i))
}

// Record returns the i-th catalog record resource.
func Record(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%srecord%d", Namespace, i)) }

// Config parameterizes the generator.
type Config struct {
	Records int   // catalog records to generate
	Seed    int64 // rng seed; generation is deterministic per seed
}

// DefaultConfig generates a laptop-scale catalog (≈ 1M triples at
// 120k records).
func DefaultConfig() Config { return Config{Records: 120_000, Seed: 1} }

// Generate emits the data set in a fixed deterministic order, stopping
// early if emit returns false. Roughly 8–9 triples are produced per
// record.
func (c Config) Generate(emit func(rdf.Triple) bool) {
	rng := rand.New(rand.NewSource(c.Seed))
	stopped := false
	t := func(s, p, o rdf.Term) {
		if stopped {
			return
		}
		if !emit(rdf.T(s, p, o)) {
			stopped = true
		}
	}
	pick := func(classes []struct {
		term   rdf.Term
		weight int
	}) rdf.Term {
		total := 0
		for _, c := range classes {
			total += c.weight
		}
		r := rng.Intn(total)
		for _, c := range classes {
			if r < c.weight {
				return c.term
			}
			r -= c.weight
		}
		return classes[len(classes)-1].term
	}

	for i := 0; i < c.Records && !stopped; i++ {
		rec := Record(i)
		class := pick(typeClasses)
		t(rec, PropType, class)
		t(rec, PropTitle, rdf.NewLiteral(fmt.Sprintf("Title of record %d", i)))

		if class == TypeDate {
			// Date resources carry Point and Encoding (BQ7's chain).
			if rng.Intn(2) == 0 {
				t(rec, PropPoint, PointEnd)
			} else {
				t(rec, PropPoint, PointStart)
			}
			t(rec, PropEncoding, EncodingMarc)
			continue // date resources are small; no further attributes
		}

		t(rec, PropLanguage, pick(languages))

		if rng.Intn(10) < 3 { // 30% DLC origin
			t(rec, PropOrigin, OriginDLC)
		} else if rng.Intn(2) == 0 {
			t(rec, PropOrigin, OriginOther)
		}

		// Records links point at earlier records (so the linked subject
		// exists and has a Type — the BQ5 inference source).
		if i > 0 && rng.Intn(10) < 4 {
			t(rec, PropRecords, Record(rng.Intn(i)))
		}

		// Multi-valued authors and subjects.
		nAuthors := 1 + rng.Intn(3)
		for k := 0; k < nAuthors; k++ {
			t(rec, PropAuthor, rdf.NewLiteral(fmt.Sprintf("Author %d", rng.Intn(c.Records/10+10))))
		}
		if rng.Intn(2) == 0 {
			t(rec, PropSubject, rdf.NewLiteral(fmt.Sprintf("Subject %d", rng.Intn(200))))
		}
		if rng.Intn(3) == 0 {
			t(rec, PropPublisher, rdf.NewLiteral(fmt.Sprintf("Publisher %d", rng.Intn(500))))
		}
		if rng.Intn(4) == 0 {
			t(rec, PropDate, rdf.NewLiteral(fmt.Sprintf("%d", 1800+rng.Intn(220))))
		}
		if rng.Intn(4) == 0 {
			t(rec, PropFormat, rdf.NewLiteral("print"))
		}

		// Zipfian tail: each record gets 0–3 rare properties; property
		// rank follows an approximate power law so most of the 285
		// appear infrequently.
		nTail := rng.Intn(4)
		for k := 0; k < nTail; k++ {
			rank := zipfRank(rng, TotalProperties-12)
			t(rec, TailProperty(rank), rdf.NewLiteral(fmt.Sprintf("value %d", rng.Intn(50))))
		}
	}
}

// GenerateAll materializes the whole data set.
func (c Config) GenerateAll() []rdf.Triple {
	var out []rdf.Triple
	c.Generate(func(t rdf.Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// zipfRank draws a rank in [0, n) with probability ∝ 1/(rank+1),
// approximated by inverse transform over the harmonic series. Low ranks
// (common properties) dominate; high ranks are rare.
func zipfRank(rng *rand.Rand, n int) int {
	// Inverse CDF of 1/x on [1, n+1): x = (n+1)^u.
	u := rng.Float64()
	x := math.Pow(float64(n+1), u)
	rank := int(x) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return rank
}
