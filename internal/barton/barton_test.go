package barton

import (
	"reflect"
	"testing"

	"hexastore/internal/core"
	"hexastore/internal/rdf"
)

func smallConfig() Config { return Config{Records: 5000, Seed: 3} }

func TestGenerateIsDeterministic(t *testing.T) {
	a := smallConfig().GenerateAll()
	b := smallConfig().GenerateAll()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two runs with the same config differ")
	}
}

func TestGenerateAllTriplesValid(t *testing.T) {
	for _, tr := range smallConfig().GenerateAll() {
		if !tr.Valid() {
			t.Fatalf("invalid triple generated: %v", tr)
		}
	}
}

func TestStructuralFeaturesForQueries(t *testing.T) {
	st := core.New()
	for _, tr := range smallConfig().GenerateAll() {
		st.AddTriple(tr)
	}
	dict := st.Dictionary()
	lookup := func(term rdf.Term) core.ID {
		id, ok := dict.Lookup(term)
		if !ok {
			t.Fatalf("required term %v missing from generated data", term)
		}
		return id
	}

	typeID := lookup(PropType)
	text := lookup(TypeText)
	date := lookup(TypeDate)
	lang := lookup(PropLanguage)
	french := lookup(LangFrench)
	origin := lookup(PropOrigin)
	dlc := lookup(OriginDLC)
	records := lookup(PropRecords)
	point := lookup(PropPoint)
	end := lookup(PointEnd)
	encoding := lookup(PropEncoding)

	// Text must dominate the Type distribution (BQ1/BQ2 selectivity).
	textCount := st.Subjects(typeID, text).Len()
	total := st.Count(core.None, typeID, core.None)
	if textCount*2 < total {
		t.Errorf("Type:Text count %d is under half of %d type triples", textCount, total)
	}

	// French subjects exist but are a minority (BQ4).
	frenchCount := st.Subjects(lang, french).Len()
	langTotal := st.Count(core.None, lang, core.None)
	if frenchCount == 0 || frenchCount*3 > langTotal {
		t.Errorf("French = %d of %d language triples; want non-zero minority", frenchCount, langTotal)
	}

	// DLC ∧ Records subjects exist, and their recorded objects have a
	// Type (the BQ5 inference chain).
	dlcSubjects := st.Subjects(origin, dlc)
	if dlcSubjects.Len() == 0 {
		t.Fatal("no Origin:DLC subjects")
	}
	chain := 0
	dlcSubjects.Range(func(s core.ID) bool {
		st.Objects(s, records).Range(func(obj core.ID) bool {
			if st.Objects(obj, typeID).Len() > 0 {
				chain++
			}
			return true
		})
		return true
	})
	if chain == 0 {
		t.Error("no DLC→Records→Type inference chains")
	}

	// Point:end subjects carry Encoding and Type:Date (BQ7).
	endSubjects := st.Subjects(point, end)
	if endSubjects.Len() == 0 {
		t.Fatal("no Point:end subjects")
	}
	endSubjects.Range(func(s core.ID) bool {
		if st.Objects(s, encoding).Len() == 0 {
			t.Errorf("Point:end subject %d lacks Encoding", s)
			return false
		}
		if !st.Objects(s, typeID).Contains(date) {
			t.Errorf("Point:end subject %d is not Type:Date", s)
			return false
		}
		return true
	})
}

func TestPropertyTailIsZipfian(t *testing.T) {
	st := core.New()
	for _, tr := range smallConfig().GenerateAll() {
		st.AddTriple(tr)
	}
	// Many distinct properties, most of them rare.
	nProps := st.Heads(core.PSO)
	if nProps < 50 {
		t.Fatalf("only %d distinct properties generated", nProps)
	}
	rare := 0
	for _, p := range st.HeadIDs(core.PSO) {
		if st.Count(core.None, p, core.None) <= 20 {
			rare++
		}
	}
	if rare*2 < nProps {
		t.Errorf("only %d of %d properties are rare; tail not heavy enough", rare, nProps)
	}
}

func TestTotalPropertiesBound(t *testing.T) {
	st := core.New()
	for _, tr := range (Config{Records: 20000, Seed: 1}).GenerateAll() {
		st.AddTriple(tr)
	}
	if n := st.Heads(core.PSO); n > TotalProperties {
		t.Errorf("%d distinct properties exceed the declared %d", n, TotalProperties)
	}
}

func TestGenerateEarlyStop(t *testing.T) {
	n := 0
	smallConfig().Generate(func(rdf.Triple) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop emitted %d, want 5", n)
	}
}

func TestTriplesPerRecordRatio(t *testing.T) {
	n := 0
	cfg := smallConfig()
	cfg.Generate(func(rdf.Triple) bool { n++; return true })
	ratio := float64(n) / float64(cfg.Records)
	if ratio < 4 || ratio > 12 {
		t.Errorf("triples per record = %.1f, want a catalog-like 4–12", ratio)
	}
}
