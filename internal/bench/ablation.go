package bench

import (
	"fmt"
	"os"
	"sort"

	"hexastore/internal/core"
	"hexastore/internal/cracking"
	"hexastore/internal/disk"
	"hexastore/internal/kowari"
	"hexastore/internal/lubm"
	"hexastore/internal/queries"
)

// AblationIDs lists the extension-subsystem comparisons RunAblations can
// regenerate (DESIGN.md §5, extension rows).
var AblationIDs = []string{"disk", "cracking", "kowari"}

// RunAblations produces prefix-sweep tables for the extension
// subsystems: the disk-based Hexastore vs the in-memory store on an
// object-bound lookup, cracking vs eager sorting on a per-property
// workload, and the Kowari cyclic store vs the sextuple store on the
// sorted-subjects operation. The LUBM generator provides the data.
func RunAblations(cfg Config, ids []string, progress func(string)) ([]*Figure, error) {
	cfg = cfg.withDefaults()
	if len(ids) == 0 {
		ids = AblationIDs
	}
	want := map[string]bool{}
	for _, id := range ids {
		found := false
		for _, known := range AblationIDs {
			if id == known {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("bench: unknown ablation %q (known: %v)", id, AblationIDs)
		}
		want[id] = true
	}
	if progress == nil {
		progress = func(string) {}
	}

	data := lubm.Config{Universities: cfg.LUBMUniversities, Seed: cfg.Seed}.GenerateAll()
	sizes := prefixSizes(len(data), cfg.Steps)

	var figs []*Figure
	series := map[string]map[string][]Point{} // ablation id → series name → points
	addPoint := func(id, name string, triples int, v float64) {
		if series[id] == nil {
			series[id] = map[string][]Point{}
		}
		series[id][name] = append(series[id][name], Point{Triples: triples, Value: v})
	}

	for _, n := range sizes {
		prefix := data[:n]
		progress(fmt.Sprintf("ablations: loading %d triples", n))
		s := queries.Load(prefix)
		lubmIDs := queries.ResolveLUBM(s.Dict)
		triples := s.Hexa.Len()

		var flat [][3]core.ID
		s.Hexa.Match(core.None, core.None, core.None, func(sub, p, o core.ID) bool {
			flat = append(flat, [3]core.ID{sub, p, o})
			return true
		})

		if want["disk"] {
			dir, err := os.MkdirTemp("", "hexablation")
			if err != nil {
				return nil, err
			}
			dst, err := disk.Create(dir, disk.Options{CacheSize: 4096})
			if err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			if err := dst.BulkLoad(flat); err != nil {
				dst.Close()
				os.RemoveAll(dir)
				return nil, err
			}
			course := lubmIDs.Course10
			addPoint("disk", "Memory", triples, timeBest(cfg.Repeats, func() {
				s.Hexa.Match(core.None, core.None, course, func(_, _, _ core.ID) bool { return true })
			}))
			addPoint("disk", "Disk", triples, timeBest(cfg.Repeats, func() {
				dst.Match(disk.None, disk.None, course, func(_, _, _ disk.ID) bool { return true })
			}))
			dst.Close()
			os.RemoveAll(dir)
		}

		if want["cracking"] {
			props := s.Hexa.HeadIDs(core.PSO)
			pso := make([]cracking.Triple, 0, len(flat))
			for _, t := range flat {
				pso = append(pso, cracking.Triple{t[1], t[0], t[2]})
			}
			addPoint("cracking", "EagerSort", triples, timeBest(1, func() {
				cp := append([]cracking.Triple(nil), pso...)
				sort.Slice(cp, func(i, j int) bool {
					a, b := cp[i], cp[j]
					if a[0] != b[0] {
						return a[0] < b[0]
					}
					if a[1] != b[1] {
						return a[1] < b[1]
					}
					return a[2] < b[2]
				})
				scanAllSorted(cp, props)
			}))
			addPoint("cracking", "Cracking", triples, timeBest(1, func() {
				col := cracking.NewColumn(append([]cracking.Triple(nil), pso...))
				for _, p := range props {
					col.Scan(p, func(cracking.Triple) bool { return true })
				}
			}))
		}

		if want["kowari"] {
			kb := kowari.NewBuilder(s.Dict)
			for _, t := range flat {
				kb.Add(t[0], t[1], t[2])
			}
			ks := kb.Build()
			p := lubmIDs.TeacherOf
			addPoint("kowari", "HexaPSO", triples, timeBest(cfg.Repeats, func() {
				_ = s.Hexa.Head(core.PSO, p).Keys()
			}))
			addPoint("kowari", "KowariPOS", triples, timeBest(cfg.Repeats, func() {
				_ = ks.SubjectsForProperty(p)
			}))
		}
	}

	titles := map[string]string{
		"disk":     "Disk vs memory Hexastore — object-bound lookup (LQ1 shape)",
		"cracking": "Eager sort vs database cracking — first pass over all properties",
		"kowari":   "Sextuple pso vs Kowari cyclic pos — sorted subjects of a property",
	}
	for _, id := range ids {
		fig := &Figure{ID: "ablation-" + id, Title: titles[id], YLabel: "seconds"}
		names := make([]string, 0, len(series[id]))
		for name := range series[id] {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fig.Series = append(fig.Series, Series{Name: name, Points: series[id][name]})
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// scanAllSorted scans every property head of a presorted pso column.
func scanAllSorted(ts []cracking.Triple, props []core.ID) {
	for _, p := range props {
		lo, hi := 0, len(ts)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if ts[mid][0] < p {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		for ; lo < len(ts) && ts[lo][0] == p; lo++ {
			_ = ts[lo]
		}
	}
}
