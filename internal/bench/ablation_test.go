package bench

import "testing"

func TestRunAblationsProducesAllTables(t *testing.T) {
	cfg := Config{LUBMUniversities: 1, Steps: 2, Repeats: 1, Seed: 1}
	figs, err := RunAblations(cfg, nil, nil)
	if err != nil {
		t.Fatalf("RunAblations: %v", err)
	}
	if len(figs) != len(AblationIDs) {
		t.Fatalf("figures = %d, want %d", len(figs), len(AblationIDs))
	}
	for _, f := range figs {
		if len(f.Series) != 2 {
			t.Fatalf("%s: series = %d, want 2", f.ID, len(f.Series))
		}
		for _, s := range f.Series {
			if len(s.Points) != 2 {
				t.Fatalf("%s/%s: points = %d, want 2", f.ID, s.Name, len(s.Points))
			}
			for _, p := range s.Points {
				if p.Value < 0 {
					t.Fatalf("%s/%s: negative timing %f", f.ID, s.Name, p.Value)
				}
			}
		}
	}
}

func TestRunAblationsSubsetAndUnknown(t *testing.T) {
	cfg := Config{LUBMUniversities: 1, Steps: 2, Repeats: 1, Seed: 1}
	figs, err := RunAblations(cfg, []string{"kowari"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 1 || figs[0].ID != "ablation-kowari" {
		t.Fatalf("figs = %v", figs)
	}
	if _, err := RunAblations(cfg, []string{"bogus"}, nil); err == nil {
		t.Fatal("unknown ablation id accepted")
	}
}
