// Package bench is the experiment harness that regenerates every figure
// of the Hexastore paper's evaluation section (§5.3): response-time
// sweeps over progressively larger data prefixes for the twelve
// benchmark queries (Figures 3–14) and the memory-usage measurement
// (Figure 15), each with one series per competing store.
//
// The harness follows the paper's methodology: the full data set is
// generated once, prefixes of increasing length are loaded into all
// three stores over a shared dictionary, and each query implementation
// is timed per prefix (best of Repeats runs, smoothing scheduler noise).
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"hexastore/internal/barton"
	"hexastore/internal/lubm"
	"hexastore/internal/queries"
	"hexastore/internal/rdf"
)

// Point is one measurement: data-set prefix size versus the metric
// (seconds for response-time figures, megabytes for Figure 15). Allocs
// is the heap allocation count of the timed run (0 for memory series),
// so the JSON trajectory tracks allocation regressions alongside time.
type Point struct {
	Triples int     `json:"triples"`
	Value   float64 `json:"value"`
	Allocs  uint64  `json:"allocs,omitempty"`
}

// Series is a named line of a figure (one per store variant).
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// Figure is one reproduced figure of the paper.
type Figure struct {
	ID     string   `json:"id"`     // e.g. "fig03"
	Title  string   `json:"title"`  // e.g. "Barton data set, Query 1"
	YLabel string   `json:"ylabel"` // "seconds" or "MB"
	Series []Series `json:"series"`
}

// WriteTable prints the figure as an aligned table: one row per prefix
// size, one column per series — the same numbers the paper plots.
func (f *Figure) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s — %s (%s)\n", f.ID, f.Title, f.YLabel); err != nil {
		return err
	}
	fmt.Fprintf(w, "%12s", "triples")
	for _, s := range f.Series {
		fmt.Fprintf(w, " %14s", s.Name)
	}
	fmt.Fprintln(w)
	if len(f.Series) == 0 {
		return nil
	}
	for i := range f.Series[0].Points {
		fmt.Fprintf(w, "%12d", f.Series[0].Points[i].Triples)
		for _, s := range f.Series {
			fmt.Fprintf(w, " %14.6f", s.Points[i].Value)
		}
		fmt.Fprintln(w)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Config parameterizes a full benchmark run. Zero fields take defaults
// sized for a laptop-scale run (the paper swept to 6M triples on a 16GB
// Opteron; the shapes are scale-invariant, and MaxTriples can be raised).
type Config struct {
	BartonRecords    int // catalog records to generate (default 30000)
	LUBMUniversities int // universities to generate (default 10)
	Steps            int // prefix points per figure (default 6)
	Repeats          int // timing repeats, best-of (default 3)
	Seed             int64
	// Workers is the parallelism budget for the load pipeline and
	// intra-query joins (default runtime.GOMAXPROCS(0)); it is recorded
	// in the JSON snapshot alongside GOMAXPROCS so trajectories can be
	// compared across machines.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.BartonRecords == 0 {
		c.BartonRecords = 30_000
	}
	if c.LUBMUniversities == 0 {
		c.LUBMUniversities = 10
	}
	if c.Steps == 0 {
		c.Steps = 6
	}
	if c.Repeats == 0 {
		c.Repeats = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// FigureIDs lists every figure the harness can regenerate, in paper
// order. fig15a/fig15b are the two panels of Figure 15.
var FigureIDs = []string{
	"fig03", "fig04", "fig05", "fig06", "fig07", "fig08", "fig09",
	"fig10", "fig11", "fig12", "fig13", "fig14", "fig15a", "fig15b",
}

var figureTitles = map[string]string{
	"fig03":  "Barton data set, Query 1",
	"fig04":  "Barton data set, Query 2",
	"fig05":  "Barton data set, Query 3",
	"fig06":  "Barton data set, Query 4",
	"fig07":  "Barton data set, Query 5",
	"fig08":  "Barton data set, Query 6",
	"fig09":  "Barton data set, Query 7",
	"fig10":  "LUBM data set, Query 1",
	"fig11":  "LUBM data set, Query 2",
	"fig12":  "LUBM data set, Query 3",
	"fig13":  "LUBM data set, Query 4",
	"fig14":  "LUBM data set, Query 5",
	"fig15a": "Memory Consumption - Barton Dataset",
	"fig15b": "Memory Consumption - LUBM Dataset",
}

// bartonFigures maps figure id → whether it has 28-property variants.
var bartonFigures = map[string]bool{
	"fig03": false, "fig04": true, "fig05": true, "fig06": true,
	"fig07": false, "fig08": true, "fig09": false,
}

var lubmFigures = map[string]bool{
	"fig10": false, "fig11": false, "fig12": false, "fig13": false, "fig14": false,
}

// Run regenerates the requested figures (all of FigureIDs when ids is
// empty). The progress callback, if non-nil, receives one line per
// loaded prefix.
func Run(cfg Config, ids []string, progress func(string)) ([]*Figure, error) {
	cfg = cfg.withDefaults()
	if len(ids) == 0 {
		ids = FigureIDs
	}
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		if _, ok := figureTitles[id]; !ok {
			return nil, fmt.Errorf("bench: unknown figure %q (known: %v)", id, FigureIDs)
		}
		want[id] = true
	}

	var figures []*Figure
	if anyIn(want, bartonFigures) || want["fig15a"] {
		data := barton.Config{Records: cfg.BartonRecords, Seed: cfg.Seed}.GenerateAll()
		figures = append(figures, sweepDataset(cfg, "barton", data, want, progress)...)
	}
	if anyIn(want, lubmFigures) || want["fig15b"] {
		data := lubm.Config{Universities: cfg.LUBMUniversities, Seed: cfg.Seed}.GenerateAll()
		figures = append(figures, sweepDataset(cfg, "lubm", data, want, progress)...)
	}
	sort.Slice(figures, func(i, j int) bool { return figures[i].ID < figures[j].ID })
	return figures, nil
}

func anyIn(want map[string]bool, group map[string]bool) bool {
	for id := range group {
		if want[id] {
			return true
		}
	}
	return false
}

// measurement identifies one (figure, series) cell filled per prefix.
type measurement struct {
	figID  string
	series string
	run    func() // timed body; nil for memory series (filled directly)
}

func sweepDataset(cfg Config, dataset string, data []rdf.Triple, want map[string]bool, progress func(string)) []*Figure {
	figs := make(map[string]*Figure)
	ensure := func(id string) *Figure {
		f, ok := figs[id]
		if !ok {
			ylabel := "seconds"
			if id == "fig15a" || id == "fig15b" {
				ylabel = "MB"
			}
			f = &Figure{ID: id, Title: figureTitles[id], YLabel: ylabel}
			figs[id] = f
		}
		return f
	}
	addPoint := func(id, series string, triples int, p Point) {
		p.Triples = triples
		f := ensure(id)
		for i := range f.Series {
			if f.Series[i].Name == series {
				f.Series[i].Points = append(f.Series[i].Points, p)
				return
			}
		}
		f.Series = append(f.Series, Series{Name: series, Points: []Point{p}})
	}

	for _, n := range prefixSizes(len(data), cfg.Steps) {
		s := queries.Load(data[:n])
		triples := s.Hexa.Len()
		if progress != nil {
			progress(fmt.Sprintf("%s: loaded prefix of %d triples (%d distinct)", dataset, n, triples))
		}

		var ms []measurement
		switch dataset {
		case "barton":
			ms = bartonMeasurements(s, want)
			if want["fig15a"] {
				addMemoryPoints(addPoint, "fig15a", s, triples)
			}
		case "lubm":
			ms = lubmMeasurements(s, want)
			if want["fig15b"] {
				addMemoryPoints(addPoint, "fig15b", s, triples)
			}
		}
		for _, m := range ms {
			addPoint(m.figID, m.series, triples, measureBest(cfg.Repeats, m.run))
		}
	}

	out := make([]*Figure, 0, len(figs))
	for _, f := range figs {
		out = append(out, f)
	}
	return out
}

// prefixSizes returns Steps evenly spaced prefix lengths ending at n.
func prefixSizes(n, steps int) []int {
	if steps < 1 {
		steps = 1
	}
	out := make([]int, 0, steps)
	for i := 1; i <= steps; i++ {
		out = append(out, n*i/steps)
	}
	return out
}

// timeBest is measureBest reduced to the duration, for callers that
// track seconds only (the ablation sweeps).
func timeBest(repeats int, fn func()) float64 { return measureBest(repeats, fn).Value }

// measureBest runs fn repeats times and returns the fastest wall-clock
// duration in seconds together with that run's heap allocation count.
func measureBest(repeats int, fn func()) Point {
	best := Point{Value: (time.Duration(1<<62 - 1)).Seconds()}
	var ms runtime.MemStats
	for i := 0; i < repeats; i++ {
		runtime.ReadMemStats(&ms)
		before := ms.Mallocs
		start := time.Now()
		fn()
		d := time.Since(start)
		runtime.ReadMemStats(&ms)
		if secs := d.Seconds(); secs < best.Value {
			best.Value = secs
			best.Allocs = ms.Mallocs - before
		}
	}
	return best
}

func addMemoryPoints(addPoint func(id, series string, triples int, p Point), id string, s *queries.Stores, triples int) {
	const mb = 1 << 20
	dictBytes := s.Dict.SizeBytes()
	addPoint(id, "Hexastore", triples, Point{Value: float64(s.Hexa.Stats().SizeBytes()+dictBytes) / mb})
	addPoint(id, "COVP1", triples, Point{Value: float64(s.C1.Stats().SizeBytes()+dictBytes) / mb})
	addPoint(id, "COVP2", triples, Point{Value: float64(s.C2.Stats().SizeBytes()+dictBytes) / mb})
}
