package bench

import (
	"bytes"
	"strings"
	"testing"
)

func tinyConfig() Config {
	return Config{BartonRecords: 1500, LUBMUniversities: 2, Steps: 3, Repeats: 1, Seed: 2}
}

func TestRunAllFiguresSmoke(t *testing.T) {
	figs, err := Run(tinyConfig(), nil, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(figs) != len(FigureIDs) {
		t.Fatalf("Run produced %d figures, want %d", len(figs), len(FigureIDs))
	}
	seen := map[string]bool{}
	for _, f := range figs {
		seen[f.ID] = true
		if len(f.Series) == 0 {
			t.Errorf("%s has no series", f.ID)
			continue
		}
		for _, s := range f.Series {
			if len(s.Points) != 3 {
				t.Errorf("%s/%s has %d points, want 3", f.ID, s.Name, len(s.Points))
			}
			for _, p := range s.Points {
				if p.Triples <= 0 || p.Value < 0 {
					t.Errorf("%s/%s has bad point %+v", f.ID, s.Name, p)
				}
			}
			// Prefix sizes must be increasing.
			for i := 1; i < len(s.Points); i++ {
				if s.Points[i].Triples <= s.Points[i-1].Triples {
					t.Errorf("%s/%s non-increasing prefixes", f.ID, s.Name)
				}
			}
		}
	}
	for _, id := range FigureIDs {
		if !seen[id] {
			t.Errorf("figure %s missing from results", id)
		}
	}
}

func TestSeriesCounts(t *testing.T) {
	figs, err := Run(tinyConfig(), []string{"fig04", "fig07", "fig15b"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"fig04": 6, "fig07": 3, "fig15b": 3}
	if len(figs) != len(want) {
		t.Fatalf("got %d figures, want %d", len(figs), len(want))
	}
	for _, f := range figs {
		if len(f.Series) != want[f.ID] {
			t.Errorf("%s has %d series, want %d", f.ID, len(f.Series), want[f.ID])
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if _, err := Run(tinyConfig(), []string{"fig99"}, nil); err == nil {
		t.Error("Run with unknown figure id succeeded")
	}
}

func TestWriteTable(t *testing.T) {
	figs, err := Run(tinyConfig(), []string{"fig10"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := figs[0].WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig10", "LUBM data set, Query 1", "Hexastore", "COVP1", "COVP2", "triples"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 5 {
		t.Errorf("table has only %d lines:\n%s", lines, out)
	}
}

func TestProgressCallback(t *testing.T) {
	var msgs []string
	_, err := Run(tinyConfig(), []string{"fig10"}, func(m string) { msgs = append(msgs, m) })
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 {
		t.Errorf("progress called %d times, want 3 (one per prefix)", len(msgs))
	}
}

func TestPrefixSizes(t *testing.T) {
	got := prefixSizes(100, 4)
	want := []int{25, 50, 75, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prefixSizes(100,4) = %v, want %v", got, want)
		}
	}
	if got := prefixSizes(10, 0); len(got) != 1 || got[0] != 10 {
		t.Errorf("prefixSizes(10,0) = %v", got)
	}
}

// TestExpectedPerformanceShape checks the reproduction target at a small
// scale: on the object-bound LUBM queries the Hexastore must beat COVP1,
// and memory must order Hexastore > COVP2 > COVP1 (paper §5.3.3).
func TestExpectedPerformanceShape(t *testing.T) {
	cfg := Config{BartonRecords: 1500, LUBMUniversities: 3, Steps: 1, Repeats: 3, Seed: 2}
	figs, err := Run(cfg, []string{"fig10", "fig15b"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]*Figure{}
	for _, f := range figs {
		byID[f.ID] = f
	}
	last := func(f *Figure, series string) float64 {
		for _, s := range f.Series {
			if s.Name == series {
				return s.Points[len(s.Points)-1].Value
			}
		}
		t.Fatalf("%s: series %q missing", f.ID, series)
		return 0
	}

	lq1 := byID["fig10"]
	if h, c1 := last(lq1, "Hexastore"), last(lq1, "COVP1"); h >= c1 {
		t.Errorf("LQ1: Hexastore (%.6fs) not faster than COVP1 (%.6fs)", h, c1)
	}

	mem := byID["fig15b"]
	h, c1, c2 := last(mem, "Hexastore"), last(mem, "COVP1"), last(mem, "COVP2")
	if !(h > c2 && c2 > c1) {
		t.Errorf("memory ordering hexa=%.2f covp2=%.2f covp1=%.2f MB; want hexa > covp2 > covp1", h, c2, c1)
	}
}
