package bench

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"hexastore/internal/core"
	"hexastore/internal/graph"
	"hexastore/internal/lubm"
	"hexastore/internal/rdf"
	"hexastore/internal/sparql"
)

// GovernFigureIDs names the query-governor figures RunGovern produces.
var GovernFigureIDs = []string{"govern01"}

// govern01 measures what governance buys the *other* tenants: cheap
// bound-subject lookups sampled while adversarial neighbors loop a
// quadratic self-join on the same store. The ungoverned series lets the
// hogs materialize their join state without limits; the governed series
// runs the same hogs under a per-query memory budget (oversized state
// spills to temp files) and a short deadline. The gap between the two
// p99 lines is the latency tax one pathological query imposes on
// everyone else when nothing reins it in.
const (
	governHogs       = 2
	governHogBudget  = 8 << 20
	governHogTimeout = 50 * time.Millisecond
	governSamples    = 40
)

// governHogQuery is the adversarial neighbor: students pairing on a
// shared course — quadratic in students-per-course, so its binding
// table dwarfs the cheap lookups'. The LIMIT bounds one iteration (the
// hog loops for the whole sampling window either way) so the ungoverned
// series measures interference, not an OOM.
const governHogQuery = `SELECT ?a ?b WHERE {
	?a <lubm:takesCourse> ?c .
	?b <lubm:takesCourse> ?c } LIMIT 200000`

// governCheapQueries samples bound-subject lookups evenly from the
// data: each routes through one merge-join path and returns a handful
// of rows, the profile of a well-behaved tenant.
func governCheapQueries(data []rdf.Triple) ([]*sparql.Query, error) {
	var queries []*sparql.Query
	for i := 0; i < 8 && len(data) > 0; i++ {
		s := data[i*len(data)/8].Subject
		q, err := sparql.Parse(fmt.Sprintf(`SELECT ?p ?o WHERE { <%s> ?p ?o }`, s.Value))
		if err != nil {
			return nil, err
		}
		queries = append(queries, q)
	}
	return queries, nil
}

// governPoint measures cheap-query latency percentiles while governHogs
// background goroutines loop the hog query, governed or not. The hog
// context is canceled when sampling ends, so the point's cost is
// bounded in both modes.
func governPoint(g graph.Graph, cheap []*sparql.Query, hog *sparql.Query, governed bool) (p50, p99 float64, err error) {
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < governHogs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				opt := sparql.EvalOptions{Workers: 1}
				hctx := ctx
				hcancel := context.CancelFunc(func() {})
				if governed {
					opt.MemBudget = governHogBudget
					hctx, hcancel = context.WithTimeout(ctx, governHogTimeout)
				}
				_, _ = sparql.EvalOpts(hctx, g, hog, opt) //nolint:errcheck // hog outcomes are the governor's business
				hcancel()
			}
		}()
	}

	lat := make([]float64, 0, governSamples*len(cheap))
	for s := 0; s < governSamples; s++ {
		for _, q := range cheap {
			start := time.Now()
			if _, qerr := sparql.EvalWorkers(g, q, 1); qerr != nil {
				err = qerr
			}
			lat = append(lat, time.Since(start).Seconds())
		}
	}
	cancel()
	wg.Wait()
	if err != nil {
		return 0, 0, err
	}
	sort.Float64s(lat)
	return lat[len(lat)/2], lat[len(lat)*99/100], nil
}

// RunGovern times the govern01 figure: cheap-query p50/p99 with the
// adversarial mixed workload, governor off vs on, over growing LUBM
// prefixes.
func RunGovern(cfg Config, progress func(string)) ([]*Figure, error) {
	cfg = cfg.withDefaults()
	data := lubm.Config{Universities: cfg.LUBMUniversities, Seed: cfg.Seed}.GenerateAll()

	fig := &Figure{
		ID:     "govern01",
		Title:  "Cheap-query latency beside an adversarial neighbor: ungoverned vs governed hogs",
		YLabel: "seconds",
	}
	names := []string{"p50 ungoverned", "p99 ungoverned", "p50 governed", "p99 governed"}
	for _, name := range names {
		fig.Series = append(fig.Series, Series{Name: name})
	}
	hog, err := sparql.Parse(governHogQuery)
	if err != nil {
		return nil, err
	}
	for _, n := range prefixSizes(len(data), cfg.Steps) {
		if progress != nil {
			progress(fmt.Sprintf("govern: prefix of %d triples", n))
		}
		cheap, err := governCheapQueries(data[:n])
		if err != nil {
			return nil, err
		}
		b := core.NewBuilder(nil)
		b.AddAll(core.EncodeTriples(b.Dictionary(), data[:n], cfg.Workers))
		g := graph.Memory(b.BuildParallel(cfg.Workers))
		for mi, governed := range []bool{false, true} {
			p50, p99, err := governPoint(g, cheap, hog, governed)
			if err != nil {
				return nil, fmt.Errorf("bench: govern01 governed=%v: %w", governed, err)
			}
			fig.Series[mi*2].Points = append(fig.Series[mi*2].Points, Point{Triples: n, Value: p50})
			fig.Series[mi*2+1].Points = append(fig.Series[mi*2+1].Points, Point{Triples: n, Value: p99})
		}
	}
	return []*Figure{fig}, nil
}
