package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"hexastore/internal/graph"
	"hexastore/internal/lubm"
	"hexastore/internal/queries"
	"hexastore/internal/sparql"
	"hexastore/internal/triplestore"
)

// Snapshot is the machine-readable benchmark record written by
// `hexbench -json`: one file per revision, so the repository accumulates
// a PR-over-PR performance trajectory (timings and allocation counts)
// instead of relying on numbers quoted in commit messages.
type Snapshot struct {
	Revision  string    `json:"revision"`
	Generated time.Time `json:"generated"`
	// GoMaxProcs records the parallelism the numbers were taken at
	// (the worker budget itself is in Config.Workers): a parallel-load
	// or parallel-join win only reproduces on a machine with comparable
	// GOMAXPROCS.
	GoMaxProcs int       `json:"go_max_procs"`
	Config     Config    `json:"config"`
	Figures    []*Figure `json:"figures"`
}

// WriteJSON serializes a snapshot of the given figures.
func WriteJSON(w io.Writer, rev string, cfg Config, figs []*Figure) error {
	cfg = cfg.withDefaults()
	snap := Snapshot{
		Revision:   rev,
		Generated:  time.Now().UTC().Truncate(time.Second),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Config:     cfg,
		Figures:    figs,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&snap)
}

// SPARQLQuery is one query of the evaluator benchmark suite.
type SPARQLQuery struct {
	ID    string
	Title string
	Query string
}

// SPARQLQueries are the multi-pattern join queries timed by RunSPARQL:
// the SPARQL evaluator's hot shapes (chained joins, a cyclic join,
// DISTINCT and GROUP BY) over the LUBM schema. The table is exported so
// the Go benchmarks (bench_test.go BenchmarkSPARQLJoinBackends) time
// exactly the workload the BENCH_<rev>.json trajectory tracks.
var SPARQLQueries = []SPARQLQuery{
	{"sparql01", "SPARQL 2-pattern chain (advisor→teacherOf)",
		`SELECT ?student ?course WHERE {
			?student <lubm:advisor> ?prof .
			?prof <lubm:teacherOf> ?course }`},
	{"sparql02", "SPARQL 3-pattern cyclic join (advisor/teacherOf/takesCourse)",
		`SELECT ?student ?course WHERE {
			?student <lubm:advisor> ?prof .
			?prof <lubm:teacherOf> ?course .
			?student <lubm:takesCourse> ?course }`},
	{"sparql03", "SPARQL DISTINCT join",
		`SELECT DISTINCT ?prof WHERE {
			?student <lubm:advisor> ?prof .
			?student <lubm:takesCourse> ?course }`},
	{"sparql04", "SPARQL GROUP BY count",
		`SELECT ?prof (COUNT(?student) AS ?n) WHERE {
			?student <lubm:advisor> ?prof } GROUP BY ?prof`},
	{"sparql05", "SPARQL GROUP BY distinct count join",
		`SELECT ?prof (COUNT(DISTINCT ?student) AS ?n) WHERE {
			?student <lubm:advisor> ?prof .
			?student <lubm:takesCourse> ?course } GROUP BY ?prof`},
}

// RunSPARQL times the SPARQL evaluator itself — not the hand-written
// query plans of the paper figures — on LUBM data, once per backend:
// the in-memory Hexastore (merge-join engine over shared terminal
// lists) and the flat baseline table (the batched bind-probe fallback).
// These series are what this repository's own engine work is judged by.
func RunSPARQL(cfg Config, progress func(string)) ([]*Figure, error) {
	cfg = cfg.withDefaults()
	data := lubm.Config{Universities: cfg.LUBMUniversities, Seed: cfg.Seed}.GenerateAll()

	figs := make([]*Figure, len(SPARQLQueries))
	parsed := make([]*sparql.Query, len(SPARQLQueries))
	for i, q := range SPARQLQueries {
		figs[i] = &Figure{ID: q.ID, Title: q.Title, YLabel: "seconds"}
		var err error
		if parsed[i], err = sparql.Parse(q.Query); err != nil {
			return nil, fmt.Errorf("bench: %s: %w", q.ID, err)
		}
	}

	for _, n := range prefixSizes(len(data), cfg.Steps) {
		s := queries.Load(data[:n])
		base := triplestore.New(s.Dict)
		for _, t := range data[:n] {
			ds, dp, do := s.Dict.EncodeTriple(t)
			base.Add(ds, dp, do)
		}
		triples := s.Hexa.Len()
		if progress != nil {
			progress(fmt.Sprintf("sparql: loaded prefix of %d triples", triples))
		}
		backends := []struct {
			name string
			g    graph.Graph
		}{
			{"Hexastore", graph.Memory(s.Hexa)},
			{"Baseline", graph.Baseline(base)},
		}
		for qi := range SPARQLQueries {
			q := parsed[qi]
			for _, b := range backends {
				g := b.g
				var evalErr error
				p := measureBest(cfg.Repeats, func() {
					if _, err := sparql.EvalWorkers(g, q, cfg.Workers); err != nil && evalErr == nil {
						evalErr = err
					}
				})
				if evalErr != nil {
					return nil, fmt.Errorf("bench: %s on %s: %w", SPARQLQueries[qi].ID, b.name, evalErr)
				}
				p.Triples = triples
				f := figs[qi]
				found := false
				for si := range f.Series {
					if f.Series[si].Name == b.name {
						f.Series[si].Points = append(f.Series[si].Points, p)
						found = true
					}
				}
				if !found {
					f.Series = append(f.Series, Series{Name: b.name, Points: []Point{p}})
				}
			}
		}
	}
	return figs, nil
}
