package bench

import (
	"fmt"

	"hexastore/internal/core"
	"hexastore/internal/dictionary"
	"hexastore/internal/lubm"
)

// LoadFigureIDs names the bulk-load figures RunLoad produces.
var LoadFigureIDs = []string{"load01"}

// RunLoad times the sort-once index construction — the cost EMBANKS-style
// systems worry about for sextuple indexing — sequentially and with the
// configured worker budget, over growing LUBM prefixes. The triples are
// dictionary-encoded once up front and enter each timed run through one
// bulk append (Builder.AddAll), so both series time the
// sort+dedupe+build pipeline (core.Builder.BuildParallel) plus a single
// memcopy, and the "Parallel" series' win is the multi-core one, not
// cache warming.
func RunLoad(cfg Config, progress func(string)) ([]*Figure, error) {
	cfg = cfg.withDefaults()
	data := lubm.Config{Universities: cfg.LUBMUniversities, Seed: cfg.Seed}.GenerateAll()

	dict := dictionary.New()
	encoded := core.EncodeTriples(dict, data, cfg.Workers)

	fig := &Figure{
		ID:     "load01",
		Title:  fmt.Sprintf("Bulk load, sequential vs parallel (workers=%d)", cfg.Workers),
		YLabel: "seconds",
	}
	series := []struct {
		name    string
		workers int
	}{
		{"Sequential", 1},
		{"Parallel", cfg.Workers},
	}
	for _, n := range prefixSizes(len(encoded), cfg.Steps) {
		if progress != nil {
			progress(fmt.Sprintf("load: prefix of %d triples", n))
		}
		for si, sv := range series {
			workers := sv.workers
			var built int
			p := measureBest(cfg.Repeats, func() {
				b := core.NewBuilder(dict)
				b.AddAll(encoded[:n])
				built = b.BuildParallel(workers).Len()
			})
			p.Triples = built
			if len(fig.Series) <= si {
				fig.Series = append(fig.Series, Series{Name: sv.name})
			}
			fig.Series[si].Points = append(fig.Series[si].Points, p)
		}
	}
	return []*Figure{fig}, nil
}
