package bench

import "hexastore/internal/queries"

// bartonMeasurements builds the timed query closures for the requested
// Barton figures on the loaded stores. Figures with 28-property variants
// get six series (paper Figures 4, 5, 6, 8); the others get three.
func bartonMeasurements(s *queries.Stores, want map[string]bool) []measurement {
	ids := queries.ResolveBarton(s.Dict)
	var ms []measurement
	add := func(figID, series string, run func()) {
		if want[figID] {
			ms = append(ms, measurement{figID: figID, series: series, run: run})
		}
	}

	add("fig03", "Hexastore", func() { queries.BQ1Hexa(s.Hexa, ids) })
	add("fig03", "COVP1", func() { queries.BQ1COVP(s.C1, ids) })
	add("fig03", "COVP2", func() { queries.BQ1COVP(s.C2, ids) })

	// The four non-property-bound queries, run both unrestricted and
	// restricted to the pre-selected 28 properties (suffix "_28").
	restricted := ids.Restricted28
	add("fig04", "Hexastore", func() { queries.BQ2Hexa(s.Hexa, ids, nil) })
	add("fig04", "COVP1", func() { queries.BQ2COVP(s.C1, ids, nil) })
	add("fig04", "COVP2", func() { queries.BQ2COVP(s.C2, ids, nil) })
	add("fig04", "Hexastore_28", func() { queries.BQ2Hexa(s.Hexa, ids, restricted) })
	add("fig04", "COVP1_28", func() { queries.BQ2COVP(s.C1, ids, restricted) })
	add("fig04", "COVP2_28", func() { queries.BQ2COVP(s.C2, ids, restricted) })

	add("fig05", "Hexastore", func() { queries.BQ3Hexa(s.Hexa, ids, nil) })
	add("fig05", "COVP1", func() { queries.BQ3COVP(s.C1, ids, nil) })
	add("fig05", "COVP2", func() { queries.BQ3COVP(s.C2, ids, nil) })
	add("fig05", "Hexastore_28", func() { queries.BQ3Hexa(s.Hexa, ids, restricted) })
	add("fig05", "COVP1_28", func() { queries.BQ3COVP(s.C1, ids, restricted) })
	add("fig05", "COVP2_28", func() { queries.BQ3COVP(s.C2, ids, restricted) })

	add("fig06", "Hexastore", func() { queries.BQ4Hexa(s.Hexa, ids, nil) })
	add("fig06", "COVP1", func() { queries.BQ4COVP(s.C1, ids, nil) })
	add("fig06", "COVP2", func() { queries.BQ4COVP(s.C2, ids, nil) })
	add("fig06", "Hexastore_28", func() { queries.BQ4Hexa(s.Hexa, ids, restricted) })
	add("fig06", "COVP1_28", func() { queries.BQ4COVP(s.C1, ids, restricted) })
	add("fig06", "COVP2_28", func() { queries.BQ4COVP(s.C2, ids, restricted) })

	add("fig07", "Hexastore", func() { queries.BQ5Hexa(s.Hexa, ids) })
	add("fig07", "COVP1", func() { queries.BQ5COVP(s.C1, ids) })
	add("fig07", "COVP2", func() { queries.BQ5COVP(s.C2, ids) })

	add("fig08", "Hexastore", func() { queries.BQ6Hexa(s.Hexa, ids, nil) })
	add("fig08", "COVP1", func() { queries.BQ6COVP(s.C1, ids, nil) })
	add("fig08", "COVP2", func() { queries.BQ6COVP(s.C2, ids, nil) })
	add("fig08", "Hexastore_28", func() { queries.BQ6Hexa(s.Hexa, ids, restricted) })
	add("fig08", "COVP1_28", func() { queries.BQ6COVP(s.C1, ids, restricted) })
	add("fig08", "COVP2_28", func() { queries.BQ6COVP(s.C2, ids, restricted) })

	add("fig09", "Hexastore", func() { queries.BQ7Hexa(s.Hexa, ids) })
	add("fig09", "COVP1", func() { queries.BQ7COVP(s.C1, ids) })
	add("fig09", "COVP2", func() { queries.BQ7COVP(s.C2, ids) })

	return ms
}

// lubmMeasurements builds the timed query closures for the requested
// LUBM figures.
func lubmMeasurements(s *queries.Stores, want map[string]bool) []measurement {
	ids := queries.ResolveLUBM(s.Dict)
	var ms []measurement
	add := func(figID, series string, run func()) {
		if want[figID] {
			ms = append(ms, measurement{figID: figID, series: series, run: run})
		}
	}

	add("fig10", "Hexastore", func() { queries.RelatedHexa(s.Hexa, ids.Course10) })
	add("fig10", "COVP1", func() { queries.RelatedCOVP(s.C1, ids.Course10) })
	add("fig10", "COVP2", func() { queries.RelatedCOVP(s.C2, ids.Course10) })

	add("fig11", "Hexastore", func() { queries.RelatedHexa(s.Hexa, ids.University0) })
	add("fig11", "COVP1", func() { queries.RelatedCOVP(s.C1, ids.University0) })
	add("fig11", "COVP2", func() { queries.RelatedCOVP(s.C2, ids.University0) })

	add("fig12", "Hexastore", func() { queries.LQ3Hexa(s.Hexa, ids.AssocProf10) })
	add("fig12", "COVP1", func() { queries.LQ3COVP(s.C1, ids.AssocProf10) })
	add("fig12", "COVP2", func() { queries.LQ3COVP(s.C2, ids.AssocProf10) })

	add("fig13", "Hexastore", func() { queries.LQ4Hexa(s.Hexa, ids) })
	add("fig13", "COVP1", func() { queries.LQ4COVP(s.C1, ids) })
	add("fig13", "COVP2", func() { queries.LQ4COVP(s.C2, ids) })

	add("fig14", "Hexastore", func() { queries.LQ5Hexa(s.Hexa, ids) })
	add("fig14", "COVP1", func() { queries.LQ5COVP(s.C1, ids) })
	add("fig14", "COVP2", func() { queries.LQ5COVP(s.C2, ids) })

	return ms
}
