package bench

// serve01: the repeated-query serving figure behind the plan/result
// cache work. Real query traffic is heavily skewed — a few hot query
// shapes with a few hot constants account for most requests — so the
// workload here is a zipfian stream over a pool of parameterized join
// queries ("students taking course C and their departments"), each
// request parsed fresh the way an HTTP server would. The three series
// climb the caching ladder on the same planner implementation: caches
// off (plan every query, evaluate every query), plan cache (repeated
// shapes reuse the memoized join order and access-path hints), and
// plan+result cache (repeated queries at an unchanged snapshot epoch
// answer straight from the cache). One figure reports throughput per
// client count, its companion the p50/p99 per-query latencies.

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"hexastore/internal/core"
	"hexastore/internal/graph"
	"hexastore/internal/lubm"
	"hexastore/internal/sparql"
)

// ServeFigureIDs names the serving-tier cache figures RunServe produces.
var ServeFigureIDs = []string{"serve01", "serve01lat"}

const (
	// serveShapes is the pool of distinct course constants the zipfian
	// stream draws from; zipf exponent serveSkew makes the head of the
	// pool hot (rank-1 roughly serveSkew-law more popular than rank-k).
	serveShapes = 48
	serveSkew   = 1.3

	// serveQueriesPerPoint is the total request count per (mode,
	// clients) point, split evenly across the clients.
	serveQueriesPerPoint = 480
)

// serveConcurrency is the client-count sweep.
var serveConcurrency = []int{1, 4, 8}

// serveStream builds the request texts: a zipfian sample over the
// parameterized pool. Query i joins the takers of one course with their
// departments — two patterns, so both the planner and the evaluator
// have real work per uncached request.
func serveStream(nCourses int, seed int64) []string {
	pool := make([]string, serveShapes)
	for i := range pool {
		course := i * nCourses / serveShapes
		pool[i] = fmt.Sprintf(
			`SELECT ?s ?d WHERE { ?s <%stakesCourse> <%sCourse%d> . ?s <%smemberOf> ?d }`,
			lubm.Namespace, lubm.Namespace, course, lubm.Namespace)
	}
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, serveSkew, 1, serveShapes-1)
	stream := make([]string, serveQueriesPerPoint)
	for i := range stream {
		stream[i] = pool[zipf.Uint64()]
	}
	return stream
}

// servePlanner builds one planner per caching mode over g.
func servePlanner(g graph.Graph, mode int) *sparql.Planner {
	pl := sparql.NewPlanner(g)
	switch mode {
	case 0: // caches off
		pl.SetPlanCacheSize(0)
	case 1: // plan cache only (the planner's default state)
	case 2: // plan + result cache
		pl.SetResultCacheBytes(64 << 20)
	}
	return pl
}

// servePoint replays the stream through pl with the given client count:
// each client parses and evaluates its own disjoint chunk, the way
// concurrent HTTP requests would. Returns overall throughput and the
// pooled latency percentiles.
func servePoint(pl *sparql.Planner, stream []string, clients int) (qps, p50, p99 float64, err error) {
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		lats []float64
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		chunk := stream[c*len(stream)/clients : (c+1)*len(stream)/clients]
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]float64, 0, len(chunk))
			for _, src := range chunk {
				t0 := time.Now()
				q, perr := sparql.Parse(src)
				if perr == nil {
					_, perr = pl.EvalOpts(context.Background(), q, sparql.EvalOptions{Workers: 1})
				}
				local = append(local, time.Since(t0).Seconds())
				if perr != nil {
					mu.Lock()
					err = perr
					mu.Unlock()
					return
				}
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	if err != nil {
		return 0, 0, 0, err
	}
	sort.Float64s(lats)
	return float64(len(lats)) / wall, lats[len(lats)/2], lats[len(lats)*99/100], nil
}

// RunServe times the serve01/serve01lat figures: zipfian repeated-query
// throughput and latency over the in-memory store, caches off vs plan
// cache vs plan+result cache, per concurrent client count.
func RunServe(cfg Config, progress func(string)) ([]*Figure, error) {
	cfg = cfg.withDefaults()
	data := lubm.Config{Universities: cfg.LUBMUniversities, Seed: cfg.Seed}.GenerateAll()
	b := core.NewBuilder(nil)
	b.AddAll(core.EncodeTriples(b.Dictionary(), data, cfg.Workers))
	g := graph.Memory(b.BuildParallel(cfg.Workers))

	// Course count mirrors the generator: 20 per department, 15 per
	// university (lubm.Config defaults).
	stream := serveStream(cfg.LUBMUniversities*15*20, cfg.Seed)

	modes := []string{"caches off", "plan cache", "plan+result cache"}
	qpsFig := &Figure{
		ID:     "serve01",
		Title:  fmt.Sprintf("Zipfian repeated-query throughput vs caching, %d triples (x = concurrent clients)", g.Len()),
		YLabel: "queries/sec",
	}
	latFig := &Figure{
		ID:     "serve01lat",
		Title:  fmt.Sprintf("Zipfian repeated-query latency vs caching, %d triples (x = concurrent clients)", g.Len()),
		YLabel: "seconds",
	}
	for _, m := range modes {
		qpsFig.Series = append(qpsFig.Series, Series{Name: m})
		latFig.Series = append(latFig.Series,
			Series{Name: "p50 " + m}, Series{Name: "p99 " + m})
	}

	for _, clients := range serveConcurrency {
		for mi := range modes {
			if progress != nil {
				progress(fmt.Sprintf("serve: %s, %d clients", modes[mi], clients))
			}
			// A fresh planner per point: each measurement starts from a
			// cold cache and includes its own warm-up misses.
			pl := servePlanner(g, mi)
			qps, p50, p99, err := servePoint(pl, stream, clients)
			if err != nil {
				return nil, fmt.Errorf("bench: serve01 %s: %w", modes[mi], err)
			}
			// The Triples column doubles as the x axis: concurrent clients.
			qpsFig.Series[mi].Points = append(qpsFig.Series[mi].Points,
				Point{Triples: clients, Value: qps})
			latFig.Series[mi*2].Points = append(latFig.Series[mi*2].Points,
				Point{Triples: clients, Value: p50})
			latFig.Series[mi*2+1].Points = append(latFig.Series[mi*2+1].Points,
				Point{Triples: clients, Value: p99})
		}
	}
	return []*Figure{qpsFig, latFig}, nil
}
