package bench

import (
	"fmt"
	"sync"

	"hexastore/internal/core"
	"hexastore/internal/dictionary"
	"hexastore/internal/graph"
	"hexastore/internal/lubm"
	"hexastore/internal/rdf"
	"hexastore/internal/shard"
	"hexastore/internal/sparql"
)

// ShardFigureIDs names the sharded serving-tier figures RunShard
// produces.
var ShardFigureIDs = []string{"shard01"}

// ShardQueries builds the shard01 read workload over a dataset: the
// chain join and a predicate scan (both scatter across shards), plus
// bound-subject lookups on subjects sampled evenly from the data (each
// routed to exactly one shard). The mix exercises both sides of the
// router's placement rule.
func ShardQueries(data []rdf.Triple) ([]*sparql.Query, error) {
	srcs := []string{
		`SELECT ?student ?course WHERE {
			?student <lubm:advisor> ?prof .
			?prof <lubm:teacherOf> ?course }`,
		`SELECT ?s ?o WHERE { ?s <lubm:takesCourse> ?o }`,
	}
	for i := 0; i < 8 && len(data) > 0; i++ {
		s := data[i*len(data)/8].Subject
		srcs = append(srcs, fmt.Sprintf(`SELECT ?p ?o WHERE { <%s> ?p ?o }`, s.Value))
	}
	queries := make([]*sparql.Query, len(srcs))
	for i, src := range srcs {
		q, err := sparql.Parse(src)
		if err != nil {
			return nil, err
		}
		queries[i] = q
	}
	return queries, nil
}

// ShardReadWorkload drives the shard01 read workload against one
// backend: 4 reader goroutines each evaluate every query 5 times, with
// intra-query join parallelism pinned to 1 worker — so any speedup over
// the single-store series comes from the cluster's scatter-gather
// fan-out, not from the parallel join evaluator. The same driver backs
// the hexbench shard01 figure and BenchmarkShard01.
func ShardReadWorkload(g graph.Graph, queries []*sparql.Query) error {
	const readers, rounds = 4, 5
	var wg sync.WaitGroup
	errCh := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				for _, q := range queries {
					if _, err := sparql.EvalWorkers(g, q, 1); err != nil {
						errCh <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunShard times the shard01 figure: the fixed concurrent-reader
// workload of ShardQueries against the scatter-gather serving tier at
// 1, 2 and 4 subject-hash shards, over growing LUBM prefixes. Each
// point bulk-loads a fresh cluster through the partitioned parallel
// build pipeline. On a single-core host the series mostly overlap (the
// scatter has no spare cores to fan out onto) — the recorded
// go_max_procs in the JSON snapshot says which regime a trajectory
// point was measured in.
func RunShard(cfg Config, progress func(string)) ([]*Figure, error) {
	cfg = cfg.withDefaults()
	data := lubm.Config{Universities: cfg.LUBMUniversities, Seed: cfg.Seed}.GenerateAll()

	fig := &Figure{
		ID:     "shard01",
		Title:  "Scatter-gather read throughput: 1 vs 2 vs 4 subject-hash shards",
		YLabel: "seconds",
	}
	shardCounts := []int{1, 2, 4}
	for _, n := range prefixSizes(len(data), cfg.Steps) {
		if progress != nil {
			progress(fmt.Sprintf("shard: prefix of %d triples", n))
		}
		queries, err := ShardQueries(data[:n])
		if err != nil {
			return nil, err
		}
		for si, nshards := range shardCounts {
			// A fresh cluster (own dictionary) per point: the bulk load
			// partitions by subject hash and builds shards in parallel.
			dict := dictionary.New()
			cl, err := shard.OpenCluster(shard.Config{
				Shards:  nshards,
				Dict:    dict,
				Load:    core.EncodeTriples(dict, data[:n], cfg.Workers),
				Workers: cfg.Workers,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: shard01 shards=%d: %w", nshards, err)
			}
			var runErr error
			p := measureBest(cfg.Repeats, func() {
				if err := ShardReadWorkload(cl, queries); err != nil && runErr == nil {
					runErr = err
				}
			})
			if err := cl.Close(); err != nil && runErr == nil {
				runErr = err
			}
			if runErr != nil {
				return nil, fmt.Errorf("bench: shard01 shards=%d: %w", nshards, runErr)
			}
			p.Triples = n
			if len(fig.Series) <= si {
				fig.Series = append(fig.Series, Series{Name: fmt.Sprintf("shards=%d", nshards)})
			}
			fig.Series[si].Points = append(fig.Series[si].Points, p)
		}
	}
	return []*Figure{fig}, nil
}
