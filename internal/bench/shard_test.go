package bench

import "testing"

// TestShard01Runs drives the shard01 figure at toy scale: all three
// shard-count series must produce a timing at every prefix, and the
// workload must evaluate cleanly on each cluster (any routing or merge
// bug surfaces as a query error here).
func TestShard01Runs(t *testing.T) {
	figs, err := RunShard(Config{LUBMUniversities: 1, Steps: 2, Repeats: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 1 || figs[0].ID != "shard01" {
		t.Fatalf("unexpected figures: %v", figs)
	}
	fig := figs[0]
	want := []string{"shards=1", "shards=2", "shards=4"}
	if len(fig.Series) != len(want) {
		t.Fatalf("series = %d, want %d", len(fig.Series), len(want))
	}
	for i, s := range fig.Series {
		if s.Name != want[i] {
			t.Errorf("series %d = %q, want %q", i, s.Name, want[i])
		}
		if len(s.Points) != 2 {
			t.Errorf("series %q has %d points, want 2", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Value <= 0 {
				t.Errorf("series %q: non-positive timing %v at %d triples", s.Name, p.Value, p.Triples)
			}
		}
	}
}
