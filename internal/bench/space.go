package bench

import (
	"fmt"
	"os"
	"path/filepath"

	"hexastore/internal/core"
	"hexastore/internal/dictionary"
	"hexastore/internal/disk"
	"hexastore/internal/lubm"
	"hexastore/internal/triplestore"
)

// SpaceFigureIDs names the index-space figures RunSpace produces.
var SpaceFigureIDs = []string{"space01"}

// RunSpace produces the space01 figure: bytes per triple of the memory
// backend (raw vs block-compressed layout, measured by
// core.Store.IndexBytes), the disk backend (raw vs compressed B+-tree
// leaves, measured as on-disk file bytes), and the flat triples-table
// baseline, over growing LUBM prefixes — plus the memory and disk
// compression ratios as their own series. This is the repository's
// answer to the paper's §4.1 space analysis: the acknowledged
// worst-case five-fold expansion, measured, and then halved (or
// better) by the delta+varint block layer.
func RunSpace(cfg Config, progress func(string)) ([]*Figure, error) {
	cfg = cfg.withDefaults()
	data := lubm.Config{Universities: cfg.LUBMUniversities, Seed: cfg.Seed}.GenerateAll()

	dict := dictionary.New()
	encoded := core.EncodeTriples(dict, data, cfg.Workers)

	fig := &Figure{
		ID:     "space01",
		Title:  "Index bytes per triple: block-compressed vs raw layouts",
		YLabel: "bytes/triple (ratio series: x)",
	}
	addPoint := func(series string, triples int, v float64) {
		for i := range fig.Series {
			if fig.Series[i].Name == series {
				fig.Series[i].Points = append(fig.Series[i].Points, Point{Triples: triples, Value: v})
				return
			}
		}
		fig.Series = append(fig.Series, Series{Name: series, Points: []Point{{Triples: triples, Value: v}}})
	}

	tmp, err := os.MkdirTemp("", "hexbench-space")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	run := 0
	for _, n := range prefixSizes(len(encoded), cfg.Steps) {
		if progress != nil {
			progress(fmt.Sprintf("space: prefix of %d triples", n))
		}

		// Memory backend, both layouts.
		var memBytes [2]float64
		var triples int
		for i, compress := range []bool{false, true} {
			b := core.NewBuilder(dict)
			b.SetCompression(compress)
			b.AddAll(encoded[:n])
			st := b.BuildParallel(cfg.Workers)
			triples = st.Len()
			memBytes[i] = st.IndexStats().BytesPerTriple()
		}
		addPoint("Memory raw", triples, memBytes[0])
		addPoint("Memory compressed", triples, memBytes[1])
		if memBytes[1] > 0 {
			addPoint("Memory ratio", triples, memBytes[0]/memBytes[1])
		}

		// Disk backend, both leaf formats, measured as file bytes.
		var diskBytes [2]float64
		for i, uncompressed := range []bool{true, false} {
			run++
			dir := filepath.Join(tmp, fmt.Sprintf("d%d", run))
			st, derr := disk.Create(dir, disk.Options{Uncompressed: uncompressed})
			if derr != nil {
				return nil, derr
			}
			if derr := st.BulkLoadParallel(encoded[:n], cfg.Workers); derr != nil {
				st.Close()
				return nil, derr
			}
			// Close before measuring: buffered pages reach the file on
			// the closing flush (a compressed store often fits its whole
			// tree set in the buffer pool until then).
			if derr := st.Close(); derr != nil {
				return nil, derr
			}
			size, derr := st.SizeBytes()
			if derr != nil {
				return nil, derr
			}
			diskBytes[i] = float64(size) / float64(triples)
			os.RemoveAll(dir)
		}
		addPoint("Disk raw", triples, diskBytes[0])
		addPoint("Disk compressed", triples, diskBytes[1])
		if diskBytes[1] > 0 {
			addPoint("Disk ratio", triples, diskBytes[0]/diskBytes[1])
		}

		// Flat triples-table baseline (the paper's "conventional
		// solution"): its own SizeBytes estimate.
		base := triplestore.New(dict)
		for _, t := range encoded[:n] {
			base.Add(t[0], t[1], t[2])
		}
		addPoint("Baseline", triples, float64(base.SizeBytes())/float64(triples))
	}
	return []*Figure{fig}, nil
}
