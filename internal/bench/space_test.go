package bench

import "testing"

// TestSpace01CompressionRatio is the acceptance gate for the
// block-compressed index layer: on the memory backend, bytes per
// triple with compression must be at least 2x smaller than the raw
// layout at every measured prefix.
func TestSpace01CompressionRatio(t *testing.T) {
	figs, err := RunSpace(Config{LUBMUniversities: 1, Steps: 2, Repeats: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 1 || figs[0].ID != "space01" {
		t.Fatalf("unexpected figures: %v", figs)
	}
	found := map[string]bool{}
	for _, s := range figs[0].Series {
		switch s.Name {
		case "Memory ratio":
			found[s.Name] = true
			for _, p := range s.Points {
				if p.Value < 2.0 {
					t.Errorf("memory compression ratio %.2f at %d triples, want >= 2.0", p.Value, p.Triples)
				}
			}
		case "Disk ratio":
			found[s.Name] = true
			for _, p := range s.Points {
				if p.Value < 2.0 {
					t.Errorf("disk compression ratio %.2f at %d triples, want >= 2.0", p.Value, p.Triples)
				}
			}
		}
	}
	for _, name := range []string{"Memory ratio", "Disk ratio"} {
		if !found[name] {
			t.Errorf("space01 is missing the %q series", name)
		}
	}
}
