package bench

// trace_overhead — the cost of observability. The tentpole claim of the
// tracing layer is that a query that does not ask for a trace pays
// (almost) nothing: spans are recorded per join step, never per row,
// and every instrumentation site is a nil check when tracing is off.
// This figure measures it directly: the same join workload with
// tracing disabled vs enabled, over growing LUBM prefixes. The two
// lines should be within a few percent of each other — if they
// diverge, an instrumentation site has crept into a per-row path.

import (
	"context"
	"fmt"
	"time"

	"hexastore/internal/core"
	"hexastore/internal/graph"
	"hexastore/internal/lubm"
	"hexastore/internal/obs"
	"hexastore/internal/sparql"
)

// TraceFigureIDs names the tracing-overhead figures RunTrace produces.
var TraceFigureIDs = []string{"trace_overhead"}

// traceQuery is the join workload: a three-pattern star-and-chain join
// that exercises the merge/probe step machinery (the instrumented
// paths) without being dominated by result materialization.
const traceQuery = `SELECT ?x ?c WHERE {
	?x <lubm:type> <lubm:GraduateStudent> .
	?x <lubm:takesCourse> ?c .
	?x <lubm:memberOf> ?d }`

// traceReps is how many times each point evaluates the query; the
// reported value is the per-evaluation mean, which is stable enough for
// an overhead comparison without per-rep variance tracking.
const traceReps = 5

// tracePoint times traceReps evaluations, with or without a trace
// attached, and returns mean seconds per evaluation.
func tracePoint(g graph.Graph, q *sparql.Query, traced bool) (float64, error) {
	start := time.Now()
	for i := 0; i < traceReps; i++ {
		opt := sparql.EvalOptions{}
		if traced {
			opt.Trace = obs.NewTrace("query")
		}
		if _, err := sparql.EvalOpts(context.Background(), g, q, opt); err != nil {
			return 0, err
		}
		if traced {
			opt.Trace.Finish()
		}
	}
	return time.Since(start).Seconds() / traceReps, nil
}

// RunTrace times the trace_overhead figure: join latency with tracing off vs
// on over growing LUBM prefixes. The "trace overhead" headline number
// is the ratio of the two series at the largest prefix.
func RunTrace(cfg Config, progress func(string)) ([]*Figure, error) {
	cfg = cfg.withDefaults()
	data := lubm.Config{Universities: cfg.LUBMUniversities, Seed: cfg.Seed}.GenerateAll()

	fig := &Figure{
		ID:     "trace_overhead",
		Title:  "Query tracing overhead: three-pattern join, tracing off vs on",
		YLabel: "seconds per query",
	}
	fig.Series = append(fig.Series, Series{Name: "tracing off"}, Series{Name: "tracing on"})

	q, err := sparql.Parse(traceQuery)
	if err != nil {
		return nil, err
	}
	for _, n := range prefixSizes(len(data), cfg.Steps) {
		if progress != nil {
			progress(fmt.Sprintf("trace: prefix of %d triples", n))
		}
		b := core.NewBuilder(nil)
		b.AddAll(core.EncodeTriples(b.Dictionary(), data[:n], cfg.Workers))
		g := graph.Memory(b.BuildParallel(cfg.Workers))
		for mi, traced := range []bool{false, true} {
			sec, err := tracePoint(g, q, traced)
			if err != nil {
				return nil, fmt.Errorf("bench: trace_overhead traced=%v: %w", traced, err)
			}
			fig.Series[mi].Points = append(fig.Series[mi].Points, Point{Triples: n, Value: sec})
		}
	}
	return []*Figure{fig}, nil
}
