package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"hexastore/internal/core"
	"hexastore/internal/delta"
	"hexastore/internal/dictionary"
	"hexastore/internal/graph"
	"hexastore/internal/lubm"
	"hexastore/internal/rdf"
	"hexastore/internal/sparql"
)

// WriteFigureIDs names the mixed read/write figures RunWrite produces.
var WriteFigureIDs = []string{"write01"}

// writeMixQueries is the read side of the mixed workload: the 2-pattern
// chain join from the SPARQL suite, evaluated repeatedly while updates
// stream in.
const writeMixQuery = `SELECT ?student ?course WHERE {
	?student <lubm:advisor> ?prof .
	?prof <lubm:teacherOf> ?course }`

// lockedGraph reproduces the pre-overlay concurrency discipline (the
// DB/server request lock): queries share an RWMutex, updates take it
// exclusively — so every update stalls every reader for its duration.
// It is the baseline the MVCC overlay is measured against.
type lockedGraph struct {
	mu sync.RWMutex
	g  graph.Graph
}

func (l *lockedGraph) query(q *sparql.Query) error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	_, err := sparql.Eval(l.g, q)
	return err
}

func (l *lockedGraph) update(ops []graph.TripleOp) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _, err := graph.ApplyTriples(l.g, ops)
	return err
}

// overlayGraph is the live-update path: snapshot-pinned queries, no
// request lock in either direction.
type overlayGraph struct{ ov *delta.Overlay }

func (o overlayGraph) query(q *sparql.Query) error {
	_, err := sparql.Eval(o.ov, q)
	return err
}

func (o overlayGraph) update(ops []graph.TripleOp) error {
	_, _, err := o.ov.ApplyTriples(ops)
	return err
}

type mixedStore interface {
	query(q *sparql.Query) error
	update(ops []graph.TripleOp) error
}

// runMixed adapts a mixedStore to the exported workload driver.
func runMixed(ms mixedStore, q *sparql.Query, tag string) error {
	return MixedWorkload(func() error { return ms.query(q) }, ms.update, tag)
}

// MixedWorkload drives the write01 mixed read/write workload against
// one store discipline: 2 reader goroutines each run 40 evaluations of
// the query while 2 writer goroutines each commit 40 update batches
// (5 inserts followed, one batch later, by their 5 deletes — so the
// store returns to its initial state and repeats stay comparable). The
// same driver backs the hexbench write01 figure and BenchmarkWrite01,
// so the benchmark twin cannot drift from the figure it mirrors. tag
// namespaces the written triples, keeping every invocation's inserts
// fresh.
func MixedWorkload(query func() error, update func([]graph.TripleOp) error, tag string) error {
	const (
		readers    = 2
		writers    = 2
		queriesPer = 40
		batchesPer = 40
		batchSize  = 5
	)
	var wg sync.WaitGroup
	errCh := make(chan error, readers+writers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < queriesPer; i++ {
				if err := query(); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := func(b int, del bool) []graph.TripleOp {
				ops := make([]graph.TripleOp, batchSize)
				for i := range ops {
					ops[i] = graph.TripleOp{Del: del, T: rdf.T(
						rdf.NewIRI(fmt.Sprintf("bench:%s/w%d/b%d/s%d", tag, w, b, i)),
						rdf.NewIRI("lubm:advisor"),
						rdf.NewIRI(fmt.Sprintf("bench:%s/w%d/prof", tag, w)),
					)}
				}
				return ops
			}
			for b := 0; b < batchesPer; b++ {
				if err := update(batch(b, false)); err != nil {
					errCh <- err
					return
				}
				if b > 0 {
					if err := update(batch(b-1, true)); err != nil {
						errCh <- err
						return
					}
				}
			}
			if err := update(batch(batchesPer-1, true)); err != nil {
				errCh <- err
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunWrite times the write01 figure: a fixed mixed read/write workload
// (concurrent chain-join SELECTs against a stream of INSERT/DELETE
// batches) over growing LUBM prefixes, once per concurrency discipline —
// the request-locked store, the MVCC delta overlay, and the overlay with
// a group-committed WAL (durability included in the measured path).
func RunWrite(cfg Config, progress func(string)) ([]*Figure, error) {
	cfg = cfg.withDefaults()
	data := lubm.Config{Universities: cfg.LUBMUniversities, Seed: cfg.Seed}.GenerateAll()

	dict := dictionary.New()
	encoded := core.EncodeTriples(dict, data, cfg.Workers)
	q, err := sparql.Parse(writeMixQuery)
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		ID:     "write01",
		Title:  "Mixed read/write throughput: request lock vs MVCC overlay vs overlay+WAL",
		YLabel: "seconds",
	}
	walDir, err := os.MkdirTemp("", "hexbench-wal")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(walDir)

	series := []string{"Locked", "Overlay", "Overlay+WAL"}
	run := 0
	for _, n := range prefixSizes(len(encoded), cfg.Steps) {
		if progress != nil {
			progress(fmt.Sprintf("write: prefix of %d triples", n))
		}
		for si, name := range series {
			// A fresh store per series, bulk-built on the shared
			// dictionary so query constants resolve identically. The
			// Locked series mutates its store in place, so it gets the
			// raw layout (a compressed store would decompress itself on
			// the first write, billing an O(n) conversion to this
			// figure); the overlay series keep the compressed default —
			// the overlay never mutates its main, which is exactly the
			// configuration compression is designed for.
			build := func(compress bool) *core.Store {
				b := core.NewBuilder(dict)
				b.SetCompression(compress)
				b.AddAll(encoded[:n])
				return b.BuildParallel(cfg.Workers)
			}
			var (
				ms      mixedStore
				closeFn func() error
			)
			switch name {
			case "Locked":
				ms = &lockedGraph{g: graph.Memory(build(false))}
			default:
				opts := delta.Options{}
				if name == "Overlay+WAL" {
					run++
					opts.WALPath = filepath.Join(walDir, fmt.Sprintf("w%d.log", run))
				}
				ov, oerr := delta.Open(graph.Memory(build(true)), opts)
				if oerr != nil {
					return nil, oerr
				}
				ms = overlayGraph{ov: ov}
				closeFn = ov.Close
			}

			var runErr error
			tag := 0
			p := measureBest(cfg.Repeats, func() {
				tag++
				if err := runMixed(ms, q, fmt.Sprintf("%d-%d", run, tag)); err != nil && runErr == nil {
					runErr = err
				}
			})
			if closeFn != nil {
				if err := closeFn(); err != nil && runErr == nil {
					runErr = err
				}
			}
			if runErr != nil {
				return nil, fmt.Errorf("bench: write01 %s: %w", name, runErr)
			}
			p.Triples = n
			if len(fig.Series) <= si {
				fig.Series = append(fig.Series, Series{Name: name})
			}
			fig.Series[si].Points = append(fig.Series[si].Points, p)
		}
	}
	return []*Figure{fig}, nil
}
