// Package btree implements an on-disk B+-tree over fixed-width triple
// keys, the index structure of the disk-based Hexastore (paper §7 future
// work). Each of the six orderings of a disk Hexastore is one Tree whose
// keys are the triples permuted into that ordering, so every statement
// pattern becomes a prefix range scan.
//
// Keys are 24-byte [3]uint64 values compared lexicographically. Leaves
// are chained for range scans. Deletion is lazy (keys are removed from
// leaves without rebalancing), which keeps the write path simple and
// matches the paper's observation that RDF workloads are read-heavy.
package btree

import (
	"encoding/binary"
	"fmt"

	"hexastore/internal/pagefile"
)

// Key is a lexicographically ordered triple of ids.
type Key [3]uint64

// Compare returns -1, 0, or +1 ordering a against b lexicographically.
func Compare(a, b Key) int {
	for i := 0; i < 3; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// Less reports a < b.
func Less(a, b Key) bool { return Compare(a, b) < 0 }

// MaxKey is the largest possible key, useful as an inclusive scan bound.
var MaxKey = Key{^uint64(0), ^uint64(0), ^uint64(0)}

// Page layout. All node kinds begin with a one-byte type tag and a
// two-byte key count.
//
//	leaf:      [0]=tagLeaf  [2:4]=count [4:8]=next leaf id   [8:]=keys
//	comp leaf: [0]=tagCompLeaf [2:4]=count [4:8]=next leaf id
//	           [8:10]=byte length of the delta stream [10:]=stream
//	internal:  [0]=tagInner [2:4]=count [8:8+4*(maxInnerKeys+1)]=children
//	           [innerKeysOff:]=keys
//
// A compressed leaf holds its keys as a prefix-delta uvarint stream
// (see appendKeyDelta) instead of fixed 24-byte records, typically
// packing 3-6x more keys per page — fewer pages, fewer I/Os, and a
// smaller buffer-pool working set for the same triple set. Leaves of
// both kinds coexist in one tree: bulk builds emit compressed leaves
// (when the tree's compression flag is on) and in-place mutation
// re-encodes or splits them, so the formats are distinguished per page
// by the tag alone.
const (
	tagLeaf     = 1
	tagInner    = 2
	tagCompLeaf = 3

	keySize = 24

	leafKeysOff = 8
	// MaxLeafKeys is the raw leaf fanout.
	MaxLeafKeys = (pagefile.PayloadSize - leafKeysOff) / keySize

	// compLeafDataOff is where a compressed leaf's delta stream starts;
	// compLeafCap is the stream's byte capacity.
	compLeafDataOff = 10
	compLeafCap     = pagefile.PayloadSize - compLeafDataOff

	// MaxInnerKeys is the internal fanout minus one.
	MaxInnerKeys = (pagefile.PayloadSize - 8 - 4) / (keySize + 4)
	childrenOff  = 8
	innerKeysOff = childrenOff + 4*(MaxInnerKeys+1)
)

// Tree is a B+-tree stored in a pagefile. It persists its root page id
// and key count in two root slots of the pagefile, so a Tree survives
// closing and reopening the file. A Tree is not safe for concurrent use;
// the disk store provides synchronization.
type Tree struct {
	pf        *pagefile.File
	rootSlot  int
	countSlot int
	root      pagefile.PageID
	count     uint64

	// compress makes BulkBuild emit compressed leaves. Reads and
	// mutations handle both leaf kinds regardless of the flag (the
	// format is per-page, carried by the tag).
	compress bool

	// scratch buffers reused across compressed-leaf decodes and
	// re-encodes; a Tree is single-goroutine (the disk store locks).
	scratchKeys []Key
	scratchBuf  []byte
}

// SetCompression selects whether BulkBuild writes compressed leaves.
func (t *Tree) SetCompression(on bool) { t.compress = on }

// New attaches to the tree whose state lives in the given root slots of
// pf, creating an empty tree if the slots are zero.
func New(pf *pagefile.File, rootSlot, countSlot int) *Tree {
	return &Tree{
		pf:        pf,
		rootSlot:  rootSlot,
		countSlot: countSlot,
		root:      pagefile.PageID(pf.Root(rootSlot)),
		count:     pf.Root(countSlot),
	}
}

// Len returns the number of keys in the tree.
func (t *Tree) Len() uint64 { return t.count }

func (t *Tree) setRoot(id pagefile.PageID) {
	t.root = id
	t.pf.SetRoot(t.rootSlot, uint64(id))
}

func (t *Tree) setCount(n uint64) {
	t.count = n
	t.pf.SetRoot(t.countSlot, n)
}

// node accessors over a raw page payload.

func nodeTag(d []byte) byte  { return d[0] }
func nodeCount(d []byte) int { return int(binary.LittleEndian.Uint16(d[2:4])) }
func setNodeCount(d []byte, n int) {
	binary.LittleEndian.PutUint16(d[2:4], uint16(n))
}

func leafNext(d []byte) pagefile.PageID {
	return pagefile.PageID(binary.LittleEndian.Uint32(d[4:8]))
}
func setLeafNext(d []byte, id pagefile.PageID) {
	binary.LittleEndian.PutUint32(d[4:8], uint32(id))
}

func keyAt(d []byte, off, i int) Key {
	p := off + i*keySize
	return Key{
		binary.LittleEndian.Uint64(d[p:]),
		binary.LittleEndian.Uint64(d[p+8:]),
		binary.LittleEndian.Uint64(d[p+16:]),
	}
}

func putKeyAt(d []byte, off, i int, k Key) {
	p := off + i*keySize
	binary.LittleEndian.PutUint64(d[p:], k[0])
	binary.LittleEndian.PutUint64(d[p+8:], k[1])
	binary.LittleEndian.PutUint64(d[p+16:], k[2])
}

func childAt(d []byte, i int) pagefile.PageID {
	return pagefile.PageID(binary.LittleEndian.Uint32(d[childrenOff+4*i:]))
}
func putChildAt(d []byte, i int, id pagefile.PageID) {
	binary.LittleEndian.PutUint32(d[childrenOff+4*i:], uint32(id))
}

// Compressed-leaf codec. Keys are emitted as prefix deltas: the first
// key as three full uvarints, each following key as
//
//	uvarint(k0-p0); if the delta is nonzero, k1 and k2 follow in full;
//	otherwise uvarint(k1-p1); if nonzero, k2 follows in full; otherwise
//	uvarint(k2-p2) (>= 1, since keys are strictly increasing).
//
// Shared triple prefixes — the normal case inside one leaf of one
// ordering — cost one byte each, so a typical key takes 3-6 bytes
// instead of 24.

// appendKeyDelta appends k's delta encoding relative to prev.
func appendKeyDelta(dst []byte, prev, k Key, first bool) []byte {
	if first {
		dst = binary.AppendUvarint(dst, k[0])
		dst = binary.AppendUvarint(dst, k[1])
		return binary.AppendUvarint(dst, k[2])
	}
	d0 := k[0] - prev[0]
	dst = binary.AppendUvarint(dst, d0)
	if d0 != 0 {
		dst = binary.AppendUvarint(dst, k[1])
		return binary.AppendUvarint(dst, k[2])
	}
	d1 := k[1] - prev[1]
	dst = binary.AppendUvarint(dst, d1)
	if d1 != 0 {
		return binary.AppendUvarint(dst, k[2])
	}
	return binary.AppendUvarint(dst, k[2]-prev[2])
}

// encodeLeafStream renders keys as a delta stream into dst (reset to
// zero length first).
func encodeLeafStream(dst []byte, keys []Key) []byte {
	dst = dst[:0]
	var prev Key
	for i, k := range keys {
		dst = appendKeyDelta(dst, prev, k, i == 0)
		prev = k
	}
	return dst
}

// compLeafStreamLen returns the byte length of a compressed leaf's
// delta stream.
func compLeafStreamLen(d []byte) int {
	return int(binary.LittleEndian.Uint16(d[8:10]))
}

// forEachCompKey streams a compressed leaf's keys in ascending order
// until fn returns false, decoding one key at a time with no buffer.
// It returns the stream position reached and the stream's recorded
// byte length (equal when every key was visited — CheckInvariants
// validates exactly that). Every reader of the compressed leaf format
// goes through this walk, so the layout lives in one place.
func forEachCompKey(d []byte, fn func(Key) bool) (pos, streamLen int) {
	n := nodeCount(d)
	streamLen = compLeafStreamLen(d)
	stream := d[compLeafDataOff : compLeafDataOff+streamLen]
	var k Key
	for i := 0; i < n; i++ {
		k, pos = decodeNextKey(stream, pos, k, i == 0)
		if !fn(k) {
			return pos, streamLen
		}
	}
	return pos, streamLen
}

// decodeCompLeaf decodes a compressed leaf's keys into dst (reset to
// zero length first).
func decodeCompLeaf(d []byte, dst []Key) []Key {
	dst = dst[:0]
	forEachCompKey(d, func(k Key) bool {
		dst = append(dst, k)
		return true
	})
	return dst
}

func streamUvarint(b []byte, pos int) (uint64, int) {
	if v := b[pos]; v < 0x80 {
		return uint64(v), pos + 1
	}
	v, k := binary.Uvarint(b[pos:])
	return v, pos + k
}

// writeCompLeaf writes keys into page payload d as a compressed leaf,
// preserving the next-leaf pointer already in d. stream must be the
// encoded form of keys and fit compLeafCap.
func writeCompLeaf(d []byte, keys []Key, stream []byte) {
	d[0] = tagCompLeaf
	setNodeCount(d, len(keys))
	binary.LittleEndian.PutUint16(d[8:10], uint16(len(stream)))
	copy(d[compLeafDataOff:], stream)
}

// searchKeys returns the index of the first key at off >= k.
func searchKeys(d []byte, off, count int, k Key) int {
	lo, hi := 0, count
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if Less(keyAt(d, off, mid), k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// insertKeyAt shifts keys right and writes k at index i.
func insertKeyAt(d []byte, off, count, i int, k Key) {
	copy(d[off+(i+1)*keySize:off+(count+1)*keySize], d[off+i*keySize:off+count*keySize])
	putKeyAt(d, off, i, k)
}

// removeKeyAt shifts keys left over index i.
func removeKeyAt(d []byte, off, count, i int) {
	copy(d[off+i*keySize:off+(count-1)*keySize], d[off+(i+1)*keySize:off+count*keySize])
}

// containsCompLeaf reports whether k is in the compressed leaf payload
// d, decoding the delta stream one key at a time and stopping at the
// first key >= k — no buffer, so concurrent readers stay allocation-
// and state-free.
func containsCompLeaf(d []byte, k Key) bool {
	found := false
	forEachCompKey(d, func(cur Key) bool {
		switch Compare(cur, k) {
		case 0:
			found = true
			return false
		case 1:
			return false
		}
		return true
	})
	return found
}

// decodeNextKey decodes one delta-encoded key from stream at pos.
func decodeNextKey(stream []byte, pos int, prev Key, first bool) (Key, int) {
	var k Key
	if first {
		var v uint64
		v, pos = streamUvarint(stream, pos)
		k[0] = v
		v, pos = streamUvarint(stream, pos)
		k[1] = v
		v, pos = streamUvarint(stream, pos)
		k[2] = v
		return k, pos
	}
	var d0, v uint64
	d0, pos = streamUvarint(stream, pos)
	k[0] = prev[0] + d0
	if d0 != 0 {
		v, pos = streamUvarint(stream, pos)
		k[1] = v
		v, pos = streamUvarint(stream, pos)
		k[2] = v
		return k, pos
	}
	var d1 uint64
	d1, pos = streamUvarint(stream, pos)
	k[1] = prev[1] + d1
	if d1 != 0 {
		v, pos = streamUvarint(stream, pos)
		k[2] = v
		return k, pos
	}
	v, pos = streamUvarint(stream, pos)
	k[2] = prev[2] + v
	return k, pos
}

// Contains reports whether k is in the tree.
func (t *Tree) Contains(k Key) (bool, error) {
	if t.root == pagefile.NilPage {
		return false, nil
	}
	id := t.root
	for {
		p, err := t.pf.Get(id)
		if err != nil {
			return false, err
		}
		d := p.Data()
		switch nodeTag(d) {
		case tagLeaf:
			n := nodeCount(d)
			i := searchKeys(d, leafKeysOff, n, k)
			found := i < n && Compare(keyAt(d, leafKeysOff, i), k) == 0
			t.pf.Release(p)
			return found, nil
		case tagCompLeaf:
			found := containsCompLeaf(d, k)
			t.pf.Release(p)
			return found, nil
		}
		n := nodeCount(d)
		i := searchKeys(d, innerKeysOff, n, k)
		if i < n && Compare(keyAt(d, innerKeysOff, i), k) == 0 {
			i++
		}
		id = childAt(d, i)
		t.pf.Release(p)
	}
}

// splitRef describes one new right sibling produced by a node
// mutation: its smallest-key separator and its page id. Raw leaves and
// internal nodes yield at most one; a compressed leaf that overflows
// its page on re-encode can burst into several (it holds many more
// keys than a raw page can), which is why mutation results are a list.
type splitRef struct {
	sep   Key
	right pagefile.PageID
}

// Insert adds k, reporting whether the tree changed (false if k was
// already present).
func (t *Tree) Insert(k Key) (bool, error) {
	if t.root == pagefile.NilPage {
		p, err := t.pf.Allocate()
		if err != nil {
			return false, err
		}
		d := p.Data()
		d[0] = tagLeaf
		setNodeCount(d, 1)
		putKeyAt(d, leafKeysOff, 0, k)
		p.MarkDirty()
		t.setRoot(p.ID())
		t.pf.Release(p)
		t.setCount(1)
		return true, nil
	}
	added, splits, err := t.mutate(t.root, k, false)
	if err != nil {
		return false, err
	}
	if err := t.growRoot(splits); err != nil {
		return false, err
	}
	if added {
		t.setCount(t.count + 1)
	}
	return added, nil
}

// Delete removes k, reporting whether the tree changed. Raw leaves are
// not rebalanced or reclaimed (lazy deletion): scans skip empty leaves
// via the leaf chain. Compressed leaves re-encode in place; in the
// rare case the re-encoded stream grows past the page (removing a key
// can lengthen its successor's delta), the leaf splits like an insert
// would.
func (t *Tree) Delete(k Key) (bool, error) {
	if t.root == pagefile.NilPage {
		return false, nil
	}
	removed, splits, err := t.mutate(t.root, k, true)
	if err != nil {
		return false, err
	}
	if err := t.growRoot(splits); err != nil {
		return false, err
	}
	if removed {
		t.setCount(t.count - 1)
	}
	return removed, nil
}

// growRoot installs a new root over the old root and the split-off
// right siblings, when a mutation split the root.
func (t *Tree) growRoot(splits []splitRef) error {
	if len(splits) == 0 {
		return nil
	}
	p, err := t.pf.Allocate()
	if err != nil {
		return err
	}
	d := p.Data()
	d[0] = tagInner
	setNodeCount(d, len(splits))
	putChildAt(d, 0, t.root)
	for i, s := range splits {
		putKeyAt(d, innerKeysOff, i, s.sep)
		putChildAt(d, i+1, s.right)
	}
	p.MarkDirty()
	t.setRoot(p.ID())
	t.pf.Release(p)
	return nil
}

// mutate applies one insert (del=false) or delete (del=true) of k under
// page id, returning whether the tree changed and the right siblings
// the page split into (ascending, possibly several for a bursting
// compressed leaf).
func (t *Tree) mutate(id pagefile.PageID, k Key, del bool) (changed bool, splits []splitRef, err error) {
	p, err := t.pf.Get(id)
	if err != nil {
		return false, nil, err
	}
	defer t.pf.Release(p)
	d := p.Data()

	switch nodeTag(d) {
	case tagLeaf:
		if del {
			n := nodeCount(d)
			i := searchKeys(d, leafKeysOff, n, k)
			if i >= n || Compare(keyAt(d, leafKeysOff, i), k) != 0 {
				return false, nil, nil
			}
			removeKeyAt(d, leafKeysOff, n, i)
			setNodeCount(d, n-1)
			p.MarkDirty()
			return true, nil, nil
		}
		return t.insertRawLeaf(p, k)

	case tagCompLeaf:
		return t.mutateCompLeaf(p, k, del)

	default: // internal node
		n := nodeCount(d)
		ci := searchKeys(d, innerKeysOff, n, k)
		if ci < n && Compare(keyAt(d, innerKeysOff, ci), k) == 0 {
			ci++
		}
		changed, csplits, err := t.mutate(childAt(d, ci), k, del)
		if err != nil || len(csplits) == 0 {
			return changed, nil, err
		}
		m := len(csplits)
		if n+m <= MaxInnerKeys {
			// In-place: shift keys [ci,n) and children [ci+1,n+1) right
			// by m, then write the new separators and children.
			copy(d[innerKeysOff+(ci+m)*keySize:innerKeysOff+(n+m)*keySize],
				d[innerKeysOff+ci*keySize:innerKeysOff+n*keySize])
			copy(d[childrenOff+4*(ci+1+m):childrenOff+4*(n+1+m)],
				d[childrenOff+4*(ci+1):childrenOff+4*(n+1)])
			for j, s := range csplits {
				putKeyAt(d, innerKeysOff, ci+j, s.sep)
				putChildAt(d, ci+1+j, s.right)
			}
			setNodeCount(d, n+m)
			p.MarkDirty()
			return changed, nil, nil
		}
		// Overflow: materialize the widened arrays and split the node
		// into as many internal nodes as needed, pushing one separator
		// up between each pair.
		keys := make([]Key, 0, n+m)
		children := make([]pagefile.PageID, 0, n+m+1)
		for i := 0; i < n; i++ {
			keys = append(keys, keyAt(d, innerKeysOff, i))
		}
		for i := 0; i <= n; i++ {
			children = append(children, childAt(d, i))
		}
		keys = append(keys, make([]Key, m)...)
		copy(keys[ci+m:], keys[ci:n])
		children = append(children, make([]pagefile.PageID, m)...)
		copy(children[ci+1+m:], children[ci+1:n+1])
		for j, s := range csplits {
			keys[ci+j] = s.sep
			children[ci+1+j] = s.right
		}
		splits, err := t.splitInternal(p, keys, children)
		return changed, splits, err
	}
}

// insertRawLeaf inserts k into the raw leaf p, splitting once when
// full — the pre-existing single-split path.
func (t *Tree) insertRawLeaf(p *pagefile.Page, k Key) (bool, []splitRef, error) {
	d := p.Data()
	n := nodeCount(d)
	i := searchKeys(d, leafKeysOff, n, k)
	if i < n && Compare(keyAt(d, leafKeysOff, i), k) == 0 {
		return false, nil, nil
	}
	if n < MaxLeafKeys {
		insertKeyAt(d, leafKeysOff, n, i, k)
		setNodeCount(d, n+1)
		p.MarkDirty()
		return true, nil, nil
	}
	// Split the leaf: left keeps [0:mid), right takes [mid:n); then
	// insert k into the proper half.
	rp, err := t.pf.Allocate()
	if err != nil {
		return false, nil, err
	}
	defer t.pf.Release(rp)
	rd := rp.Data()
	rd[0] = tagLeaf
	mid := n / 2
	moved := n - mid
	copy(rd[leafKeysOff:leafKeysOff+moved*keySize], d[leafKeysOff+mid*keySize:leafKeysOff+n*keySize])
	setNodeCount(rd, moved)
	setNodeCount(d, mid)
	setLeafNext(rd, leafNext(d))
	setLeafNext(d, rp.ID())
	sep := keyAt(rd, leafKeysOff, 0)
	if Less(k, sep) {
		insertKeyAt(d, leafKeysOff, mid, searchKeys(d, leafKeysOff, mid, k), k)
		setNodeCount(d, mid+1)
	} else {
		i := searchKeys(rd, leafKeysOff, moved, k)
		insertKeyAt(rd, leafKeysOff, moved, i, k)
		setNodeCount(rd, moved+1)
	}
	p.MarkDirty()
	rp.MarkDirty()
	return true, []splitRef{{sep: sep, right: rp.ID()}}, nil
}

// mutateCompLeaf applies an insert or delete to a compressed leaf:
// decode, modify, re-encode. When the re-encoded stream no longer fits
// the page, the key set is split into encodable halves — the first
// rewrites the page, the rest become new chained compressed leaves.
func (t *Tree) mutateCompLeaf(p *pagefile.Page, k Key, del bool) (bool, []splitRef, error) {
	d := p.Data()
	t.scratchKeys = decodeCompLeaf(d, t.scratchKeys)
	keys := t.scratchKeys
	i := 0
	for i < len(keys) && Less(keys[i], k) {
		i++
	}
	found := i < len(keys) && Compare(keys[i], k) == 0
	if del {
		if !found {
			return false, nil, nil
		}
		keys = append(keys[:i], keys[i+1:]...)
	} else {
		if found {
			return false, nil, nil
		}
		keys = append(keys, Key{})
		copy(keys[i+1:], keys[i:])
		keys[i] = k
	}
	t.scratchKeys = keys

	t.scratchBuf = encodeLeafStream(t.scratchBuf, keys)
	if len(t.scratchBuf) <= compLeafCap {
		writeCompLeaf(d, keys, t.scratchBuf)
		p.MarkDirty()
		return true, nil, nil
	}

	// Burst: halve recursively until every group encodes within a page.
	groups := splitEncodable(keys)
	next := leafNext(d)
	var splits []splitRef
	// Rewrite this page with the first group.
	t.scratchBuf = encodeLeafStream(t.scratchBuf, groups[0])
	writeCompLeaf(d, groups[0], t.scratchBuf)
	prev := p
	for gi := 1; gi < len(groups); gi++ {
		rp, err := t.pf.Allocate()
		if err != nil {
			return false, nil, err
		}
		rd := rp.Data()
		t.scratchBuf = encodeLeafStream(t.scratchBuf, groups[gi])
		writeCompLeaf(rd, groups[gi], t.scratchBuf)
		setLeafNext(prev.Data(), rp.ID())
		prev.MarkDirty()
		if prev != p {
			t.pf.Release(prev)
		}
		splits = append(splits, splitRef{sep: groups[gi][0], right: rp.ID()})
		prev = rp
	}
	setLeafNext(prev.Data(), next)
	prev.MarkDirty()
	if prev != p {
		t.pf.Release(prev)
	}
	return true, splits, nil
}

// splitInternal rewrites the overflowing internal node p (whose
// widened keys/children arrays are given; len(keys) > MaxInnerKeys)
// as several internal nodes, pushing one separator up between each
// pair. Children are distributed evenly, so every part keeps at least
// one key.
func (t *Tree) splitInternal(p *pagefile.Page, keys []Key, children []pagefile.PageID) ([]splitRef, error) {
	parts := (len(children) + MaxInnerKeys) / (MaxInnerKeys + 1)
	base := len(children) / parts
	extra := len(children) % parts
	var splits []splitRef
	idx := 0
	for part := 0; part < parts; part++ {
		cnt := base
		if part < extra {
			cnt++
		}
		node := p
		if part > 0 {
			rp, err := t.pf.Allocate()
			if err != nil {
				return nil, err
			}
			defer t.pf.Release(rp)
			node = rp
			splits = append(splits, splitRef{sep: keys[idx-1], right: rp.ID()})
		}
		d := node.Data()
		d[0] = tagInner
		group := children[idx : idx+cnt]
		groupKeys := keys[idx : idx+cnt-1]
		for i, c := range group {
			putChildAt(d, i, c)
		}
		for i, kk := range groupKeys {
			putKeyAt(d, innerKeysOff, i, kk)
		}
		setNodeCount(d, len(groupKeys))
		node.MarkDirty()
		idx += cnt
	}
	return splits, nil
}

// splitEncodable partitions keys into consecutive groups whose
// delta-stream encodings each fit a compressed leaf page, by recursive
// halving. Groups alias the input slice.
func splitEncodable(keys []Key) [][]Key {
	if len(encodeLeafStream(nil, keys)) <= compLeafCap {
		return [][]Key{keys}
	}
	mid := len(keys) / 2
	return append(splitEncodable(keys[:mid]), splitEncodable(keys[mid:])...)
}

// Scan streams every key in [lo, hi] to fn in ascending order, stopping
// early when fn returns false.
func (t *Tree) Scan(lo, hi Key, fn func(Key) bool) error {
	if t.root == pagefile.NilPage || Less(hi, lo) {
		return nil
	}
	// Descend to the leaf that would contain lo.
	id := t.root
	for {
		p, err := t.pf.Get(id)
		if err != nil {
			return err
		}
		d := p.Data()
		if tag := nodeTag(d); tag == tagLeaf || tag == tagCompLeaf {
			t.pf.Release(p)
			break
		}
		n := nodeCount(d)
		i := searchKeys(d, innerKeysOff, n, lo)
		if i < n && Compare(keyAt(d, innerKeysOff, i), lo) == 0 {
			i++
		}
		id = childAt(d, i)
		t.pf.Release(p)
	}
	// Walk the leaf chain. Compressed leaves are decoded streaming —
	// one key at a time, no buffer — so concurrent scans share no
	// state; keys below lo are decoded (delta chains force it) but
	// skipped without the callback.
	for id != pagefile.NilPage {
		p, err := t.pf.Get(id)
		if err != nil {
			return err
		}
		d := p.Data()
		if nodeTag(d) == tagCompLeaf {
			stopped := false
			forEachCompKey(d, func(k Key) bool {
				if Less(k, lo) {
					return true
				}
				if Less(hi, k) || !fn(k) {
					stopped = true
					return false
				}
				return true
			})
			if stopped {
				t.pf.Release(p)
				return nil
			}
			id = leafNext(d)
			t.pf.Release(p)
			continue
		}
		n := nodeCount(d)
		i := searchKeys(d, leafKeysOff, n, lo)
		for ; i < n; i++ {
			k := keyAt(d, leafKeysOff, i)
			if Less(hi, k) {
				t.pf.Release(p)
				return nil
			}
			if !fn(k) {
				t.pf.Release(p)
				return nil
			}
		}
		id = leafNext(d)
		t.pf.Release(p)
	}
	return nil
}

// ScanPrefix1 streams keys whose first component equals a.
func (t *Tree) ScanPrefix1(a uint64, fn func(Key) bool) error {
	return t.Scan(Key{a, 0, 0}, Key{a, ^uint64(0), ^uint64(0)}, fn)
}

// ScanPrefix2 streams keys whose first two components equal (a, b).
func (t *Tree) ScanPrefix2(a, b uint64, fn func(Key) bool) error {
	return t.Scan(Key{a, b, 0}, Key{a, b, ^uint64(0)}, fn)
}

// BulkBuild replaces the tree contents with the given strictly increasing
// key sequence, building leaves and internal levels bottom-up without
// per-key descents. With compression on (SetCompression) the leaves are
// delta+varint compressed pages, typically packing several raw pages'
// worth of keys each — the disk rendering of the block-compressed index
// layer. It returns an error if keys are not strictly increasing or the
// tree is not empty.
func (t *Tree) BulkBuild(keys []Key) error {
	if t.root != pagefile.NilPage {
		return fmt.Errorf("btree: BulkBuild on non-empty tree")
	}
	for i := 1; i < len(keys); i++ {
		if Compare(keys[i-1], keys[i]) >= 0 {
			return fmt.Errorf("btree: BulkBuild keys not strictly increasing at %d", i)
		}
	}
	if len(keys) == 0 {
		return nil
	}

	type nodeRef struct {
		id  pagefile.PageID
		min Key // smallest key under this node, used as parent separator
	}

	var level []nodeRef
	var prevLeaf *pagefile.Page

	// flushLeaf writes one leaf page holding keys[start:end].
	flushLeaf := func(start, end int, stream []byte) error {
		p, err := t.pf.Allocate()
		if err != nil {
			return err
		}
		d := p.Data()
		if stream != nil {
			writeCompLeaf(d, keys[start:end], stream)
		} else {
			d[0] = tagLeaf
			for i, k := range keys[start:end] {
				putKeyAt(d, leafKeysOff, i, k)
			}
			setNodeCount(d, end-start)
		}
		p.MarkDirty()
		if prevLeaf != nil {
			setLeafNext(prevLeaf.Data(), p.ID())
			prevLeaf.MarkDirty()
			t.pf.Release(prevLeaf)
		}
		prevLeaf = p
		level = append(level, nodeRef{id: p.ID(), min: keys[start]})
		return nil
	}

	if t.compress {
		// Fill compressed leaves to ~90% of the page's byte budget so
		// subsequent inserts re-encode in place instead of bursting.
		byteTarget := compLeafCap * 9 / 10
		stream := t.scratchBuf[:0]
		start := 0
		var prev Key
		for i, k := range keys {
			mark := len(stream)
			stream = appendKeyDelta(stream, prev, k, i == start)
			prev = k
			if len(stream) > byteTarget && i > start {
				if err := flushLeaf(start, i, stream[:mark]); err != nil {
					return err
				}
				start = i
				stream = appendKeyDelta(stream[:0], Key{}, k, true)
				prev = k
			}
		}
		if err := flushLeaf(start, len(keys), stream); err != nil {
			return err
		}
		t.scratchBuf = stream
	} else {
		// Fill raw leaves to ~90% so subsequent inserts do not
		// immediately split.
		target := MaxLeafKeys * 9 / 10
		if target < 1 {
			target = 1
		}
		for start := 0; start < len(keys); start += target {
			end := start + target
			if end > len(keys) {
				end = len(keys)
			}
			if err := flushLeaf(start, end, nil); err != nil {
				return err
			}
		}
	}
	if prevLeaf != nil {
		t.pf.Release(prevLeaf)
	}

	// Build internal levels until a single root remains.
	fanout := (MaxInnerKeys + 1) * 9 / 10
	if fanout < 2 {
		fanout = 2
	}
	for len(level) > 1 {
		// Precompute group boundaries so no group has a single child (an
		// internal node needs at least one separator key). If the final
		// group would be a singleton, it borrows one node from the group
		// before it; fanout is large enough that the donor stays valid.
		var starts []int
		for s := 0; s < len(level); s += fanout {
			starts = append(starts, s)
		}
		if len(starts) > 1 && len(level)-starts[len(starts)-1] == 1 {
			starts[len(starts)-1]--
		}
		var next []nodeRef
		for gi, start := range starts {
			end := len(level)
			if gi+1 < len(starts) {
				end = starts[gi+1]
			}
			p, err := t.pf.Allocate()
			if err != nil {
				return err
			}
			d := p.Data()
			d[0] = tagInner
			group := level[start:end]
			putChildAt(d, 0, group[0].id)
			for i := 1; i < len(group); i++ {
				putKeyAt(d, innerKeysOff, i-1, group[i].min)
				putChildAt(d, i, group[i].id)
			}
			setNodeCount(d, len(group)-1)
			p.MarkDirty()
			next = append(next, nodeRef{id: p.ID(), min: group[0].min})
			t.pf.Release(p)
		}
		level = next
	}
	t.setRoot(level[0].id)
	t.setCount(uint64(len(keys)))
	return nil
}

// Depth returns the height of the tree (0 when empty, 1 for a lone leaf).
// It is used by tests and diagnostics.
func (t *Tree) Depth() (int, error) {
	if t.root == pagefile.NilPage {
		return 0, nil
	}
	depth := 0
	id := t.root
	for {
		p, err := t.pf.Get(id)
		if err != nil {
			return 0, err
		}
		depth++
		d := p.Data()
		if tag := nodeTag(d); tag == tagLeaf || tag == tagCompLeaf {
			t.pf.Release(p)
			return depth, nil
		}
		id = childAt(d, 0)
		t.pf.Release(p)
	}
}

// CheckInvariants validates structural invariants — key ordering within
// nodes, separator correctness, leaf-chain ordering, and the persisted
// count — returning a descriptive error on the first violation. Tests and
// the disk store's integrity checker call this.
func (t *Tree) CheckInvariants() error {
	if t.root == pagefile.NilPage {
		if t.count != 0 {
			return fmt.Errorf("btree: empty tree but count = %d", t.count)
		}
		return nil
	}
	var (
		seen    uint64
		last    Key
		hasLast bool
	)
	var walk func(id pagefile.PageID, lo, hi *Key) error
	walk = func(id pagefile.PageID, lo, hi *Key) error {
		p, err := t.pf.Get(id)
		if err != nil {
			return err
		}
		defer t.pf.Release(p)
		d := p.Data()
		n := nodeCount(d)
		checkLeafKey := func(i int, k Key) error {
			if hasLast && Compare(last, k) >= 0 {
				return fmt.Errorf("btree: leaf %d key %d out of order", id, i)
			}
			if lo != nil && Less(k, *lo) {
				return fmt.Errorf("btree: leaf %d key %d below separator", id, i)
			}
			if hi != nil && !Less(k, *hi) {
				return fmt.Errorf("btree: leaf %d key %d above separator", id, i)
			}
			last, hasLast = k, true
			seen++
			return nil
		}
		switch nodeTag(d) {
		case tagLeaf:
			for i := 0; i < n; i++ {
				if err := checkLeafKey(i, keyAt(d, leafKeysOff, i)); err != nil {
					return err
				}
			}
			return nil
		case tagCompLeaf:
			if compLeafDataOff+compLeafStreamLen(d) > len(d) {
				return fmt.Errorf("btree: compressed leaf %d stream overruns page", id)
			}
			var keyErr error
			i := 0
			pos, streamLen := forEachCompKey(d, func(k Key) bool {
				keyErr = checkLeafKey(i, k)
				i++
				return keyErr == nil
			})
			if keyErr != nil {
				return keyErr
			}
			if pos != streamLen {
				return fmt.Errorf("btree: compressed leaf %d stream length %d, decoded %d", id, streamLen, pos)
			}
			return nil
		case tagInner:
			if n < 1 {
				return fmt.Errorf("btree: internal node %d has no keys", id)
			}
			for i := 0; i < n; i++ {
				k := keyAt(d, innerKeysOff, i)
				if i > 0 && Compare(keyAt(d, innerKeysOff, i-1), k) >= 0 {
					return fmt.Errorf("btree: internal %d keys out of order at %d", id, i)
				}
			}
			for i := 0; i <= n; i++ {
				clo, chi := lo, hi
				if i > 0 {
					k := keyAt(d, innerKeysOff, i-1)
					clo = &k
				}
				if i < n {
					k := keyAt(d, innerKeysOff, i)
					chi = &k
				}
				if err := walk(childAt(d, i), clo, chi); err != nil {
					return err
				}
			}
			return nil
		default:
			return fmt.Errorf("btree: page %d has unknown tag %d", id, nodeTag(d))
		}
	}
	if err := walk(t.root, nil, nil); err != nil {
		return err
	}
	if seen != t.count {
		return fmt.Errorf("btree: count = %d but tree holds %d keys", t.count, seen)
	}
	return nil
}
