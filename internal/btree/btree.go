// Package btree implements an on-disk B+-tree over fixed-width triple
// keys, the index structure of the disk-based Hexastore (paper §7 future
// work). Each of the six orderings of a disk Hexastore is one Tree whose
// keys are the triples permuted into that ordering, so every statement
// pattern becomes a prefix range scan.
//
// Keys are 24-byte [3]uint64 values compared lexicographically. Leaves
// are chained for range scans. Deletion is lazy (keys are removed from
// leaves without rebalancing), which keeps the write path simple and
// matches the paper's observation that RDF workloads are read-heavy.
package btree

import (
	"encoding/binary"
	"fmt"

	"hexastore/internal/pagefile"
)

// Key is a lexicographically ordered triple of ids.
type Key [3]uint64

// Compare returns -1, 0, or +1 ordering a against b lexicographically.
func Compare(a, b Key) int {
	for i := 0; i < 3; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// Less reports a < b.
func Less(a, b Key) bool { return Compare(a, b) < 0 }

// MaxKey is the largest possible key, useful as an inclusive scan bound.
var MaxKey = Key{^uint64(0), ^uint64(0), ^uint64(0)}

// Page layout. Both node kinds begin with a one-byte type tag and a
// two-byte key count.
//
//	leaf:     [0]=tagLeaf  [2:4]=count [4:8]=next leaf id   [8:]=keys
//	internal: [0]=tagInner [2:4]=count [8:8+4*(maxInnerKeys+1)]=children
//	          [innerKeysOff:]=keys
const (
	tagLeaf  = 1
	tagInner = 2

	keySize = 24

	leafKeysOff = 8
	// MaxLeafKeys is the leaf fanout.
	MaxLeafKeys = (pagefile.PayloadSize - leafKeysOff) / keySize

	// MaxInnerKeys is the internal fanout minus one.
	MaxInnerKeys = (pagefile.PayloadSize - 8 - 4) / (keySize + 4)
	childrenOff  = 8
	innerKeysOff = childrenOff + 4*(MaxInnerKeys+1)
)

// Tree is a B+-tree stored in a pagefile. It persists its root page id
// and key count in two root slots of the pagefile, so a Tree survives
// closing and reopening the file. A Tree is not safe for concurrent use;
// the disk store provides synchronization.
type Tree struct {
	pf        *pagefile.File
	rootSlot  int
	countSlot int
	root      pagefile.PageID
	count     uint64
}

// New attaches to the tree whose state lives in the given root slots of
// pf, creating an empty tree if the slots are zero.
func New(pf *pagefile.File, rootSlot, countSlot int) *Tree {
	return &Tree{
		pf:        pf,
		rootSlot:  rootSlot,
		countSlot: countSlot,
		root:      pagefile.PageID(pf.Root(rootSlot)),
		count:     pf.Root(countSlot),
	}
}

// Len returns the number of keys in the tree.
func (t *Tree) Len() uint64 { return t.count }

func (t *Tree) setRoot(id pagefile.PageID) {
	t.root = id
	t.pf.SetRoot(t.rootSlot, uint64(id))
}

func (t *Tree) setCount(n uint64) {
	t.count = n
	t.pf.SetRoot(t.countSlot, n)
}

// node accessors over a raw page payload.

func nodeTag(d []byte) byte  { return d[0] }
func nodeCount(d []byte) int { return int(binary.LittleEndian.Uint16(d[2:4])) }
func setNodeCount(d []byte, n int) {
	binary.LittleEndian.PutUint16(d[2:4], uint16(n))
}

func leafNext(d []byte) pagefile.PageID {
	return pagefile.PageID(binary.LittleEndian.Uint32(d[4:8]))
}
func setLeafNext(d []byte, id pagefile.PageID) {
	binary.LittleEndian.PutUint32(d[4:8], uint32(id))
}

func keyAt(d []byte, off, i int) Key {
	p := off + i*keySize
	return Key{
		binary.LittleEndian.Uint64(d[p:]),
		binary.LittleEndian.Uint64(d[p+8:]),
		binary.LittleEndian.Uint64(d[p+16:]),
	}
}

func putKeyAt(d []byte, off, i int, k Key) {
	p := off + i*keySize
	binary.LittleEndian.PutUint64(d[p:], k[0])
	binary.LittleEndian.PutUint64(d[p+8:], k[1])
	binary.LittleEndian.PutUint64(d[p+16:], k[2])
}

func childAt(d []byte, i int) pagefile.PageID {
	return pagefile.PageID(binary.LittleEndian.Uint32(d[childrenOff+4*i:]))
}
func putChildAt(d []byte, i int, id pagefile.PageID) {
	binary.LittleEndian.PutUint32(d[childrenOff+4*i:], uint32(id))
}

// searchKeys returns the index of the first key at off >= k.
func searchKeys(d []byte, off, count int, k Key) int {
	lo, hi := 0, count
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if Less(keyAt(d, off, mid), k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// insertKeyAt shifts keys right and writes k at index i.
func insertKeyAt(d []byte, off, count, i int, k Key) {
	copy(d[off+(i+1)*keySize:off+(count+1)*keySize], d[off+i*keySize:off+count*keySize])
	putKeyAt(d, off, i, k)
}

// removeKeyAt shifts keys left over index i.
func removeKeyAt(d []byte, off, count, i int) {
	copy(d[off+i*keySize:off+(count-1)*keySize], d[off+(i+1)*keySize:off+count*keySize])
}

// Contains reports whether k is in the tree.
func (t *Tree) Contains(k Key) (bool, error) {
	if t.root == pagefile.NilPage {
		return false, nil
	}
	id := t.root
	for {
		p, err := t.pf.Get(id)
		if err != nil {
			return false, err
		}
		d := p.Data()
		if nodeTag(d) == tagLeaf {
			n := nodeCount(d)
			i := searchKeys(d, leafKeysOff, n, k)
			found := i < n && Compare(keyAt(d, leafKeysOff, i), k) == 0
			t.pf.Release(p)
			return found, nil
		}
		n := nodeCount(d)
		i := searchKeys(d, innerKeysOff, n, k)
		if i < n && Compare(keyAt(d, innerKeysOff, i), k) == 0 {
			i++
		}
		id = childAt(d, i)
		t.pf.Release(p)
	}
}

// Insert adds k, reporting whether the tree changed (false if k was
// already present).
func (t *Tree) Insert(k Key) (bool, error) {
	if t.root == pagefile.NilPage {
		p, err := t.pf.Allocate()
		if err != nil {
			return false, err
		}
		d := p.Data()
		d[0] = tagLeaf
		setNodeCount(d, 1)
		putKeyAt(d, leafKeysOff, 0, k)
		p.MarkDirty()
		t.setRoot(p.ID())
		t.pf.Release(p)
		t.setCount(1)
		return true, nil
	}
	added, split, sep, right, err := t.insert(t.root, k)
	if err != nil {
		return false, err
	}
	if split {
		// Grow a new root.
		p, err := t.pf.Allocate()
		if err != nil {
			return false, err
		}
		d := p.Data()
		d[0] = tagInner
		setNodeCount(d, 1)
		putKeyAt(d, innerKeysOff, 0, sep)
		putChildAt(d, 0, t.root)
		putChildAt(d, 1, right)
		p.MarkDirty()
		t.setRoot(p.ID())
		t.pf.Release(p)
	}
	if added {
		t.setCount(t.count + 1)
	}
	return added, nil
}

// insert descends into page id. When the child splits it returns
// split=true with the separator key and the new right sibling's id.
func (t *Tree) insert(id pagefile.PageID, k Key) (added, split bool, sep Key, right pagefile.PageID, err error) {
	p, err := t.pf.Get(id)
	if err != nil {
		return false, false, Key{}, 0, err
	}
	defer t.pf.Release(p)
	d := p.Data()

	if nodeTag(d) == tagLeaf {
		n := nodeCount(d)
		i := searchKeys(d, leafKeysOff, n, k)
		if i < n && Compare(keyAt(d, leafKeysOff, i), k) == 0 {
			return false, false, Key{}, 0, nil
		}
		if n < MaxLeafKeys {
			insertKeyAt(d, leafKeysOff, n, i, k)
			setNodeCount(d, n+1)
			p.MarkDirty()
			return true, false, Key{}, 0, nil
		}
		// Split the leaf: left keeps [0:mid), right takes [mid:n); then
		// insert k into the proper half.
		rp, err := t.pf.Allocate()
		if err != nil {
			return false, false, Key{}, 0, err
		}
		defer t.pf.Release(rp)
		rd := rp.Data()
		rd[0] = tagLeaf
		mid := n / 2
		moved := n - mid
		copy(rd[leafKeysOff:leafKeysOff+moved*keySize], d[leafKeysOff+mid*keySize:leafKeysOff+n*keySize])
		setNodeCount(rd, moved)
		setNodeCount(d, mid)
		setLeafNext(rd, leafNext(d))
		setLeafNext(d, rp.ID())
		sep = keyAt(rd, leafKeysOff, 0)
		if Less(k, sep) {
			insertKeyAt(d, leafKeysOff, mid, searchKeys(d, leafKeysOff, mid, k), k)
			setNodeCount(d, mid+1)
		} else {
			i := searchKeys(rd, leafKeysOff, moved, k)
			insertKeyAt(rd, leafKeysOff, moved, i, k)
			setNodeCount(rd, moved+1)
		}
		p.MarkDirty()
		rp.MarkDirty()
		return true, true, sep, rp.ID(), nil
	}

	// Internal node.
	n := nodeCount(d)
	ci := searchKeys(d, innerKeysOff, n, k)
	if ci < n && Compare(keyAt(d, innerKeysOff, ci), k) == 0 {
		ci++
	}
	added, csplit, csep, cright, err := t.insert(childAt(d, ci), k)
	if err != nil || !csplit {
		return added, false, Key{}, 0, err
	}
	if n < MaxInnerKeys {
		insertKeyAt(d, innerKeysOff, n, ci, csep)
		copy(d[childrenOff+4*(ci+2):childrenOff+4*(n+2)], d[childrenOff+4*(ci+1):childrenOff+4*(n+1)])
		putChildAt(d, ci+1, cright)
		setNodeCount(d, n+1)
		p.MarkDirty()
		return added, false, Key{}, 0, nil
	}
	// Split the internal node. Conceptually insert (csep, cright) then
	// push up the median. Materialize the widened arrays first.
	keys := make([]Key, 0, n+1)
	children := make([]pagefile.PageID, 0, n+2)
	for i := 0; i < n; i++ {
		keys = append(keys, keyAt(d, innerKeysOff, i))
	}
	for i := 0; i <= n; i++ {
		children = append(children, childAt(d, i))
	}
	keys = append(keys[:ci], append([]Key{csep}, keys[ci:]...)...)
	children = append(children[:ci+1], append([]pagefile.PageID{cright}, children[ci+1:]...)...)

	midI := len(keys) / 2
	sep = keys[midI]
	rp, err := t.pf.Allocate()
	if err != nil {
		return false, false, Key{}, 0, err
	}
	defer t.pf.Release(rp)
	rd := rp.Data()
	rd[0] = tagInner
	rightKeys := keys[midI+1:]
	rightChildren := children[midI+1:]
	for i, kk := range rightKeys {
		putKeyAt(rd, innerKeysOff, i, kk)
	}
	for i, c := range rightChildren {
		putChildAt(rd, i, c)
	}
	setNodeCount(rd, len(rightKeys))
	for i, kk := range keys[:midI] {
		putKeyAt(d, innerKeysOff, i, kk)
	}
	for i, c := range children[:midI+1] {
		putChildAt(d, i, c)
	}
	setNodeCount(d, midI)
	p.MarkDirty()
	rp.MarkDirty()
	return added, true, sep, rp.ID(), nil
}

// Delete removes k, reporting whether the tree changed. Leaves are not
// rebalanced or reclaimed (lazy deletion): scans skip empty leaves via
// the leaf chain.
func (t *Tree) Delete(k Key) (bool, error) {
	if t.root == pagefile.NilPage {
		return false, nil
	}
	id := t.root
	for {
		p, err := t.pf.Get(id)
		if err != nil {
			return false, err
		}
		d := p.Data()
		if nodeTag(d) == tagLeaf {
			n := nodeCount(d)
			i := searchKeys(d, leafKeysOff, n, k)
			if i >= n || Compare(keyAt(d, leafKeysOff, i), k) != 0 {
				t.pf.Release(p)
				return false, nil
			}
			removeKeyAt(d, leafKeysOff, n, i)
			setNodeCount(d, n-1)
			p.MarkDirty()
			t.pf.Release(p)
			t.setCount(t.count - 1)
			return true, nil
		}
		n := nodeCount(d)
		i := searchKeys(d, innerKeysOff, n, k)
		if i < n && Compare(keyAt(d, innerKeysOff, i), k) == 0 {
			i++
		}
		id = childAt(d, i)
		t.pf.Release(p)
	}
}

// Scan streams every key in [lo, hi] to fn in ascending order, stopping
// early when fn returns false.
func (t *Tree) Scan(lo, hi Key, fn func(Key) bool) error {
	if t.root == pagefile.NilPage || Less(hi, lo) {
		return nil
	}
	// Descend to the leaf that would contain lo.
	id := t.root
	for {
		p, err := t.pf.Get(id)
		if err != nil {
			return err
		}
		d := p.Data()
		if nodeTag(d) == tagLeaf {
			t.pf.Release(p)
			break
		}
		n := nodeCount(d)
		i := searchKeys(d, innerKeysOff, n, lo)
		if i < n && Compare(keyAt(d, innerKeysOff, i), lo) == 0 {
			i++
		}
		id = childAt(d, i)
		t.pf.Release(p)
	}
	// Walk the leaf chain.
	for id != pagefile.NilPage {
		p, err := t.pf.Get(id)
		if err != nil {
			return err
		}
		d := p.Data()
		n := nodeCount(d)
		i := searchKeys(d, leafKeysOff, n, lo)
		for ; i < n; i++ {
			k := keyAt(d, leafKeysOff, i)
			if Less(hi, k) {
				t.pf.Release(p)
				return nil
			}
			if !fn(k) {
				t.pf.Release(p)
				return nil
			}
		}
		id = leafNext(d)
		t.pf.Release(p)
	}
	return nil
}

// ScanPrefix1 streams keys whose first component equals a.
func (t *Tree) ScanPrefix1(a uint64, fn func(Key) bool) error {
	return t.Scan(Key{a, 0, 0}, Key{a, ^uint64(0), ^uint64(0)}, fn)
}

// ScanPrefix2 streams keys whose first two components equal (a, b).
func (t *Tree) ScanPrefix2(a, b uint64, fn func(Key) bool) error {
	return t.Scan(Key{a, b, 0}, Key{a, b, ^uint64(0)}, fn)
}

// BulkBuild replaces the tree contents with the given strictly increasing
// key sequence, building leaves and internal levels bottom-up without
// per-key descents. It returns an error if keys are not strictly
// increasing or the tree is not empty.
func (t *Tree) BulkBuild(keys []Key) error {
	if t.root != pagefile.NilPage {
		return fmt.Errorf("btree: BulkBuild on non-empty tree")
	}
	for i := 1; i < len(keys); i++ {
		if Compare(keys[i-1], keys[i]) >= 0 {
			return fmt.Errorf("btree: BulkBuild keys not strictly increasing at %d", i)
		}
	}
	if len(keys) == 0 {
		return nil
	}

	type nodeRef struct {
		id  pagefile.PageID
		min Key // smallest key under this node, used as parent separator
	}

	// Fill leaves to ~90% so subsequent inserts do not immediately split.
	target := MaxLeafKeys * 9 / 10
	if target < 1 {
		target = 1
	}
	var level []nodeRef
	var prevLeaf *pagefile.Page
	for start := 0; start < len(keys); start += target {
		end := start + target
		if end > len(keys) {
			end = len(keys)
		}
		p, err := t.pf.Allocate()
		if err != nil {
			return err
		}
		d := p.Data()
		d[0] = tagLeaf
		for i, k := range keys[start:end] {
			putKeyAt(d, leafKeysOff, i, k)
		}
		setNodeCount(d, end-start)
		p.MarkDirty()
		if prevLeaf != nil {
			setLeafNext(prevLeaf.Data(), p.ID())
			prevLeaf.MarkDirty()
			t.pf.Release(prevLeaf)
		}
		prevLeaf = p
		level = append(level, nodeRef{id: p.ID(), min: keys[start]})
	}
	if prevLeaf != nil {
		t.pf.Release(prevLeaf)
	}

	// Build internal levels until a single root remains.
	fanout := (MaxInnerKeys + 1) * 9 / 10
	if fanout < 2 {
		fanout = 2
	}
	for len(level) > 1 {
		// Precompute group boundaries so no group has a single child (an
		// internal node needs at least one separator key). If the final
		// group would be a singleton, it borrows one node from the group
		// before it; fanout is large enough that the donor stays valid.
		var starts []int
		for s := 0; s < len(level); s += fanout {
			starts = append(starts, s)
		}
		if len(starts) > 1 && len(level)-starts[len(starts)-1] == 1 {
			starts[len(starts)-1]--
		}
		var next []nodeRef
		for gi, start := range starts {
			end := len(level)
			if gi+1 < len(starts) {
				end = starts[gi+1]
			}
			p, err := t.pf.Allocate()
			if err != nil {
				return err
			}
			d := p.Data()
			d[0] = tagInner
			group := level[start:end]
			putChildAt(d, 0, group[0].id)
			for i := 1; i < len(group); i++ {
				putKeyAt(d, innerKeysOff, i-1, group[i].min)
				putChildAt(d, i, group[i].id)
			}
			setNodeCount(d, len(group)-1)
			p.MarkDirty()
			next = append(next, nodeRef{id: p.ID(), min: group[0].min})
			t.pf.Release(p)
		}
		level = next
	}
	t.setRoot(level[0].id)
	t.setCount(uint64(len(keys)))
	return nil
}

// Depth returns the height of the tree (0 when empty, 1 for a lone leaf).
// It is used by tests and diagnostics.
func (t *Tree) Depth() (int, error) {
	if t.root == pagefile.NilPage {
		return 0, nil
	}
	depth := 0
	id := t.root
	for {
		p, err := t.pf.Get(id)
		if err != nil {
			return 0, err
		}
		depth++
		d := p.Data()
		if nodeTag(d) == tagLeaf {
			t.pf.Release(p)
			return depth, nil
		}
		id = childAt(d, 0)
		t.pf.Release(p)
	}
}

// CheckInvariants validates structural invariants — key ordering within
// nodes, separator correctness, leaf-chain ordering, and the persisted
// count — returning a descriptive error on the first violation. Tests and
// the disk store's integrity checker call this.
func (t *Tree) CheckInvariants() error {
	if t.root == pagefile.NilPage {
		if t.count != 0 {
			return fmt.Errorf("btree: empty tree but count = %d", t.count)
		}
		return nil
	}
	var (
		seen    uint64
		last    Key
		hasLast bool
	)
	var walk func(id pagefile.PageID, lo, hi *Key) error
	walk = func(id pagefile.PageID, lo, hi *Key) error {
		p, err := t.pf.Get(id)
		if err != nil {
			return err
		}
		defer t.pf.Release(p)
		d := p.Data()
		n := nodeCount(d)
		switch nodeTag(d) {
		case tagLeaf:
			for i := 0; i < n; i++ {
				k := keyAt(d, leafKeysOff, i)
				if hasLast && Compare(last, k) >= 0 {
					return fmt.Errorf("btree: leaf %d key %d out of order", id, i)
				}
				if lo != nil && Less(k, *lo) {
					return fmt.Errorf("btree: leaf %d key %d below separator", id, i)
				}
				if hi != nil && !Less(k, *hi) {
					return fmt.Errorf("btree: leaf %d key %d above separator", id, i)
				}
				last, hasLast = k, true
				seen++
			}
			return nil
		case tagInner:
			if n < 1 {
				return fmt.Errorf("btree: internal node %d has no keys", id)
			}
			for i := 0; i < n; i++ {
				k := keyAt(d, innerKeysOff, i)
				if i > 0 && Compare(keyAt(d, innerKeysOff, i-1), k) >= 0 {
					return fmt.Errorf("btree: internal %d keys out of order at %d", id, i)
				}
			}
			for i := 0; i <= n; i++ {
				clo, chi := lo, hi
				if i > 0 {
					k := keyAt(d, innerKeysOff, i-1)
					clo = &k
				}
				if i < n {
					k := keyAt(d, innerKeysOff, i)
					chi = &k
				}
				if err := walk(childAt(d, i), clo, chi); err != nil {
					return err
				}
			}
			return nil
		default:
			return fmt.Errorf("btree: page %d has unknown tag %d", id, nodeTag(d))
		}
	}
	if err := walk(t.root, nil, nil); err != nil {
		return err
	}
	if seen != t.count {
		return fmt.Errorf("btree: count = %d but tree holds %d keys", t.count, seen)
	}
	return nil
}
