package btree

import (
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"hexastore/internal/pagefile"
)

func newTree(t *testing.T) (*Tree, *pagefile.File) {
	t.Helper()
	pf, err := pagefile.Create(filepath.Join(t.TempDir(), "btree.db"), pagefile.Options{CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() })
	return New(pf, 0, 1), pf
}

func mustInsert(t *testing.T, tr *Tree, k Key) {
	t.Helper()
	added, err := tr.Insert(k)
	if err != nil {
		t.Fatalf("Insert(%v): %v", k, err)
	}
	if !added {
		t.Fatalf("Insert(%v) = false, want true", k)
	}
}

func collect(t *testing.T, tr *Tree, lo, hi Key) []Key {
	t.Helper()
	var out []Key
	if err := tr.Scan(lo, hi, func(k Key) bool {
		out = append(out, k)
		return true
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return out
}

func TestEmptyTree(t *testing.T) {
	tr, _ := newTree(t)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
	ok, err := tr.Contains(Key{1, 2, 3})
	if err != nil || ok {
		t.Fatalf("Contains on empty = (%v, %v)", ok, err)
	}
	if got := collect(t, tr, Key{}, MaxKey); len(got) != 0 {
		t.Fatalf("Scan on empty returned %d keys", len(got))
	}
	if d, _ := tr.Depth(); d != 0 {
		t.Fatalf("Depth = %d, want 0", d)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertContainsSmall(t *testing.T) {
	tr, _ := newTree(t)
	keys := []Key{{3, 1, 4}, {1, 5, 9}, {2, 6, 5}, {3, 5, 8}, {1, 5, 3}}
	for _, k := range keys {
		mustInsert(t, tr, k)
	}
	if tr.Len() != uint64(len(keys)) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(keys))
	}
	for _, k := range keys {
		ok, err := tr.Contains(k)
		if err != nil || !ok {
			t.Fatalf("Contains(%v) = (%v, %v)", k, ok, err)
		}
	}
	ok, _ := tr.Contains(Key{9, 9, 9})
	if ok {
		t.Fatal("Contains of absent key = true")
	}
}

func TestInsertDuplicateIsNoop(t *testing.T) {
	tr, _ := newTree(t)
	mustInsert(t, tr, Key{1, 2, 3})
	added, err := tr.Insert(Key{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if added {
		t.Fatal("duplicate Insert = true")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after duplicate insert, want 1", tr.Len())
	}
}

func TestScanIsSortedAndComplete(t *testing.T) {
	tr, _ := newTree(t)
	rng := rand.New(rand.NewSource(42))
	want := make(map[Key]bool)
	// Enough keys to force several leaf and internal splits.
	for i := 0; i < 5000; i++ {
		k := Key{uint64(rng.Intn(50)), uint64(rng.Intn(50)), uint64(rng.Intn(50))}
		if !want[k] {
			want[k] = true
			mustInsert(t, tr, k)
		}
	}
	got := collect(t, tr, Key{}, MaxKey)
	if len(got) != len(want) {
		t.Fatalf("Scan returned %d keys, want %d", len(got), len(want))
	}
	for i := 1; i < len(got); i++ {
		if !Less(got[i-1], got[i]) {
			t.Fatalf("Scan output not strictly increasing at %d: %v !< %v", i, got[i-1], got[i])
		}
	}
	for _, k := range got {
		if !want[k] {
			t.Fatalf("Scan produced unexpected key %v", k)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScanRangeBounds(t *testing.T) {
	tr, _ := newTree(t)
	for i := uint64(0); i < 100; i++ {
		mustInsert(t, tr, Key{i, 0, 0})
	}
	got := collect(t, tr, Key{10, 0, 0}, Key{20, 0, 0})
	if len(got) != 11 {
		t.Fatalf("range [10,20] returned %d keys, want 11 (inclusive both ends)", len(got))
	}
	if got[0] != (Key{10, 0, 0}) || got[len(got)-1] != (Key{20, 0, 0}) {
		t.Fatalf("range endpoints wrong: %v .. %v", got[0], got[len(got)-1])
	}
	if got := collect(t, tr, Key{50, 1, 0}, Key{50, 2, 0}); len(got) != 0 {
		t.Fatalf("empty interior range returned %d keys", len(got))
	}
	if got := collect(t, tr, Key{20, 0, 0}, Key{10, 0, 0}); len(got) != 0 {
		t.Fatalf("inverted range returned %d keys", len(got))
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr, _ := newTree(t)
	for i := uint64(0); i < 1000; i++ {
		mustInsert(t, tr, Key{i, 0, 0})
	}
	n := 0
	if err := tr.Scan(Key{}, MaxKey, func(Key) bool {
		n++
		return n < 7
	}); err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("early-stopped scan visited %d keys, want 7", n)
	}
}

func TestScanPrefix(t *testing.T) {
	tr, _ := newTree(t)
	for a := uint64(1); a <= 5; a++ {
		for b := uint64(1); b <= 4; b++ {
			for c := uint64(1); c <= 3; c++ {
				mustInsert(t, tr, Key{a, b, c})
			}
		}
	}
	var got []Key
	if err := tr.ScanPrefix1(3, func(k Key) bool { got = append(got, k); return true }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 12 {
		t.Fatalf("ScanPrefix1(3) returned %d keys, want 12", len(got))
	}
	for _, k := range got {
		if k[0] != 3 {
			t.Fatalf("ScanPrefix1(3) produced %v", k)
		}
	}
	got = nil
	if err := tr.ScanPrefix2(2, 4, func(k Key) bool { got = append(got, k); return true }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("ScanPrefix2(2,4) returned %d keys, want 3", len(got))
	}
	for _, k := range got {
		if k[0] != 2 || k[1] != 4 {
			t.Fatalf("ScanPrefix2(2,4) produced %v", k)
		}
	}
}

func TestDelete(t *testing.T) {
	tr, _ := newTree(t)
	for i := uint64(0); i < 500; i++ {
		mustInsert(t, tr, Key{i, i % 7, i % 3})
	}
	for i := uint64(0); i < 500; i += 2 {
		removed, err := tr.Delete(Key{i, i % 7, i % 3})
		if err != nil || !removed {
			t.Fatalf("Delete(%d) = (%v, %v)", i, removed, err)
		}
	}
	if tr.Len() != 250 {
		t.Fatalf("Len = %d after deletes, want 250", tr.Len())
	}
	for i := uint64(0); i < 500; i++ {
		ok, err := tr.Contains(Key{i, i % 7, i % 3})
		if err != nil {
			t.Fatal(err)
		}
		if want := i%2 == 1; ok != want {
			t.Fatalf("Contains(%d) = %v, want %v", i, ok, want)
		}
	}
	removed, err := tr.Delete(Key{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if removed {
		t.Fatal("Delete of already-deleted key = true")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScanSkipsEmptiedLeaves(t *testing.T) {
	tr, _ := newTree(t)
	const n = 2000
	for i := uint64(0); i < n; i++ {
		mustInsert(t, tr, Key{i, 0, 0})
	}
	// Empty a contiguous stretch spanning whole leaves.
	for i := uint64(200); i < 800; i++ {
		if _, err := tr.Delete(Key{i, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, tr, Key{}, MaxKey)
	if len(got) != n-600 {
		t.Fatalf("Scan returned %d keys, want %d", len(got), n-600)
	}
	for i := 1; i < len(got); i++ {
		if !Less(got[i-1], got[i]) {
			t.Fatal("scan output not sorted after leaf-emptying deletes")
		}
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "persist.db")
	pf, err := pagefile.Create(path, pagefile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := New(pf, 0, 1)
	rng := rand.New(rand.NewSource(7))
	var keys []Key
	for i := 0; i < 3000; i++ {
		k := Key{rng.Uint64() % 1000, rng.Uint64() % 1000, rng.Uint64() % 1000}
		added, err := tr.Insert(k)
		if err != nil {
			t.Fatal(err)
		}
		if added {
			keys = append(keys, k)
		}
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}

	pf2, err := pagefile.Open(path, pagefile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pf2.Close()
	tr2 := New(pf2, 0, 1)
	if tr2.Len() != uint64(len(keys)) {
		t.Fatalf("reopened Len = %d, want %d", tr2.Len(), len(keys))
	}
	for _, k := range keys {
		ok, err := tr2.Contains(k)
		if err != nil || !ok {
			t.Fatalf("reopened Contains(%v) = (%v, %v)", k, ok, err)
		}
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkBuild(t *testing.T) {
	tr, _ := newTree(t)
	var keys []Key
	for i := uint64(0); i < 30000; i++ {
		keys = append(keys, Key{i / 100, i % 100, i % 7})
	}
	sort.Slice(keys, func(i, j int) bool { return Less(keys[i], keys[j]) })
	// Dedupe.
	w := 1
	for r := 1; r < len(keys); r++ {
		if Compare(keys[r], keys[w-1]) != 0 {
			keys[w] = keys[r]
			w++
		}
	}
	keys = keys[:w]

	if err := tr.BulkBuild(keys); err != nil {
		t.Fatalf("BulkBuild: %v", err)
	}
	if tr.Len() != uint64(len(keys)) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(keys))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := collect(t, tr, Key{}, MaxKey)
	if len(got) != len(keys) {
		t.Fatalf("Scan returned %d, want %d", len(got), len(keys))
	}
	for i := range got {
		if got[i] != keys[i] {
			t.Fatalf("key %d = %v, want %v", i, got[i], keys[i])
		}
	}
	// Tree must remain usable for subsequent inserts.
	mustInsert(t, tr, Key{1 << 40, 0, 0})
	ok, err := tr.Contains(Key{1 << 40, 0, 0})
	if err != nil || !ok {
		t.Fatalf("Contains after post-bulk insert = (%v, %v)", ok, err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkBuildRejectsUnsorted(t *testing.T) {
	tr, _ := newTree(t)
	if err := tr.BulkBuild([]Key{{2, 0, 0}, {1, 0, 0}}); err == nil {
		t.Fatal("BulkBuild of unsorted keys succeeded")
	}
	tr2, _ := newTree(t)
	if err := tr2.BulkBuild([]Key{{1, 0, 0}, {1, 0, 0}}); err == nil {
		t.Fatal("BulkBuild with duplicates succeeded")
	}
}

func TestBulkBuildRejectsNonEmptyTree(t *testing.T) {
	tr, _ := newTree(t)
	mustInsert(t, tr, Key{1, 1, 1})
	if err := tr.BulkBuild([]Key{{2, 0, 0}}); err == nil {
		t.Fatal("BulkBuild on non-empty tree succeeded")
	}
}

func TestBulkBuildSingleKey(t *testing.T) {
	tr, _ := newTree(t)
	if err := tr.BulkBuild([]Key{{5, 5, 5}}); err != nil {
		t.Fatal(err)
	}
	ok, err := tr.Contains(Key{5, 5, 5})
	if err != nil || !ok {
		t.Fatalf("Contains = (%v, %v)", ok, err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkBuildEmpty(t *testing.T) {
	tr, _ := newTree(t)
	if err := tr.BulkBuild(nil); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
}

func TestDepthGrowsLogarithmically(t *testing.T) {
	tr, _ := newTree(t)
	for i := uint64(0); i < 60000; i++ {
		mustInsert(t, tr, Key{i, 0, 0})
	}
	d, err := tr.Depth()
	if err != nil {
		t.Fatal(err)
	}
	// 60000 keys / 170 per leaf ≈ 353 leaves → height 3 suffices with
	// fanout 146; allow up to 4 for split slack.
	if d < 2 || d > 4 {
		t.Fatalf("Depth = %d, want 2..4 for 60k sequential keys", d)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Key
		want int
	}{
		{Key{1, 2, 3}, Key{1, 2, 3}, 0},
		{Key{1, 2, 3}, Key{1, 2, 4}, -1},
		{Key{1, 2, 3}, Key{1, 3, 0}, -1},
		{Key{2, 0, 0}, Key{1, 9, 9}, 1},
		{Key{0, 0, 0}, MaxKey, -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestQuickAgainstMap drives the tree with random insert/delete/lookup
// operations and checks it against a reference map.
func TestQuickAgainstMap(t *testing.T) {
	tr, _ := newTree(t)
	ref := make(map[Key]bool)
	rng := rand.New(rand.NewSource(99))
	for op := 0; op < 20000; op++ {
		k := Key{uint64(rng.Intn(30)), uint64(rng.Intn(30)), uint64(rng.Intn(30))}
		switch rng.Intn(3) {
		case 0:
			added, err := tr.Insert(k)
			if err != nil {
				t.Fatal(err)
			}
			if added == ref[k] {
				t.Fatalf("op %d: Insert(%v) = %v but ref has %v", op, k, added, ref[k])
			}
			ref[k] = true
		case 1:
			removed, err := tr.Delete(k)
			if err != nil {
				t.Fatal(err)
			}
			if removed != ref[k] {
				t.Fatalf("op %d: Delete(%v) = %v but ref has %v", op, k, removed, ref[k])
			}
			delete(ref, k)
		default:
			ok, err := tr.Contains(k)
			if err != nil {
				t.Fatal(err)
			}
			if ok != ref[k] {
				t.Fatalf("op %d: Contains(%v) = %v but ref has %v", op, k, ok, ref[k])
			}
		}
	}
	if tr.Len() != uint64(len(ref)) {
		t.Fatalf("final Len = %d, want %d", tr.Len(), len(ref))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestQuickScanMatchesSortedRef property-tests that Scan over random key
// sets reproduces the sorted reference exactly.
func TestQuickScanMatchesSortedRef(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%800 + 1
		pf, err := pagefile.Create(filepath.Join(t.TempDir(), "quick.db"), pagefile.Options{CacheSize: 32})
		if err != nil {
			return false
		}
		defer pf.Close()
		tr := New(pf, 0, 1)
		rng := rand.New(rand.NewSource(seed))
		set := make(map[Key]bool, n)
		for i := 0; i < n; i++ {
			k := Key{uint64(rng.Intn(40)), uint64(rng.Intn(40)), uint64(rng.Intn(40))}
			set[k] = true
			if _, err := tr.Insert(k); err != nil {
				return false
			}
		}
		want := make([]Key, 0, len(set))
		for k := range set {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return Less(want[i], want[j]) })
		var got []Key
		if err := tr.Scan(Key{}, MaxKey, func(k Key) bool { got = append(got, k); return true }); err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
