package btree

import (
	"math/rand"
	"path/filepath"
	"testing"

	"hexastore/internal/pagefile"
)

func newTestTree(t *testing.T, compress bool) *Tree {
	t.Helper()
	pf, err := pagefile.Create(filepath.Join(t.TempDir(), "t.db"), pagefile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() })
	tr := New(pf, 0, 1)
	tr.SetCompression(compress)
	return tr
}

func randKeys(rng *rand.Rand, n int) []Key {
	set := make(map[Key]bool, n)
	for len(set) < n {
		set[Key{uint64(rng.Intn(50)), uint64(rng.Intn(200)), uint64(rng.Int63n(1 << 40))}] = true
	}
	keys := make([]Key, 0, n)
	for k := range set {
		keys = append(keys, k)
	}
	sortSliceKeys(keys)
	return keys
}

func sortSliceKeys(keys []Key) {
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && Less(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}

// TestCompressedBulkBuild checks a compressed bulk build round-trips
// every key, satisfies the invariants, and uses far fewer leaf pages
// than the raw build.
func TestCompressedBulkBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := randKeys(rng, 20000)

	comp := newTestTree(t, true)
	if err := comp.BulkBuild(keys); err != nil {
		t.Fatal(err)
	}
	if err := comp.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	raw := newTestTree(t, false)
	if err := raw.BulkBuild(keys); err != nil {
		t.Fatal(err)
	}

	var got []Key
	if err := comp.Scan(Key{}, MaxKey, func(k Key) bool {
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("scan returned %d keys, want %d", len(got), len(keys))
	}
	for i := range got {
		if got[i] != keys[i] {
			t.Fatalf("scan key %d = %v, want %v", i, got[i], keys[i])
		}
	}
	for _, k := range keys[:500] {
		ok, err := comp.Contains(k)
		if err != nil || !ok {
			t.Fatalf("Contains(%v) = %v, %v", k, ok, err)
		}
	}
	if ok, _ := comp.Contains(Key{999, 999, 999}); ok {
		t.Fatal("Contains reported an absent key")
	}

	compPages := comp.pf.NumPages()
	rawPages := raw.pf.NumPages()
	if compPages*2 > rawPages {
		t.Fatalf("compressed build used %d pages vs raw %d: less than 2x win", compPages, rawPages)
	}
}

// TestCompressedMutation drives random inserts and deletes through a
// compressed bulk-built tree — exercising in-place re-encodes, leaf
// bursts (multi-way splits), and deletes that re-encode — comparing
// against a model map after every batch and validating invariants.
func TestCompressedMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	keys := randKeys(rng, 5000)
	tr := newTestTree(t, true)
	if err := tr.BulkBuild(keys); err != nil {
		t.Fatal(err)
	}
	model := make(map[Key]bool, len(keys))
	for _, k := range keys {
		model[k] = true
	}

	for round := 0; round < 40; round++ {
		for op := 0; op < 50; op++ {
			k := Key{uint64(rng.Intn(50)), uint64(rng.Intn(200)), uint64(rng.Int63n(1 << 40))}
			if rng.Intn(3) > 0 || len(model) == 0 {
				changed, err := tr.Insert(k)
				if err != nil {
					t.Fatal(err)
				}
				if changed == model[k] {
					t.Fatalf("Insert(%v) changed=%v but model has=%v", k, changed, model[k])
				}
				model[k] = true
			} else {
				// Delete a random existing key half the time.
				if rng.Intn(2) == 0 {
					for mk := range model {
						k = mk
						break
					}
				}
				changed, err := tr.Delete(k)
				if err != nil {
					t.Fatal(err)
				}
				if changed != model[k] {
					t.Fatalf("Delete(%v) changed=%v but model has=%v", k, changed, model[k])
				}
				delete(model, k)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got := int(tr.Len()); got != len(model) {
			t.Fatalf("round %d: Len=%d model=%d", round, got, len(model))
		}
	}
	// Full scan equals the sorted model.
	var got []Key
	if err := tr.Scan(Key{}, MaxKey, func(k Key) bool {
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(model) {
		t.Fatalf("scan %d keys, model %d", len(got), len(model))
	}
	for _, k := range got {
		if !model[k] {
			t.Fatalf("scan returned %v not in model", k)
		}
	}
}

// TestCompressedLeafBurst forces a compressed leaf overflow: fill one
// leaf to the brim via bulk build, then insert keys with huge deltas so
// the re-encoded stream cannot fit and the leaf must burst into
// several, growing the tree via multi-way splits.
func TestCompressedLeafBurst(t *testing.T) {
	tr := newTestTree(t, true)
	// Dense keys — ~3 bytes each, so one leaf holds ~1200.
	keys := make([]Key, 1200)
	for i := range keys {
		keys[i] = Key{1, 1, uint64(i * 2)}
	}
	if err := tr.BulkBuild(keys); err != nil {
		t.Fatal(err)
	}
	model := make(map[Key]bool, len(keys))
	for _, k := range keys {
		model[k] = true
	}
	// Sparse keys interleaved: each costs ~10+ bytes, overflow follows.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 400; i++ {
		k := Key{1, 1, uint64(rng.Int63n(1<<60))*2 + 1}
		if model[k] {
			continue
		}
		if _, err := tr.Insert(k); err != nil {
			t.Fatal(err)
		}
		model[k] = true
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := int(tr.Len()); got != len(model) {
		t.Fatalf("Len=%d model=%d", got, len(model))
	}
	n := 0
	if err := tr.Scan(Key{}, MaxKey, func(k Key) bool {
		if !model[k] {
			t.Fatalf("scan returned %v not in model", k)
		}
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != len(model) {
		t.Fatalf("scan %d keys, model %d", n, len(model))
	}
}
