package core

import "sync/atomic"

// Advisor records per-index access counts. The paper's discussion section
// (§6) observes that "some indices may not contribute to query efficiency
// based on a given workload" (their experiments seldom used ops) and
// poses workload-driven index selection as future work; Advisor provides
// the measurement side of that: run a workload, read Hits, and decide
// which indices a deployment could drop.
//
// Counters are atomic so they can be bumped under the store's read lock.
type Advisor struct {
	hits [6]atomic.Uint64
}

func (a *Advisor) hit(ix Index) { a.hits[ix].Add(1) }

// Hits returns the access count per index, keyed by Index order.
func (a *Advisor) Hits() [6]uint64 {
	var out [6]uint64
	for i := range a.hits {
		out[i] = a.hits[i].Load()
	}
	return out
}

// Reset zeroes all counters.
func (a *Advisor) Reset() {
	for i := range a.hits {
		a.hits[i].Store(0)
	}
}

// ColdIndexes returns the indices whose hit count is at most threshold,
// in Index order — candidates for dropping under the observed workload.
func (a *Advisor) ColdIndexes(threshold uint64) []Index {
	var cold []Index
	for _, ix := range AllIndexes {
		if a.hits[ix].Load() <= threshold {
			cold = append(cold, ix)
		}
	}
	return cold
}

// Advisor returns the store's access advisor.
func (st *Store) Advisor() *Advisor { return &st.advisor }
