package core

import (
	"runtime"
	"slices"
	"sync"

	"hexastore/internal/dictionary"
	"hexastore/internal/idlist"
	"hexastore/internal/rdf"
)

// Builder bulk-loads a Hexastore. Incremental Store.Add keeps six indices
// sorted per insertion; for initial loads it is much cheaper to collect
// all triples, sort three times, and construct every vector and terminal
// list in its final sorted order. Typical speedup is an order of
// magnitude on million-triple loads.
type Builder struct {
	dict    *dictionary.Dictionary
	triples [][3]ID
	// compress selects the block-compressed index layout (packed
	// delta+varint vectors) for the built store. On by default: bulk-built
	// stores are read-mostly, and the compressed layout is both the space
	// answer to the paper's five-fold overhead and the layout the delta
	// overlay's compaction rebuilds into. SetCompression(false) restores
	// the raw shared-terminal-list layout.
	compress bool
}

// NewBuilder returns a bulk loader that will produce a store sharing
// dict. The built store uses the block-compressed index layout; see
// SetCompression.
func NewBuilder(dict *dictionary.Dictionary) *Builder {
	if dict == nil {
		dict = dictionary.New()
	}
	return &Builder{dict: dict, compress: true}
}

// SetCompression selects between the block-compressed (true, the
// default) and raw shared-list (false) index layouts for the built
// store. Both layouts answer every query identically; they differ only
// in bytes per triple and in the cost of later in-place mutation (a
// compressed store decompresses itself wholesale on its first direct
// Add/Remove — live updates should instead go through the delta
// overlay, which never mutates a bulk-built main).
func (b *Builder) SetCompression(on bool) { b.compress = on }

// Add records the triple ⟨s,p,o⟩ for loading. Duplicates are removed at
// Build time.
func (b *Builder) Add(s, p, o ID) {
	if s == None || p == None || o == None {
		return
	}
	b.triples = append(b.triples, [3]ID{s, p, o})
}

// AddAll bulk-records ts with one append (a single grow + copy), then
// compacts out entries containing None — the slice-level counterpart of
// calling Add per triple, used where the triples are already encoded
// (EncodeTriples output, bench harnesses).
func (b *Builder) AddAll(ts [][3]ID) {
	start := len(b.triples)
	b.triples = append(b.triples, ts...)
	w := start
	for _, t := range b.triples[start:] {
		if t[0] == None || t[1] == None || t[2] == None {
			continue
		}
		b.triples[w] = t
		w++
	}
	b.triples = b.triples[:w]
}

// AddTriple dictionary-encodes and records an rdf.Triple. Invalid triples
// are ignored and reported.
func (b *Builder) AddTriple(t rdf.Triple) bool {
	if !t.Valid() {
		return false
	}
	s, p, o := b.dict.EncodeTriple(t)
	b.Add(s, p, o)
	return true
}

// Len returns the number of recorded triples (before deduplication).
func (b *Builder) Len() int { return len(b.triples) }

// Dictionary returns the dictionary the builder encodes with (and the
// built store will share).
func (b *Builder) Dictionary() *dictionary.Dictionary { return b.dict }

// Build constructs the store. The builder may be reused afterwards; the
// recorded triples are retained (Build copies what it needs). Initial
// loads that discard the builder should prefer BuildParallel, which
// consumes the triple buffer instead of copying it and can use several
// cores.
func (b *Builder) Build() *Store {
	ts := make([][3]ID, len(b.triples))
	copy(ts, b.triples)
	return buildFrom(b.dict, ts, 1, b.compress)
}

// BuildParallel constructs the store using up to workers goroutines
// (workers <= 0 means runtime.GOMAXPROCS(0); 1 runs the sequential
// passes). It consumes the recorded triples — the builder's buffer is
// released rather than copied, so peak memory during million-triple loads
// is one triple set, not two — and the builder must not be reused for
// another Build afterwards (Add starts a fresh load).
//
// The resulting store is identical to Build's output for every worker
// count: each index pass consumes the fully sorted triple set in its own
// order, so neither goroutine scheduling nor the parallel sort's chunking
// can change what is built.
func (b *Builder) BuildParallel(workers int) *Store {
	ts := b.triples
	b.triples = nil
	return buildFrom(b.dict, ts, workers, b.compress)
}

// buildFrom runs the three sort+build passes over ts, which it owns.
func buildFrom(dict *dictionary.Dictionary, ts [][3]ID, workers int, compress bool) *Store {
	st := NewShared(dict)
	fillStore(st, ts, workers, compress)
	return st
}

// fillStore sorts, dedupes and loads ts into the empty store st, in the
// raw or block-compressed layout. With workers > 1 the (s,o,p) and
// (p,o,s) passes get their own sorted copies and all three passes run
// concurrently — they touch disjoint store maps (objLists/spo/pso,
// propLists/sop/osp, subjLists/pos/ops), so no locking is needed.
// fillStore owns ts. The built content is identical for every worker
// count: each pass consumes the fully sorted triple set in its own
// order, so neither goroutine scheduling nor the parallel sort's
// chunking can change what is built.
func fillStore(st *Store, ts [][3]ID, workers int, compress bool) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Dedupe on (s,p,o).
	sortTriples(ts, 0, 1, 2, workers)
	ts = dedupeTriples(ts)
	st.size = len(ts)
	st.compressed = compress

	// pass runs one ordering pair's build in the raw or packed layout.
	pass := func(ts [][3]ID, a, b, c int, lists map[pairKey]*idlist.List, fwd, mirror Index) {
		if compress {
			packPass(ts, a, b, c, st.pidx[fwd], st.pidx[mirror])
		} else {
			buildPass(ts, a, b, c, lists, st.idx[fwd], st.idx[mirror])
		}
	}

	if workers <= 1 {
		// Pass 1 — sorted by (s,p,o): object lists shared by spo and pso.
		// Consecutive runs of equal (s,p) become one terminal list; the
		// spo vectors receive their keys already in order.
		pass(ts, 0, 1, 2, st.objLists, SPO, PSO)

		// Pass 2 — sorted by (s,o,p): property lists shared by sop and osp.
		sortTriples(ts, 0, 2, 1, 1)
		pass(ts, 0, 2, 1, st.propLists, SOP, OSP)

		// Pass 3 — sorted by (p,o,s): subject lists shared by pos and ops.
		sortTriples(ts, 1, 2, 0, 1)
		pass(ts, 1, 2, 0, st.subjLists, POS, OPS)
		return
	}

	// Parallel passes: pass 1 reuses the (s,p,o)-sorted ts as is and runs
	// on the calling goroutine (which would otherwise idle in Wait);
	// passes 2 and 3 sort private copies. The spawned lanes stay within
	// the budget: with workers == 2 a single lane handles both re-sorts
	// sequentially, otherwise two lanes split the remaining workers-1
	// budget between their sorts — so at most `workers` goroutines are
	// CPU-bound at any moment.
	ts2 := slices.Clone(ts)
	ts3 := slices.Clone(ts)
	pass2 := func(sortWorkers int) {
		sortTriples(ts2, 0, 2, 1, sortWorkers)
		pass(ts2, 0, 2, 1, st.propLists, SOP, OSP)
	}
	pass3 := func(sortWorkers int) {
		sortTriples(ts3, 1, 2, 0, sortWorkers)
		pass(ts3, 1, 2, 0, st.subjLists, POS, OPS)
	}
	var wg sync.WaitGroup
	if workers == 2 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pass2(1)
			pass3(1)
		}()
	} else {
		s2 := (workers - 1) / 2
		s3 := workers - 1 - s2
		wg.Add(2)
		go func() {
			defer wg.Done()
			pass2(s2)
		}()
		go func() {
			defer wg.Done()
			pass3(s3)
		}()
	}
	pass(ts, 0, 1, 2, st.objLists, SPO, PSO)
	wg.Wait()
}

// buildPass consumes triples sorted by positions (a, b, c) and builds:
// the shared terminal lists keyed by (a,b) holding the c members, the
// "forward" index (head a, key b) and the "mirror" index (head b, key a).
// Both fill in sorted order: the pass is a-major, so forward keys (b
// within one head a) and mirror keys (a within one head b) are each
// strictly increasing.
func buildPass(ts [][3]ID, a, b, c int, lists map[pairKey]*idlist.List, fwd, mirror map[ID]*Vec) {
	i := 0
	for i < len(ts) {
		ka, kb := ts[i][a], ts[i][b]
		j := i
		for j < len(ts) && ts[j][a] == ka && ts[j][b] == kb {
			j++
		}
		members := make([]ID, 0, j-i)
		for k := i; k < j; k++ {
			members = append(members, ts[k][c])
		}
		list := idlist.FromSorted(members)
		lists[pairKey{ka, kb}] = list

		fv := fwd[ka]
		if fv == nil {
			fv = &Vec{}
			fwd[ka] = fv
		}
		// Keys arrive in strictly ascending order within each head: the
		// pass is sorted a-major then b, so both the forward vectors
		// (head a, keys b) and the mirror vectors (head b, keys a) can
		// use the checked bulk Append.
		fv.Append(kb, list)

		mv := mirror[kb]
		if mv == nil {
			mv = &Vec{}
			mirror[kb] = mv
		}
		mv.Append(ka, list)
		i = j
	}
}

// packPass is buildPass for the block-compressed layout: it consumes
// triples sorted by positions (a, b, c) and renders both the forward
// index (head a, key b) and the mirror index (head b, key a) as packed
// delta+varint vectors — keys and terminal lists in one immutable blob
// per head, no per-pair map entries and no per-list allocations. Unlike
// the raw layout the two orderings do not share list storage (a packed
// blob has no pointers to share), which the compression win pays for
// several times over; see Store.IndexBytes.
//
// The pass is a-major, so forward blobs build head by head; mirror
// blobs accumulate in per-head builders (their keys a still arrive in
// ascending order within each head b) and finish at the end.
func packPass(ts [][3]ID, a, b, c int, fwd, mirror map[ID]*idlist.Packed) {
	mirrors := make(map[ID]*idlist.PackedBuilder)
	var fb *idlist.PackedBuilder
	var fhead ID
	members := make([]ID, 0, 64)
	i := 0
	for i < len(ts) {
		ka, kb := ts[i][a], ts[i][b]
		j := i
		for j < len(ts) && ts[j][a] == ka && ts[j][b] == kb {
			j++
		}
		members = members[:0]
		for k := i; k < j; k++ {
			members = append(members, ts[k][c])
		}
		if fb == nil || ka != fhead {
			if fb != nil {
				fwd[fhead] = fb.Finish()
			}
			fb = &idlist.PackedBuilder{}
			fhead = ka
		}
		fb.Append(kb, members)

		mb := mirrors[kb]
		if mb == nil {
			mb = &idlist.PackedBuilder{}
			mirrors[kb] = mb
		}
		mb.Append(ka, members)
		i = j
	}
	if fb != nil {
		fwd[fhead] = fb.Finish()
	}
	for kb, mb := range mirrors {
		mirror[kb] = mb.Finish()
	}
}

// sortTriples sorts ts by positions (a, b, c) using up to workers
// goroutines. The comparator is a total order over the triple values, so
// the sorted output — and everything built from it — is independent of
// the worker count.
func sortTriples(ts [][3]ID, a, b, c, workers int) {
	idlist.ParallelSortFunc(ts, workers, func(x, y [3]ID) int {
		for _, j := range [3]int{a, b, c} {
			if x[j] != y[j] {
				if x[j] < y[j] {
					return -1
				}
				return 1
			}
		}
		return 0
	})
}

func dedupeTriples(ts [][3]ID) [][3]ID {
	if len(ts) < 2 {
		return ts
	}
	w := 1
	for r := 1; r < len(ts); r++ {
		if ts[r] != ts[w-1] {
			ts[w] = ts[r]
			w++
		}
	}
	return ts[:w]
}
