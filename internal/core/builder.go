package core

import (
	"sort"

	"hexastore/internal/dictionary"
	"hexastore/internal/idlist"
	"hexastore/internal/rdf"
)

// Builder bulk-loads a Hexastore. Incremental Store.Add keeps six indices
// sorted per insertion; for initial loads it is much cheaper to collect
// all triples, sort three times, and construct every vector and terminal
// list in its final sorted order. Typical speedup is an order of
// magnitude on million-triple loads.
type Builder struct {
	dict    *dictionary.Dictionary
	triples [][3]ID
}

// NewBuilder returns a bulk loader that will produce a store sharing dict.
func NewBuilder(dict *dictionary.Dictionary) *Builder {
	if dict == nil {
		dict = dictionary.New()
	}
	return &Builder{dict: dict}
}

// Add records the triple ⟨s,p,o⟩ for loading. Duplicates are removed at
// Build time.
func (b *Builder) Add(s, p, o ID) {
	if s == None || p == None || o == None {
		return
	}
	b.triples = append(b.triples, [3]ID{s, p, o})
}

// AddTriple dictionary-encodes and records an rdf.Triple. Invalid triples
// are ignored and reported.
func (b *Builder) AddTriple(t rdf.Triple) bool {
	if !t.Valid() {
		return false
	}
	s, p, o := b.dict.EncodeTriple(t)
	b.Add(s, p, o)
	return true
}

// Len returns the number of recorded triples (before deduplication).
func (b *Builder) Len() int { return len(b.triples) }

// Build constructs the store. The builder may be reused afterwards; the
// recorded triples are retained (Build copies what it needs).
func (b *Builder) Build() *Store {
	st := NewShared(b.dict)
	ts := make([][3]ID, len(b.triples))
	copy(ts, b.triples)

	// Dedupe on (s,p,o).
	sortTriples(ts, 0, 1, 2)
	ts = dedupeTriples(ts)
	st.size = len(ts)

	// Pass 1 — sorted by (s,p,o): object lists shared by spo and pso.
	// Consecutive runs of equal (s,p) become one terminal list; the spo
	// vectors receive their keys already in order.
	buildPass(ts, 0, 1, 2, st.objLists, st.idx[SPO], st.idx[PSO])

	// Pass 2 — sorted by (s,o,p): property lists shared by sop and osp.
	sortTriples(ts, 0, 2, 1)
	buildPass(ts, 0, 2, 1, st.propLists, st.idx[SOP], st.idx[OSP])

	// Pass 3 — sorted by (p,o,s): subject lists shared by pos and ops.
	sortTriples(ts, 1, 2, 0)
	buildPass(ts, 1, 2, 0, st.subjLists, st.idx[POS], st.idx[OPS])

	return st
}

// buildPass consumes triples sorted by positions (a, b, c) and builds:
// the shared terminal lists keyed by (a,b) holding the c members, the
// "forward" index (head a, key b) and the "mirror" index (head b, key a).
// Both fill in sorted order: the pass is a-major, so forward keys (b
// within one head a) and mirror keys (a within one head b) are each
// strictly increasing.
func buildPass(ts [][3]ID, a, b, c int, lists map[pairKey]*idlist.List, fwd, mirror map[ID]*Vec) {
	i := 0
	for i < len(ts) {
		ka, kb := ts[i][a], ts[i][b]
		j := i
		for j < len(ts) && ts[j][a] == ka && ts[j][b] == kb {
			j++
		}
		members := make([]ID, 0, j-i)
		for k := i; k < j; k++ {
			members = append(members, ts[k][c])
		}
		list := idlist.FromSorted(members)
		lists[pairKey{ka, kb}] = list

		fv := fwd[ka]
		if fv == nil {
			fv = &Vec{}
			fwd[ka] = fv
		}
		// Keys arrive in strictly ascending order within each head: the
		// pass is sorted a-major then b, so both the forward vectors
		// (head a, keys b) and the mirror vectors (head b, keys a) can
		// use the checked bulk Append.
		fv.Append(kb, list)

		mv := mirror[kb]
		if mv == nil {
			mv = &Vec{}
			mirror[kb] = mv
		}
		mv.Append(ka, list)
		i = j
	}
}

func sortTriples(ts [][3]ID, a, b, c int) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i][a] != ts[j][a] {
			return ts[i][a] < ts[j][a]
		}
		if ts[i][b] != ts[j][b] {
			return ts[i][b] < ts[j][b]
		}
		return ts[i][c] < ts[j][c]
	})
}

func dedupeTriples(ts [][3]ID) [][3]ID {
	if len(ts) < 2 {
		return ts
	}
	w := 1
	for r := 1; r < len(ts); r++ {
		if ts[r] != ts[w-1] {
			ts[w] = ts[r]
			w++
		}
	}
	return ts[:w]
}
