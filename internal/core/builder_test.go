package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hexastore/internal/dictionary"
	"hexastore/internal/rdf"
)

func TestBuilderMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	inc := New()
	b := NewBuilder(inc.Dictionary())
	for i := 0; i < 3000; i++ {
		s := ID(rng.Intn(30) + 1)
		p := ID(rng.Intn(10) + 1)
		o := ID(rng.Intn(40) + 1)
		inc.Add(s, p, o)
		b.Add(s, p, o)
	}
	bulk := b.Build()

	if inc.Len() != bulk.Len() {
		t.Fatalf("incremental Len=%d, bulk Len=%d", inc.Len(), bulk.Len())
	}
	incViews := allSixViews(inc)
	bulkViews := allSixViews(bulk)
	for ix := range incViews {
		if len(incViews[ix]) != len(bulkViews[ix]) {
			t.Fatalf("index %v: incremental %d triples, bulk %d",
				Index(ix), len(incViews[ix]), len(bulkViews[ix]))
		}
		for tr := range incViews[ix] {
			if !bulkViews[ix][tr] {
				t.Fatalf("index %v: bulk store missing %v", Index(ix), tr)
			}
		}
	}

	incStats, bulkStats := inc.Stats(), bulk.Stats()
	if incStats != bulkStats {
		t.Errorf("stats differ: incremental %+v, bulk %+v", incStats, bulkStats)
	}
}

func TestBuilderDedupes(t *testing.T) {
	b := NewBuilder(nil)
	for i := 0; i < 5; i++ {
		b.Add(1, 2, 3)
	}
	if b.Len() != 5 {
		t.Errorf("Builder.Len = %d, want 5 (pre-dedupe)", b.Len())
	}
	st := b.Build()
	if st.Len() != 1 {
		t.Errorf("built store Len = %d, want 1", st.Len())
	}
}

func TestBuilderIgnoresNone(t *testing.T) {
	b := NewBuilder(nil)
	b.Add(None, 1, 2)
	b.Add(1, None, 2)
	b.Add(1, 2, None)
	if st := b.Build(); st.Len() != 0 {
		t.Errorf("store Len = %d, want 0", st.Len())
	}
}

func TestBuilderSharesTerminalLists(t *testing.T) {
	// Pointer-level list sharing is a property of the raw layout; the
	// compressed layout renders each ordering as its own packed blob.
	b := NewBuilder(nil)
	b.SetCompression(false)
	b.Add(1, 2, 3)
	b.Add(1, 2, 4)
	st := b.Build()
	spoList, _ := st.Head(SPO, 1).Find(2)
	psoList, _ := st.Head(PSO, 2).Find(1)
	if spoList == nil || spoList != psoList {
		t.Error("bulk-built spo and pso do not share object lists")
	}
	sopList, _ := st.Head(SOP, 1).Find(3)
	ospList, _ := st.Head(OSP, 3).Find(1)
	if sopList == nil || sopList != ospList {
		t.Error("bulk-built sop and osp do not share property lists")
	}
	posList, _ := st.Head(POS, 2).Find(3)
	opsList, _ := st.Head(OPS, 3).Find(2)
	if posList == nil || posList != opsList {
		t.Error("bulk-built pos and ops do not share subject lists")
	}
}

func TestBuilderAddTriple(t *testing.T) {
	b := NewBuilder(nil)
	if !b.AddTriple(rdf.T(rdf.NewIRI("s"), rdf.NewIRI("p"), rdf.NewIRI("o"))) {
		t.Error("AddTriple rejected valid triple")
	}
	if b.AddTriple(rdf.Triple{}) {
		t.Error("AddTriple accepted invalid triple")
	}
	if st := b.Build(); st.Len() != 1 {
		t.Errorf("Len = %d, want 1", st.Len())
	}
}

// Property: building from any random multiset of triples yields a store
// whose Match(·,·,·) set equals the deduplicated input.
func TestBuilderEquivalenceProperty(t *testing.T) {
	f := func(raw [][3]uint8) bool {
		b := NewBuilder(nil)
		want := make(map[[3]ID]bool)
		for _, r := range raw {
			s, p, o := ID(r[0])+1, ID(r[1])+1, ID(r[2])+1
			b.Add(s, p, o)
			want[[3]ID{s, p, o}] = true
		}
		st := b.Build()
		if st.Len() != len(want) {
			return false
		}
		ok := true
		st.Match(None, None, None, func(s, p, o ID) bool {
			if !want[[3]ID{s, p, o}] {
				ok = false
			}
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNewBuilderNilDictionary(t *testing.T) {
	b := NewBuilder(nil)
	if b.dict == nil {
		t.Fatal("NewBuilder(nil) left dictionary nil")
	}
	var _ *dictionary.Dictionary = b.dict
}
