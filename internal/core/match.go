package core

import (
	"hexastore/internal/idlist"
	"hexastore/internal/rdf"
)

// Match streams every triple matching the pattern ⟨s,p,o⟩, where None in
// any position is a wildcard, to fn in the natural order of the chosen
// index. Iteration stops early if fn returns false.
//
// Match picks the single best index for each of the eight bound/unbound
// combinations (§4.2: "Depending on the bound elements in a query, a
// mostly efficient computation strategy can be followed"):
//
//	s p o  → spo (existence probe)
//	s p ?  → spo terminal list
//	s ? o  → sop terminal list
//	? p o  → pos terminal list
//	s ? ?  → spo vector walk
//	? p ?  → pso vector walk
//	? ? o  → osp vector walk
//	? ? ?  → spo full scan
func (st *Store) Match(s, p, o ID, fn func(s, p, o ID) bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()

	// terminal returns the matching terminal list of a 2-bound pattern
	// as a view, from the packed vectors or the shared pair maps.
	terminal := func(ix Index, m map[pairKey]*idlist.List, k pairKey) idlist.View {
		if st.compressed {
			v, _ := st.pidx[ix][k.a].Find(k.b)
			return v
		}
		return m[k].View()
	}

	switch {
	case s != None && p != None && o != None:
		st.advisor.hit(SPO)
		if terminal(SPO, st.objLists, pairKey{s, p}).Contains(o) {
			fn(s, p, o)
		}

	case s != None && p != None:
		st.advisor.hit(SPO)
		terminal(SPO, st.objLists, pairKey{s, p}).Range(func(obj ID) bool {
			return fn(s, p, obj)
		})

	case s != None && o != None:
		st.advisor.hit(SOP)
		terminal(SOP, st.propLists, pairKey{s, o}).Range(func(prop ID) bool {
			return fn(s, prop, o)
		})

	case p != None && o != None:
		st.advisor.hit(POS)
		terminal(POS, st.subjLists, pairKey{p, o}).Range(func(subj ID) bool {
			return fn(subj, p, o)
		})

	case s != None:
		st.advisor.hit(SPO)
		st.walkHead(SPO, s, func(prop, obj ID) bool { return fn(s, prop, obj) })

	case p != None:
		st.advisor.hit(PSO)
		st.walkHead(PSO, p, func(subj, obj ID) bool { return fn(subj, p, obj) })

	case o != None:
		st.advisor.hit(OSP)
		st.walkHead(OSP, o, func(subj, prop ID) bool { return fn(subj, prop, o) })

	default:
		st.advisor.hit(SPO)
		// scanHead walks one subject's spo vector; false stops the scan.
		scanHead := func(subj ID) bool {
			stop := false
			st.rangeHeadLocked(SPO, subj, func(prop ID, view idlist.View) bool {
				view.Range(func(obj ID) bool {
					if !fn(subj, prop, obj) {
						stop = true
					}
					return !stop
				})
				return !stop
			})
			return !stop
		}
		if st.compressed {
			for subj := range st.pidx[SPO] {
				if !scanHead(subj) {
					return
				}
			}
			return
		}
		for subj := range st.idx[SPO] {
			if !scanHead(subj) {
				return
			}
		}
	}
}

// walkHead iterates every (key, list-member) pair of head's vector in ix.
func (st *Store) walkHead(ix Index, head ID, fn func(key, member ID) bool) {
	stop := false
	st.rangeHeadLocked(ix, head, func(key ID, view idlist.View) bool {
		view.Range(func(member ID) bool {
			if !fn(key, member) {
				stop = true
			}
			return !stop
		})
		return !stop
	})
}

// Count returns the number of triples matching the pattern without
// materializing them.
func (st *Store) Count(s, p, o ID) int {
	n := 0
	st.Match(s, p, o, func(_, _, _ ID) bool { n++; return true })
	return n
}

// Triples returns all matching triples as a slice of [3]ID. Intended for
// tests and small results; large scans should use Match.
func (st *Store) Triples(s, p, o ID) [][3]ID {
	var out [][3]ID
	st.Match(s, p, o, func(s, p, o ID) bool {
		out = append(out, [3]ID{s, p, o})
		return true
	})
	return out
}

// AddTriple dictionary-encodes and inserts an rdf.Triple. It returns the
// assigned ids and whether the store changed. Invalid triples are
// rejected without touching the dictionary.
func (st *Store) AddTriple(t rdf.Triple) (s, p, o ID, added bool) {
	if !t.Valid() {
		return None, None, None, false
	}
	s, p, o = st.dict.EncodeTriple(t)
	return s, p, o, st.Add(s, p, o)
}

// DecodeMatch is Match with the results decoded back to rdf.Triples,
// for presentation layers.
func (st *Store) DecodeMatch(s, p, o ID, fn func(rdf.Triple) bool) error {
	var decodeErr error
	st.Match(s, p, o, func(s, p, o ID) bool {
		t, err := st.dict.DecodeTriple(s, p, o)
		if err != nil {
			decodeErr = err
			return false
		}
		return fn(t)
	})
	return decodeErr
}
