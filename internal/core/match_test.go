package core

import (
	"math/rand"
	"reflect"
	"testing"

	"hexastore/internal/rdf"
)

func buildSample(t *testing.T) *Store {
	t.Helper()
	st := New()
	triples := [][3]ID{
		{1, 10, 100}, {1, 10, 101}, {1, 11, 100},
		{2, 10, 100}, {2, 12, 102},
		{3, 11, 101}, {3, 11, 103},
	}
	for _, tr := range triples {
		st.Add(tr[0], tr[1], tr[2])
	}
	return st
}

func collect(st *Store, s, p, o ID) [][3]ID {
	var out [][3]ID
	st.Match(s, p, o, func(s, p, o ID) bool {
		out = append(out, [3]ID{s, p, o})
		return true
	})
	return out
}

func TestMatchAllEightPatterns(t *testing.T) {
	st := buildSample(t)
	tests := []struct {
		name    string
		s, p, o ID
		want    int
	}{
		{"fully bound hit", 1, 10, 100, 1},
		{"fully bound miss", 1, 10, 999, 0},
		{"s p bound", 1, 10, None, 2},
		{"s o bound", 1, None, 100, 2},
		{"p o bound", None, 10, 100, 2},
		{"s bound", 1, None, None, 3},
		{"p bound", None, 11, None, 3},
		{"o bound", None, None, 100, 3},
		{"unbound", None, None, None, 7},
		{"absent head", 99, None, None, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := collect(st, tc.s, tc.p, tc.o)
			if len(got) != tc.want {
				t.Errorf("Match(%d,%d,%d) returned %d triples %v, want %d",
					tc.s, tc.p, tc.o, len(got), got, tc.want)
			}
			for _, tr := range got {
				if (tc.s != None && tr[0] != tc.s) ||
					(tc.p != None && tr[1] != tc.p) ||
					(tc.o != None && tr[2] != tc.o) {
					t.Errorf("Match(%d,%d,%d) yielded non-matching %v", tc.s, tc.p, tc.o, tr)
				}
			}
		})
	}
}

func TestMatchEarlyStop(t *testing.T) {
	st := buildSample(t)
	patterns := [][3]ID{
		{1, 10, None}, {1, None, 100}, {None, 10, 100},
		{1, None, None}, {None, 11, None}, {None, None, 100},
		{None, None, None},
	}
	for _, pat := range patterns {
		n := 0
		st.Match(pat[0], pat[1], pat[2], func(_, _, _ ID) bool {
			n++
			return false
		})
		if n != 1 {
			t.Errorf("Match(%v) with early stop invoked fn %d times, want 1", pat, n)
		}
	}
}

func TestMatchAgainstNaiveModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	st := New()
	var model [][3]ID
	seen := make(map[[3]ID]bool)
	for i := 0; i < 2000; i++ {
		tr := [3]ID{ID(rng.Intn(15) + 1), ID(rng.Intn(6) + 1), ID(rng.Intn(20) + 1)}
		st.Add(tr[0], tr[1], tr[2])
		if !seen[tr] {
			seen[tr] = true
			model = append(model, tr)
		}
	}

	naive := func(s, p, o ID) map[[3]ID]bool {
		out := make(map[[3]ID]bool)
		for _, tr := range model {
			if (s == None || tr[0] == s) && (p == None || tr[1] == p) && (o == None || tr[2] == o) {
				out[tr] = true
			}
		}
		return out
	}

	// Exercise all 8 pattern shapes with random bindings.
	for trial := 0; trial < 200; trial++ {
		var s, p, o ID
		if rng.Intn(2) == 0 {
			s = ID(rng.Intn(16)) // may be None (0) or absent id
		}
		if rng.Intn(2) == 0 {
			p = ID(rng.Intn(7))
		}
		if rng.Intn(2) == 0 {
			o = ID(rng.Intn(21))
		}
		want := naive(s, p, o)
		got := collect(st, s, p, o)
		if len(got) != len(want) {
			t.Fatalf("Match(%d,%d,%d) size = %d, naive = %d", s, p, o, len(got), len(want))
		}
		for _, tr := range got {
			if !want[tr] {
				t.Fatalf("Match(%d,%d,%d) yielded %v not in naive result", s, p, o, tr)
			}
		}
	}
}

func TestCount(t *testing.T) {
	st := buildSample(t)
	if got := st.Count(None, None, None); got != 7 {
		t.Errorf("Count(all) = %d, want 7", got)
	}
	if got := st.Count(None, 10, None); got != 3 {
		t.Errorf("Count(p=10) = %d, want 3", got)
	}
}

func TestTriples(t *testing.T) {
	st := buildSample(t)
	got := st.Triples(3, None, None)
	want := [][3]ID{{3, 11, 101}, {3, 11, 103}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Triples(3,·,·) = %v, want %v", got, want)
	}
}

func TestDecodeMatch(t *testing.T) {
	st := New()
	tr := rdf.T(rdf.NewIRI("alice"), rdf.NewIRI("knows"), rdf.NewIRI("bob"))
	st.AddTriple(tr)
	var got []rdf.Triple
	if err := st.DecodeMatch(None, None, None, func(t rdf.Triple) bool {
		got = append(got, t)
		return true
	}); err != nil {
		t.Fatalf("DecodeMatch: %v", err)
	}
	if len(got) != 1 || got[0] != tr {
		t.Errorf("DecodeMatch = %v, want [%v]", got, tr)
	}
}
