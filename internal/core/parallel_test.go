package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"slices"
	"strings"
	"testing"

	"hexastore/internal/dictionary"
	"hexastore/internal/rdf"
)

// genTriples returns n pseudo-random triples (with duplicates) encoded
// into dict, the same sequence for a given seed.
func genTriples(dict *dictionary.Dictionary, n int, seed int64) [][3]ID {
	rng := rand.New(rand.NewSource(seed))
	out := make([][3]ID, 0, n)
	for i := 0; i < n; i++ {
		s := dict.Encode(rdf.NewIRI(fmt.Sprintf("s%d", rng.Intn(n/8+1))))
		p := dict.Encode(rdf.NewIRI(fmt.Sprintf("p%d", rng.Intn(24))))
		o := dict.Encode(rdf.NewIRI(fmt.Sprintf("o%d", rng.Intn(n/4+1))))
		out = append(out, [3]ID{s, p, o})
	}
	return out
}

func snapshotBytes(t *testing.T, st *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := st.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return buf.Bytes()
}

// TestBuildParallelIdenticalToSequential is the determinism check the
// parallel loader is held to: for any worker count the built store must
// be indistinguishable from the sequential Build — verified on the
// snapshot serialization, which covers the dictionary, the triple set,
// and the spo iteration order.
func TestBuildParallelIdenticalToSequential(t *testing.T) {
	dict := dictionary.New()
	triples := genTriples(dict, 40_000, 42)

	seq := NewBuilder(dict)
	for _, tr := range triples {
		seq.Add(tr[0], tr[1], tr[2])
	}
	want := snapshotBytes(t, seq.Build())

	for _, workers := range []int{1, 2, 8} {
		par := NewBuilder(dict)
		for _, tr := range triples {
			par.Add(tr[0], tr[1], tr[2])
		}
		st := par.BuildParallel(workers)
		if got := snapshotBytes(t, st); !bytes.Equal(got, want) {
			t.Fatalf("BuildParallel(%d) snapshot differs from sequential Build", workers)
		}
		if par.Len() != 0 {
			t.Fatalf("BuildParallel(%d) left %d triples in the builder, want 0 (consuming build)", workers, par.Len())
		}
	}
}

// decodeSorted flattens a store to its decoded N-Triples lines, sorted —
// an id-assignment-independent fingerprint for comparing stores whose
// dictionaries were populated in different orders.
func decodeSorted(t *testing.T, st *Store) []string {
	t.Helper()
	var lines []string
	var derr error
	st.Match(None, None, None, func(s, p, o ID) bool {
		tr, err := st.Dictionary().DecodeTriple(s, p, o)
		if err != nil {
			derr = err
			return false
		}
		lines = append(lines, tr.String())
		return true
	})
	if derr != nil {
		t.Fatalf("decode: %v", derr)
	}
	slices.Sort(lines)
	return lines
}

func TestAddNTriplesParallelEquivalent(t *testing.T) {
	var doc strings.Builder
	doc.WriteString("# header comment\n\n")
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&doc, "<s%d> <p%d> \"o %d\" .\n", rng.Intn(500), rng.Intn(20), rng.Intn(800))
		if i%97 == 0 {
			doc.WriteString("\n# interleaved comment\n")
		}
	}

	var want []string
	wantAdded := 0
	for _, workers := range []int{1, 2, 8} {
		b := NewBuilder(nil)
		added, err := b.AddNTriples(strings.NewReader(doc.String()), workers)
		if err != nil {
			t.Fatalf("workers=%d: AddNTriples: %v", workers, err)
		}
		got := decodeSorted(t, b.BuildParallel(workers))
		if workers == 1 {
			want, wantAdded = got, added
			continue
		}
		if added != wantAdded {
			t.Errorf("workers=%d: added %d triples, sequential added %d", workers, added, wantAdded)
		}
		if !slices.Equal(got, want) {
			t.Errorf("workers=%d: loaded triple set differs from sequential", workers)
		}
	}
}

func TestAddNTriplesReportsEarliestParseError(t *testing.T) {
	var doc strings.Builder
	for i := 1; i <= 4000; i++ {
		if i == 2777 {
			doc.WriteString("<s> <p> .\n") // malformed: missing object
			continue
		}
		fmt.Fprintf(&doc, "<s%d> <p> <o%d> .\n", i, i)
	}
	for _, workers := range []int{1, 4} {
		b := NewBuilder(nil)
		_, err := b.AddNTriples(strings.NewReader(doc.String()), workers)
		var pe *rdf.ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *rdf.ParseError", workers, err)
		}
		if pe.Line != 2777 {
			t.Errorf("workers=%d: error line = %d, want 2777", workers, pe.Line)
		}
	}
}

// stubReader feeds a fixed triple slice through the TripleReader shape,
// standing in for the stateful Turtle reader.
type stubReader struct {
	ts []rdf.Triple
	i  int
	// failAt, when >= 0, errors after that many reads.
	failAt int
}

func (r *stubReader) Read() (rdf.Triple, error) {
	if r.failAt >= 0 && r.i == r.failAt {
		return rdf.Triple{}, errors.New("stub read failure")
	}
	if r.i >= len(r.ts) {
		return rdf.Triple{}, io.EOF
	}
	t := r.ts[r.i]
	r.i++
	return t, nil
}

func TestAddTriplesParallelEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ts := make([]rdf.Triple, 0, 6000)
	for i := 0; i < 6000; i++ {
		ts = append(ts, rdf.T(
			rdf.NewIRI(fmt.Sprintf("s%d", rng.Intn(400))),
			rdf.NewIRI(fmt.Sprintf("p%d", rng.Intn(16))),
			rdf.NewLiteral(fmt.Sprintf("o%d", rng.Intn(700)))))
	}
	ts[17] = rdf.Triple{} // invalid: skipped by every path

	var want []string
	wantAdded := 0
	for _, workers := range []int{1, 3, 8} {
		b := NewBuilder(nil)
		added, err := b.AddTriples(&stubReader{ts: ts, failAt: -1}, workers)
		if err != nil {
			t.Fatalf("workers=%d: AddTriples: %v", workers, err)
		}
		got := decodeSorted(t, b.BuildParallel(workers))
		if workers == 1 {
			want, wantAdded = got, added
			continue
		}
		if added != wantAdded {
			t.Errorf("workers=%d: added %d, want %d", workers, added, wantAdded)
		}
		if !slices.Equal(got, want) {
			t.Errorf("workers=%d: triple set differs from sequential", workers)
		}
	}

	// A mid-stream read error surfaces from every worker count.
	for _, workers := range []int{1, 4} {
		b := NewBuilder(nil)
		if _, err := b.AddTriples(&stubReader{ts: ts, failAt: 100}, workers); err == nil {
			t.Errorf("workers=%d: AddTriples swallowed the read error", workers)
		}
	}
}
