package core

// The parallel bulk-load pipeline: chunked input feeding concurrent
// dictionary encoding over bounded channels. Encoding — hashing and
// interning three term strings per statement — dominates single-threaded
// load profiles once parsing is cheap, and the sharded dictionary lets
// any number of encoders proceed concurrently; N-Triples input is
// line-delimited, so even the parsing distributes across workers. The
// builder's triple order is irrelevant (Build sorts), which is what
// makes out-of-order chunk completion harmless.

import (
	"bufio"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"hexastore/internal/dictionary"
	"hexastore/internal/rdf"
)

// TripleReader is the streaming source shape the load pipeline accepts;
// rdf.Reader and rdf.TurtleReader satisfy it.
type TripleReader interface {
	Read() (rdf.Triple, error)
}

// loadChunk is the pipeline batch size: large enough to amortize channel
// hand-offs, small enough to keep every worker busy near end of input.
const loadChunk = 1024

// AddTriples drains rd into the builder, dictionary-encoding with up to
// workers concurrent encoders (workers <= 0 means runtime.GOMAXPROCS(0)).
// Parsing stays on the calling goroutine — use AddNTriples for
// line-parallel N-Triples parsing — so it suits stateful formats like
// Turtle whose parse cannot be split. It returns the number of valid
// triples recorded. With workers == 1 it is exactly the sequential
// AddTriple loop. On a read error the already-parsed prefix remains
// recorded, like the sequential loop.
func (b *Builder) AddTriples(rd TripleReader, workers int) (int, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		added := 0
		for {
			t, err := rd.Read()
			if err == io.EOF {
				return added, nil
			}
			if err != nil {
				return added, err
			}
			if b.AddTriple(t) {
				added++
			}
		}
	}

	chunks := make(chan []rdf.Triple, workers)
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex // guards b.triples
		added atomic.Int64
	)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ch := range chunks {
				enc := make([][3]ID, 0, len(ch))
				for _, t := range ch {
					if !t.Valid() {
						continue
					}
					s, p, o := b.dict.EncodeTriple(t)
					enc = append(enc, [3]ID{s, p, o})
				}
				added.Add(int64(len(enc)))
				mu.Lock()
				b.triples = append(b.triples, enc...)
				mu.Unlock()
			}
		}()
	}

	var readErr error
	buf := make([]rdf.Triple, 0, loadChunk)
	for {
		t, err := rd.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			readErr = err
			break
		}
		buf = append(buf, t)
		if len(buf) == loadChunk {
			chunks <- buf
			buf = make([]rdf.Triple, 0, loadChunk)
		}
	}
	if len(buf) > 0 {
		chunks <- buf
	}
	close(chunks)
	wg.Wait()
	return int(added.Load()), readErr
}

// EncodeTriples dictionary-encodes ts with up to workers concurrent
// encoders (workers <= 0 means runtime.GOMAXPROCS(0)), skipping invalid
// triples. The result preserves input order — each worker writes the
// slots of its own contiguous range, then the skipped slots are
// compacted — so the output is independent of the worker count (the
// dictionary's id assignment is not, but ids stay dense and bijective).
func EncodeTriples(dict *dictionary.Dictionary, ts []rdf.Triple, workers int) [][3]ID {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([][3]ID, len(ts))
	encodeRange := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if !ts[i].Valid() {
				continue // slot stays {None,None,None}
			}
			s, p, o := dict.EncodeTriple(ts[i])
			out[i] = [3]ID{s, p, o}
		}
	}
	if workers == 1 || len(ts) < loadChunk {
		encodeRange(0, len(ts))
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo, hi := w*len(ts)/workers, (w+1)*len(ts)/workers
			if lo == hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				encodeRange(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}
	// Compact out the invalid slots.
	w := 0
	for _, tr := range out {
		if tr == ([3]ID{}) {
			continue
		}
		out[w] = tr
		w++
	}
	return out[:w]
}

// lineChunk is one batch of raw input lines; base is the 1-based line
// number of lines[0], for parse-error reporting.
type lineChunk struct {
	base  int
	lines []string
}

// AddNTriples parses an N-Triples stream and records its triples,
// splitting both the parsing and the dictionary encoding across up to
// workers goroutines (workers <= 0 means runtime.GOMAXPROCS(0); 1 is
// exactly the sequential rdf.Reader loop). Lines are distributed in
// chunks over a bounded channel; each worker parses and encodes its
// chunk independently — N-Triples is one statement per line, so the
// split needs no parser state.
//
// Errors carry the same *rdf.ParseError (with 1-based line number) the
// sequential reader produces; when several chunks fail concurrently the
// earliest line is reported, matching what a sequential scan would have
// hit first. After an error the builder holds an unspecified subset of
// the stream's triples; callers that care discard the builder (as the
// LoadNTriples facade does).
func (b *Builder) AddNTriples(r io.Reader, workers int) (int, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return b.AddTriples(rdf.NewReader(r), 1)
	}

	chunks := make(chan lineChunk, workers)
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex // guards b.triples
		added atomic.Int64

		errMu    sync.Mutex
		parseErr *rdf.ParseError
		stop     atomic.Bool
	)
	record := func(e *rdf.ParseError) {
		errMu.Lock()
		if parseErr == nil || e.Line < parseErr.Line {
			parseErr = e
		}
		errMu.Unlock()
		stop.Store(true)
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ch := range chunks {
				enc := make([][3]ID, 0, len(ch.lines))
				for i, raw := range ch.lines {
					line := strings.TrimSpace(raw)
					if line == "" || strings.HasPrefix(line, "#") {
						continue
					}
					t, err := rdf.ParseTriple(line)
					if err != nil {
						record(&rdf.ParseError{Line: ch.base + i, Text: line, Err: err})
						break
					}
					s, p, o := b.dict.EncodeTriple(t)
					enc = append(enc, [3]ID{s, p, o})
				}
				added.Add(int64(len(enc)))
				mu.Lock()
				b.triples = append(b.triples, enc...)
				mu.Unlock()
			}
		}()
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	buf := make([]string, 0, loadChunk)
	base := 1
	for !stop.Load() && sc.Scan() {
		line++
		buf = append(buf, sc.Text())
		if len(buf) == loadChunk {
			chunks <- lineChunk{base: base, lines: buf}
			buf = make([]string, 0, loadChunk)
			base = line + 1
		}
	}
	if len(buf) > 0 {
		chunks <- lineChunk{base: base, lines: buf}
	}
	close(chunks)
	wg.Wait()

	if parseErr != nil {
		return int(added.Load()), parseErr
	}
	if err := sc.Err(); err != nil {
		return int(added.Load()), err
	}
	return int(added.Load()), nil
}
