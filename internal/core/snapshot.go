package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"slices"

	"hexastore/internal/dictionary"
	"hexastore/internal/idlist"
	"hexastore/internal/rdf"
)

// Snapshot format: a small header, the dictionary (term keys in id
// order), then the triple set as varint-delta-encoded (s,p,o) ids in spo
// order. Restore rebuilds all six indices with the bulk Builder, so a
// snapshot is a compact logical image, not a byte copy of the in-memory
// structures. This implements a simplified version of the paper's
// "fully operational disk-based Hexastore" future-work item (§7).

const snapshotMagic = "HEXASTORE1\n"

// Snapshot writes the store (dictionary + triples) to w.
func (st *Store) Snapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}

	st.mu.RLock()
	defer st.mu.RUnlock()

	// Dictionary section: count, then (len, bytes) per term key in id order.
	nTerms := st.dict.Len()
	writeUvarint(bw, uint64(nTerms))
	for id := ID(1); id <= ID(nTerms); id++ {
		term, err := st.dict.Decode(id)
		if err != nil {
			return fmt.Errorf("core: snapshot: %w", err)
		}
		key := term.Key()
		writeUvarint(bw, uint64(len(key)))
		if _, err := bw.WriteString(key); err != nil {
			return err
		}
	}

	// Triple section: count, then delta-encoded spo-ordered triples.
	writeUvarint(bw, uint64(st.size))
	var prevS, prevP ID
	// Walk spo in sorted head order for deterministic, delta-friendly
	// output — the emitted bytes are identical for the raw and
	// compressed layouts, which is what lets the differential suites
	// assert compressed ≡ uncompressed at the snapshot level.
	var heads []ID
	if st.compressed {
		heads = make([]ID, 0, len(st.pidx[SPO]))
		for s := range st.pidx[SPO] {
			heads = append(heads, s)
		}
	} else {
		heads = make([]ID, 0, len(st.idx[SPO]))
		for s := range st.idx[SPO] {
			heads = append(heads, s)
		}
	}
	sortIDs(heads)
	for _, s := range heads {
		st.rangeHeadLocked(SPO, s, func(p ID, view idlist.View) bool {
			var prevO ID
			view.Range(func(o ID) bool {
				writeUvarint(bw, uint64(s-prevS))
				if s != prevS {
					prevP, prevO = 0, 0
				}
				writeUvarint(bw, uint64(p-prevP))
				if p != prevP {
					prevO = 0
				}
				writeUvarint(bw, uint64(o-prevO))
				prevS, prevP, prevO = s, p, o
				return true
			})
			return true
		})
	}
	return bw.Flush()
}

// Restore reads a snapshot produced by Snapshot and returns a new store
// with a fresh dictionary containing exactly the snapshot's terms, in
// the block-compressed layout. Use RestoreWith to choose the layout.
func Restore(r io.Reader) (*Store, error) { return RestoreWith(r, true) }

// RestoreWith is Restore with an explicit index-layout choice.
func RestoreWith(r io.Reader, compress bool) (*Store, error) {
	return RestoreShared(r, nil, compress)
}

// RestoreShared is RestoreWith against a shared dictionary (nil restores
// into a fresh one). Each snapshot term must encode to the same dense id
// it held when the snapshot was written. That holds whenever dict and
// the snapshot descend from one shared instance: dictionaries are
// append-only, so every snapshot of the shared instance captures a
// prefix of one global term sequence, and re-encoding that prefix in
// order reproduces its ids — even if siblings have since pushed the
// shared instance past it. Any disagreement aborts the restore, which
// is what enforces the cluster's shared-dictionary ownership rule when
// per-shard snapshots are restored at startup.
func RestoreShared(r io.Reader, dict *dictionary.Dictionary, compress bool) (*Store, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: restore: reading magic: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("core: restore: bad magic %q", magic)
	}

	b := NewBuilder(dict)
	b.SetCompression(compress)
	dict = b.dict

	nTerms, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("core: restore: term count: %w", err)
	}
	for i := uint64(0); i < nTerms; i++ {
		klen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("core: restore: term %d length: %w", i, err)
		}
		key := make([]byte, klen)
		if _, err := io.ReadFull(br, key); err != nil {
			return nil, fmt.Errorf("core: restore: term %d: %w", i, err)
		}
		term, err := rdf.TermFromKey(string(key))
		if err != nil {
			return nil, fmt.Errorf("core: restore: term %d: %w", i, err)
		}
		if got := dict.Encode(term); got != ID(i+1) {
			return nil, fmt.Errorf("core: restore: term %d encoded as %d (duplicate in snapshot, or mismatched shared dictionary)", i+1, got)
		}
	}

	nTriples, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("core: restore: triple count: %w", err)
	}
	var prevS, prevP, prevO ID
	for i := uint64(0); i < nTriples; i++ {
		ds, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("core: restore: triple %d: %w", i, err)
		}
		dp, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("core: restore: triple %d: %w", i, err)
		}
		do, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("core: restore: triple %d: %w", i, err)
		}
		s := prevS + ID(ds)
		if s != prevS {
			prevP, prevO = 0, 0
		}
		p := prevP + ID(dp)
		if p != prevP {
			prevO = 0
		}
		o := prevO + ID(do)
		if s == None || p == None || o == None || s > ID(dict.Len()) ||
			p > ID(dict.Len()) || o > ID(dict.Len()) {
			return nil, fmt.Errorf("core: restore: triple %d has out-of-range id (%d,%d,%d)", i, s, p, o)
		}
		b.Add(s, p, o)
		prevS, prevP, prevO = s, p, o
	}
	return b.Build(), nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n]) //nolint:errcheck // flushed and checked at the end
}

func sortIDs(ids []ID) { slices.Sort(ids) }
