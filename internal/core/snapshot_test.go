package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"hexastore/internal/rdf"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	st := New()
	dict := st.Dictionary()
	for i := 0; i < 1000; i++ {
		s := dict.Encode(rdf.NewIRI(randName(rng, "s")))
		p := dict.Encode(rdf.NewIRI(randName(rng, "p")))
		o := dict.Encode(rdf.NewLiteral(randName(rng, "o")))
		st.Add(s, p, o)
	}

	var buf bytes.Buffer
	if err := st.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	restored, err := Restore(&buf)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}

	if restored.Len() != st.Len() {
		t.Fatalf("restored Len = %d, want %d", restored.Len(), st.Len())
	}
	if restored.Dictionary().Len() != dict.Len() {
		t.Fatalf("restored dictionary has %d terms, want %d",
			restored.Dictionary().Len(), dict.Len())
	}
	// Compare decoded triple sets (ids are preserved by the format, so
	// comparing raw ids is also valid; decoded comparison additionally
	// checks the dictionary section).
	want := make(map[string]bool)
	if err := st.DecodeMatch(None, None, None, func(tr rdf.Triple) bool {
		want[tr.String()] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := restored.DecodeMatch(None, None, None, func(tr rdf.Triple) bool {
		n++
		if !want[tr.String()] {
			t.Errorf("restored store has unexpected triple %v", tr)
			return false
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != len(want) {
		t.Errorf("restored store decoded %d triples, want %d", n, len(want))
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	if err := New().Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot(empty): %v", err)
	}
	st, err := Restore(&buf)
	if err != nil {
		t.Fatalf("Restore(empty): %v", err)
	}
	if st.Len() != 0 {
		t.Errorf("restored empty store Len = %d", st.Len())
	}
}

func TestRestoreRejectsBadMagic(t *testing.T) {
	if _, err := Restore(strings.NewReader("NOTASNAPSHOT")); err == nil {
		t.Error("Restore accepted bad magic")
	}
}

func TestRestoreRejectsTruncated(t *testing.T) {
	st := New()
	st.Add(1, 1, 1) // ids without dictionary entries are fine for Add but
	// Snapshot needs the dictionary; encode real terms instead.
	st = New()
	st.AddTriple(rdf.T(rdf.NewIRI("a"), rdf.NewIRI("b"), rdf.NewIRI("c")))
	var buf bytes.Buffer
	if err := st.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, len(full) / 2, len(full) - 1} {
		if _, err := Restore(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("Restore of %d/%d bytes succeeded, want error", cut, len(full))
		}
	}
}

func TestSnapshotIsDeterministic(t *testing.T) {
	st := New()
	st.AddTriple(rdf.T(rdf.NewIRI("x"), rdf.NewIRI("y"), rdf.NewIRI("z")))
	st.AddTriple(rdf.T(rdf.NewIRI("x"), rdf.NewIRI("y"), rdf.NewIRI("w")))
	var a, b bytes.Buffer
	if err := st.Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := st.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two snapshots of the same store differ")
	}
}

func randName(rng *rand.Rand, prefix string) string {
	const letters = "abcdefghij"
	var sb strings.Builder
	sb.WriteString(prefix)
	sb.WriteByte(':')
	for i := 0; i < 3; i++ {
		sb.WriteByte(letters[rng.Intn(len(letters))])
	}
	return sb.String()
}
