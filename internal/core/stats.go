package core

import "hexastore/internal/idlist"

// Stats describes the physical size of a Hexastore in index entries, the
// unit the paper's space argument (§4.1) is phrased in: each resource of
// a worst-case triple contributes two header entries, two vector entries
// and one terminal-list entry — five entries versus one triples-table
// cell, hence the quintuple worst-case bound.
type Stats struct {
	Triples int // distinct triples stored

	Headers       int // head resources summed over the six indices
	VectorEntries int // (key, list-pointer) pairs summed over the six indices
	ListEntries   int // ids summed over the three shared terminal-list tables

	// TripleTableEntries is the baseline: 3 cells per triple.
	TripleTableEntries int
}

// TotalEntries returns all resource-key slots the six indices occupy.
func (s Stats) TotalEntries() int { return s.Headers + s.VectorEntries + s.ListEntries }

// ExpansionFactor returns TotalEntries divided by the triples-table
// entries — the paper's space-overhead metric, ≤ 5 in the worst case.
func (s Stats) ExpansionFactor() float64 {
	if s.TripleTableEntries == 0 {
		return 0
	}
	return float64(s.TotalEntries()) / float64(s.TripleTableEntries)
}

// entryBytes is the size of one dictionary key in every physical layout
// of this repository (IDs are uint64).
const entryBytes = 8

// SizeBytes estimates the index memory footprint (excluding the
// dictionary): one 8-byte slot per entry plus per-vector and per-list
// header overheads. Used by the Figure 15 experiment.
func (s Stats) SizeBytes() int64 {
	return int64(s.TotalEntries()) * entryBytes
}

// Stats computes the current sizes. It is O(#vectors) — the per-list
// lengths are summed from the shared tables (raw layout) or the packed
// vectors' stored totals (compressed layout; the spo/sop/pos totals
// equal the three shared tables' entry counts, so the two layouts
// report identical logical sizes).
func (st *Store) Stats() Stats {
	st.mu.RLock()
	defer st.mu.RUnlock()

	var out Stats
	out.Triples = st.size
	out.TripleTableEntries = st.size * 3

	if st.compressed {
		for i := range st.pidx {
			out.Headers += len(st.pidx[i])
			for _, pk := range st.pidx[i] {
				out.VectorEntries += pk.Len()
			}
		}
		for _, ix := range [3]Index{SPO, SOP, POS} {
			for _, pk := range st.pidx[ix] {
				out.ListEntries += pk.Total()
			}
		}
		return out
	}
	for i := range st.idx {
		out.Headers += len(st.idx[i])
		for _, vec := range st.idx[i] {
			out.VectorEntries += vec.Len()
		}
	}
	for _, l := range st.objLists {
		out.ListEntries += l.Len()
	}
	for _, l := range st.propLists {
		out.ListEntries += l.Len()
	}
	for _, l := range st.subjLists {
		out.ListEntries += l.Len()
	}
	return out
}

// IndexStats is the physical (heap-byte) counterpart of Stats: an
// estimate of what the six indexes actually cost in memory under the
// current layout, plus what the same content would cost in the other
// layout — the space01 experiment's measurement.
type IndexStats struct {
	// Triples is the number of distinct triples stored.
	Triples int `json:"triples"`
	// Compressed reports the current layout.
	Compressed bool `json:"compressed"`
	// Bytes estimates the heap footprint of the six indexes (maps,
	// vector structures, keys, terminal lists; the dictionary is
	// excluded) under the current layout.
	Bytes int64 `json:"bytes"`
}

// BytesPerTriple returns Bytes / Triples.
func (s IndexStats) BytesPerTriple() float64 {
	if s.Triples == 0 {
		return 0
	}
	return float64(s.Bytes) / float64(s.Triples)
}

// Estimated per-structure heap costs, in bytes. Slice headers are 24,
// pointers and IDs 8; mapSlack models Go map bucket overhead and load
// factor (~1.5x the entry payload); allocSlack is the allocator's
// per-object header/rounding.
const (
	sliceHeader  = 24
	mapSlack     = 3 // numerator of the 3/2 map overhead factor
	allocSlack   = 16
	vecStruct    = 2*sliceHeader + 8  // keys, lists, packed pointer
	listStruct   = sliceHeader + 8    // ids + comp pointer
	packedStruct = 16 + sliceHeader*3 // nKeys+total, data, skipKey+skipOff
)

// mapBytes estimates a Go map holding n entries of entrySize payload.
func mapBytes(n, entrySize int) int64 {
	return int64(n) * int64(entrySize) * mapSlack / 2
}

// IndexBytes estimates the heap bytes the six indexes occupy under the
// current layout. Raw layout: head maps, Vec structs with key and
// list-pointer slices, the three shared pair maps, and one List
// allocation plus 8 bytes per id per shared terminal list. Compressed
// layout: head maps, Vec structs, and each packed vector's blob and
// skip table. The estimate deliberately counts structure overheads
// (slice headers, map slack, allocator rounding) — they are where the
// raw layout's bytes actually go on short-list RDF data, and omitting
// them would overstate the compression win.
func (st *Store) IndexBytes() int64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var total int64
	if st.compressed {
		for i := range st.pidx {
			// Head map entry: ID key + *Packed value.
			total += mapBytes(len(st.pidx[i]), 16)
			for _, pk := range st.pidx[i] {
				total += packedStruct + allocSlack + int64(pk.SizeBytes())
			}
		}
		return total
	}
	for i := range st.idx {
		// Head map entry: ID key + *Vec value.
		total += mapBytes(len(st.idx[i]), 16)
		for _, vec := range st.idx[i] {
			total += vecStruct + allocSlack + int64(vec.Len())*16 // 8B key + 8B list pointer
		}
	}
	for _, m := range []map[pairKey]*idlist.List{st.objLists, st.propLists, st.subjLists} {
		// Pair map entry: 16B pairKey + 8B pointer.
		total += mapBytes(len(m), 24)
		for _, l := range m {
			total += listStruct + allocSlack + int64(l.Len())*8
		}
	}
	return total
}

// IndexStats reports the store's physical index footprint.
func (st *Store) IndexStats() IndexStats {
	return IndexStats{
		Triples:    st.Len(),
		Compressed: st.Compressed(),
		Bytes:      st.IndexBytes(),
	}
}

// EstimateRawIndexBytes estimates what the logical content described
// by s would cost in the raw (uncompressed) layout, using the same
// per-structure constants as IndexBytes. The server's /stats uses it
// to report a compression ratio for a compressed store without
// building the raw twin; on a raw store it coincides with IndexBytes
// up to rounding.
func EstimateRawIndexBytes(s Stats) int64 {
	pairs := s.VectorEntries / 2 // each shared list is referenced by two vectors
	return mapBytes(s.Headers, 16) +
		int64(s.Headers)*(vecStruct+allocSlack) +
		int64(s.VectorEntries)*16 +
		mapBytes(pairs, 24) +
		int64(pairs)*(listStruct+allocSlack) +
		int64(s.ListEntries)*8
}
