package core

// Stats describes the physical size of a Hexastore in index entries, the
// unit the paper's space argument (§4.1) is phrased in: each resource of
// a worst-case triple contributes two header entries, two vector entries
// and one terminal-list entry — five entries versus one triples-table
// cell, hence the quintuple worst-case bound.
type Stats struct {
	Triples int // distinct triples stored

	Headers       int // head resources summed over the six indices
	VectorEntries int // (key, list-pointer) pairs summed over the six indices
	ListEntries   int // ids summed over the three shared terminal-list tables

	// TripleTableEntries is the baseline: 3 cells per triple.
	TripleTableEntries int
}

// TotalEntries returns all resource-key slots the six indices occupy.
func (s Stats) TotalEntries() int { return s.Headers + s.VectorEntries + s.ListEntries }

// ExpansionFactor returns TotalEntries divided by the triples-table
// entries — the paper's space-overhead metric, ≤ 5 in the worst case.
func (s Stats) ExpansionFactor() float64 {
	if s.TripleTableEntries == 0 {
		return 0
	}
	return float64(s.TotalEntries()) / float64(s.TripleTableEntries)
}

// entryBytes is the size of one dictionary key in every physical layout
// of this repository (IDs are uint64).
const entryBytes = 8

// SizeBytes estimates the index memory footprint (excluding the
// dictionary): one 8-byte slot per entry plus per-vector and per-list
// header overheads. Used by the Figure 15 experiment.
func (s Stats) SizeBytes() int64 {
	return int64(s.TotalEntries()) * entryBytes
}

// Stats computes the current sizes. It is O(#vectors) — the per-list
// lengths are summed from the shared tables.
func (st *Store) Stats() Stats {
	st.mu.RLock()
	defer st.mu.RUnlock()

	var out Stats
	out.Triples = st.size
	out.TripleTableEntries = st.size * 3

	for i := range st.idx {
		out.Headers += len(st.idx[i])
		for _, vec := range st.idx[i] {
			out.VectorEntries += vec.Len()
		}
	}
	for _, l := range st.objLists {
		out.ListEntries += l.Len()
	}
	for _, l := range st.propLists {
		out.ListEntries += l.Len()
	}
	for _, l := range st.subjLists {
		out.ListEntries += l.Len()
	}
	return out
}
