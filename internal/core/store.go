// Package core implements the Hexastore of Weiss, Karras and Bernstein
// (VLDB 2008): an in-memory RDF store that materializes all 3! = 6
// orderings of the triple elements — spo, sop, pso, pos, osp, ops.
//
// Each index associates a head resource with a sorted vector of
// second-position keys; each vector entry points to a sorted terminal
// list of third-position resources. Following §4.1 of the paper, the
// three index pairs that end in the same element share a single physical
// copy of their terminal lists:
//
//	spo & pso share the object  lists, keyed by (subject, property)
//	sop & osp share the property lists, keyed by (subject, object)
//	pos & ops share the subject lists, keyed by (property, object)
//
// This sharing yields the paper's worst-case five-fold (not six-fold)
// space bound relative to a plain triples table.
package core

import (
	"strconv"
	"sync"
	"sync/atomic"

	"hexastore/internal/dictionary"
	"hexastore/internal/idlist"
)

// ID is a dictionary-encoded resource identifier.
type ID = dictionary.ID

// None is the wildcard / unbound marker in pattern lookups.
const None = dictionary.None

// Index names one of the six materialized orderings.
type Index uint8

// The six orderings, named by the order of precedence of the triple
// elements (paper §4.1).
const (
	SPO Index = iota
	SOP
	PSO
	POS
	OSP
	OPS
)

// String returns the lower-case acronym of the ordering.
func (ix Index) String() string {
	switch ix {
	case SPO:
		return "spo"
	case SOP:
		return "sop"
	case PSO:
		return "pso"
	case POS:
		return "pos"
	case OSP:
		return "osp"
	case OPS:
		return "ops"
	default:
		return "invalid"
	}
}

// AllIndexes lists the six orderings in declaration order.
var AllIndexes = [6]Index{SPO, SOP, PSO, POS, OSP, OPS}

// Vec is a sorted association vector of an index; see idlist.Vec.
type Vec = idlist.Vec

// pairKey identifies a shared terminal list by its two leading resources.
type pairKey struct{ a, b ID }

// Store is a Hexastore. The zero value is not usable; call New.
//
// Store is safe for concurrent use: reads take a shared lock, mutations an
// exclusive one. Lists and slices returned by accessors alias internal
// storage and are valid until the next mutation; callers must not modify
// them.
type Store struct {
	mu   sync.RWMutex
	dict *dictionary.Dictionary

	// Shared terminal lists (single physical copies, §4.1).
	objLists  map[pairKey]*idlist.List // (s,p) → sorted objects
	propLists map[pairKey]*idlist.List // (s,o) → sorted properties
	subjLists map[pairKey]*idlist.List // (p,o) → sorted subjects

	// Six head indices (raw layout).
	idx [6]map[ID]*Vec

	// Six head indices in the block-compressed layout: every vector is a
	// packed delta+varint blob (idlist.Packed) holding its keys and
	// terminal lists together. When compressed is set these maps carry
	// the store's whole content, idx and the three pair maps above are
	// empty, and 2-bound lookups go through the packed vectors. Bulk
	// builders set it; the first direct Add/Remove clears it by
	// decompressing the whole store (see decompressLocked).
	pidx       [6]map[ID]*idlist.Packed
	compressed bool

	size int

	// version counts content mutations (successful Add/Remove calls). It
	// backs the graph.Epocher capability: result caches key on it, so it
	// must change whenever query answers can change.
	version atomic.Uint64

	advisor Advisor
}

// Epoch returns the store's content-version token (see graph.Epocher).
func (s *Store) Epoch() string {
	return "m" + strconv.FormatUint(s.version.Load(), 10)
}

// New returns an empty Hexastore with its own private dictionary.
func New() *Store { return NewShared(dictionary.New()) }

// NewShared returns an empty Hexastore using dict, so that several stores
// (e.g. a Hexastore and the COVP baselines) can be compared on identical
// keys.
func NewShared(dict *dictionary.Dictionary) *Store {
	s := &Store{
		dict:      dict,
		objLists:  make(map[pairKey]*idlist.List),
		propLists: make(map[pairKey]*idlist.List),
		subjLists: make(map[pairKey]*idlist.List),
	}
	for i := range s.idx {
		s.idx[i] = make(map[ID]*Vec)
		s.pidx[i] = make(map[ID]*idlist.Packed)
	}
	return s
}

// Dictionary returns the store's dictionary.
func (s *Store) Dictionary() *dictionary.Dictionary { return s.dict }

// Compressed reports whether the store currently uses the
// block-compressed index layout.
func (s *Store) Compressed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.compressed
}

// decompressLocked converts a block-compressed store to the raw
// shared-terminal-list layout in place: the triple set is decoded from
// the packed spo vectors and the six indexes are rebuilt with the bulk
// fill. The packed blobs themselves are never mutated, so zero-copy
// views handed out before the conversion keep reading a consistent
// (pre-mutation) image. Caller holds st.mu exclusively.
//
// This is the write-path escape hatch: direct Add/Remove on a
// compressed store pays one O(n) conversion and then proceeds on the
// raw layout. Live-update workloads should mutate through the delta
// overlay instead, which never touches a bulk-built main.
func (st *Store) decompressLocked() {
	if !st.compressed {
		return
	}
	ts := make([][3]ID, 0, st.size)
	for s, pk := range st.pidx[SPO] {
		pk.Range(func(p ID, v idlist.View) bool {
			v.Range(func(o ID) bool {
				ts = append(ts, [3]ID{s, p, o})
				return true
			})
			return true
		})
	}
	for i := range st.pidx {
		st.pidx[i] = make(map[ID]*idlist.Packed)
	}
	fillStore(st, ts, 1, false)
}

// rangeHeadLocked streams the (key, terminal-list view) pairs of head's
// vector in ix, whichever layout the store is in; caller holds st.mu.
func (st *Store) rangeHeadLocked(ix Index, head ID, fn func(ID, idlist.View) bool) {
	if st.compressed {
		st.pidx[ix][head].Range(fn)
		return
	}
	st.idx[ix][head].RangeViews(fn)
}

// terminalViewLocked returns the terminal-list view of a pattern with
// exactly two bound positions in the compressed layout; the caller
// holds st.mu and has checked st.compressed.
func (st *Store) terminalViewLocked(s, p, o ID) idlist.View {
	var v idlist.View
	switch {
	case s != None && p != None && o == None:
		v, _ = st.pidx[SPO][s].Find(p)
	case s != None && p == None && o != None:
		v, _ = st.pidx[SOP][s].Find(o)
	case s == None && p != None && o != None:
		v, _ = st.pidx[POS][p].Find(o)
	default:
		panic("core: terminal view needs exactly two bound positions")
	}
	return v
}

// Len returns the number of distinct triples in the store.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.size
}

// Add inserts the triple ⟨s,p,o⟩, updating all six indices. It reports
// whether the store changed (false if the triple was already present).
// Insertion touches every index, which the paper (§4.2) notes is the
// scheme's main write-path cost.
func (st *Store) Add(s, p, o ID) bool {
	if s == None || p == None || o == None {
		return false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.decompressLocked()

	ol, olNew := getOrCreate(st.objLists, pairKey{s, p})
	if !ol.Insert(o) {
		return false // triple already present; nothing else to do
	}
	pl, plNew := getOrCreate(st.propLists, pairKey{s, o})
	pl.Insert(p)
	sl, slNew := getOrCreate(st.subjLists, pairKey{p, o})
	sl.Insert(s)

	if olNew {
		st.headVec(SPO, s).Insert(p, ol)
		st.headVec(PSO, p).Insert(s, ol)
	}
	if plNew {
		st.headVec(SOP, s).Insert(o, pl)
		st.headVec(OSP, o).Insert(s, pl)
	}
	if slNew {
		st.headVec(POS, p).Insert(o, sl)
		st.headVec(OPS, o).Insert(p, sl)
	}
	st.size++
	st.version.Add(1)
	return true
}

// Remove deletes the triple ⟨s,p,o⟩ from all six indices, pruning vectors
// and terminal lists that become empty. It reports whether the store
// changed.
func (st *Store) Remove(s, p, o ID) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.decompressLocked()

	ol := st.objLists[pairKey{s, p}]
	if ol == nil || !ol.Remove(o) {
		return false
	}
	if ol.Len() == 0 {
		delete(st.objLists, pairKey{s, p})
		st.dropVecKey(SPO, s, p)
		st.dropVecKey(PSO, p, s)
	}
	if pl := st.propLists[pairKey{s, o}]; pl != nil {
		pl.Remove(p)
		if pl.Len() == 0 {
			delete(st.propLists, pairKey{s, o})
			st.dropVecKey(SOP, s, o)
			st.dropVecKey(OSP, o, s)
		}
	}
	if sl := st.subjLists[pairKey{p, o}]; sl != nil {
		sl.Remove(s)
		if sl.Len() == 0 {
			delete(st.subjLists, pairKey{p, o})
			st.dropVecKey(POS, p, o)
			st.dropVecKey(OPS, o, p)
		}
	}
	st.size--
	st.version.Add(1)
	return true
}

// Has reports whether the triple ⟨s,p,o⟩ is present.
func (st *Store) Has(s, p, o ID) bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.compressed {
		v, ok := st.pidx[SPO][s].Find(p)
		return ok && v.Contains(o)
	}
	return st.objLists[pairKey{s, p}].Contains(o)
}

// headVec returns (creating if needed) the vector for head in index ix.
func (st *Store) headVec(ix Index, head ID) *Vec {
	v := st.idx[ix][head]
	if v == nil {
		v = &Vec{}
		st.idx[ix][head] = v
	}
	return v
}

// dropVecKey removes key from head's vector in ix, deleting the vector if
// it becomes empty.
func (st *Store) dropVecKey(ix Index, head, key ID) {
	v := st.idx[ix][head]
	if v == nil {
		return
	}
	v.Remove(key)
	if v.Len() == 0 {
		delete(st.idx[ix], head)
	}
}

func getOrCreate(m map[pairKey]*idlist.List, k pairKey) (l *idlist.List, created bool) {
	l = m[k]
	if l == nil {
		l = &idlist.List{}
		m[k] = l
		created = true
	}
	return l, created
}

// Head returns the vector for head in ordering ix, or nil if head does
// not occur in that position. For example, Head(SPO, s) is the sorted
// property vector of subject s, and each vector entry's list holds the
// objects of ⟨s, p, ·⟩. On a compressed store the returned Vec is a
// freshly materialized wrapper around the immutable packed blob (its
// accessors stay zero-copy).
func (st *Store) Head(ix Index, head ID) *Vec {
	st.mu.RLock()
	defer st.mu.RUnlock()
	st.advisor.hit(ix)
	if st.compressed {
		if pk := st.pidx[ix][head]; pk != nil {
			return idlist.FromPacked(pk)
		}
		return nil
	}
	return st.idx[ix][head]
}

// Heads returns the number of distinct head resources in ordering ix
// (e.g. Heads(PSO) is the number of distinct properties).
func (st *Store) Heads(ix Index) int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.compressed {
		return len(st.pidx[ix])
	}
	return len(st.idx[ix])
}

// HeadIDs returns the head resources of ordering ix in unspecified order.
func (st *Store) HeadIDs(ix Index) []ID {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.compressed {
		out := make([]ID, 0, len(st.pidx[ix]))
		for id := range st.pidx[ix] {
			out = append(out, id)
		}
		return out
	}
	out := make([]ID, 0, len(st.idx[ix]))
	for id := range st.idx[ix] {
		out = append(out, id)
	}
	return out
}

// Objects returns the sorted object list of ⟨s, p, ·⟩, or nil. On a
// compressed store the returned list is a zero-copy view of the packed
// spo vector rather than shared raw storage.
func (st *Store) Objects(s, p ID) *idlist.List {
	st.mu.RLock()
	defer st.mu.RUnlock()
	st.advisor.hit(SPO)
	if st.compressed {
		if v, ok := st.pidx[SPO][s].Find(p); ok {
			return idlist.ListOf(v)
		}
		return nil
	}
	return st.objLists[pairKey{s, p}]
}

// Subjects returns the sorted subject list of ⟨·, p, o⟩, or nil.
func (st *Store) Subjects(p, o ID) *idlist.List {
	st.mu.RLock()
	defer st.mu.RUnlock()
	st.advisor.hit(POS)
	if st.compressed {
		if v, ok := st.pidx[POS][p].Find(o); ok {
			return idlist.ListOf(v)
		}
		return nil
	}
	return st.subjLists[pairKey{p, o}]
}

// Properties returns the sorted property list of ⟨s, ·, o⟩, or nil.
func (st *Store) Properties(s, o ID) *idlist.List {
	st.mu.RLock()
	defer st.mu.RUnlock()
	st.advisor.hit(SOP)
	if st.compressed {
		if v, ok := st.pidx[SOP][s].Find(o); ok {
			return idlist.ListOf(v)
		}
		return nil
	}
	return st.propLists[pairKey{s, o}]
}

// TerminalList returns the shared terminal list of a pattern with
// exactly two bound positions — the sorted candidate values of the one
// None position: Objects for ⟨s,p,·⟩, Properties for ⟨s,·,o⟩, Subjects
// for ⟨·,p,o⟩. It panics if the pattern does not have exactly one free
// position. Like the per-shape accessors, the returned list aliases
// store-internal storage and is valid until the next mutation.
func (st *Store) TerminalList(s, p, o ID) *idlist.List {
	switch {
	case s != None && p != None && o == None:
		return st.Objects(s, p)
	case s != None && p == None && o != None:
		return st.Properties(s, o)
	case s == None && p != None && o != None:
		return st.Subjects(p, o)
	default:
		panic("core: TerminalList needs exactly two bound positions")
	}
}

// terminalListLocked is TerminalList without locking or advisor hits;
// the caller must hold st.mu.
func (st *Store) terminalListLocked(s, p, o ID) *idlist.List {
	switch {
	case s != None && p != None && o == None:
		return st.objLists[pairKey{s, p}]
	case s != None && p == None && o != None:
		return st.propLists[pairKey{s, o}]
	case s == None && p != None && o != None:
		return st.subjLists[pairKey{p, o}]
	default:
		panic("core: terminal list needs exactly two bound positions")
	}
}

// PatternCardinality returns the exact number of triples matching
// ⟨s,p,o⟩ (None = wildcard) without scanning triples: terminal-list
// lengths for 2–3 bound positions, a vector walk summing list lengths
// for 1, the store size for 0. The whole computation happens under one
// read-lock acquisition, so — unlike summing over lists returned by
// Head/Objects, which alias store internals and are only valid until
// the next mutation — it is safe to call concurrently with writers.
// It is the selectivity primitive the SPARQL planner orders patterns
// with while updates may be in flight.
func (st *Store) PatternCardinality(s, p, o ID) int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.compressed {
		return st.patternCardinalityCompressedLocked(s, p, o)
	}
	switch {
	case s != None && p != None && o != None:
		if st.objLists[pairKey{s, p}].Contains(o) {
			return 1
		}
		return 0
	case s != None && p != None:
		st.advisor.hit(SPO)
		return st.objLists[pairKey{s, p}].Len()
	case s != None && o != None:
		st.advisor.hit(SOP)
		return st.propLists[pairKey{s, o}].Len()
	case p != None && o != None:
		st.advisor.hit(POS)
		return st.subjLists[pairKey{p, o}].Len()
	case s != None:
		st.advisor.hit(SPO)
		return vecSumLocked(st.idx[SPO][s])
	case p != None:
		st.advisor.hit(PSO)
		return vecSumLocked(st.idx[PSO][p])
	case o != None:
		st.advisor.hit(OSP)
		return vecSumLocked(st.idx[OSP][o])
	default:
		return st.size
	}
}

// patternCardinalityCompressedLocked answers PatternCardinality from
// the packed vectors; caller holds st.mu with st.compressed set.
func (st *Store) patternCardinalityCompressedLocked(s, p, o ID) int {
	switch {
	case s != None && p != None && o != None:
		v, ok := st.pidx[SPO][s].Find(p)
		if ok && v.Contains(o) {
			return 1
		}
		return 0
	case s != None && p != None:
		st.advisor.hit(SPO)
		return st.terminalViewLocked(s, p, o).Len()
	case s != None && o != None:
		st.advisor.hit(SOP)
		return st.terminalViewLocked(s, p, o).Len()
	case p != None && o != None:
		st.advisor.hit(POS)
		return st.terminalViewLocked(s, p, o).Len()
	case s != None:
		st.advisor.hit(SPO)
		return st.pidx[SPO][s].Total()
	case p != None:
		st.advisor.hit(PSO)
		return st.pidx[PSO][p].Total()
	case o != None:
		st.advisor.hit(OSP)
		return st.pidx[OSP][o].Total()
	default:
		return st.size
	}
}

// vecSumLocked sums the terminal-list lengths of v; the caller must
// hold st.mu. Packed vectors answer from their stored total.
func vecSumLocked(v *Vec) int {
	if pk := v.Packed(); pk != nil {
		return pk.Total()
	}
	n := 0
	v.RangeViews(func(_ ID, view idlist.View) bool {
		n += view.Len()
		return true
	})
	return n
}

// AppendSorted appends the sorted candidate values of the single None
// position of a 2-bound pattern to dst and returns the extended slice.
// Unlike TerminalList, the copy is taken under the read lock, so the
// result stays valid across concurrent mutations — this is the accessor
// the SPARQL batch engine reads candidate lists through.
func (st *Store) AppendSorted(dst []ID, s, p, o ID) []ID {
	st.mu.RLock()
	defer st.mu.RUnlock()
	switch {
	case o == None:
		st.advisor.hit(SPO)
	case p == None:
		st.advisor.hit(SOP)
	default:
		st.advisor.hit(POS)
	}
	if st.compressed {
		return st.terminalViewLocked(s, p, o).AppendTo(dst)
	}
	return st.terminalListLocked(s, p, o).AppendTo(dst)
}

// SortedListView returns a read-only view of the sorted candidate
// values of a 2-bound pattern's free position, and reports whether the
// view is zero-copy. On a compressed store the view aliases the
// immutable packed blob — safe across concurrent mutations, which
// replace packed structures rather than editing them — so the batch
// engine can merge against it with block skipping and no
// materialization. On a raw store ok is false: raw lists alias mutable
// storage, and callers should fall back to the copying AppendSorted.
func (st *Store) SortedListView(s, p, o ID) (idlist.View, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if !st.compressed {
		return idlist.View{}, false
	}
	switch {
	case o == None:
		st.advisor.hit(SPO)
	case p == None:
		st.advisor.hit(SOP)
	default:
		st.advisor.hit(POS)
	}
	return st.terminalViewLocked(s, p, o), true
}

// SortedPairs streams the values of the two free positions of a
// 1-bound pattern — (p,o) for ⟨s,·,·⟩, (s,o) for ⟨·,p,·⟩, (s,p) for
// ⟨·,·,o⟩ — ordered by the first free position ascending and the second
// ascending within it, holding the read lock for the duration like
// Match. Iteration stops early when fn returns false. It panics unless
// exactly one position is bound.
func (st *Store) SortedPairs(s, p, o ID, fn func(a, b ID) bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var ix Index
	var head ID
	switch {
	case s != None && p == None && o == None:
		ix, head = SPO, s
	case s == None && p != None && o == None:
		ix, head = PSO, p
	case s == None && p == None && o != None:
		ix, head = OSP, o
	default:
		panic("core: SortedPairs needs exactly one bound position")
	}
	st.advisor.hit(ix)
	stop := false
	st.rangeHeadLocked(ix, head, func(key ID, view idlist.View) bool {
		view.Range(func(member ID) bool {
			if !fn(key, member) {
				stop = true
			}
			return !stop
		})
		return !stop
	})
}
