package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"hexastore/internal/rdf"
)

func TestAddAndHas(t *testing.T) {
	st := New()
	if !st.Add(1, 2, 3) {
		t.Fatal("Add new triple reported no change")
	}
	if st.Add(1, 2, 3) {
		t.Fatal("Add duplicate reported change")
	}
	if !st.Has(1, 2, 3) {
		t.Error("Has(1,2,3) = false")
	}
	if st.Has(1, 2, 4) || st.Has(3, 2, 1) {
		t.Error("Has reported absent triple present")
	}
	if st.Len() != 1 {
		t.Errorf("Len = %d, want 1", st.Len())
	}
}

func TestAddRejectsNone(t *testing.T) {
	st := New()
	if st.Add(None, 1, 2) || st.Add(1, None, 2) || st.Add(1, 2, None) {
		t.Error("Add with None id reported change")
	}
	if st.Len() != 0 {
		t.Errorf("Len = %d, want 0", st.Len())
	}
}

func TestRemove(t *testing.T) {
	st := New()
	st.Add(1, 2, 3)
	st.Add(1, 2, 4)
	if !st.Remove(1, 2, 3) {
		t.Fatal("Remove existing reported no change")
	}
	if st.Remove(1, 2, 3) {
		t.Fatal("Remove twice reported change")
	}
	if st.Remove(9, 9, 9) {
		t.Fatal("Remove absent reported change")
	}
	if st.Has(1, 2, 3) {
		t.Error("removed triple still present")
	}
	if !st.Has(1, 2, 4) {
		t.Error("sibling triple vanished")
	}
	if st.Len() != 1 {
		t.Errorf("Len = %d, want 1", st.Len())
	}
}

func TestRemovePrunesEmptyStructures(t *testing.T) {
	st := New()
	st.Add(1, 2, 3)
	st.Remove(1, 2, 3)
	for _, ix := range AllIndexes {
		if n := st.Heads(ix); n != 0 {
			t.Errorf("index %v has %d heads after full removal", ix, n)
		}
	}
	stats := st.Stats()
	if stats.TotalEntries() != 0 {
		t.Errorf("TotalEntries = %d after full removal", stats.TotalEntries())
	}
}

// allSixViews extracts the triple set as seen through each of the six
// indices; they must agree exactly.
func allSixViews(st *Store) [6]map[[3]ID]bool {
	var views [6]map[[3]ID]bool
	extract := func(ix Index, assemble func(head, key, member ID) [3]ID) map[[3]ID]bool {
		set := make(map[[3]ID]bool)
		for _, head := range st.HeadIDs(ix) {
			vec := st.Head(ix, head)
			for i := 0; i < vec.Len(); i++ {
				key := vec.Key(i)
				list := vec.List(i)
				for j := 0; j < list.Len(); j++ {
					set[assemble(head, key, list.At(j))] = true
				}
			}
		}
		return set
	}
	views[SPO] = extract(SPO, func(s, p, o ID) [3]ID { return [3]ID{s, p, o} })
	views[SOP] = extract(SOP, func(s, o, p ID) [3]ID { return [3]ID{s, p, o} })
	views[PSO] = extract(PSO, func(p, s, o ID) [3]ID { return [3]ID{s, p, o} })
	views[POS] = extract(POS, func(p, o, s ID) [3]ID { return [3]ID{s, p, o} })
	views[OSP] = extract(OSP, func(o, s, p ID) [3]ID { return [3]ID{s, p, o} })
	views[OPS] = extract(OPS, func(o, p, s ID) [3]ID { return [3]ID{s, p, o} })
	return views
}

func TestSixIndexesStayConsistentUnderRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	st := New()
	model := make(map[[3]ID]bool)

	for op := 0; op < 5000; op++ {
		s := ID(rng.Intn(20) + 1)
		p := ID(rng.Intn(8) + 1)
		o := ID(rng.Intn(25) + 1)
		key := [3]ID{s, p, o}
		if rng.Intn(3) == 0 {
			changed := st.Remove(s, p, o)
			if changed != model[key] {
				t.Fatalf("op %d: Remove(%v) = %v, model has %v", op, key, changed, model[key])
			}
			delete(model, key)
		} else {
			changed := st.Add(s, p, o)
			if changed == model[key] {
				t.Fatalf("op %d: Add(%v) = %v, model has %v", op, key, changed, model[key])
			}
			model[key] = true
		}
	}

	if st.Len() != len(model) {
		t.Fatalf("Len = %d, model has %d", st.Len(), len(model))
	}
	views := allSixViews(st)
	for ix, view := range views {
		if len(view) != len(model) {
			t.Fatalf("index %v sees %d triples, model has %d", Index(ix), len(view), len(model))
		}
		for tr := range model {
			if !view[tr] {
				t.Fatalf("index %v missing triple %v", Index(ix), tr)
			}
		}
	}
}

func TestSharedTerminalLists(t *testing.T) {
	st := New()
	st.Add(1, 2, 3)
	st.Add(1, 2, 4)

	spoList, ok := st.Head(SPO, 1).Find(2)
	if !ok {
		t.Fatal("spo vector missing property 2")
	}
	psoList, ok := st.Head(PSO, 2).Find(1)
	if !ok {
		t.Fatal("pso vector missing subject 1")
	}
	if spoList != psoList {
		t.Error("spo and pso do not share the same object list pointer")
	}

	sopList, _ := st.Head(SOP, 1).Find(3)
	ospList, _ := st.Head(OSP, 3).Find(1)
	if sopList != ospList {
		t.Error("sop and osp do not share the same property list pointer")
	}

	posList, _ := st.Head(POS, 2).Find(3)
	opsList, _ := st.Head(OPS, 3).Find(2)
	if posList != opsList {
		t.Error("pos and ops do not share the same subject list pointer")
	}
}

// TestWorstCaseSpaceBound verifies the paper's §4.1 space argument: for a
// dataset where every resource occurs exactly once, each resource key
// occupies exactly five entries (2 headers + 2 vector slots + 1 list
// slot), i.e. the expansion factor over a triples table is exactly 5.
func TestWorstCaseSpaceBound(t *testing.T) {
	st := New()
	// Disjoint resources: triple i is (3i+1, 3i+2, 3i+3).
	const n = 100
	for i := 0; i < n; i++ {
		st.Add(ID(3*i+1), ID(3*i+2), ID(3*i+3))
	}
	stats := st.Stats()
	if stats.Headers != 6*n {
		t.Errorf("Headers = %d, want %d", stats.Headers, 6*n)
	}
	if stats.VectorEntries != 6*n {
		t.Errorf("VectorEntries = %d, want %d", stats.VectorEntries, 6*n)
	}
	if stats.ListEntries != 3*n {
		t.Errorf("ListEntries = %d, want %d", stats.ListEntries, 3*n)
	}
	if got := stats.ExpansionFactor(); got != 5.0 {
		t.Errorf("ExpansionFactor = %v, want exactly 5 in the worst case", got)
	}
}

// TestSpaceBelowWorstCaseWithSharing: when resources repeat, the factor
// drops below 5 (the paper: "In practice, the requirement can be lower").
func TestSpaceBelowWorstCaseWithSharing(t *testing.T) {
	st := New()
	for s := ID(1); s <= 10; s++ {
		for o := ID(100); o < 110; o++ {
			st.Add(s, 50, o) // single property, dense s×o
		}
	}
	f := st.Stats().ExpansionFactor()
	if f >= 5.0 {
		t.Errorf("ExpansionFactor = %v, want < 5 for repeating resources", f)
	}
	if f <= 0 {
		t.Errorf("ExpansionFactor = %v, want > 0", f)
	}
}

func TestAccessors(t *testing.T) {
	st := New()
	st.Add(1, 2, 3)
	st.Add(1, 2, 5)
	st.Add(4, 2, 3)
	st.Add(1, 7, 3)

	if got := st.Objects(1, 2).IDs(); !reflect.DeepEqual(got, []ID{3, 5}) {
		t.Errorf("Objects(1,2) = %v, want [3 5]", got)
	}
	if got := st.Subjects(2, 3).IDs(); !reflect.DeepEqual(got, []ID{1, 4}) {
		t.Errorf("Subjects(2,3) = %v, want [1 4]", got)
	}
	if got := st.Properties(1, 3).IDs(); !reflect.DeepEqual(got, []ID{2, 7}) {
		t.Errorf("Properties(1,3) = %v, want [2 7]", got)
	}
	if st.Objects(9, 9) != nil {
		t.Error("Objects on absent pair != nil")
	}
}

func TestHeadVectorsSorted(t *testing.T) {
	st := New()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		st.Add(ID(rng.Intn(10)+1), ID(rng.Intn(10)+1), ID(rng.Intn(10)+1))
	}
	for _, ix := range AllIndexes {
		for _, head := range st.HeadIDs(ix) {
			vec := st.Head(ix, head)
			keys := vec.Keys()
			if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
				t.Fatalf("index %v head %d has unsorted keys %v", ix, head, keys)
			}
			for i := 0; i < vec.Len(); i++ {
				ids := vec.List(i).IDs()
				if !sort.SliceIsSorted(ids, func(a, b int) bool { return ids[a] < ids[b] }) {
					t.Fatalf("index %v head %d key %d has unsorted list %v", ix, head, vec.Key(i), ids)
				}
			}
		}
	}
}

func TestAddTriple(t *testing.T) {
	st := New()
	s, p, o, added := st.AddTriple(rdf.T(rdf.NewIRI("s"), rdf.NewIRI("p"), rdf.NewLiteral("o")))
	if !added {
		t.Fatal("AddTriple reported no change")
	}
	if !st.Has(s, p, o) {
		t.Error("encoded triple not present")
	}
	if _, _, _, added := st.AddTriple(rdf.Triple{}); added {
		t.Error("AddTriple accepted invalid triple")
	}
	if st.Dictionary().Len() != 3 {
		t.Errorf("dictionary has %d terms, want 3 (invalid triple must not encode)", st.Dictionary().Len())
	}
}

func TestIndexString(t *testing.T) {
	want := []string{"spo", "sop", "pso", "pos", "osp", "ops"}
	for i, ix := range AllIndexes {
		if ix.String() != want[i] {
			t.Errorf("Index(%d).String() = %q, want %q", i, ix.String(), want[i])
		}
	}
	if Index(99).String() != "invalid" {
		t.Errorf("Index(99).String() = %q", Index(99).String())
	}
}

func TestAdvisorCountsHits(t *testing.T) {
	st := New()
	st.Add(1, 2, 3)
	st.Advisor().Reset()
	st.Objects(1, 2)
	st.Objects(1, 2)
	st.Subjects(2, 3)
	hits := st.Advisor().Hits()
	if hits[SPO] != 2 {
		t.Errorf("spo hits = %d, want 2", hits[SPO])
	}
	if hits[POS] != 1 {
		t.Errorf("pos hits = %d, want 1", hits[POS])
	}
	cold := st.Advisor().ColdIndexes(0)
	if len(cold) != 4 {
		t.Errorf("ColdIndexes(0) = %v, want 4 unused indices", cold)
	}
}
