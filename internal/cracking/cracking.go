// Package cracking implements database cracking for Hexastore index
// maintenance — the future-work direction raised in §6 of the paper
// ("Database cracking has been suggested as a method to address index
// maintenance as part of query processing using continuous physical
// reorganization … an interesting question is to examine whether such an
// approach can be adapted to Hexastore maintenance"), following the
// technique of Idreos, Kersten and Manegold (refs [29-32]).
//
// A Column holds the triples of one ordering (say pso) physically
// unsorted. Instead of paying a full sort at load time, each query
// physically partitions ("cracks") the column around its requested head
// value as a side effect, and records the partition boundary in a cracker
// index. Early queries pay a linear partition pass over one shrinking
// piece; repeated queries over the same region become pure index lookups.
// The cracking-vs-presorting ablation benchmark quantifies this
// trade-off against the eagerly sorted Hexastore.
package cracking

import (
	"fmt"
	"sort"
	"sync"

	"hexastore/internal/dictionary"
)

// ID re-exports the dictionary id type.
type ID = dictionary.ID

// Triple is one permuted triple; Columns crack on the first component
// (the head resource of the ordering the caller chose).
type Triple [3]ID

// Column is a crackable array of permuted triples. It is safe for
// concurrent use; queries mutate the physical order, so even reads take
// the exclusive lock (cracking is "reorganization as a side effect of
// querying").
type Column struct {
	mu   sync.Mutex
	data []Triple

	// bounds is the cracker index: sorted by val; bounds[i] says every
	// element before pos has head < val and every element at/after pos
	// has head >= val.
	bounds []bound

	// sorted marks head values whose piece has additionally been sorted
	// in full (adaptive refinement for callers that need ordered output).
	sorted map[ID]bool

	cracks int // total crack partition passes, for the ablation metrics
}

type bound struct {
	val ID
	pos int
}

// NewColumn wraps data, which the Column owns afterwards. The data may be
// in any order; no sorting happens until queries arrive.
func NewColumn(data []Triple) *Column {
	return &Column{data: data, sorted: make(map[ID]bool)}
}

// Len returns the number of triples in the column.
func (c *Column) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.data)
}

// Pieces returns the number of physical pieces the column has been
// cracked into so far (1 when untouched).
func (c *Column) Pieces() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.bounds) + 1
}

// Cracks returns the number of partition passes performed so far.
func (c *Column) Cracks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cracks
}

// findBound returns the index in bounds of the first bound with
// val >= v.
func (c *Column) findBound(v ID) int {
	return sort.Search(len(c.bounds), func(i int) bool { return c.bounds[i].val >= v })
}

// crackAt physically partitions so that a position q exists with all
// heads < v strictly before q and all heads >= v at or after q, and
// returns q. Repeated calls with the same v are O(log pieces).
func (c *Column) crackAt(v ID) int {
	i := c.findBound(v)
	if i < len(c.bounds) && c.bounds[i].val == v {
		return c.bounds[i].pos
	}
	// The piece to crack spans from the previous bound (or 0) to the next
	// bound (or len(data)).
	lo := 0
	if i > 0 {
		lo = c.bounds[i-1].pos
	}
	hi := len(c.data)
	if i < len(c.bounds) {
		hi = c.bounds[i].pos
	}
	// Hoare-style partition of data[lo:hi] by head < v.
	q := lo
	for j := lo; j < hi; j++ {
		if c.data[j][0] < v {
			c.data[q], c.data[j] = c.data[j], c.data[q]
			q++
		}
	}
	c.cracks++
	// Insert the new bound at i.
	c.bounds = append(c.bounds, bound{})
	copy(c.bounds[i+1:], c.bounds[i:])
	c.bounds[i] = bound{val: v, pos: q}
	return q
}

// Scan streams every triple whose head equals head to fn, cracking the
// column around [head, head+1) as a side effect. Within the piece the
// triples arrive in arbitrary physical order (use ScanSorted for ordered
// output). Iteration stops early when fn returns false.
func (c *Column) Scan(head ID, fn func(Triple) bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	lo := c.crackAt(head)
	hi := c.crackAt(head + 1)
	for _, t := range c.data[lo:hi] {
		if !fn(t) {
			return
		}
	}
}

// ScanSorted is Scan with the piece sorted by (second, third) component
// before iteration. The sort is performed at most once per head value
// (adaptive refinement): later ScanSorted calls on the same head are
// pure lookups, because cracking never moves elements within an exact
// [head, head+1) piece again.
func (c *Column) ScanSorted(head ID, fn func(Triple) bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	lo := c.crackAt(head)
	hi := c.crackAt(head + 1)
	piece := c.data[lo:hi]
	if !c.sorted[head] {
		sort.Slice(piece, func(i, j int) bool {
			if piece[i][1] != piece[j][1] {
				return piece[i][1] < piece[j][1]
			}
			return piece[i][2] < piece[j][2]
		})
		c.sorted[head] = true
	}
	for _, t := range piece {
		if !fn(t) {
			return
		}
	}
}

// CountHead returns the number of triples with the given head, cracking
// as a side effect.
func (c *Column) CountHead(head ID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crackAt(head+1) - c.crackAt(head)
}

// CheckInvariants verifies the cracker index against the physical data:
// bounds sorted by value with monotonic positions, and every element on
// the correct side of every bound. Tests call this after random
// workloads.
func (c *Column) CheckInvariants() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, b := range c.bounds {
		if i > 0 {
			prev := c.bounds[i-1]
			if prev.val >= b.val {
				return errf("bounds out of order: %d >= %d", prev.val, b.val)
			}
			if prev.pos > b.pos {
				return errf("bound positions not monotonic: %d > %d", prev.pos, b.pos)
			}
		}
		if b.pos < 0 || b.pos > len(c.data) {
			return errf("bound position %d out of range", b.pos)
		}
		for j := 0; j < b.pos; j++ {
			if c.data[j][0] >= b.val {
				return errf("element %d head %d >= bound %d but placed before pos %d", j, c.data[j][0], b.val, b.pos)
			}
		}
		for j := b.pos; j < len(c.data); j++ {
			if c.data[j][0] < b.val {
				return errf("element %d head %d < bound %d but placed after pos %d", j, c.data[j][0], b.val, b.pos)
			}
		}
	}
	return nil
}

func errf(format string, args ...any) error {
	return fmt.Errorf("cracking: "+format, args...)
}
