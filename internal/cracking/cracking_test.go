package cracking

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randomData(seed int64, n int, heads, tails ID) []Triple {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Triple, n)
	for i := range out {
		out[i] = Triple{
			ID(rng.Int63n(int64(heads)) + 1),
			ID(rng.Int63n(int64(tails)) + 1),
			ID(rng.Int63n(int64(tails)) + 1),
		}
	}
	return out
}

func TestScanReturnsExactlyMatchingHeads(t *testing.T) {
	data := randomData(1, 5000, 20, 40)
	want := make(map[ID]int)
	for _, tr := range data {
		want[tr[0]]++
	}
	col := NewColumn(append([]Triple(nil), data...))
	for head := ID(1); head <= 20; head++ {
		n := 0
		col.Scan(head, func(tr Triple) bool {
			if tr[0] != head {
				t.Fatalf("Scan(%d) produced head %d", head, tr[0])
			}
			n++
			return true
		})
		if n != want[head] {
			t.Fatalf("Scan(%d) visited %d, want %d", head, n, want[head])
		}
	}
	if err := col.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScanAbsentHead(t *testing.T) {
	col := NewColumn(randomData(2, 100, 5, 5))
	n := 0
	col.Scan(99, func(Triple) bool { n++; return true })
	if n != 0 {
		t.Fatalf("Scan of absent head visited %d", n)
	}
}

func TestScanEarlyStop(t *testing.T) {
	data := make([]Triple, 100)
	for i := range data {
		data[i] = Triple{1, ID(i), ID(i)}
	}
	col := NewColumn(data)
	n := 0
	col.Scan(1, func(Triple) bool { n++; return n < 4 })
	if n != 4 {
		t.Fatalf("visited %d, want 4", n)
	}
}

func TestCrackingConvergesToIndexLookups(t *testing.T) {
	col := NewColumn(randomData(3, 10000, 50, 30))
	// First pass over every head cracks the column.
	for head := ID(1); head <= 50; head++ {
		col.Scan(head, func(Triple) bool { return true })
	}
	after := col.Cracks()
	if after == 0 {
		t.Fatal("no cracks after first pass")
	}
	// Second pass must be pure lookups: no new cracks.
	for head := ID(1); head <= 50; head++ {
		col.Scan(head, func(Triple) bool { return true })
	}
	if col.Cracks() != after {
		t.Fatalf("second pass added cracks: %d -> %d", after, col.Cracks())
	}
	// 50 heads × 2 cracks each at most; shared boundaries reduce it.
	if pieces := col.Pieces(); pieces < 2 || pieces > 102 {
		t.Fatalf("Pieces = %d, want 2..102", pieces)
	}
}

func TestScanSorted(t *testing.T) {
	data := randomData(4, 3000, 10, 25)
	col := NewColumn(append([]Triple(nil), data...))
	for head := ID(1); head <= 10; head++ {
		var got []Triple
		col.ScanSorted(head, func(tr Triple) bool {
			got = append(got, tr)
			return true
		})
		if !sort.SliceIsSorted(got, func(i, j int) bool {
			if got[i][1] != got[j][1] {
				return got[i][1] < got[j][1]
			}
			return got[i][2] < got[j][2]
		}) {
			t.Fatalf("ScanSorted(%d) output not sorted", head)
		}
		// Content must match a reference filter of the original data.
		n := 0
		for _, tr := range data {
			if tr[0] == head {
				n++
			}
		}
		if len(got) != n {
			t.Fatalf("ScanSorted(%d) returned %d, want %d", head, len(got), n)
		}
	}
	if err := col.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScanSortedIsStableAcrossCalls(t *testing.T) {
	col := NewColumn(randomData(5, 2000, 8, 16))
	var first []Triple
	col.ScanSorted(3, func(tr Triple) bool { first = append(first, tr); return true })
	// Crack elsewhere in between.
	col.Scan(5, func(Triple) bool { return true })
	var second []Triple
	col.ScanSorted(3, func(tr Triple) bool { second = append(second, tr); return true })
	if len(first) != len(second) {
		t.Fatalf("lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("entry %d changed: %v vs %v", i, first[i], second[i])
		}
	}
}

func TestCountHead(t *testing.T) {
	data := randomData(6, 4000, 15, 20)
	want := make(map[ID]int)
	for _, tr := range data {
		want[tr[0]]++
	}
	col := NewColumn(data)
	for head := ID(1); head <= 15; head++ {
		if got := col.CountHead(head); got != want[head] {
			t.Fatalf("CountHead(%d) = %d, want %d", head, got, want[head])
		}
	}
}

func TestEmptyColumn(t *testing.T) {
	col := NewColumn(nil)
	n := 0
	col.Scan(1, func(Triple) bool { n++; return true })
	if n != 0 || col.Len() != 0 {
		t.Fatalf("empty column Scan visited %d, Len %d", n, col.Len())
	}
	if err := col.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPiecesGrowMonotonically(t *testing.T) {
	col := NewColumn(randomData(7, 1000, 30, 10))
	prev := col.Pieces()
	if prev != 1 {
		t.Fatalf("fresh column Pieces = %d, want 1", prev)
	}
	for head := ID(1); head <= 30; head += 3 {
		col.Scan(head, func(Triple) bool { return true })
		if p := col.Pieces(); p < prev {
			t.Fatalf("Pieces shrank: %d -> %d", prev, p)
		} else {
			prev = p
		}
	}
}

// TestQuickRandomWorkload property-tests that any interleaving of Scan,
// ScanSorted and CountHead preserves both content and the cracker-index
// invariants.
func TestQuickRandomWorkload(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := randomData(seed, 800, 12, 10)
		ref := make(map[ID]int)
		for _, tr := range data {
			ref[tr[0]]++
		}
		col := NewColumn(data)
		for op := 0; op < 60; op++ {
			head := ID(rng.Intn(14)) // includes absent heads 0 and 13
			switch rng.Intn(3) {
			case 0:
				n := 0
				col.Scan(head, func(tr Triple) bool {
					if tr[0] != head {
						return false
					}
					n++
					return true
				})
				if n != ref[head] {
					return false
				}
			case 1:
				n := 0
				col.ScanSorted(head, func(Triple) bool { n++; return true })
				if n != ref[head] {
					return false
				}
			default:
				if col.CountHead(head) != ref[head] {
					return false
				}
			}
		}
		return col.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
