package delta

import (
	"fmt"
	"os"
	"time"

	"hexastore/internal/core"
	"hexastore/internal/dictionary"
	"hexastore/internal/graph"
	"hexastore/internal/iofault"
)

// maybeCompactLocked starts a background compaction when the delta has
// outgrown the threshold. Caller holds writeMu.
func (o *Overlay) maybeCompactLocked(st *state) {
	threshold := o.opts.CompactThreshold
	if threshold < 0 || o.compacting || o.closed || o.diskMergeErr != nil {
		return
	}
	if st.deltaLen() < o.opts.threshold() {
		return
	}
	if st.mainCore == nil && o.diskMain == nil {
		return // no compactable main (baseline overlay): the delta just grows
	}
	o.compacting = true
	go o.backgroundCompact()
}

// backgroundCompact folds the delta into the main.
//
// Memory main: the rebuild runs offline — a snapshot of the current
// state is merged into a brand-new core.Store with the parallel bulk
// builder while readers AND writers proceed; writes landing meanwhile
// are recorded (pending) and replayed onto the rebuilt main under a
// brief writeMu hold. The old main is never mutated, so pinned snapshots
// stay valid forever.
//
// Disk main: the delta is merged into the six B+-trees in place, under
// writeMu for the whole merge — writers stall, readers do not (every
// read stream deduplicates, so a triple transiently present in both the
// trees and the delta is served exactly once). Ends with a store flush
// and, when a WAL is attached, checkpoint truncation.
func (o *Overlay) backgroundCompact() {
	t0 := time.Now()
	defer func() { deltaCompactSeconds.Observe(time.Since(t0).Seconds()) }()
	if o.diskMain != nil {
		o.writeMu.Lock()
		err := o.compactDiskLocked()
		if err == nil && o.wal != nil {
			err = o.wal.Truncate()
		}
		o.finishCompactLocked(err)
		o.writeMu.Unlock()
		return
	}

	o.writeMu.Lock()
	snap := o.cur.Load()
	o.pending = o.pending[:0]
	o.pendingActive = true
	o.writeMu.Unlock()

	newMain, err := o.rebuild(snap)

	o.writeMu.Lock()
	defer o.writeMu.Unlock()
	if err == nil {
		err = o.swapRebuiltLocked(newMain)
	}
	o.pendingActive = false
	o.pending = nil
	if err == nil && o.wal != nil && o.opts.SnapshotPath != "" && o.cur.Load().deltaLen() == 0 {
		// Bound the log: no writes raced the rebuild, so the rebuilt
		// main is the whole visible set — persist it and truncate. When
		// writes did race (pending delta non-empty), skip; the next
		// compaction or an explicit Checkpoint will truncate.
		if err = writeSnapshot(o.opts.FS, o.opts.SnapshotPath, o.cur.Load().mainCore); err == nil {
			err = o.wal.Truncate()
		}
	}
	o.finishCompactLocked(err)
}

// finishCompactLocked records the outcome and wakes checkpoint waiters.
// Caller holds writeMu.
func (o *Overlay) finishCompactLocked(err error) {
	if err == nil {
		o.compactions.Add(1)
		deltaCompactions.Inc()
	}
	o.lastCompactErr = err
	o.compacting = false
	o.compactDone.Broadcast()
}

// CompactErr returns the error of the most recent (background)
// compaction, nil when it succeeded. Surfaced so operators can detect a
// wedged merge; Checkpoint and Close run compaction synchronously and
// return errors directly.
func (o *Overlay) CompactErr() error {
	o.writeMu.Lock()
	defer o.writeMu.Unlock()
	return o.lastCompactErr
}

// rebuild merges a pinned state into a fresh in-memory Hexastore using
// the sort-once parallel bulk builder — the same machinery as initial
// loads, which is what makes compaction cost a bulk build, not
// visible-set × per-triple index maintenance.
func (o *Overlay) rebuild(snap *state) (*core.Store, error) {
	ts := make([][3]ID, 0, snap.visible)
	if err := snap.Match(None, None, None, func(s, p, oo ID) bool {
		ts = append(ts, [3]ID{s, p, oo})
		return true
	}); err != nil {
		return nil, err
	}
	b := core.NewBuilder(o.dict)
	b.SetCompression(!o.opts.Uncompressed)
	b.AddAll(ts)
	return b.BuildParallel(o.opts.workers()), nil
}

// swapRebuiltLocked publishes a rebuilt memory main, replaying the ops
// that landed while the rebuild ran offline. Caller holds writeMu.
func (o *Overlay) swapRebuiltLocked(newMain *core.Store) error {
	mainGraph := graph.Memory(newMain)
	base := &state{
		main:     mainGraph,
		mainCore: newMain,
		dict:     o.dict,
		visible:  newMain.Len(),
	}
	if ss, ok := graph.AsSortedSource(mainGraph); ok {
		base.sorted = ss
	}
	if vs, ok := graph.AsViewSource(mainGraph); ok {
		base.viewSrc = vs
	}
	ns := base
	if len(o.pending) > 0 {
		// The pending ops are already WAL-durable; re-derive their delta
		// against the rebuilt main.
		replayed, _, _, _, err := applyOps(base, o.pending)
		if err != nil {
			return err
		}
		if replayed != nil {
			ns = replayed
		}
	}
	// The published state is content-identical to the current one
	// (rebuilt snapshot + pending replay = snapshot state + pending
	// publishes), so the epoch token is preserved: cached results stay
	// valid across compaction.
	ns.epoch = o.cur.Load().epoch
	o.cur.Store(ns)
	return nil
}

// compactDiskLocked merges the delta into the disk main's B+-trees and
// flushes, then publishes the empty-delta state. Caller holds writeMu.
//
// Isolation protocol: before the first tree mutation, the merge
// publishes an undoRec for the delta on the current epoch node, so
// every state pinned before (or during) the merge reads the trees
// through the record and keeps its exact image — including the state
// whose delta is being merged, and any states writers create while a
// retried merge is pending. Only the post-merge state (fresh epoch,
// empty delta) reads the trees bare. Any error is sticky (see
// diskMergeErr): a partial merge leaves stray triples in the trees that
// only the published compensation hides, so completing a later merge —
// which would hand out uncompensated states — is refused.
func (o *Overlay) compactDiskLocked() error {
	if o.diskMergeErr != nil {
		return o.diskMergeErr
	}
	st := o.cur.Load()
	undo := st.undo
	if st.deltaLen() > 0 {
		// Make the dictionary durable BEFORE the first tree mutation:
		// once the merge starts, buffer-pool eviction may write tree
		// pages to disk at any moment, and a crash must never leave
		// persisted rows whose ids the dictionary sidecar cannot map —
		// WAL replay re-encodes terms in log order, which only matches
		// the live (concurrent-writer) assignment order for terms the
		// sidecar already pinned.
		if err := o.diskMain.FlushDictionary(); err != nil {
			o.diskMergeErr = fmt.Errorf("delta: disk merge dictionary flush: %w", err)
			return o.diskMergeErr
		}
		newTail := &treeUndo{}
		o.undoTail.rec.Store(&undoRec{adds: st.adds, dels: st.dels, next: newTail})
		o.undoTail = newTail
		undo = newTail
		for _, t := range st.adds[core.SPO] {
			if _, err := o.diskMain.Add(t[0], t[1], t[2]); err != nil {
				o.diskMergeErr = fmt.Errorf("delta: disk merge add: %w", err)
				return o.diskMergeErr
			}
		}
		for _, t := range st.dels[core.SPO] {
			if _, err := o.diskMain.Remove(t[0], t[1], t[2]); err != nil {
				o.diskMergeErr = fmt.Errorf("delta: disk merge remove: %w", err)
				return o.diskMergeErr
			}
		}
	}
	if err := o.diskMain.Flush(); err != nil {
		o.diskMergeErr = fmt.Errorf("delta: disk merge flush: %w", err)
		return o.diskMergeErr
	}
	ns := &state{
		main:     st.main,
		mainCore: st.mainCore,
		sorted:   st.sorted,
		viewSrc:  st.viewSrc,
		dict:     st.dict,
		undo:     undo,
		visible:  st.visible,
		epoch:    st.epoch, // content-identical merge: keep cached results valid
	}
	o.cur.Store(ns)
	return nil
}

// Compact synchronously folds the delta into the main (writers blocked
// for the duration, readers never). It does not touch the WAL; see
// Checkpoint for compaction + durable truncation.
func (o *Overlay) Compact() error {
	o.writeMu.Lock()
	defer o.writeMu.Unlock()
	for o.compacting {
		o.compactDone.Wait()
	}
	if o.closed {
		return fmt.Errorf("delta: overlay is closed")
	}
	return o.compactMainLocked()
}

// compactMainLocked merges the delta into the main store synchronously.
// Caller holds writeMu with no background compaction in flight.
func (o *Overlay) compactMainLocked() error {
	st := o.cur.Load()
	if st.deltaLen() == 0 {
		return nil
	}
	t0 := time.Now()
	defer func() { deltaCompactSeconds.Observe(time.Since(t0).Seconds()) }()
	if o.diskMain != nil {
		err := o.compactDiskLocked()
		if err == nil {
			o.compactions.Add(1)
			deltaCompactions.Inc()
		}
		return err
	}
	if st.mainCore == nil {
		return nil // baseline main: nothing sorted to merge into
	}
	newMain, err := o.rebuild(st)
	if err != nil {
		return err
	}
	if err := o.swapRebuiltLocked(newMain); err != nil {
		return err
	}
	o.compactions.Add(1)
	deltaCompactions.Inc()
	return nil
}

// Checkpoint makes the whole visible set durable in the main store and
// truncates the WAL: the delta is compacted away, then the disk main is
// flushed — or the memory main is written to Options.SnapshotPath
// (atomic tmp + rename) — and only after that durable point does the log
// truncate. Without a durable main destination (no snapshot path, or a
// baseline main) the WAL is synced and kept whole instead, so recovery
// still replays everything.
func (o *Overlay) Checkpoint() error {
	o.writeMu.Lock()
	defer o.writeMu.Unlock()
	for o.compacting {
		o.compactDone.Wait()
	}
	if o.closed {
		return fmt.Errorf("delta: overlay is closed")
	}
	return o.checkpointLocked()
}

// checkpointLocked is Checkpoint's body; caller holds writeMu with no
// background compaction in flight.
func (o *Overlay) checkpointLocked() error {
	if err := o.compactMainLocked(); err != nil {
		return err
	}
	st := o.cur.Load()
	switch {
	case o.diskMain != nil:
		// compactMainLocked flushed when it merged; an empty delta skips
		// the merge, so flush explicitly for the buffered-page case.
		if err := o.diskMain.Flush(); err != nil {
			return err
		}
	case st.mainCore != nil && o.opts.SnapshotPath != "" && st.deltaLen() == 0:
		if err := writeSnapshot(o.opts.FS, o.opts.SnapshotPath, st.mainCore); err != nil {
			return err
		}
	default:
		// No durable main to truncate against: keep the log whole.
		if o.wal != nil {
			return o.wal.Sync()
		}
		return nil
	}
	if o.wal != nil {
		return o.wal.Truncate()
	}
	return nil
}

// RestoreSnapshot loads a checkpoint snapshot written by this package's
// checkpoints (or any core.Store.Snapshot image). It returns ok=false
// with a nil error when no snapshot exists at path; any other failure
// surfaces, because treating an unreadable snapshot as absent would
// silently start an empty store — and the next checkpoint would then
// overwrite the good snapshot with it. Callers (the facade, hexserver)
// share this helper so the distinction lives in exactly one place.
func RestoreSnapshot(path string, compress bool) (*core.Store, bool, error) {
	return RestoreSnapshotShared(path, nil, compress)
}

// RestoreSnapshotShared is RestoreSnapshot against a shared dictionary
// (nil restores into a fresh one). The sharded tier restores each
// shard's per-shard snapshot into the one cluster dictionary; restores
// must run sequentially per shard so the append-only prefix property
// that makes shared re-encoding sound is preserved.
func RestoreSnapshotShared(path string, dict *dictionary.Dictionary, compress bool) (*core.Store, bool, error) {
	return RestoreSnapshotSharedFS(nil, path, dict, compress)
}

// RestoreSnapshotSharedFS is RestoreSnapshotShared with the file I/O
// routed through fsys (nil = the real filesystem).
func RestoreSnapshotSharedFS(fsys iofault.FS, path string, dict *dictionary.Dictionary, compress bool) (*core.Store, bool, error) {
	f, err := iofault.Open(iofault.Or(fsys), path)
	switch {
	case err == nil:
	case os.IsNotExist(err):
		return nil, false, nil
	default:
		return nil, false, err
	}
	defer f.Close()
	st, rerr := core.RestoreShared(f, dict, compress)
	if rerr != nil {
		return nil, false, fmt.Errorf("delta: restore snapshot %s: %w", path, rerr)
	}
	return st, true, nil
}

// writeSnapshot persists the store atomically: write to a temp file,
// fsync, rename over the destination. The rename is the commit point —
// a crash anywhere before it leaves the previous snapshot untouched,
// which the torture harness verifies by crashing at every step.
func writeSnapshot(fsys iofault.FS, path string, st *core.Store) error {
	fsys = iofault.Or(fsys)
	tmp := path + ".tmp"
	f, err := iofault.Create(fsys, tmp)
	if err != nil {
		return fmt.Errorf("delta: snapshot: %w", err)
	}
	if err := st.Snapshot(f); err != nil {
		f.Close()
		fsys.Remove(tmp) //nolint:errcheck // best-effort cleanup on the error path
		return fmt.Errorf("delta: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("delta: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("delta: snapshot close: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("delta: snapshot rename: %w", err)
	}
	return nil
}
