// Package delta implements the live-update subsystem's MVCC overlay: an
// immutable, read-optimized main store (the six sorted Hexastore
// indexes, in memory or on disk) plus a small sorted in-memory delta of
// adds and tombstones, exposed as one graph.Graph / graph.SortedSource.
//
// This is the read-optimized-main + write-delta design of the
// differential-indexing literature, applied to the paper's sextuple
// index: readers never take a lock against writers — every read pins an
// immutable version with one atomic pointer load, and writers publish a
// new version with one swap — while the six main indexes stay exactly as
// the bulk loader built them until background compaction folds the delta
// in (the in-memory main is rebuilt with core.Builder.BuildParallel; the
// disk main absorbs the delta into its B+-trees).
//
// Durability is delegated to an optional write-ahead log (package wal):
// a write batch is appended and group-committed before it becomes
// visible, and Open replays the log over the recovered main, so a crash
// between checkpoints loses nothing that Append reported durable.
//
// Snapshot isolation holds on every backend. The memory main is never
// mutated — compaction builds a replacement store — so pinned states
// are trivially stable. The disk main IS mutated in place by
// compaction, and stays isolated through undo compensation (treeUndo):
// before the first tree mutation, the merge publishes an immutable
// record of the delta being folded in; any state pinned before (or
// while) the merge reads the shared trees through the record — merged
// adds subtracted, merged deletes resurrected — recovering its exact
// pre-merge image, however many merges chain up while it is held. Only
// states created after a completed merge read the trees bare.
// Crash-safety of the disk merge itself is process-crash level: pages
// are CRC-checked, so torn OS-level writes are detected on reopen, not
// repaired; a merge that errors mid-way leaves the overlay correct but
// sticky-degraded (see Overlay.diskMergeErr).
package delta

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"hexastore/internal/core"
	"hexastore/internal/dictionary"
	"hexastore/internal/disk"
	"hexastore/internal/graph"
	"hexastore/internal/idlist"
	"hexastore/internal/iofault"
	"hexastore/internal/rdf"
	"hexastore/internal/wal"
)

// DefaultCompactThreshold is the delta size (adds + tombstones) that
// triggers background compaction when Options.CompactThreshold is 0.
const DefaultCompactThreshold = 8192

// Options configures an Overlay.
type Options struct {
	// WALPath, when non-empty, enables write-ahead logging: every write
	// batch is group-committed to this file before it becomes visible,
	// and Open replays the log. Empty disables durability.
	WALPath string

	// SnapshotPath, for an in-memory main, is where checkpoints persist
	// the compacted store (written atomically via rename) so the WAL can
	// be truncated. Ignored for disk mains, which flush in place.
	SnapshotPath string

	// CompactThreshold is the delta size (adds + tombstones) that
	// triggers background compaction; 0 means DefaultCompactThreshold,
	// negative disables automatic compaction.
	CompactThreshold int

	// Workers bounds the parallelism of compaction rebuilds
	// (core.Builder.BuildParallel); <= 0 means runtime.GOMAXPROCS(0).
	Workers int

	// Uncompressed makes memory-main compaction rebuild into the raw
	// index layout instead of the block-compressed default. The overlay
	// never mutates its main in place, so the compressed layout's
	// decompress-on-write cost is never paid here — compression plus
	// overlay is the intended live-update configuration.
	Uncompressed bool

	// FS routes the overlay's own file I/O — the WAL and checkpoint
	// snapshots — through a fault-injection layer; nil means the real
	// filesystem. The main store's I/O is configured where the main is
	// opened (disk.Options.FS), not here.
	FS iofault.FS
}

func (o Options) threshold() int {
	if o.CompactThreshold == 0 {
		return DefaultCompactThreshold
	}
	return o.CompactThreshold
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// idOp is one dictionary-encoded write operation.
type idOp struct {
	del bool
	t   [3]ID
}

// Overlay is the delta-overlay graph. Reads (Has, Match, Count, the
// SortedSource streams, Len) are lock-free: they pin the current state
// with an atomic load and are wait-free with respect to writers.
// Writes serialize on an internal mutex, append to the WAL, and publish
// a new immutable state. Overlay implements graph.Graph,
// graph.SortedSource, graph.Snapshotter, graph.BatchUpdater,
// graph.Flusher and io.Closer.
type Overlay struct {
	dict *dictionary.Dictionary
	opts Options
	wal  *wal.Log

	// diskMain is the disk store behind the overlay, when there is one;
	// compaction then merges the delta into its B+-trees in place.
	diskMain *disk.Store

	// undoTail is the current epoch node for disk mains: the promise the
	// next in-place merge will fill so states pinned before it can
	// compensate (see treeUndo). Guarded by writeMu for writes.
	undoTail *treeUndo

	// diskMergeErr is sticky: once an in-place merge errors mid-way the
	// trees may hold a partial delta, which only the undo compensation
	// keeps invisible — further merges (whose completion would drop the
	// compensation) are refused, reads stay exact, writes keep
	// accumulating in the delta, and Checkpoint/Close surface the error.
	// Guarded by writeMu.
	diskMergeErr error

	cur atomic.Pointer[state]

	// writeMu serializes writers, compaction's state swaps and
	// checkpoints. Readers never touch it.
	writeMu     sync.Mutex
	compactDone *sync.Cond // broadcast when compacting drops to false
	compacting  bool
	// pending records effective ops landed while a memory-main rebuild
	// runs offline; they are replayed onto the rebuilt main.
	pendingActive bool
	pending       []idOp
	closed        bool

	compactions    atomic.Int64
	lastCompactErr error // guarded by writeMu
}

// New builds an overlay over main without a WAL. Equivalent to Open with
// an empty Options.WALPath.
func New(main graph.Graph, opts Options) (*Overlay, error) {
	opts.WALPath = ""
	return Open(main, opts)
}

// Open builds an overlay over main and, when Options.WALPath is set,
// replays the log's surviving records into the delta — the
// crash-recovery path. The caller recovers main first (an empty or
// snapshot-restored memory store, or a reopened disk store); replay
// re-applies exactly the writes the WAL made durable, skipping those the
// main already holds, so recovery is idempotent across repeated crashes.
func Open(main graph.Graph, opts Options) (*Overlay, error) {
	o := &Overlay{dict: main.Dictionary(), opts: opts}
	o.compactDone = sync.NewCond(&o.writeMu)
	base := &state{main: main, dict: o.dict, visible: main.Len()}
	if st, ok := graph.Unwrap(main).(*core.Store); ok {
		base.mainCore = st
	}
	if ds, ok := graph.Unwrap(main).(*disk.Store); ok {
		o.diskMain = ds
		o.undoTail = &treeUndo{}
		base.undo = o.undoTail
	}
	if ss, ok := graph.AsSortedSource(main); ok {
		base.sorted = ss
	}
	if vs, ok := graph.AsViewSource(main); ok {
		base.viewSrc = vs
	}
	o.cur.Store(base)

	if opts.WALPath != "" {
		var ops []idOp
		l, err := wal.OpenFS(opts.FS, opts.WALPath, func(r wal.Record) error {
			op, ok, derr := o.decodeRecord(r)
			if derr != nil {
				return derr
			}
			if ok {
				ops = append(ops, op)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		o.wal = l
		switch {
		case len(ops) == 0:
		case o.diskMain != nil:
			// Disk main: replay straight into the B+-trees. disk.Add and
			// disk.Remove touch all six trees regardless of the SPO
			// verdict, so replay not only restores writes the crash lost
			// but also repairs trees a half-flushed crash left divergent
			// — a delta-side replay would consult the (possibly lying)
			// SPO index and skip exactly the ops that repair the others.
			// Nothing is flushed here: a repeat crash replays again, and
			// the next checkpoint truncates only after a durable flush.
			for _, op := range ops {
				var aerr error
				if op.del {
					_, aerr = o.diskMain.Remove(op.t[0], op.t[1], op.t[2])
				} else {
					_, aerr = o.diskMain.Add(op.t[0], op.t[1], op.t[2])
				}
				if aerr != nil {
					l.Close()
					return nil, fmt.Errorf("delta: WAL replay: %w", aerr)
				}
			}
			refreshed := *base
			refreshed.visible = o.diskMain.Len()
			refreshed.epoch = base.epoch + 1 // replay changed the trees
			o.cur.Store(&refreshed)
		default:
			if _, _, err := o.apply(ops, false); err != nil {
				l.Close()
				return nil, fmt.Errorf("delta: WAL replay: %w", err)
			}
		}
	}
	return o, nil
}

// decodeRecord maps a WAL record's term keys to dictionary ids. Add
// records encode (the terms must exist for the triple to exist); Remove
// records only look up — a term the dictionary has never seen cannot be
// part of a present triple, so the record is skipped.
func (o *Overlay) decodeRecord(r wal.Record) (idOp, bool, error) {
	var op idOp
	op.del = r.Op == wal.OpRemove
	for i, key := range []string{r.S, r.P, r.O} {
		term, err := rdf.TermFromKey(key)
		if err != nil {
			return op, false, fmt.Errorf("delta: WAL term: %w", err)
		}
		if op.del {
			id, ok := o.dict.Lookup(term)
			if !ok {
				return op, false, nil
			}
			op.t[i] = id
		} else {
			op.t[i] = o.dict.Encode(term)
		}
	}
	return op, true, nil
}

// Dictionary returns the shared term dictionary.
func (o *Overlay) Dictionary() *dictionary.Dictionary { return o.dict }

// Len returns the number of visible triples.
func (o *Overlay) Len() int { return o.cur.Load().visible }

// Snapshot pins the current version: a consistent, immutable, read-only
// view that stays valid across any number of subsequent writes. It
// implements graph.Snapshotter; pinning is one atomic load.
func (o *Overlay) Snapshot() graph.Graph { return o.cur.Load() }

// Epoch returns the current state's content-version token (see
// graph.Epocher). Result caches must pin Snapshot first and read the
// epoch from the pinned state, so a write landing between the two reads
// cannot tag a stale answer with a fresh token.
func (o *Overlay) Epoch() string { return o.cur.Load().Epoch() }

// Main returns the current main graph beneath the delta (for stats and
// introspection; mutating it directly is invalid).
func (o *Overlay) Main() graph.Graph { return o.cur.Load().main }

func (o *Overlay) Has(s, p, oo ID) (bool, error) { return o.cur.Load().Has(s, p, oo) }

func (o *Overlay) Match(s, p, oo ID, fn func(s, p, o ID) bool) error {
	return o.cur.Load().Match(s, p, oo, fn)
}

func (o *Overlay) Count(s, p, oo ID) (int, error) { return o.cur.Load().Count(s, p, oo) }

// AppendSortedList implements graph.SortedSource over the merged
// main+delta view.
func (o *Overlay) AppendSortedList(dst []ID, s, p, oo ID) ([]ID, error) {
	return o.cur.Load().AppendSortedList(dst, s, p, oo)
}

// SortedPairs implements graph.SortedSource over the merged main+delta
// view.
func (o *Overlay) SortedPairs(s, p, oo ID, fn func(a, b ID) bool) error {
	return o.cur.Load().SortedPairs(s, p, oo, fn)
}

// SortedListView implements graph.ViewSource over the merged
// main+delta view: zero-copy pass-through of the compressed main's
// blocks when the delta has nothing in range, a streaming merge
// otherwise.
func (o *Overlay) SortedListView(s, p, oo ID) (idlist.View, bool, error) {
	return o.cur.Load().SortedListView(s, p, oo)
}

// Add inserts the triple ⟨s,p,o⟩ (a one-op batch: WAL commit + state swap).
func (o *Overlay) Add(s, p, oo ID) (bool, error) {
	ins, _, err := o.apply([]idOp{{del: false, t: [3]ID{s, p, oo}}}, true)
	return ins > 0, err
}

// Remove deletes the triple ⟨s,p,o⟩ (a one-op batch).
func (o *Overlay) Remove(s, p, oo ID) (bool, error) {
	_, del, err := o.apply([]idOp{{del: true, t: [3]ID{s, p, oo}}}, true)
	return del > 0, err
}

// ApplyTriples applies a whole update batch with a single WAL group
// commit and a single state swap. It implements graph.BatchUpdater,
// which is how a multi-statement SPARQL UPDATE request becomes one
// atomic, one-fsync operation.
func (o *Overlay) ApplyTriples(ops []graph.TripleOp) (inserted, deleted int, err error) {
	idOps := make([]idOp, 0, len(ops))
	for _, op := range ops {
		var t [3]ID
		if op.Del {
			var ok bool
			if t, ok = o.lookupTriple(op.T); !ok {
				continue // an unknown term cannot be part of a present triple
			}
		} else {
			if !op.T.Valid() {
				continue
			}
			t[0], t[1], t[2] = o.dict.EncodeTriple(op.T)
		}
		idOps = append(idOps, idOp{del: op.Del, t: t})
	}
	return o.apply(idOps, true)
}

// lookupTriple resolves a triple's terms without growing the dictionary.
func (o *Overlay) lookupTriple(t rdf.Triple) ([3]ID, bool) {
	s, ok := o.dict.Lookup(t.Subject)
	if !ok {
		return [3]ID{}, false
	}
	p, ok := o.dict.Lookup(t.Predicate)
	if !ok {
		return [3]ID{}, false
	}
	oo, ok := o.dict.Lookup(t.Object)
	if !ok {
		return [3]ID{}, false
	}
	return [3]ID{s, p, oo}, true
}

// membership tracks one batch-touched triple's delta status: where it
// started (wasAdd/wasDel, from the base arrays) and where it is now.
type membership struct {
	wasAdd, wasDel bool
	inAdd, inDel   bool
}

// applyOps runs ops sequentially against base and returns the new state,
// the effective (state-changing) ops, and the insert/delete counts. A
// nil state means nothing changed. Pure with respect to base.
//
// Cost is O(ops·(log delta + main.Has) + delta): visibility is answered
// by binary search on the base arrays (plus a small map for triples the
// batch itself touched), and the six new orderings are produced by one
// linear merge of the base array with the sorted batch changes — no
// per-write set rebuild or re-sort, so a stream of single-triple writes
// stays linear in the delta instead of quadratic between compactions.
func applyOps(base *state, ops []idOp) (*state, []idOp, int, int, error) {
	touched := make(map[[3]ID]*membership, len(ops))
	get := func(t [3]ID) *membership {
		m := touched[t]
		if m == nil {
			m = &membership{
				wasAdd: runContains(base.adds[core.SPO], t),
				wasDel: runContains(base.dels[core.SPO], t),
			}
			m.inAdd, m.inDel = m.wasAdd, m.wasDel
			touched[t] = m
		}
		return m
	}

	var effective []idOp
	inserted, deleted := 0, 0
	for _, op := range ops {
		t := op.t
		if t[0] == None || t[1] == None || t[2] == None {
			continue
		}
		m := get(t)
		if op.del {
			switch {
			case m.inDel:
				continue // already invisible
			case m.inAdd:
				m.inAdd = false
			default:
				inMain, err := base.mainHas(t)
				if err != nil {
					return nil, nil, inserted, deleted, err
				}
				if !inMain {
					continue // never visible
				}
				m.inDel = true
			}
			deleted++
		} else {
			switch {
			case m.inDel:
				m.inDel = false // resurrect the main triple
			case m.inAdd:
				continue // already visible
			default:
				inMain, err := base.mainHas(t)
				if err != nil {
					return nil, nil, inserted, deleted, err
				}
				if inMain {
					continue // already visible through main
				}
				m.inAdd = true
			}
			inserted++
		}
		effective = append(effective, op)
	}
	if inserted == 0 && deleted == 0 {
		return nil, nil, 0, 0, nil
	}

	// Net changes of the batch, per target set.
	var addIns, addDel, delIns, delDel [][3]ID
	for t, m := range touched {
		if m.inAdd != m.wasAdd {
			if m.inAdd {
				addIns = append(addIns, t)
			} else {
				addDel = append(addDel, t)
			}
		}
		if m.inDel != m.wasDel {
			if m.inDel {
				delIns = append(delIns, t)
			} else {
				delDel = append(delDel, t)
			}
		}
	}
	ns := &state{
		main:     base.main,
		mainCore: base.mainCore,
		sorted:   base.sorted,
		viewSrc:  base.viewSrc,
		dict:     base.dict,
		undo:     base.undo,
		visible:  base.visible + inserted - deleted,
		epoch:    base.epoch + 1, // content changed: invalidate cached results
	}
	for _, ix := range core.AllIndexes {
		ns.adds[ix] = mergeApply(base.adds[ix], ix, addIns, addDel)
		ns.dels[ix] = mergeApply(base.dels[ix], ix, delIns, delDel)
	}
	return ns, effective, inserted, deleted, nil
}

// apply is the overlay write path: serialize on writeMu, compute the new
// state, make the effective ops durable (WAL group commit), then publish
// the state with one atomic swap — durability strictly before
// visibility. logWAL is false during replay, whose ops are already in
// the log.
func (o *Overlay) apply(ops []idOp, logWAL bool) (inserted, deleted int, err error) {
	if len(ops) == 0 {
		return 0, 0, nil
	}
	o.writeMu.Lock()
	defer o.writeMu.Unlock()
	if o.closed {
		return 0, 0, fmt.Errorf("delta: overlay is closed")
	}
	base := o.cur.Load()
	ns, effective, inserted, deleted, err := applyOps(base, ops)
	if err != nil || ns == nil {
		return 0, 0, err
	}
	if logWAL && o.wal != nil {
		recs, rerr := o.records(effective)
		if rerr != nil {
			return 0, 0, rerr
		}
		if werr := o.wal.Append(recs); werr != nil {
			return 0, 0, werr // not swapped: the failed batch never becomes visible
		}
	}
	o.cur.Store(ns)
	if o.pendingActive {
		o.pending = append(o.pending, effective...)
	}
	o.maybeCompactLocked(ns)
	return inserted, deleted, nil
}

// records renders effective ops as WAL records (term keys, not ids).
func (o *Overlay) records(ops []idOp) ([]wal.Record, error) {
	recs := make([]wal.Record, 0, len(ops))
	for _, op := range ops {
		var keys [3]string
		for i, id := range op.t {
			term, err := o.dict.Decode(id)
			if err != nil {
				return nil, fmt.Errorf("delta: WAL record: %w", err)
			}
			keys[i] = term.Key()
		}
		r := wal.Record{Op: wal.OpAdd, S: keys[0], P: keys[1], O: keys[2]}
		if op.del {
			r.Op = wal.OpRemove
		}
		recs = append(recs, r)
	}
	return recs, nil
}

// Flush makes everything already applied durable. With a WAL this is a
// log fsync (appends are already committed, so it is usually a no-op).
// Without one, a disk-backed overlay merges the delta into the trees
// and flushes — eager, but it preserves the disk backend's
// per-update-durability contract (DB.Update and the HTTP handlers call
// Flush after every mutation), costing roughly what the plain disk
// backend paid before the overlay existed while reads stay lock-free.
// A memory-backed overlay without a WAL has no durable target and
// Flush is a no-op.
func (o *Overlay) Flush() error {
	if o.wal != nil {
		return o.wal.Sync()
	}
	if o.diskMain != nil {
		if err := o.Compact(); err != nil {
			return err
		}
		return o.diskMain.Flush()
	}
	return nil
}

// Stats reports the overlay's live-update state.
type Stats struct {
	// Visible is the number of triples the overlay presents.
	Visible int `json:"visible"`
	// MainTriples is the size of the read-optimized main.
	MainTriples int `json:"mainTriples"`
	// DeltaAdds and DeltaDels are the delta's pending inserts and
	// tombstones.
	DeltaAdds int `json:"deltaAdds"`
	DeltaDels int `json:"deltaDels"`
	// CompactThreshold is the delta size that triggers compaction.
	CompactThreshold int `json:"compactThreshold"`
	// Compactions counts completed delta→main merges.
	Compactions int64 `json:"compactions"`
	// WALBytes is the current log size (0 without a WAL).
	WALBytes int64  `json:"walBytes"`
	WALPath  string `json:"walPath,omitempty"`
}

// Degraded returns the error that has put the overlay into a degraded
// state, or nil: a sticky WAL failure (fsyncgate — further appends are
// refused and writes fail), a sticky disk-merge failure (reads stay
// exact, compactions are refused), or the most recent background
// compaction error. The serving tier's readiness endpoint reports this
// and sheds writes while it is non-nil.
func (o *Overlay) Degraded() error {
	if o.wal != nil {
		if err := o.wal.Err(); err != nil {
			return err
		}
	}
	o.writeMu.Lock()
	defer o.writeMu.Unlock()
	if o.diskMergeErr != nil {
		return o.diskMergeErr
	}
	return o.lastCompactErr
}

// Stats returns a consistent snapshot of the overlay's counters.
func (o *Overlay) Stats() Stats {
	st := o.cur.Load()
	s := Stats{
		Visible:          st.visible,
		MainTriples:      st.main.Len(),
		DeltaAdds:        len(st.adds[core.SPO]),
		DeltaDels:        len(st.dels[core.SPO]),
		CompactThreshold: o.opts.threshold(),
		Compactions:      o.compactions.Load(),
	}
	if o.wal != nil {
		s.WALBytes = o.wal.Size()
		s.WALPath = o.wal.Path()
	}
	return s
}

// Close checkpoints (folding the delta into the main and truncating the
// WAL where a durable main exists), closes the WAL, and closes the main
// store if it is closable. The overlay must not be used afterwards.
func (o *Overlay) Close() error {
	o.writeMu.Lock()
	if o.closed {
		o.writeMu.Unlock()
		return nil
	}
	for o.compacting {
		o.compactDone.Wait()
	}
	err := o.checkpointLocked()
	o.closed = true
	o.writeMu.Unlock()

	if o.wal != nil {
		if cerr := o.wal.Close(); err == nil {
			err = cerr
		}
	}
	if c, ok := graph.Unwrap(o.Main()).(io.Closer); ok {
		// The disk main is closed by the overlay; checkpointLocked
		// already flushed it, so this releases the pagefile.
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ensure interface conformance
var (
	_ graph.Graph        = (*Overlay)(nil)
	_ graph.SortedSource = (*Overlay)(nil)
	_ graph.ViewSource   = (*Overlay)(nil)
	_ graph.Snapshotter  = (*Overlay)(nil)
	_ graph.BatchUpdater = (*Overlay)(nil)
	_ graph.Flusher      = (*Overlay)(nil)
	_ io.Closer          = (*Overlay)(nil)
	_ graph.Graph        = (*state)(nil)
	_ graph.SortedSource = (*state)(nil)
	_ graph.ViewSource   = (*state)(nil)
	_ graph.Snapshotter  = (*state)(nil)
)
