package delta_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"hexastore/internal/core"
	"hexastore/internal/delta"
	"hexastore/internal/dictionary"
	"hexastore/internal/disk"
	"hexastore/internal/graph"
	"hexastore/internal/rdf"
	"hexastore/internal/sparql"
	"hexastore/internal/triplestore"
)

type ID = dictionary.ID

const None = dictionary.None

// overlayUnder builds a delta overlay over each backend kind. The main
// starts empty; every write goes through the overlay.
func overlays(t *testing.T, threshold int) map[string]*delta.Overlay {
	t.Helper()
	ds, err := disk.Create(t.TempDir(), disk.Options{CacheSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]*delta.Overlay{}
	for name, g := range map[string]graph.Graph{
		"memory":   graph.Memory(core.New()),
		"disk":     graph.Disk(ds),
		"baseline": graph.Baseline(triplestore.New(nil)),
	} {
		ov, err := delta.New(g, delta.Options{CompactThreshold: threshold})
		if err != nil {
			t.Fatalf("%s: New: %v", name, err)
		}
		out[name] = ov
	}
	t.Cleanup(func() { ds.Close() })
	return out
}

func ex(local string) rdf.Term { return rdf.NewIRI("http://ex/" + local) }

// canonTriples renders every triple of g, decoded and sorted.
func canonTriples(t *testing.T, g graph.Graph) string {
	t.Helper()
	var lines []string
	if err := graph.DecodeMatch(g, None, None, None, func(tr rdf.Triple) bool {
		lines = append(lines, tr.Subject.Key()+" "+tr.Predicate.Key()+" "+tr.Object.Key())
		return true
	}); err != nil {
		t.Fatalf("DecodeMatch: %v", err)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func canonResult(res *sparql.Result) string {
	if res.IsAsk {
		return fmt.Sprintf("ask:%v", res.Answer)
	}
	vars := append([]string(nil), res.Vars...)
	sort.Strings(vars)
	lines := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		var sb strings.Builder
		for _, v := range vars {
			if term, ok := row[v]; ok {
				fmt.Fprintf(&sb, "%s=%s;", v, term)
			} else {
				fmt.Fprintf(&sb, "%s=<unbound>;", v)
			}
		}
		lines = append(lines, sb.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestOverlayDifferential drives an identical random mixed add/remove
// workload through a delta overlay (per backend kind) and through a
// plain in-memory reference store, comparing the full visible set, Len,
// Has, Count and the sorted streams at several checkpoints, both before
// and after compaction.
func TestOverlayDifferential(t *testing.T) {
	const (
		subjects   = 12
		predicates = 4
		objects    = 10
		steps      = 600
	)
	for name, ov := range overlays(t, -1) { // manual compaction only
		t.Run(name, func(t *testing.T) {
			ref := core.New()
			rng := rand.New(rand.NewSource(42))
			dict := ov.Dictionary()

			check := func(label string) {
				t.Helper()
				if got, want := canonTriples(t, ov), canonTriples(t, graph.Memory(ref)); got != want {
					t.Fatalf("%s: triple sets diverge\noverlay:\n%s\nreference:\n%s", label, got, want)
				}
				if ov.Len() != ref.Len() {
					t.Fatalf("%s: Len: overlay %d, reference %d", label, ov.Len(), ref.Len())
				}
			}

			for i := 0; i < steps; i++ {
				tr := rdf.T(
					ex(fmt.Sprintf("s%d", rng.Intn(subjects))),
					ex(fmt.Sprintf("p%d", rng.Intn(predicates))),
					ex(fmt.Sprintf("o%d", rng.Intn(objects))),
				)
				s, p, o := dict.EncodeTriple(tr)
				rs, rp, ro := ref.Dictionary().EncodeTriple(tr)
				if rng.Intn(3) == 0 {
					got, err := ov.Remove(s, p, o)
					if err != nil {
						t.Fatalf("Remove: %v", err)
					}
					if want := ref.Remove(rs, rp, ro); got != want {
						t.Fatalf("step %d: Remove changed=%v, reference %v", i, got, want)
					}
				} else {
					got, err := ov.Add(s, p, o)
					if err != nil {
						t.Fatalf("Add: %v", err)
					}
					if want := ref.Add(rs, rp, ro); got != want {
						t.Fatalf("step %d: Add changed=%v, reference %v", i, got, want)
					}
				}

				if i%97 == 0 {
					// Point probes: Has + Count on random patterns.
					ps := pick(rng, ID(0), ID(rng.Intn(subjects)+1))
					pp := pick(rng, ID(0), ID(0))
					ok, err := ov.Has(s, p, o)
					if err != nil {
						t.Fatal(err)
					}
					if want := ref.Has(s, p, o); ok != want {
						t.Fatalf("step %d: Has=%v, reference %v", i, ok, want)
					}
					n, err := ov.Count(ps, pp, None)
					if err != nil {
						t.Fatal(err)
					}
					if want := ref.Count(ps, pp, None); n != want {
						t.Fatalf("step %d: Count(%d,%d,·)=%d, reference %d", i, ps, pp, n, want)
					}
				}
			}
			check("after workload")
			checkSortedStreams(t, ov, ref)

			if name != "baseline" {
				if err := ov.Compact(); err != nil {
					t.Fatalf("Compact: %v", err)
				}
				if st := ov.Stats(); st.DeltaAdds+st.DeltaDels != 0 {
					t.Fatalf("delta not empty after Compact: %+v", st)
				}
				check("after compaction")
				checkSortedStreams(t, ov, ref)
			}
		})
	}
}

func pick(rng *rand.Rand, a, b ID) ID {
	if rng.Intn(2) == 0 {
		return a
	}
	return b
}

// checkSortedStreams compares the overlay's SortedSource streams against
// the reference store's for every bound combination that occurs.
func checkSortedStreams(t *testing.T, ov *delta.Overlay, ref *core.Store) {
	t.Helper()
	refG := graph.Memory(ref)
	refSS, _ := graph.AsSortedSource(refG)

	seen := map[[3]ID]struct{}{}
	if err := refG.Match(None, None, None, func(s, p, o ID) bool {
		seen[[3]ID{s, p, o}] = struct{}{}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for tr := range seen {
		s, p, o := tr[0], tr[1], tr[2]
		for _, pat := range [][3]ID{{s, p, None}, {s, None, o}, {None, p, o}} {
			got, err := ov.AppendSortedList(nil, pat[0], pat[1], pat[2])
			if err != nil {
				t.Fatalf("AppendSortedList(%v): %v", pat, err)
			}
			want, err := refSS.AppendSortedList(nil, pat[0], pat[1], pat[2])
			if err != nil {
				t.Fatal(err)
			}
			if !equalIDs(got, want) {
				t.Fatalf("AppendSortedList(%v): got %v, want %v", pat, got, want)
			}
		}
		for _, pat := range [][3]ID{{s, None, None}, {None, p, None}, {None, None, o}} {
			var got, want [][2]ID
			if err := ov.SortedPairs(pat[0], pat[1], pat[2], func(a, b ID) bool {
				got = append(got, [2]ID{a, b})
				return true
			}); err != nil {
				t.Fatalf("SortedPairs(%v): %v", pat, err)
			}
			if err := refSS.SortedPairs(pat[0], pat[1], pat[2], func(a, b ID) bool {
				want = append(want, [2]ID{a, b})
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("SortedPairs(%v): %d pairs, want %d", pat, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("SortedPairs(%v)[%d]: got %v, want %v", pat, i, got[i], want[i])
				}
			}
		}
	}
}

func equalIDs(a, b []ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestOverlayQueryEquivalence checks the acceptance-criteria invariant:
// SPARQL results over the overlay are identical to the same query over a
// store freshly bulk-loaded with the overlay's visible set — before and
// after compaction.
func TestOverlayQueryEquivalence(t *testing.T) {
	queries := []string{
		`SELECT ?s ?o WHERE { ?s <http://ex/p0> ?o }`,
		`SELECT ?a ?c WHERE { ?a <http://ex/p0> ?b . ?b <http://ex/p1> ?c }`,
		`SELECT DISTINCT ?s WHERE { ?s ?p <http://ex/o1> }`,
		`SELECT ?s (COUNT(?o) AS ?n) WHERE { ?s <http://ex/p0> ?o } GROUP BY ?s`,
		`ASK { <http://ex/s1> <http://ex/p0> ?x }`,
	}
	for name, ov := range overlays(t, -1) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			dict := ov.Dictionary()
			for i := 0; i < 400; i++ {
				tr := rdf.T(
					ex(fmt.Sprintf("s%d", rng.Intn(10))),
					ex(fmt.Sprintf("p%d", rng.Intn(3))),
					ex(fmt.Sprintf("o%d", rng.Intn(8))),
				)
				s, p, o := dict.EncodeTriple(tr)
				if rng.Intn(4) == 0 {
					if _, err := ov.Remove(s, p, o); err != nil {
						t.Fatal(err)
					}
				} else if _, err := ov.Add(s, p, o); err != nil {
					t.Fatal(err)
				}
			}

			fresh := freshBulkLoad(t, ov)
			runAll := func(label string) {
				t.Helper()
				for _, q := range queries {
					got, err := sparql.Exec(ov, q)
					if err != nil {
						t.Fatalf("%s: overlay: %v", label, err)
					}
					want, err := sparql.Exec(graph.Memory(fresh), q)
					if err != nil {
						t.Fatalf("%s: fresh: %v", label, err)
					}
					if canonResult(got) != canonResult(want) {
						t.Fatalf("%s: %s\noverlay:\n%s\nfresh:\n%s", label, q, canonResult(got), canonResult(want))
					}
				}
			}
			runAll("pre-compaction")
			if name != "baseline" {
				if err := ov.Compact(); err != nil {
					t.Fatal(err)
				}
				runAll("post-compaction")
			}
		})
	}
}

// freshBulkLoad bulk-loads the overlay's visible set into a new store.
func freshBulkLoad(t *testing.T, g graph.Graph) *core.Store {
	t.Helper()
	b := core.NewBuilder(nil)
	if err := graph.DecodeMatch(g, None, None, None, func(tr rdf.Triple) bool {
		b.AddTriple(tr)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return b.BuildParallel(2)
}

// TestAutoCompaction verifies the background trigger: once the delta
// outgrows the threshold, a compaction folds it into the main without
// changing the visible set.
func TestAutoCompaction(t *testing.T) {
	ov, err := delta.New(graph.Memory(core.New()), delta.Options{CompactThreshold: 64})
	if err != nil {
		t.Fatal(err)
	}
	dict := ov.Dictionary()
	for i := 0; i < 500; i++ {
		tr := rdf.T(ex(fmt.Sprintf("s%d", i)), ex("p"), ex(fmt.Sprintf("o%d", i)))
		s, p, o := dict.EncodeTriple(tr)
		if _, err := ov.Add(s, p, o); err != nil {
			t.Fatal(err)
		}
	}
	// Compact() waits for any in-flight background pass, then drains the
	// remainder synchronously.
	if err := ov.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := ov.CompactErr(); err != nil {
		t.Fatalf("background compaction failed: %v", err)
	}
	st := ov.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction ran: %+v", st)
	}
	if st.DeltaAdds+st.DeltaDels != 0 {
		t.Fatalf("delta not drained: %+v", st)
	}
	if st.Visible != 500 || st.MainTriples != 500 {
		t.Fatalf("visible/main = %d/%d, want 500/500", st.Visible, st.MainTriples)
	}
}

// TestSnapshotPinningDisk: a snapshot pinned on a disk-backed overlay
// must keep serving its exact state across writes and SEVERAL in-place
// tree merges — the undo-compensation path, hit deterministically.
func TestSnapshotPinningDisk(t *testing.T) {
	ds, err := disk.Create(t.TempDir(), disk.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	ov, err := delta.New(graph.Disk(ds), delta.Options{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	dict := ov.Dictionary()
	enc := func(i int) (ID, ID, ID) {
		return dict.Encode(ex(fmt.Sprintf("s%d", i))), dict.Encode(ex("p")), dict.Encode(ex("o"))
	}
	for i := 0; i < 10; i++ {
		s, p, o := enc(i)
		if _, err := ov.Add(s, p, o); err != nil {
			t.Fatal(err)
		}
	}
	snap := ov.Snapshot()
	before := canonTriples(t, snap)

	// Merge round 1: fold the 10 adds into the trees, then delete some
	// of them and add others.
	if err := ov.Compact(); err != nil {
		t.Fatal(err)
	}
	s0, p0, o0 := enc(0)
	if _, err := ov.Remove(s0, p0, o0); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 15; i++ {
		s, p, o := enc(i)
		if _, err := ov.Add(s, p, o); err != nil {
			t.Fatal(err)
		}
	}
	if got := canonTriples(t, snap); got != before {
		t.Fatalf("snapshot drifted after first merge:\n%s\nwant:\n%s", got, before)
	}
	// Merge round 2: fold the delete + new adds in too. The pinned
	// snapshot now compensates through a chain of two undo records.
	if err := ov.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := canonTriples(t, snap); got != before {
		t.Fatalf("snapshot drifted after second merge:\n%s\nwant:\n%s", got, before)
	}
	if snap.Len() != 10 {
		t.Fatalf("snapshot Len=%d, want 10", snap.Len())
	}
	if ok, err := snap.Has(s0, p0, o0); err != nil || !ok {
		t.Fatalf("snapshot lost the merged-then-deleted triple (ok=%v err=%v)", ok, err)
	}
	// Sorted streams must compensate too, not just Has/Match.
	list, err := snap.(interface {
		AppendSortedList([]ID, ID, ID, ID) ([]ID, error)
	}).AppendSortedList(nil, None, p0, o0)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 10 {
		t.Fatalf("snapshot sorted subject list has %d entries, want 10 (got %v)", len(list), list)
	}
	// And the live overlay sees the post-merge truth.
	if ov.Len() != 14 {
		t.Fatalf("overlay Len=%d, want 14", ov.Len())
	}
	if ok, _ := ov.Has(s0, p0, o0); ok {
		t.Fatal("overlay resurrected a deleted triple after merge")
	}
}

// TestSnapshotPinning: a pinned snapshot must keep serving the exact
// state it was taken at, across writes and compaction.
func TestSnapshotPinning(t *testing.T) {
	ov, err := delta.New(graph.Memory(core.New()), delta.Options{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	dict := ov.Dictionary()
	enc := func(i int) (ID, ID, ID) {
		return dict.Encode(ex(fmt.Sprintf("s%d", i))), dict.Encode(ex("p")), dict.Encode(ex("o"))
	}
	for i := 0; i < 10; i++ {
		s, p, o := enc(i)
		ov.Add(s, p, o)
	}
	snap := ov.Snapshot()
	before := canonTriples(t, snap)

	for i := 10; i < 20; i++ {
		s, p, o := enc(i)
		ov.Add(s, p, o)
	}
	s0, p0, o0 := enc(0)
	if _, err := ov.Remove(s0, p0, o0); err != nil {
		t.Fatal(err)
	}
	if err := ov.Compact(); err != nil {
		t.Fatal(err)
	}

	if got := canonTriples(t, snap); got != before {
		t.Fatalf("pinned snapshot changed:\nbefore:\n%s\nafter:\n%s", before, got)
	}
	if snap.Len() != 10 {
		t.Fatalf("snapshot Len=%d, want 10", snap.Len())
	}
	if ov.Len() != 19 {
		t.Fatalf("overlay Len=%d, want 19", ov.Len())
	}
	if _, err := snap.Add(s0, p0, o0); err == nil {
		t.Fatal("snapshot accepted a mutation")
	}
}

// TestBatchAtomicCounts: ApplyTriples applies a mixed batch in order
// with correct effect counts (including add-then-remove of the same
// triple inside one batch).
func TestBatchAtomicCounts(t *testing.T) {
	ov, err := delta.New(graph.Memory(core.New()), delta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := rdf.T(ex("a"), ex("p"), ex("x"))
	b := rdf.T(ex("b"), ex("p"), ex("x"))
	ins, del, err := ov.ApplyTriples([]graph.TripleOp{
		{T: a}, {T: a}, // duplicate insert counts once
		{T: b},
		{Del: true, T: b}, // delete inside the same batch
		{Del: true, T: rdf.T(ex("c"), ex("p"), ex("x"))}, // never present
	})
	if err != nil {
		t.Fatal(err)
	}
	if ins != 2 || del != 1 {
		t.Fatalf("ins/del = %d/%d, want 2/1", ins, del)
	}
	if ov.Len() != 1 {
		t.Fatalf("Len=%d, want 1", ov.Len())
	}
	ok, err := graph.HasTriple(ov, a)
	if err != nil || !ok {
		t.Fatalf("a missing after batch (ok=%v err=%v)", ok, err)
	}
	ok, _ = graph.HasTriple(ov, b)
	if ok {
		t.Fatal("b visible after delete-in-batch")
	}
}

// TestDiskOverlayPersistsAcrossCheckpoint: updates through an overlay
// over a disk main survive Checkpoint+Close+reopen without any WAL —
// checkpoint merges the delta into the B+-trees.
func TestDiskOverlayPersistsAcrossCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ds, err := disk.Create(dir, disk.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ov, err := delta.New(graph.Disk(ds), delta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, _, err := ov.ApplyTriples([]graph.TripleOp{
			{T: rdf.T(ex(fmt.Sprintf("s%d", i)), ex("p"), ex("o"))},
		}); err != nil {
			t.Fatal(err)
		}
	}
	want := canonTriples(t, ov)
	if err := ov.Close(); err != nil {
		t.Fatal(err)
	}

	ds2, err := disk.Open(dir, disk.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	if got := canonTriples(t, graph.Disk(ds2)); got != want {
		t.Fatalf("disk store after reopen:\n%s\nwant:\n%s", got, want)
	}
}
