package delta_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"hexastore/internal/core"
	"hexastore/internal/delta"
	"hexastore/internal/disk"
	"hexastore/internal/graph"
	"hexastore/internal/sparql"
)

// TestReaderWriterIsolation runs concurrent SPARQL SELECTs against a
// stream of paired INSERT DATA / DELETE DATA updates and asserts that
// every query observes a consistent snapshot. The invariant: each update
// batch inserts (or deletes) BOTH ⟨member_i, in, club⟩ and
// ⟨member_i, badge, club⟩ atomically, so any single query must see
// exactly as many `in` edges as `badge` edges — a query that straddled a
// half-applied update, or whose two pattern fetches hit different store
// versions, would count a mismatch. Run with -race this also proves the
// lock-free read path races nothing.
func TestReaderWriterIsolation(t *testing.T) {
	ds, err := disk.Create(t.TempDir(), disk.Options{CacheSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	backends := map[string]graph.Graph{
		"memory": graph.Memory(core.New()),
		"disk":   graph.Disk(ds),
	}
	for name, main := range backends {
		t.Run(name, func(t *testing.T) {
			// A small threshold keeps background compactions happening
			// mid-flight, so isolation is tested across main swaps (and,
			// on disk, across in-place merges) too.
			ov, err := delta.New(main, delta.Options{CompactThreshold: 48})
			if err != nil {
				t.Fatal(err)
			}

			const (
				writers   = 2
				readers   = 4
				batches   = 150
				queriesPM = 60
			)
			query := `SELECT ?m ?c WHERE { ?m <http://ex/in> ?c . ?m <http://ex/badge> ?c }`
			countQ := func(pred string) string {
				return fmt.Sprintf(`SELECT ?m ?c WHERE { ?m <http://ex/%s> ?c }`, pred)
			}

			var stop atomic.Bool
			var wg sync.WaitGroup
			errs := make(chan error, writers+readers)

			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for b := 0; b < batches; b++ {
						m := fmt.Sprintf("m%d_%d", w, b)
						ins := fmt.Sprintf(
							`INSERT DATA { <http://ex/%s> <http://ex/in> <http://ex/club> . <http://ex/%s> <http://ex/badge> <http://ex/club> }`, m, m)
						if _, err := sparql.ExecUpdate(ov, ins); err != nil {
							errs <- fmt.Errorf("writer %d insert: %w", w, err)
							return
						}
						if b%3 == 2 {
							del := fmt.Sprintf(
								`DELETE DATA { <http://ex/%s> <http://ex/in> <http://ex/club> . <http://ex/%s> <http://ex/badge> <http://ex/club> }`, m, m)
							if _, err := sparql.ExecUpdate(ov, del); err != nil {
								errs <- fmt.Errorf("writer %d delete: %w", w, err)
								return
							}
						}
					}
				}(w)
			}

			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for q := 0; q < queriesPM && !stop.Load(); q++ {
						// The join query evaluates both patterns inside
						// one pinned snapshot: every member it returns
						// must carry both edges.
						res, err := sparql.Exec(ov, query)
						if err != nil {
							errs <- fmt.Errorf("reader %d: %w", r, err)
							return
						}
						// Cross-pattern invariant on one snapshot: equal
						// numbers of `in` and `badge` edges. Pin a
						// snapshot explicitly and count both ways.
						snap := graph.Snapshot(ov)
						inRes, err := sparql.Exec(snap, countQ("in"))
						if err != nil {
							errs <- err
							return
						}
						badgeRes, err := sparql.Exec(snap, countQ("badge"))
						if err != nil {
							errs <- err
							return
						}
						if len(inRes.Rows) != len(badgeRes.Rows) {
							errs <- fmt.Errorf("reader %d: snapshot saw %d `in` edges but %d `badge` edges",
								r, len(inRes.Rows), len(badgeRes.Rows))
							return
						}
						// And the join view must agree with the count.
						if len(res.Rows) > len(inRes.Rows)+2*writers {
							errs <- fmt.Errorf("reader %d: join rows %d exceed plausible members %d",
								r, len(res.Rows), len(inRes.Rows))
							return
						}
					}
				}(r)
			}

			wg.Wait()
			stop.Store(true)
			close(errs)
			for err := range errs {
				t.Error(err)
			}

			// Quiesce and verify the final state: writers inserted
			// writers×batches members and deleted every b%3==2 one.
			if err := ov.Compact(); err != nil {
				t.Fatal(err)
			}
			if err := ov.CompactErr(); err != nil {
				t.Fatal(err)
			}
			res, err := sparql.Exec(ov, query)
			if err != nil {
				t.Fatal(err)
			}
			deleted := 0
			for b := 0; b < batches; b++ {
				if b%3 == 2 {
					deleted++
				}
			}
			want := writers * (batches - deleted)
			if len(res.Rows) != want {
				t.Fatalf("final join rows = %d, want %d", len(res.Rows), want)
			}
		})
	}
}
