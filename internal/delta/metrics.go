package delta

import "hexastore/internal/obs"

// Process-wide compaction metrics on the default registry; every
// overlay (one per server, or one per shard) feeds the same families.
// The per-overlay Stats() counter stays the source of truth for /stats.
var (
	deltaCompactions = obs.Default.Counter(
		"hex_delta_compactions_total",
		"Delta-overlay compactions completed (delta folded into main).")
	deltaCompactSeconds = obs.Default.Histogram(
		"hex_delta_compact_seconds",
		"Delta-overlay compaction duration in seconds (failures included).",
		obs.LatencyBuckets)
)
