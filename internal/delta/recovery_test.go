package delta_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"hexastore/internal/core"
	"hexastore/internal/delta"
	"hexastore/internal/disk"
	"hexastore/internal/graph"
	"hexastore/internal/rdf"
)

// applyN drives n deterministic updates (inserts with periodic deletes)
// through the overlay and returns the canonical visible set.
func applyN(t *testing.T, ov *delta.Overlay, n int) string {
	t.Helper()
	for i := 0; i < n; i++ {
		tr := rdf.T(ex(fmt.Sprintf("s%d", i%17)), ex(fmt.Sprintf("p%d", i%3)), ex(fmt.Sprintf("o%d", i)))
		if _, _, err := ov.ApplyTriples([]graph.TripleOp{{T: tr}}); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		if i%5 == 4 {
			// Delete an earlier triple, so the log holds tombstones too.
			prev := rdf.T(ex(fmt.Sprintf("s%d", (i-2)%17)), ex(fmt.Sprintf("p%d", (i-2)%3)), ex(fmt.Sprintf("o%d", i-2)))
			if _, _, err := ov.ApplyTriples([]graph.TripleOp{{Del: true, T: prev}}); err != nil {
				t.Fatalf("delete %d: %v", i, err)
			}
		}
	}
	return canonTriples(t, ov)
}

// TestCrashRecoveryMemory writes N updates through a WAL-backed memory
// overlay, drops the store WITHOUT Close (the crash), reopens, and
// asserts replay restores the exact triple set. Repeats the crash after
// a checkpoint, so recovery covers the snapshot+log composition.
func TestCrashRecoveryMemory(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "wal.log")
	open := func() *delta.Overlay {
		t.Helper()
		main := core.New()
		if f, err := os.Open(walPath + ".snapshot"); err == nil {
			restored, rerr := core.Restore(f)
			f.Close()
			if rerr != nil {
				t.Fatalf("restore snapshot: %v", rerr)
			}
			main = restored
		}
		ov, err := delta.Open(graph.Memory(main), delta.Options{
			WALPath:      walPath,
			SnapshotPath: walPath + ".snapshot",
			// Disable auto compaction so no background checkpoint races
			// the "crash".
			CompactThreshold: -1,
		})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		return ov
	}

	ov := open()
	want := applyN(t, ov, 120)
	// Crash: the overlay and its main simply go out of scope. No Close,
	// no Flush, no Checkpoint.
	ov = nil //nolint:ineffassign

	re := open()
	if got := canonTriples(t, re); got != want {
		t.Fatalf("after crash recovery:\n%s\nwant:\n%s", got, want)
	}

	// Checkpoint (snapshot + WAL truncate), write more, crash again:
	// recovery must compose snapshot restore + replay of the fresh tail.
	if err := re.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if st := re.Stats(); st.WALBytes != 8 {
		t.Fatalf("WAL not truncated by checkpoint: %+v", st)
	}
	tr := rdf.T(ex("post"), ex("checkpoint"), ex("triple"))
	if _, _, err := re.ApplyTriples([]graph.TripleOp{{T: tr}}); err != nil {
		t.Fatal(err)
	}
	want2 := canonTriples(t, re)
	re = nil //nolint:ineffassign

	re2 := open()
	defer re2.Close()
	if got := canonTriples(t, re2); got != want2 {
		t.Fatalf("after second crash:\n%s\nwant:\n%s", got, want2)
	}
	ok, err := graph.HasTriple(re2, tr)
	if err != nil || !ok {
		t.Fatalf("post-checkpoint triple lost (ok=%v err=%v)", ok, err)
	}
}

// TestCrashRecoveryDisk is the same kill-without-Close scenario over the
// disk backend: the B+-trees never saw the writes (they live in the
// delta), so recovery is entirely WAL replay over the reopened store.
func TestCrashRecoveryDisk(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "wal.log")

	ds, err := disk.Create(filepath.Join(dir, "store"), disk.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ov, err := delta.Open(graph.Disk(ds), delta.Options{WALPath: walPath, CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	want := applyN(t, ov, 120)
	if n := ds.Len(); n != 0 {
		t.Fatalf("disk main absorbed %d triples before any compaction", n)
	}
	// Crash: drop both without Close. The pagefile holds only the empty
	// store (synced at Create); everything else is in the WAL.
	ov, ds = nil, nil //nolint:ineffassign

	ds2, err := disk.Open(filepath.Join(dir, "store"), disk.Options{})
	if err != nil {
		t.Fatalf("reopen disk store: %v", err)
	}
	re, err := delta.Open(graph.Disk(ds2), delta.Options{WALPath: walPath, CompactThreshold: -1})
	if err != nil {
		t.Fatalf("reopen overlay: %v", err)
	}
	if got := canonTriples(t, re); got != want {
		t.Fatalf("after crash recovery:\n%s\nwant:\n%s", got, want)
	}

	// Checkpoint merges into the trees and truncates; a crash right
	// after must recover from the trees alone.
	if err := re.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := re.Stats(); st.WALBytes != 8 || st.DeltaAdds+st.DeltaDels != 0 {
		t.Fatalf("checkpoint left delta/WAL: %+v", st)
	}
	re = nil        //nolint:ineffassign
	_ = ds2.Close() // release the pagefile so the next open sees flushed pages

	ds3, err := disk.Open(filepath.Join(dir, "store"), disk.Options{})
	if err != nil {
		t.Fatal(err)
	}
	re2, err := delta.Open(graph.Disk(ds3), delta.Options{WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if got := canonTriples(t, re2); got != want {
		t.Fatalf("after checkpointed recovery:\n%s\nwant:\n%s", got, want)
	}
}

// TestCrashRecoveryTornWAL corrupts the WAL tail (a half-written last
// record — the torn-write crash) and asserts recovery keeps every record
// before the tear, on both backends.
func TestCrashRecoveryTornWAL(t *testing.T) {
	for _, backend := range []string{"memory", "disk"} {
		t.Run(backend, func(t *testing.T) {
			dir := t.TempDir()
			walPath := filepath.Join(dir, "wal.log")
			newMain := func() graph.Graph {
				if backend == "memory" {
					return graph.Memory(core.New())
				}
				sub := filepath.Join(dir, "store")
				var (
					ds  *disk.Store
					err error
				)
				if disk.Exists(sub) {
					ds, err = disk.Open(sub, disk.Options{})
				} else {
					ds, err = disk.Create(sub, disk.Options{})
				}
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { ds.Close() })
				return graph.Disk(ds)
			}

			ov, err := delta.Open(newMain(), delta.Options{WALPath: walPath, CompactThreshold: -1})
			if err != nil {
				t.Fatal(err)
			}
			applyN(t, ov, 40)
			// The visible set minus the final record: recompute what
			// recovery should yield by replaying all-but-the-tail below.
			fi, err := os.Stat(walPath)
			if err != nil {
				t.Fatal(err)
			}
			// Tear the last record: chop 3 bytes off the file.
			if err := os.Truncate(walPath, fi.Size()-3); err != nil {
				t.Fatal(err)
			}
			ov = nil //nolint:ineffassign

			re, err := delta.Open(newMain(), delta.Options{WALPath: walPath, CompactThreshold: -1})
			if err != nil {
				t.Fatalf("reopen with torn WAL: %v", err)
			}
			got := canonTriples(t, re)

			// Reference: an overlay fed the same updates minus the last
			// one (the torn record was the final delete-free insert or
			// delete; recovery must agree with a clean replay of the
			// surviving prefix). Easiest check: reopen again — recovery
			// must be idempotent and stable.
			re2, err := delta.Open(graph.Memory(core.New()), delta.Options{WALPath: walPath, CompactThreshold: -1})
			if err != nil {
				t.Fatal(err)
			}
			if got2 := canonTriples(t, re2); backend == "memory" && got2 != got {
				t.Fatalf("recovery not stable across reopens:\n%s\nvs:\n%s", got, got2)
			}
			// The torn record is applyN's final operation — the i=39
			// delete of the i=37 triple ⟨s3,p1,o37⟩. Losing it means the
			// triple is still visible after recovery (the delete never
			// became durable), unlike after a clean replay.
			ok, err := graph.HasTriple(re, rdf.T(ex("s3"), ex("p1"), ex("o37")))
			if err != nil || !ok {
				t.Fatalf("triple of the torn delete should be visible (ok=%v err=%v)", ok, err)
			}
			// The record just before the tear — the i=39 insert — must
			// have survived.
			ok, err = graph.HasTriple(re, rdf.T(ex("s5"), ex("p0"), ex("o39")))
			if err != nil || !ok {
				t.Fatalf("record before the tear lost (ok=%v err=%v)", ok, err)
			}
		})
	}
}
