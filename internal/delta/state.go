package delta

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync/atomic"

	"hexastore/internal/core"
	"hexastore/internal/dictionary"
	"hexastore/internal/graph"
	"hexastore/internal/idlist"
)

// ID is a dictionary-encoded resource identifier.
type ID = dictionary.ID

// None is the wildcard / unbound marker in pattern lookups.
const None = dictionary.None

// ErrReadOnly is returned by mutation calls on a pinned snapshot.
var ErrReadOnly = errors.New("delta: snapshot is read-only")

// permOf maps each of the six orderings to the (s,p,o) positions of its
// key elements, mirroring the index layouts of the core and disk stores.
var permOf = [6][3]int{
	core.SPO: {0, 1, 2},
	core.SOP: {0, 2, 1},
	core.PSO: {1, 0, 2},
	core.POS: {1, 2, 0},
	core.OSP: {2, 0, 1},
	core.OPS: {2, 1, 0},
}

// permute reorders a canonical (s,p,o) triple into ordering ix.
func permute(ix core.Index, t [3]ID) [3]ID {
	p := permOf[ix]
	return [3]ID{t[p[0]], t[p[1]], t[p[2]]}
}

// unpermute recovers the canonical (s,p,o) triple from a row of ordering ix.
func unpermute(ix core.Index, k [3]ID) [3]ID {
	p := permOf[ix]
	var t [3]ID
	t[p[0]], t[p[1]], t[p[2]] = k[0], k[1], k[2]
	return t
}

// cmpPrefix lexicographically compares the first k elements of row
// against pre.
func cmpPrefix(row, pre [3]ID, k int) int {
	for j := 0; j < k; j++ {
		if row[j] != pre[j] {
			if row[j] < pre[j] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// rangeOf returns the half-open subrange of rows (sorted in their
// ordering) whose first k elements equal pre[:k].
func rangeOf(rows [][3]ID, k int, pre [3]ID) (int, int) {
	lo := sort.Search(len(rows), func(i int) bool { return cmpPrefix(rows[i], pre, k) >= 0 })
	hi := lo + sort.Search(len(rows)-lo, func(i int) bool { return cmpPrefix(rows[lo+i], pre, k) > 0 })
	return lo, hi
}

// runContains reports whether the sorted run holds exactly row.
func runContains(run [][3]ID, row [3]ID) bool {
	i := sort.Search(len(run), func(i int) bool { return cmpPrefix(run[i], row, 3) >= 0 })
	return i < len(run) && run[i] == row
}

// treeUndo is the MVCC compensation hook for disk mains, whose six
// B+-trees are merged in place (unlike the memory main, which
// compaction replaces wholesale). Every state carries the treeUndo node
// of its epoch; the node is an empty promise until a merge folds a
// delta into the shared trees, at which point the compactor publishes —
// BEFORE touching the first tree — an undoRec describing exactly what
// will be applied. A state whose node carries a record recovers its
// original main image by reading the trees through the record: merged
// adds are subtracted, merged deletes resurrected. Records chain (next
// epoch's node), so a snapshot pinned across several compactions stays
// exact. Publication-before-mutation plus the disk store's internal
// lock make the compensation race-free: any reader that observed a
// merge mutation is guaranteed to observe the record when it loads the
// chain after its scan.
type treeUndo struct {
	rec atomic.Pointer[undoRec]
}

// undoRec is one published merge: the delta that was (or is being)
// folded into the trees, in all six orderings, plus the next epoch.
type undoRec struct {
	adds, dels [6][][3]ID
	next       *treeUndo
}

// undoChain collects the merges applied to the trees since this state
// was created, oldest first. Empty in the steady state (no merge in
// flight and none since the state's epoch).
func (st *state) undoChain() []*undoRec {
	if st.undo == nil {
		return nil
	}
	var chain []*undoRec
	for u := st.undo; u != nil; {
		r := u.rec.Load()
		if r == nil {
			break
		}
		chain = append(chain, r)
		u = r.next
	}
	return chain
}

// layeredMainHas recovers the pre-merge verdict for triple t from the
// current tree verdict by undoing each chained merge, newest first (an
// older merge's verdict overrides a newer one's, since it is undone
// later).
func layeredMainHas(chain []*undoRec, treeHas bool, t [3]ID) bool {
	v := treeHas
	for i := len(chain) - 1; i >= 0; i-- {
		switch {
		case runContains(chain[i].adds[core.SPO], t):
			v = false // merged add: the pre-merge main lacked it
		case runContains(chain[i].dels[core.SPO], t):
			v = true // merged delete: the pre-merge main held it
		}
	}
	return v
}

// compensatedRows materializes the main rows matching the pattern in
// ordering ix, corrected through the undo chain. The chain is loaded
// AFTER the tree scan: the disk store's lock orders any observed merge
// mutation before the compactor's record publication becomes visible,
// so a scan that saw half a merge always sees the record that undoes
// it. With an empty chain the scan itself was merge-free and is
// returned as is.
func (st *state) compensatedRows(ix core.Index, pre [3]ID, k int, s, p, o ID) ([][3]ID, error) {
	var rows [][3]ID
	if err := st.main.Match(s, p, o, func(ms, mp, mo ID) bool {
		rows = append(rows, permute(ix, [3]ID{ms, mp, mo}))
		return true
	}); err != nil {
		return nil, err
	}
	chain := st.undoChain()
	if len(chain) == 0 {
		return rows, nil
	}
	less := func(i, j int) bool { return cmpPrefix(rows[i], rows[j], 3) < 0 }
	if !sort.SliceIsSorted(rows, less) {
		sort.Slice(rows, less)
	}
	// Resurrection candidates: every chained merge's deletes in range.
	var extra [][3]ID
	for _, rec := range chain {
		lo, hi := rangeOf(rec.dels[ix], k, pre)
		extra = append(extra, rec.dels[ix][lo:hi]...)
	}
	sort.Slice(extra, func(i, j int) bool { return cmpPrefix(extra[i], extra[j], 3) < 0 })
	out := make([][3]ID, 0, len(rows)+len(extra))
	i, j := 0, 0
	for i < len(rows) || j < len(extra) {
		var row [3]ID
		inTree := false
		switch {
		case j >= len(extra):
			row, inTree = rows[i], true
			i++
		case i >= len(rows):
			row = extra[j]
			j++
		default:
			switch c := cmpPrefix(rows[i], extra[j], 3); {
			case c < 0:
				row, inTree = rows[i], true
				i++
			case c > 0:
				row = extra[j]
				j++
			default:
				row, inTree = rows[i], true
				i, j = i+1, j+1
			}
		}
		// Dedupe equal resurrection candidates from several merges.
		for j < len(extra) && extra[j] == row {
			j++
		}
		if layeredMainHas(chain, inTree, unpermute(ix, row)) {
			out = append(out, row)
		}
	}
	return out, nil
}

// permuteSorted renders a small canonical triple set as a sorted run of
// ordering ix.
func permuteSorted(ix core.Index, ts [][3]ID) [][3]ID {
	rows := make([][3]ID, len(ts))
	for i, t := range ts {
		rows[i] = permute(ix, t)
	}
	sort.Slice(rows, func(i, j int) bool { return cmpPrefix(rows[i], rows[j], 3) < 0 })
	return rows
}

// mergeApply produces the copy-on-write successor of one sorted delta
// ordering: base with the (canonical) ins triples spliced in and the
// del triples dropped, in a single linear merge. base is never mutated —
// readers may still be iterating it.
func mergeApply(base [][3]ID, ix core.Index, ins, del [][3]ID) [][3]ID {
	if len(ins) == 0 && len(del) == 0 {
		return base
	}
	insRows := permuteSorted(ix, ins)
	delRows := permuteSorted(ix, del)
	out := make([][3]ID, 0, len(base)+len(insRows)-len(delRows))
	di := 0
	for _, row := range base {
		for len(insRows) > 0 && cmpPrefix(insRows[0], row, 3) < 0 {
			out = append(out, insRows[0])
			insRows = insRows[1:]
		}
		if di < len(delRows) && delRows[di] == row {
			di++
			continue
		}
		out = append(out, row)
	}
	out = append(out, insRows...)
	return out
}

// state is one immutable MVCC version of the overlay: a main graph that
// no write mutates (the memory main is replaced wholesale by compaction;
// the disk main only ever absorbs triples the delta already presents)
// plus the sorted delta — adds and tombstones in all six orderings.
// Readers pin a *state with one atomic load and keep a consistent view
// for as long as they hold it; every method here is pure with respect to
// the state itself.
//
// state implements graph.Graph and graph.SortedSource; mutations return
// ErrReadOnly, which is what makes it safe to hand out as the
// graph.Snapshotter view.
type state struct {
	main     graph.Graph
	mainCore *core.Store        // non-nil when main is the in-memory Hexastore
	sorted   graph.SortedSource // nil when main cannot serve sorted streams
	viewSrc  graph.ViewSource   // nil when main cannot serve zero-copy views
	dict     *dictionary.Dictionary

	// adds holds delta triples not present in main; dels holds
	// tombstones for main triples. Both are sorted per ordering.
	// Invariants: adds ∩ main = ∅, dels ⊆ main, adds ∩ dels = ∅ —
	// where "main" is the undo-compensated image for disk-backed
	// states (see treeUndo); the raw trees may transiently disagree
	// during a merge, and every merged read stream deduplicates.
	adds [6][][3]ID
	dels [6][][3]ID

	// undo is the state's epoch node for disk mains (nil for memory and
	// baseline mains): the compensation layer that keeps this state's
	// view exact while in-place merges mutate the shared trees.
	undo *treeUndo

	visible int // |main ⊕ delta|

	// epoch is the content-version token behind graph.Epocher. Every
	// write publish bumps it; compaction publishes a content-identical
	// state and keeps it, so cached results validly survive compaction.
	epoch uint64
}

// Epoch returns the state's content-version token (see graph.Epocher).
// A state is immutable, so the token a pinned snapshot reports never
// changes — exactly the property result caches need.
func (st *state) Epoch() string { return "o" + strconv.FormatUint(st.epoch, 10) }

// deltaLen returns the number of delta entries (adds + tombstones).
func (st *state) deltaLen() int { return len(st.adds[core.SPO]) + len(st.dels[core.SPO]) }

func (st *state) Dictionary() *dictionary.Dictionary { return st.dict }
func (st *state) Len() int                           { return st.visible }

func (st *state) Add(s, p, o ID) (bool, error)    { return false, ErrReadOnly }
func (st *state) Remove(s, p, o ID) (bool, error) { return false, ErrReadOnly }

// Snapshot returns the state itself: a snapshot of a snapshot is the
// same instant.
func (st *state) Snapshot() graph.Graph { return st }

func (st *state) Has(s, p, o ID) (bool, error) {
	t := [3]ID{s, p, o}
	if runContains(st.dels[core.SPO], t) {
		return false, nil
	}
	if runContains(st.adds[core.SPO], t) {
		return true, nil
	}
	return st.mainHas(t)
}

// mainHas probes the main store for t, compensated through the undo
// chain for disk-backed states. The chain is loaded after the probe
// (one lock acquisition on the tree side), which makes the compensation
// sound against a concurrent in-place merge.
func (st *state) mainHas(t [3]ID) (bool, error) {
	v, err := st.main.Has(t[0], t[1], t[2])
	if err != nil {
		return false, err
	}
	if st.undo != nil {
		if chain := st.undoChain(); len(chain) > 0 {
			v = layeredMainHas(chain, v, t)
		}
	}
	return v, nil
}

// shapeIndex returns the ordering whose key order groups the bound
// positions of ⟨s,p,o⟩ first, plus the bound prefix values and length —
// the same shape → index mapping the core and disk stores use, so delta
// rows interleave with main streams in the main's own emission order.
func shapeIndex(s, p, o ID) (ix core.Index, pre [3]ID, k int) {
	switch {
	case s != None && p != None && o != None:
		return core.SPO, [3]ID{s, p, o}, 3
	case s != None && p != None:
		return core.SPO, [3]ID{s, p, 0}, 2
	case s != None && o != None:
		return core.SOP, [3]ID{s, o, 0}, 2
	case p != None && o != None:
		return core.POS, [3]ID{p, o, 0}, 2
	case s != None:
		return core.SPO, [3]ID{s, 0, 0}, 1
	case p != None:
		return core.PSO, [3]ID{p, 0, 0}, 1
	case o != None:
		return core.OSP, [3]ID{o, 0, 0}, 1
	default:
		return core.SPO, [3]ID{}, 0
	}
}

// Match streams the triples matching the pattern: the main stream with
// tombstoned (and, during a disk merge window, duplicated) triples
// filtered out, then the matching delta adds. Like the Graph contract,
// no inter-stream order is promised.
func (st *state) Match(s, p, o ID, fn func(s, p, o ID) bool) error {
	ix, pre, k := shapeIndex(s, p, o)
	if k == 3 {
		ok, err := st.Has(s, p, o)
		if err != nil {
			return err
		}
		if ok {
			fn(s, p, o)
		}
		return nil
	}
	alo, ahi := rangeOf(st.adds[ix], k, pre)
	addRun := st.adds[ix][alo:ahi]
	dlo, dhi := rangeOf(st.dels[ix], k, pre)
	delRun := st.dels[ix][dlo:dhi]

	stopped := false
	emitMain := func(row [3]ID) bool {
		if runContains(delRun, row) || runContains(addRun, row) {
			return true
		}
		t := unpermute(ix, row)
		if !fn(t[0], t[1], t[2]) {
			stopped = true
			return false
		}
		return true
	}
	if st.undo != nil {
		// Disk main: materialize the compensated rows (streaming cannot
		// retract triples a half-observed merge would have hidden).
		rows, err := st.compensatedRows(ix, pre, k, s, p, o)
		if err != nil {
			return err
		}
		for _, row := range rows {
			if !emitMain(row) {
				break
			}
		}
	} else {
		if err := st.main.Match(s, p, o, func(ms, mp, mo ID) bool {
			return emitMain(permute(ix, [3]ID{ms, mp, mo}))
		}); err != nil {
			return err
		}
	}
	if stopped {
		return nil
	}
	for _, row := range addRun {
		t := unpermute(ix, row)
		if !fn(t[0], t[1], t[2]) {
			return nil
		}
	}
	return nil
}

// Count returns the number of matching triples: the main count adjusted
// by the delta runs. During a disk in-place merge window the main count
// may transiently include delta adds already applied to the trees; that
// only skews planner estimates, never query results (the list, pair and
// match streams all deduplicate).
func (st *state) Count(s, p, o ID) (int, error) {
	ix, pre, k := shapeIndex(s, p, o)
	if k == 3 {
		ok, err := st.Has(s, p, o)
		if err != nil {
			return 0, err
		}
		if ok {
			return 1, nil
		}
		return 0, nil
	}
	if k == 0 {
		return st.visible, nil
	}
	n, err := st.main.Count(s, p, o)
	if err != nil {
		return 0, err
	}
	if st.undo != nil {
		// The chain is loaded after the counting scan: empty means the
		// scan was merge-free and the count stands; otherwise recount
		// from the compensated image.
		if chain := st.undoChain(); len(chain) > 0 {
			rows, rerr := st.compensatedRows(ix, pre, k, s, p, o)
			if rerr != nil {
				return 0, rerr
			}
			n = len(rows)
		}
	}
	alo, ahi := rangeOf(st.adds[ix], k, pre)
	dlo, dhi := rangeOf(st.dels[ix], k, pre)
	n += (ahi - alo) - (dhi - dlo)
	if n < 0 {
		n = 0
	}
	return n, nil
}

// mainSortedList returns the main store's sorted candidate list for a
// 2-bound pattern, appending to dst: directly from the main's
// SortedSource when it has one, otherwise collected through Match and
// sorted (the baseline-main fallback). Disk-backed states check the
// undo chain after the (single-lock-acquisition) scan and redo through
// the compensated image when a merge touched the trees — the hot path
// stays one streamed scan plus one atomic load.
func (st *state) mainSortedList(dst []ID, s, p, o ID) ([]ID, error) {
	if st.sorted != nil {
		start := len(dst)
		out, err := st.sorted.AppendSortedList(dst, s, p, o)
		if err != nil {
			return nil, err
		}
		if st.undo != nil {
			if chain := st.undoChain(); len(chain) > 0 {
				ix, pre, k := shapeIndex(s, p, o)
				rows, rerr := st.compensatedRows(ix, pre, k, s, p, o)
				if rerr != nil {
					return nil, rerr
				}
				out = out[:start]
				for _, row := range rows {
					out = append(out, row[2])
				}
			}
		}
		return out, nil
	}
	start := len(dst)
	err := st.main.Match(s, p, o, func(ms, mp, mo ID) bool {
		switch {
		case o == None:
			dst = append(dst, mo)
		case p == None:
			dst = append(dst, mp)
		default:
			dst = append(dst, ms)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	vals := dst[start:]
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return dst, nil
}

// SortedListView implements graph.ViewSource over the merged
// main+delta view: with no delta entries in the pattern's range the
// main's zero-copy compressed view passes straight through; with a
// small sorted delta run, the main's view is streamed block by block
// and merged with the run into a fresh slice — the main list is never
// decompressed into an intermediate slice of its own. Disk-backed
// states (undo compensation) and mains without a ViewSource report
// ok=false, falling back to AppendSortedList.
func (st *state) SortedListView(s, p, o ID) (idlist.View, bool, error) {
	if st.viewSrc == nil || st.undo != nil {
		return idlist.View{}, false, nil
	}
	ix, pre, k := shapeIndex(s, p, o)
	if k != 2 {
		return idlist.View{}, false, fmt.Errorf("delta: SortedListView needs exactly two bound positions, got ⟨%d,%d,%d⟩", s, p, o)
	}
	mainView, ok, err := st.viewSrc.SortedListView(s, p, o)
	if err != nil || !ok {
		return idlist.View{}, false, err
	}
	alo, ahi := rangeOf(st.adds[ix], 2, pre)
	addRun := st.adds[ix][alo:ahi]
	dlo, dhi := rangeOf(st.dels[ix], 2, pre)
	delRun := st.dels[ix][dlo:dhi]
	if len(addRun) == 0 && len(delRun) == 0 {
		return mainView, true, nil
	}
	merged := make([]ID, 0, mainView.Len()+len(addRun))
	ai, di := 0, 0
	mainView.Range(func(v ID) bool {
		for ai < len(addRun) && addRun[ai][2] < v {
			merged = append(merged, addRun[ai][2])
			ai++
		}
		if ai < len(addRun) && addRun[ai][2] == v {
			ai++ // already in main; emit once below
		}
		for di < len(delRun) && delRun[di][2] < v {
			di++
		}
		if di < len(delRun) && delRun[di][2] == v {
			return true // tombstoned
		}
		merged = append(merged, v)
		return true
	})
	for ; ai < len(addRun); ai++ {
		merged = append(merged, addRun[ai][2])
	}
	return idlist.ViewOf(merged), true, nil
}

// AppendSortedList merges the main store's sorted candidate list with
// the delta: adds spliced in, tombstones dropped, duplicates (a disk
// merge window) collapsed. It implements graph.SortedSource, which is
// what lets the batch merge-join engine run unchanged over the overlay.
func (st *state) AppendSortedList(dst []ID, s, p, o ID) ([]ID, error) {
	ix, pre, k := shapeIndex(s, p, o)
	if k != 2 {
		return nil, fmt.Errorf("delta: AppendSortedList needs exactly two bound positions, got ⟨%d,%d,%d⟩", s, p, o)
	}
	alo, ahi := rangeOf(st.adds[ix], 2, pre)
	addRun := st.adds[ix][alo:ahi]
	dlo, dhi := rangeOf(st.dels[ix], 2, pre)
	delRun := st.dels[ix][dlo:dhi]
	if len(addRun) == 0 && len(delRun) == 0 {
		return st.mainSortedList(dst, s, p, o)
	}

	mainVals, err := st.mainSortedList(nil, s, p, o)
	if err != nil {
		return nil, err
	}
	// delRun/addRun are sorted by their third element (the prefix is
	// fixed), so this is a three-way sorted merge.
	di, ai := 0, 0
	for _, v := range mainVals {
		for ai < len(addRun) && addRun[ai][2] < v {
			dst = append(dst, addRun[ai][2])
			ai++
		}
		if ai < len(addRun) && addRun[ai][2] == v {
			ai++ // already in main (merge window); emit once below
		}
		for di < len(delRun) && delRun[di][2] < v {
			di++
		}
		if di < len(delRun) && delRun[di][2] == v {
			continue // tombstoned
		}
		dst = append(dst, v)
	}
	for ; ai < len(addRun); ai++ {
		dst = append(dst, addRun[ai][2])
	}
	return dst, nil
}

// mainPairs streams the main store's sorted pairs for a 1-bound
// pattern: directly when the main has a SortedSource, else collected
// and sorted. Disk-backed states materialize through the compensated
// image (a pair already emitted to fn cannot be retracted if the scan
// raced an in-place merge).
func (st *state) mainPairs(s, p, o ID, fn func(a, b ID) bool) error {
	if st.undo != nil {
		ix, pre, k := shapeIndex(s, p, o)
		rows, err := st.compensatedRows(ix, pre, k, s, p, o)
		if err != nil {
			return err
		}
		for _, row := range rows {
			if !fn(row[1], row[2]) {
				return nil
			}
		}
		return nil
	}
	if st.sorted != nil {
		return st.sorted.SortedPairs(s, p, o, fn)
	}
	var pairs [][2]ID
	err := st.main.Match(s, p, o, func(ms, mp, mo ID) bool {
		switch {
		case s != None:
			pairs = append(pairs, [2]ID{mp, mo})
		case p != None:
			pairs = append(pairs, [2]ID{ms, mo})
		default:
			pairs = append(pairs, [2]ID{ms, mp})
		}
		return true
	})
	if err != nil {
		return err
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	for _, pr := range pairs {
		if !fn(pr[0], pr[1]) {
			return nil
		}
	}
	return nil
}

// SortedPairs merges the main store's sorted pair stream with the delta
// for a 1-bound pattern, preserving the (first free, second free)
// ascending order. It implements graph.SortedSource.
func (st *state) SortedPairs(s, p, o ID, fn func(a, b ID) bool) error {
	ix, pre, k := shapeIndex(s, p, o)
	if k != 1 {
		return fmt.Errorf("delta: SortedPairs needs exactly one bound position, got ⟨%d,%d,%d⟩", s, p, o)
	}
	alo, ahi := rangeOf(st.adds[ix], 1, pre)
	addRun := st.adds[ix][alo:ahi]
	dlo, dhi := rangeOf(st.dels[ix], 1, pre)
	delRun := st.dels[ix][dlo:dhi]

	ai := 0
	stopped := false
	emit := func(a, b ID) bool {
		if !fn(a, b) {
			stopped = true
			return false
		}
		return true
	}
	err := st.mainPairs(s, p, o, func(a, b ID) bool {
		for ai < len(addRun) {
			av, bv := addRun[ai][1], addRun[ai][2]
			if av > a || (av == a && bv > b) {
				break
			}
			ai++
			if av == a && bv == b {
				continue // already in main (merge window); emit once below
			}
			if !emit(av, bv) {
				return false
			}
		}
		if runContains(delRun, [3]ID{pre[0], a, b}) {
			return true // tombstoned
		}
		return emit(a, b)
	})
	if err != nil || stopped {
		return err
	}
	for ; ai < len(addRun); ai++ {
		if !emit(addRun[ai][1], addRun[ai][2]) {
			return nil
		}
	}
	return nil
}
