// Package dictionary implements the dictionary encoding described in §4.1
// of the Hexastore paper: RDF terms (strings) are mapped to dense integer
// identifiers, and the stores operate on identifiers only. A single
// Dictionary instance is shared by all six indices of a Hexastore and by
// the baseline stores so that cross-store comparisons use identical keys.
package dictionary

import (
	"fmt"
	"sync"

	"hexastore/internal/rdf"
)

// ID is a dictionary-encoded term identifier. IDs are dense and start at
// 1; 0 is reserved as "no term" / wildcard in pattern queries.
type ID uint64

// None is the zero ID, never assigned to a term. Pattern queries use it as
// the unbound marker.
const None ID = 0

// numShards stripes the forward (term → id) map. Must be a power of two.
// 32 stripes keep the per-shard maps warm while making lock collisions
// between concurrent encoders rare even at high worker counts.
const numShards = 32

// shard is one stripe of the forward map with its own lock, so concurrent
// Encode calls on distinct terms proceed without serializing on a single
// dictionary-wide mutex.
type shard struct {
	mu      sync.RWMutex
	forward map[string]ID
}

// Dictionary is a bidirectional, append-only mapping between RDF terms and
// IDs. It is safe for concurrent use and Encode scales across cores: the
// forward map is hash-sharded into independently locked stripes, and only
// the id allocation (an append to the shared reverse view) is serialized.
// Terms are never removed: stores that delete triples may leave orphaned
// dictionary entries, which matches the paper's architecture (the mapping
// table only grows).
//
// ID assignment order is first-come-first-served: a single-threaded caller
// sees exactly the historical dense 1,2,3,… assignment in encounter order;
// concurrent callers see a dense but interleaving-dependent assignment.
type Dictionary struct {
	shards [numShards]shard

	// revMu guards reverse, the merged id → term-key view all shards
	// allocate from; reverse[id-1] = term key. Lock order: a shard mutex
	// may be held when taking revMu, never the other way around.
	revMu   sync.RWMutex
	reverse []string
}

// New returns an empty Dictionary.
func New() *Dictionary {
	d := &Dictionary{}
	for i := range d.shards {
		d.shards[i].forward = make(map[string]ID)
	}
	return d
}

// shardOf returns the stripe for key (FNV-1a over the key bytes).
func (d *Dictionary) shardOf(key string) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &d.shards[h&(numShards-1)]
}

// Encode returns the ID for term, assigning a fresh one if the term has
// not been seen before.
func (d *Dictionary) Encode(term rdf.Term) ID {
	key := term.Key()
	sh := d.shardOf(key)
	sh.mu.RLock()
	id, ok := sh.forward[key]
	sh.mu.RUnlock()
	if ok {
		return id
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if id, ok = sh.forward[key]; ok {
		return id
	}
	d.revMu.Lock()
	d.reverse = append(d.reverse, key)
	id = ID(len(d.reverse))
	d.revMu.Unlock()
	sh.forward[key] = id
	return id
}

// EncodeTriple encodes all three terms of a triple.
func (d *Dictionary) EncodeTriple(t rdf.Triple) (s, p, o ID) {
	return d.Encode(t.Subject), d.Encode(t.Predicate), d.Encode(t.Object)
}

// Lookup returns the ID for term without assigning one. The second result
// reports whether the term is present.
func (d *Dictionary) Lookup(term rdf.Term) (ID, bool) {
	key := term.Key()
	sh := d.shardOf(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	id, ok := sh.forward[key]
	return id, ok
}

// Decode returns the term for id.
func (d *Dictionary) Decode(id ID) (rdf.Term, error) {
	d.revMu.RLock()
	defer d.revMu.RUnlock()
	if id == None || int(id) > len(d.reverse) {
		return rdf.Term{}, fmt.Errorf("dictionary: unknown id %d", id)
	}
	return rdf.TermFromKey(d.reverse[id-1])
}

// MustDecode is Decode for callers that know the id is valid (e.g. ids
// previously produced by Encode); it panics on unknown ids.
func (d *Dictionary) MustDecode(id ID) rdf.Term {
	t, err := d.Decode(id)
	if err != nil {
		panic(err)
	}
	return t
}

// DecodeTriple decodes three ids back into a triple.
func (d *Dictionary) DecodeTriple(s, p, o ID) (rdf.Triple, error) {
	st, err := d.Decode(s)
	if err != nil {
		return rdf.Triple{}, err
	}
	pt, err := d.Decode(p)
	if err != nil {
		return rdf.Triple{}, err
	}
	ot, err := d.Decode(o)
	if err != nil {
		return rdf.Triple{}, err
	}
	return rdf.Triple{Subject: st, Predicate: pt, Object: ot}, nil
}

// Len returns the number of distinct terms encoded so far.
func (d *Dictionary) Len() int {
	d.revMu.RLock()
	defer d.revMu.RUnlock()
	return len(d.reverse)
}

// SizeBytes estimates the memory footprint of the dictionary: the string
// payloads plus per-entry bookkeeping (map bucket + reverse slice entry).
// It is used by the memory-usage experiment (paper Figure 15).
func (d *Dictionary) SizeBytes() int64 {
	d.revMu.RLock()
	defer d.revMu.RUnlock()
	var n int64
	for _, s := range d.reverse {
		// String payload counted twice (map key shares the backing array
		// with the reverse entry in our construction, but a conservative
		// store would not), plus ~48 bytes of map/slice overhead.
		n += int64(len(s)) + 48
	}
	return n
}
