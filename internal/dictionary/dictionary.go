// Package dictionary implements the dictionary encoding described in §4.1
// of the Hexastore paper: RDF terms (strings) are mapped to dense integer
// identifiers, and the stores operate on identifiers only. A single
// Dictionary instance is shared by all six indices of a Hexastore and by
// the baseline stores so that cross-store comparisons use identical keys.
package dictionary

import (
	"fmt"
	"sync"

	"hexastore/internal/rdf"
)

// ID is a dictionary-encoded term identifier. IDs are dense and start at
// 1; 0 is reserved as "no term" / wildcard in pattern queries.
type ID uint64

// None is the zero ID, never assigned to a term. Pattern queries use it as
// the unbound marker.
const None ID = 0

// Dictionary is a bidirectional, append-only mapping between RDF terms and
// IDs. It is safe for concurrent use. Terms are never removed: stores that
// delete triples may leave orphaned dictionary entries, which matches the
// paper's architecture (the mapping table only grows).
type Dictionary struct {
	mu      sync.RWMutex
	forward map[string]ID
	reverse []string // reverse[id-1] = term key
}

// New returns an empty Dictionary.
func New() *Dictionary {
	return &Dictionary{forward: make(map[string]ID)}
}

// Encode returns the ID for term, assigning a fresh one if the term has
// not been seen before.
func (d *Dictionary) Encode(term rdf.Term) ID {
	key := term.Key()
	d.mu.RLock()
	id, ok := d.forward[key]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok = d.forward[key]; ok {
		return id
	}
	d.reverse = append(d.reverse, key)
	id = ID(len(d.reverse))
	d.forward[key] = id
	return id
}

// EncodeTriple encodes all three terms of a triple.
func (d *Dictionary) EncodeTriple(t rdf.Triple) (s, p, o ID) {
	return d.Encode(t.Subject), d.Encode(t.Predicate), d.Encode(t.Object)
}

// Lookup returns the ID for term without assigning one. The second result
// reports whether the term is present.
func (d *Dictionary) Lookup(term rdf.Term) (ID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.forward[term.Key()]
	return id, ok
}

// Decode returns the term for id.
func (d *Dictionary) Decode(id ID) (rdf.Term, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id == None || int(id) > len(d.reverse) {
		return rdf.Term{}, fmt.Errorf("dictionary: unknown id %d", id)
	}
	return rdf.TermFromKey(d.reverse[id-1])
}

// MustDecode is Decode for callers that know the id is valid (e.g. ids
// previously produced by Encode); it panics on unknown ids.
func (d *Dictionary) MustDecode(id ID) rdf.Term {
	t, err := d.Decode(id)
	if err != nil {
		panic(err)
	}
	return t
}

// DecodeTriple decodes three ids back into a triple.
func (d *Dictionary) DecodeTriple(s, p, o ID) (rdf.Triple, error) {
	st, err := d.Decode(s)
	if err != nil {
		return rdf.Triple{}, err
	}
	pt, err := d.Decode(p)
	if err != nil {
		return rdf.Triple{}, err
	}
	ot, err := d.Decode(o)
	if err != nil {
		return rdf.Triple{}, err
	}
	return rdf.Triple{Subject: st, Predicate: pt, Object: ot}, nil
}

// Len returns the number of distinct terms encoded so far.
func (d *Dictionary) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.reverse)
}

// SizeBytes estimates the memory footprint of the dictionary: the string
// payloads plus per-entry bookkeeping (map bucket + reverse slice entry).
// It is used by the memory-usage experiment (paper Figure 15).
func (d *Dictionary) SizeBytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var n int64
	for _, s := range d.reverse {
		// String payload counted twice (map key shares the backing array
		// with the reverse entry in our construction, but a conservative
		// store would not), plus ~48 bytes of map/slice overhead.
		n += int64(len(s)) + 48
	}
	return n
}
