package dictionary

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"hexastore/internal/rdf"
)

func TestEncodeAssignsDenseIDsFromOne(t *testing.T) {
	d := New()
	a := d.Encode(rdf.NewIRI("a"))
	b := d.Encode(rdf.NewIRI("b"))
	c := d.Encode(rdf.NewLiteral("c"))
	if a != 1 || b != 2 || c != 3 {
		t.Errorf("ids = %d,%d,%d, want 1,2,3", a, b, c)
	}
	if d.Len() != 3 {
		t.Errorf("Len = %d, want 3", d.Len())
	}
}

func TestEncodeIsIdempotent(t *testing.T) {
	d := New()
	first := d.Encode(rdf.NewIRI("x"))
	second := d.Encode(rdf.NewIRI("x"))
	if first != second {
		t.Errorf("Encode twice gave %d then %d", first, second)
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d, want 1", d.Len())
	}
}

func TestKindsDoNotCollide(t *testing.T) {
	d := New()
	iri := d.Encode(rdf.NewIRI("same"))
	lit := d.Encode(rdf.NewLiteral("same"))
	blank := d.Encode(rdf.NewBlank("same"))
	if iri == lit || lit == blank || iri == blank {
		t.Errorf("ids collide: iri=%d lit=%d blank=%d", iri, lit, blank)
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	d := New()
	terms := []rdf.Term{
		rdf.NewIRI("http://ex/s"),
		rdf.NewLiteral("a literal with spaces"),
		rdf.NewBlank("b0"),
	}
	for _, term := range terms {
		id := d.Encode(term)
		got, err := d.Decode(id)
		if err != nil {
			t.Fatalf("Decode(%d): %v", id, err)
		}
		if got != term {
			t.Errorf("Decode(Encode(%v)) = %v", term, got)
		}
	}
}

func TestDecodeUnknown(t *testing.T) {
	d := New()
	if _, err := d.Decode(None); err == nil {
		t.Error("Decode(None) succeeded, want error")
	}
	if _, err := d.Decode(99); err == nil {
		t.Error("Decode(99) on empty dictionary succeeded, want error")
	}
}

func TestMustDecodePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustDecode(42) did not panic")
		}
	}()
	New().MustDecode(42)
}

func TestLookupDoesNotAssign(t *testing.T) {
	d := New()
	if _, ok := d.Lookup(rdf.NewIRI("ghost")); ok {
		t.Error("Lookup found unseen term")
	}
	if d.Len() != 0 {
		t.Errorf("Lookup mutated dictionary: Len = %d", d.Len())
	}
	id := d.Encode(rdf.NewIRI("ghost"))
	got, ok := d.Lookup(rdf.NewIRI("ghost"))
	if !ok || got != id {
		t.Errorf("Lookup after Encode = (%d,%v), want (%d,true)", got, ok, id)
	}
}

func TestEncodeDecodeTriple(t *testing.T) {
	d := New()
	tr := rdf.T(rdf.NewIRI("s"), rdf.NewIRI("p"), rdf.NewLiteral("o"))
	s, p, o := d.EncodeTriple(tr)
	got, err := d.DecodeTriple(s, p, o)
	if err != nil {
		t.Fatalf("DecodeTriple: %v", err)
	}
	if got != tr {
		t.Errorf("DecodeTriple = %v, want %v", got, tr)
	}
	if _, err := d.DecodeTriple(s, p, 999); err == nil {
		t.Error("DecodeTriple with unknown object id succeeded")
	}
}

func TestConcurrentEncode(t *testing.T) {
	d := New()
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	ids := make([][]ID, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]ID, perG)
			for i := 0; i < perG; i++ {
				// Shared key space so goroutines race on the same terms.
				ids[g][i] = d.Encode(rdf.NewIRI(fmt.Sprintf("term-%d", i%100)))
			}
		}(g)
	}
	wg.Wait()
	if d.Len() != 100 {
		t.Fatalf("Len = %d, want 100", d.Len())
	}
	// Every goroutine must have observed identical ids for identical terms.
	for g := 1; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutine %d saw id %d for term %d, goroutine 0 saw %d",
					g, ids[g][i], i%100, ids[0][i])
			}
		}
	}
}

// TestConcurrentEncodeLookupDecode races all three access paths over a
// shared key space; run with -race. Every Encode result must decode back
// to its term, and Lookup must never observe an id Decode rejects.
func TestConcurrentEncodeLookupDecode(t *testing.T) {
	d := New()
	const goroutines = 12
	const perG = 400
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				term := rdf.NewIRI(fmt.Sprintf("t-%d", (g*perG+i)%300))
				switch g % 3 {
				case 0:
					id := d.Encode(term)
					got, err := d.Decode(id)
					if err != nil || got != term {
						t.Errorf("Decode(Encode(%v)) = %v, %v", term, got, err)
						return
					}
				case 1:
					if id, ok := d.Lookup(term); ok {
						if got, err := d.Decode(id); err != nil || got != term {
							t.Errorf("Decode(Lookup(%v)) = %v, %v", term, got, err)
							return
						}
					}
				default:
					if n := d.Len(); n > 0 {
						if _, err := d.Decode(ID(n)); err != nil {
							t.Errorf("Decode(Len()=%d): %v", n, err)
							return
						}
					}
					d.Encode(term)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentEncodeAssignsDenseIDs checks that ids stay a dense
// bijection 1..Len() under concurrent encoding of distinct terms across
// every shard, whatever the interleaving.
func TestConcurrentEncodeAssignsDenseIDs(t *testing.T) {
	d := New()
	const goroutines = 8
	const perG = 300
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				d.Encode(rdf.NewIRI(fmt.Sprintf("g%d-i%d", g, i)))
			}
		}(g)
	}
	wg.Wait()
	if d.Len() != goroutines*perG {
		t.Fatalf("Len = %d, want %d", d.Len(), goroutines*perG)
	}
	seen := make(map[ID]bool, d.Len())
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			term := rdf.NewIRI(fmt.Sprintf("g%d-i%d", g, i))
			id, ok := d.Lookup(term)
			if !ok || id == None || int(id) > d.Len() {
				t.Fatalf("Lookup(%v) = (%d, %v), want dense id", term, id, ok)
			}
			if seen[id] {
				t.Fatalf("id %d assigned to two terms", id)
			}
			seen[id] = true
			if got := d.MustDecode(id); got != term {
				t.Fatalf("MustDecode(%d) = %v, want %v", id, got, term)
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	d := New()
	f := func(kindSel uint8, value string) bool {
		var term rdf.Term
		switch kindSel % 3 {
		case 0:
			term = rdf.NewIRI(value)
		case 1:
			term = rdf.NewLiteral(value)
		default:
			term = rdf.NewBlank(value)
		}
		id := d.Encode(term)
		got, err := d.Decode(id)
		return err == nil && got == term
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSizeBytesGrows(t *testing.T) {
	d := New()
	before := d.SizeBytes()
	d.Encode(rdf.NewIRI("http://example.org/some/long/term"))
	after := d.SizeBytes()
	if after <= before {
		t.Errorf("SizeBytes did not grow: before=%d after=%d", before, after)
	}
}
