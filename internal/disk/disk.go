// Package disk implements a fully operational disk-based Hexastore — the
// future work named in §7 of the paper ("we intend to implement a fully
// operational disk-based Hexastore").
//
// A disk Store keeps six B+-trees in one pagefile, one per ordering of
// the triple elements (spo, sop, pso, pos, osp, ops). Each tree stores
// the triples permuted into its ordering, so every statement pattern is a
// prefix range scan of exactly one tree — the disk analogue of the
// in-memory vector-and-list layout. The dictionary is persisted in an
// append-only sidecar log.
//
// Unlike the in-memory core.Store, the six trees do not share terminal
// lists: sharing is a pointer-level optimization that has no direct
// analogue in a paged B+-tree, so the disk rendering is a full six-fold
// representation. The space trade-off is measured by the
// BenchmarkDiskVsMemory ablation.
package disk

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"hexastore/internal/btree"
	"hexastore/internal/core"
	"hexastore/internal/dictionary"
	"hexastore/internal/iofault"
	"hexastore/internal/pagefile"
	"hexastore/internal/rdf"
)

// ID re-exports the dictionary id type.
type ID = dictionary.ID

// None is the wildcard marker in patterns.
const None = dictionary.None

const (
	storeFile = "store.db"
	dictFile  = "dict.db"
	dictMagic = "HEXDICT1"
)

// Options configures a disk store.
type Options struct {
	// CacheSize is the buffer pool capacity in pages (0 = pagefile default).
	CacheSize int
	// Uncompressed disables delta+varint compressed B+-tree leaves for
	// bulk loads (compression is the default). Existing pages are
	// self-describing, so the flag only affects future BulkBuild calls;
	// stores with either leaf kind open identically.
	Uncompressed bool
	// Dictionary, when non-nil, makes the store share the given term
	// dictionary instead of owning a private one — the sharded serving
	// tier passes one instance to every shard so ids agree cluster-wide.
	// Each store still persists its own sidecar: the full prefix of the
	// shared dictionary up to the last term it flushed. Open validates
	// that the sidecar's dense id assignment agrees with the shared
	// instance (the i-th sidecar term must map to id i) and refuses to
	// open otherwise, so a store can never silently attach to a
	// dictionary that disagrees with its persisted ids.
	Dictionary *dictionary.Dictionary
	// FS routes the store's file I/O (pagefile and dictionary sidecar)
	// through a fault-injection layer; nil means the real filesystem.
	FS iofault.FS
}

// dictOr returns the configured shared dictionary, or a fresh one.
func (o Options) dictOr() *dictionary.Dictionary {
	if o.Dictionary != nil {
		return o.Dictionary
	}
	return dictionary.New()
}

// Store is a disk-based Hexastore rooted at a directory. It is safe for
// concurrent use.
type Store struct {
	mu    sync.RWMutex
	dir   string
	fs    iofault.FS
	pf    *pagefile.File
	trees [6]*btree.Tree

	dict           *dictionary.Dictionary
	dictPath       string
	persistedTerms int

	// version counts content mutations since open. It backs the
	// graph.Epocher capability for result caching; it is process-local
	// (reopening a store resets it), which is sound because caches are
	// process-local too.
	version atomic.Uint64
}

// Epoch returns the store's content-version token (see graph.Epocher).
func (st *Store) Epoch() string {
	return "d" + strconv.FormatUint(st.version.Load(), 10)
}

// Exists reports whether dir already contains a disk Hexastore.
func Exists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, storeFile))
	return err == nil
}

// Create initializes a new disk Hexastore in dir, which must exist (or be
// creatable) and not already contain a store.
func Create(dir string, opts Options) (*Store, error) {
	fsys := iofault.Or(opts.FS)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("disk: create %s: %w", dir, err)
	}
	storePath := filepath.Join(dir, storeFile)
	if _, err := fsys.Stat(storePath); err == nil {
		return nil, fmt.Errorf("disk: %s already contains a store", dir)
	}
	pf, err := pagefile.Create(storePath, pagefile.Options{CacheSize: opts.CacheSize, FS: fsys})
	if err != nil {
		return nil, err
	}
	st := &Store{
		dir:      dir,
		fs:       fsys,
		pf:       pf,
		dict:     opts.dictOr(),
		dictPath: filepath.Join(dir, dictFile),
	}
	for i := range st.trees {
		st.trees[i] = btree.New(pf, 2*i, 2*i+1)
		st.trees[i].SetCompression(!opts.Uncompressed)
	}
	// A shared dictionary may already hold terms encoded by sibling
	// stores; this store has persisted none of them yet, so its sidecar
	// starts empty and flushDictionary would wrongly skip the existing
	// prefix if persistedTerms defaulted from dict.Len(). It defaults to
	// zero, which is exactly right: the first flush writes the whole
	// shared prefix.
	// Write the dictionary header eagerly so Open can validate it, and
	// sync the empty pagefile so a crash right after Create leaves an
	// openable (empty) store for WAL replay to rebuild onto.
	if err := iofault.WriteFile(fsys, st.dictPath, []byte(dictMagic), 0o644); err != nil {
		pf.Close()
		return nil, fmt.Errorf("disk: write dictionary: %w", err)
	}
	if err := pf.Sync(); err != nil {
		pf.Close()
		return nil, err
	}
	return st, nil
}

// Open attaches to an existing disk Hexastore in dir.
func Open(dir string, opts Options) (*Store, error) {
	fsys := iofault.Or(opts.FS)
	pf, err := pagefile.Open(filepath.Join(dir, storeFile), pagefile.Options{CacheSize: opts.CacheSize, FS: fsys})
	if err != nil {
		return nil, err
	}
	st := &Store{
		dir:      dir,
		fs:       fsys,
		pf:       pf,
		dict:     opts.dictOr(),
		dictPath: filepath.Join(dir, dictFile),
	}
	for i := range st.trees {
		st.trees[i] = btree.New(pf, 2*i, 2*i+1)
		st.trees[i].SetCompression(!opts.Uncompressed)
	}
	if err := st.loadDictionary(); err != nil {
		pf.Close()
		return nil, err
	}
	return st, nil
}

// loadDictionary replays the append-only term log, re-assigning the same
// dense ids the terms had when they were persisted. With a shared
// dictionary the sidecar must be a prefix of the shared instance in
// identical order (dictionaries are append-only, so any sidecar flushed
// from the shared instance is); each term is validated against the id
// the shared instance assigns it. persistedTerms counts this store's own
// sidecar records, not dict.Len() — a sibling shard may have pushed the
// shared dictionary past what this sidecar has persisted, and those
// terms still need flushing here.
func (st *Store) loadDictionary() error {
	f, err := iofault.Open(st.fs, st.dictPath)
	if err != nil {
		return fmt.Errorf("disk: open dictionary: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)

	magic := make([]byte, len(dictMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != dictMagic {
		return fmt.Errorf("disk: %s: bad dictionary header", st.dictPath)
	}
	count := 0
	for {
		n, err := binary.ReadUvarint(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("disk: dictionary log: %w", err)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return fmt.Errorf("disk: dictionary log truncated: %w", err)
		}
		term, err := rdf.TermFromKey(string(buf))
		if err != nil {
			return fmt.Errorf("disk: dictionary log: %w", err)
		}
		count++
		if got := st.dict.Encode(term); got != ID(count) {
			return fmt.Errorf("disk: %s: sidecar term %d maps to id %d — store disagrees with its dictionary (wrong shared instance?)",
				st.dictPath, count, got)
		}
	}
	st.persistedTerms = count
	return nil
}

// flushDictionary appends any terms encoded since the last flush.
func (st *Store) flushDictionary() error {
	n := st.dict.Len()
	if n == st.persistedTerms {
		return nil
	}
	f, err := st.fs.OpenFile(st.dictPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("disk: append dictionary: %w", err)
	}
	w := bufio.NewWriter(f)
	var lenBuf [binary.MaxVarintLen64]byte
	for id := st.persistedTerms + 1; id <= n; id++ {
		term, err := st.dict.Decode(ID(id))
		if err != nil {
			f.Close()
			return err
		}
		key := term.Key()
		m := binary.PutUvarint(lenBuf[:], uint64(len(key)))
		if _, err := w.Write(lenBuf[:m]); err != nil {
			f.Close()
			return err
		}
		if _, err := w.WriteString(key); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("disk: sync dictionary: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	st.persistedTerms = n
	return nil
}

// Dictionary returns the store's dictionary.
func (st *Store) Dictionary() *dictionary.Dictionary { return st.dict }

// FlushDictionary durably persists any terms encoded since the last
// flush, without touching the pagefile. Callers that are about to write
// id-encoded rows into the trees (the delta overlay's merge) call this
// first, so a buffer-pool eviction can never leak a tree page whose ids
// the dictionary sidecar does not durably map — the invariant that
// makes WAL replay's term re-encoding safe after a crash.
func (st *Store) FlushDictionary() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.flushDictionary()
}

// Dir returns the directory the store lives in.
func (st *Store) Dir() string { return st.dir }

// Len returns the number of distinct triples.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return int(st.trees[core.SPO].Len())
}

// permute reorders (s,p,o) into the key order of index ix.
func permute(ix core.Index, s, p, o ID) btree.Key {
	switch ix {
	case core.SPO:
		return btree.Key{uint64(s), uint64(p), uint64(o)}
	case core.SOP:
		return btree.Key{uint64(s), uint64(o), uint64(p)}
	case core.PSO:
		return btree.Key{uint64(p), uint64(s), uint64(o)}
	case core.POS:
		return btree.Key{uint64(p), uint64(o), uint64(s)}
	case core.OSP:
		return btree.Key{uint64(o), uint64(s), uint64(p)}
	default: // core.OPS
		return btree.Key{uint64(o), uint64(p), uint64(s)}
	}
}

// unpermute recovers (s,p,o) from a key of index ix.
func unpermute(ix core.Index, k btree.Key) (s, p, o ID) {
	switch ix {
	case core.SPO:
		return ID(k[0]), ID(k[1]), ID(k[2])
	case core.SOP:
		return ID(k[0]), ID(k[2]), ID(k[1])
	case core.PSO:
		return ID(k[1]), ID(k[0]), ID(k[2])
	case core.POS:
		return ID(k[2]), ID(k[0]), ID(k[1])
	case core.OSP:
		return ID(k[1]), ID(k[2]), ID(k[0])
	default: // core.OPS
		return ID(k[2]), ID(k[1]), ID(k[0])
	}
}

// Add inserts the triple ⟨s,p,o⟩ into all six trees. It reports whether
// the store changed (the SPO tree's verdict).
//
// All six trees are touched even when SPO already holds the key: each
// per-tree insert is idempotent, so re-applying an Add repairs a store
// whose trees diverged — e.g. a crash after buffer-pool eviction
// persisted some trees' pages but not others mid-flush. WAL replay and
// compaction retries rely on this self-healing property; with an
// early-out on the SPO verdict, a replayed op would be skipped as
// "already present" while the other five indexes still miss it.
func (st *Store) Add(s, p, o ID) (bool, error) {
	if s == None || p == None || o == None {
		return false, nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	added, err := st.trees[core.SPO].Insert(permute(core.SPO, s, p, o))
	if err != nil {
		return false, err
	}
	for _, ix := range core.AllIndexes[1:] {
		if _, err := st.trees[ix].Insert(permute(ix, s, p, o)); err != nil {
			return false, err
		}
	}
	if added {
		st.version.Add(1)
	}
	return added, nil
}

// Remove deletes the triple from all six trees. It reports whether the
// store changed (the SPO tree's verdict). Like Add, every tree is
// touched regardless of the SPO verdict, so re-applying a Remove
// finishes a half-applied deletion instead of skipping it.
func (st *Store) Remove(s, p, o ID) (bool, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	removed, err := st.trees[core.SPO].Delete(permute(core.SPO, s, p, o))
	if err != nil {
		return false, err
	}
	for _, ix := range core.AllIndexes[1:] {
		if _, err := st.trees[ix].Delete(permute(ix, s, p, o)); err != nil {
			return false, err
		}
	}
	if removed {
		st.version.Add(1)
	}
	return removed, nil
}

// Has reports whether the triple is present.
func (st *Store) Has(s, p, o ID) (bool, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.trees[core.SPO].Contains(permute(core.SPO, s, p, o))
}

// Match streams every triple matching the pattern to fn, with None as
// the wildcard, exactly like core.Store.Match. Each of the eight
// bound/unbound combinations becomes a prefix scan of the single best
// tree (§4.2 of the paper).
func (st *Store) Match(s, p, o ID, fn func(s, p, o ID) bool) error {
	st.mu.RLock()
	defer st.mu.RUnlock()

	emit := func(ix core.Index) func(btree.Key) bool {
		return func(k btree.Key) bool {
			ms, mp, mo := unpermute(ix, k)
			return fn(ms, mp, mo)
		}
	}
	switch {
	case s != None && p != None && o != None:
		ok, err := st.trees[core.SPO].Contains(permute(core.SPO, s, p, o))
		if err != nil {
			return err
		}
		if ok {
			fn(s, p, o)
		}
		return nil
	case s != None && p != None:
		return st.trees[core.SPO].ScanPrefix2(uint64(s), uint64(p), emit(core.SPO))
	case s != None && o != None:
		return st.trees[core.SOP].ScanPrefix2(uint64(s), uint64(o), emit(core.SOP))
	case p != None && o != None:
		return st.trees[core.POS].ScanPrefix2(uint64(p), uint64(o), emit(core.POS))
	case s != None:
		return st.trees[core.SPO].ScanPrefix1(uint64(s), emit(core.SPO))
	case p != None:
		return st.trees[core.PSO].ScanPrefix1(uint64(p), emit(core.PSO))
	case o != None:
		return st.trees[core.OSP].ScanPrefix1(uint64(o), emit(core.OSP))
	default:
		return st.trees[core.SPO].Scan(btree.Key{}, btree.MaxKey, emit(core.SPO))
	}
}

// AppendSortedList appends the sorted candidate values of the single
// None position of a 2-bound pattern to dst, materialized from one
// prefix scan of the tree whose key order ends in the free position —
// the pages stream the values already sorted, so building the list is a
// straight append. It implements the graph.SortedSource capability.
func (st *Store) AppendSortedList(dst []ID, s, p, o ID) ([]ID, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()

	var ix core.Index
	var a, b uint64
	switch {
	case s != None && p != None && o == None:
		ix, a, b = core.SPO, uint64(s), uint64(p)
	case s != None && p == None && o != None:
		ix, a, b = core.SOP, uint64(s), uint64(o)
	case s == None && p != None && o != None:
		ix, a, b = core.POS, uint64(p), uint64(o)
	default:
		return nil, fmt.Errorf("disk: AppendSortedList needs exactly two bound positions, got ⟨%d,%d,%d⟩", s, p, o)
	}
	if err := st.trees[ix].ScanPrefix2(a, b, func(k btree.Key) bool {
		dst = append(dst, ID(k[2]))
		return true
	}); err != nil {
		return nil, err
	}
	return dst, nil
}

// SortedPairs streams the two free positions of a 1-bound pattern in
// sorted order (first free position ascending, second ascending within
// it), from one prefix scan of the matching tree. It implements the
// graph.SortedSource capability.
func (st *Store) SortedPairs(s, p, o ID, fn func(a, b ID) bool) error {
	st.mu.RLock()
	defer st.mu.RUnlock()

	var ix core.Index
	var head uint64
	switch {
	case s != None && p == None && o == None:
		ix, head = core.SPO, uint64(s)
	case s == None && p != None && o == None:
		ix, head = core.PSO, uint64(p)
	case s == None && p == None && o != None:
		ix, head = core.OSP, uint64(o)
	default:
		return fmt.Errorf("disk: SortedPairs needs exactly one bound position, got ⟨%d,%d,%d⟩", s, p, o)
	}
	return st.trees[ix].ScanPrefix1(head, func(k btree.Key) bool {
		return fn(ID(k[1]), ID(k[2]))
	})
}

// Count returns the number of triples matching the pattern.
func (st *Store) Count(s, p, o ID) (int, error) {
	n := 0
	err := st.Match(s, p, o, func(_, _, _ ID) bool { n++; return true })
	return n, err
}

// AddTriple dictionary-encodes and inserts an rdf.Triple.
func (st *Store) AddTriple(t rdf.Triple) (added bool, err error) {
	if !t.Valid() {
		return false, nil
	}
	s, p, o := st.dict.EncodeTriple(t)
	return st.Add(s, p, o)
}

// DecodeMatch is Match with results decoded back to rdf.Triples.
func (st *Store) DecodeMatch(s, p, o ID, fn func(rdf.Triple) bool) error {
	var inner error
	err := st.Match(s, p, o, func(s, p, o ID) bool {
		t, derr := st.dict.DecodeTriple(s, p, o)
		if derr != nil {
			inner = derr
			return false
		}
		return fn(t)
	})
	if err != nil {
		return err
	}
	return inner
}

// BulkLoad replaces the contents of an empty store with the given
// triples, bulk-building each of the six trees from a sorted permutation.
// This is the fast path for loading a dataset from scratch.
func (st *Store) BulkLoad(triples [][3]ID) error {
	return st.BulkLoadParallel(triples, 1)
}

// BulkLoadParallel is BulkLoad with the CPU-bound half — permuting and
// sorting the six key arrays — spread over up to workers goroutines
// (workers <= 0 means runtime.GOMAXPROCS(0)). The tree builds themselves
// stay sequential: all six trees share one pagefile, and writing them one
// at a time keeps the buffer pool working on a single tree's pages. Key
// preparation runs ahead over a bounded channel, so at most two prepared
// key arrays are in memory beyond the one being built. The resulting
// store is identical to BulkLoad's for every worker count.
func (st *Store) BulkLoadParallel(triples [][3]ID, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.trees[core.SPO].Len() != 0 {
		return fmt.Errorf("disk: BulkLoad on non-empty store")
	}
	if workers == 1 {
		keys := make([]btree.Key, 0, len(triples))
		for _, ix := range core.AllIndexes {
			keys = keys[:0]
			for _, t := range triples {
				if t[0] == None || t[1] == None || t[2] == None {
					continue
				}
				keys = append(keys, permute(ix, t[0], t[1], t[2]))
			}
			sortKeys(keys)
			keys = dedupeKeys(keys)
			if err := st.trees[ix].BulkBuild(keys); err != nil {
				return err
			}
		}
		return nil
	}

	type prepared struct {
		ix   core.Index
		keys []btree.Key
	}
	ready := make(chan prepared, 1) // bounds prepared-but-unbuilt arrays
	sortWorkers := (workers + 1) / 2
	go func() {
		for _, ix := range core.AllIndexes {
			keys := make([]btree.Key, 0, len(triples))
			for _, t := range triples {
				if t[0] == None || t[1] == None || t[2] == None {
					continue
				}
				keys = append(keys, permute(ix, t[0], t[1], t[2]))
			}
			sortSliceWorkers(keys, sortWorkers)
			ready <- prepared{ix: ix, keys: dedupeKeys(keys)}
		}
		close(ready)
	}()
	var err error
	for p := range ready {
		if err != nil {
			continue // drain so the preparer can exit
		}
		err = st.trees[p.ix].BulkBuild(p.keys)
	}
	return err
}

// Flush persists all dirty pages and new dictionary terms durably: both
// the dictionary sidecar and the pagefile are fsynced, so a triple whose
// Add was followed by Flush survives an OS crash, not just a process
// exit. (Before this, Flush only wrote dirty pages into the OS cache —
// the durability gap the WAL/live-update work closed.)
func (st *Store) Flush() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.flushDictionary(); err != nil {
		return err
	}
	return st.pf.Sync()
}

// Close flushes durably and closes the store. The flush error, if any,
// is surfaced — Add/Remove calls without a later Flush are made durable
// here rather than silently dropped on the error path.
func (st *Store) Close() error {
	flushErr := st.Flush()
	closeErr := st.pf.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// FileStats reports buffer pool activity of the underlying pagefile.
func (st *Store) FileStats() pagefile.Stats { return st.pf.Stats() }

// NumPages returns the number of pages in the store file.
func (st *Store) NumPages() int { return st.pf.NumPages() }

// SizeBytes returns the on-disk footprint of the store (pages plus the
// dictionary log), for the memory/space experiments.
func (st *Store) SizeBytes() (int64, error) {
	var total int64
	for _, name := range []string{storeFile, dictFile} {
		fi, err := st.fs.Stat(filepath.Join(st.dir, name))
		if err != nil {
			return 0, err
		}
		total += fi.Size()
	}
	return total, nil
}

// CheckIntegrity validates every tree's structural invariants and that
// all six trees agree on the triple count.
func (st *Store) CheckIntegrity() error {
	st.mu.RLock()
	defer st.mu.RUnlock()
	want := st.trees[core.SPO].Len()
	for _, ix := range core.AllIndexes {
		if got := st.trees[ix].Len(); got != want {
			return fmt.Errorf("disk: index %v holds %d keys, %v holds %d", ix, got, core.SPO, want)
		}
		if err := st.trees[ix].CheckInvariants(); err != nil {
			return fmt.Errorf("disk: index %v: %w", ix, err)
		}
	}
	return nil
}

func sortKeys(keys []btree.Key) {
	// Three-pass LSD radix-style sort would be overkill; use sort.Slice.
	sortSlice(keys)
}

func dedupeKeys(keys []btree.Key) []btree.Key {
	if len(keys) < 2 {
		return keys
	}
	w := 1
	for r := 1; r < len(keys); r++ {
		if btree.Compare(keys[r], keys[w-1]) != 0 {
			keys[w] = keys[r]
			w++
		}
	}
	return keys[:w]
}
