package disk

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"hexastore/internal/core"
	"hexastore/internal/rdf"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	st, err := Create(t.TempDir(), Options{CacheSize: 64})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func mustAdd(t *testing.T, st *Store, s, p, o ID) {
	t.Helper()
	added, err := st.Add(s, p, o)
	if err != nil {
		t.Fatalf("Add(%d,%d,%d): %v", s, p, o, err)
	}
	if !added {
		t.Fatalf("Add(%d,%d,%d) = false, want true", s, p, o)
	}
}

func matchAll(t *testing.T, st *Store, s, p, o ID) [][3]ID {
	t.Helper()
	var out [][3]ID
	if err := st.Match(s, p, o, func(s, p, o ID) bool {
		out = append(out, [3]ID{s, p, o})
		return true
	}); err != nil {
		t.Fatalf("Match(%d,%d,%d): %v", s, p, o, err)
	}
	return out
}

func TestCreateRejectsExistingStore(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := Create(dir, Options{}); err == nil {
		t.Fatal("second Create in same dir succeeded")
	}
}

func TestAddHasRemove(t *testing.T) {
	st := newStore(t)
	mustAdd(t, st, 1, 2, 3)
	ok, err := st.Has(1, 2, 3)
	if err != nil || !ok {
		t.Fatalf("Has = (%v, %v)", ok, err)
	}
	added, err := st.Add(1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if added {
		t.Fatal("duplicate Add = true")
	}
	removed, err := st.Remove(1, 2, 3)
	if err != nil || !removed {
		t.Fatalf("Remove = (%v, %v)", removed, err)
	}
	ok, _ = st.Has(1, 2, 3)
	if ok {
		t.Fatal("Has after Remove = true")
	}
	removed, err = st.Remove(1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if removed {
		t.Fatal("second Remove = true")
	}
	if err := st.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestAddRejectsWildcards(t *testing.T) {
	st := newStore(t)
	added, err := st.Add(None, 1, 2)
	if err != nil || added {
		t.Fatalf("Add with None subject = (%v, %v)", added, err)
	}
	if st.Len() != 0 {
		t.Fatalf("Len = %d, want 0", st.Len())
	}
}

// TestMatchAllPatternsAgainstCore loads identical random data into a disk
// store and the in-memory core store and verifies every one of the eight
// bound/unbound pattern shapes returns identical triple sets.
func TestMatchAllPatternsAgainstCore(t *testing.T) {
	ds := newStore(t)
	ms := core.New()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 3000; i++ {
		s, p, o := ID(rng.Intn(40)+1), ID(rng.Intn(12)+1), ID(rng.Intn(60)+1)
		_, err := ds.Add(s, p, o)
		if err != nil {
			t.Fatal(err)
		}
		ms.Add(s, p, o)
	}
	if ds.Len() != ms.Len() {
		t.Fatalf("disk Len = %d, core Len = %d", ds.Len(), ms.Len())
	}

	patterns := [][3]ID{
		{5, 3, 9}, {5, 3, None}, {5, None, 9}, {None, 3, 9},
		{5, None, None}, {None, 3, None}, {None, None, 9}, {None, None, None},
		{999, None, None}, // absent head
	}
	for _, pat := range patterns {
		got := matchAll(t, ds, pat[0], pat[1], pat[2])
		want := ms.Triples(pat[0], pat[1], pat[2])
		if len(got) != len(want) {
			t.Fatalf("pattern %v: disk %d triples, core %d", pat, len(got), len(want))
		}
		wantSet := make(map[[3]ID]bool, len(want))
		for _, tr := range want {
			wantSet[tr] = true
		}
		for _, tr := range got {
			if !wantSet[tr] {
				t.Fatalf("pattern %v: disk produced %v not in core", pat, tr)
			}
		}
	}
}

func TestMatchEarlyStop(t *testing.T) {
	st := newStore(t)
	for i := ID(1); i <= 100; i++ {
		mustAdd(t, st, i, 1, i+1)
	}
	n := 0
	if err := st.Match(None, 1, None, func(_, _, _ ID) bool {
		n++
		return n < 5
	}); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("early-stopped Match visited %d, want 5", n)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	alice := rdf.NewIRI("alice")
	knows := rdf.NewIRI("knows")
	bob := rdf.NewIRI("bob")
	carol := rdf.NewIRI("carol")
	if _, err := st.AddTriple(rdf.T(alice, knows, bob)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddTriple(rdf.T(bob, knows, carol)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st2.Close()
	if st2.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2", st2.Len())
	}
	// The dictionary must have been replayed with identical ids: looking
	// up the same terms must find the persisted triples.
	aid, ok := st2.Dictionary().Lookup(alice)
	if !ok {
		t.Fatal("alice not in reopened dictionary")
	}
	kid, _ := st2.Dictionary().Lookup(knows)
	bid, _ := st2.Dictionary().Lookup(bob)
	has, err := st2.Has(aid, kid, bid)
	if err != nil || !has {
		t.Fatalf("Has(alice,knows,bob) after reopen = (%v, %v)", has, err)
	}
	// Decoding must round-trip.
	var decoded []rdf.Triple
	if err := st2.DecodeMatch(None, None, None, func(tr rdf.Triple) bool {
		decoded = append(decoded, tr)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 2 {
		t.Fatalf("decoded %d triples, want 2", len(decoded))
	}
	if err := st2.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestDictionaryGrowsAfterReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddTriple(rdf.T(rdf.NewIRI("a"), rdf.NewIRI("p"), rdf.NewIRI("b"))); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.AddTriple(rdf.T(rdf.NewIRI("c"), rdf.NewIRI("p"), rdf.NewIRI("d"))); err != nil {
		t.Fatal(err)
	}
	st2.Close()

	st3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if st3.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st3.Len())
	}
	if st3.Dictionary().Len() != 5 { // a p b c d
		t.Fatalf("dictionary Len = %d, want 5", st3.Dictionary().Len())
	}
	cid, ok := st3.Dictionary().Lookup(rdf.NewIRI("c"))
	if !ok {
		t.Fatal("term added in second session missing after third open")
	}
	n, err := st3.Count(cid, None, None)
	if err != nil || n != 1 {
		t.Fatalf("Count(c,?,?) = (%d, %v), want 1", n, err)
	}
}

func TestBulkLoad(t *testing.T) {
	st := newStore(t)
	var triples [][3]ID
	rng := rand.New(rand.NewSource(5))
	seen := make(map[[3]ID]bool)
	for i := 0; i < 5000; i++ {
		tr := [3]ID{ID(rng.Intn(50) + 1), ID(rng.Intn(10) + 1), ID(rng.Intn(80) + 1)}
		triples = append(triples, tr)
		seen[tr] = true
	}
	// Include a duplicate and an invalid triple: both must be ignored.
	triples = append(triples, triples[0], [3]ID{None, 1, 1})
	if err := st.BulkLoad(triples); err != nil {
		t.Fatalf("BulkLoad: %v", err)
	}
	if st.Len() != len(seen) {
		t.Fatalf("Len = %d, want %d distinct", st.Len(), len(seen))
	}
	if err := st.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	// Every loaded triple must be findable through every pattern shape.
	for tr := range seen {
		ok, err := st.Has(tr[0], tr[1], tr[2])
		if err != nil || !ok {
			t.Fatalf("Has(%v) after BulkLoad = (%v, %v)", tr, ok, err)
		}
	}
	// And the store must accept further incremental inserts.
	mustAdd(t, st, 900, 900, 900)
	if err := st.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestBulkLoadParallelIdentical loads the same triples sequentially and
// with several worker counts, requiring byte-identical scans: the
// parallel path only moves the permute+sort work onto goroutines, so
// tree contents (and even page layout, since builds stay sequential and
// in index order) must not depend on the worker count.
func TestBulkLoadParallelIdentical(t *testing.T) {
	var triples [][3]ID
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 20_000; i++ {
		triples = append(triples, [3]ID{ID(rng.Intn(300) + 1), ID(rng.Intn(12) + 1), ID(rng.Intn(400) + 1)})
	}
	triples = append(triples, [3]ID{1, None, 1}) // invalid: skipped

	scan := func(st *Store) [][3]ID {
		var out [][3]ID
		if err := st.Match(None, None, None, func(s, p, o ID) bool {
			out = append(out, [3]ID{s, p, o})
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}

	ref := newStore(t)
	if err := ref.BulkLoad(triples); err != nil {
		t.Fatalf("BulkLoad: %v", err)
	}
	want := scan(ref)

	for _, workers := range []int{2, 8} {
		st := newStore(t)
		if err := st.BulkLoadParallel(triples, workers); err != nil {
			t.Fatalf("BulkLoadParallel(%d): %v", workers, err)
		}
		if err := st.CheckIntegrity(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := scan(st)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d triples, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: triple %d = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestBulkLoadRejectsNonEmpty(t *testing.T) {
	st := newStore(t)
	mustAdd(t, st, 1, 2, 3)
	if err := st.BulkLoad([][3]ID{{4, 5, 6}}); err == nil {
		t.Fatal("BulkLoad on non-empty store succeeded")
	}
}

func TestCorruptedDictionaryDetected(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddTriple(rdf.T(rdf.NewIRI("x"), rdf.NewIRI("y"), rdf.NewIRI("z"))); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Truncate the dictionary log mid-entry.
	path := filepath.Join(dir, dictFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open with truncated dictionary succeeded")
	}
}

func TestOpenMissingDir(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "absent"), Options{}); err == nil {
		t.Fatal("Open of missing store succeeded")
	}
}

func TestSizeBytes(t *testing.T) {
	st := newStore(t)
	for i := ID(1); i <= 200; i++ {
		mustAdd(t, st, i, i%7+1, i%13+1)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	n, err := st.SizeBytes()
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("SizeBytes = %d, want > 0", n)
	}
}

func TestCountMatchesMatch(t *testing.T) {
	st := newStore(t)
	for i := ID(1); i <= 50; i++ {
		mustAdd(t, st, i%5+1, i%3+1, i)
	}
	n, err := st.Count(None, 2, None)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(matchAll(t, st, None, 2, None)); got != n {
		t.Fatalf("Count = %d but Match produced %d", n, got)
	}
}

// TestConcurrentReaders exercises the disk store's concurrency contract:
// parallel readers against a concurrent writer must not race (run with
// -race) and reads must never observe torn results.
func TestConcurrentReaders(t *testing.T) {
	st := newStore(t)
	for i := ID(1); i <= 200; i++ {
		mustAdd(t, st, i, i%5+1, i%9+1)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := ID(201); i <= 400; i++ {
			if _, err := st.Add(i, i%5+1, i%9+1); err != nil {
				t.Errorf("Add: %v", err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		go func() {
			for i := 0; i < 100; i++ {
				n, err := st.Count(None, 3, None)
				if err != nil {
					t.Errorf("Count: %v", err)
					return
				}
				if n < 0 || n > 400 {
					t.Errorf("Count out of range: %d", n)
					return
				}
			}
		}()
	}
	<-done
	if st.Len() != 400 {
		t.Fatalf("Len = %d, want 400", st.Len())
	}
	if err := st.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}
