package disk

import (
	"sort"

	"hexastore/internal/btree"
)

// sortSlice sorts keys lexicographically in place.
func sortSlice(keys []btree.Key) {
	sort.Slice(keys, func(i, j int) bool { return btree.Less(keys[i], keys[j]) })
}
