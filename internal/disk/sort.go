package disk

import (
	"hexastore/internal/btree"
	"hexastore/internal/idlist"
)

// sortSlice sorts keys lexicographically in place.
func sortSlice(keys []btree.Key) { sortSliceWorkers(keys, 1) }

// sortSliceWorkers sorts keys lexicographically in place using up to
// workers goroutines (chunk sort + pairwise merges; see
// idlist.ParallelSortFunc). The comparator is total, so the output is
// identical for every worker count.
func sortSliceWorkers(keys []btree.Key, workers int) {
	idlist.ParallelSortFunc(keys, workers, btree.Compare)
}
