package govern

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseBytes parses a human-readable byte size for the -mem-budget
// flags: a number with an optional K/M/G/T suffix (powers of 1024,
// case-insensitive, optional trailing "B" or "iB"). Fractions are
// allowed with a suffix ("1.5G"); the empty string parses to 0
// (unlimited).
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, nil
	}
	u := strings.ToUpper(t)
	u = strings.TrimSuffix(u, "IB")
	u = strings.TrimSuffix(u, "B")
	mult := int64(1)
	if n := len(u); n > 0 {
		switch u[n-1] {
		case 'K':
			mult = 1 << 10
		case 'M':
			mult = 1 << 20
		case 'G':
			mult = 1 << 30
		case 'T':
			mult = 1 << 40
		}
		if mult > 1 {
			u = u[:n-1]
		}
	}
	if mult == 1 {
		n, err := strconv.ParseInt(u, 10, 64)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("invalid byte size %q", s)
		}
		return n, nil
	}
	f, err := strconv.ParseFloat(u, 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("invalid byte size %q", s)
	}
	return int64(f * float64(mult)), nil
}
