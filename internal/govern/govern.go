// Package govern is the query governor: the resource-control layer that
// keeps one pathological query from taking the whole process down with
// it. It has three independent pieces that the execution layers compose:
//
//   - Meter: per-query byte accounting for binding-table growth. The
//     batch engine reports every materialization; a soft budget tells it
//     when to spill partitions to disk, and a hard cap turns would-be
//     OOMs into a typed ErrBudgetExceeded the serving tier can map to a
//     clean 503.
//
//   - Governor: server-level admission control — a concurrency gate with
//     a bounded, deadline-aware wait queue. Excess load queues briefly
//     and then sheds with ErrRejected instead of stacking goroutines
//     without bound.
//
//   - Counters: the governor aggregates per-query outcomes (canceled,
//     budget kills, spilled bytes, slow queries) for /stats, and owns the
//     slow-query log.
//
// The package is deliberately dependency-free (stdlib only) so every
// layer — sparql, server, facade, cmds — can import it without cycles.
package govern

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrBudgetExceeded is returned (possibly wrapped) when a query's memory
// accounting crosses its hard cap and spilling cannot bring it back
// under. Callers match it with errors.Is; the HTTP layer maps it to
// 503 + Retry-After.
var ErrBudgetExceeded = errors.New("query memory budget exceeded")

// ErrRejected is returned by Governor.Acquire when the server is at
// capacity and the wait queue is full or the wait timed out. The HTTP
// layer maps it to 503 + Retry-After.
var ErrRejected = errors.New("server at query capacity")

// Meter accounts one query's engine-resident bytes. The zero budget
// disables the corresponding limit, and every method is safe on a nil
// receiver (accounting simply vanishes), so call sites never branch.
//
// Budget is the soft limit: the spill threshold. Hard is the kill limit:
// Grow fails with ErrBudgetExceeded once in-memory accounting would
// cross it. Both are advisory byte counts, not allocator truth — the
// engine reports 8 bytes per binding-table cell plus result-row
// estimates, which tracks the dominant allocations.
type Meter struct {
	budget int64
	hard   int64

	used    atomic.Int64
	peak    atomic.Int64
	spilled atomic.Int64
}

// NewMeter returns a meter with the given soft budget and hard cap, in
// bytes. budget <= 0 means "never spill"; hard <= 0 means "never kill".
// A typical configuration sets hard to a small multiple of budget so
// spillable state streams to disk and only unspillable growth (final
// result rows) can kill the query.
func NewMeter(budget, hard int64) *Meter {
	return &Meter{budget: budget, hard: hard}
}

// Budget returns the soft (spill) threshold in bytes; 0 = unlimited.
func (m *Meter) Budget() int64 {
	if m == nil {
		return 0
	}
	return m.budget
}

// Grow accounts n more live bytes. It fails with an error wrapping
// ErrBudgetExceeded if the new total would cross the hard cap; the
// accounting is NOT applied on failure.
func (m *Meter) Grow(n int64) error {
	if m == nil || n == 0 {
		return nil
	}
	for {
		cur := m.used.Load()
		next := cur + n
		if m.hard > 0 && next > m.hard {
			return fmt.Errorf("%w: %d bytes needed, cap %d", ErrBudgetExceeded, next, m.hard)
		}
		if m.used.CompareAndSwap(cur, next) {
			for {
				p := m.peak.Load()
				if next <= p || m.peak.CompareAndSwap(p, next) {
					return nil
				}
			}
		}
	}
}

// Shrink releases n previously grown bytes.
func (m *Meter) Shrink(n int64) {
	if m == nil || n == 0 {
		return
	}
	m.used.Add(-n)
}

// OverBudget reports whether current accounting exceeds the soft
// budget — the engine's cue to spill.
func (m *Meter) OverBudget() bool {
	return m != nil && m.budget > 0 && m.used.Load() > m.budget
}

// WouldExceed reports whether growing by n would cross the soft budget.
func (m *Meter) WouldExceed(n int64) bool {
	return m != nil && m.budget > 0 && m.used.Load()+n > m.budget
}

// NoteSpill records n bytes written to spill files.
func (m *Meter) NoteSpill(n int64) {
	if m == nil {
		return
	}
	m.spilled.Add(n)
}

// Used returns the currently accounted live bytes.
func (m *Meter) Used() int64 {
	if m == nil {
		return 0
	}
	return m.used.Load()
}

// Peak returns the high-water mark of accounted live bytes.
func (m *Meter) Peak() int64 {
	if m == nil {
		return 0
	}
	return m.peak.Load()
}

// Spilled returns the total bytes written to spill files.
func (m *Meter) Spilled() int64 {
	if m == nil {
		return 0
	}
	return m.spilled.Load()
}

// Config parameterizes a Governor.
type Config struct {
	// MaxConcurrent caps queries executing at once; <= 0 means
	// unlimited (admission control off, counters still collected).
	MaxConcurrent int
	// MaxQueue bounds how many queries may wait for a slot; arrivals
	// beyond it are rejected immediately. <= 0 disables queueing:
	// a full server rejects on arrival.
	MaxQueue int
	// QueueTimeout bounds how long a queued query waits for a slot
	// before ErrRejected. The wait is additionally deadline-aware: a
	// context that expires sooner ends the wait with the context's
	// error. <= 0 with MaxQueue > 0 means "wait until ctx expires".
	QueueTimeout time.Duration
	// SlowQuery logs queries (via Logf) whose total latency meets or
	// exceeds it; 0 disables the slow-query log.
	SlowQuery time.Duration
	// Logf receives slow-query lines; nil discards them.
	Logf func(format string, args ...any)
}

// Stats is a point-in-time snapshot of governor counters for /stats.
type Stats struct {
	MaxConcurrent int   `json:"maxConcurrent"`
	Active        int64 `json:"active"`
	Queued        int64 `json:"queued"`
	Admitted      int64 `json:"admitted"`
	Rejected      int64 `json:"rejected"`
	Canceled      int64 `json:"canceled"`
	BudgetKills   int64 `json:"budgetKills"`
	SpilledBytes  int64 `json:"spilledBytes"`
	SlowQueries   int64 `json:"slowQueries"`
}

// Governor is the server-side admission controller and per-query
// outcome aggregator. All methods are safe for concurrent use.
type Governor struct {
	cfg Config
	sem chan struct{}

	active      atomic.Int64
	queued      atomic.Int64
	admitted    atomic.Int64
	rejected    atomic.Int64
	canceled    atomic.Int64
	budgetKills atomic.Int64
	spilled     atomic.Int64
	slow        atomic.Int64
}

// New returns a governor for cfg.
func New(cfg Config) *Governor {
	g := &Governor{cfg: cfg}
	if cfg.MaxConcurrent > 0 {
		g.sem = make(chan struct{}, cfg.MaxConcurrent)
	}
	return g
}

// Acquire admits one query, blocking in the bounded wait queue when the
// server is at capacity. On success it returns a release func the
// caller must invoke exactly once when the query finishes. It fails
// with ErrRejected (queue full or wait timed out) or the context's
// error (caller gone or deadline passed while queued).
func (g *Governor) Acquire(ctx context.Context) (release func(), err error) {
	if g == nil || g.sem == nil {
		if g != nil {
			g.admitted.Add(1)
			g.active.Add(1)
			return func() { g.active.Add(-1) }, nil
		}
		return func() {}, nil
	}
	select {
	case g.sem <- struct{}{}:
		g.admitted.Add(1)
		g.active.Add(1)
		return g.release, nil
	default:
	}
	// At capacity: join the bounded queue.
	if g.cfg.MaxQueue <= 0 || g.queued.Load() >= int64(g.cfg.MaxQueue) {
		g.rejected.Add(1)
		return nil, fmt.Errorf("%w: %d active", ErrRejected, g.cfg.MaxConcurrent)
	}
	g.queued.Add(1)
	defer g.queued.Add(-1)

	var timeout <-chan time.Time
	if g.cfg.QueueTimeout > 0 {
		t := time.NewTimer(g.cfg.QueueTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case g.sem <- struct{}{}:
		g.admitted.Add(1)
		g.active.Add(1)
		return g.release, nil
	case <-timeout:
		g.rejected.Add(1)
		return nil, fmt.Errorf("%w: queue wait exceeded %s", ErrRejected, g.cfg.QueueTimeout)
	case <-ctx.Done():
		g.rejected.Add(1)
		return nil, ctx.Err()
	}
}

func (g *Governor) release() {
	g.active.Add(-1)
	<-g.sem
}

// Observe records one finished query's outcome: its error class feeds
// the canceled/budget-kill counters, its meter feeds spilled bytes, and
// queries at or over the slow-query threshold are logged. query is
// truncated for the log; m may be nil. Optional detail strings (e.g.
// the query trace's most expensive spans) are appended to the
// slow-query line so the log explains the latency, not just reports it.
func (g *Governor) Observe(query string, d time.Duration, err error, m *Meter, detail ...string) {
	if g == nil {
		return
	}
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		g.canceled.Add(1)
	case errors.Is(err, ErrBudgetExceeded):
		g.budgetKills.Add(1)
	}
	if n := m.Spilled(); n > 0 {
		g.spilled.Add(n)
	}
	if g.cfg.SlowQuery > 0 && d >= g.cfg.SlowQuery {
		g.slow.Add(1)
		if g.cfg.Logf != nil {
			outcome := "ok"
			if err != nil {
				outcome = err.Error()
			}
			extra := ""
			for _, dt := range detail {
				if dt != "" {
					extra += " [" + dt + "]"
				}
			}
			g.cfg.Logf("slow query (%s, peak %dB, spilled %dB, %s): %s%s",
				d.Round(time.Millisecond), m.Peak(), m.Spilled(), outcome, truncate(query, 200), extra)
		}
	}
}

// Stats returns a snapshot of the counters.
func (g *Governor) Stats() Stats {
	if g == nil {
		return Stats{}
	}
	return Stats{
		MaxConcurrent: g.cfg.MaxConcurrent,
		Active:        g.active.Load(),
		Queued:        g.queued.Load(),
		Admitted:      g.admitted.Load(),
		Rejected:      g.rejected.Load(),
		Canceled:      g.canceled.Load(),
		BudgetKills:   g.budgetKills.Load(),
		SpilledBytes:  g.spilled.Load(),
		SlowQueries:   g.slow.Load(),
	}
}

// truncate shortens s to at most n bytes for log lines.
func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
