package govern

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMeterGrowShrinkPeak(t *testing.T) {
	m := NewMeter(100, 200)
	if err := m.Grow(80); err != nil {
		t.Fatalf("Grow(80): %v", err)
	}
	if m.OverBudget() {
		t.Fatalf("80/100 should not be over budget")
	}
	if err := m.Grow(60); err != nil {
		t.Fatalf("Grow(60): %v", err)
	}
	if !m.OverBudget() {
		t.Fatalf("140/100 should be over budget")
	}
	m.Shrink(100)
	if got := m.Used(); got != 40 {
		t.Fatalf("Used = %d, want 40", got)
	}
	if got := m.Peak(); got != 140 {
		t.Fatalf("Peak = %d, want 140", got)
	}
	// Hard cap: 40 + 200 > 200 fails, accounting unchanged.
	err := m.Grow(200)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Grow over hard cap = %v, want ErrBudgetExceeded", err)
	}
	if got := m.Used(); got != 40 {
		t.Fatalf("failed Grow must not account: Used = %d, want 40", got)
	}
}

func TestMeterNilSafe(t *testing.T) {
	var m *Meter
	if err := m.Grow(1 << 40); err != nil {
		t.Fatalf("nil meter Grow: %v", err)
	}
	m.Shrink(5)
	m.NoteSpill(5)
	if m.OverBudget() || m.WouldExceed(1) || m.Used() != 0 || m.Peak() != 0 || m.Spilled() != 0 || m.Budget() != 0 {
		t.Fatalf("nil meter must report zeroes")
	}
}

func TestMeterConcurrent(t *testing.T) {
	m := NewMeter(0, 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				if err := m.Grow(3); err != nil {
					t.Error(err)
					return
				}
				m.Shrink(1)
			}
		}()
	}
	wg.Wait()
	if got := m.Used(); got != 8*1000*2 {
		t.Fatalf("Used = %d, want %d", got, 8*1000*2)
	}
	if m.Peak() < m.Used() {
		t.Fatalf("Peak %d < Used %d", m.Peak(), m.Used())
	}
}

func TestGovernorUnlimited(t *testing.T) {
	g := New(Config{})
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if got := g.Stats().Active; got != 1 {
		t.Fatalf("Active = %d, want 1", got)
	}
	rel()
	if got := g.Stats().Active; got != 0 {
		t.Fatalf("Active after release = %d, want 0", got)
	}
}

func TestGovernorRejectsAtCapacity(t *testing.T) {
	g := New(Config{MaxConcurrent: 1}) // MaxQueue 0: reject on arrival
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrRejected) {
		t.Fatalf("second Acquire = %v, want ErrRejected", err)
	}
	rel()
	rel2, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire after release: %v", err)
	}
	rel2()
	st := g.Stats()
	if st.Admitted != 2 || st.Rejected != 1 {
		t.Fatalf("Admitted/Rejected = %d/%d, want 2/1", st.Admitted, st.Rejected)
	}
}

func TestGovernorQueueTimeout(t *testing.T) {
	g := New(Config{MaxConcurrent: 1, MaxQueue: 4, QueueTimeout: 20 * time.Millisecond})
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	defer rel()
	start := time.Now()
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrRejected) {
		t.Fatalf("queued Acquire = %v, want ErrRejected", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("queue timeout fired after %s, want ~20ms", d)
	}
}

func TestGovernorQueueDeadlineAware(t *testing.T) {
	g := New(Config{MaxConcurrent: 1, MaxQueue: 4, QueueTimeout: time.Minute})
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := g.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued Acquire = %v, want DeadlineExceeded", err)
	}
}

func TestGovernorQueueAdmitsWhenFreed(t *testing.T) {
	g := New(Config{MaxConcurrent: 1, MaxQueue: 4, QueueTimeout: time.Minute})
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		rel2, err := g.Acquire(context.Background())
		if err == nil {
			rel2()
		}
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	rel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("queued Acquire: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatalf("queued Acquire never admitted after release")
	}
}

func TestObserveCounters(t *testing.T) {
	var logged []string
	g := New(Config{SlowQuery: time.Millisecond, Logf: func(f string, a ...any) {
		logged = append(logged, f)
	}})
	m := NewMeter(10, 20)
	m.NoteSpill(512)
	g.Observe("SELECT 1", 5*time.Millisecond, nil, m)
	g.Observe("SELECT 2", 0, context.Canceled, nil)
	g.Observe("SELECT 3", 0, context.DeadlineExceeded, nil)
	g.Observe("SELECT 4", 0, ErrBudgetExceeded, nil)
	st := g.Stats()
	if st.Canceled != 2 {
		t.Fatalf("Canceled = %d, want 2", st.Canceled)
	}
	if st.BudgetKills != 1 {
		t.Fatalf("BudgetKills = %d, want 1", st.BudgetKills)
	}
	if st.SpilledBytes != 512 {
		t.Fatalf("SpilledBytes = %d, want 512", st.SpilledBytes)
	}
	if st.SlowQueries != 1 || len(logged) != 1 {
		t.Fatalf("SlowQueries = %d (%d log lines), want 1/1", st.SlowQueries, len(logged))
	}
}

func TestTruncate(t *testing.T) {
	if got := truncate(strings.Repeat("x", 300), 200); len(got) != 203 {
		t.Fatalf("truncate length = %d, want 203", len(got))
	}
}

func TestNilGovernor(t *testing.T) {
	var g *Governor
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("nil governor Acquire: %v", err)
	}
	rel()
	g.Observe("q", 0, nil, nil)
	if g.Stats() != (Stats{}) {
		t.Fatalf("nil governor stats must be zero")
	}
}
