package graph_test

import (
	"fmt"
	"math/rand"
	"testing"

	"hexastore/internal/core"
	"hexastore/internal/delta"
	"hexastore/internal/disk"
	"hexastore/internal/graph"
	"hexastore/internal/rdf"
	"hexastore/internal/sparql"
	"hexastore/internal/triplestore"
)

// randTriples generates n random triples over a small universe, so
// terminal lists get real lengths and patterns hit often.
func randTriples(rng *rand.Rand, n int) []rdf.Triple {
	out := make([]rdf.Triple, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, rdf.T(
			ex(fmt.Sprintf("s%d", rng.Intn(25))),
			ex(fmt.Sprintf("p%d", rng.Intn(6))),
			ex(fmt.Sprintf("o%d", rng.Intn(30))),
		))
	}
	return out
}

// compressionQueries is the query mix the compressed and raw layouts
// must agree on: merge-intersect steps, expansions, repeated
// variables, DISTINCT, OPTIONAL, aggregation and full scans.
func compressionQueries(rng *rand.Rand) []string {
	c := func(n int) string { return fmt.Sprintf("<http://ex/%s%d>", "s", rng.Intn(25)) }
	return []string{
		`SELECT ?s ?p ?o WHERE { ?s ?p ?o }`,
		`SELECT ?s WHERE { ?s <http://ex/p0> ?o . ?o <http://ex/p1> ?x }`,
		`SELECT ?a ?b WHERE { ?a <http://ex/p2> ?b . ?b <http://ex/p2> ?a }`,
		`SELECT DISTINCT ?o WHERE { ?s <http://ex/p3> ?o }`,
		`SELECT ?s ?x WHERE { ?s <http://ex/p0> ?x OPTIONAL { ?x <http://ex/p4> ?y } }`,
		`SELECT ?p (COUNT(?o) AS ?n) WHERE { ` + c(25) + ` ?p ?o } GROUP BY ?p`,
		`ASK { ` + c(25) + ` ?p ?o }`,
		`SELECT ?x WHERE { ?x ?p ?x }`,
		`SELECT ?s WHERE { ?s <http://ex/p1> <http://ex/o3> . ?s <http://ex/p0> ?o } LIMIT 7`,
	}
}

// compareAll evaluates each query on every graph and requires
// identical canonical results.
func compareAll(t *testing.T, gs map[string]graph.Graph, queries []string, tag string) {
	t.Helper()
	for _, q := range queries {
		var refName, refCanon string
		for name, g := range gs {
			res, err := sparql.Exec(g, q)
			if err != nil {
				t.Fatalf("%s: %s: query %q: %v", tag, name, q, err)
			}
			got := canon(res)
			if refName == "" {
				refName, refCanon = name, got
				continue
			}
			if got != refCanon {
				t.Fatalf("%s: %s disagrees with %s on %q:\n%s\nvs\n%s", tag, name, refName, q, got, refCanon)
			}
		}
	}
}

// TestCompressionDifferentialMemory asserts the block-compressed and
// raw memory layouts answer every query identically — before and after
// SPARQL UPDATEs (the first UPDATE decompresses the compressed store in
// place, which must be invisible to results).
func TestCompressionDifferentialMemory(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		triples := randTriples(rng, 400)

		build := func(compress bool) graph.Graph {
			b := core.NewBuilder(nil)
			b.SetCompression(compress)
			for _, tr := range triples {
				b.AddTriple(tr)
			}
			return graph.Memory(b.BuildParallel(1 + int(seed)%3))
		}
		base := graph.Baseline(triplestore.New(nil))
		for _, tr := range triples {
			if _, err := graph.AddTriple(base, tr); err != nil {
				t.Fatal(err)
			}
		}
		gs := map[string]graph.Graph{
			"compressed": build(true),
			"raw":        build(false),
			"baseline":   base,
		}
		if st, ok := graph.Unwrap(gs["compressed"]).(*core.Store); !ok || !st.Compressed() {
			t.Fatal("compressed build is not compressed")
		}
		queries := compressionQueries(rng)
		compareAll(t, gs, queries, fmt.Sprintf("seed %d pre-update", seed))

		// Random UPDATE batch applied to all three; the compressed
		// store converts to raw on the first write.
		ins := randTriples(rng, 30)
		del := triples[:20]
		update := "INSERT DATA {"
		for _, tr := range ins {
			update += fmt.Sprintf(" %s %s %s .", tr.Subject, tr.Predicate, tr.Object)
		}
		update += " }; DELETE DATA {"
		for _, tr := range del {
			update += fmt.Sprintf(" %s %s %s .", tr.Subject, tr.Predicate, tr.Object)
		}
		update += " }"
		for name, g := range gs {
			if _, err := sparql.ExecUpdate(g, update); err != nil {
				t.Fatalf("seed %d: %s: update: %v", seed, name, err)
			}
		}
		compareAll(t, gs, queries, fmt.Sprintf("seed %d post-update", seed))
	}
}

// TestCompressionDifferentialDisk asserts compressed and raw B+-tree
// leaves hold the same graph: bulk load, then random in-place
// mutations (re-encodes and leaf bursts on the compressed side),
// integrity checks, and query equivalence.
func TestCompressionDifferentialDisk(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	triples := randTriples(rng, 600)

	stores := map[string]*disk.Store{}
	for name, unc := range map[string]bool{"disk-compressed": false, "disk-raw": true} {
		ds, err := disk.Create(t.TempDir(), disk.Options{CacheSize: 32, Uncompressed: unc})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ds.Close() })
		var encoded [][3]graph.ID
		for _, tr := range triples {
			s, p, o := ds.Dictionary().EncodeTriple(tr)
			encoded = append(encoded, [3]graph.ID{s, p, o})
		}
		if err := ds.BulkLoad(encoded); err != nil {
			t.Fatal(err)
		}
		stores[name] = ds
	}

	gs := map[string]graph.Graph{
		"disk-compressed": graph.Disk(stores["disk-compressed"]),
		"disk-raw":        graph.Disk(stores["disk-raw"]),
	}
	queries := compressionQueries(rng)
	compareAll(t, gs, queries, "disk pre-mutation")

	// Random mutations through the graph API: both stores must agree
	// on every verdict.
	for i := 0; i < 300; i++ {
		tr := randTriples(rng, 1)[0]
		del := rng.Intn(2) == 0
		var want bool
		for j, name := range []string{"disk-compressed", "disk-raw"} {
			var changed bool
			var err error
			if del {
				changed, err = graph.RemoveTriple(gs[name], tr)
			} else {
				changed, err = graph.AddTriple(gs[name], tr)
			}
			if err != nil {
				t.Fatalf("%s: mutation %d: %v", name, i, err)
			}
			if j == 0 {
				want = changed
			} else if changed != want {
				t.Fatalf("mutation %d (%v del=%v): verdicts differ", i, tr, del)
			}
		}
	}
	for name, ds := range stores {
		if err := ds.CheckIntegrity(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	compareAll(t, gs, queries, "disk post-mutation")
}

// TestCompressionDifferentialOverlay asserts a delta overlay over a
// compressed main agrees with one over a raw main through batched
// updates and explicit compactions (which rebuild the main in each
// layout), and that the compressed overlay really rebuilds compressed.
func TestCompressionDifferentialOverlay(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	triples := randTriples(rng, 400)

	mk := func(uncompressed bool) *delta.Overlay {
		b := core.NewBuilder(nil)
		b.SetCompression(!uncompressed)
		for _, tr := range triples {
			b.AddTriple(tr)
		}
		ov, err := delta.New(graph.Memory(b.BuildParallel(2)), delta.Options{
			CompactThreshold: -1, Uncompressed: uncompressed,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ov.Close() })
		return ov
	}
	ovC, ovR := mk(false), mk(true)
	gs := map[string]graph.Graph{"overlay-compressed": ovC, "overlay-raw": ovR}
	queries := compressionQueries(rng)
	compareAll(t, gs, queries, "overlay initial")

	for round := 0; round < 4; round++ {
		ops := make([]graph.TripleOp, 0, 60)
		for i := 0; i < 60; i++ {
			ops = append(ops, graph.TripleOp{Del: rng.Intn(3) == 0, T: randTriples(rng, 1)[0]})
		}
		insC, delC, err := ovC.ApplyTriples(ops)
		if err != nil {
			t.Fatal(err)
		}
		insR, delR, err := ovR.ApplyTriples(ops)
		if err != nil {
			t.Fatal(err)
		}
		if insC != insR || delC != delR {
			t.Fatalf("round %d: batch counts differ: (%d,%d) vs (%d,%d)", round, insC, delC, insR, delR)
		}
		compareAll(t, gs, queries, fmt.Sprintf("overlay round %d pre-compact", round))
		if round%2 == 1 {
			if err := ovC.Compact(); err != nil {
				t.Fatal(err)
			}
			if err := ovR.Compact(); err != nil {
				t.Fatal(err)
			}
			if st, ok := graph.Unwrap(ovC.Main()).(*core.Store); !ok || !st.Compressed() {
				t.Fatal("compaction did not rebuild a compressed main")
			}
			if st, ok := graph.Unwrap(ovR.Main()).(*core.Store); !ok || st.Compressed() {
				t.Fatal("raw overlay compaction produced a compressed main")
			}
			compareAll(t, gs, queries, fmt.Sprintf("overlay round %d post-compact", round))
		}
	}
}
