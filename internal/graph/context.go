package graph

import "context"

// ContextAware is an optional Graph capability: a backend whose single
// operations can run long on their own — the sharded cluster view, whose
// scatter-gather merges fan out goroutines per call — returns a
// ctx-observing variant of itself so cancellation reaches the inside of
// one operation, not just the gaps between operations.
//
// Backends without the capability do not need it for responsiveness:
// the SPARQL evaluator checks its context between per-row probes and
// every 128 streamed callbacks, which bounds cancellation latency to
// one candidate-list fetch on the memory and disk stores.
type ContextAware interface {
	// WithContext returns a view of the graph whose operations fail
	// with ctx.Err() once ctx is done. The returned graph shares the
	// receiver's state and capabilities.
	WithContext(ctx context.Context) Graph
}

// WithContext returns g observing ctx when the backend supports it
// (ContextAware), and g unchanged otherwise. A nil or Background
// context never wraps.
func WithContext(ctx context.Context, g Graph) Graph {
	if ctx == nil || ctx == context.Background() || ctx == context.TODO() {
		return g
	}
	if ca, ok := g.(ContextAware); ok {
		return ca.WithContext(ctx)
	}
	return g
}
