package graph_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"hexastore/internal/core"
	"hexastore/internal/disk"
	"hexastore/internal/graph"
	"hexastore/internal/rdf"
	"hexastore/internal/sparql"
	"hexastore/internal/triplestore"
)

// backends returns one Graph per storage engine, each loaded with the
// same triples. The baseline triples table is the trivially-correct
// reference; memory and disk must agree with it.
func backends(t *testing.T, triples []rdf.Triple) map[string]graph.Graph {
	t.Helper()
	ds, err := disk.Create(t.TempDir(), disk.Options{CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	gs := map[string]graph.Graph{
		"memory":   graph.Memory(core.New()),
		"disk":     graph.Disk(ds),
		"baseline": graph.Baseline(triplestore.New(nil)),
	}
	for name, g := range gs {
		for _, tr := range triples {
			if _, err := graph.AddTriple(g, tr); err != nil {
				t.Fatalf("%s: AddTriple(%v): %v", name, tr, err)
			}
		}
	}
	return gs
}

func ex(local string) rdf.Term { return rdf.NewIRI("http://ex/" + local) }

func sampleTriples() []rdf.Triple {
	return []rdf.Triple{
		rdf.T(ex("alice"), ex("knows"), ex("bob")),
		rdf.T(ex("alice"), ex("knows"), ex("carol")),
		rdf.T(ex("bob"), ex("knows"), ex("carol")),
		rdf.T(ex("carol"), ex("knows"), ex("dave")),
		rdf.T(ex("alice"), ex("age"), rdf.NewLiteral("42")),
		rdf.T(ex("bob"), ex("age"), rdf.NewLiteral("7")),
		rdf.T(ex("carol"), ex("age"), rdf.NewLiteral("30")),
		rdf.T(ex("alice"), ex("type"), ex("Person")),
		rdf.T(ex("bob"), ex("type"), ex("Person")),
		rdf.T(ex("carol"), ex("type"), ex("Robot")),
		// Self-loop, for repeated-variable patterns (?x knows ?x).
		rdf.T(ex("dave"), ex("knows"), ex("dave")),
	}
}

// canon renders a result set in a backend-independent canonical form.
func canon(res *sparql.Result) string {
	if res.IsAsk {
		return fmt.Sprintf("ask:%v", res.Answer)
	}
	vars := append([]string(nil), res.Vars...)
	sort.Strings(vars)
	lines := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		var sb strings.Builder
		for _, v := range vars {
			if term, ok := row[v]; ok {
				fmt.Fprintf(&sb, "%s=%s;", v, term)
			} else {
				fmt.Fprintf(&sb, "%s=<unbound>;", v)
			}
		}
		lines = append(lines, sb.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestDifferentialSelectAsk runs the same SPARQL queries through
// sparql.Exec over every backend and requires identical solution sets.
func TestDifferentialSelectAsk(t *testing.T) {
	queries := []string{
		`PREFIX ex: <http://ex/> SELECT ?who WHERE { ex:alice ex:knows ?who }`,
		`PREFIX ex: <http://ex/> SELECT ?x ?z WHERE { ?x ex:knows ?y . ?y ex:knows ?z }`,
		`PREFIX ex: <http://ex/> SELECT DISTINCT ?s WHERE { ?s ?p ?o }`,
		`PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s ex:age ?a . FILTER (?a > 18) }`,
		`PREFIX ex: <http://ex/> SELECT ?s ?a WHERE { ?s ex:type ex:Person . OPTIONAL { ?s ex:age ?a } }`,
		`PREFIX ex: <http://ex/> SELECT ?s WHERE { { ?s ex:type ex:Robot } UNION { ?s ex:age "7" } }`,
		`PREFIX ex: <http://ex/> SELECT ?p (COUNT(?s) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?p ORDER BY ?p`,
		`PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s ex:knows ?o } ORDER BY ?s LIMIT 2`,
		`PREFIX ex: <http://ex/> ASK { ex:alice ex:knows ex:bob }`,
		`PREFIX ex: <http://ex/> ASK { ex:dave ex:knows ex:alice }`,
	}
	gs := backends(t, sampleTriples())
	for _, src := range queries {
		want := ""
		for _, name := range []string{"baseline", "memory", "disk"} {
			res, err := sparql.Exec(gs[name], src)
			if err != nil {
				t.Fatalf("%s: Exec(%q): %v", name, src, err)
			}
			got := canon(res)
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Errorf("%s differs on %q:\n got:\n%s\nwant:\n%s", name, src, got, want)
			}
		}
	}
}

// TestDifferentialRepeatedVars exercises patterns where one variable
// occurs in several positions of a pattern — as a seed pattern, as a
// join step against an already-bound column, and inside OPTIONAL — and
// requires identical solutions from the merge-join engine (memory,
// disk) and the bind-probe fallback (baseline).
func TestDifferentialRepeatedVars(t *testing.T) {
	queries := []string{
		`PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x ex:knows ?x }`,
		`PREFIX ex: <http://ex/> SELECT ?x ?p WHERE { ?x ?p ?x }`,
		`PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x ex:knows ?y . ?x ex:knows ?x }`,
		`PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x ex:knows ?x . ?x ex:knows ?y }`,
		`PREFIX ex: <http://ex/> SELECT ?x ?a WHERE { ?x ex:knows ?x . OPTIONAL { ?x ex:age ?a } }`,
		`PREFIX ex: <http://ex/> ASK { ?x ex:knows ?x }`,
		`PREFIX ex: <http://ex/> ASK { ?x ex:type ?x }`,
	}
	gs := backends(t, sampleTriples())
	for _, src := range queries {
		want := ""
		for _, name := range []string{"baseline", "memory", "disk"} {
			res, err := sparql.Exec(gs[name], src)
			if err != nil {
				t.Fatalf("%s: Exec(%q): %v", name, src, err)
			}
			got := canon(res)
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Errorf("%s differs on %q:\n got:\n%s\nwant:\n%s", name, src, got, want)
			}
		}
	}
}

// TestDifferentialDistinctLimit checks DISTINCT+LIMIT on every backend:
// emission must stop after the requested number of distinct solutions
// (the batch engine still materializes the join table first — see the
// trade-off note in internal/sparql/batch.go), and each returned row
// must belong to the full distinct solution set. (Without ORDER BY the
// particular rows chosen are backend-dependent, so the test checks
// count and membership, not exact equality.)
func TestDifferentialDistinctLimit(t *testing.T) {
	full := `PREFIX ex: <http://ex/> SELECT DISTINCT ?s WHERE { ?s ?p ?o }`
	limited := full + ` LIMIT 3`
	gs := backends(t, sampleTriples())
	for _, name := range []string{"baseline", "memory", "disk"} {
		allRes, err := sparql.Exec(gs[name], full)
		if err != nil {
			t.Fatalf("%s: Exec(full): %v", name, err)
		}
		members := map[string]bool{}
		for _, row := range allRes.Rows {
			members[row["s"].String()] = true
		}
		res, err := sparql.Exec(gs[name], limited)
		if err != nil {
			t.Fatalf("%s: Exec(limited): %v", name, err)
		}
		if len(res.Rows) != 3 {
			t.Fatalf("%s: LIMIT 3 returned %d rows", name, len(res.Rows))
		}
		seen := map[string]bool{}
		for _, row := range res.Rows {
			v := row["s"].String()
			if !members[v] {
				t.Errorf("%s: LIMIT row %s not in full distinct set", name, v)
			}
			if seen[v] {
				t.Errorf("%s: duplicate row %s under DISTINCT", name, v)
			}
			seen[v] = true
		}
	}
}

// TestDifferentialOptional stresses OPTIONAL under the batch engine:
// several groups, optional variables in filters, and optional groups
// joining through required columns — identical across all backends.
func TestDifferentialOptional(t *testing.T) {
	queries := []string{
		`PREFIX ex: <http://ex/> SELECT ?s ?a ?w WHERE { ?s ex:type ex:Person . OPTIONAL { ?s ex:age ?a } OPTIONAL { ?s ex:knows ?w } }`,
		`PREFIX ex: <http://ex/> SELECT ?s ?n WHERE { ?s ex:knows ?o . OPTIONAL { ?o ex:age ?n } }`,
		`PREFIX ex: <http://ex/> SELECT ?s ?a WHERE { ?s ex:type ex:Person . OPTIONAL { ?s ex:age ?a } FILTER (?a > 10) }`,
		`PREFIX ex: <http://ex/> SELECT DISTINCT ?t ?a WHERE { ?s ex:type ?t . OPTIONAL { ?s ex:age ?a } }`,
		`PREFIX ex: <http://ex/> SELECT ?s (COUNT(?w) AS ?n) WHERE { ?s ex:type ex:Person . OPTIONAL { ?s ex:knows ?w } } GROUP BY ?s`,
	}
	gs := backends(t, sampleTriples())
	for _, src := range queries {
		want := ""
		for _, name := range []string{"baseline", "memory", "disk"} {
			res, err := sparql.Exec(gs[name], src)
			if err != nil {
				t.Fatalf("%s: Exec(%q): %v", name, src, err)
			}
			got := canon(res)
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Errorf("%s differs on %q:\n got:\n%s\nwant:\n%s", name, src, got, want)
			}
		}
	}
}

// TestDifferentialPlanner checks the cost-based planner agrees with the
// default evaluator on every backend.
func TestDifferentialPlanner(t *testing.T) {
	src := `PREFIX ex: <http://ex/> SELECT ?x ?z WHERE { ?x ex:knows ?y . ?y ex:knows ?z . ?x ex:age ?a }`
	gs := backends(t, sampleTriples())
	want := ""
	for _, name := range []string{"baseline", "memory", "disk"} {
		res, err := sparql.NewPlanner(gs[name]).Exec(src)
		if err != nil {
			t.Fatalf("%s: planner Exec: %v", name, err)
		}
		got := canon(res)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("%s planner differs:\n got:\n%s\nwant:\n%s", name, got, want)
		}
	}
}

// TestDifferentialUpdate applies the same UPDATE sequence to every
// backend and requires identical visible state after every step.
func TestDifferentialUpdate(t *testing.T) {
	steps := []struct {
		update string
		check  string
	}{
		{
			`PREFIX ex: <http://ex/> INSERT DATA { ex:dave ex:knows ex:alice . ex:dave ex:age "19" }`,
			`PREFIX ex: <http://ex/> SELECT ?who WHERE { ex:dave ex:knows ?who }`,
		},
		{
			// Re-inserting an existing triple must be a no-op everywhere.
			`PREFIX ex: <http://ex/> INSERT DATA { ex:dave ex:knows ex:alice }`,
			`PREFIX ex: <http://ex/> SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }`,
		},
		{
			`PREFIX ex: <http://ex/> DELETE DATA { ex:alice ex:knows ex:bob . ex:missing ex:p ex:o }`,
			`PREFIX ex: <http://ex/> SELECT ?who WHERE { ex:alice ex:knows ?who }`,
		},
		{
			// Multi-operation request with ';' separators.
			`PREFIX ex: <http://ex/> INSERT DATA { ex:eve ex:type ex:Person } ;
			 DELETE DATA { ex:carol ex:knows ex:dave } ;`,
			`PREFIX ex: <http://ex/> SELECT ?s WHERE { { ?s ex:type ex:Person } UNION { ?s ex:knows ?o } }`,
		},
	}
	gs := backends(t, sampleTriples())
	for i, step := range steps {
		var wantUpd *sparql.UpdateResult
		want := ""
		for _, name := range []string{"baseline", "memory", "disk"} {
			upd, err := sparql.ExecUpdate(gs[name], step.update)
			if err != nil {
				t.Fatalf("step %d %s: ExecUpdate: %v", i, name, err)
			}
			res, err := sparql.Exec(gs[name], step.check)
			if err != nil {
				t.Fatalf("step %d %s: Exec: %v", i, name, err)
			}
			got := canon(res)
			if want == "" {
				wantUpd, want = upd, got
				continue
			}
			if *upd != *wantUpd {
				t.Errorf("step %d %s: update result %+v, want %+v", i, name, upd, wantUpd)
			}
			if got != want {
				t.Errorf("step %d %s differs:\n got:\n%s\nwant:\n%s", i, name, got, want)
			}
		}
	}
	// All backends must also agree on the final triple count.
	n := gs["baseline"].Len()
	for name, g := range gs {
		if g.Len() != n {
			t.Errorf("%s: Len = %d, want %d", name, g.Len(), n)
		}
	}
}

// TestConcurrentQueryUpdate runs SELECT joins concurrently with
// INSERT/DELETE updates on the memory backend. The batch engine reads
// candidate lists through SortedSource, which must copy or stream under
// the store's lock — handing out aliased store internals here is a data
// race (run with -race to enforce).
func TestConcurrentQueryUpdate(t *testing.T) {
	g := graph.Memory(core.New())
	for _, tr := range sampleTriples() {
		if _, err := graph.AddTriple(g, tr); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			upd := fmt.Sprintf(
				`PREFIX ex: <http://ex/> INSERT DATA { ex:alice ex:knows ex:extra%d }`, i)
			if _, err := sparql.ExecUpdate(g, upd); err != nil {
				t.Error(err)
				return
			}
			del := fmt.Sprintf(
				`PREFIX ex: <http://ex/> DELETE DATA { ex:alice ex:knows ex:extra%d }`, i)
			if _, err := sparql.ExecUpdate(g, del); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	queries := []string{
		`PREFIX ex: <http://ex/> SELECT ?x ?z WHERE { ?x ex:knows ?y . ?y ex:knows ?z }`,
		`PREFIX ex: <http://ex/> SELECT ?who WHERE { ex:alice ex:knows ?who }`,
		`PREFIX ex: <http://ex/> SELECT DISTINCT ?s WHERE { ?s ?p ?o }`,
	}
	for i := 0; ; i++ {
		select {
		case <-done:
			return
		default:
		}
		if _, err := sparql.Exec(g, queries[i%len(queries)]); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDifferentialWorkers runs join queries at intra-query worker counts
// 1, 2 and 8 over every backend (the disk engine's sorted accessors run
// one independent B+-tree scan per call, so concurrent workers are safe)
// and requires results identical to the sequential evaluation — not just
// the same solution set, but the same row order, since parallel steps
// splice their partitions in row order.
func TestDifferentialWorkers(t *testing.T) {
	sparql.SetParallelRowThreshold(2)
	defer sparql.SetParallelRowThreshold(0)

	var triples []rdf.Triple
	for i := 0; i < 120; i++ {
		triples = append(triples,
			rdf.T(ex(fmt.Sprintf("p%d", i)), ex("knows"), ex(fmt.Sprintf("p%d", (i*7+3)%120))),
			rdf.T(ex(fmt.Sprintf("p%d", i)), ex("knows"), ex(fmt.Sprintf("p%d", (i*13+5)%120))),
			rdf.T(ex(fmt.Sprintf("p%d", i)), ex("likes"), ex(fmt.Sprintf("t%d", i%9))))
	}
	queries := []string{
		`PREFIX ex: <http://ex/> SELECT ?a ?c WHERE { ?a ex:knows ?b . ?b ex:knows ?c }`,
		`PREFIX ex: <http://ex/> SELECT ?a ?b WHERE { ?a ex:knows ?b . ?b ex:knows ?a }`,
		`PREFIX ex: <http://ex/> SELECT DISTINCT ?t WHERE { ?a ex:knows ?b . ?b ex:likes ?t }`,
		`PREFIX ex: <http://ex/> SELECT ?a ?x ?y WHERE { ?a ex:likes ?t . ?a ?x ?y }`,
	}
	gs := backends(t, triples)
	for _, src := range queries {
		q, err := sparql.Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		for _, name := range []string{"baseline", "memory", "disk"} {
			want, err := sparql.EvalWorkers(gs[name], q, 1)
			if err != nil {
				t.Fatalf("%s workers=1: %v", name, err)
			}
			for _, workers := range []int{2, 8} {
				got, err := sparql.EvalWorkers(gs[name], q, workers)
				if err != nil {
					t.Fatalf("%s workers=%d: %v", name, workers, err)
				}
				if len(got.Rows) != len(want.Rows) {
					t.Fatalf("%s workers=%d %q: %d rows, want %d", name, workers, src, len(got.Rows), len(want.Rows))
				}
				for i := range got.Rows {
					for _, v := range got.Vars {
						if got.Rows[i][v] != want.Rows[i][v] {
							t.Fatalf("%s workers=%d %q: row %d differs", name, workers, src, i)
						}
					}
				}
			}
		}
	}
}

// TestGraphPrimitives exercises the interface methods directly on every
// backend.
func TestGraphPrimitives(t *testing.T) {
	gs := backends(t, sampleTriples())
	for name, g := range gs {
		tr := rdf.T(ex("alice"), ex("knows"), ex("bob"))
		ok, err := graph.HasTriple(g, tr)
		if err != nil || !ok {
			t.Fatalf("%s: HasTriple = %v, %v", name, ok, err)
		}
		changed, err := graph.RemoveTriple(g, tr)
		if err != nil || !changed {
			t.Fatalf("%s: RemoveTriple = %v, %v", name, changed, err)
		}
		if g.Len() != len(sampleTriples())-1 {
			t.Fatalf("%s: Len after remove = %d", name, g.Len())
		}
		n, err := g.Count(graph.None, graph.None, graph.None)
		if err != nil || n != g.Len() {
			t.Fatalf("%s: Count(*) = %d, %v", name, n, err)
		}
		if _, err := graph.AddTriple(g, tr); err != nil {
			t.Fatal(err)
		}
		// DecodeMatch round-trips terms through the dictionary.
		seen := 0
		if err := graph.DecodeMatch(g, graph.None, graph.None, graph.None, func(rdf.Triple) bool {
			seen++
			return true
		}); err != nil {
			t.Fatalf("%s: DecodeMatch: %v", name, err)
		}
		if seen != g.Len() {
			t.Fatalf("%s: DecodeMatch saw %d of %d", name, seen, g.Len())
		}
	}
}

// TestDiskGraphPersistsUpdates ensures UPDATEs applied through the Graph
// interface survive a close/reopen cycle of the disk backend.
func TestDiskGraphPersistsUpdates(t *testing.T) {
	dir := t.TempDir()
	ds, err := disk.Create(dir, disk.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Disk(ds)
	if _, err := sparql.ExecUpdate(g, `PREFIX ex: <http://ex/> INSERT DATA { ex:a ex:p ex:b }`); err != nil {
		t.Fatal(err)
	}
	if err := graph.Flush(g); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	ds2, err := disk.Open(dir, disk.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	res, err := sparql.Exec(graph.Disk(ds2), `PREFIX ex: <http://ex/> SELECT ?o WHERE { ex:a ex:p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0]["o"].Value != "http://ex/b" {
		t.Fatalf("rows after reopen = %v", res.Rows)
	}
}
