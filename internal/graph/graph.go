// Package graph defines the backend-neutral Graph interface that the
// query, sparql and server layers are written against, together with
// adapters for the repository's three storage engines:
//
//   - the in-memory sextuple-indexed core.Store (Memory),
//   - the B-tree-paged disk.Store (Disk), and
//   - the flat-table triplestore.Store baseline (Baseline).
//
// Every method that can touch fallible storage is error-returning, so
// disk-backed (and, later, remote or sharded) implementations fit the
// same interface as the in-memory stores. The in-memory adapters simply
// return nil errors.
//
// The interface is intentionally small — dictionary access plus the
// five primitive triple operations. Everything else (SPARQL evaluation,
// path expressions, serialization, HTTP serving) is built on top of it,
// which is what makes new backends cheap: implement these seven methods
// and the whole upper half of the system works unchanged.
package graph

import (
	"hexastore/internal/core"
	"hexastore/internal/dictionary"
	"hexastore/internal/disk"
	"hexastore/internal/rdf"
	"hexastore/internal/triplestore"
)

// ID is a dictionary-encoded resource identifier.
type ID = dictionary.ID

// None is the wildcard / unbound marker in pattern lookups.
const None = dictionary.None

// Graph is a mutable, pattern-matchable RDF graph. Implementations must
// be safe for concurrent use (all three built-in backends are).
//
// Match streams every triple matching the pattern ⟨s,p,o⟩, where None in
// any position is a wildcard; iteration stops early when fn returns
// false. Add and Remove report whether the graph changed.
type Graph interface {
	// Dictionary returns the term dictionary the graph encodes ids with.
	Dictionary() *dictionary.Dictionary
	// Len returns the number of distinct triples.
	Len() int
	// Add inserts the triple ⟨s,p,o⟩.
	Add(s, p, o ID) (bool, error)
	// Remove deletes the triple ⟨s,p,o⟩.
	Remove(s, p, o ID) (bool, error)
	// Has reports whether the triple ⟨s,p,o⟩ is present.
	Has(s, p, o ID) (bool, error)
	// Match streams matching triples to fn (None = wildcard).
	Match(s, p, o ID, fn func(s, p, o ID) bool) error
	// Count returns the number of triples matching the pattern.
	Count(s, p, o ID) (int, error)
}

// Flusher is implemented by graphs with buffered durable state (the disk
// backend). Callers that mutate a graph should flush it if supported;
// see Flush.
type Flusher interface {
	Flush() error
}

// Snapshotter is an optional Graph capability: a consistent, immutable
// read view of the graph at one instant. Multi-step readers (the SPARQL
// evaluator, serializers) pin one snapshot for their whole run, so a
// stream of concurrent updates cannot make two pattern fetches of the
// same query observe different states. The delta-overlay backend
// implements it with an atomic state-pointer load — pinning is free and
// never blocks writers. Use Snapshot to pin when supported.
type Snapshotter interface {
	// Snapshot returns a read-only view of the graph's current state.
	// Mutating the view is an error; the view stays valid (and
	// unchanging) however many writes land on the parent graph.
	Snapshot() Graph
}

// Snapshot pins a consistent read view of g when the backend supports
// it, and returns g itself otherwise. Backends without the capability
// either serialize writers externally (the DB/server request locks) or
// accept per-call-consistent reads.
func Snapshot(g Graph) Graph {
	if s, ok := g.(Snapshotter); ok {
		return s.Snapshot()
	}
	return g
}

// Epocher is an optional Graph capability: a cheap token identifying the
// graph's current content version. Two reads that observe the same epoch
// token are guaranteed to observe identical triple sets, which is what
// makes the token usable as a result-cache key — a cached answer tagged
// with epoch E may be served verbatim while the graph still reports E.
//
// Implementations bump (or otherwise change) the token on every state
// transition that can alter query answers. Physical reorganizations that
// preserve content (overlay compaction) may keep the token, so cached
// results validly survive them. Snapshots report the epoch of the pinned
// instant, which never changes.
type Epocher interface {
	// Epoch returns the current content-version token. The empty string
	// means "unknown" and disables caching.
	Epoch() string
}

// EpochOf returns g's content-version token, or "" when the backend does
// not support epochs (result caching is then disabled for g).
func EpochOf(g Graph) string {
	if e, ok := g.(Epocher); ok {
		return e.Epoch()
	}
	return ""
}

// TripleOp is one entry of a batched update: an insert, or a delete when
// Del is set.
type TripleOp struct {
	Del bool
	T   rdf.Triple
}

// BatchUpdater is an optional Graph capability: apply a sequence of
// triple operations as one atomic, durable batch. The delta overlay uses
// it to absorb a whole SPARQL UPDATE request with a single WAL group
// commit and a single copy-on-write state swap, instead of paying both
// per triple; readers observe either none or all of the batch.
type BatchUpdater interface {
	// ApplyTriples applies ops in order and reports how many triples
	// were actually inserted (not present before) and deleted (present
	// before). A backend error aborts the whole batch.
	ApplyTriples(ops []TripleOp) (inserted, deleted int, err error)
}

// ApplyTriples applies a batch of triple operations to g: through one
// atomic BatchUpdater call when the backend supports it, or triple by
// triple otherwise (counts and final state are identical; only atomicity
// and write amplification differ).
func ApplyTriples(g Graph, ops []TripleOp) (inserted, deleted int, err error) {
	if bu, ok := g.(BatchUpdater); ok {
		return bu.ApplyTriples(ops)
	}
	for _, op := range ops {
		if op.Del {
			changed, err := RemoveTriple(g, op.T)
			if err != nil {
				return inserted, deleted, err
			}
			if changed {
				deleted++
			}
		} else {
			changed, err := AddTriple(g, op.T)
			if err != nil {
				return inserted, deleted, err
			}
			if changed {
				inserted++
			}
		}
	}
	return inserted, deleted, nil
}

// memBackend is the common method shape of the error-free in-memory
// stores (core.Store and triplestore.Store).
type memBackend interface {
	Dictionary() *dictionary.Dictionary
	Len() int
	Add(s, p, o ID) bool
	Remove(s, p, o ID) bool
	Has(s, p, o ID) bool
	Match(s, p, o ID, fn func(s, p, o ID) bool)
	Count(s, p, o ID) int
}

// memGraph adapts an in-memory store to the error-returning Graph shape.
type memGraph struct{ st memBackend }

// Memory adapts the in-memory Hexastore to the Graph interface.
func Memory(st *core.Store) Graph { return memGraph{st: st} }

// Baseline adapts the flat triples-table baseline to the Graph interface.
func Baseline(st *triplestore.Store) Graph { return memGraph{st: st} }

// Disk adapts the disk-based Hexastore to the Graph interface. The disk
// store's own methods already have the error-returning shape, so the
// adapter is the store itself.
func Disk(st *disk.Store) Graph { return st }

func (g memGraph) Dictionary() *dictionary.Dictionary { return g.st.Dictionary() }
func (g memGraph) Len() int                           { return g.st.Len() }

func (g memGraph) Add(s, p, o ID) (bool, error)    { return g.st.Add(s, p, o), nil }
func (g memGraph) Remove(s, p, o ID) (bool, error) { return g.st.Remove(s, p, o), nil }
func (g memGraph) Has(s, p, o ID) (bool, error)    { return g.st.Has(s, p, o), nil }

func (g memGraph) Match(s, p, o ID, fn func(s, p, o ID) bool) error {
	g.st.Match(s, p, o, fn)
	return nil
}

func (g memGraph) Count(s, p, o ID) (int, error) { return g.st.Count(s, p, o), nil }

// Unwrap exposes the concrete store behind the adapter, so planners can
// detect index-aware backends (see Unwrap).
func (g memGraph) Unwrap() any { return g.st }

// Epoch forwards the content-version token of stores that maintain one
// (core.Store does; the flat baseline does not, so graphs over it report
// "" and stay uncacheable).
func (g memGraph) Epoch() string {
	if e, ok := g.st.(Epocher); ok {
		return e.Epoch()
	}
	return ""
}

// Unwrap returns the concrete backend underlying g: the *core.Store or
// *triplestore.Store behind an in-memory adapter, or g itself when the
// graph is not a wrapper (e.g. a *disk.Store). Layers use it to pick
// backend-specific fast paths:
//
//	if st, ok := graph.Unwrap(g).(*core.Store); ok { … vector-level access … }
func Unwrap(g Graph) any {
	if u, ok := g.(interface{ Unwrap() any }); ok {
		return u.Unwrap()
	}
	return g
}

// Flush persists any buffered state of g, when the backend supports it.
// In-memory graphs are a no-op.
func Flush(g Graph) error {
	if f, ok := g.(Flusher); ok {
		return f.Flush()
	}
	return nil
}

// AddTriple dictionary-encodes and inserts an rdf.Triple. Invalid
// triples are rejected without touching the dictionary.
func AddTriple(g Graph, t rdf.Triple) (bool, error) {
	if !t.Valid() {
		return false, nil
	}
	s, p, o := g.Dictionary().EncodeTriple(t)
	return g.Add(s, p, o)
}

// RemoveTriple deletes an rdf.Triple. A triple with a term absent from
// the dictionary cannot be present, so it is reported unchanged without
// growing the dictionary.
func RemoveTriple(g Graph, t rdf.Triple) (bool, error) {
	dict := g.Dictionary()
	s, ok := dict.Lookup(t.Subject)
	if !ok {
		return false, nil
	}
	p, ok := dict.Lookup(t.Predicate)
	if !ok {
		return false, nil
	}
	o, ok := dict.Lookup(t.Object)
	if !ok {
		return false, nil
	}
	return g.Remove(s, p, o)
}

// HasTriple reports whether an rdf.Triple is present.
func HasTriple(g Graph, t rdf.Triple) (bool, error) {
	dict := g.Dictionary()
	s, ok := dict.Lookup(t.Subject)
	if !ok {
		return false, nil
	}
	p, ok := dict.Lookup(t.Predicate)
	if !ok {
		return false, nil
	}
	o, ok := dict.Lookup(t.Object)
	if !ok {
		return false, nil
	}
	return g.Has(s, p, o)
}

// DecodeMatch is Match with the results decoded back to rdf.Triples, for
// presentation layers and serializers.
func DecodeMatch(g Graph, s, p, o ID, fn func(rdf.Triple) bool) error {
	dict := g.Dictionary()
	var decodeErr error
	err := g.Match(s, p, o, func(s, p, o ID) bool {
		t, derr := dict.DecodeTriple(s, p, o)
		if derr != nil {
			decodeErr = derr
			return false
		}
		return fn(t)
	})
	if err != nil {
		return err
	}
	return decodeErr
}
