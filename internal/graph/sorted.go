package graph

import (
	"hexastore/internal/core"
	"hexastore/internal/idlist"
)

// SortedSource is an optional Graph capability: direct access to the
// sorted ID lists behind a pattern match, which is what turns the
// SPARQL evaluator's joins into the paper's linear merge-joins (§4.2).
// Backends that cannot answer from sorted storage (e.g. the flat
// triples-table baseline) simply do not implement it, and the evaluator
// falls back to a batched bind-probe over Match.
//
// Both built-in index-backed stores provide it: the in-memory Hexastore
// copies its shared terminal lists under the store's read lock, and the
// disk store materializes lists from one ordered prefix scan of the
// right B+-tree. Both append into the caller's buffer, so a reused
// scratch slice makes the steady state allocation-free — and, unlike
// handing out aliased store internals, the results stay valid across
// concurrent mutations.
//
// Implementations must additionally be safe for concurrent readers: the
// batch engine's intra-query parallelism has several workers fetch
// candidate lists simultaneously, each into its own buffer (the memory
// store serves them under a shared read lock; the disk store runs one
// independent prefix scan per call over its internally locked buffer
// pool).
//
// Use AsSortedSource to obtain it; the concrete Graph value may be a
// wrapper around the capable store.
type SortedSource interface {
	// AppendSortedList appends the sorted candidate values of the
	// single None position of a 2-bound pattern to dst and returns the
	// extended slice: objects of ⟨s,p,·⟩, properties of ⟨s,·,o⟩, or
	// subjects of ⟨·,p,o⟩.
	AppendSortedList(dst []ID, s, p, o ID) ([]ID, error)
	// SortedPairs streams the values of the two free positions of a
	// 1-bound pattern, ordered by the first free position (in S,P,O
	// position order) ascending and the second ascending within it:
	// (p,o) pairs for ⟨s,·,·⟩, (s,o) for ⟨·,p,·⟩, (s,p) for ⟨·,·,o⟩.
	// Iteration stops early when fn returns false.
	SortedPairs(s, p, o ID, fn func(a, b ID) bool) error
}

// AsSortedSource returns the SortedSource behind g, if any: g itself
// when it implements the capability (the disk store), or an adapter
// when g wraps the in-memory Hexastore.
func AsSortedSource(g Graph) (SortedSource, bool) {
	if ss, ok := g.(SortedSource); ok {
		return ss, true
	}
	if st, ok := Unwrap(g).(*core.Store); ok {
		return coreSorted{st}, true
	}
	return nil, false
}

// coreSorted adapts the in-memory Hexastore's lock-holding sorted
// accessors to the SortedSource shape.
type coreSorted struct{ st *core.Store }

func (cs coreSorted) AppendSortedList(dst []ID, s, p, o ID) ([]ID, error) {
	return cs.st.AppendSorted(dst, s, p, o), nil
}

func (cs coreSorted) SortedPairs(s, p, o ID, fn func(a, b ID) bool) error {
	cs.st.SortedPairs(s, p, o, fn)
	return nil
}

func (cs coreSorted) SortedListView(s, p, o ID) (idlist.View, bool, error) {
	v, ok := cs.st.SortedListView(s, p, o)
	return v, ok, nil
}

// ViewSource is an optional refinement of SortedSource: candidate
// lists handed out as read-only views instead of copied slices. A
// block-compressed backend returns zero-copy views of its immutable
// packed blobs, which lets the batch engine's merge-intersect steps
// skip whole blocks via the skip table instead of materializing the
// list; ok=false on a call means the backend cannot serve that pattern
// zero-copy (e.g. the memory store in its raw layout, whose lists
// alias mutable storage) and the caller should fall back to the
// copying AppendSortedList.
//
// Implementations must be safe for concurrent readers, like
// SortedSource. Views returned with ok=true must stay consistent
// across concurrent mutations — compressed backends satisfy this
// because mutation replaces immutable structures rather than editing
// them.
type ViewSource interface {
	SortedListView(s, p, o ID) (v idlist.View, ok bool, err error)
}

// AsViewSource returns the ViewSource behind g, if any: g itself when
// it implements the capability (the delta overlay), or an adapter when
// g wraps the in-memory Hexastore.
func AsViewSource(g Graph) (ViewSource, bool) {
	if vs, ok := g.(ViewSource); ok {
		return vs, true
	}
	if st, ok := Unwrap(g).(*core.Store); ok {
		return coreSorted{st}, true
	}
	return nil, false
}
