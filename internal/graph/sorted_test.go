package graph_test

import (
	"sort"
	"testing"

	"hexastore/internal/graph"
)

// TestSortedSourceContract checks, for every backend that advertises
// the capability, that AppendSortedList/SortedPairs return exactly the
// Match results in sorted order — the invariant the merge-join engine
// is built on.
func TestSortedSourceContract(t *testing.T) {
	gs := backends(t, sampleTriples())
	if _, ok := graph.AsSortedSource(gs["baseline"]); ok {
		t.Fatal("baseline must not advertise SortedSource")
	}
	for _, name := range []string{"memory", "disk"} {
		g := gs[name]
		ss, ok := graph.AsSortedSource(g)
		if !ok {
			t.Fatalf("%s: expected SortedSource", name)
		}
		dict := g.Dictionary()
		knows, _ := dict.Lookup(ex("knows"))
		alice, _ := dict.Lookup(ex("alice"))
		carol, _ := dict.Lookup(ex("carol"))

		// 2-bound shapes: list equals sorted Match results.
		shapes := [][3]graph.ID{
			{alice, knows, graph.None},
			{alice, graph.None, carol},
			{graph.None, knows, carol},
		}
		for _, sh := range shapes {
			// Appends must extend the caller's buffer, not replace it.
			prefix := []graph.ID{9999}
			got, err := ss.AppendSortedList(prefix, sh[0], sh[1], sh[2])
			if err != nil {
				t.Fatalf("%s: AppendSortedList(%v): %v", name, sh, err)
			}
			if len(got) == 0 || got[0] != 9999 {
				t.Fatalf("%s: AppendSortedList(%v) dropped the existing buffer: %v", name, sh, got)
			}
			got = got[1:]
			var want []graph.ID
			if err := g.Match(sh[0], sh[1], sh[2], func(s, p, o graph.ID) bool {
				switch {
				case sh[0] == graph.None:
					want = append(want, s)
				case sh[1] == graph.None:
					want = append(want, p)
				default:
					want = append(want, o)
				}
				return true
			}); err != nil {
				t.Fatal(err)
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if len(got) != len(want) {
				t.Fatalf("%s: AppendSortedList(%v) = %v, want %v", name, sh, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: AppendSortedList(%v) = %v, want %v", name, sh, got, want)
				}
			}
		}

		// 1-bound shapes: pairs stream in (first, second) sorted order
		// and cover the same triples as Match.
		for _, sh := range [][3]graph.ID{
			{alice, graph.None, graph.None},
			{graph.None, knows, graph.None},
			{graph.None, graph.None, carol},
		} {
			var pairs [][2]graph.ID
			if err := ss.SortedPairs(sh[0], sh[1], sh[2], func(a, b graph.ID) bool {
				pairs = append(pairs, [2]graph.ID{a, b})
				return true
			}); err != nil {
				t.Fatalf("%s: SortedPairs(%v): %v", name, sh, err)
			}
			for i := 1; i < len(pairs); i++ {
				if pairs[i-1][0] > pairs[i][0] ||
					(pairs[i-1][0] == pairs[i][0] && pairs[i-1][1] >= pairs[i][1]) {
					t.Fatalf("%s: SortedPairs(%v) out of order at %d: %v", name, sh, i, pairs)
				}
			}
			n, err := g.Count(sh[0], sh[1], sh[2])
			if err != nil {
				t.Fatal(err)
			}
			if len(pairs) != n {
				t.Fatalf("%s: SortedPairs(%v) yielded %d pairs, Count says %d", name, sh, len(pairs), n)
			}
		}

		// Early termination is honored.
		seen := 0
		if err := ss.SortedPairs(graph.None, knows, graph.None, func(a, b graph.ID) bool {
			seen++
			return false
		}); err != nil {
			t.Fatal(err)
		}
		if seen != 1 {
			t.Fatalf("%s: SortedPairs kept iterating after stop: %d calls", name, seen)
		}
	}
}
