package idlist

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestMergeJoinAdaptiveMatchesMergeJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		a := randomList(rng, 30)
		b := randomList(rng, 30)
		var plain, adaptive []ID
		MergeJoin(a, b, func(id ID) { plain = append(plain, id) })
		MergeJoinAdaptive(a, b, func(id ID) { adaptive = append(adaptive, id) })
		if !reflect.DeepEqual(plain, adaptive) {
			t.Fatalf("trial %d: plain=%v adaptive=%v", trial, plain, adaptive)
		}
	}
}

func TestMergeJoinAdaptiveGallopPath(t *testing.T) {
	// Force the galloping branch: |big| > 16*|small|.
	big := make([]ID, 0, 2000)
	for i := 1; i <= 2000; i++ {
		big = append(big, ID(3*i))
	}
	small := FromUnsorted(ids(3, 6, 7, 2997, 6000, 6001))
	var got []ID
	MergeJoinAdaptive(small, FromSorted(big), func(id ID) { got = append(got, id) })
	if !reflect.DeepEqual(got, ids(3, 6, 2997, 6000)) {
		t.Errorf("adaptive gallop = %v, want [3 6 2997 6000]", got)
	}
	// Argument order must not matter.
	got = nil
	MergeJoinAdaptive(FromSorted(big), small, func(id ID) { got = append(got, id) })
	if !reflect.DeepEqual(got, ids(3, 6, 2997, 6000)) {
		t.Errorf("adaptive gallop (swapped) = %v", got)
	}
}

func TestMergeJoinAdaptiveEmpty(t *testing.T) {
	big := FromUnsorted(ids(1, 2, 3))
	MergeJoinAdaptive(&List{}, big, func(ID) { t.Error("fn called on empty input") })
	MergeJoinAdaptive(big, &List{}, func(ID) { t.Error("fn called on empty input") })
	MergeJoinAdaptive(nil, big, func(ID) { t.Error("fn called on nil input") })
}

// Property: adaptive and plain merge-joins agree on arbitrary inputs,
// including strongly lopsided ones.
func TestMergeJoinAdaptiveProperty(t *testing.T) {
	f := func(rawSmall []uint8, rawBig []uint16) bool {
		small := fromRaw8(rawSmall)
		big := fromRaw(rawBig)
		var plain, adaptive []ID
		MergeJoin(small, big, func(id ID) { plain = append(plain, id) })
		MergeJoinAdaptive(small, big, func(id ID) { adaptive = append(adaptive, id) })
		return reflect.DeepEqual(plain, adaptive)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func fromRaw8(raw []uint8) *List {
	var b Builder
	for _, v := range raw {
		b.Add(ID(v) + 1)
	}
	return b.Finish()
}
