package idlist

// This file implements the block-compressed posting-list representation:
// a sorted ID list stored as delta-encoded varints in blocks of
// BlockSize values, with a skip table of block maxima for lists longer
// than one block. It is the space answer to the paper's acknowledged
// worst-case five-fold index expansion (§4.1): the sextuple index keeps
// its merge-join structure, but the sorted runs it is made of shrink to
// a couple of bytes per entry, and the skip table lets merge-joins jump
// whole blocks without decoding them.
//
// Layout of the serialized payload (what AppendCompressed emits):
//
//	[skip section, only when n > BlockSize]
//	  per block: uvarint(last − previous block's last), uvarint(block
//	  byte length)
//	[delta blocks]
//	  values v0 < v1 < … < v(n-1) as the flat uvarint stream v0, v1-v0,
//	  v2-v1, …; block b covers values [b·BlockSize, (b+1)·BlockSize).
//
// The skip section is consumed by walking it in place — a Compressed
// never materializes index arrays, so constructing a view of a list
// embedded in a larger blob (a packed vector, a B+-tree leaf) costs
// zero allocations. Skip walks are sequential, which is exactly the
// access pattern of merges; point probes pay O(#blocks) varint header
// decodes, cheap against the decode of the one block they then search.
//
// A Compressed is immutable once built. Mutation paths in the stores
// replace compressed lists with freshly decoded raw ones
// (decompress-on-write), so readers holding a Compressed — or a
// zero-copy View into a packed vector blob — always see a consistent
// image.

import "encoding/binary"

// BlockSize is the number of IDs per compression block.
const BlockSize = 128

// Compressed is an immutable sorted ID list in delta+varint block form.
// The zero value is an empty list. Compressed is a value type: views
// into packed vector blobs are constructed on the fly without copying
// or allocating.
type Compressed struct {
	n    int
	skip []byte // skip section (nil when n <= BlockSize)
	data []byte // flat uvarint delta stream (blocks region)
}

// Compress encodes a strictly increasing slice. It panics on unsorted
// input for the same reason FromSorted does: a silently broken order
// would corrupt every merge-join downstream.
func Compress(ids []ID) Compressed {
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			panic("idlist: Compress input not strictly increasing")
		}
	}
	return MakeCompressed(len(ids), AppendCompressed(nil, ids))
}

// AppendCompressed appends the serialized payload of a sorted,
// strictly-increasing id slice to dst and returns the extended slice.
// The payload is self-contained given the value count. It is the wire
// form used inside packed vector blobs and compressed B+-tree leaves as
// well as by MakeCompressed.
func AppendCompressed(dst []byte, ids []ID) []byte {
	if len(ids) > BlockSize {
		var blockBuf []byte
		prevLast := ID(0)
		prev := ID(0)
		for start := 0; start < len(ids); start += BlockSize {
			end := min(start+BlockSize, len(ids))
			blockStart := len(blockBuf)
			for _, v := range ids[start:end] {
				blockBuf = binary.AppendUvarint(blockBuf, uint64(v-prev))
				prev = v
			}
			last := ids[end-1]
			dst = binary.AppendUvarint(dst, uint64(last-prevLast))
			dst = binary.AppendUvarint(dst, uint64(len(blockBuf)-blockStart))
			prevLast = last
		}
		return append(dst, blockBuf...)
	}
	prev := ID(0)
	for _, v := range ids {
		dst = binary.AppendUvarint(dst, uint64(v-prev))
		prev = v
	}
	return dst
}

// MakeCompressed wraps a payload produced by AppendCompressed for n
// values. The result aliases payload — zero copy, zero allocation.
func MakeCompressed(n int, payload []byte) Compressed {
	if n == 0 {
		return Compressed{}
	}
	if n <= BlockSize {
		return Compressed{n: n, data: payload}
	}
	// Split off the skip section by walking its nBlocks varint pairs.
	nBlocks := (n + BlockSize - 1) / BlockSize
	pos := 0
	for b := 0; b < nBlocks; b++ {
		_, k := binary.Uvarint(payload[pos:])
		pos += k
		_, k2 := binary.Uvarint(payload[pos:])
		pos += k2
	}
	return Compressed{n: n, skip: payload[:pos], data: payload[pos:]}
}

// Len returns the number of IDs.
func (c Compressed) Len() int { return c.n }

// SizeBytes returns the byte length of the compressed payload.
func (c Compressed) SizeBytes() int { return len(c.skip) + len(c.data) }

// blockCursor walks the skip section sequentially, yielding per block
// its value range end ("last") and data byte range. For single-block
// lists it degenerates to one step covering all of data.
type blockCursor struct {
	c       Compressed
	idx     int // next block index
	skipPos int
	dataOff int
	base    ID // last value of the previous block
}

// next advances to the following block, returning its bounds; ok is
// false past the last block. base is the delta base (previous block's
// last value), last the block's final value.
func (bc *blockCursor) next() (start, end int, base, last ID, ok bool) {
	c := bc.c
	if c.skip == nil {
		if bc.idx > 0 || c.n == 0 {
			return 0, 0, 0, 0, false
		}
		bc.idx = 1
		return 0, len(c.data), 0, 0, true // last unknown; single block
	}
	if bc.skipPos >= len(c.skip) {
		return 0, 0, 0, 0, false
	}
	d, k := binary.Uvarint(c.skip[bc.skipPos:])
	bc.skipPos += k
	bl, k2 := binary.Uvarint(c.skip[bc.skipPos:])
	bc.skipPos += k2
	start = bc.dataOff
	end = start + int(bl)
	base = bc.base
	last = base + ID(d)
	bc.dataOff = end
	bc.base = last
	bc.idx++
	return start, end, base, last, true
}

// decodeRange decodes the delta stream in data[start:end] with the
// given base into dst (reset to length zero first).
func (c Compressed) decodeRange(start, end int, base ID, dst []ID) []ID {
	dst = dst[:0]
	v := base
	for pos := start; pos < end; {
		d, k := binary.Uvarint(c.data[pos:])
		pos += k
		v += ID(d)
		dst = append(dst, v)
	}
	return dst
}

// Contains reports whether id is in the list, decoding at most one
// block; blocks whose maximum is below id are skipped via the skip
// section without decoding.
func (c Compressed) Contains(id ID) bool {
	if c.n == 0 {
		return false
	}
	var scratch [BlockSize]ID
	bc := blockCursor{c: c}
	for {
		start, end, base, last, ok := bc.next()
		if !ok {
			return false
		}
		if c.skip != nil && last < id {
			continue
		}
		if c.skip != nil && last == id {
			return true
		}
		vals := c.decodeRange(start, end, base, scratch[:0])
		i := searchIDs(vals, id)
		return i < len(vals) && vals[i] == id
	}
}

// At returns the i-th smallest value, decoding one block.
func (c Compressed) At(i int) ID {
	var scratch [BlockSize]ID
	target := i / BlockSize
	bc := blockCursor{c: c}
	for {
		start, end, base, _, ok := bc.next()
		if !ok {
			panic("idlist: Compressed.At out of range")
		}
		if bc.idx-1 == target {
			vals := c.decodeRange(start, end, base, scratch[:0])
			return vals[i%BlockSize]
		}
	}
}

// AppendTo appends every value in ascending order to dst and returns
// the extended slice — the decompression primitive.
func (c Compressed) AppendTo(dst []ID) []ID {
	v := ID(0)
	for pos := 0; pos < len(c.data); {
		d, k := binary.Uvarint(c.data[pos:])
		pos += k
		v += ID(d)
		dst = append(dst, v)
	}
	return dst
}

// Range streams every value in ascending order until fn returns false.
func (c Compressed) Range(fn func(ID) bool) {
	v := ID(0)
	for pos := 0; pos < len(c.data); {
		d, k := binary.Uvarint(c.data[pos:])
		pos += k
		v += ID(d)
		if !fn(v) {
			return
		}
	}
}

// Iter is a streaming cursor over a Compressed with skip-section seeks.
type Iter struct {
	bc   blockCursor
	pos  int // index within vals
	vals []ID
	buf  [BlockSize]ID
}

// Iter returns a cursor positioned before the first value.
func (c Compressed) Iter() Iter { return Iter{bc: blockCursor{c: c}} }

// loadNext decodes the next block into the scratch buffer; false at
// the end of the list.
func (it *Iter) loadNext() bool {
	start, end, base, _, ok := it.bc.next()
	if !ok {
		return false
	}
	it.vals = it.bc.c.decodeRange(start, end, base, it.buf[:0])
	it.pos = 0
	return true
}

// Next returns the next value, or ok=false at the end.
func (it *Iter) Next() (ID, bool) {
	for it.pos >= len(it.vals) {
		if !it.loadNext() {
			return 0, false
		}
	}
	v := it.vals[it.pos]
	it.pos++
	return v, true
}

// SeekGE advances to the smallest value >= id at or after the current
// position and returns it, or ok=false when no such value exists.
// Blocks wholly below id are skipped without decoding; seeks must be
// monotone (the cursor never moves backwards).
func (it *Iter) SeekGE(id ID) (ID, bool) {
	// Already-decoded block: search its remainder first.
	if it.pos < len(it.vals) && it.vals[len(it.vals)-1] >= id {
		i := it.pos + searchIDs(it.vals[it.pos:], id)
		it.pos = i + 1
		return it.vals[i], true
	}
	it.pos = len(it.vals) // exhaust current block
	for {
		start, end, base, last, ok := it.bc.next()
		if !ok {
			return 0, false
		}
		if it.bc.c.skip != nil && last < id {
			continue // skip the block without decoding
		}
		it.vals = it.bc.c.decodeRange(start, end, base, it.buf[:0])
		i := searchIDs(it.vals, id)
		if i == len(it.vals) {
			continue // single-block case with id past the end
		}
		it.pos = i + 1
		return it.vals[i], true
	}
}

// View is a read-only view of a sorted ID list: either a raw slice or a
// compressed block list. It is the value handed across layer boundaries
// (store → batch engine, main store → delta overlay) so that compressed
// backends can serve candidate lists zero-copy while raw backends keep
// their slice form.
type View struct {
	raw   []ID
	isRaw bool
	c     Compressed
}

// ViewOf wraps a sorted slice (not copied; the caller must keep it
// immutable for the view's lifetime).
func ViewOf(ids []ID) View { return View{raw: ids, isRaw: true} }

// View returns c as a View.
func (c Compressed) View() View { return View{c: c} }

// Len returns the number of values.
func (v View) Len() int {
	if v.isRaw {
		return len(v.raw)
	}
	return v.c.n
}

// Raw returns the underlying slice and true when the view is a raw
// slice, letting callers keep slice fast paths.
func (v View) Raw() ([]ID, bool) { return v.raw, v.isRaw }

// Contains reports whether id is in the list.
func (v View) Contains(id ID) bool {
	if v.isRaw {
		return ContainsSorted(v.raw, id)
	}
	return v.c.Contains(id)
}

// AppendTo appends every value in ascending order to dst.
func (v View) AppendTo(dst []ID) []ID {
	if v.isRaw {
		return append(dst, v.raw...)
	}
	return v.c.AppendTo(dst)
}

// Range streams every value in ascending order until fn returns false.
func (v View) Range(fn func(ID) bool) {
	if v.isRaw {
		for _, id := range v.raw {
			if !fn(id) {
				return
			}
		}
		return
	}
	v.c.Range(fn)
}

// MergeFilterView merge-joins a non-decreasing binding column against a
// sorted candidate view, calling keep with the index of every column
// entry present in the view, in ascending index order. Raw views take
// the slice gallop (MergeFilter); compressed views advance block by
// block, skipping — without decoding — every block whose maximum is
// below the column's current value, and galloping the column past each
// block's range. This is the batch engine's merge-intersect step over
// compressed storage.
func MergeFilterView(col []ID, v View, keep func(i int)) {
	if v.isRaw {
		MergeFilter(col, v.raw, keep)
		return
	}
	c := v.c
	if c.n == 0 || len(col) == 0 {
		return
	}
	var scratch [BlockSize]ID
	i := 0
	bc := blockCursor{c: c}
	for i < len(col) {
		start, end, base, last, ok := bc.next()
		if !ok {
			return
		}
		if c.skip != nil && last < col[i] {
			continue // whole block below the column cursor: skip, no decode
		}
		vals := c.decodeRange(start, end, base, scratch[:0])
		j := 0
		for i < len(col) && j < len(vals) {
			switch {
			case col[i] < vals[j]:
				i = Gallop(col, i+1, vals[j])
			case col[i] > vals[j]:
				j = Gallop(vals, j+1, col[i])
			default:
				val := vals[j]
				for i < len(col) && col[i] == val {
					keep(i)
					i++
				}
				j++
			}
		}
	}
}
