package idlist

import (
	"math/rand"
	"reflect"
	"testing"
)

// randSorted returns a random strictly increasing slice of n ids with
// gaps drawn up to maxGap.
func randSorted(rng *rand.Rand, n int, maxGap int64) []ID {
	out := make([]ID, 0, n)
	v := ID(0)
	for i := 0; i < n; i++ {
		v += ID(rng.Int63n(maxGap) + 1)
		out = append(out, v)
	}
	return out
}

func TestCompressRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 127, 128, 129, 255, 256, 1000, 5000} {
		ids := randSorted(rng, n, 1000)
		c := Compress(ids)
		if c.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, c.Len())
		}
		got := c.AppendTo(nil)
		if n == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, ids) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
		for i, want := range ids {
			if got := c.At(i); got != want {
				t.Fatalf("n=%d: At(%d) = %d, want %d", n, i, got, want)
			}
		}
	}
}

func TestCompressedContains(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ids := randSorted(rng, 700, 5)
	c := Compress(ids)
	set := make(map[ID]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	for probe := ID(0); probe <= ids[len(ids)-1]+3; probe++ {
		if got := c.Contains(probe); got != set[probe] {
			t.Fatalf("Contains(%d) = %v, want %v", probe, got, set[probe])
		}
	}
}

func TestIterSeekGE(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ids := randSorted(rng, 1000, 7)
	c := Compress(ids)

	// Full iteration equals the input.
	it := c.Iter()
	for i := 0; ; i++ {
		v, ok := it.Next()
		if !ok {
			if i != len(ids) {
				t.Fatalf("iterator stopped at %d, want %d", i, len(ids))
			}
			break
		}
		if v != ids[i] {
			t.Fatalf("Next %d = %d, want %d", i, v, ids[i])
		}
	}

	// SeekGE from a fresh iterator matches a linear search.
	for trial := 0; trial < 500; trial++ {
		target := ID(rng.Int63n(int64(ids[len(ids)-1]) + 10))
		it := c.Iter()
		got, ok := it.SeekGE(target)
		wantIdx := searchIDs(ids, target)
		if wantIdx == len(ids) {
			if ok {
				t.Fatalf("SeekGE(%d) = %d, want none", target, got)
			}
			continue
		}
		if !ok || got != ids[wantIdx] {
			t.Fatalf("SeekGE(%d) = %d,%v, want %d", target, got, ok, ids[wantIdx])
		}
		// The iterator continues from the seek position.
		if wantIdx+1 < len(ids) {
			next, ok := it.Next()
			if !ok || next != ids[wantIdx+1] {
				t.Fatalf("Next after SeekGE(%d) = %d,%v, want %d", target, next, ok, ids[wantIdx+1])
			}
		}
	}

	// Monotone seeks on one iterator never go backwards.
	it2 := c.Iter()
	prev := ID(0)
	for trial := 0; trial < 200; trial++ {
		prev += ID(rng.Int63n(40) + 1)
		got, ok := it2.SeekGE(prev)
		if !ok {
			break
		}
		if got < prev {
			t.Fatalf("monotone SeekGE(%d) went backwards to %d", prev, got)
		}
	}
}

func TestMergeFilterView(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		list := randSorted(rng, rng.Intn(600), 6)
		// Non-decreasing column with duplicates.
		col := make([]ID, rng.Intn(400))
		v := ID(0)
		for i := range col {
			v += ID(rng.Int63n(4))
			col[i] = v
		}
		var want []int
		MergeFilter(col, list, func(i int) { want = append(want, i) })
		var got []int
		MergeFilterView(col, Compress(list).View(), func(i int) { got = append(got, i) })
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: MergeFilterView = %v, want %v", trial, got, want)
		}
		var gotRaw []int
		MergeFilterView(col, ViewOf(list), func(i int) { gotRaw = append(gotRaw, i) })
		if !reflect.DeepEqual(gotRaw, want) {
			t.Fatalf("trial %d: raw MergeFilterView = %v, want %v", trial, gotRaw, want)
		}
	}
}

func TestPackedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		nKeys := rng.Intn(120)
		keys := randSorted(rng, nKeys, 9)
		lists := make([][]ID, nKeys)
		var b PackedBuilder
		total := 0
		for i, k := range keys {
			lists[i] = randSorted(rng, rng.Intn(300)+1, 11)
			total += len(lists[i])
			b.Append(k, lists[i])
		}
		p := b.Finish()
		if p.Len() != nKeys || p.Total() != total {
			t.Fatalf("trial %d: Len/Total = %d/%d, want %d/%d", trial, p.Len(), p.Total(), nKeys, total)
		}

		// Range reproduces every entry in order.
		i := 0
		p.Range(func(k ID, v View) bool {
			if k != keys[i] {
				t.Fatalf("trial %d: Range key %d = %d, want %d", trial, i, k, keys[i])
			}
			if got := v.AppendTo(nil); !reflect.DeepEqual(got, lists[i]) {
				t.Fatalf("trial %d: Range list %d mismatch", trial, i)
			}
			i++
			return true
		})
		if i != nKeys {
			t.Fatalf("trial %d: Range visited %d, want %d", trial, i, nKeys)
		}

		// Find hits every present key and misses absent ones.
		present := make(map[ID]int, nKeys)
		for i, k := range keys {
			present[k] = i
		}
		maxK := ID(10)
		if nKeys > 0 {
			maxK = keys[nKeys-1] + 5
		}
		for probe := ID(0); probe <= maxK; probe++ {
			v, ok := p.Find(probe)
			if idx, want := present[probe]; want != ok {
				t.Fatalf("trial %d: Find(%d) ok = %v, want %v", trial, probe, ok, want)
			} else if ok {
				if got := v.AppendTo(nil); !reflect.DeepEqual(got, lists[idx]) {
					t.Fatalf("trial %d: Find(%d) list mismatch", trial, probe)
				}
			}
		}

		// entry(i) agrees with Range order.
		for i, k := range keys {
			gk, gv := p.entry(i)
			if gk != k {
				t.Fatalf("trial %d: entry(%d) key = %d, want %d", trial, i, gk, k)
			}
			if got := gv.AppendTo(nil); !reflect.DeepEqual(got, lists[i]) {
				t.Fatalf("trial %d: entry(%d) list mismatch", trial, i)
			}
		}
	}
}

func TestVecPackedAccessors(t *testing.T) {
	var b PackedBuilder
	b.Append(2, []ID{10, 20})
	b.Append(5, []ID{7})
	b.Append(9, []ID{1, 2, 3})
	v := FromPacked(b.Finish())

	if v.Len() != 3 {
		t.Fatalf("Len = %d", v.Len())
	}
	if got := v.Keys(); !reflect.DeepEqual(got, []ID{2, 5, 9}) {
		t.Fatalf("Keys = %v", got)
	}
	if v.Key(1) != 5 {
		t.Fatalf("Key(1) = %d", v.Key(1))
	}
	l, ok := v.Find(5)
	if !ok || !reflect.DeepEqual(l.IDs(), []ID{7}) {
		t.Fatalf("Find(5) = %v, %v", l, ok)
	}
	if _, ok := v.Find(4); ok {
		t.Fatal("Find(4) should miss")
	}
	if got := v.List(2).IDs(); !reflect.DeepEqual(got, []ID{1, 2, 3}) {
		t.Fatalf("List(2) = %v", got)
	}

	// Mutation unpacks, preserving content.
	v.Insert(7, FromSorted([]ID{42}))
	if v.Packed() != nil {
		t.Fatal("Insert did not unpack")
	}
	if got := v.Keys(); !reflect.DeepEqual(got, []ID{2, 5, 7, 9}) {
		t.Fatalf("Keys after Insert = %v", got)
	}
	l, _ = v.Find(9)
	if !reflect.DeepEqual(l.IDs(), []ID{1, 2, 3}) {
		t.Fatalf("Find(9) after unpack = %v", l.IDs())
	}
}

func TestCompressedListMutation(t *testing.T) {
	l := FromCompressed(Compress([]ID{3, 8, 12}))
	if !l.Compressed() {
		t.Fatal("list should start compressed")
	}
	if !l.Contains(8) || l.Contains(9) {
		t.Fatal("Contains on compressed list wrong")
	}
	if !l.Insert(9) {
		t.Fatal("Insert(9) reported unchanged")
	}
	if l.Compressed() {
		t.Fatal("Insert did not decompress")
	}
	if got := l.IDs(); !reflect.DeepEqual(got, []ID{3, 8, 9, 12}) {
		t.Fatalf("IDs after Insert = %v", got)
	}
}

func TestCompressSpaceWin(t *testing.T) {
	// A dense list must compress well below 8 bytes/entry.
	ids := make([]ID, 10000)
	for i := range ids {
		ids[i] = ID(i*3 + 1)
	}
	c := Compress(ids)
	if got, raw := c.SizeBytes(), 8*len(ids); got*2 > raw {
		t.Fatalf("compressed %d bytes vs raw %d: less than 2x win", got, raw)
	}
}
