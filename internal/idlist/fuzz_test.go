package idlist

import (
	"encoding/binary"
	"slices"
	"testing"
)

// FuzzBlockRoundTrip feeds arbitrary byte strings interpreted as id
// deltas through the block codec and asserts Compress → decode is the
// identity, Contains answers membership exactly, and SeekGE agrees
// with a linear scan — the invariants every merge-join over compressed
// storage depends on.
func FuzzBlockRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	seed := make([]byte, 300)
	for i := range seed {
		seed[i] = byte(i % 7)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, raw []byte) {
		// Interpret the fuzz input as a uvarint delta stream, building a
		// strictly increasing id list (deltas forced >= 1).
		var ids []ID
		v := ID(0)
		for pos := 0; pos < len(raw); {
			d, k := binary.Uvarint(raw[pos:])
			if k <= 0 {
				break
			}
			pos += k
			v += ID(d%(1<<40)) + 1
			ids = append(ids, v)
			if len(ids) > 4096 {
				break
			}
		}

		c := Compress(ids)
		if c.Len() != len(ids) {
			t.Fatalf("Len = %d, want %d", c.Len(), len(ids))
		}
		got := c.AppendTo(nil)
		if !slices.Equal(got, ids) {
			t.Fatalf("round trip mismatch: %d vs %d values", len(got), len(ids))
		}
		for i, want := range ids {
			if g := c.At(i); g != want {
				t.Fatalf("At(%d) = %d, want %d", i, g, want)
			}
		}
		// Membership probes: every present id, plus its neighbors.
		for _, id := range ids {
			if !c.Contains(id) {
				t.Fatalf("Contains(%d) = false for present id", id)
			}
			if _, found := slices.BinarySearch(ids, id+1); !found && c.Contains(id+1) {
				t.Fatalf("Contains(%d) = true for absent id", id+1)
			}
		}
		// SeekGE agrees with binary search.
		for _, id := range ids {
			for _, probe := range []ID{id - 1, id, id + 1} {
				it := c.Iter()
				g, ok := it.SeekGE(probe)
				i, _ := slices.BinarySearch(ids, probe)
				if i == len(ids) {
					if ok {
						t.Fatalf("SeekGE(%d) = %d, want none", probe, g)
					}
				} else if !ok || g != ids[i] {
					t.Fatalf("SeekGE(%d) = %d,%v, want %d", probe, g, ok, ids[i])
				}
			}
		}
	})
}
