// Package idlist implements sorted lists of dictionary IDs and the list
// algebra that Hexastore query processing is built on: binary search,
// sorted insertion/removal, linear merge-joins (intersection), unions,
// and differences.
//
// The paper's central performance argument (§4.2) is that every vector and
// terminal list in a Hexastore is sorted, so all first-step pairwise joins
// are linear merge-joins. This package is that substrate.
package idlist

import (
	"slices"

	"hexastore/internal/dictionary"
)

// ID re-exports the dictionary identifier type for brevity.
type ID = dictionary.ID

// List is a sorted set of IDs (ascending, no duplicates). The zero value
// is an empty list ready to use. Lists are NOT safe for concurrent
// mutation; stores provide their own synchronization.
//
// A List is physically either a raw slice or a block-compressed payload
// (see Compressed). Every read accessor works on either form; mutation
// decompresses first (decompress-on-write), leaving the immutable
// compressed payload untouched for any reader still holding a view of
// it.
type List struct {
	ids  []ID
	comp *Compressed
}

// fromView materializes a View as a List without copying data: raw
// views alias their slice, compressed views share the compressed
// payload.
func fromView(v View) *List {
	if ids, ok := v.Raw(); ok {
		return &List{ids: ids}
	}
	c := v.c
	return &List{comp: &c}
}

// FromCompressed wraps an immutable compressed list.
func FromCompressed(c Compressed) *List { return &List{comp: &c} }

// ListOf materializes a View as a List without copying data: raw views
// alias their slice, compressed views share the compressed payload.
func ListOf(v View) *List { return fromView(v) }

// View returns a read-only view of the list (zero copy in both forms).
func (l *List) View() View {
	if l == nil {
		return View{isRaw: true}
	}
	if l.comp != nil {
		return l.comp.View()
	}
	return ViewOf(l.ids)
}

// Compressed reports whether the list is in compressed form.
func (l *List) Compressed() bool { return l != nil && l.comp != nil }

// decompress converts a compressed list to raw form in place.
func (l *List) decompress() {
	if l.comp != nil {
		l.ids = l.comp.AppendTo(make([]ID, 0, l.comp.Len()))
		l.comp = nil
	}
}

// FromSorted wraps an already-sorted, duplicate-free slice. The slice is
// owned by the List afterwards. It panics if the input is not strictly
// increasing, since a silently unsorted list would corrupt every
// merge-join built on top of it.
func FromSorted(ids []ID) *List {
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			panic("idlist: FromSorted input not strictly increasing")
		}
	}
	return &List{ids: ids}
}

// FromUnsorted builds a list from arbitrary input, sorting and
// deduplicating a copy.
func FromUnsorted(ids []ID) *List {
	cp := make([]ID, len(ids))
	copy(cp, ids)
	slices.Sort(cp)
	return &List{ids: dedupeSorted(cp)}
}

func dedupeSorted(ids []ID) []ID {
	if len(ids) < 2 {
		return ids
	}
	w := 1
	for r := 1; r < len(ids); r++ {
		if ids[r] != ids[w-1] {
			ids[w] = ids[r]
			w++
		}
	}
	return ids[:w]
}

// Len returns the number of IDs in the list.
func (l *List) Len() int {
	if l == nil {
		return 0
	}
	if l.comp != nil {
		return l.comp.Len()
	}
	return len(l.ids)
}

// At returns the i-th smallest ID.
func (l *List) At(i int) ID {
	if l.comp != nil {
		return l.comp.At(i)
	}
	return l.ids[i]
}

// IDs exposes the sorted slice form. For a raw list the result aliases
// internal storage and callers must not mutate it; a compressed list is
// decoded into a fresh slice on every call — prefer View or AppendTo on
// paths that may see compressed lists.
func (l *List) IDs() []ID {
	if l == nil {
		return nil
	}
	if l.comp != nil {
		return l.comp.AppendTo(make([]ID, 0, l.comp.Len()))
	}
	return l.ids
}

// AppendTo appends every ID in ascending order to dst.
func (l *List) AppendTo(dst []ID) []ID {
	if l == nil {
		return dst
	}
	if l.comp != nil {
		return l.comp.AppendTo(dst)
	}
	return append(dst, l.ids...)
}

// Copy returns a deep copy of the list (in raw form).
func (l *List) Copy() *List {
	return &List{ids: l.AppendTo(make([]ID, 0, l.Len()))}
}

// search returns the index at which id is or would be inserted.
func (l *List) search(id ID) int {
	ids := l.ids
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Contains reports whether id is in the list.
func (l *List) Contains(id ID) bool {
	if l == nil {
		return false
	}
	if l.comp != nil {
		return l.comp.Contains(id)
	}
	i := l.search(id)
	return i < len(l.ids) && l.ids[i] == id
}

// Insert adds id, keeping the list sorted. It reports whether the list
// changed (false if id was already present). Compressed lists are
// decoded to raw form first (decompress-on-write).
func (l *List) Insert(id ID) bool {
	l.decompress()
	i := l.search(id)
	if i < len(l.ids) && l.ids[i] == id {
		return false
	}
	l.ids = append(l.ids, 0)
	copy(l.ids[i+1:], l.ids[i:])
	l.ids[i] = id
	return true
}

// Remove deletes id. It reports whether the list changed. Compressed
// lists are decoded to raw form first (decompress-on-write).
func (l *List) Remove(id ID) bool {
	l.decompress()
	i := l.search(id)
	if i >= len(l.ids) || l.ids[i] != id {
		return false
	}
	copy(l.ids[i:], l.ids[i+1:])
	l.ids = l.ids[:len(l.ids)-1]
	return true
}

// Range calls fn for every ID in ascending order until fn returns false.
func (l *List) Range(fn func(ID) bool) {
	if l == nil {
		return
	}
	if l.comp != nil {
		l.comp.Range(fn)
		return
	}
	for _, id := range l.ids {
		if !fn(id) {
			return
		}
	}
}

// Intersect returns the sorted intersection of a and b using a linear
// merge-join, switching to a binary-probing gallop when the sizes are
// lopsided.
func Intersect(a, b *List) *List {
	la, lb := a.IDs(), b.IDs()
	if len(la) > len(lb) {
		la, lb = lb, la
	}
	if len(la) == 0 {
		return &List{}
	}
	// If the small side is much smaller, probe with binary search.
	if len(lb) > 16*len(la) {
		out := make([]ID, 0, len(la))
		big := &List{ids: lb}
		for _, id := range la {
			if big.Contains(id) {
				out = append(out, id)
			}
		}
		return &List{ids: out}
	}
	out := make([]ID, 0, len(la))
	i, j := 0, 0
	for i < len(la) && j < len(lb) {
		switch {
		case la[i] < lb[j]:
			i++
		case la[i] > lb[j]:
			j++
		default:
			out = append(out, la[i])
			i++
			j++
		}
	}
	return &List{ids: out}
}

// MergeJoin performs a linear merge-join of a and b, invoking fn once per
// common ID in ascending order. It is the streaming form of Intersect.
func MergeJoin(a, b *List, fn func(ID)) {
	la, lb := a.IDs(), b.IDs()
	i, j := 0, 0
	for i < len(la) && j < len(lb) {
		switch {
		case la[i] < lb[j]:
			i++
		case la[i] > lb[j]:
			j++
		default:
			fn(la[i])
			i++
			j++
		}
	}
}

// MergeJoinAdaptive is MergeJoin with galloping: when one input is much
// smaller than the other, each element of the small side is located in
// the large side by binary search over the remaining suffix instead of
// stepping linearly. Output order is unchanged (ascending). This is the
// join used where list sizes are routinely lopsided — e.g. intersecting
// a per-object subject list (often a handful of ids) with a large
// selection.
func MergeJoinAdaptive(a, b *List, fn func(ID)) {
	la, lb := a.IDs(), b.IDs()
	if len(la) > len(lb) {
		la, lb = lb, la
	}
	if len(la) == 0 {
		return
	}
	if len(lb) <= 16*len(la) {
		mergeJoinSlices(la, lb, fn)
		return
	}
	lo := 0
	for _, id := range la {
		i := lo + searchIDs(lb[lo:], id)
		if i >= len(lb) {
			return
		}
		if lb[i] == id {
			fn(id)
		}
		lo = i
	}
}

func mergeJoinSlices(la, lb []ID, fn func(ID)) {
	i, j := 0, 0
	for i < len(la) && j < len(lb) {
		switch {
		case la[i] < lb[j]:
			i++
		case la[i] > lb[j]:
			j++
		default:
			fn(la[i])
			i++
			j++
		}
	}
}

func searchIDs(ids []ID, id ID) int {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Union returns the sorted union of a and b.
func Union(a, b *List) *List {
	la, lb := a.IDs(), b.IDs()
	out := make([]ID, 0, len(la)+len(lb))
	i, j := 0, 0
	for i < len(la) && j < len(lb) {
		switch {
		case la[i] < lb[j]:
			out = append(out, la[i])
			i++
		case la[i] > lb[j]:
			out = append(out, lb[j])
			j++
		default:
			out = append(out, la[i])
			i++
			j++
		}
	}
	out = append(out, la[i:]...)
	out = append(out, lb[j:]...)
	return &List{ids: out}
}

// UnionAll returns the sorted union of any number of lists. It repeatedly
// merges pairs (a simple tournament), which is O(n log k) overall.
func UnionAll(lists []*List) *List {
	switch len(lists) {
	case 0:
		return &List{}
	case 1:
		return lists[0].Copy()
	}
	work := make([]*List, len(lists))
	copy(work, lists)
	for len(work) > 1 {
		var next []*List
		for i := 0; i+1 < len(work); i += 2 {
			next = append(next, Union(work[i], work[i+1]))
		}
		if len(work)%2 == 1 {
			next = append(next, work[len(work)-1])
		}
		work = next
	}
	return work[0]
}

// Difference returns the sorted IDs present in a but not in b.
func Difference(a, b *List) *List {
	la, lb := a.IDs(), b.IDs()
	out := make([]ID, 0, len(la))
	i, j := 0, 0
	for i < len(la) {
		switch {
		case j >= len(lb) || la[i] < lb[j]:
			out = append(out, la[i])
			i++
		case la[i] > lb[j]:
			j++
		default:
			i++
			j++
		}
	}
	return &List{ids: out}
}

// SortMergeJoin joins an UNSORTED slice against a sorted list by sorting
// a copy of the slice first — the paper's "sort-merge join" used for the
// second and later joins of a path expression (§4.3). fn is called once
// per match in ascending order.
func SortMergeJoin(unsorted []ID, sorted *List, fn func(ID)) {
	cp := make([]ID, len(unsorted))
	copy(cp, unsorted)
	slices.Sort(cp)
	MergeJoin(&List{ids: dedupeSorted(cp)}, sorted, fn)
}

// HashJoin is the non-merge alternative used only by the ablation
// benchmark (DESIGN.md §5): it builds a hash set over the smaller input.
func HashJoin(a, b *List, fn func(ID)) {
	la, lb := a.IDs(), b.IDs()
	if len(la) > len(lb) {
		la, lb = lb, la
	}
	set := make(map[ID]struct{}, len(la))
	for _, id := range la {
		set[id] = struct{}{}
	}
	// Iterate the larger side in order so output order matches MergeJoin.
	for _, id := range lb {
		if _, ok := set[id]; ok {
			fn(id)
		}
	}
}

// Builder accumulates IDs in arbitrary order and produces a sorted,
// deduplicated List. It is used by bulk loaders, which append everything
// and sort once instead of paying per-insert shifting costs.
type Builder struct {
	ids []ID
}

// Add appends an ID (duplicates allowed; removed at Finish).
func (b *Builder) Add(id ID) { b.ids = append(b.ids, id) }

// Len returns the number of IDs added so far (before deduplication).
func (b *Builder) Len() int { return len(b.ids) }

// Finish sorts, deduplicates, and returns the list. The builder must not
// be reused afterwards.
func (b *Builder) Finish() *List {
	slices.Sort(b.ids)
	return &List{ids: dedupeSorted(b.ids)}
}
