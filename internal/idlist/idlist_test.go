package idlist

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func ids(vs ...ID) []ID { return vs }

func TestFromSortedPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromSorted(unsorted) did not panic")
		}
	}()
	FromSorted(ids(3, 1, 2))
}

func TestFromSortedPanicsOnDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromSorted(duplicates) did not panic")
		}
	}()
	FromSorted(ids(1, 1, 2))
}

func TestFromUnsorted(t *testing.T) {
	l := FromUnsorted(ids(5, 3, 5, 1, 3, 9))
	if got := l.IDs(); !reflect.DeepEqual(got, ids(1, 3, 5, 9)) {
		t.Errorf("FromUnsorted = %v, want [1 3 5 9]", got)
	}
}

func TestInsertKeepsSortedAndDeduped(t *testing.T) {
	var l List
	for _, v := range ids(5, 1, 3, 5, 2, 9, 1) {
		l.Insert(v)
	}
	if got := l.IDs(); !reflect.DeepEqual(got, ids(1, 2, 3, 5, 9)) {
		t.Errorf("after inserts = %v", got)
	}
	if l.Insert(3) {
		t.Error("Insert(existing) reported change")
	}
	if !l.Insert(4) {
		t.Error("Insert(new) reported no change")
	}
}

func TestRemove(t *testing.T) {
	l := FromUnsorted(ids(1, 2, 3, 4, 5))
	if !l.Remove(3) {
		t.Error("Remove(3) reported no change")
	}
	if l.Remove(3) {
		t.Error("Remove(3) twice reported change")
	}
	if l.Remove(99) {
		t.Error("Remove(absent) reported change")
	}
	if got := l.IDs(); !reflect.DeepEqual(got, ids(1, 2, 4, 5)) {
		t.Errorf("after removes = %v", got)
	}
	// Remove first and last.
	l.Remove(1)
	l.Remove(5)
	if got := l.IDs(); !reflect.DeepEqual(got, ids(2, 4)) {
		t.Errorf("after boundary removes = %v", got)
	}
}

func TestContains(t *testing.T) {
	l := FromUnsorted(ids(2, 4, 6))
	for _, v := range ids(2, 4, 6) {
		if !l.Contains(v) {
			t.Errorf("Contains(%d) = false", v)
		}
	}
	for _, v := range ids(1, 3, 5, 7) {
		if l.Contains(v) {
			t.Errorf("Contains(%d) = true", v)
		}
	}
	var nilList *List
	if nilList.Contains(1) {
		t.Error("nil list Contains = true")
	}
}

func TestNilListAccessors(t *testing.T) {
	var l *List
	if l.Len() != 0 {
		t.Error("nil Len != 0")
	}
	if l.IDs() != nil {
		t.Error("nil IDs != nil")
	}
	l.Range(func(ID) bool { t.Error("nil Range invoked fn"); return true })
}

func TestRangeEarlyStop(t *testing.T) {
	l := FromUnsorted(ids(1, 2, 3, 4))
	var seen []ID
	l.Range(func(id ID) bool {
		seen = append(seen, id)
		return id < 2
	})
	if !reflect.DeepEqual(seen, ids(1, 2)) {
		t.Errorf("Range early stop saw %v", seen)
	}
}

func TestIntersect(t *testing.T) {
	tests := []struct {
		a, b, want []ID
	}{
		{ids(1, 2, 3), ids(2, 3, 4), ids(2, 3)},
		{ids(), ids(1, 2), ids()},
		{ids(1, 3, 5), ids(2, 4, 6), ids()},
		{ids(1, 2, 3), ids(1, 2, 3), ids(1, 2, 3)},
		{ids(5), ids(1, 2, 3, 4, 5, 6), ids(5)},
	}
	for _, tc := range tests {
		got := Intersect(FromUnsorted(tc.a), FromUnsorted(tc.b)).IDs()
		want := FromUnsorted(tc.want).IDs()
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Intersect(%v,%v) = %v, want %v", tc.a, tc.b, got, want)
		}
	}
}

func TestIntersectGallopPath(t *testing.T) {
	// Force the binary-probing branch: |b| > 16*|a|.
	big := make([]ID, 0, 1000)
	for i := 0; i < 1000; i++ {
		big = append(big, ID(i*2)+2) // evens starting at 2
	}
	a := FromUnsorted(ids(4, 5, 100, 101, 2000))
	got := Intersect(a, FromSorted(big)).IDs()
	if !reflect.DeepEqual(got, ids(4, 100, 2000)) {
		t.Errorf("gallop Intersect = %v, want [4 100 2000]", got)
	}
}

func TestUnion(t *testing.T) {
	got := Union(FromUnsorted(ids(1, 3, 5)), FromUnsorted(ids(2, 3, 6))).IDs()
	if !reflect.DeepEqual(got, ids(1, 2, 3, 5, 6)) {
		t.Errorf("Union = %v", got)
	}
}

func TestUnionAll(t *testing.T) {
	lists := []*List{
		FromUnsorted(ids(1, 4)),
		FromUnsorted(ids(2, 4)),
		FromUnsorted(ids(3)),
		FromUnsorted(ids()),
		FromUnsorted(ids(5, 1)),
	}
	got := UnionAll(lists).IDs()
	if !reflect.DeepEqual(got, ids(1, 2, 3, 4, 5)) {
		t.Errorf("UnionAll = %v", got)
	}
	if UnionAll(nil).Len() != 0 {
		t.Error("UnionAll(nil) not empty")
	}
	single := UnionAll(lists[:1])
	if !reflect.DeepEqual(single.IDs(), ids(1, 4)) {
		t.Errorf("UnionAll(single) = %v", single.IDs())
	}
	// Must be a copy, not an alias.
	single.Insert(99)
	if lists[0].Contains(99) {
		t.Error("UnionAll(single) aliases its input")
	}
}

func TestDifference(t *testing.T) {
	got := Difference(FromUnsorted(ids(1, 2, 3, 4)), FromUnsorted(ids(2, 4, 5))).IDs()
	if !reflect.DeepEqual(got, ids(1, 3)) {
		t.Errorf("Difference = %v", got)
	}
}

func TestMergeJoinMatchesIntersect(t *testing.T) {
	a := FromUnsorted(ids(1, 2, 5, 8, 9))
	b := FromUnsorted(ids(2, 3, 5, 9, 10))
	var got []ID
	MergeJoin(a, b, func(id ID) { got = append(got, id) })
	if !reflect.DeepEqual(got, Intersect(a, b).IDs()) {
		t.Errorf("MergeJoin = %v, Intersect = %v", got, Intersect(a, b).IDs())
	}
}

func TestSortMergeJoin(t *testing.T) {
	sorted := FromUnsorted(ids(2, 4, 6, 8))
	var got []ID
	SortMergeJoin(ids(8, 3, 2, 8, 6), sorted, func(id ID) { got = append(got, id) })
	if !reflect.DeepEqual(got, ids(2, 6, 8)) {
		t.Errorf("SortMergeJoin = %v, want [2 6 8]", got)
	}
}

func TestHashJoinMatchesMergeJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		a := randomList(rng, 50)
		b := randomList(rng, 80)
		var mj, hj []ID
		MergeJoin(a, b, func(id ID) { mj = append(mj, id) })
		HashJoin(a, b, func(id ID) { hj = append(hj, id) })
		if !reflect.DeepEqual(mj, hj) {
			t.Fatalf("trial %d: MergeJoin=%v HashJoin=%v", trial, mj, hj)
		}
	}
}

func TestBuilder(t *testing.T) {
	var b Builder
	for _, v := range ids(9, 1, 5, 1, 9, 3) {
		b.Add(v)
	}
	if b.Len() != 6 {
		t.Errorf("Builder.Len = %d, want 6", b.Len())
	}
	got := b.Finish().IDs()
	if !reflect.DeepEqual(got, ids(1, 3, 5, 9)) {
		t.Errorf("Builder.Finish = %v", got)
	}
}

func TestCopyIsIndependent(t *testing.T) {
	orig := FromUnsorted(ids(1, 2, 3))
	cp := orig.Copy()
	cp.Insert(4)
	if orig.Contains(4) {
		t.Error("Copy shares storage with original")
	}
}

func randomList(rng *rand.Rand, maxLen int) *List {
	n := rng.Intn(maxLen)
	var b Builder
	for i := 0; i < n; i++ {
		b.Add(ID(rng.Intn(100) + 1))
	}
	return b.Finish()
}

// Property: Intersect/Union/Difference agree with naive map-based set
// algebra on random inputs.
func TestSetAlgebraProperty(t *testing.T) {
	f := func(rawA, rawB []uint16) bool {
		a := fromRaw(rawA)
		b := fromRaw(rawB)
		setA := toSet(a)
		setB := toSet(b)

		wantI := setOp(setA, setB, func(inA, inB bool) bool { return inA && inB })
		wantU := setOp(setA, setB, func(inA, inB bool) bool { return inA || inB })
		wantD := setOp(setA, setB, func(inA, inB bool) bool { return inA && !inB })

		return equalIDs(Intersect(a, b).IDs(), wantI) &&
			equalIDs(Union(a, b).IDs(), wantU) &&
			equalIDs(Difference(a, b).IDs(), wantD)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Insert then Remove restores the original list.
func TestInsertRemoveInverseProperty(t *testing.T) {
	f := func(raw []uint16, extra uint16) bool {
		l := fromRaw(raw)
		before := append([]ID(nil), l.IDs()...)
		id := ID(extra) + 1
		had := l.Contains(id)
		inserted := l.Insert(id)
		if had == inserted {
			return false // Insert must report change iff absent
		}
		if inserted {
			l.Remove(id)
		}
		return equalIDs(l.IDs(), before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func fromRaw(raw []uint16) *List {
	var b Builder
	for _, v := range raw {
		b.Add(ID(v) + 1)
	}
	return b.Finish()
}

func toSet(l *List) map[ID]bool {
	m := make(map[ID]bool)
	l.Range(func(id ID) bool { m[id] = true; return true })
	return m
}

func setOp(a, b map[ID]bool, keep func(inA, inB bool) bool) []ID {
	var out []ID
	seen := make(map[ID]bool)
	for id := range a {
		seen[id] = true
	}
	for id := range b {
		seen[id] = true
	}
	for id := range seen {
		if keep(a[id], b[id]) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
