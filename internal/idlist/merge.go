package idlist

// This file holds the batch-join primitives the SPARQL merge-join
// execution engine is built on: galloping (exponential) search and a
// position-reporting merge between a binding column and a sorted
// candidate list. They operate on raw ID slices, not *List, because the
// engine's binding tables are columnar []ID storage where values repeat
// (one entry per intermediate row), which Lists — strict sets — cannot
// represent.

// Gallop returns the smallest index i in [from, len(ids)) with
// ids[i] >= target, using exponential probing followed by binary search
// over the located range. ids must be sorted ascending (duplicates
// allowed). It runs in O(log d) where d is the distance from 'from' to
// the answer, which is what makes lopsided merge-joins cheap: each step
// pays for the distance actually advanced, not the list length.
func Gallop(ids []ID, from int, target ID) int {
	n := len(ids)
	if from >= n || ids[from] >= target {
		return from
	}
	// Invariant: ids[lo] < target. Double the step until we overshoot.
	lo, step := from, 1
	for lo+step < n && ids[lo+step] < target {
		lo += step
		step <<= 1
	}
	hi := lo + step
	if hi > n {
		hi = n
	}
	// Binary search in (lo, hi].
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if ids[mid] < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// MergeFilter merge-joins a non-decreasing binding column (duplicates
// allowed) against a strictly-increasing candidate list and calls keep
// with the index of every column entry present in the list, in
// ascending index order. Both sides advance by galloping, so the cost
// is linear in the smaller side and logarithmic in skipped runs of the
// larger — the engine's sorted-column ∩ sorted-list join step.
func MergeFilter(col, list []ID, keep func(i int)) {
	i, j := 0, 0
	for i < len(col) && j < len(list) {
		switch {
		case col[i] < list[j]:
			i = Gallop(col, i+1, list[j])
		case col[i] > list[j]:
			j = Gallop(list, j+1, col[i])
		default:
			v := list[j]
			for i < len(col) && col[i] == v {
				keep(i)
				i++
			}
			j++
		}
	}
}

// ContainsSorted reports whether target occurs in the ascending slice
// ids (duplicates allowed).
func ContainsSorted(ids []ID, target ID) bool {
	i := searchIDs(ids, target)
	return i < len(ids) && ids[i] == target
}
