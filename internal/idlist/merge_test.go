package idlist

import (
	"math/rand"
	"testing"
)

func TestGallop(t *testing.T) {
	ids := []ID{2, 4, 4, 8, 16, 32, 32, 32, 64}
	cases := []struct {
		from   int
		target ID
		want   int
	}{
		{0, 1, 0},
		{0, 2, 0},
		{0, 3, 1},
		{0, 4, 1},
		{2, 4, 2},
		{0, 5, 3},
		{0, 32, 5},
		{0, 33, 8},
		{0, 64, 8},
		{0, 65, 9},
		{9, 1, 9},
	}
	for _, c := range cases {
		if got := Gallop(ids, c.from, c.target); got != c.want {
			t.Errorf("Gallop(from=%d, target=%d) = %d, want %d", c.from, c.target, got, c.want)
		}
	}
}

func TestGallopRandomMatchesSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ids := make([]ID, 0, 500)
	v := ID(0)
	for i := 0; i < 500; i++ {
		v += ID(rng.Intn(3)) // duplicates and gaps
		ids = append(ids, v)
	}
	for trial := 0; trial < 2000; trial++ {
		from := rng.Intn(len(ids) + 1)
		target := ID(rng.Intn(int(v) + 2))
		got := Gallop(ids, from, target)
		want := from
		for want < len(ids) && ids[want] < target {
			want++
		}
		if got != want {
			t.Fatalf("Gallop(from=%d, target=%d) = %d, want %d", from, target, got, want)
		}
	}
}

func TestMergeFilter(t *testing.T) {
	col := []ID{1, 3, 3, 3, 5, 9, 9, 12}
	list := []ID{2, 3, 9, 12, 20}
	var got []int
	MergeFilter(col, list, func(i int) { got = append(got, i) })
	want := []int{1, 2, 3, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("MergeFilter kept %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MergeFilter kept %v, want %v", got, want)
		}
	}
}

func TestMergeFilterRandomMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		col := make([]ID, 0, 100)
		v := ID(0)
		for i := 0; i < rng.Intn(100); i++ {
			v += ID(rng.Intn(4))
			col = append(col, v)
		}
		var lb Builder
		for i := 0; i < rng.Intn(60); i++ {
			lb.Add(ID(rng.Intn(120) + 1))
		}
		list := lb.Finish().IDs()

		var got []int
		MergeFilter(col, list, func(i int) { got = append(got, i) })
		var want []int
		for i, c := range col {
			if ContainsSorted(list, c) {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: kept %v, want %v (col=%v list=%v)", trial, got, want, col, list)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: kept %v, want %v", trial, got, want)
			}
		}
	}
}

func TestContainsSorted(t *testing.T) {
	ids := []ID{1, 4, 4, 9}
	for _, c := range []struct {
		id   ID
		want bool
	}{{0, false}, {1, true}, {2, false}, {4, true}, {9, true}, {10, false}} {
		if got := ContainsSorted(ids, c.id); got != c.want {
			t.Errorf("ContainsSorted(%d) = %v, want %v", c.id, got, c.want)
		}
	}
}
