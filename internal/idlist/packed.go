package idlist

// Packed is the block-compressed rendering of a whole association
// vector: the sorted keys AND their terminal lists, laid out in one
// contiguous byte blob. Where the raw Vec pays a slice header, a List
// allocation, and eight bytes per id, a Packed pays a couple of delta
// varints per entry — which is what turns the paper's five-fold space
// overhead into roughly one compact copy per ordering.
//
// Blob layout — a sequence of entries, one per (key, list) pair in
// ascending key order:
//
//	uvarint keyDelta   key − previous key (the first entry stores the
//	                   key itself)
//	uvarint n          terminal-list length
//	uvarint byteLen    byte length of the list payload that follows
//	payload            AppendCompressed form of the n list values
//
// A skip table of every packedGroup-th key (and its byte offset) makes
// Find a binary search plus a bounded forward walk; byteLen makes the
// walk skip list payloads without decoding them. Lookups hand out
// zero-copy Views into the blob; Packed is immutable, so the views stay
// valid however the owning store evolves (mutation replaces packed
// structures, it never edits them).

import "encoding/binary"

// packedGroup is the entry stride of the packed vector's key skip table.
const packedGroup = 16

// Packed is an immutable packed association vector.
type Packed struct {
	nKeys int
	total int // sum of terminal-list lengths
	data  []byte
	// Skip table: first key and byte offset of every packedGroup-th
	// entry. Nil when the vector fits in one group — the common case on
	// real RDF data, where most heads have a handful of keys; a blob
	// that small is walked from offset zero, and dropping the two skip
	// slices saves two allocations per vector.
	skipKey []ID
	skipOff []uint32
}

// PackedBuilder accumulates (key, sorted list) entries in ascending key
// order and produces a Packed.
type PackedBuilder struct {
	p       Packed
	prevKey ID
}

// Append adds an entry. Keys must arrive strictly increasing and vals
// strictly increasing; both are the invariants every index build in
// this repository already maintains, so violations panic.
func (b *PackedBuilder) Append(key ID, vals []ID) {
	if b.p.nKeys > 0 && key <= b.prevKey {
		panic("idlist: PackedBuilder key out of order")
	}
	if b.p.nKeys%packedGroup == 0 {
		b.p.skipKey = append(b.p.skipKey, key)
		b.p.skipOff = append(b.p.skipOff, uint32(len(b.p.data)))
	}
	b.p.data = binary.AppendUvarint(b.p.data, uint64(key-b.prevKey))
	b.p.data = binary.AppendUvarint(b.p.data, uint64(len(vals)))
	payload := AppendCompressed(nil, vals)
	b.p.data = binary.AppendUvarint(b.p.data, uint64(len(payload)))
	b.p.data = append(b.p.data, payload...)
	b.prevKey = key
	b.p.nKeys++
	b.p.total += len(vals)
}

// Len returns the number of entries appended so far.
func (b *PackedBuilder) Len() int { return b.p.nKeys }

// Finish returns the packed vector. The builder must not be reused.
func (b *PackedBuilder) Finish() *Packed {
	p := b.p
	if p.nKeys <= packedGroup {
		p.skipKey, p.skipOff = nil, nil
	}
	b.p = Packed{}
	return &p
}

// Len returns the number of keys.
func (p *Packed) Len() int {
	if p == nil {
		return 0
	}
	return p.nKeys
}

// Total returns the sum of terminal-list lengths — the number of index
// entries the vector holds.
func (p *Packed) Total() int {
	if p == nil {
		return 0
	}
	return p.total
}

// SizeBytes returns the in-memory footprint of the blob and skip table.
func (p *Packed) SizeBytes() int {
	if p == nil {
		return 0
	}
	return len(p.data) + len(p.skipKey)*8 + len(p.skipOff)*4
}

// uvarintAt is binary.Uvarint with a fast path for the one-byte values
// that dominate delta streams.
func uvarintAt(b []byte, pos int) (uint64, int) {
	if v := b[pos]; v < 0x80 {
		return uint64(v), pos + 1
	}
	v, k := binary.Uvarint(b[pos:])
	return v, pos + k
}

// headerAt decodes only the entry header at byte offset pos (whose key
// delta is relative to prevKey): the key, the list length, the body
// byte range, and the offset of the next entry. Walks over non-matching
// entries stay header-only — no view construction, no inner skip-walk.
func (p *Packed) headerAt(pos int, prevKey ID) (key ID, n, bodyStart, next int) {
	d, pos := uvarintAt(p.data, pos)
	nn, pos := uvarintAt(p.data, pos)
	bl, pos := uvarintAt(p.data, pos)
	return prevKey + ID(d), int(nn), pos, pos + int(bl)
}

// entryAt decodes the entry at byte offset pos (whose key delta is
// relative to prevKey) and returns the key, the list view, and the
// offset of the next entry.
func (p *Packed) entryAt(pos int, prevKey ID) (key ID, v View, next int) {
	key, n, bodyStart, next := p.headerAt(pos, prevKey)
	return key, MakeCompressed(n, p.data[bodyStart:next]).View(), next
}

// groupFor returns the skip-table group whose key range contains key.
func (p *Packed) groupFor(key ID) int {
	lo, hi := 0, len(p.skipKey)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p.skipKey[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// Find returns the terminal-list view for key. The view aliases the
// blob — zero copy.
func (p *Packed) Find(key ID) (View, bool) {
	if p == nil || p.nKeys == 0 {
		return View{}, false
	}
	first, pos, prev := 0, 0, ID(0)
	if p.skipKey != nil {
		g := p.groupFor(key)
		if g < 0 {
			return View{}, false
		}
		first = g * packedGroup
		pos = int(p.skipOff[g])
		prev = p.skipKey[g] // group head: absolute key from the skip table
	}
	end := first + packedGroup
	if end > p.nKeys {
		end = p.nKeys
	}
	for i := first; i < end; i++ {
		k, n, bodyStart, next := p.headerAt(pos, prev)
		if i == first && p.skipKey != nil {
			// Entry key deltas chain across the whole blob; the decoded
			// delta at a group head is relative to the previous group's
			// last key, so substitute the skip table's absolute key.
			k = prev
		}
		if k == key {
			return MakeCompressed(n, p.data[bodyStart:next]).View(), true
		}
		if k > key {
			return View{}, false
		}
		prev = k
		pos = next
	}
	return View{}, false
}

// Range streams every (key, list view) pair in ascending key order
// until fn returns false.
func (p *Packed) Range(fn func(key ID, v View) bool) {
	if p == nil {
		return
	}
	pos := 0
	prev := ID(0)
	for i := 0; i < p.nKeys; i++ {
		k, v, next := p.entryAt(pos, prev)
		if !fn(k, v) {
			return
		}
		prev = k
		pos = next
	}
}

// entry returns the i-th entry (0-based) by walking forward from the
// nearest skip-table group — O(packedGroup) header decodes.
func (p *Packed) entry(i int) (key ID, v View) {
	first, pos, prev := 0, 0, ID(0)
	if p.skipKey != nil {
		g := i / packedGroup
		first = g * packedGroup
		pos = int(p.skipOff[g])
		prev = p.skipKey[g]
	}
	for j := first; ; j++ {
		k, n, bodyStart, next := p.headerAt(pos, prev)
		if j == first && p.skipKey != nil {
			k = prev
		}
		if j == i {
			return k, MakeCompressed(n, p.data[bodyStart:next]).View()
		}
		prev = k
		pos = next
	}
}

// AppendKeys appends every key in ascending order to dst.
func (p *Packed) AppendKeys(dst []ID) []ID {
	p.Range(func(k ID, _ View) bool {
		dst = append(dst, k)
		return true
	})
	return dst
}
