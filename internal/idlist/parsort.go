package idlist

import (
	"slices"
	"sync"
)

// parallelSortMin is the slice length below which ParallelSortFunc falls
// back to a plain sort: goroutine + merge overhead dominates under it.
const parallelSortMin = 1 << 13

// ParallelSortFunc sorts xs with cmp using up to workers goroutines: the
// slice is split into one run per worker, runs are sorted concurrently,
// then adjacent runs are merged pairwise (also concurrently) through one
// scratch buffer — log₂(workers) merge rounds in all. cmp must define a
// total order; equal elements keep the left run's copy first, so for
// value-equal duplicates (the only ties the callers have) the output is
// identical to a sequential sort whatever the worker count.
//
// It is the substrate of the parallel bulk-load pipeline: core.Builder
// sorts its triple permutations with it and the disk bulk loader its
// B+-tree key arrays.
func ParallelSortFunc[E any](xs []E, workers int, cmp func(a, b E) int) {
	if workers > len(xs)/parallelSortMin {
		workers = len(xs) / parallelSortMin
	}
	if workers <= 1 {
		slices.SortFunc(xs, cmp)
		return
	}

	// Cut into `workers` nearly equal runs and sort them concurrently.
	bounds := make([]int, workers+1)
	for i := 0; i <= workers; i++ {
		bounds[i] = i * len(xs) / workers
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			slices.SortFunc(xs[lo:hi], cmp)
		}(bounds[i], bounds[i+1])
	}
	wg.Wait()

	// Pairwise merge rounds, ping-ponging between xs and one scratch
	// buffer. Each round halves the run count; merges of one round are
	// disjoint ranges, so they run concurrently.
	scratch := make([]E, len(xs))
	src, dst := xs, scratch
	for len(bounds) > 2 {
		var next []int
		next = append(next, 0)
		var mg sync.WaitGroup
		for i := 0; i+2 < len(bounds); i += 2 {
			lo, mid, hi := bounds[i], bounds[i+1], bounds[i+2]
			mg.Add(1)
			go func() {
				defer mg.Done()
				mergeRuns(dst[lo:hi], src[lo:mid], src[mid:hi], cmp)
			}()
			next = append(next, hi)
		}
		if len(bounds)%2 == 0 { // odd run count: carry the last run over
			lo, hi := bounds[len(bounds)-2], bounds[len(bounds)-1]
			mg.Add(1)
			go func() {
				defer mg.Done()
				copy(dst[lo:hi], src[lo:hi])
			}()
			next = append(next, hi)
		}
		mg.Wait()
		bounds = next
		src, dst = dst, src
	}
	if &src[0] != &xs[0] {
		copy(xs, src)
	}
}

// mergeRuns stably merges the sorted runs a and b into out
// (len(out) == len(a)+len(b)); ties take from a first.
func mergeRuns[E any](out, a, b []E, cmp func(x, y E) int) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if cmp(a[i], b[j]) <= 0 {
			out[k] = a[i]
			i++
		} else {
			out[k] = b[j]
			j++
		}
		k++
	}
	copy(out[k:], a[i:])
	copy(out[k+len(a)-i:], b[j:])
}

// ParallelSort sorts ids ascending using up to workers goroutines.
func ParallelSort(ids []ID, workers int) {
	ParallelSortFunc(ids, workers, func(a, b ID) int {
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	})
}
