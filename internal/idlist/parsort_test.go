package idlist

import (
	"math/rand"
	"slices"
	"testing"
)

func TestParallelSortMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 100, parallelSortMin - 1, parallelSortMin * 3, 100_000} {
		in := make([]ID, n)
		for i := range in {
			in[i] = ID(rng.Intn(n/2 + 1)) // plenty of duplicates
		}
		want := slices.Clone(in)
		slices.Sort(want)
		for _, workers := range []int{1, 2, 3, 8} {
			got := slices.Clone(in)
			ParallelSort(got, workers)
			if !slices.Equal(got, want) {
				t.Fatalf("n=%d workers=%d: parallel sort differs from sequential", n, workers)
			}
		}
	}
}

func TestParallelSortFuncTriples(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := parallelSortMin * 4
	in := make([][3]ID, n)
	for i := range in {
		in[i] = [3]ID{ID(rng.Intn(50)), ID(rng.Intn(50)), ID(rng.Intn(50))}
	}
	cmp := func(a, b [3]ID) int {
		for j := 0; j < 3; j++ {
			if a[j] != b[j] {
				if a[j] < b[j] {
					return -1
				}
				return 1
			}
		}
		return 0
	}
	want := slices.Clone(in)
	slices.SortFunc(want, cmp)
	for _, workers := range []int{2, 5, 16} {
		got := slices.Clone(in)
		ParallelSortFunc(got, workers, cmp)
		if !slices.Equal(got, want) {
			t.Fatalf("workers=%d: parallel triple sort differs from sequential", workers)
		}
	}
}
