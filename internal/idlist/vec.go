package idlist

// Vec is a sorted association vector: keys in ascending order, each
// paired with a pointer to a terminal List. It is the building block of
// every index in this repository (Figure 2 of the Hexastore paper: a
// head resource's vector of second-position keys, each carrying the list
// of third-position resources).
//
// The zero value is an empty vector ready to use. Vec is not safe for
// concurrent mutation.
type Vec struct {
	keys  []ID
	lists []*List
}

// Len returns the number of keys in the vector.
func (v *Vec) Len() int {
	if v == nil {
		return 0
	}
	return len(v.keys)
}

// Key returns the i-th smallest key.
func (v *Vec) Key(i int) ID { return v.keys[i] }

// List returns the terminal list associated with the i-th key. The list
// may be shared storage; callers must not mutate it.
func (v *Vec) List(i int) *List { return v.lists[i] }

// Keys exposes the sorted key slice. Callers must not mutate it.
func (v *Vec) Keys() []ID {
	if v == nil {
		return nil
	}
	return v.keys
}

// KeyList wraps the sorted keys as a List so they can participate in
// merge-joins directly (e.g. merge-joining two subject vectors in osp
// indexing, paper §4.2). The result aliases the vector's keys.
func (v *Vec) KeyList() *List { return &List{ids: v.Keys()} }

// Find returns the terminal list for key, or (nil, false).
func (v *Vec) Find(key ID) (*List, bool) {
	if v == nil {
		return nil, false
	}
	i := v.search(key)
	if i < len(v.keys) && v.keys[i] == key {
		return v.lists[i], true
	}
	return nil, false
}

// Range calls fn for each (key, list) pair in ascending key order until
// fn returns false.
func (v *Vec) Range(fn func(key ID, list *List) bool) {
	if v == nil {
		return
	}
	for i, k := range v.keys {
		if !fn(k, v.lists[i]) {
			return
		}
	}
}

func (v *Vec) search(key ID) int {
	lo, hi := 0, len(v.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Insert adds (key, list) keeping keys sorted; no-op if key is present.
func (v *Vec) Insert(key ID, list *List) {
	i := v.search(key)
	if i < len(v.keys) && v.keys[i] == key {
		return
	}
	v.keys = append(v.keys, 0)
	v.lists = append(v.lists, nil)
	copy(v.keys[i+1:], v.keys[i:])
	copy(v.lists[i+1:], v.lists[i:])
	v.keys[i] = key
	v.lists[i] = list
}

// Remove deletes key; no-op if absent.
func (v *Vec) Remove(key ID) {
	i := v.search(key)
	if i >= len(v.keys) || v.keys[i] != key {
		return
	}
	copy(v.keys[i:], v.keys[i+1:])
	copy(v.lists[i:], v.lists[i+1:])
	v.keys = v.keys[:len(v.keys)-1]
	v.lists = v.lists[:len(v.lists)-1]
}

// Append adds (key, list) at the end. It is the bulk-load fast path and
// panics if key is not strictly greater than the current last key, since
// an out-of-order append would silently corrupt every merge-join over
// the vector.
func (v *Vec) Append(key ID, list *List) {
	if n := len(v.keys); n > 0 && v.keys[n-1] >= key {
		panic("idlist: Vec.Append key out of order")
	}
	v.keys = append(v.keys, key)
	v.lists = append(v.lists, list)
}
