package idlist

// Vec is a sorted association vector: keys in ascending order, each
// paired with a pointer to a terminal List. It is the building block of
// every index in this repository (Figure 2 of the Hexastore paper: a
// head resource's vector of second-position keys, each carrying the list
// of third-position resources).
//
// The zero value is an empty vector ready to use. Vec is not safe for
// concurrent mutation.
//
// A Vec has two physical renderings: the raw form (sorted key slice
// plus a parallel slice of terminal-list pointers, mutable in place)
// and the packed form (one immutable delta+varint blob holding keys and
// lists together; see Packed). Bulk builders produce packed vectors
// when compression is on; every read accessor works on either form, and
// mutation paths unpack first (see Unpack).
type Vec struct {
	keys  []ID
	lists []*List
	pk    *Packed
}

// FromPacked wraps a packed vector.
func FromPacked(p *Packed) *Vec { return &Vec{pk: p} }

// Packed returns the packed rendering, or nil when the vector is raw.
func (v *Vec) Packed() *Packed {
	if v == nil {
		return nil
	}
	return v.pk
}

// Len returns the number of keys in the vector.
func (v *Vec) Len() int {
	if v == nil {
		return 0
	}
	if v.pk != nil {
		return v.pk.Len()
	}
	return len(v.keys)
}

// Key returns the i-th smallest key.
func (v *Vec) Key(i int) ID {
	if v.pk != nil {
		k, _ := v.pk.entry(i)
		return k
	}
	return v.keys[i]
}

// List returns the terminal list associated with the i-th key. The list
// may be shared storage; callers must not mutate it.
func (v *Vec) List(i int) *List {
	if v.pk != nil {
		_, view := v.pk.entry(i)
		return fromView(view)
	}
	return v.lists[i]
}

// Keys exposes the sorted key slice. Callers must not mutate it. For a
// packed vector the keys are materialized into a fresh slice.
func (v *Vec) Keys() []ID {
	if v == nil {
		return nil
	}
	if v.pk != nil {
		return v.pk.AppendKeys(make([]ID, 0, v.pk.Len()))
	}
	return v.keys
}

// KeyList wraps the sorted keys as a List so they can participate in
// merge-joins directly (e.g. merge-joining two subject vectors in osp
// indexing, paper §4.2). The result aliases the vector's keys in raw
// form and is a fresh copy for packed vectors.
func (v *Vec) KeyList() *List { return &List{ids: v.Keys()} }

// Find returns the terminal list for key, or (nil, false).
func (v *Vec) Find(key ID) (*List, bool) {
	if v == nil {
		return nil, false
	}
	if v.pk != nil {
		view, ok := v.pk.Find(key)
		if !ok {
			return nil, false
		}
		return fromView(view), true
	}
	i := v.search(key)
	if i < len(v.keys) && v.keys[i] == key {
		return v.lists[i], true
	}
	return nil, false
}

// FindView returns the terminal-list view for key without materializing
// a List — zero-copy on packed vectors.
func (v *Vec) FindView(key ID) (View, bool) {
	if v == nil {
		return View{}, false
	}
	if v.pk != nil {
		return v.pk.Find(key)
	}
	i := v.search(key)
	if i < len(v.keys) && v.keys[i] == key {
		return ViewOf(v.lists[i].IDs()), true
	}
	return View{}, false
}

// Range calls fn for each (key, list) pair in ascending key order until
// fn returns false. Over a packed vector every callback receives a
// freshly materialized (compressed-backed, zero-copy) List.
func (v *Vec) Range(fn func(key ID, list *List) bool) {
	if v == nil {
		return
	}
	if v.pk != nil {
		v.pk.Range(func(k ID, view View) bool {
			return fn(k, fromView(view))
		})
		return
	}
	for i, k := range v.keys {
		if !fn(k, v.lists[i]) {
			return
		}
	}
}

// RangeViews calls fn for each (key, list view) pair in ascending key
// order until fn returns false — the allocation-free walk the store's
// streaming paths use.
func (v *Vec) RangeViews(fn func(key ID, view View) bool) {
	if v == nil {
		return
	}
	if v.pk != nil {
		v.pk.Range(fn)
		return
	}
	for i, k := range v.keys {
		if !fn(k, ViewOf(v.lists[i].IDs())) {
			return
		}
	}
}

// Unpack converts a packed vector to raw form in place, materializing
// private terminal lists (decompress-on-write). Raw vectors are
// unchanged. The packed blob itself is never mutated, so views handed
// out earlier stay consistent.
func (v *Vec) Unpack() {
	if v == nil || v.pk == nil {
		return
	}
	pk := v.pk
	v.keys = make([]ID, 0, pk.Len())
	v.lists = make([]*List, 0, pk.Len())
	pk.Range(func(k ID, view View) bool {
		v.keys = append(v.keys, k)
		v.lists = append(v.lists, FromSorted(view.AppendTo(nil)))
		return true
	})
	v.pk = nil
}

func (v *Vec) search(key ID) int {
	lo, hi := 0, len(v.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Insert adds (key, list) keeping keys sorted; no-op if key is present.
// Packed vectors are unpacked first (decompress-on-write).
func (v *Vec) Insert(key ID, list *List) {
	v.Unpack()
	i := v.search(key)
	if i < len(v.keys) && v.keys[i] == key {
		return
	}
	v.keys = append(v.keys, 0)
	v.lists = append(v.lists, nil)
	copy(v.keys[i+1:], v.keys[i:])
	copy(v.lists[i+1:], v.lists[i:])
	v.keys[i] = key
	v.lists[i] = list
}

// Remove deletes key; no-op if absent. Packed vectors are unpacked
// first (decompress-on-write).
func (v *Vec) Remove(key ID) {
	v.Unpack()
	i := v.search(key)
	if i >= len(v.keys) || v.keys[i] != key {
		return
	}
	copy(v.keys[i:], v.keys[i+1:])
	copy(v.lists[i:], v.lists[i+1:])
	v.keys = v.keys[:len(v.keys)-1]
	v.lists = v.lists[:len(v.lists)-1]
}

// Append adds (key, list) at the end. It is the bulk-load fast path and
// panics if key is not strictly greater than the current last key, since
// an out-of-order append would silently corrupt every merge-join over
// the vector.
func (v *Vec) Append(key ID, list *List) {
	if n := len(v.keys); n > 0 && v.keys[n-1] >= key {
		panic("idlist: Vec.Append key out of order")
	}
	v.keys = append(v.keys, key)
	v.lists = append(v.lists, list)
}
