package idlist

import (
	"reflect"
	"testing"
)

func newList(vs ...ID) *List { return FromUnsorted(vs) }

func TestVecInsertFindRemove(t *testing.T) {
	var v Vec
	l1, l2, l3 := newList(1), newList(2), newList(3)
	v.Insert(20, l2)
	v.Insert(10, l1)
	v.Insert(30, l3)
	v.Insert(20, newList(99)) // duplicate key: no-op

	if v.Len() != 3 {
		t.Fatalf("Len = %d, want 3", v.Len())
	}
	if !reflect.DeepEqual(v.Keys(), []ID{10, 20, 30}) {
		t.Errorf("Keys = %v", v.Keys())
	}
	got, ok := v.Find(20)
	if !ok || got != l2 {
		t.Errorf("Find(20) = %v,%v; want original list", got, ok)
	}
	if _, ok := v.Find(15); ok {
		t.Error("Find(15) found absent key")
	}

	v.Remove(20)
	v.Remove(20) // idempotent
	if v.Len() != 2 {
		t.Errorf("Len after remove = %d", v.Len())
	}
	if _, ok := v.Find(20); ok {
		t.Error("removed key still found")
	}
}

func TestVecNilSafety(t *testing.T) {
	var v *Vec
	if v.Len() != 0 || v.Keys() != nil {
		t.Error("nil Vec accessors wrong")
	}
	if _, ok := v.Find(1); ok {
		t.Error("nil Vec Find found something")
	}
	v.Range(func(ID, *List) bool { t.Error("nil Vec Range invoked fn"); return true })
}

func TestVecRangeOrderAndEarlyStop(t *testing.T) {
	var v Vec
	for _, k := range []ID{5, 1, 3} {
		v.Insert(k, newList(k*10))
	}
	var keys []ID
	v.Range(func(k ID, l *List) bool {
		keys = append(keys, k)
		if l.At(0) != k*10 {
			t.Errorf("key %d paired with list %v", k, l.IDs())
		}
		return true
	})
	if !reflect.DeepEqual(keys, []ID{1, 3, 5}) {
		t.Errorf("Range order = %v", keys)
	}
	n := 0
	v.Range(func(ID, *List) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop invoked %d times", n)
	}
}

func TestVecAppendChecksOrder(t *testing.T) {
	var v Vec
	v.Append(1, newList(1))
	v.Append(5, newList(2))
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Append did not panic")
		}
	}()
	v.Append(5, newList(3))
}

func TestVecKeyListAliasesKeys(t *testing.T) {
	var v Vec
	v.Insert(2, newList(1))
	v.Insert(7, newList(2))
	kl := v.KeyList()
	if !reflect.DeepEqual(kl.IDs(), []ID{2, 7}) {
		t.Errorf("KeyList = %v", kl.IDs())
	}
	// Merge-joining two key lists is the §4.2 osp showcase.
	var w Vec
	w.Insert(7, newList(3))
	w.Insert(9, newList(4))
	got := Intersect(v.KeyList(), w.KeyList()).IDs()
	if !reflect.DeepEqual(got, []ID{7}) {
		t.Errorf("key-list intersect = %v", got)
	}
}
