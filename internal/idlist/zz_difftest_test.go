package idlist

import (
	"math/rand"
	"sort"
	"testing"
)

func randSortedSet(r *rand.Rand, n int, max uint64) []ID {
	m := map[uint64]bool{}
	for len(m) < n {
		m[r.Uint64()%max] = true
	}
	out := make([]ID, 0, n)
	for v := range m {
		out = append(out, ID(v))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestRandomDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := r.Intn(1000)
		ids := randSortedSet(r, n, 1<<20)
		c := Compress(ids)
		// AppendTo round trip
		got := c.AppendTo(nil)
		if len(got) != len(ids) {
			t.Fatalf("roundtrip len %d != %d", len(got), len(ids))
		}
		for i := range got {
			if got[i] != ids[i] {
				t.Fatalf("roundtrip mismatch at %d", i)
			}
		}
		// Contains / At
		for k := 0; k < 50; k++ {
			probe := ID(r.Uint64() % (1 << 20))
			want := false
			for _, v := range ids {
				if v == probe {
					want = true
				}
			}
			if c.Contains(probe) != want {
				t.Fatalf("Contains(%d) wrong", probe)
			}
		}
		for k := 0; k < 20 && n > 0; k++ {
			i := r.Intn(n)
			if c.At(i) != ids[i] {
				t.Fatalf("At(%d) wrong", i)
			}
		}
		// SeekGE monotone
		it := c.Iter()
		var seeks []ID
		for k := 0; k < 30; k++ {
			seeks = append(seeks, ID(r.Uint64()%(1<<20)))
		}
		sort.Slice(seeks, func(i, j int) bool { return seeks[i] < seeks[j] })
		last := -1
		for _, s := range seeks {
			got, ok := it.SeekGE(s)
			// brute force: smallest value >= s at index > lastReturnedIdx consumed...
			// emulate: cursor semantics = smallest value >= s not before previously returned position
			wantIdx := -1
			for i, v := range ids {
				if i > last && v >= s {
					wantIdx = i
					break
				}
			}
			if wantIdx == -1 {
				if ok {
					t.Fatalf("SeekGE(%d): got %d, want none", s, got)
				}
				continue
			}
			if !ok || got != ids[wantIdx] {
				t.Fatalf("SeekGE(%d): got %v %v, want %d", s, got, ok, ids[wantIdx])
			}
			last = wantIdx
		}
		// MergeFilterView vs brute force (col non-decreasing with dups)
		colN := r.Intn(400)
		col := make([]ID, colN)
		for i := range col {
			col[i] = ID(r.Uint64() % (1 << 20))
		}
		// inject values from ids
		for i := range col {
			if n > 0 && r.Intn(2) == 0 {
				col[i] = ids[r.Intn(n)]
			}
		}
		sort.Slice(col, func(i, j int) bool { return col[i] < col[j] })
		var got2, want2 []int
		MergeFilterView(col, c.View(), func(i int) { got2 = append(got2, i) })
		for i, v := range col {
			if c.Contains(v) {
				want2 = append(want2, i)
			}
		}
		if len(got2) != len(want2) {
			t.Fatalf("trial %d: MergeFilterView %d keeps, want %d", trial, len(got2), len(want2))
		}
		for i := range got2 {
			if got2[i] != want2[i] {
				t.Fatalf("MergeFilterView idx mismatch")
			}
		}
	}
}

func TestPackedDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		nk := r.Intn(100)
		keys := randSortedSet(r, nk, 1<<18)
		var b PackedBuilder
		lists := make(map[ID][]ID)
		for _, k := range keys {
			l := randSortedSet(r, 1+r.Intn(300), 1<<20)
			lists[k] = l
			b.Append(k, l)
		}
		p := b.Finish()
		if p.Len() != nk {
			t.Fatalf("Len")
		}
		for _, k := range keys {
			v, ok := p.Find(k)
			if !ok {
				t.Fatalf("Find(%d) missing", k)
			}
			got := v.AppendTo(nil)
			want := lists[k]
			if len(got) != len(want) {
				t.Fatalf("Find(%d) len %d want %d", k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("Find(%d) value mismatch", k)
				}
			}
		}
		for probe := 0; probe < 50; probe++ {
			k := ID(r.Uint64() % (1 << 18))
			_, ok := p.Find(k)
			want := lists[k] != nil
			if ok != want {
				t.Fatalf("Find(%d)=%v want %v", k, ok, want)
			}
		}
		// entry(i)
		for i := 0; i < nk; i++ {
			k, _ := p.entry(i)
			if k != keys[i] {
				t.Fatalf("entry(%d) key %d want %d", i, k, keys[i])
			}
		}
	}
}
