package iofault

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"syscall"
	"time"
)

// ErrInjected is the default error returned by a firing fault.
var ErrInjected = errors.New("iofault: injected fault")

// ErrCrashed is returned by every operation after the crash point has
// fired: the simulated machine is off. Reopening the same directory
// through a clean FS is how a test simulates the post-power-loss reboot.
var ErrCrashed = errors.New("iofault: simulated crash")

// ErrNoSpace is the real ENOSPC, for faults that simulate a full disk.
// Callers can match it with errors.Is(err, syscall.ENOSPC) exactly as
// they would the genuine condition.
var ErrNoSpace = syscall.ENOSPC

// Op identifies one kind of filesystem operation for fault matching and
// counting.
type Op uint8

// The operation kinds an Injector distinguishes.
const (
	OpOpen Op = iota + 1
	OpRead
	OpWrite // Write and WriteAt
	OpSync
	OpTruncate
	OpRename
	OpRemove
	OpClose
	OpStat
	OpMkdir

	opMax
)

var opNames = [...]string{
	OpOpen: "open", OpRead: "read", OpWrite: "write", OpSync: "sync",
	OpTruncate: "truncate", OpRename: "rename", OpRemove: "remove",
	OpClose: "close", OpStat: "stat", OpMkdir: "mkdir",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// mutating reports whether the op changes durable state. The crash-point
// counter counts exactly these, so "crash at mutation K" enumerates
// every distinct on-disk state a workload can be cut off at.
func (o Op) mutating() bool {
	switch o {
	case OpWrite, OpSync, OpTruncate, OpRename, OpRemove:
		return true
	}
	return false
}

// Fault is one scripted failure. It fires on the Nth operation of the
// given kind (counted across all files of the Injector, 1-based) whose
// path contains Path, returns Err, and is then spent — each Fault fires
// exactly once.
type Fault struct {
	// Op is the operation kind to match.
	Op Op
	// Nth is the 1-based occurrence of matching ops that fires the
	// fault; 0 means the first.
	Nth int64
	// Path, when non-empty, restricts the fault to operations on paths
	// containing it as a substring.
	Path string
	// Err is the error to return; nil means ErrInjected. Use ErrNoSpace
	// for a full-disk simulation.
	Err error
	// Keep, for OpWrite faults, is the number of leading bytes of the
	// failing write that reach the file anyway — a short (torn) write.
	// Negative keeps nothing (the default).
	Keep int
	// Crash, when set, puts the Injector into the crashed state after
	// this fault fires: every subsequent operation fails with
	// ErrCrashed.
	Crash bool
}

func (f Fault) err() error {
	if f.Err != nil {
		return f.Err
	}
	return ErrInjected
}

// Injector wraps an FS with a scriptable fault plan. It is safe for
// concurrent use; fault matching and operation counting are serialized,
// so a single-writer workload observes a fully deterministic operation
// sequence.
type Injector struct {
	inner FS

	mu      sync.Mutex
	faults  []Fault
	counts  [opMax]int64
	muts    int64 // mutating ops performed (or attempted at the crash point)
	crashAt int64 // crash on this mutation ordinal (0 = no crash point)
	// crashTear, for a crash landing on a write, is the fraction of the
	// write's bytes that persist (negative = the whole write persists
	// before the crash; the crash then hits the *next* durable step).
	crashTear float64
	crashed   bool
	latency   time.Duration
}

// NewInjector wraps inner (nil = OS) with an empty fault plan.
func NewInjector(inner FS) *Injector {
	return &Injector{inner: Or(inner), crashTear: -1}
}

// AddFault appends one scripted failure to the plan.
func (in *Injector) AddFault(f Fault) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	if f.Nth <= 0 {
		f.Nth = 1
	}
	if f.Keep == 0 {
		f.Keep = -1
	}
	in.faults = append(in.faults, f)
	return in
}

// SetLatency injects a fixed delay before every operation.
func (in *Injector) SetLatency(d time.Duration) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.latency = d
	return in
}

// CrashAtMutation arms the crash point: the nth mutating operation
// (write, sync, truncate, rename or remove — 1-based, counted across
// all files) fails with ErrCrashed and every operation after it fails
// too. tear applies when the nth mutation is a write: a fraction in
// [0,1) persists that share of the write's bytes before the crash (a
// torn final write); a negative tear persists the whole write and then
// crashes, modeling power loss between the write and whatever came next.
func (in *Injector) CrashAtMutation(n int64, tear float64) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crashAt = n
	in.crashTear = tear
	return in
}

// Crashed reports whether the crash point has fired.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// Mutations returns the number of mutating operations performed so far.
// A fault-free counting pass uses it to size the crash-point space.
func (in *Injector) Mutations() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.muts
}

// Count returns how many operations of the given kind have run.
func (in *Injector) Count(op Op) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[op]
}

// outcome is the verdict of the fault check for one operation.
type outcome struct {
	err  error // nil = proceed normally
	keep int   // for failing writes: bytes to persist first (<0 none)
}

// check counts the operation, fires any matching fault or the crash
// point, and sleeps the injected latency.
func (in *Injector) check(op Op, path string, writeLen int) outcome {
	in.mu.Lock()
	if in.latency > 0 {
		d := in.latency
		in.mu.Unlock()
		time.Sleep(d)
		in.mu.Lock()
	}
	defer in.mu.Unlock()

	if in.crashed {
		return outcome{err: ErrCrashed, keep: -1}
	}
	in.counts[op]++
	if op.mutating() {
		in.muts++
		if in.crashAt > 0 && in.muts == in.crashAt {
			in.crashed = true
			keep := -1
			if op == OpWrite && in.crashTear >= 0 {
				keep = int(in.crashTear * float64(writeLen))
			}
			return outcome{err: ErrCrashed, keep: keep}
		}
	}
	for i := range in.faults {
		f := &in.faults[i]
		if f.Op != op || in.counts[op] != f.Nth {
			continue
		}
		if f.Path != "" && !strings.Contains(path, f.Path) {
			continue
		}
		// Spent: remove so the next matching op proceeds (Nth keeps
		// counting against the shared counter, so later faults still
		// line up).
		err := f.err()
		keep := f.Keep
		if f.Crash {
			in.crashed = true
		}
		in.faults = append(in.faults[:i], in.faults[i+1:]...)
		return outcome{err: err, keep: keep}
	}
	return outcome{keep: -1}
}

func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if o := in.check(OpOpen, name, 0); o.err != nil {
		return nil, o.err
	}
	f, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f, name: name}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if o := in.check(OpRename, oldpath, 0); o.err != nil {
		return o.err
	}
	return in.inner.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if o := in.check(OpRemove, name, 0); o.err != nil {
		return o.err
	}
	return in.inner.Remove(name)
}

func (in *Injector) Stat(name string) (os.FileInfo, error) {
	if o := in.check(OpStat, name, 0); o.err != nil {
		return nil, o.err
	}
	return in.inner.Stat(name)
}

func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	if o := in.check(OpMkdir, path, 0); o.err != nil {
		return o.err
	}
	return in.inner.MkdirAll(path, perm)
}

// injFile routes every file operation through the Injector's fault check.
type injFile struct {
	in   *Injector
	f    File
	name string
}

func (jf *injFile) Read(p []byte) (int, error) {
	if o := jf.in.check(OpRead, jf.name, 0); o.err != nil {
		return 0, o.err
	}
	return jf.f.Read(p)
}

func (jf *injFile) ReadAt(p []byte, off int64) (int, error) {
	if o := jf.in.check(OpRead, jf.name, 0); o.err != nil {
		return 0, o.err
	}
	return jf.f.ReadAt(p, off)
}

// failWrite applies a short-write verdict: persist the kept prefix (the
// torn write), then report the fault. n is what a caller checking only
// the error never trusts — both os semantics and ours return n < len(p)
// alongside the error.
func (jf *injFile) failWrite(o outcome, p []byte, at int64, positional bool) (int, error) {
	n := 0
	if o.keep > 0 {
		keep := min(o.keep, len(p))
		if positional {
			n, _ = jf.f.WriteAt(p[:keep], at)
		} else {
			n, _ = jf.f.Write(p[:keep])
		}
	}
	return n, o.err
}

func (jf *injFile) Write(p []byte) (int, error) {
	if o := jf.in.check(OpWrite, jf.name, len(p)); o.err != nil {
		return jf.failWrite(o, p, 0, false)
	}
	return jf.f.Write(p)
}

func (jf *injFile) WriteAt(p []byte, off int64) (int, error) {
	if o := jf.in.check(OpWrite, jf.name, len(p)); o.err != nil {
		return jf.failWrite(o, p, off, true)
	}
	return jf.f.WriteAt(p, off)
}

func (jf *injFile) Sync() error {
	if o := jf.in.check(OpSync, jf.name, 0); o.err != nil {
		return o.err
	}
	return jf.f.Sync()
}

func (jf *injFile) Truncate(size int64) error {
	if o := jf.in.check(OpTruncate, jf.name, 0); o.err != nil {
		return o.err
	}
	return jf.f.Truncate(size)
}

func (jf *injFile) Stat() (os.FileInfo, error) {
	if o := jf.in.check(OpStat, jf.name, 0); o.err != nil {
		return nil, o.err
	}
	return jf.f.Stat()
}

func (jf *injFile) Close() error {
	// Close is never failed by the crash point (a crashed process's fds
	// are gone either way) but still counts, and scripted OpClose faults
	// apply.
	if o := jf.in.check(OpClose, jf.name, 0); o.err != nil && !errors.Is(o.err, ErrCrashed) {
		return o.err
	}
	return jf.f.Close()
}

func (jf *injFile) Name() string { return jf.name }
