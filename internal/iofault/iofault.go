// Package iofault is the fault-injection seam between the storage
// subsystems and the operating system. Every durability-critical path —
// the write-ahead log, the pagefile, the disk store's dictionary
// sidecar, and checkpoint snapshots — performs its file I/O through the
// small FS/File interfaces defined here instead of calling package os
// directly. Production code passes OS (the default when a nil FS is
// configured), which delegates 1:1 to the real filesystem; tests and the
// crash-consistency torture harness pass an *Injector, which wraps any
// FS with a scriptable fault plan: fail the Nth sync, cut a write short
// (a torn write), return ENOSPC, add latency, or "crash" — after which
// every subsequent operation fails, so reopening the directory with a
// clean FS simulates recovery after power loss.
//
// The interfaces cover exactly the operations the engine performs:
// open/create, positional and appending reads and writes, fsync,
// truncate, rename, remove, stat and mkdir. Keeping the surface this
// small is what makes the fault matrix enumerable — the torture harness
// can count every mutating operation a workload performs and then crash
// at each one in turn.
package iofault

import (
	"io"
	"os"
)

// File is the subset of *os.File the storage layers use. Implementations
// must be safe for the same concurrent use *os.File allows (concurrent
// ReadAt/WriteAt on distinct offsets, Sync racing reads).
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.WriterAt
	io.Closer

	// Sync flushes the file's contents to stable storage (fsync).
	Sync() error
	// Truncate changes the size of the file.
	Truncate(size int64) error
	// Stat returns the FileInfo structure describing the file.
	Stat() (os.FileInfo, error)
	// Name returns the name of the file as presented to OpenFile.
	Name() string
}

// FS is the subset of package os the storage layers use.
type FS interface {
	// OpenFile is the generalized open call, mirroring os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically renames (moves) oldpath to newpath.
	Rename(oldpath, newpath string) error
	// Remove removes the named file.
	Remove(name string) error
	// Stat returns a FileInfo describing the named file.
	Stat(name string) (os.FileInfo, error)
	// MkdirAll creates a directory path along with any necessary parents.
	MkdirAll(path string, perm os.FileMode) error
}

// Open opens the named file for reading, mirroring os.Open.
func Open(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_RDONLY, 0)
}

// Create creates or truncates the named file, mirroring os.Create.
func Create(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

// WriteFile writes data to the named file, creating it if necessary,
// mirroring os.WriteFile.
func WriteFile(fsys FS, name string, data []byte, perm os.FileMode) error {
	f, err := fsys.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// Or returns fsys, or OS when fsys is nil — the idiom every Options
// struct with an FS field uses to keep the real filesystem the default.
func Or(fsys FS) FS {
	if fsys == nil {
		return OS
	}
	return fsys
}

// osFS is the production FS: a 1:1 delegation to package os.
type osFS struct{}

// OS is the real filesystem. It is the default everywhere an FS is
// configurable; production code never sees another implementation.
var OS FS = osFS{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
