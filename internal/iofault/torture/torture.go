// Package torture is the crash-consistency torture harness: it drives
// seeded randomized workloads through the fault-injection filesystem
// (internal/iofault), crashes them at every enumerated fault point —
// each mutating filesystem operation (write, sync, truncate, rename,
// remove) is a distinct on-disk state the machine can die at, including
// torn final writes — then "reboots" by reopening the store through the
// real filesystem and verifies recovery:
//
//   - structural invariants hold (disk B+-tree CheckIntegrity);
//   - the recovered triple set equals the in-memory reference model
//     after exactly M workload batches, for some M between the last
//     batch whose Apply was acknowledged (WAL fsync returned) and the
//     batch in flight at the crash — the standard crash contract:
//     acknowledged writes are never lost, the in-flight write is
//     atomically in or out, nothing else moves;
//   - a SPARQL differential: a query set answers identically on the
//     recovered store and on a fresh in-memory store built from the
//     reference state M.
//
// Two scenarios run. "memory" covers the memory store with WAL and
// snapshot checkpoints, crashing through appends, group-commit fsyncs,
// snapshot tmp-write/fsync/rename, WAL truncation, and Close. "disk"
// covers the disk-backed store behind the delta overlay, crashing
// through the WAL-append window over a bulk-loaded pagefile. Disk
// checkpoint merges rewrite B+-tree pages in place and are not
// power-fail atomic (torn pages are detected by per-page CRCs, not
// rolled back), so the disk scenario keeps its durable main immutable
// during the crash window — the documented recovery story for a crash
// mid-merge is re-seeding the store, not silent self-repair.
package torture

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hexastore/internal/core"
	"hexastore/internal/delta"
	"hexastore/internal/dictionary"
	"hexastore/internal/disk"
	"hexastore/internal/graph"
	"hexastore/internal/iofault"
	"hexastore/internal/rdf"
	"hexastore/internal/sparql"
)

// Options parameterize a torture campaign.
type Options struct {
	// Seed makes the whole campaign deterministic: workload, crash
	// points, and tear fractions all derive from it.
	Seed int64
	// Runs is the total number of crash runs, split across the
	// scenarios (default 200). When a scenario has more runs than fault
	// points, every point is hit at least once and extra cycles revisit
	// them with different tear fractions.
	Runs int
	// Batches is the number of workload batches in the scripted history
	// (default 24). More batches mean more fault points per run.
	Batches int
	// Dir roots the scratch stores; empty uses a temp dir that is
	// removed afterwards.
	Dir string
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Violation is one failed crash-recovery check.
type Violation struct {
	Scenario string
	Run      int
	CrashAt  int64   // mutation ordinal the crash fired at
	Tear     float64 // torn-write fraction (<0 = clean cut after the op)
	Detail   string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s run %d (crash at mutation %d, tear %.2f): %s",
		v.Scenario, v.Run, v.CrashAt, v.Tear, v.Detail)
}

// Result summarizes a campaign.
type Result struct {
	Runs        int   // crash runs executed
	FaultPoints int64 // enumerated fault points across scenarios
	Violations  []Violation
}

// Err returns nil for a clean campaign, else an error naming the first
// violation.
func (r *Result) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	return fmt.Errorf("torture: %d violation(s); first: %s", len(r.Violations), r.Violations[0])
}

// Run executes the campaign.
func Run(opts Options) (*Result, error) {
	if opts.Runs <= 0 {
		opts.Runs = 200
	}
	if opts.Batches <= 0 {
		opts.Batches = 24
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	root := opts.Dir
	if root == "" {
		var err error
		root, err = os.MkdirTemp("", "hextorture")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(root)
	}

	res := &Result{}
	diskRuns := opts.Runs / 2
	memRuns := opts.Runs - diskRuns
	for _, job := range []struct {
		sc   scenario
		runs int
	}{
		{memoryScenario(), memRuns},
		{diskScenario(), diskRuns},
	} {
		if job.runs == 0 {
			continue
		}
		if err := runScenario(job.sc, root, opts.Seed, job.runs, opts.Batches, logf, res); err != nil {
			return res, err
		}
	}
	return res, nil
}

// scenario is one store configuration under torture. open builds the
// store through fsys (the injector during runs); reopen is the
// post-crash reboot through the real filesystem, including any
// structural integrity checks.
type scenario struct {
	name         string
	checkpoints  bool // sprinkle synchronous Checkpoint calls into the script
	includeClose bool // enumerate crash points inside Close's checkpoint too
	seedTriples  int  // triples made durable before the crash window opens
	open         func(fsys iofault.FS, dir string, seed []rdf.Triple) (*delta.Overlay, error)
	reopen       func(dir string) (graph.Graph, func() error, error)
}

func memoryScenario() scenario {
	open := func(fsys iofault.FS, dir string, _ []rdf.Triple) (*delta.Overlay, error) {
		walPath := filepath.Join(dir, "store.wal")
		snap := walPath + ".snapshot"
		dict := dictionary.New()
		st, ok, err := delta.RestoreSnapshotSharedFS(fsys, snap, dict, true)
		if err != nil {
			return nil, err
		}
		if !ok {
			st = core.NewShared(dict)
		}
		return delta.Open(graph.Memory(st), delta.Options{
			WALPath:          walPath,
			SnapshotPath:     snap,
			CompactThreshold: -1, // manual only: op sequences must be deterministic
			Workers:          1,
			FS:               fsys,
		})
	}
	return scenario{
		name:         "memory",
		checkpoints:  true,
		includeClose: true,
		open:         open,
		reopen: func(dir string) (graph.Graph, func() error, error) {
			ov, err := open(nil, dir, nil)
			if err != nil {
				return nil, nil, err
			}
			return ov, ov.Close, nil
		},
	}
}

func diskScenario() scenario {
	const cache = 256
	return scenario{
		name:        "disk",
		seedTriples: 40,
		open: func(fsys iofault.FS, dir string, seed []rdf.Triple) (*delta.Overlay, error) {
			root := filepath.Join(dir, "disk")
			var (
				st  *disk.Store
				err error
			)
			dopts := disk.Options{CacheSize: cache, FS: fsys}
			if disk.Exists(root) {
				st, err = disk.Open(root, dopts)
			} else {
				st, err = disk.Create(root, dopts)
				if err == nil && len(seed) > 0 {
					ids := core.EncodeTriples(st.Dictionary(), seed, 1)
					if lerr := st.BulkLoadParallel(ids, 1); lerr != nil {
						st.Close()
						return nil, lerr
					}
					if ferr := st.Flush(); ferr != nil {
						st.Close()
						return nil, ferr
					}
				}
			}
			if err != nil {
				return nil, err
			}
			ov, err := delta.Open(graph.Disk(st), delta.Options{
				WALPath:          filepath.Join(dir, "store.wal"),
				CompactThreshold: -1,
				Workers:          1,
				FS:               fsys,
			})
			if err != nil {
				st.Close()
				return nil, err
			}
			return ov, nil
		},
		reopen: func(dir string) (graph.Graph, func() error, error) {
			st, err := disk.Open(filepath.Join(dir, "disk"), disk.Options{CacheSize: cache})
			if err != nil {
				return nil, nil, err
			}
			if err := st.CheckIntegrity(); err != nil {
				st.Close()
				return nil, nil, fmt.Errorf("integrity: %w", err)
			}
			ov, err := delta.Open(graph.Disk(st), delta.Options{
				WALPath:          filepath.Join(dir, "store.wal"),
				CompactThreshold: -1,
			})
			if err != nil {
				st.Close()
				return nil, nil, err
			}
			return ov, ov.Close, nil
		},
	}
}

// runScenario sizes the fault-point window with a fault-free dry run,
// then executes the crash runs.
func runScenario(sc scenario, root string, seed int64, runs, nBatches int, logf func(string, ...any), res *Result) error {
	rng := rand.New(rand.NewSource(seed))
	u := newUniverse()
	seedSet := makeSeed(rng, u, sc.seedTriples)
	script := makeScript(rng, u, nBatches, sc.checkpoints, seedSet)
	states := refStates(seedSet, script)

	// Dry run: apply the whole script fault-free and record the
	// mutation ordinals bracketing the crash window. Every crash run
	// replays the identical script, so ordinals line up exactly.
	dryDir := filepath.Join(root, sc.name+"-dry")
	if err := os.MkdirAll(dryDir, 0o755); err != nil {
		return err
	}
	inj := iofault.NewInjector(nil)
	ov, err := sc.open(inj, dryDir, seedSet)
	if err != nil {
		return fmt.Errorf("torture: %s dry open: %w", sc.name, err)
	}
	lo := inj.Mutations()
	for i := range script {
		if _, _, aerr := ov.ApplyTriples(script[i].ops); aerr != nil {
			ov.Close()
			return fmt.Errorf("torture: %s dry batch %d: %w", sc.name, i, aerr)
		}
		if script[i].checkpoint {
			if cerr := ov.Checkpoint(); cerr != nil {
				ov.Close()
				return fmt.Errorf("torture: %s dry checkpoint %d: %w", sc.name, i, cerr)
			}
		}
	}
	end := inj.Mutations()
	if cerr := ov.Close(); cerr != nil {
		return fmt.Errorf("torture: %s dry close: %w", sc.name, cerr)
	}
	hiMut := end
	if sc.includeClose {
		hiMut = inj.Mutations()
	}
	os.RemoveAll(dryDir)
	points := hiMut - lo
	if points <= 0 {
		return fmt.Errorf("torture: %s enumerated no fault points", sc.name)
	}
	res.FaultPoints += points
	logf("torture: %s: %d fault points (mutations %d..%d), %d crash runs", sc.name, points, lo+1, hiMut, runs)

	tears := []float64{-1, 0.5, 0, 0.9, 0.25}
	for r := 0; r < runs; r++ {
		var crashAt int64
		if int64(runs) >= points {
			crashAt = lo + 1 + int64(r)%points
		} else {
			// Fewer runs than points: spread evenly over the window.
			crashAt = lo + 1 + int64(r)*points/int64(runs)
		}
		tear := tears[(int64(r)/points)%int64(len(tears))]
		v, err := crashRun(sc, root, script, states, seedSet, r, crashAt, tear)
		if err != nil {
			return err
		}
		res.Runs++
		if v != nil {
			res.Violations = append(res.Violations, *v)
			logf("torture: VIOLATION: %s", v)
		}
		if (r+1)%50 == 0 {
			logf("torture: %s: %d/%d runs, %d violations", sc.name, r+1, runs, len(res.Violations))
		}
	}
	return nil
}

// crashRun executes one workload-until-crash, reboots, and verifies.
func crashRun(sc scenario, root string, script []batch, states []tripleState, seedSet []rdf.Triple, r int, crashAt int64, tear float64) (*Violation, error) {
	dir := filepath.Join(root, fmt.Sprintf("%s-run%d", sc.name, r))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	viol := func(format string, args ...any) *Violation {
		return &Violation{Scenario: sc.name, Run: r, CrashAt: crashAt, Tear: tear, Detail: fmt.Sprintf(format, args...)}
	}

	inj := iofault.NewInjector(nil).CrashAtMutation(crashAt, tear)
	ov, err := sc.open(inj, dir, seedSet)
	if err != nil {
		// The window starts after setup, so setup must never crash.
		return viol("open failed before the crash window: %v", err), nil
	}
	// applied = batches whose Apply acknowledged (WAL-durable);
	// hi = the furthest batch whose records could have reached disk
	// (the in-flight batch may have been fully written before the
	// crashing fsync).
	applied, hi := 0, 0
	for i := range script {
		if _, _, aerr := ov.ApplyTriples(script[i].ops); aerr != nil {
			hi = applied + 1
			break
		}
		applied = i + 1
		hi = applied
		if script[i].checkpoint {
			if cerr := ov.Checkpoint(); cerr != nil {
				break // checkpoint changes no logical state: hi stays applied
			}
		}
	}
	ov.Close() //nolint:errcheck // the simulated machine is off; errors are the point
	if hi > len(script) {
		hi = len(script)
	}

	// Reboot: reopen through the real filesystem. Everything the
	// injector let through (including torn prefixes) is on disk.
	g, closeG, err := sc.reopen(dir)
	if err != nil {
		return viol("reopen after crash: %v", err), nil
	}
	defer closeG() //nolint:errcheck // verification already done by then
	got, err := tripleSet(g)
	if err != nil {
		return viol("enumerate recovered store: %v", err), nil
	}
	match := -1
	for cand := applied; cand <= hi; cand++ {
		if setsEqual(got, states[cand]) {
			match = cand
			break
		}
	}
	if match < 0 {
		return viol("recovered %d triples match no durable prefix (acked batch %d, in-flight %d): %s",
			len(got), applied, hi, diffDetail(got, states[applied])), nil
	}

	// SPARQL differential: the recovered store and a fresh in-memory
	// store built from reference state `match` must answer identically.
	ref := buildReference(states[match])
	for _, q := range diffQueries {
		want, werr := queryCanon(ref, q)
		if werr != nil {
			return nil, fmt.Errorf("torture: reference query %q: %w", q, werr)
		}
		gotQ, gerr := queryCanon(g, q)
		if gerr != nil {
			return viol("query %q on recovered store: %v", q, gerr), nil
		}
		if want != gotQ {
			return viol("SPARQL differential mismatch at state %d for %q: recovered %d rows, reference %d rows",
				match, q, strings.Count(gotQ, "\n")+1, strings.Count(want, "\n")+1), nil
		}
	}
	return nil, nil
}

// ---- workload model ----

// batch is one scripted update batch, optionally followed by a
// synchronous checkpoint.
type batch struct {
	ops        []graph.TripleOp
	checkpoint bool
}

type tripleState map[rdf.Triple]struct{}

// universe is the closed term vocabulary the workload draws from. Small
// on purpose: collisions (re-adds, removes of live triples, re-adds of
// removed ones) are where recovery bugs live.
type universe struct {
	subj, pred, obj []rdf.Term
}

func newUniverse() universe {
	iri := func(kind string, i int) rdf.Term {
		return rdf.NewIRI(fmt.Sprintf("http://hex.test/%s%d", kind, i))
	}
	var u universe
	for i := 0; i < 12; i++ {
		u.subj = append(u.subj, iri("s", i))
	}
	for i := 0; i < 4; i++ {
		u.pred = append(u.pred, iri("p", i))
	}
	// Objects overlap subjects so join queries have real paths.
	u.obj = append(u.obj, u.subj...)
	for i := 0; i < 12; i++ {
		u.obj = append(u.obj, iri("o", i))
	}
	for i := 0; i < 6; i++ {
		u.obj = append(u.obj, rdf.NewLiteral(fmt.Sprintf("value %d", i)))
	}
	return u
}

func (u universe) randTriple(rng *rand.Rand) rdf.Triple {
	return rdf.Triple{
		Subject:   u.subj[rng.Intn(len(u.subj))],
		Predicate: u.pred[rng.Intn(len(u.pred))],
		Object:    u.obj[rng.Intn(len(u.obj))],
	}
}

// makeSeed draws n distinct triples for pre-window durable state.
func makeSeed(rng *rand.Rand, u universe, n int) []rdf.Triple {
	seen := tripleState{}
	var out []rdf.Triple
	for len(out) < n {
		t := u.randTriple(rng)
		if _, ok := seen[t]; ok {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// makeScript generates the deterministic batch script. A live list (not
// a map — map iteration order would break determinism) biases removes
// toward triples actually present.
func makeScript(rng *rand.Rand, u universe, nBatches int, checkpoints bool, seed []rdf.Triple) []batch {
	live := append([]rdf.Triple(nil), seed...)
	idx := map[rdf.Triple]int{}
	for i, t := range live {
		idx[t] = i
	}
	script := make([]batch, 0, nBatches)
	for b := 0; b < nBatches; b++ {
		n := 1 + rng.Intn(6)
		ops := make([]graph.TripleOp, 0, n)
		for k := 0; k < n; k++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				j := rng.Intn(len(live))
				t := live[j]
				last := len(live) - 1
				live[j] = live[last]
				idx[live[j]] = j
				live = live[:last]
				delete(idx, t)
				ops = append(ops, graph.TripleOp{Del: true, T: t})
			} else {
				t := u.randTriple(rng)
				ops = append(ops, graph.TripleOp{T: t})
				if _, ok := idx[t]; !ok {
					idx[t] = len(live)
					live = append(live, t)
				}
			}
		}
		script = append(script, batch{ops: ops, checkpoint: checkpoints && rng.Intn(6) == 0})
	}
	return script
}

// refStates computes the reference model after each batch: states[i] is
// the triple set once batches[0..i-1] have applied (states[0] is the
// seeded initial state).
func refStates(seed []rdf.Triple, script []batch) []tripleState {
	cur := tripleState{}
	for _, t := range seed {
		cur[t] = struct{}{}
	}
	clone := func() tripleState {
		c := make(tripleState, len(cur))
		for t := range cur {
			c[t] = struct{}{}
		}
		return c
	}
	states := make([]tripleState, 0, len(script)+1)
	states = append(states, clone())
	for _, b := range script {
		for _, op := range b.ops {
			if op.Del {
				delete(cur, op.T)
			} else {
				cur[op.T] = struct{}{}
			}
		}
		states = append(states, clone())
	}
	return states
}

// ---- verification ----

func tripleSet(g graph.Graph) (tripleState, error) {
	set := tripleState{}
	err := graph.DecodeMatch(g, graph.None, graph.None, graph.None, func(t rdf.Triple) bool {
		set[t] = struct{}{}
		return true
	})
	return set, err
}

func setsEqual(a, b tripleState) bool {
	if len(a) != len(b) {
		return false
	}
	for t := range a {
		if _, ok := b[t]; !ok {
			return false
		}
	}
	return true
}

// diffDetail names one triple separating got from want, for violation
// reports.
func diffDetail(got, want tripleState) string {
	for t := range got {
		if _, ok := want[t]; !ok {
			return fmt.Sprintf("extra triple %v (vs acked state, %d triples)", t, len(want))
		}
	}
	for t := range want {
		if _, ok := got[t]; !ok {
			return fmt.Sprintf("missing triple %v (vs acked state, %d triples)", t, len(want))
		}
	}
	return fmt.Sprintf("sizes equal to acked state (%d) but some later state differs", len(want))
}

// buildReference bulk-builds an in-memory store holding exactly state.
func buildReference(state tripleState) graph.Graph {
	ts := make([]rdf.Triple, 0, len(state))
	for t := range state {
		ts = append(ts, t)
	}
	b := core.NewBuilder(nil)
	b.AddAll(core.EncodeTriples(b.Dictionary(), ts, 1))
	return graph.Memory(b.BuildParallel(1))
}

// diffQueries is the SPARQL differential set: a full scan, a bound
// predicate, a join, and an ASK.
var diffQueries = []string{
	"SELECT ?s ?p ?o WHERE { ?s ?p ?o }",
	"SELECT ?s ?o WHERE { ?s <http://hex.test/p0> ?o }",
	"SELECT ?a ?b WHERE { ?a <http://hex.test/p1> ?x . ?x <http://hex.test/p2> ?b }",
	"ASK { <http://hex.test/s0> ?p ?o }",
}

// queryCanon runs q and renders the result in a canonical order-free
// form so two stores can be compared textually.
func queryCanon(g graph.Graph, q string) (string, error) {
	res, err := sparql.NewPlanner(g).Exec(q)
	if err != nil {
		return "", err
	}
	if res.IsAsk {
		return fmt.Sprintf("ask:%v", res.Answer), nil
	}
	rows := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		parts := make([]string, 0, len(row))
		for name, term := range row {
			parts = append(parts, fmt.Sprintf("%s=%d:%s", name, term.Kind, term.Value))
		}
		sort.Strings(parts)
		rows = append(rows, strings.Join(parts, "|"))
	}
	sort.Strings(rows)
	return strings.Join(rows, "\n"), nil
}
