package torture

import "testing"

// TestCampaign runs a reduced torture campaign (every fault point of a
// shorter script, both scenarios) on every CI run; hexbench -torture
// runs the full default campaign. The -race build of this test is what
// makes the torture loop double as a concurrency check.
func TestCampaign(t *testing.T) {
	res, err := Run(Options{
		Seed:    7,
		Runs:    60,
		Batches: 10,
		Dir:     t.TempDir(),
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatalf("torture: %v", err)
	}
	if res.Runs != 60 {
		t.Fatalf("executed %d runs, want 60", res.Runs)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
}

// TestCampaignSeeds exercises a few extra seeds more lightly, so the
// workload shape itself does not ossify around one RNG stream.
func TestCampaignSeeds(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		res, err := Run(Options{Seed: seed, Runs: 20, Batches: 6, Dir: t.TempDir()})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if e := res.Err(); e != nil {
			t.Errorf("seed %d: %v", seed, e)
		}
	}
}
