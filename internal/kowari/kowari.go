// Package kowari implements the three-cyclic-ordering multiple-index
// baseline that the paper attributes to the Kowari system of Wood et al.
// (§2.2.2). Ignoring Kowari's meta (model) node, its six quad orderings
// collapse to the three cyclic triple orderings
//
//	spo, pos, osp
//
// Each ordering is one compound index that independently contains every
// statement, kept fully sorted, so any statement pattern can be answered
// by a prefix range scan of one of the three.
//
// What the cyclic scheme cannot do — and what the paper's ablation
// measures — is produce, for example, a sorted list of subjects for a
// given property (that needs pso) or a sorted property vector for a
// subject-object pair in one probe (that needs sop). Queries that want
// those orders must sort, which is where the sextuple Hexastore wins.
package kowari

import (
	"sort"
	"sync"

	"hexastore/internal/dictionary"
	"hexastore/internal/rdf"
)

// ID re-exports the dictionary id type.
type ID = dictionary.ID

// None is the wildcard marker in patterns.
const None = dictionary.None

// Ordering names one of the three cyclic orderings.
type Ordering uint8

// The three cyclic orderings of Kowari (§2.2.2).
const (
	SPO Ordering = iota
	POS
	OSP
)

// String returns the ordering acronym.
func (o Ordering) String() string {
	switch o {
	case SPO:
		return "spo"
	case POS:
		return "pos"
	case OSP:
		return "osp"
	default:
		return "invalid"
	}
}

// key is a triple permuted into one cyclic ordering.
type key [3]ID

func lessKey(a, b key) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	if a[1] != b[1] {
		return a[1] < b[1]
	}
	return a[2] < b[2]
}

// permute rotates (s,p,o) into ordering ord.
func permute(ord Ordering, s, p, o ID) key {
	switch ord {
	case SPO:
		return key{s, p, o}
	case POS:
		return key{p, o, s}
	default: // OSP
		return key{o, s, p}
	}
}

// unpermute recovers (s,p,o) from a key of ordering ord.
func unpermute(ord Ordering, k key) (s, p, o ID) {
	switch ord {
	case SPO:
		return k[0], k[1], k[2]
	case POS:
		return k[2], k[0], k[1]
	default: // OSP
		return k[1], k[2], k[0]
	}
}

// Store is a triple store with the three cyclic compound indexes. It is
// safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	dict *dictionary.Dictionary
	idx  [3][]key // each sorted in its own permuted order
}

// New returns an empty store with a fresh dictionary.
func New() *Store { return NewShared(dictionary.New()) }

// NewShared returns an empty store using dict, so it can be compared with
// other stores on identical keys.
func NewShared(dict *dictionary.Dictionary) *Store {
	return &Store{dict: dict}
}

// Dictionary returns the store's dictionary.
func (st *Store) Dictionary() *dictionary.Dictionary { return st.dict }

// Len returns the number of distinct triples.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.idx[SPO])
}

// search returns the position of the first key in ix that is >= k.
func search(ix []key, k key) int {
	return sort.Search(len(ix), func(i int) bool { return !lessKey(ix[i], k) })
}

// Add inserts the triple, keeping all three indexes sorted. It reports
// whether the store changed.
func (st *Store) Add(s, p, o ID) bool {
	if s == None || p == None || o == None {
		return false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	k := permute(SPO, s, p, o)
	i := search(st.idx[SPO], k)
	if i < len(st.idx[SPO]) && st.idx[SPO][i] == k {
		return false
	}
	for ord := SPO; ord <= OSP; ord++ {
		k := permute(ord, s, p, o)
		ix := st.idx[ord]
		i := search(ix, k)
		ix = append(ix, key{})
		copy(ix[i+1:], ix[i:])
		ix[i] = k
		st.idx[ord] = ix
	}
	return true
}

// Remove deletes the triple from all three indexes. It reports whether
// the store changed.
func (st *Store) Remove(s, p, o ID) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	k := permute(SPO, s, p, o)
	i := search(st.idx[SPO], k)
	if i >= len(st.idx[SPO]) || st.idx[SPO][i] != k {
		return false
	}
	for ord := SPO; ord <= OSP; ord++ {
		k := permute(ord, s, p, o)
		ix := st.idx[ord]
		i := search(ix, k)
		copy(ix[i:], ix[i+1:])
		st.idx[ord] = ix[:len(ix)-1]
	}
	return true
}

// Has reports whether the triple is present.
func (st *Store) Has(s, p, o ID) bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	k := permute(SPO, s, p, o)
	i := search(st.idx[SPO], k)
	return i < len(st.idx[SPO]) && st.idx[SPO][i] == k
}

// Match streams every triple matching the pattern to fn, with None as
// the wildcard. Each pattern shape maps onto the cyclic ordering whose
// prefix covers the bound positions:
//
//	s p o → spo probe     s p ? → spo prefix    ? p o → pos prefix
//	s ? o → osp prefix    s ? ? → spo prefix    ? p ? → pos prefix
//	? ? o → osp prefix    ? ? ? → spo scan
//
// Every shape is covered — that is Kowari's strength — but the iteration
// order within a shape is fixed by the cyclic ordering (e.g. ⟨?,p,?⟩
// arrives sorted by object, not subject), which is its weakness.
func (st *Store) Match(s, p, o ID, fn func(s, p, o ID) bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()

	var (
		ord      Ordering
		lo       key
		prefixes int
	)
	switch {
	case s != None && p != None && o != None:
		if st.hasLocked(s, p, o) {
			fn(s, p, o)
		}
		return
	case s != None && p != None:
		ord, lo, prefixes = SPO, key{s, p, 0}, 2
	case p != None && o != None:
		ord, lo, prefixes = POS, key{p, o, 0}, 2
	case s != None && o != None:
		ord, lo, prefixes = OSP, key{o, s, 0}, 2
	case s != None:
		ord, lo, prefixes = SPO, key{s, 0, 0}, 1
	case p != None:
		ord, lo, prefixes = POS, key{p, 0, 0}, 1
	case o != None:
		ord, lo, prefixes = OSP, key{o, 0, 0}, 1
	default:
		ord, lo, prefixes = SPO, key{}, 0
	}
	ix := st.idx[ord]
	for i := search(ix, lo); i < len(ix); i++ {
		k := ix[i]
		if prefixes >= 1 && k[0] != lo[0] {
			return
		}
		if prefixes >= 2 && k[1] != lo[1] {
			return
		}
		ms, mp, mo := unpermute(ord, k)
		if !fn(ms, mp, mo) {
			return
		}
	}
}

func (st *Store) hasLocked(s, p, o ID) bool {
	k := permute(SPO, s, p, o)
	i := search(st.idx[SPO], k)
	return i < len(st.idx[SPO]) && st.idx[SPO][i] == k
}

// Count returns the number of triples matching the pattern.
func (st *Store) Count(s, p, o ID) int {
	n := 0
	st.Match(s, p, o, func(_, _, _ ID) bool { n++; return true })
	return n
}

// SubjectsForProperty returns the distinct subjects of property p in
// sorted order. The cyclic pos index delivers them sorted by OBJECT
// first, so this requires collecting and sorting — exactly the extra
// work the paper's §2.2.2 critique predicts ("These indices cannot
// provide, for example, a sorted list of the subjects defined for a
// given property"). The sextuple Hexastore answers the same request by
// walking its pso vector with no sort. The cyclic-vs-sextuple ablation
// benchmarks this method.
func (st *Store) SubjectsForProperty(p ID) []ID {
	st.mu.RLock()
	defer st.mu.RUnlock()
	ix := st.idx[POS]
	seen := make(map[ID]struct{})
	for i := search(ix, key{p, 0, 0}); i < len(ix) && ix[i][0] == p; i++ {
		seen[ix[i][2]] = struct{}{}
	}
	out := make([]ID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddTriple dictionary-encodes and inserts an rdf.Triple.
func (st *Store) AddTriple(t rdf.Triple) bool {
	if !t.Valid() {
		return false
	}
	s, p, o := st.dict.EncodeTriple(t)
	return st.Add(s, p, o)
}

// Builder bulk-loads a Store by appending everything and sorting once.
type Builder struct {
	dict    *dictionary.Dictionary
	triples []key // in spo order
}

// NewBuilder returns a bulk loader (pass nil for a fresh dictionary).
func NewBuilder(dict *dictionary.Dictionary) *Builder {
	if dict == nil {
		dict = dictionary.New()
	}
	return &Builder{dict: dict}
}

// Add buffers one triple.
func (b *Builder) Add(s, p, o ID) {
	if s == None || p == None || o == None {
		return
	}
	b.triples = append(b.triples, key{s, p, o})
}

// AddTriple dictionary-encodes and buffers an rdf.Triple.
func (b *Builder) AddTriple(t rdf.Triple) {
	if !t.Valid() {
		return
	}
	s, p, o := b.dict.EncodeTriple(t)
	b.Add(s, p, o)
}

// Build sorts each index once and returns the store. The builder must
// not be reused.
func (b *Builder) Build() *Store {
	st := NewShared(b.dict)
	for ord := SPO; ord <= OSP; ord++ {
		ix := make([]key, 0, len(b.triples))
		for _, t := range b.triples {
			ix = append(ix, permute(ord, t[0], t[1], t[2]))
		}
		sort.Slice(ix, func(i, j int) bool { return lessKey(ix[i], ix[j]) })
		// Dedupe.
		w := 0
		for r := range ix {
			if w == 0 || ix[r] != ix[w-1] {
				ix[w] = ix[r]
				w++
			}
		}
		st.idx[ord] = ix[:w]
	}
	return st
}

// SizeBytes estimates the index memory footprint: three full copies of
// every triple (24 bytes each).
func (st *Store) SizeBytes() int64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return int64(len(st.idx[SPO])) * 3 * 24
}
