package kowari

import (
	"math/rand"
	"sort"
	"testing"

	"hexastore/internal/core"
	"hexastore/internal/rdf"
)

func TestAddHasRemove(t *testing.T) {
	st := New()
	if !st.Add(1, 2, 3) {
		t.Fatal("Add = false")
	}
	if st.Add(1, 2, 3) {
		t.Fatal("duplicate Add = true")
	}
	if !st.Has(1, 2, 3) {
		t.Fatal("Has = false")
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}
	if !st.Remove(1, 2, 3) {
		t.Fatal("Remove = false")
	}
	if st.Remove(1, 2, 3) {
		t.Fatal("second Remove = true")
	}
	if st.Len() != 0 {
		t.Fatalf("Len = %d after Remove, want 0", st.Len())
	}
}

func TestAddRejectsWildcards(t *testing.T) {
	st := New()
	if st.Add(None, 1, 2) || st.Add(1, None, 2) || st.Add(1, 2, None) {
		t.Fatal("Add with None position succeeded")
	}
}

// TestMatchAgainstCore verifies all eight pattern shapes against the
// sextuple store on identical random data.
func TestMatchAgainstCore(t *testing.T) {
	ks := New()
	cs := core.New()
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 4000; i++ {
		s, p, o := ID(rng.Intn(40)+1), ID(rng.Intn(10)+1), ID(rng.Intn(50)+1)
		ks.Add(s, p, o)
		cs.Add(s, p, o)
	}
	if ks.Len() != cs.Len() {
		t.Fatalf("kowari Len = %d, core Len = %d", ks.Len(), cs.Len())
	}
	patterns := [][3]ID{
		{7, 4, 11}, {7, 4, None}, {7, None, 11}, {None, 4, 11},
		{7, None, None}, {None, 4, None}, {None, None, 11}, {None, None, None},
	}
	for _, pat := range patterns {
		var got [][3]ID
		ks.Match(pat[0], pat[1], pat[2], func(s, p, o ID) bool {
			got = append(got, [3]ID{s, p, o})
			return true
		})
		want := cs.Triples(pat[0], pat[1], pat[2])
		if len(got) != len(want) {
			t.Fatalf("pattern %v: kowari %d, core %d", pat, len(got), len(want))
		}
		set := make(map[[3]ID]bool, len(want))
		for _, w := range want {
			set[w] = true
		}
		for _, g := range got {
			if !set[g] {
				t.Fatalf("pattern %v: kowari produced %v missing from core", pat, g)
			}
		}
	}
}

func TestMatchEarlyStop(t *testing.T) {
	st := New()
	for i := ID(1); i <= 50; i++ {
		st.Add(i, 1, 2)
	}
	n := 0
	st.Match(None, 1, None, func(_, _, _ ID) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("visited %d, want 3", n)
	}
}

func TestSubjectsForPropertySorted(t *testing.T) {
	st := New()
	// Insert so that pos order (by object) differs from subject order.
	st.Add(9, 1, 100)
	st.Add(2, 1, 300)
	st.Add(5, 1, 200)
	st.Add(5, 1, 150) // duplicate subject via second object
	st.Add(4, 2, 100) // different property: excluded
	got := st.SubjectsForProperty(1)
	want := []ID{2, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("SubjectsForProperty = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SubjectsForProperty = %v, want %v", got, want)
		}
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("result not sorted")
	}
}

func TestBuilderMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := NewBuilder(nil)
	inc := NewShared(b.dict)
	var triples [][3]ID
	for i := 0; i < 2000; i++ {
		s, p, o := ID(rng.Intn(30)+1), ID(rng.Intn(8)+1), ID(rng.Intn(40)+1)
		triples = append(triples, [3]ID{s, p, o})
	}
	for _, tr := range triples {
		b.Add(tr[0], tr[1], tr[2])
		inc.Add(tr[0], tr[1], tr[2])
	}
	built := b.Build()
	if built.Len() != inc.Len() {
		t.Fatalf("built Len = %d, incremental Len = %d", built.Len(), inc.Len())
	}
	for ord := SPO; ord <= OSP; ord++ {
		if len(built.idx[ord]) != len(inc.idx[ord]) {
			t.Fatalf("ordering %v sizes differ", ord)
		}
		for i := range built.idx[ord] {
			if built.idx[ord][i] != inc.idx[ord][i] {
				t.Fatalf("ordering %v entry %d: built %v, incremental %v",
					ord, i, built.idx[ord][i], inc.idx[ord][i])
			}
		}
	}
}

func TestAddTriple(t *testing.T) {
	st := New()
	if !st.AddTriple(rdf.T(rdf.NewIRI("a"), rdf.NewIRI("p"), rdf.NewLiteral("v"))) {
		t.Fatal("AddTriple = false")
	}
	if st.AddTriple(rdf.Triple{}) {
		t.Fatal("AddTriple of invalid triple = true")
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}
}

func TestIndexesSortedAfterRandomOps(t *testing.T) {
	st := New()
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 3000; i++ {
		s, p, o := ID(rng.Intn(20)+1), ID(rng.Intn(6)+1), ID(rng.Intn(20)+1)
		if rng.Intn(4) == 0 {
			st.Remove(s, p, o)
		} else {
			st.Add(s, p, o)
		}
	}
	for ord := SPO; ord <= OSP; ord++ {
		ix := st.idx[ord]
		for i := 1; i < len(ix); i++ {
			if !lessKey(ix[i-1], ix[i]) {
				t.Fatalf("ordering %v not strictly sorted at %d", ord, i)
			}
		}
		if len(ix) != st.Len() {
			t.Fatalf("ordering %v has %d entries, Len = %d", ord, len(ix), st.Len())
		}
	}
}

func TestSizeBytes(t *testing.T) {
	st := New()
	st.Add(1, 2, 3)
	st.Add(4, 5, 6)
	if got := st.SizeBytes(); got != 2*3*24 {
		t.Fatalf("SizeBytes = %d, want %d", got, 2*3*24)
	}
}

func TestCount(t *testing.T) {
	st := New()
	st.Add(1, 2, 3)
	st.Add(1, 2, 4)
	st.Add(1, 3, 5)
	if n := st.Count(1, None, None); n != 3 {
		t.Fatalf("Count(1,?,?) = %d, want 3", n)
	}
	if n := st.Count(1, 2, None); n != 2 {
		t.Fatalf("Count(1,2,?) = %d, want 2", n)
	}
	if n := st.Count(None, None, None); n != 3 {
		t.Fatalf("Count(?,?,?) = %d, want 3", n)
	}
}
