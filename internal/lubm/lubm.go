// Package lubm generates a synthetic academic data set modeled on the
// Lehigh University Benchmark (Guo, Heflin, Pan; ISWC 2003/2004), the
// second data set of the Hexastore paper's evaluation (§5.1.2).
//
// The original LUBM generator is a Java tool; this is a from-scratch Go
// implementation producing the same schema shape: universities contain
// departments, departments employ faculty (full/associate/assistant
// professors, lecturers) and enroll students; faculty teach courses and
// hold degrees from universities; students take courses and have
// advisors. Exactly 18 predicates are used, matching the paper's setup
// ("ten universities with 18 different predicates").
//
// Entities are numbered globally (University0, AssociateProfessor10,
// Course10, …) so the resources the paper's LUBM queries bind — Course10,
// University0, AssociateProfessor10 — exist by construction.
//
// Generation is deterministic for a given Config.
package lubm

import (
	"fmt"
	"math/rand"

	"hexastore/internal/rdf"
)

// Namespace prefixes all generated IRIs.
const Namespace = "lubm:"

// The 18 predicates (paper: "18 different predicates").
var (
	PropType              = rdf.NewIRI(Namespace + "type")
	PropSubOrganization   = rdf.NewIRI(Namespace + "subOrganizationOf")
	PropWorksFor          = rdf.NewIRI(Namespace + "worksFor")
	PropMemberOf          = rdf.NewIRI(Namespace + "memberOf")
	PropHeadOf            = rdf.NewIRI(Namespace + "headOf")
	PropTeacherOf         = rdf.NewIRI(Namespace + "teacherOf")
	PropTakesCourse       = rdf.NewIRI(Namespace + "takesCourse")
	PropTeachingAssist    = rdf.NewIRI(Namespace + "teachingAssistantOf")
	PropAdvisor           = rdf.NewIRI(Namespace + "advisor")
	PropUndergradFrom     = rdf.NewIRI(Namespace + "undergraduateDegreeFrom")
	PropMastersFrom       = rdf.NewIRI(Namespace + "mastersDegreeFrom")
	PropDoctoralFrom      = rdf.NewIRI(Namespace + "doctoralDegreeFrom")
	PropOfferedBy         = rdf.NewIRI(Namespace + "offeredBy")
	PropName              = rdf.NewIRI(Namespace + "name")
	PropEmail             = rdf.NewIRI(Namespace + "emailAddress")
	PropTelephone         = rdf.NewIRI(Namespace + "telephone")
	PropResearchInterest  = rdf.NewIRI(Namespace + "researchInterest")
	PropPublicationAuthor = rdf.NewIRI(Namespace + "publicationAuthor")
)

// DegreeProps are the three degreeFrom predicates, which LQ5 unions over.
var DegreeProps = []rdf.Term{PropUndergradFrom, PropMastersFrom, PropDoctoralFrom}

// AllProps lists every predicate the generator emits.
var AllProps = []rdf.Term{
	PropType, PropSubOrganization, PropWorksFor, PropMemberOf, PropHeadOf,
	PropTeacherOf, PropTakesCourse, PropTeachingAssist, PropAdvisor,
	PropUndergradFrom, PropMastersFrom, PropDoctoralFrom, PropOfferedBy,
	PropName, PropEmail, PropTelephone, PropResearchInterest,
	PropPublicationAuthor,
}

// Class terms (objects of PropType).
var (
	ClassUniversity      = rdf.NewIRI(Namespace + "University")
	ClassDepartment      = rdf.NewIRI(Namespace + "Department")
	ClassFullProfessor   = rdf.NewIRI(Namespace + "FullProfessor")
	ClassAssocProfessor  = rdf.NewIRI(Namespace + "AssociateProfessor")
	ClassAssistProfessor = rdf.NewIRI(Namespace + "AssistantProfessor")
	ClassLecturer        = rdf.NewIRI(Namespace + "Lecturer")
	ClassUndergrad       = rdf.NewIRI(Namespace + "UndergraduateStudent")
	ClassGradStudent     = rdf.NewIRI(Namespace + "GraduateStudent")
	ClassCourse          = rdf.NewIRI(Namespace + "Course")
	ClassPublication     = rdf.NewIRI(Namespace + "Publication")
)

// Entity constructors: globally numbered IRIs.

// University returns the i-th university resource.
func University(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sUniversity%d", Namespace, i)) }

// Department returns the i-th department resource.
func Department(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sDepartment%d", Namespace, i)) }

// FullProfessor returns the i-th full professor.
func FullProfessor(i int) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("%sFullProfessor%d", Namespace, i))
}

// AssociateProfessor returns the i-th associate professor (the paper's
// LQ3–LQ5 bind AssociateProfessor10).
func AssociateProfessor(i int) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("%sAssociateProfessor%d", Namespace, i))
}

// AssistantProfessor returns the i-th assistant professor.
func AssistantProfessor(i int) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("%sAssistantProfessor%d", Namespace, i))
}

// Lecturer returns the i-th lecturer.
func Lecturer(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sLecturer%d", Namespace, i)) }

// UndergraduateStudent returns the i-th undergraduate.
func UndergraduateStudent(i int) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("%sUndergraduateStudent%d", Namespace, i))
}

// GraduateStudent returns the i-th graduate student.
func GraduateStudent(i int) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("%sGraduateStudent%d", Namespace, i))
}

// Course returns the i-th course (LQ1 binds Course10).
func Course(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sCourse%d", Namespace, i)) }

// Publication returns the i-th publication.
func Publication(i int) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("%sPublication%d", Namespace, i))
}

// Config parameterizes the generator. The zero value is not useful;
// DefaultConfig matches the paper's ten-university setup at a
// laptop-friendly scale.
type Config struct {
	Universities int
	Seed         int64

	// Per-department population. Defaults (applied by withDefaults)
	// approximate LUBM's proportions.
	DeptsPerUniv     int
	FullPerDept      int
	AssocPerDept     int
	AssistPerDept    int
	LecturersPerDept int
	UndergradPerDept int
	GradPerDept      int
	CoursesPerDept   int
	PubsPerFaculty   int
}

// DefaultConfig returns the paper's ten-university configuration.
func DefaultConfig() Config {
	return Config{Universities: 10, Seed: 1}
}

func (c Config) withDefaults() Config {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.DeptsPerUniv, 15)
	def(&c.FullPerDept, 3)
	def(&c.AssocPerDept, 4)
	def(&c.AssistPerDept, 3)
	def(&c.LecturersPerDept, 2)
	def(&c.UndergradPerDept, 120)
	def(&c.GradPerDept, 30)
	def(&c.CoursesPerDept, 20)
	def(&c.PubsPerFaculty, 2)
	if c.Universities == 0 {
		c.Universities = 10
	}
	return c
}

// Generate emits every triple of the data set to emit, in a fixed
// deterministic order, stopping early if emit returns false.
func (c Config) Generate(emit func(rdf.Triple) bool) {
	c = c.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	g := &gen{cfg: c, rng: rng, emit: emit}
	g.run()
}

// GenerateAll materializes the whole data set (convenience for tests and
// small loads).
func (c Config) GenerateAll() []rdf.Triple {
	var out []rdf.Triple
	c.Generate(func(t rdf.Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

type gen struct {
	cfg     Config
	rng     *rand.Rand
	emit    func(rdf.Triple) bool
	stopped bool

	// Global counters.
	nDept, nFull, nAssoc, nAssist, nLect, nUg, nGrad, nCourse, nPub int
}

func (g *gen) t(s, p, o rdf.Term) {
	if g.stopped {
		return
	}
	if !g.emit(rdf.T(s, p, o)) {
		g.stopped = true
	}
}

func (g *gen) lit(format string, args ...any) rdf.Term {
	return rdf.NewLiteral(fmt.Sprintf(format, args...))
}

var interests = []string{
	"databases", "semantic web", "machine learning", "graphics",
	"systems", "theory", "networks", "security",
}

func (g *gen) run() {
	c := g.cfg
	for u := 0; u < c.Universities && !g.stopped; u++ {
		univ := University(u)
		g.t(univ, PropType, ClassUniversity)
		g.t(univ, PropName, g.lit("University %d", u))

		for d := 0; d < c.DeptsPerUniv && !g.stopped; d++ {
			g.department(u, univ)
		}
	}
}

// degreeUniversity picks a university for a degree: usually a different
// one than the employer, occasionally the same, so every university
// accumulates degree edges (needed by LQ2/LQ5).
func (g *gen) degreeUniversity() rdf.Term {
	return University(g.rng.Intn(g.cfg.Universities))
}

func (g *gen) department(u int, univ rdf.Term) {
	c := g.cfg
	dept := Department(g.nDept)
	g.nDept++
	g.t(dept, PropType, ClassDepartment)
	g.t(dept, PropSubOrganization, univ)
	g.t(dept, PropName, g.lit("Department %d", g.nDept-1))

	// Courses first so faculty can teach them.
	courses := make([]rdf.Term, c.CoursesPerDept)
	for i := range courses {
		courses[i] = Course(g.nCourse)
		g.nCourse++
		g.t(courses[i], PropType, ClassCourse)
		g.t(courses[i], PropOfferedBy, dept)
	}

	var faculty []rdf.Term
	addFaculty := func(term rdf.Term, class rdf.Term) {
		g.t(term, PropType, class)
		g.t(term, PropWorksFor, dept)
		g.t(term, PropName, g.lit("%s", term.Value[len(Namespace):]))
		g.t(term, PropEmail, g.lit("%s@example.edu", term.Value[len(Namespace):]))
		g.t(term, PropTelephone, g.lit("+1-555-%04d", g.rng.Intn(10000)))
		g.t(term, PropResearchInterest, g.lit("%s", interests[g.rng.Intn(len(interests))]))
		g.t(term, PropUndergradFrom, g.degreeUniversity())
		g.t(term, PropMastersFrom, g.degreeUniversity())
		g.t(term, PropDoctoralFrom, g.degreeUniversity())
		// Each faculty member teaches 1–2 courses.
		nTeach := 1 + g.rng.Intn(2)
		for k := 0; k < nTeach; k++ {
			g.t(term, PropTeacherOf, courses[g.rng.Intn(len(courses))])
		}
		for k := 0; k < g.cfg.PubsPerFaculty; k++ {
			pub := Publication(g.nPub)
			g.nPub++
			g.t(pub, PropType, ClassPublication)
			g.t(pub, PropPublicationAuthor, term)
		}
		faculty = append(faculty, term)
	}

	for i := 0; i < c.FullPerDept; i++ {
		prof := FullProfessor(g.nFull)
		g.nFull++
		addFaculty(prof, ClassFullProfessor)
		if i == 0 {
			g.t(prof, PropHeadOf, dept)
		}
	}
	for i := 0; i < c.AssocPerDept; i++ {
		addFaculty(AssociateProfessor(g.nAssoc), ClassAssocProfessor)
		g.nAssoc++
	}
	for i := 0; i < c.AssistPerDept; i++ {
		addFaculty(AssistantProfessor(g.nAssist), ClassAssistProfessor)
		g.nAssist++
	}
	for i := 0; i < c.LecturersPerDept; i++ {
		addFaculty(Lecturer(g.nLect), ClassLecturer)
		g.nLect++
	}

	professors := faculty[:c.FullPerDept+c.AssocPerDept+c.AssistPerDept]

	for i := 0; i < c.UndergradPerDept; i++ {
		s := UndergraduateStudent(g.nUg)
		g.nUg++
		g.t(s, PropType, ClassUndergrad)
		g.t(s, PropMemberOf, dept)
		g.t(s, PropName, g.lit("UndergraduateStudent%d", g.nUg-1))
		nCourses := 2 + g.rng.Intn(3)
		for k := 0; k < nCourses; k++ {
			g.t(s, PropTakesCourse, courses[g.rng.Intn(len(courses))])
		}
		// A fifth of undergraduates have a faculty advisor.
		if g.rng.Intn(5) == 0 {
			g.t(s, PropAdvisor, professors[g.rng.Intn(len(professors))])
		}
	}

	for i := 0; i < c.GradPerDept; i++ {
		s := GraduateStudent(g.nGrad)
		g.nGrad++
		g.t(s, PropType, ClassGradStudent)
		g.t(s, PropMemberOf, dept)
		g.t(s, PropName, g.lit("GraduateStudent%d", g.nGrad-1))
		g.t(s, PropUndergradFrom, g.degreeUniversity())
		g.t(s, PropAdvisor, professors[g.rng.Intn(len(professors))])
		nCourses := 1 + g.rng.Intn(3)
		for k := 0; k < nCourses; k++ {
			g.t(s, PropTakesCourse, courses[g.rng.Intn(len(courses))])
		}
		if g.rng.Intn(3) == 0 {
			g.t(s, PropTeachingAssist, courses[g.rng.Intn(len(courses))])
		}
	}
}
