package lubm

import (
	"reflect"
	"testing"

	"hexastore/internal/core"
	"hexastore/internal/rdf"
)

func smallConfig() Config {
	return Config{
		Universities: 3, Seed: 7, DeptsPerUniv: 4,
		UndergradPerDept: 40, GradPerDept: 12, CoursesPerDept: 12,
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	a := smallConfig().GenerateAll()
	b := smallConfig().GenerateAll()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two runs with the same config differ")
	}
	c := Config{Universities: 3, Seed: 8}.GenerateAll()
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateAllTriplesValid(t *testing.T) {
	for _, tr := range smallConfig().GenerateAll() {
		if !tr.Valid() {
			t.Fatalf("invalid triple generated: %v", tr)
		}
	}
}

func TestExactlyEighteenPredicates(t *testing.T) {
	if len(AllProps) != 18 {
		t.Fatalf("AllProps has %d predicates, want 18", len(AllProps))
	}
	declared := make(map[string]bool, len(AllProps))
	for _, p := range AllProps {
		declared[p.Value] = true
	}
	seen := make(map[string]bool)
	for _, tr := range smallConfig().GenerateAll() {
		if !declared[tr.Predicate.Value] {
			t.Fatalf("generator emitted undeclared predicate %v", tr.Predicate)
		}
		seen[tr.Predicate.Value] = true
	}
	for _, p := range AllProps {
		if !seen[p.Value] {
			t.Errorf("predicate %v never emitted", p)
		}
	}
}

func TestQueryAnchorsExist(t *testing.T) {
	st := core.New()
	for _, tr := range smallConfig().GenerateAll() {
		st.AddTriple(tr)
	}
	dict := st.Dictionary()
	anchors := []rdf.Term{University(0), Course(10), AssociateProfessor(10)}
	for _, a := range anchors {
		if _, ok := dict.Lookup(a); !ok {
			t.Errorf("anchor resource %v missing from generated data", a)
		}
	}

	// AssociateProfessor10 must have all three degrees and teach
	// something (LQ3–LQ5 depend on it).
	ap, _ := dict.Lookup(AssociateProfessor(10))
	teacherOf, _ := dict.Lookup(PropTeacherOf)
	if st.Objects(ap, teacherOf).Len() == 0 {
		t.Error("AssociateProfessor10 teaches no courses")
	}
	for _, dp := range DegreeProps {
		dpID, ok := dict.Lookup(dp)
		if !ok {
			t.Fatalf("degree predicate %v unused", dp)
		}
		if st.Objects(ap, dpID).Len() == 0 {
			t.Errorf("AssociateProfessor10 lacks %v", dp)
		}
	}

	// Course10 must have people related to it (LQ1).
	c10, _ := dict.Lookup(Course(10))
	related := 0
	st.Match(core.None, core.None, c10, func(_, _, _ core.ID) bool {
		related++
		return true
	})
	if related == 0 {
		t.Error("nothing relates to Course10")
	}

	// University0 must be the object of degree triples (LQ2/LQ5).
	u0, _ := dict.Lookup(University(0))
	degreeEdges := 0
	for _, dp := range DegreeProps {
		dpID, _ := dict.Lookup(dp)
		degreeEdges += st.Subjects(dpID, u0).Len()
	}
	if degreeEdges == 0 {
		t.Error("no degree edges point at University0")
	}
}

func TestAdvisorEdgesPointAtProfessors(t *testing.T) {
	st := core.New()
	for _, tr := range smallConfig().GenerateAll() {
		st.AddTriple(tr)
	}
	dict := st.Dictionary()
	advisor, _ := dict.Lookup(PropAdvisor)
	typeID, _ := dict.Lookup(PropType)
	profClasses := map[string]bool{
		ClassFullProfessor.Value:   true,
		ClassAssocProfessor.Value:  true,
		ClassAssistProfessor.Value: true,
	}
	n := 0
	st.Match(core.None, advisor, core.None, func(_, _, prof core.ID) bool {
		n++
		types := st.Objects(prof, typeID)
		if types.Len() != 1 {
			t.Fatalf("advisor target %d has %d types", prof, types.Len())
		}
		class := dict.MustDecode(types.At(0))
		if !profClasses[class.Value] {
			t.Fatalf("advisor target %d has class %v", prof, class)
		}
		return true
	})
	if n == 0 {
		t.Fatal("no advisor edges generated")
	}
}

func TestGenerateEarlyStop(t *testing.T) {
	n := 0
	smallConfig().Generate(func(rdf.Triple) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Errorf("early stop emitted %d triples, want 10", n)
	}
}

func TestDefaultConfigScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full default generation in -short mode")
	}
	n := 0
	DefaultConfig().Generate(func(rdf.Triple) bool { n++; return true })
	// Ten universities should produce a non-trivial corpus.
	if n < 100_000 {
		t.Errorf("default config produced only %d triples", n)
	}
}
