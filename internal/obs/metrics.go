package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// The metrics half: a small Prometheus-text registry. Families are
// registered once (idempotent by name — re-registering returns the
// existing family, so package-level metric vars and per-test servers
// coexist), children are created per label-value tuple, and
// WritePrometheus renders the standard text exposition format.

// Counter is a monotonically increasing int64 metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored; counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64 metric.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram. Buckets are cumulative upper
// bounds (Prometheus `le` semantics); observations above the last bound
// land only in the implicit +Inf bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	count  atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// ExpBuckets builds n log-scale bucket bounds: start, start*factor,
// start*factor², … — the fixed geometric ladder the latency histograms
// use.
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LatencyBuckets spans 10µs to ~2.6s in ×4 steps — wide enough for an
// fsync and a pathological join on one ladder.
var LatencyBuckets = ExpBuckets(10e-6, 4, 10)

// SizeBuckets spans 256B to ~16MB in ×4 steps, for byte-size
// distributions (group-commit batches, spill chunks).
var SizeBuckets = ExpBuckets(256, 4, 9)

// child is one label-value instantiation of a family: exactly one of
// the payload fields is set.
type child struct {
	labels string // rendered {k="v",…} suffix, "" when unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

type family struct {
	name, help, typ string
	bounds          []float64 // histograms only
	mu              sync.Mutex
	order           []string
	kids            map[string]*child
}

// Registry holds an ordered set of metric families.
type Registry struct {
	mu   sync.Mutex
	fams []*family
	idx  map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{idx: make(map[string]*family)}
}

// Default is the process-global registry; package-level instrumentation
// (WAL, delta overlay, spill) registers here so subsystems deep in the
// stack need no handle threading. Servers merge it into their /metrics
// output alongside their own per-instance registry.
var Default = NewRegistry()

func (r *Registry) family(name, help, typ string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.idx[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, typ, f.typ))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, bounds: bounds, kids: make(map[string]*child)}
	r.fams = append(r.fams, f)
	r.idx[name] = f
	return f
}

func (f *family) get(labels string) *child {
	f.mu.Lock()
	defer f.mu.Unlock()
	if k, ok := f.kids[labels]; ok {
		return k
	}
	k := &child{labels: labels}
	switch f.typ {
	case "counter":
		k.c = &Counter{}
	case "gauge":
		k.g = &Gauge{}
	case "histogram":
		k.h = &Histogram{bounds: f.bounds, counts: make([]atomic.Int64, len(f.bounds)+1)}
	}
	f.kids[labels] = k
	f.order = append(f.order, labels)
	return k
}

func (f *family) setFunc(labels string, fn func() float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if k, ok := f.kids[labels]; ok {
		k.fn = fn // re-registration (fresh server instance): last wins
		return
	}
	f.kids[labels] = &child{labels: labels, fn: fn}
	f.order = append(f.order, labels)
}

// renderLabels builds the {k="v",…} sample suffix.
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	if len(names) != len(values) {
		panic(fmt.Sprintf("obs: %d label values for %d label names", len(values), len(names)))
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, "counter", nil).get("").c
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, "gauge", nil).get("").g
}

// Histogram registers (or returns) an unlabeled histogram with the
// given bucket bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.family(name, help, "histogram", bounds).get("").h
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time (optionally labeled: pass alternating name, value pairs).
// Re-registering the same name+labels replaces the function, so a test
// spinning up a second server observes the live instance.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	r.registerFunc(name, help, "gauge", fn, labelPairs)
}

// CounterFunc is GaugeFunc with counter exposition semantics, for
// monotonic values owned elsewhere (the governor's admission counters).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labelPairs ...string) {
	r.registerFunc(name, help, "counter", fn, labelPairs)
}

func (r *Registry) registerFunc(name, help, typ string, fn func() float64, labelPairs []string) {
	if len(labelPairs)%2 != 0 {
		panic("obs: labelPairs must alternate name, value")
	}
	var names, values []string
	for i := 0; i < len(labelPairs); i += 2 {
		names = append(names, labelPairs[i])
		values = append(values, labelPairs[i+1])
	}
	r.family(name, help, typ, nil).setFunc(renderLabels(names, values), fn)
}

// CounterVec is a counter family with labels.
type CounterVec struct {
	f     *family
	names []string
}

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, "counter", nil), names: labelNames}
}

// With returns the counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(renderLabels(v.names, values)).c
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct {
	f     *family
	names []string
}

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, "histogram", bounds), names: labelNames}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.get(renderLabels(v.names, values)).h
}

func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// mergeLabels splices extra into an already-rendered label suffix, for
// histogram `le` labels.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// WritePrometheus renders every family in registration order in the
// Prometheus text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		order := append([]string(nil), f.order...)
		kids := make([]*child, len(order))
		for i, l := range order {
			kids[i] = f.kids[l]
		}
		f.mu.Unlock()
		if len(kids) == 0 {
			continue
		}
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, k := range kids {
			switch {
			case k.fn != nil:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, k.labels, fmtFloat(k.fn()))
			case k.c != nil:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, k.labels, k.c.Value())
			case k.g != nil:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, k.labels, fmtFloat(k.g.Value()))
			case k.h != nil:
				var cum int64
				for i, bound := range k.h.bounds {
					cum += k.h.counts[i].Load()
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name,
						mergeLabels(k.labels, `le="`+fmtFloat(bound)+`"`), cum)
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name,
					mergeLabels(k.labels, `le="+Inf"`), k.h.Count())
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, k.labels, fmtFloat(k.h.Sum()))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, k.labels, k.h.Count())
			}
		}
	}
	return bw.Flush()
}

// Handler serves the registry (and any extras, in order) as a
// Prometheus scrape target.
func Handler(regs ...*Registry) http.Handler {
	if len(regs) == 0 {
		regs = []*Registry{Default}
	}
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, r := range regs {
			if err := r.WritePrometheus(w); err != nil {
				return
			}
		}
	})
}
