package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	c := s.Child("x")
	if c != nil {
		t.Fatalf("nil.Child = %v, want nil", c)
	}
	s.Set("k", 1)
	s.SetInt("k", 1)
	s.Add("k", 1)
	s.Finish()
	if d := s.Duration(); d != 0 {
		t.Fatalf("nil.Duration = %v", d)
	}
	if got := s.String(); got != "" {
		t.Fatalf("nil.String = %q", got)
	}
	if top := s.Top(3); top != nil {
		t.Fatalf("nil.Top = %v", top)
	}
	b, err := json.Marshal(s)
	if err != nil || string(b) != "null" {
		t.Fatalf("nil marshal = %s, %v", b, err)
	}
	if err := s.WriteTree(&strings.Builder{}); err != nil {
		t.Fatalf("nil WriteTree: %v", err)
	}
}

func TestSpanTreeJSON(t *testing.T) {
	tr := NewTrace("query")
	plan := tr.Child("plan")
	plan.Set("order", "[1 0]")
	plan.SetInt("est", 42)
	plan.Finish()
	step := tr.Child("step[?s p ?o]")
	step.SetInt("rowsIn", 1)
	step.SetInt("rowsOut", 10)
	step.Add("spillBytes", 100)
	step.Add("spillBytes", 28)
	step.Finish()
	tr.Finish()

	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Name       string         `json:"name"`
		DurationUs int64          `json:"durationUs"`
		Children   []jsonSpanView `json:"children"`
	}
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("unmarshal %s: %v", b, err)
	}
	if got.Name != "query" || len(got.Children) != 2 {
		t.Fatalf("bad tree: %s", b)
	}
	if got.Children[1].Attrs["spillBytes"] != float64(128) {
		t.Fatalf("Add did not accumulate: %s", b)
	}
	// Attrs must serialize in insertion order.
	raw := string(b)
	if strings.Index(raw, `"rowsIn"`) > strings.Index(raw, `"rowsOut"`) {
		t.Fatalf("attr order not preserved: %s", raw)
	}
}

type jsonSpanView struct {
	Name  string         `json:"name"`
	Attrs map[string]any `json:"attrs"`
}

func TestWriteTreeIndentsAndTop(t *testing.T) {
	tr := NewTrace("query")
	fast := tr.Child("fast")
	time.Sleep(time.Millisecond)
	fast.Finish()
	slow := tr.Child("slow")
	inner := slow.Child("inner")
	time.Sleep(5 * time.Millisecond)
	inner.Finish()
	slow.Finish()
	tr.Finish()

	out := tr.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %q", out)
	}
	if !strings.HasPrefix(lines[0], "query ") ||
		!strings.HasPrefix(lines[1], "  fast ") ||
		!strings.HasPrefix(lines[3], "    inner ") {
		t.Fatalf("bad tree rendering:\n%s", out)
	}

	top := tr.Top(2)
	if len(top) != 2 || top[0].Name() != "slow" {
		t.Fatalf("Top(2) = %v", top)
	}
	if s := tr.FormatTop(1); !strings.HasPrefix(s, "slow ") {
		t.Fatalf("FormatTop = %q", s)
	}
}

func TestSpanConcurrency(t *testing.T) {
	tr := NewTrace("query")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c := tr.Child("shard")
				c.Add("scanned", 1)
				c.Finish()
			}
		}()
	}
	wg.Wait()
	if n := len(tr.Children()); n != 800 {
		t.Fatalf("children = %d, want 800", n)
	}
}

func TestContextCarrier(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty ctx should yield nil span")
	}
	tr := NewTrace("q")
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("round trip failed")
	}
	if NewContext(context.Background(), nil) != context.Background() {
		t.Fatal("nil span should not wrap the context")
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hex_test_ops_total", "ops")
	c.Inc()
	c.Add(2)
	g := r.Gauge("hex_test_depth", "depth")
	g.Set(1.5)
	h := r.Histogram("hex_test_latency_seconds", "latency", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)
	v := r.CounterVec("hex_test_http_total", "http", "endpoint", "code")
	v.With("/sparql", "200").Add(7)
	r.GaugeFunc("hex_test_live", "live", func() float64 { return 3 })
	r.GaugeFunc("hex_test_lag_seconds", "lag", func() float64 { return 0.25 }, "follower", "0")

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP hex_test_ops_total ops",
		"# TYPE hex_test_ops_total counter",
		"hex_test_ops_total 3",
		"hex_test_depth 1.5",
		"# TYPE hex_test_latency_seconds histogram",
		`hex_test_latency_seconds_bucket{le="0.001"} 1`,
		`hex_test_latency_seconds_bucket{le="0.01"} 2`,
		`hex_test_latency_seconds_bucket{le="+Inf"} 3`,
		"hex_test_latency_seconds_sum 5.0055",
		"hex_test_latency_seconds_count 3",
		`hex_test_http_total{endpoint="/sparql",code="200"} 7`,
		"hex_test_live 3",
		`hex_test_lag_seconds{follower="0"} 0.25`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hex_dup_total", "dup")
	b := r.Counter("hex_dup_total", "dup")
	if a != b {
		t.Fatal("re-registration must return the same counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("counters diverged")
	}
	// GaugeFunc re-registration: last wins (fresh server instances).
	r.GaugeFunc("hex_dup_gauge", "g", func() float64 { return 1 })
	r.GaugeFunc("hex_dup_gauge", "g", func() float64 { return 2 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "hex_dup_gauge 2") {
		t.Fatalf("last-wins func registration broken:\n%s", sb.String())
	}
}

func TestNilMetricsAreSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter")
	}
	var g *Gauge
	g.Set(1)
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hex_conc_seconds", "c", LatencyBuckets)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 8.0; got < want-0.01 || got > want+0.01 {
		t.Fatalf("sum = %v", got)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 10, 3)
	if len(b) != 3 || b[0] != 1 || b[1] != 10 || b[2] != 100 {
		t.Fatalf("ExpBuckets = %v", b)
	}
}
