// Package obs is the engine's dependency-free observability layer: a
// nil-safe span tree for per-query execution traces (the EXPLAIN /
// EXPLAIN ANALYZE backbone) and a small Prometheus-text metrics
// registry (counters, gauges, fixed log-scale histograms) for the
// /metrics endpoint.
//
// Everything here is stdlib-only and safe for concurrent use. The
// tracing half is designed around a nil fast path: every Span method is
// a no-op on a nil receiver, so instrumented code threads a *Span
// unconditionally and pays one predictable nil check when tracing is
// off — the batch engine's per-row loops never touch a span at all,
// only per-step bookkeeping does.
package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Trace is the root of a per-query span tree. It is the same type as
// Span — the distinction is purely positional (a Trace is the span
// whose duration covers the whole query) — so helpers written against
// *Span compose with roots and children alike.
type Trace = Span

// NewTrace starts a new root span. The returned trace is live
// immediately; call Finish when the query completes.
func NewTrace(name string) *Trace { return newSpan(name) }

// Attr is one key/value annotation on a span, kept in insertion order
// so renderings read in the order the engine recorded them
// (est before actual, rows-in before rows-out).
type Attr struct {
	Key   string
	Value any
}

// Span is one timed node of an execution trace. All methods are safe on
// a nil receiver (no-ops returning zero values), and all mutation is
// mutex-guarded so shard scatter goroutines and parallel join workers
// can annotate concurrently.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	end      time.Time
	attrs    []Attr
	children []*Span
}

func newSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Child starts a nested span. Returns nil when the receiver is nil, so
// trace plumbing composes without guards.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Finish stamps the span's end time. Repeated calls keep the first
// stamp so a deferred Finish cannot clobber an explicit one.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Set records (or overwrites) an attribute. Values should be one of
// string, bool, int64, int, or float64 so JSON and tree renderings stay
// stable.
func (s *Span) Set(key string, v any) {
	if s == nil {
		return
	}
	if n, ok := v.(int); ok {
		v = int64(n)
	}
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = v
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
	s.mu.Unlock()
}

// SetInt records an integer attribute.
func (s *Span) SetInt(key string, v int64) { s.Set(key, v) }

// Add accumulates delta into an integer attribute, creating it at the
// delta on first use. Non-integer existing values are overwritten.
func (s *Span) Add(key string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			if cur, ok := s.attrs[i].Value.(int64); ok {
				s.attrs[i].Value = cur + delta
			} else {
				s.attrs[i].Value = delta
			}
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: delta})
	s.mu.Unlock()
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration is the span's elapsed time: end-start once finished, the
// live elapsed time while still open, 0 on nil.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// Attr looks an attribute up by key.
func (s *Span) Attr(key string) (any, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return nil, false
}

// Attrs returns a copy of the span's attributes in insertion order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Children returns a copy of the span's child slice.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// MarshalJSON renders the span tree as
//
//	{"name": ..., "durationUs": ..., "attrs": {...}, "children": [...]}
//
// with attrs emitted in insertion order (a hand-built object, since Go
// maps marshal key-sorted). This is the trace JSON schema served by
// /sparql?explain=1.
func (s *Span) MarshalJSON() ([]byte, error) {
	if s == nil {
		return []byte("null"), nil
	}
	s.mu.Lock()
	name := s.name
	attrs := append([]Attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	dur := s.Duration()

	var b bytes.Buffer
	b.WriteByte('{')
	b.WriteString(`"name":`)
	nb, err := json.Marshal(name)
	if err != nil {
		return nil, err
	}
	b.Write(nb)
	fmt.Fprintf(&b, `,"durationUs":%d`, dur.Microseconds())
	if len(attrs) > 0 {
		b.WriteString(`,"attrs":{`)
		for i, a := range attrs {
			if i > 0 {
				b.WriteByte(',')
			}
			kb, err := json.Marshal(a.Key)
			if err != nil {
				return nil, err
			}
			b.Write(kb)
			b.WriteByte(':')
			vb, err := json.Marshal(a.Value)
			if err != nil {
				return nil, err
			}
			b.Write(vb)
		}
		b.WriteByte('}')
	}
	if len(children) > 0 {
		b.WriteString(`,"children":[`)
		for i, c := range children {
			if i > 0 {
				b.WriteByte(',')
			}
			cb, err := c.MarshalJSON()
			if err != nil {
				return nil, err
			}
			b.Write(cb)
		}
		b.WriteByte(']')
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

// WriteTree pretty-prints the span tree, one span per line, indented by
// depth, with the duration and attrs inline:
//
//	query 1.23ms
//	  plan 10µs order=[1 0] est[0]=120
//	  step[?s p ?o] 800µs kind=merge rowsIn=1 rowsOut=98
func (s *Span) WriteTree(w io.Writer) error {
	if s == nil {
		return nil
	}
	return s.writeTree(w, 0)
}

func (s *Span) writeTree(w io.Writer, depth int) error {
	s.mu.Lock()
	name := s.name
	attrs := append([]Attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(name)
	fmt.Fprintf(&b, " %s", s.Duration().Round(time.Microsecond))
	for _, a := range attrs {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value)
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for _, c := range children {
		if err := c.writeTree(w, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// String renders the tree (WriteTree into a string); "" on nil.
func (s *Span) String() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.writeTree(&b, 0) //nolint:errcheck // strings.Builder cannot fail
	return b.String()
}

// Top returns the n most expensive descendant spans (the root itself is
// excluded — its duration is the whole query), sorted by duration
// descending. Used by the governor's slow-query log.
func (s *Span) Top(n int) []*Span {
	if s == nil || n <= 0 {
		return nil
	}
	var all []*Span
	var walk func(sp *Span)
	walk = func(sp *Span) {
		for _, c := range sp.Children() {
			all = append(all, c)
			walk(c)
		}
	}
	walk(s)
	sort.SliceStable(all, func(i, j int) bool { return all[i].Duration() > all[j].Duration() })
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// FormatTop renders Top(n) as a single log-friendly string:
// "step[?a p ?c] 1.2ms; merge 800µs; scatter 400µs".
func (s *Span) FormatTop(n int) string {
	top := s.Top(n)
	if len(top) == 0 {
		return ""
	}
	parts := make([]string, len(top))
	for i, sp := range top {
		parts[i] = fmt.Sprintf("%s %s", sp.Name(), sp.Duration().Round(time.Microsecond))
	}
	return strings.Join(parts, "; ")
}

type ctxKey struct{}

// NewContext returns a context carrying the span, for layers (shard
// scatter-gather) reached only through context-plumbed interfaces.
func NewContext(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext extracts the span installed by NewContext, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
