package pagefile

import (
	"errors"
	"path/filepath"
	"syscall"
	"testing"

	"hexastore/internal/iofault"
)

// TestTornPageWriteDetectedOnReopen crashes mid page write and verifies
// the per-page checksum catches the torn page on reopen: the damaged
// page reads as CorruptionError instead of being silently served, while
// untouched pages stay readable.
func TestTornPageWriteDetectedOnReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.db")
	inj := iofault.NewInjector(nil)

	pf, err := Create(path, Options{FS: inj})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	var ids [2]PageID
	for i := range ids {
		p, err := pf.Allocate()
		if err != nil {
			t.Fatalf("Allocate: %v", err)
		}
		for j := range p.Data() {
			p.Data()[j] = byte('A' + i)
		}
		p.MarkDirty()
		ids[i] = p.ID()
		pf.Release(p)
	}
	if err := pf.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := pf.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen, rewrite page 0's payload, and crash that write partway:
	// the new checksum lands but only 100 bytes of the new payload do.
	pf, err = Open(path, Options{FS: inj})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	p, err := pf.Get(ids[0])
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	for j := range p.Data() {
		p.Data()[j] = 'X'
	}
	p.MarkDirty()
	pf.Release(p)
	inj.AddFault(iofault.Fault{
		Op:    iofault.OpWrite,
		Nth:   inj.Count(iofault.OpWrite) + 1,
		Keep:  100,
		Crash: true,
	})
	if err := pf.Flush(); err == nil {
		t.Fatal("Flush over torn write: no error")
	}
	pf.Close() //nolint:errcheck // simulated machine is off

	// The post-crash reboot opens through a clean filesystem.
	pf2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	defer pf2.Close()
	var ce *CorruptionError
	if _, err := pf2.Get(ids[0]); !errors.As(err, &ce) || ce.Page != ids[0] {
		t.Fatalf("Get(torn page): err = %v, want CorruptionError for page %d", err, ids[0])
	}
	p2, err := pf2.Get(ids[1])
	if err != nil {
		t.Fatalf("Get(intact page): %v", err)
	}
	defer pf2.Release(p2)
	for j, b := range p2.Data() {
		if b != 'B' {
			t.Fatalf("intact page byte %d = %q, want 'B'", j, b)
		}
	}
}

// TestFlushENOSPCRetry fills the disk under a Flush: the caller sees
// the real ENOSPC, the page stays dirty, and a retry once space frees
// up persists it — the full-disk condition is transient, not fatal.
func TestFlushENOSPCRetry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "enospc.db")
	inj := iofault.NewInjector(nil)
	pf, err := Create(path, Options{FS: inj})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	p, err := pf.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	copy(p.Data(), "survives the full disk")
	p.MarkDirty()
	id := p.ID()
	pf.Release(p)

	inj.AddFault(iofault.Fault{
		Op:  iofault.OpWrite,
		Nth: inj.Count(iofault.OpWrite) + 1,
		Err: iofault.ErrNoSpace,
	})
	if err := pf.Flush(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Flush on full disk: err = %v, want ENOSPC", err)
	}
	// Space freed (the fault is spent): the retry must write the page
	// that stayed dirty through the failure.
	if err := pf.Sync(); err != nil {
		t.Fatalf("Sync retry: %v", err)
	}
	if err := pf.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	pf2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer pf2.Close()
	p2, err := pf2.Get(id)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	defer pf2.Release(p2)
	if got := string(p2.Data()[:22]); got != "survives the full disk" {
		t.Fatalf("payload = %q", got)
	}
}
