// Package pagefile implements the paged-storage substrate of the
// disk-based Hexastore (the "fully operational disk-based Hexastore"
// named as future work in §7 of the paper).
//
// A File is a sequence of fixed-size pages. Page 0 is a meta page holding
// the file header, the head of the free-page list, and a small array of
// root slots in which client structures (the six B+-trees of a disk
// Hexastore, plus the dictionary heap) record their root page ids. Every
// page carries a CRC-32 checksum that is verified on each read from disk,
// so torn or corrupted pages are detected rather than silently served.
//
// Reads and writes go through a pinning LRU buffer pool, so hot index
// pages (tree roots, upper internal nodes) stay in memory across
// operations while the working set of a scan is bounded.
package pagefile

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"hexastore/internal/iofault"
)

const (
	// PageSize is the on-disk size of every page, including its header.
	PageSize = 4096

	// headerSize is the per-page overhead: a CRC-32 of the payload.
	headerSize = 4

	// PayloadSize is the number of usable bytes in a page.
	PayloadSize = PageSize - headerSize

	// RootSlots is the number of root ids a File stores for its clients.
	RootSlots = 16

	// metaMagic identifies a pagefile; it doubles as a format version.
	metaMagic = "HEXPAGE1"
)

// PageID identifies a page within a File. Page 0 is the meta page and is
// never returned by Allocate; 0 therefore doubles as a nil page id.
type PageID uint32

// NilPage is the zero PageID, used as "no page".
const NilPage PageID = 0

// Options configures a File.
type Options struct {
	// CacheSize is the capacity of the buffer pool in pages. Zero means
	// DefaultCacheSize. It must be large enough to hold every page pinned
	// simultaneously by the client (a handful for a B+-tree descent).
	CacheSize int

	// FS routes the pagefile's I/O through a fault-injection layer;
	// nil means the real filesystem.
	FS iofault.FS
}

// DefaultCacheSize is the buffer pool capacity when Options.CacheSize is 0.
const DefaultCacheSize = 256

// Stats reports buffer pool and allocation activity since the File was
// opened. It is used by the disk-store benchmarks to show how cache size
// shapes I/O.
type Stats struct {
	Hits      int64 // Get served from the buffer pool
	Misses    int64 // Get that had to read from disk
	Evictions int64 // pages evicted to make room
	Writes    int64 // pages written to disk
	Allocs    int64 // pages allocated (fresh or recycled)
	Frees     int64 // pages returned to the free list
}

// Page is a pinned in-memory copy of one disk page. The caller owns it
// until Release; after Release the Data slice must not be touched.
type Page struct {
	id    PageID
	data  []byte // PayloadSize bytes
	pins  int
	dirty bool
	// LRU bookkeeping (guarded by the File mutex).
	prev, next *Page
}

// ID returns the page's id.
func (p *Page) ID() PageID { return p.id }

// Data returns the page payload (PayloadSize bytes). Mutating it requires
// a MarkDirty call for the change to be persisted.
func (p *Page) Data() []byte { return p.data }

// MarkDirty records that the payload changed and must be written back.
func (p *Page) MarkDirty() { p.dirty = true }

// File is a paged file with a buffer pool. It is safe for concurrent use.
type File struct {
	mu   sync.Mutex
	f    iofault.File
	path string

	numPages uint32 // including the meta page
	freeHead PageID
	roots    [RootSlots]uint64
	metaDirt bool

	cacheCap int
	cache    map[PageID]*Page
	lruHead  *Page // most recently used
	lruTail  *Page // least recently used

	stats  Stats
	closed bool
}

// Create creates a fresh pagefile at path, truncating any existing file.
func Create(path string, opts Options) (*File, error) {
	f, err := iofault.Or(opts.FS).OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagefile: create %s: %w", path, err)
	}
	pf := newFile(f, path, opts)
	pf.numPages = 1 // meta page
	pf.metaDirt = true
	if err := pf.writeMeta(); err != nil {
		f.Close()
		return nil, err
	}
	return pf, nil
}

// Open opens an existing pagefile at path and verifies its header.
func Open(path string, opts Options) (*File, error) {
	f, err := iofault.Or(opts.FS).OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagefile: open %s: %w", path, err)
	}
	pf := newFile(f, path, opts)
	if err := pf.readMeta(); err != nil {
		f.Close()
		return nil, err
	}
	return pf, nil
}

func newFile(f iofault.File, path string, opts Options) *File {
	cap := opts.CacheSize
	if cap <= 0 {
		cap = DefaultCacheSize
	}
	return &File{
		f:        f,
		path:     path,
		cacheCap: cap,
		cache:    make(map[PageID]*Page, cap),
	}
}

// CorruptionError reports a page whose checksum did not match its
// contents when read from disk.
type CorruptionError struct {
	Path string
	Page PageID
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("pagefile: %s: page %d checksum mismatch (corrupted)", e.Path, e.Page)
}

// meta page payload layout:
//
//	[0:8]   magic
//	[8:12]  numPages
//	[12:16] freeHead
//	[16:16+8*RootSlots] root slots
func (pf *File) writeMeta() error {
	var buf [PayloadSize]byte
	copy(buf[0:8], metaMagic)
	binary.LittleEndian.PutUint32(buf[8:12], pf.numPages)
	binary.LittleEndian.PutUint32(buf[12:16], uint32(pf.freeHead))
	for i, r := range pf.roots {
		binary.LittleEndian.PutUint64(buf[16+8*i:], r)
	}
	if err := pf.writePage(0, buf[:]); err != nil {
		return err
	}
	pf.metaDirt = false
	return nil
}

func (pf *File) readMeta() error {
	buf, err := pf.readPage(0)
	if err != nil {
		return err
	}
	if string(buf[0:8]) != metaMagic {
		return fmt.Errorf("pagefile: %s: bad magic (not a pagefile or wrong version)", pf.path)
	}
	pf.numPages = binary.LittleEndian.Uint32(buf[8:12])
	pf.freeHead = PageID(binary.LittleEndian.Uint32(buf[12:16]))
	for i := range pf.roots {
		pf.roots[i] = binary.LittleEndian.Uint64(buf[16+8*i:])
	}
	return nil
}

// writePage checksums and writes one payload at page id.
func (pf *File) writePage(id PageID, payload []byte) error {
	var raw [PageSize]byte
	copy(raw[headerSize:], payload)
	crc := crc32.ChecksumIEEE(raw[headerSize:])
	binary.LittleEndian.PutUint32(raw[0:4], crc)
	if _, err := pf.f.WriteAt(raw[:], int64(id)*PageSize); err != nil {
		return fmt.Errorf("pagefile: write page %d: %w", id, err)
	}
	pf.stats.Writes++
	return nil
}

// readPage reads and checksum-verifies one page, returning its payload.
func (pf *File) readPage(id PageID) ([]byte, error) {
	raw := make([]byte, PageSize)
	if _, err := pf.f.ReadAt(raw, int64(id)*PageSize); err != nil {
		return nil, fmt.Errorf("pagefile: read page %d: %w", id, err)
	}
	want := binary.LittleEndian.Uint32(raw[0:4])
	if crc32.ChecksumIEEE(raw[headerSize:]) != want {
		return nil, &CorruptionError{Path: pf.path, Page: id}
	}
	return raw[headerSize:], nil
}

// SetRoot stores v in root slot i (persisted at the next Flush/Close).
func (pf *File) SetRoot(i int, v uint64) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.roots[i] != v {
		pf.roots[i] = v
		pf.metaDirt = true
	}
}

// Root returns root slot i.
func (pf *File) Root(i int) uint64 {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return pf.roots[i]
}

// NumPages returns the number of pages in the file, including the meta
// page and any freed pages.
func (pf *File) NumPages() int {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return int(pf.numPages)
}

// Stats returns a copy of the activity counters.
func (pf *File) Stats() Stats {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return pf.stats
}

// Allocate returns a zeroed, pinned page, recycling the free list when
// possible. The caller must Release it.
func (pf *File) Allocate() (*Page, error) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	var id PageID
	if pf.freeHead != NilPage {
		// Pop the free list: the first 4 payload bytes of a free page
		// link to the next free page.
		head, err := pf.getLocked(pf.freeHead)
		if err != nil {
			return nil, err
		}
		id = pf.freeHead
		pf.freeHead = PageID(binary.LittleEndian.Uint32(head.data[0:4]))
		pf.metaDirt = true
		for i := range head.data {
			head.data[i] = 0
		}
		head.dirty = true
		pf.stats.Allocs++
		return head, nil
	}
	id = PageID(pf.numPages)
	pf.numPages++
	pf.metaDirt = true
	pf.stats.Allocs++

	p := &Page{id: id, data: make([]byte, PayloadSize), pins: 1, dirty: true}
	if err := pf.insertCache(p); err != nil {
		return nil, err
	}
	return p, nil
}

// Free returns page id to the free list. The page must not be pinned.
func (pf *File) Free(id PageID) error {
	if id == NilPage {
		return fmt.Errorf("pagefile: Free(0): meta page cannot be freed")
	}
	pf.mu.Lock()
	defer pf.mu.Unlock()
	p, err := pf.getLocked(id)
	if err != nil {
		return err
	}
	if p.pins > 1 {
		p.pins--
		return fmt.Errorf("pagefile: Free(%d): page still pinned", id)
	}
	binary.LittleEndian.PutUint32(p.data[0:4], uint32(pf.freeHead))
	p.dirty = true
	pf.freeHead = id
	pf.metaDirt = true
	pf.stats.Frees++
	p.pins--
	return nil
}

// Get returns the page with the given id, pinned. The caller must Release
// it when done.
func (pf *File) Get(id PageID) (*Page, error) {
	if id == NilPage {
		return nil, fmt.Errorf("pagefile: Get(0): meta page is not client-accessible")
	}
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return pf.getLocked(id)
}

func (pf *File) getLocked(id PageID) (*Page, error) {
	if p, ok := pf.cache[id]; ok {
		p.pins++
		pf.lruTouch(p)
		pf.stats.Hits++
		return p, nil
	}
	pf.stats.Misses++
	payload, err := pf.readPage(id)
	if err != nil {
		return nil, err
	}
	p := &Page{id: id, data: payload, pins: 1}
	if err := pf.insertCache(p); err != nil {
		return nil, err
	}
	return p, nil
}

// Release unpins p. Dirty pages stay cached and are written back on
// eviction or Flush.
func (pf *File) Release(p *Page) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if p.pins <= 0 {
		panic("pagefile: Release of unpinned page")
	}
	p.pins--
}

// insertCache adds p to the pool, evicting the least recently used
// unpinned page if the pool is full.
func (pf *File) insertCache(p *Page) error {
	for len(pf.cache) >= pf.cacheCap {
		victim := pf.lruTail
		for victim != nil && victim.pins > 0 {
			victim = victim.prev
		}
		if victim == nil {
			// Everything is pinned; let the pool grow rather than fail.
			break
		}
		if victim.dirty {
			if err := pf.writePage(victim.id, victim.data); err != nil {
				return err
			}
			victim.dirty = false
		}
		pf.lruRemove(victim)
		delete(pf.cache, victim.id)
		pf.stats.Evictions++
	}
	pf.cache[p.id] = p
	pf.lruPush(p)
	return nil
}

// lruPush inserts p at the head (most recently used).
func (pf *File) lruPush(p *Page) {
	p.prev = nil
	p.next = pf.lruHead
	if pf.lruHead != nil {
		pf.lruHead.prev = p
	}
	pf.lruHead = p
	if pf.lruTail == nil {
		pf.lruTail = p
	}
}

func (pf *File) lruRemove(p *Page) {
	if p.prev != nil {
		p.prev.next = p.next
	} else {
		pf.lruHead = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	} else {
		pf.lruTail = p.prev
	}
	p.prev, p.next = nil, nil
}

func (pf *File) lruTouch(p *Page) {
	pf.lruRemove(p)
	pf.lruPush(p)
}

// Flush writes every dirty page and the meta page to disk.
func (pf *File) Flush() error {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return pf.flushLocked()
}

func (pf *File) flushLocked() error {
	for _, p := range pf.cache {
		if p.dirty {
			if err := pf.writePage(p.id, p.data); err != nil {
				return err
			}
			p.dirty = false
		}
	}
	if pf.metaDirt {
		if err := pf.writeMeta(); err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes and then fsyncs the underlying file.
func (pf *File) Sync() error {
	if err := pf.Flush(); err != nil {
		return err
	}
	return pf.f.Sync()
}

// Close flushes and closes the file. The File must not be used afterwards.
func (pf *File) Close() error {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.closed {
		return nil
	}
	pf.closed = true
	if err := pf.flushLocked(); err != nil {
		pf.f.Close()
		return err
	}
	return pf.f.Close()
}

// Path returns the file system path of the pagefile.
func (pf *File) Path() string { return pf.path }
