package pagefile

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func newTempFile(t *testing.T, opts Options) *File {
	t.Helper()
	pf, err := Create(filepath.Join(t.TempDir(), "test.db"), opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	t.Cleanup(func() { pf.Close() })
	return pf
}

func TestCreateOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rt.db")

	pf, err := Create(path, Options{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	p, err := pf.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	copy(p.Data(), "hello pagefile")
	p.MarkDirty()
	id := p.ID()
	pf.Release(p)
	pf.SetRoot(3, uint64(id))
	if err := pf.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	pf2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer pf2.Close()
	if got := pf2.Root(3); got != uint64(id) {
		t.Fatalf("Root(3) = %d, want %d", got, id)
	}
	p2, err := pf2.Get(id)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	defer pf2.Release(p2)
	if got := string(p2.Data()[:14]); got != "hello pagefile" {
		t.Fatalf("payload = %q, want %q", got, "hello pagefile")
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope.db"), Options{}); err == nil {
		t.Fatal("Open of missing file succeeded")
	}
}

func TestOpenNotAPagefile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.db")
	junk := make([]byte, PageSize)
	copy(junk, "this is not a pagefile at all")
	if err := os.WriteFile(path, junk, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Fatal("Open of non-pagefile succeeded")
	}
}

func TestAllocateIDsAreSequentialAndNonZero(t *testing.T) {
	pf := newTempFile(t, Options{})
	for want := PageID(1); want <= 5; want++ {
		p, err := pf.Allocate()
		if err != nil {
			t.Fatalf("Allocate: %v", err)
		}
		if p.ID() != want {
			t.Fatalf("Allocate id = %d, want %d", p.ID(), want)
		}
		pf.Release(p)
	}
	if got := pf.NumPages(); got != 6 { // meta + 5
		t.Fatalf("NumPages = %d, want 6", got)
	}
}

func TestFreeListRecycles(t *testing.T) {
	pf := newTempFile(t, Options{})
	p, _ := pf.Allocate()
	id := p.ID()
	pf.Release(p)
	if err := pf.Free(id); err != nil {
		t.Fatalf("Free: %v", err)
	}
	q, err := pf.Allocate()
	if err != nil {
		t.Fatalf("Allocate after Free: %v", err)
	}
	defer pf.Release(q)
	if q.ID() != id {
		t.Fatalf("recycled id = %d, want %d", q.ID(), id)
	}
	for _, b := range q.Data() {
		if b != 0 {
			t.Fatal("recycled page not zeroed")
		}
	}
}

func TestFreeMetaPageRejected(t *testing.T) {
	pf := newTempFile(t, Options{})
	if err := pf.Free(NilPage); err == nil {
		t.Fatal("Free(0) succeeded")
	}
}

func TestGetMetaPageRejected(t *testing.T) {
	pf := newTempFile(t, Options{})
	if _, err := pf.Get(NilPage); err == nil {
		t.Fatal("Get(0) succeeded")
	}
}

func TestFreePinnedPageRejected(t *testing.T) {
	pf := newTempFile(t, Options{})
	p, _ := pf.Allocate()
	// p is pinned once by Allocate; pin again via Get.
	q, err := pf.Get(p.ID())
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if err := pf.Free(p.ID()); err == nil {
		t.Fatal("Free of pinned page succeeded")
	}
	pf.Release(p)
	pf.Release(q)
}

func TestEvictionWritesBackDirtyPages(t *testing.T) {
	pf := newTempFile(t, Options{CacheSize: 4})
	// Allocate more pages than fit in the cache, each with distinct data.
	const n = 32
	for i := 0; i < n; i++ {
		p, err := pf.Allocate()
		if err != nil {
			t.Fatalf("Allocate %d: %v", i, err)
		}
		binary.LittleEndian.PutUint64(p.Data(), uint64(i)+100)
		p.MarkDirty()
		pf.Release(p)
	}
	if pf.Stats().Evictions == 0 {
		t.Fatal("no evictions with CacheSize=4 and 32 pages")
	}
	// Everything must read back intact even though most pages were evicted.
	for i := 0; i < n; i++ {
		p, err := pf.Get(PageID(i + 1))
		if err != nil {
			t.Fatalf("Get %d: %v", i+1, err)
		}
		if got := binary.LittleEndian.Uint64(p.Data()); got != uint64(i)+100 {
			t.Fatalf("page %d payload = %d, want %d", i+1, got, i+100)
		}
		pf.Release(p)
	}
}

func TestCacheHitsDoNotTouchDisk(t *testing.T) {
	pf := newTempFile(t, Options{CacheSize: 8})
	p, _ := pf.Allocate()
	id := p.ID()
	pf.Release(p)
	before := pf.Stats().Misses
	for i := 0; i < 10; i++ {
		q, err := pf.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		pf.Release(q)
	}
	st := pf.Stats()
	if st.Misses != before {
		t.Fatalf("misses grew from %d to %d on cached gets", before, st.Misses)
	}
	if st.Hits < 10 {
		t.Fatalf("hits = %d, want >= 10", st.Hits)
	}
}

func TestPoolGrowsWhenAllPinned(t *testing.T) {
	pf := newTempFile(t, Options{CacheSize: 2})
	var pages []*Page
	for i := 0; i < 6; i++ {
		p, err := pf.Allocate()
		if err != nil {
			t.Fatalf("Allocate with all pages pinned: %v", err)
		}
		pages = append(pages, p)
	}
	for _, p := range pages {
		pf.Release(p)
	}
}

func TestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corrupt.db")
	pf, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := pf.Allocate()
	copy(p.Data(), "important bytes")
	p.MarkDirty()
	id := p.ID()
	pf.Release(p)
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte in the payload of the page on disk.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[int(id)*PageSize+headerSize+3] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	pf2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pf2.Close()
	_, err = pf2.Get(id)
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("Get of corrupted page: err = %v, want CorruptionError", err)
	}
	if ce.Page != id {
		t.Fatalf("CorruptionError.Page = %d, want %d", ce.Page, id)
	}
}

func TestCorruptedMetaPageDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "meta.db")
	pf, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pf.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerSize+9] ^= 0xaa // inside the meta payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Fatal("Open with corrupted meta page succeeded")
	}
}

func TestRootSlotsPersist(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "roots.db")
	pf, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < RootSlots; i++ {
		pf.SetRoot(i, uint64(i*7+1))
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}
	pf2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pf2.Close()
	for i := 0; i < RootSlots; i++ {
		if got := pf2.Root(i); got != uint64(i*7+1) {
			t.Fatalf("Root(%d) = %d, want %d", i, got, i*7+1)
		}
	}
}

func TestFlushPersistsWithoutClose(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flush.db")
	pf, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	p, _ := pf.Allocate()
	copy(p.Data(), "flushed")
	p.MarkDirty()
	id := p.ID()
	pf.Release(p)
	if err := pf.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}

	// Read the raw file independently: the page must be there.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := int(id)*PageSize + headerSize
	if got := string(raw[off : off+7]); got != "flushed" {
		t.Fatalf("raw payload = %q, want %q", got, "flushed")
	}
}

func TestDoubleCloseIsSafe(t *testing.T) {
	pf := newTempFile(t, Options{})
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestReleaseUnpinnedPanics(t *testing.T) {
	pf := newTempFile(t, Options{})
	p, _ := pf.Allocate()
	pf.Release(p)
	defer func() {
		if recover() == nil {
			t.Fatal("Release of unpinned page did not panic")
		}
	}()
	pf.Release(p)
}

func TestFreedPagePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "freelist.db")
	pf, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := pf.Allocate()
	id1 := p1.ID()
	pf.Release(p1)
	p2, _ := pf.Allocate()
	pf.Release(p2)
	if err := pf.Free(id1); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}

	pf2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pf2.Close()
	q, err := pf2.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	defer pf2.Release(q)
	if q.ID() != id1 {
		t.Fatalf("recycled id after reopen = %d, want %d", q.ID(), id1)
	}
}
