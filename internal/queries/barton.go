package queries

import (
	"sort"

	"hexastore/internal/core"
	"hexastore/internal/idlist"
	"hexastore/internal/vp"
)

// Pair is a (first, second) id pair used as an aggregation key.
type Pair [2]ID

// countIntersect returns |a ∩ b| via an adaptive (galloping)
// merge-join: per-object subject lists are routinely tiny next to the
// selections they are intersected with.
func countIntersect(a, b *idlist.List) int {
	n := 0
	idlist.MergeJoinAdaptive(a, b, func(ID) { n++ })
	return n
}

// sortedProps returns props if non-nil (the restricted "28" variants),
// otherwise all distinct properties of the store, sorted for determinism.
func sortedProps(all []ID, props []ID) []ID {
	if props != nil {
		return props
	}
	out := make([]ID, len(all))
	copy(out, all)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ---------------------------------------------------------------------
// BQ1 — counts of each different type of data: for every object value of
// the Type property, the number of triples carrying it.

// BQ1Hexa answers BQ1 on the Hexastore: a single walk of the pos index
// of Type, reading each object's subject-list length.
func BQ1Hexa(st *core.Store, ids BartonIDs) map[ID]int {
	out := make(map[ID]int)
	st.Head(core.POS, ids.Type).Range(func(o ID, subjs *idlist.List) bool {
		out[o] = subjs.Len()
		return true
	})
	return out
}

// BQ1COVP answers BQ1 on a COVP store. COVP2 uses its pos index exactly
// like the Hexastore; COVP1 has no pos index and must self-join—
// aggregate over the pso table of Type.
func BQ1COVP(st *vp.Store, ids BartonIDs) map[ID]int {
	out := make(map[ID]int)
	if st.HasPOS() {
		st.ObjectVec(ids.Type).Range(func(o ID, subjs *idlist.List) bool {
			out[o] = subjs.Len()
			return true
		})
		return out
	}
	st.SubjectVec(ids.Type).Range(func(_ ID, objs *idlist.List) bool {
		objs.Range(func(o ID) bool {
			out[o]++
			return true
		})
		return true
	})
	return out
}

// ---------------------------------------------------------------------
// BQ2 — properties defined for resources of Type: Text, with the
// frequency (triple count) of each property over those resources.
// props restricts the examined properties (the "28" variants); nil means
// every property in the store.

// textSubjectsHexa selects the sorted subjects of ⟨·, Type, Text⟩ via
// the pos terminal list.
func textSubjectsHexa(st *core.Store, ids BartonIDs) *idlist.List {
	return st.Subjects(ids.Type, ids.Text)
}

// BQ2Hexa: select t via pos, then merge the property vectors of the
// subjects in t in spo indexing, aggregating per-property triple counts.
func BQ2Hexa(st *core.Store, ids BartonIDs, props []ID) map[ID]int {
	t := textSubjectsHexa(st, ids)
	return propertyFrequenciesHexa(st, t, props)
}

func propertyFrequenciesHexa(st *core.Store, t *idlist.List, props []ID) map[ID]int {
	var allowed map[ID]bool
	if props != nil {
		allowed = make(map[ID]bool, len(props))
		for _, p := range props {
			allowed[p] = true
		}
	}
	out := make(map[ID]int)
	t.Range(func(s ID) bool {
		st.Head(core.SPO, s).Range(func(p ID, objs *idlist.List) bool {
			if allowed == nil || allowed[p] {
				out[p] += objs.Len()
			}
			return true
		})
		return true
	})
	return out
}

// BQ2COVP: select t (pso scan for COVP1, pos lookup for COVP2), then
// merge-join t against every property table's subject vector, counting
// objects per match.
func BQ2COVP(st *vp.Store, ids BartonIDs, props []ID) map[ID]int {
	t := st.SubjectsByObject(ids.Type, ids.Text)
	return propertyFrequenciesCOVP(st, t, props)
}

func propertyFrequenciesCOVP(st *vp.Store, t *idlist.List, props []ID) map[ID]int {
	out := make(map[ID]int)
	for _, p := range sortedProps(st.Properties(), props) {
		sv := st.SubjectVec(p)
		if sv.Len() == 0 {
			continue
		}
		freq := 0
		idlist.MergeJoin(t, sv.KeyList(), func(s ID) {
			objs, _ := sv.Find(s)
			freq += objs.Len()
		})
		if freq > 0 {
			out[p] = freq
		}
	}
	return out
}

// ---------------------------------------------------------------------
// BQ3 — as BQ2, but report (property, object) pairs whose object value
// occurs more than once among the Type: Text resources.

// BQ3Hexa: t via pos; discover the relevant properties by merging the
// spo property vectors of t; then, per the paper, aggregate per
// (property, object) with the pos index, counting |subjects(p,o) ∩ t|.
func BQ3Hexa(st *core.Store, ids BartonIDs, props []ID) map[Pair]int {
	return bq3FinalHexa(st, textSubjectsHexa(st, ids), props)
}

// BQ3COVP: COVP1 joins t with each property table and counts object
// instances separately; COVP2 walks each property's pos copy
// intersecting subject lists with t.
func BQ3COVP(st *vp.Store, ids BartonIDs, props []ID) map[Pair]int {
	return bq3FinalCOVP(st, st.SubjectsByObject(ids.Type, ids.Text), props)
}

// ---------------------------------------------------------------------
// BQ4 — as BQ3, restricted to subjects of Type: Text AND Language:
// French.

// BQ4Hexa merge-joins the two pos subject lists, then proceeds as BQ3.
func BQ4Hexa(st *core.Store, ids BartonIDs, props []ID) map[Pair]int {
	t := idlist.Intersect(
		st.Subjects(ids.Type, ids.Text),
		st.Subjects(ids.Language, ids.French),
	)
	return bq3FinalHexa(st, t, props)
}

// bq3FinalHexa aggregates (property, object) counts over the selection
// t by walking the spo property vectors of the subjects in t — the BQ2
// step the Hexastore gets for free while COVP must visit every table —
// and counting each (property, object) pair as it streams by.
//
// Plan note: the paper (§5.2.1, BQ3) has its Hexastore fall back to the
// pos index for this aggregation, reflecting its prototype's lack of
// cheap hash aggregation. On this substrate, counting during the spo
// walk is the store's natural plan and produces identical results (the
// differential tests enforce agreement with both COVP plans); the pos
// variant was measured at roughly 2× the cost since it re-probes a
// terminal list per candidate pair.
func bq3FinalHexa(st *core.Store, t *idlist.List, props []ID) map[Pair]int {
	var allowed map[ID]bool
	if props != nil {
		allowed = make(map[ID]bool, len(props))
		for _, p := range props {
			allowed[p] = true
		}
	}
	counts := make(map[Pair]int)
	t.Range(func(s ID) bool {
		st.Head(core.SPO, s).Range(func(p ID, objs *idlist.List) bool {
			if allowed != nil && !allowed[p] {
				return true
			}
			objs.Range(func(o ID) bool {
				counts[Pair{p, o}]++
				return true
			})
			return true
		})
		return true
	})
	for pair, c := range counts {
		if c <= 1 {
			delete(counts, pair)
		}
	}
	return counts
}

// BQ4COVP jointly selects on both constraints (scan-and-probe for
// COVP1, two pos lookups merged for COVP2), then proceeds as BQ3.
func BQ4COVP(st *vp.Store, ids BartonIDs, props []ID) map[Pair]int {
	t := idlist.Intersect(
		st.SubjectsByObject(ids.Type, ids.Text),
		st.SubjectsByObject(ids.Language, ids.French),
	)
	return bq3FinalCOVP(st, t, props)
}

func bq3FinalCOVP(st *vp.Store, t *idlist.List, props []ID) map[Pair]int {
	out := make(map[Pair]int)
	for _, p := range sortedProps(st.Properties(), props) {
		if st.HasPOS() {
			// COVP2: find candidate objects by joining t with the
			// subject-sorted table, then count each candidate on the
			// object-sorted copy (the paper: "utilizes its pos index in
			// the final processing step").
			sv := st.SubjectVec(p)
			if sv.Len() == 0 {
				continue
			}
			candidates := make(map[ID]bool)
			idlist.MergeJoin(t, sv.KeyList(), func(s ID) {
				objs, _ := sv.Find(s)
				objs.Range(func(o ID) bool {
					candidates[o] = true
					return true
				})
			})
			ov := st.ObjectVec(p)
			for o := range candidates {
				subjs, _ := ov.Find(o)
				if c := countIntersect(subjs, t); c > 1 {
					out[Pair{p, o}] = c
				}
			}
			continue
		}
		sv := st.SubjectVec(p)
		if sv.Len() == 0 {
			continue
		}
		counts := make(map[ID]int)
		idlist.MergeJoin(t, sv.KeyList(), func(s ID) {
			objs, _ := sv.Find(s)
			objs.Range(func(o ID) bool {
				counts[o]++
				return true
			})
		})
		for o, c := range counts {
			if c > 1 {
				out[Pair{p, o}] = c
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------
// BQ5 — inference: for subjects with Origin: DLC that have Records
// defined, report the inferred type (the Type of the recorded object)
// when it is not Type: Text. The result is the set of (subject,
// inferredType) pairs.

// BQ5Hexa: s from the pos terminal list; then merge-join the sorted
// object vector of Records (pos) with the sorted subject vector of Type
// (pso) to build the small table T of non-text inferred types, and
// sort-merge s against the recording subjects.
func BQ5Hexa(st *core.Store, ids BartonIDs) map[Pair]bool {
	s := st.Subjects(ids.Origin, ids.DLC)
	out := make(map[Pair]bool)
	recordsVec := st.Head(core.POS, ids.Records) // object → recording subjects
	typeVec := st.Head(core.PSO, ids.Type)       // subject → its types
	if recordsVec.Len() == 0 || typeVec.Len() == 0 || s.Len() == 0 {
		return out
	}
	idlist.MergeJoin(recordsVec.KeyList(), typeVec.KeyList(), func(obj ID) {
		types, _ := typeVec.Find(obj)
		recorders, _ := recordsVec.Find(obj)
		var nonText []ID
		types.Range(func(typ ID) bool {
			if typ != ids.Text {
				nonText = append(nonText, typ)
			}
			return true
		})
		if len(nonText) == 0 {
			return
		}
		idlist.MergeJoinAdaptive(recorders, s, func(subj ID) {
			for _, typ := range nonText {
				out[Pair{subj, typ}] = true
			}
		})
	})
	return out
}

// BQ5COVP: COVP1 scan-selects s, joins it with the Records table to an
// unsorted recorded-object list, and sort-merge joins that against the
// Type table; COVP2 follows the Hexastore plan on its own two indices.
func BQ5COVP(st *vp.Store, ids BartonIDs) map[Pair]bool {
	s := st.SubjectsByObject(ids.Origin, ids.DLC)
	out := make(map[Pair]bool)
	if s.Len() == 0 {
		return out
	}
	typeVec := st.SubjectVec(ids.Type)
	if typeVec.Len() == 0 {
		return out
	}

	if st.HasPOS() {
		recordsVec := st.ObjectVec(ids.Records)
		if recordsVec.Len() == 0 {
			return out
		}
		idlist.MergeJoin(recordsVec.KeyList(), typeVec.KeyList(), func(obj ID) {
			types, _ := typeVec.Find(obj)
			recorders, _ := recordsVec.Find(obj)
			var nonText []ID
			types.Range(func(typ ID) bool {
				if typ != ids.Text {
					nonText = append(nonText, typ)
				}
				return true
			})
			if len(nonText) == 0 {
				return
			}
			idlist.MergeJoinAdaptive(recorders, s, func(subj ID) {
				for _, typ := range nonText {
					out[Pair{subj, typ}] = true
				}
			})
		})
		return out
	}

	// COVP1: join s with the Records subject vector, collecting
	// (recordedObject, recordingSubject) pairs — unsorted in object.
	recSV := st.SubjectVec(ids.Records)
	if recSV.Len() == 0 {
		return out
	}
	type rec struct{ obj, subj ID }
	var pairs []rec
	idlist.MergeJoin(s, recSV.KeyList(), func(subj ID) {
		objs, _ := recSV.Find(subj)
		objs.Range(func(obj ID) bool {
			pairs = append(pairs, rec{obj, subj})
			return true
		})
	})
	// Sort by object, then merge against the (sorted) Type subject keys.
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].obj < pairs[j].obj })
	keys := typeVec.Keys()
	k := 0
	for _, pr := range pairs {
		for k < len(keys) && keys[k] < pr.obj {
			k++
		}
		if k >= len(keys) {
			break
		}
		if keys[k] != pr.obj {
			continue
		}
		types, _ := typeVec.Find(pr.obj)
		types.Range(func(typ ID) bool {
			if typ != ids.Text {
				out[Pair{pr.subj, typ}] = true
			}
			return true
		})
	}
	return out
}

// ---------------------------------------------------------------------
// BQ6 — aggregate property frequencies (as BQ2) over all resources that
// are either known to be of Type: Text, or can be inferred to be (their
// Origin is DLC and they Record an object of Type: Text — the BQ5
// inference step selecting Text instead of non-Text).

// BQ6Hexa merges the BQ2 and BQ5-style result sets on the Hexastore.
func BQ6Hexa(st *core.Store, ids BartonIDs, props []ID) map[ID]int {
	known := textSubjectsHexa(st, ids)
	inferred := inferredTextSubjectsHexa(st, ids)
	t := idlist.Union(known, inferred)
	return propertyFrequenciesHexa(st, t, props)
}

func inferredTextSubjectsHexa(st *core.Store, ids BartonIDs) *idlist.List {
	s := st.Subjects(ids.Origin, ids.DLC)
	recordsVec := st.Head(core.POS, ids.Records)
	var b idlist.Builder
	if s.Len() == 0 || recordsVec.Len() == 0 {
		return (&b).Finish()
	}
	textSubjects := st.Subjects(ids.Type, ids.Text) // objects whose type is Text
	idlist.MergeJoin(recordsVec.KeyList(), textSubjects, func(obj ID) {
		recorders, _ := recordsVec.Find(obj)
		idlist.MergeJoinAdaptive(recorders, s, func(subj ID) {
			b.Add(subj)
		})
	})
	return (&b).Finish()
}

// BQ6COVP merges the BQ2 and BQ5-style result sets on a COVP store.
func BQ6COVP(st *vp.Store, ids BartonIDs, props []ID) map[ID]int {
	known := st.SubjectsByObject(ids.Type, ids.Text)
	inferred := inferredTextSubjectsCOVP(st, ids)
	t := idlist.Union(known, inferred)
	return propertyFrequenciesCOVP(st, t, props)
}

func inferredTextSubjectsCOVP(st *vp.Store, ids BartonIDs) *idlist.List {
	s := st.SubjectsByObject(ids.Origin, ids.DLC)
	var b idlist.Builder
	if s.Len() == 0 {
		return (&b).Finish()
	}
	textSubjects := st.SubjectsByObject(ids.Type, ids.Text)
	if st.HasPOS() {
		recordsVec := st.ObjectVec(ids.Records)
		if recordsVec.Len() == 0 {
			return (&b).Finish()
		}
		idlist.MergeJoin(recordsVec.KeyList(), textSubjects, func(obj ID) {
			recorders, _ := recordsVec.Find(obj)
			idlist.MergeJoinAdaptive(recorders, s, func(subj ID) {
				b.Add(subj)
			})
		})
		return (&b).Finish()
	}
	recSV := st.SubjectVec(ids.Records)
	if recSV.Len() == 0 {
		return (&b).Finish()
	}
	idlist.MergeJoin(s, recSV.KeyList(), func(subj ID) {
		objs, _ := recSV.Find(subj)
		found := false
		idlist.MergeJoinAdaptive(objs, textSubjects, func(ID) { found = true })
		if found {
			b.Add(subj)
		}
	})
	return (&b).Finish()
}

// ---------------------------------------------------------------------
// BQ7 — simple triple selection: for resources whose Point value is
// "end", retrieve their Encoding and Type information. The result is
// the set of (subject, property, value) triples with property ∈
// {Encoding, Type}.

// BQ7Hexa: s straight from the pos terminal list, then merge-joined with
// the subject vectors of Encoding and Type.
func BQ7Hexa(st *core.Store, ids BartonIDs) map[[3]ID]bool {
	s := st.Subjects(ids.Point, ids.End)
	out := make(map[[3]ID]bool)
	for _, p := range []ID{ids.Encoding, ids.Type} {
		vec := st.Head(core.PSO, p)
		if vec.Len() == 0 {
			continue
		}
		idlist.MergeJoin(s, vec.KeyList(), func(subj ID) {
			objs, _ := vec.Find(subj)
			objs.Range(func(o ID) bool {
				out[[3]ID{subj, p, o}] = true
				return true
			})
		})
	}
	return out
}

// BQ7COVP: COVP1 scan-selects on Point: end first; COVP2 retrieves the
// selection with its pos index; both then merge-join with the Encoding
// and Type subject vectors.
func BQ7COVP(st *vp.Store, ids BartonIDs) map[[3]ID]bool {
	s := st.SubjectsByObject(ids.Point, ids.End)
	out := make(map[[3]ID]bool)
	for _, p := range []ID{ids.Encoding, ids.Type} {
		sv := st.SubjectVec(p)
		if sv.Len() == 0 {
			continue
		}
		idlist.MergeJoin(s, sv.KeyList(), func(subj ID) {
			objs, _ := sv.Find(subj)
			objs.Range(func(o ID) bool {
				out[[3]ID{subj, p, o}] = true
				return true
			})
		})
	}
	return out
}
