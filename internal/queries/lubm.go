package queries

import (
	"hexastore/internal/core"
	"hexastore/internal/idlist"
	"hexastore/internal/vp"
)

// ---------------------------------------------------------------------
// LQ1 / LQ2 — find everything related to a given object (all people
// related to Course10, resp. University0): the result is the set of
// (property, subject) pairs pointing at the object. The property is not
// bound — the query shape the paper's §3 motivation is built around.

// RelatedHexa answers LQ1/LQ2 on the Hexastore: a single walk of the
// object's osp/ops vectors retrieves the result straightforwardly.
func RelatedHexa(st *core.Store, obj ID) map[Pair]bool {
	out := make(map[Pair]bool)
	st.Head(core.OPS, obj).Range(func(p ID, subjs *idlist.List) bool {
		subjs.Range(func(s ID) bool {
			out[Pair{p, s}] = true
			return true
		})
		return true
	})
	return out
}

// RelatedCOVP answers LQ1/LQ2 on a COVP store: both variants must visit
// every property table; COVP1 scans each table's object lists, COVP2
// performs a pos lookup per table.
func RelatedCOVP(st *vp.Store, obj ID) map[Pair]bool {
	out := make(map[Pair]bool)
	for _, p := range sortedProps(st.Properties(), nil) {
		subjs := st.SubjectsByObject(p, obj)
		subjs.Range(func(s ID) bool {
			out[Pair{p, s}] = true
			return true
		})
	}
	return out
}

// ---------------------------------------------------------------------
// LQ3 — all immediate information about a resource that may appear both
// as subject and as object (AssociateProfessor10): the triples in which
// it occurs in either position.

// LQ3Hexa: two lookups — one in spo (resource as subject) and one in
// ops (resource as object).
func LQ3Hexa(st *core.Store, res ID) map[[3]ID]bool {
	out := make(map[[3]ID]bool)
	st.Head(core.SPO, res).Range(func(p ID, objs *idlist.List) bool {
		objs.Range(func(o ID) bool {
			out[[3]ID{res, p, o}] = true
			return true
		})
		return true
	})
	st.Head(core.OPS, res).Range(func(p ID, subjs *idlist.List) bool {
		subjs.Range(func(s ID) bool {
			out[[3]ID{s, p, res}] = true
			return true
		})
		return true
	})
	return out
}

// LQ3COVP: selection on both subject and object in every property
// table, unioned. The subject side is a binary search per table; the
// object side is COVP1's scan or COVP2's pos lookup.
func LQ3COVP(st *vp.Store, res ID) map[[3]ID]bool {
	out := make(map[[3]ID]bool)
	for _, p := range sortedProps(st.Properties(), nil) {
		if objs := st.Objects(p, res); objs != nil {
			objs.Range(func(o ID) bool {
				out[[3]ID{res, p, o}] = true
				return true
			})
		}
		st.SubjectsByObject(p, res).Range(func(s ID) bool {
			out[[3]ID{s, p, res}] = true
			return true
		})
	}
	return out
}

// ---------------------------------------------------------------------
// LQ4 — people related to the courses a professor teaches, grouped by
// course: course → set of (property, subject) pairs.

// LQ4Hexa: the course list t is the professor's teacherOf object list;
// each course is then answered with one osp/ops lookup.
func LQ4Hexa(st *core.Store, ids LUBMIDs) map[ID]map[Pair]bool {
	out := make(map[ID]map[Pair]bool)
	st.Objects(ids.AssocProf10, ids.TeacherOf).Range(func(course ID) bool {
		out[course] = RelatedHexa(st, course)
		return true
	})
	return out
}

// LQ4COVP: t from the teacherOf table; then every property table is
// visited per course (scan for COVP1, pos lookup for COVP2).
func LQ4COVP(st *vp.Store, ids LUBMIDs) map[ID]map[Pair]bool {
	out := make(map[ID]map[Pair]bool)
	t := st.Objects(ids.TeacherOf, ids.AssocProf10)
	t.Range(func(course ID) bool {
		out[course] = RelatedCOVP(st, course)
		return true
	})
	return out
}

// ---------------------------------------------------------------------
// LQ5 — people who received any degree from a university the professor
// is related to, grouped by university: university → set of subjects.

// LQ5Hexa: step 1 reads the professor's object vector straight from sop
// indexing; step 2 refines it to universities by merge-joining with the
// pos subject list of Type: University; step 3 is a pos lookup per
// (degree property, university).
func LQ5Hexa(st *core.Store, ids LUBMIDs) map[ID]*idlist.List {
	related := st.Head(core.SOP, ids.AssocProf10).KeyList()
	universities := idlist.Intersect(related, st.Subjects(ids.Type, ids.ClassUniversity))
	out := make(map[ID]*idlist.List)
	universities.Range(func(u ID) bool {
		var lists []*idlist.List
		for _, dp := range ids.DegreeProps {
			if l := st.Subjects(dp, u); l.Len() > 0 {
				lists = append(lists, l)
			}
		}
		if merged := idlist.UnionAll(lists); merged.Len() > 0 {
			out[u] = merged
		}
		return true
	})
	return out
}

// LQ5COVP: step 1 scans every property table for the professor's
// objects (a subject-bound binary search per table); step 2 refines to
// universities (scan-join for COVP1, pos pre-selection for COVP2); step
// 3 unions the three degreeFrom tables (scan for COVP1, pos lookups for
// COVP2).
func LQ5COVP(st *vp.Store, ids LUBMIDs) map[ID]*idlist.List {
	var tb idlist.Builder
	for _, p := range sortedProps(st.Properties(), nil) {
		if objs := st.Objects(p, ids.AssocProf10); objs != nil {
			objs.Range(func(o ID) bool {
				tb.Add(o)
				return true
			})
		}
	}
	t := (&tb).Finish()

	var universities *idlist.List
	if st.HasPOS() {
		universities = idlist.Intersect(t, st.SubjectsByObject(ids.Type, ids.ClassUniversity))
	} else {
		// COVP1: join t against the Type table, keeping subjects whose
		// object list contains the University class.
		var ub idlist.Builder
		sv := st.SubjectVec(ids.Type)
		idlist.MergeJoin(t, sv.KeyList(), func(s ID) {
			objs, _ := sv.Find(s)
			if objs.Contains(ids.ClassUniversity) {
				ub.Add(s)
			}
		})
		universities = (&ub).Finish()
	}

	out := make(map[ID]*idlist.List)
	universities.Range(func(u ID) bool {
		var lists []*idlist.List
		for _, dp := range ids.DegreeProps {
			if l := st.SubjectsByObject(dp, u); l.Len() > 0 {
				lists = append(lists, l)
			}
		}
		if merged := idlist.UnionAll(lists); merged.Len() > 0 {
			out[u] = merged
		}
		return true
	})
	return out
}
