package queries

import (
	"reflect"
	"testing"

	"hexastore/internal/barton"
	"hexastore/internal/lubm"
)

// The differential tests below load the same data into all three stores
// and assert that the per-store query plans produce identical results —
// the essential precondition for the benchmark comparison (the paper
// compares response times of equivalent plans).

func bartonStores(t *testing.T) (*Stores, BartonIDs) {
	t.Helper()
	cfg := barton.Config{Records: 4000, Seed: 11}
	s := Load(cfg.GenerateAll())
	return s, ResolveBarton(s.Dict)
}

func lubmStores(t *testing.T) (*Stores, LUBMIDs) {
	t.Helper()
	cfg := lubm.Config{
		Universities: 3, Seed: 5, DeptsPerUniv: 4,
		UndergradPerDept: 30, GradPerDept: 10, CoursesPerDept: 10,
	}
	s := Load(cfg.GenerateAll())
	return s, ResolveLUBM(s.Dict)
}

func TestLoadBuildsConsistentStores(t *testing.T) {
	s, _ := bartonStores(t)
	if s.Hexa.Len() == 0 {
		t.Fatal("empty hexastore")
	}
	if s.Hexa.Len() != s.C1.Len() || s.C1.Len() != s.C2.Len() {
		t.Fatalf("store sizes differ: hexa=%d covp1=%d covp2=%d",
			s.Hexa.Len(), s.C1.Len(), s.C2.Len())
	}
}

func TestResolveBartonRestricted28(t *testing.T) {
	s, ids := bartonStores(t)
	if len(ids.Restricted28) != 28 {
		t.Fatalf("Restricted28 has %d properties, want 28", len(ids.Restricted28))
	}
	for _, p := range ids.Restricted28 {
		if p == None {
			t.Fatal("Restricted28 contains None")
		}
	}
	_ = s
}

func TestBQ1Agreement(t *testing.T) {
	s, ids := bartonStores(t)
	hexa := BQ1Hexa(s.Hexa, ids)
	c1 := BQ1COVP(s.C1, ids)
	c2 := BQ1COVP(s.C2, ids)
	if len(hexa) == 0 {
		t.Fatal("BQ1 empty result")
	}
	if !reflect.DeepEqual(hexa, c1) || !reflect.DeepEqual(hexa, c2) {
		t.Errorf("BQ1 results differ: hexa=%v covp1=%v covp2=%v", hexa, c1, c2)
	}
}

func TestBQ2Agreement(t *testing.T) {
	s, ids := bartonStores(t)
	for _, props := range [][]ID{nil, ids.Restricted28} {
		hexa := BQ2Hexa(s.Hexa, ids, props)
		c1 := BQ2COVP(s.C1, ids, props)
		c2 := BQ2COVP(s.C2, ids, props)
		if len(hexa) == 0 {
			t.Fatal("BQ2 empty result")
		}
		if !reflect.DeepEqual(hexa, c1) || !reflect.DeepEqual(hexa, c2) {
			t.Errorf("BQ2 (restricted=%v) results differ", props != nil)
		}
	}
}

func TestBQ2RestrictionShrinksResult(t *testing.T) {
	s, ids := bartonStores(t)
	full := BQ2Hexa(s.Hexa, ids, nil)
	restricted := BQ2Hexa(s.Hexa, ids, ids.Restricted28)
	if len(restricted) > len(full) {
		t.Errorf("restricted result (%d props) larger than full (%d)", len(restricted), len(full))
	}
	for p, c := range restricted {
		if full[p] != c {
			t.Errorf("property %d: restricted freq %d != full freq %d", p, c, full[p])
		}
	}
}

func TestBQ3Agreement(t *testing.T) {
	s, ids := bartonStores(t)
	for _, props := range [][]ID{nil, ids.Restricted28} {
		hexa := BQ3Hexa(s.Hexa, ids, props)
		c1 := BQ3COVP(s.C1, ids, props)
		c2 := BQ3COVP(s.C2, ids, props)
		if len(hexa) == 0 {
			t.Fatal("BQ3 empty result")
		}
		if !reflect.DeepEqual(hexa, c1) || !reflect.DeepEqual(hexa, c2) {
			t.Errorf("BQ3 (restricted=%v) results differ", props != nil)
		}
		// Every reported count must exceed one by construction.
		for pair, c := range hexa {
			if c <= 1 {
				t.Errorf("BQ3 pair %v has count %d", pair, c)
			}
		}
	}
}

func TestBQ4Agreement(t *testing.T) {
	s, ids := bartonStores(t)
	for _, props := range [][]ID{nil, ids.Restricted28} {
		hexa := BQ4Hexa(s.Hexa, ids, props)
		c1 := BQ4COVP(s.C1, ids, props)
		c2 := BQ4COVP(s.C2, ids, props)
		if !reflect.DeepEqual(hexa, c1) || !reflect.DeepEqual(hexa, c2) {
			t.Errorf("BQ4 (restricted=%v) results differ", props != nil)
		}
	}
	// BQ4's extra Language constraint can only shrink BQ3's result.
	bq3 := BQ3Hexa(s.Hexa, ids, nil)
	bq4 := BQ4Hexa(s.Hexa, ids, nil)
	if len(bq4) > len(bq3) {
		t.Errorf("BQ4 result (%d) larger than BQ3 (%d)", len(bq4), len(bq3))
	}
}

func TestBQ5Agreement(t *testing.T) {
	s, ids := bartonStores(t)
	hexa := BQ5Hexa(s.Hexa, ids)
	c1 := BQ5COVP(s.C1, ids)
	c2 := BQ5COVP(s.C2, ids)
	if len(hexa) == 0 {
		t.Fatal("BQ5 empty result — generator must produce DLC→Records→Type chains")
	}
	if !reflect.DeepEqual(hexa, c1) || !reflect.DeepEqual(hexa, c2) {
		t.Errorf("BQ5 results differ: hexa=%d covp1=%d covp2=%d pairs", len(hexa), len(c1), len(c2))
	}
	for pair := range hexa {
		if pair[1] == ids.Text {
			t.Errorf("BQ5 reported a Text inferred type for subject %d", pair[0])
		}
	}
}

func TestBQ6Agreement(t *testing.T) {
	s, ids := bartonStores(t)
	for _, props := range [][]ID{nil, ids.Restricted28} {
		hexa := BQ6Hexa(s.Hexa, ids, props)
		c1 := BQ6COVP(s.C1, ids, props)
		c2 := BQ6COVP(s.C2, ids, props)
		if len(hexa) == 0 {
			t.Fatal("BQ6 empty result")
		}
		if !reflect.DeepEqual(hexa, c1) || !reflect.DeepEqual(hexa, c2) {
			t.Errorf("BQ6 (restricted=%v) results differ", props != nil)
		}
	}
	// BQ6 aggregates over a superset of BQ2's subjects.
	bq2 := BQ2Hexa(s.Hexa, ids, nil)
	bq6 := BQ6Hexa(s.Hexa, ids, nil)
	for p, c := range bq2 {
		if bq6[p] < c {
			t.Errorf("BQ6 freq for property %d (%d) below BQ2's (%d)", p, bq6[p], c)
		}
	}
}

func TestBQ7Agreement(t *testing.T) {
	s, ids := bartonStores(t)
	hexa := BQ7Hexa(s.Hexa, ids)
	c1 := BQ7COVP(s.C1, ids)
	c2 := BQ7COVP(s.C2, ids)
	if len(hexa) == 0 {
		t.Fatal("BQ7 empty result")
	}
	if !reflect.DeepEqual(hexa, c1) || !reflect.DeepEqual(hexa, c2) {
		t.Errorf("BQ7 results differ")
	}
	for tr := range hexa {
		if tr[1] != ids.Encoding && tr[1] != ids.Type {
			t.Errorf("BQ7 reported unrelated property %d", tr[1])
		}
	}
}

func TestLQ1LQ2Agreement(t *testing.T) {
	s, ids := lubmStores(t)
	for name, obj := range map[string]ID{"LQ1/Course10": ids.Course10, "LQ2/University0": ids.University0} {
		hexa := RelatedHexa(s.Hexa, obj)
		c1 := RelatedCOVP(s.C1, obj)
		c2 := RelatedCOVP(s.C2, obj)
		if len(hexa) == 0 {
			t.Fatalf("%s: empty result", name)
		}
		if !reflect.DeepEqual(hexa, c1) || !reflect.DeepEqual(hexa, c2) {
			t.Errorf("%s: results differ (hexa=%d covp1=%d covp2=%d)", name, len(hexa), len(c1), len(c2))
		}
	}
}

func TestLQ3Agreement(t *testing.T) {
	s, ids := lubmStores(t)
	hexa := LQ3Hexa(s.Hexa, ids.AssocProf10)
	c1 := LQ3COVP(s.C1, ids.AssocProf10)
	c2 := LQ3COVP(s.C2, ids.AssocProf10)
	if len(hexa) == 0 {
		t.Fatal("LQ3 empty result")
	}
	if !reflect.DeepEqual(hexa, c1) || !reflect.DeepEqual(hexa, c2) {
		t.Errorf("LQ3 results differ")
	}
	// The professor must occur as subject (its own triples) and as
	// object (advisor edges) for the query to be meaningful.
	asSubj, asObj := 0, 0
	for tr := range hexa {
		if tr[0] == ids.AssocProf10 {
			asSubj++
		}
		if tr[2] == ids.AssocProf10 {
			asObj++
		}
	}
	if asSubj == 0 || asObj == 0 {
		t.Errorf("LQ3 coverage: %d as subject, %d as object; want both > 0", asSubj, asObj)
	}
}

func TestLQ4Agreement(t *testing.T) {
	s, ids := lubmStores(t)
	hexa := LQ4Hexa(s.Hexa, ids)
	c1 := LQ4COVP(s.C1, ids)
	c2 := LQ4COVP(s.C2, ids)
	if len(hexa) == 0 {
		t.Fatal("LQ4 empty result — AssociateProfessor10 must teach")
	}
	if !reflect.DeepEqual(hexa, c1) || !reflect.DeepEqual(hexa, c2) {
		t.Errorf("LQ4 results differ")
	}
}

func TestLQ5Agreement(t *testing.T) {
	s, ids := lubmStores(t)
	hexa := LQ5Hexa(s.Hexa, ids)
	c1 := LQ5COVP(s.C1, ids)
	c2 := LQ5COVP(s.C2, ids)
	if len(hexa) == 0 {
		t.Fatal("LQ5 empty result — professor must be related to universities")
	}
	if len(hexa) != len(c1) || len(hexa) != len(c2) {
		t.Fatalf("LQ5 university counts differ: %d/%d/%d", len(hexa), len(c1), len(c2))
	}
	for u, l := range hexa {
		if !reflect.DeepEqual(l.IDs(), c1[u].IDs()) || !reflect.DeepEqual(l.IDs(), c2[u].IDs()) {
			t.Errorf("LQ5 subjects for university %d differ", u)
		}
	}
}

func TestEmptyStoreQueriesAreEmpty(t *testing.T) {
	s := Load(nil)
	bids := ResolveBarton(s.Dict)
	lids := ResolveLUBM(s.Dict)
	if len(BQ1Hexa(s.Hexa, bids)) != 0 || len(BQ1COVP(s.C1, bids)) != 0 {
		t.Error("BQ1 on empty store non-empty")
	}
	if len(BQ5Hexa(s.Hexa, bids)) != 0 || len(BQ5COVP(s.C1, bids)) != 0 {
		t.Error("BQ5 on empty store non-empty")
	}
	if len(RelatedHexa(s.Hexa, lids.Course10)) != 0 {
		t.Error("LQ1 on empty store non-empty")
	}
	if len(LQ5Hexa(s.Hexa, lids)) != 0 || len(LQ5COVP(s.C2, lids)) != 0 {
		t.Error("LQ5 on empty store non-empty")
	}
}
