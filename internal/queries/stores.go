// Package queries implements the twelve benchmark queries of the
// Hexastore paper's evaluation (§5.2) — Barton BQ1–BQ7 and LUBM LQ1–LQ5 —
// with one implementation per storage scheme, following the processing
// strategies the paper describes for each:
//
//   - Hexastore: the six-index store (package core);
//   - COVP1: the single-index (pso) vertical-partitioning representation;
//   - COVP2: the two-index (pso + pos) variant.
//
// Every query function returns a store-independent result value so tests
// can assert that the three implementations agree exactly; the benchmark
// harness then times them on progressively larger data prefixes, which
// regenerates the paper's Figures 3–14.
package queries

import (
	"hexastore/internal/barton"
	"hexastore/internal/core"
	"hexastore/internal/dictionary"
	"hexastore/internal/lubm"
	"hexastore/internal/rdf"
	"hexastore/internal/vp"
)

// ID is a dictionary-encoded resource identifier.
type ID = dictionary.ID

// None is the wildcard marker.
const None = dictionary.None

// Stores bundles the three competing stores loaded with the same data
// over one shared dictionary.
type Stores struct {
	Dict *dictionary.Dictionary
	Hexa *core.Store
	C1   *vp.Store
	C2   *vp.Store
}

// Load builds all three stores from the given triples (bulk loaders, one
// shared dictionary).
func Load(triples []rdf.Triple) *Stores {
	dict := dictionary.New()
	hb := core.NewBuilder(dict)
	b1 := vp.NewBuilder(dict, false)
	b2 := vp.NewBuilder(dict, true)
	for _, t := range triples {
		s, p, o := dict.EncodeTriple(t)
		hb.Add(s, p, o)
		b1.Add(s, p, o)
		b2.Add(s, p, o)
	}
	return &Stores{Dict: dict, Hexa: hb.Build(), C1: b1.Build(), C2: b2.Build()}
}

// BartonIDs carries the dictionary ids of the Barton resources the
// queries bind. Ids may be None when the term does not occur in the
// loaded prefix; the query implementations treat None heads as empty.
type BartonIDs struct {
	Type, Language, Origin, Records, Point, Encoding ID
	Text, Date, French, DLC, End                     ID

	// Restricted28 is the pre-selected property set used by the paper's
	// "28-property" query variants (§5.2.1): the 12 named catalog
	// properties plus the 16 most common tail properties.
	Restricted28 []ID
}

// ResolveBarton looks up the Barton anchor ids in dict.
func ResolveBarton(dict *dictionary.Dictionary) BartonIDs {
	get := func(t rdf.Term) ID {
		id, _ := dict.Lookup(t)
		return id
	}
	ids := BartonIDs{
		Type:     get(barton.PropType),
		Language: get(barton.PropLanguage),
		Origin:   get(barton.PropOrigin),
		Records:  get(barton.PropRecords),
		Point:    get(barton.PropPoint),
		Encoding: get(barton.PropEncoding),
		Text:     get(barton.TypeText),
		Date:     get(barton.TypeDate),
		French:   get(barton.LangFrench),
		DLC:      get(barton.OriginDLC),
		End:      get(barton.PointEnd),
	}
	named := []rdf.Term{
		barton.PropType, barton.PropLanguage, barton.PropOrigin,
		barton.PropRecords, barton.PropPoint, barton.PropEncoding,
		barton.PropTitle, barton.PropAuthor, barton.PropSubject,
		barton.PropDate, barton.PropFormat, barton.PropPublisher,
	}
	for _, t := range named {
		if id := get(t); id != None {
			ids.Restricted28 = append(ids.Restricted28, id)
		}
	}
	for i := 0; len(ids.Restricted28) < 28; i++ {
		if id := get(barton.TailProperty(i)); id != None {
			ids.Restricted28 = append(ids.Restricted28, id)
		}
		if i > barton.TotalProperties {
			break
		}
	}
	return ids
}

// LUBMIDs carries the dictionary ids of the LUBM resources the queries
// bind.
type LUBMIDs struct {
	Type, TeacherOf ID
	DegreeProps     []ID // undergraduate/masters/doctoral DegreeFrom

	ClassUniversity ID

	Course10, University0, AssocProf10 ID
}

// ResolveLUBM looks up the LUBM anchor ids in dict.
func ResolveLUBM(dict *dictionary.Dictionary) LUBMIDs {
	get := func(t rdf.Term) ID {
		id, _ := dict.Lookup(t)
		return id
	}
	ids := LUBMIDs{
		Type:            get(lubm.PropType),
		TeacherOf:       get(lubm.PropTeacherOf),
		ClassUniversity: get(lubm.ClassUniversity),
		Course10:        get(lubm.Course(10)),
		University0:     get(lubm.University(0)),
		AssocProf10:     get(lubm.AssociateProfessor(10)),
	}
	for _, dp := range lubm.DegreeProps {
		if id := get(dp); id != None {
			ids.DegreeProps = append(ids.DegreeProps, id)
		}
	}
	return ids
}
