package query

import (
	"hexastore/internal/core"
	"hexastore/internal/idlist"
)

// Path evaluation (§4.3). A path expression p1/p2/…/pn asks for pairs
// (x, y) such that x —p1→ n1 —p2→ … —pn→ y. Every internal node is the
// object of one hop and the subject of the next, so each step is a
// subject–object join.
//
// The paper's point: with both pso and pos available, the first of the
// n−1 joins is a linear merge-join (the pos object vector of p1 against
// the pso subject vector of p2), and the remaining n−2 are sort-merge
// joins (one sorting operation each), instead of unsorted joins
// throughout. The merge-join algorithms below run when the engine is
// backed by the in-memory core.Store; other backends evaluate the same
// semantics by pattern matching (a backend error truncates the
// traversal).

// PathEndpoints evaluates the path and returns the distinct reachable
// end nodes starting from every subject of p1 (i.e. the projection of
// the path result onto its last column).
func (e *Engine) PathEndpoints(props []ID) *idlist.List {
	if len(props) == 0 {
		return &idlist.List{}
	}
	st := e.store
	if st == nil {
		return e.pathEndpointsGeneric(props)
	}

	// Frontier: all distinct objects of p1, straight off the pos index
	// (its object vector is exactly the sorted distinct objects).
	frontier := st.Head(core.POS, props[0]).KeyList()
	if len(props) == 1 {
		return frontier.Copy()
	}

	for hop := 1; hop < len(props); hop++ {
		p := props[hop]
		subjVec := st.Head(core.PSO, p)
		if subjVec.Len() == 0 || frontier.Len() == 0 {
			return &idlist.List{}
		}
		// First join is a pure merge-join (frontier came sorted from
		// pos); later hops re-sort the accumulated objects — the
		// sort-merge joins of §4.3. Both reduce to MergeJoin here since
		// the frontier is maintained sorted via the builder.
		var next idlist.Builder
		idlist.MergeJoin(frontier, subjVec.KeyList(), func(node ID) {
			objs, _ := subjVec.Find(node)
			objs.Range(func(o ID) bool {
				next.Add(o)
				return true
			})
		})
		frontier = next.Finish()
	}
	return frontier
}

// pathEndpointsGeneric is PathEndpoints over the Graph interface: the
// frontier starts as the distinct objects of p1 and each further hop is
// one Match per frontier node.
func (e *Engine) pathEndpointsGeneric(props []ID) *idlist.List {
	var b idlist.Builder
	e.g.Match(None, props[0], None, func(_, _, o ID) bool {
		b.Add(o)
		return true
	})
	frontier := b.Finish()
	for hop := 1; hop < len(props) && frontier.Len() > 0; hop++ {
		frontier = e.expandHop(frontier, props[hop])
	}
	return frontier
}

// expandHop returns the distinct objects reachable from any node of the
// frontier via property p.
func (e *Engine) expandHop(frontier *idlist.List, p ID) *idlist.List {
	var next idlist.Builder
	frontier.Range(func(node ID) bool {
		e.g.Match(node, p, None, func(_, _, o ID) bool {
			next.Add(o)
			return true
		})
		return true
	})
	return next.Finish()
}

// PathPairs evaluates the path and reports every (start, end) pair to
// fn. The fan-out is materialized per start node; fn may be invoked with
// duplicate pairs removed. Iteration stops early if fn returns false.
func (e *Engine) PathPairs(props []ID, fn func(start, end ID) bool) {
	if len(props) == 0 {
		return
	}
	st := e.store
	if st == nil {
		e.pathPairsGeneric(props, fn)
		return
	}
	starts := st.Head(core.PSO, props[0])
	stop := false
	starts.Range(func(start ID, firstObjs *idlist.List) bool {
		reach := firstObjs
		for hop := 1; hop < len(props) && reach.Len() > 0; hop++ {
			subjVec := st.Head(core.PSO, props[hop])
			var next idlist.Builder
			idlist.MergeJoin(reach, subjVec.KeyList(), func(node ID) {
				objs, _ := subjVec.Find(node)
				objs.Range(func(o ID) bool {
					next.Add(o)
					return true
				})
			})
			reach = next.Finish()
		}
		if len(props) == 1 {
			reach = firstObjs
		}
		reach.Range(func(end ID) bool {
			if !fn(start, end) {
				stop = true
			}
			return !stop
		})
		return !stop
	})
}

// pathPairsGeneric is PathPairs over the Graph interface: one scan of
// p1 collects each start's first-hop frontier, then one traversal per
// start expands the remaining hops.
func (e *Engine) pathPairsGeneric(props []ID, fn func(start, end ID) bool) {
	var starts idlist.Builder
	firstObjs := make(map[ID]*idlist.Builder)
	e.g.Match(None, props[0], None, func(s, _, o ID) bool {
		starts.Add(s)
		b := firstObjs[s]
		if b == nil {
			b = &idlist.Builder{}
			firstObjs[s] = b
		}
		b.Add(o)
		return true
	})
	stop := false
	starts.Finish().Range(func(start ID) bool {
		reach := firstObjs[start].Finish()
		for hop := 1; hop < len(props) && reach.Len() > 0; hop++ {
			reach = e.expandHop(reach, props[hop])
		}
		reach.Range(func(end ID) bool {
			if !fn(start, end) {
				stop = true
			}
			return !stop
		})
		return !stop
	})
}

// Reachable returns the nodes reachable from start by following any
// property for up to maxHops steps — a bounded transitive closure. The
// paper (§4.3) notes full transitive closure resists scalable solutions;
// bounded expansion over the spo index is the practical primitive.
func (e *Engine) Reachable(start ID, maxHops int) *idlist.List {
	visited := &idlist.List{}
	frontier := []ID{start}
	for hop := 0; hop < maxHops && len(frontier) > 0; hop++ {
		var next []ID
		for _, node := range frontier {
			if e.store != nil {
				e.store.Head(core.SPO, node).Range(func(_ ID, objs *idlist.List) bool {
					objs.Range(func(o ID) bool {
						if visited.Insert(o) {
							next = append(next, o)
						}
						return true
					})
					return true
				})
			} else {
				e.g.Match(node, None, None, func(_, _, o ID) bool {
					if visited.Insert(o) {
						next = append(next, o)
					}
					return true
				})
			}
		}
		frontier = next
	}
	return visited
}
