package query

import (
	"reflect"
	"testing"

	"hexastore/internal/core"
)

// chainStore builds a two-hop graph:
//
//	1 -a→ 10 -b→ 20
//	1 -a→ 11 -b→ 21
//	2 -a→ 11
//	3 -c→ 10        (c is off the a/b path)
//	11 -b→ 22
const (
	propA = ID(101)
	propB = ID(102)
	propC = ID(103)
)

func chainStore() *core.Store {
	st := core.New()
	st.Add(1, propA, 10)
	st.Add(1, propA, 11)
	st.Add(2, propA, 11)
	st.Add(3, propC, 10)
	st.Add(10, propB, 20)
	st.Add(11, propB, 21)
	st.Add(11, propB, 22)
	return st
}

func TestPathEndpointsSingleHop(t *testing.T) {
	e := NewEngine(chainStore())
	got := e.PathEndpoints([]ID{propA}).IDs()
	if !reflect.DeepEqual(got, []ID{10, 11}) {
		t.Errorf("PathEndpoints(a) = %v, want [10 11]", got)
	}
}

func TestPathEndpointsTwoHops(t *testing.T) {
	e := NewEngine(chainStore())
	got := e.PathEndpoints([]ID{propA, propB}).IDs()
	if !reflect.DeepEqual(got, []ID{20, 21, 22}) {
		t.Errorf("PathEndpoints(a/b) = %v, want [20 21 22]", got)
	}
}

func TestPathEndpointsDeadEnd(t *testing.T) {
	e := NewEngine(chainStore())
	if got := e.PathEndpoints([]ID{propB, propA}); got.Len() != 0 {
		t.Errorf("PathEndpoints(b/a) = %v, want empty", got.IDs())
	}
	if got := e.PathEndpoints([]ID{999}); got.Len() != 0 {
		t.Errorf("PathEndpoints(absent) = %v, want empty", got.IDs())
	}
	if got := e.PathEndpoints(nil); got.Len() != 0 {
		t.Errorf("PathEndpoints(nil) = %v, want empty", got.IDs())
	}
}

func TestPathPairs(t *testing.T) {
	e := NewEngine(chainStore())
	got := map[[2]ID]bool{}
	e.PathPairs([]ID{propA, propB}, func(start, end ID) bool {
		got[[2]ID{start, end}] = true
		return true
	})
	want := map[[2]ID]bool{
		{1, 20}: true, // 1-a→10-b→20
		{1, 21}: true, // 1-a→11-b→21
		{1, 22}: true,
		{2, 21}: true, // 2-a→11-b→21
		{2, 22}: true,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PathPairs(a/b) = %v, want %v", got, want)
	}
}

func TestPathPairsSingleHop(t *testing.T) {
	e := NewEngine(chainStore())
	n := 0
	e.PathPairs([]ID{propA}, func(_, _ ID) bool { n++; return true })
	if n != 3 {
		t.Errorf("PathPairs(a) yielded %d pairs, want 3", n)
	}
	// Early stop.
	n = 0
	e.PathPairs([]ID{propA, propB}, func(_, _ ID) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop invoked fn %d times", n)
	}
	e.PathPairs(nil, func(_, _ ID) bool {
		t.Error("PathPairs(nil) invoked fn")
		return true
	})
}

func TestReachable(t *testing.T) {
	e := NewEngine(chainStore())
	if got := e.Reachable(1, 1).IDs(); !reflect.DeepEqual(got, []ID{10, 11}) {
		t.Errorf("Reachable(1, 1 hop) = %v, want [10 11]", got)
	}
	got := e.Reachable(1, 2).IDs()
	if !reflect.DeepEqual(got, []ID{10, 11, 20, 21, 22}) {
		t.Errorf("Reachable(1, 2 hops) = %v", got)
	}
	// Saturation: more hops add nothing.
	if more := e.Reachable(1, 10).IDs(); !reflect.DeepEqual(more, got) {
		t.Errorf("Reachable(1, 10) = %v, want %v", more, got)
	}
	if e.Reachable(999, 3).Len() != 0 {
		t.Error("Reachable from absent node non-empty")
	}
	if e.Reachable(1, 0).Len() != 0 {
		t.Error("Reachable with 0 hops non-empty")
	}
}

// Cycle safety: a→b→a must terminate and include both nodes.
func TestReachableCycle(t *testing.T) {
	st := core.New()
	st.Add(1, 5, 2)
	st.Add(2, 5, 1)
	e := NewEngine(st)
	got := e.Reachable(1, 100).IDs()
	if !reflect.DeepEqual(got, []ID{1, 2}) {
		t.Errorf("Reachable over cycle = %v, want [1 2]", got)
	}
}
