// Package query provides query processing over a Hexastore: triple
// patterns, the paper's flagship join strategies (§4.2), and path
// expression evaluation (§4.3).
//
// The package works on dictionary-encoded IDs; string-level querying is
// provided by package sparql on top of this one. An Engine evaluates
// against any graph.Graph backend; when the backend is the in-memory
// sextuple-indexed core.Store, the engine additionally uses vector-level
// index access for constant-time selectivity estimates and the paper's
// merge-join path algorithms.
package query

import (
	"hexastore/internal/core"
	"hexastore/internal/graph"
	"hexastore/internal/idlist"
)

// ID is a dictionary-encoded resource identifier.
type ID = core.ID

// None is the wildcard marker in patterns.
const None = core.None

// Pattern is a triple pattern; None in a position means unbound.
type Pattern struct {
	S, P, O ID
}

// Bound returns the number of bound positions (0–3).
func (p Pattern) Bound() int {
	n := 0
	if p.S != None {
		n++
	}
	if p.P != None {
		n++
	}
	if p.O != None {
		n++
	}
	return n
}

// Engine evaluates queries against a Graph backend.
type Engine struct {
	g graph.Graph
	// store is the in-memory Hexastore behind g, when there is one; it
	// enables exact selectivity estimates and vector-level merge joins.
	store *core.Store
	// sorted is the backend's sorted-list capability, when it has one;
	// it gives non-memory backends (the disk store) scan-free
	// selectivity answers for the 2- and 3-bound pattern shapes.
	sorted graph.SortedSource
}

// NewEngine returns an engine over the in-memory store st.
func NewEngine(st *core.Store) *Engine {
	return NewGraphEngine(graph.Memory(st))
}

// NewGraphEngine returns an engine over any Graph backend. Index-aware
// fast paths activate automatically when g is backed by a core.Store.
func NewGraphEngine(g graph.Graph) *Engine {
	e := &Engine{g: g}
	if st, ok := graph.Unwrap(g).(*core.Store); ok {
		e.store = st
	}
	if ss, ok := graph.AsSortedSource(g); ok {
		e.sorted = ss
	}
	return e
}

// Store returns the in-memory Hexastore behind the engine, or nil when
// the engine runs over a different backend.
func (e *Engine) Store() *core.Store { return e.store }

// Sorted returns the backend's SortedSource capability, or nil.
func (e *Engine) Sorted() graph.SortedSource { return e.sorted }

// Graph returns the backend the engine evaluates against.
func (e *Engine) Graph() graph.Graph { return e.g }

// Match streams the triples matching pat.
func (e *Engine) Match(pat Pattern, fn func(s, p, o ID) bool) error {
	return e.g.Match(pat.S, pat.P, pat.O, fn)
}

// Count returns the number of triples matching pat.
func (e *Engine) Count(pat Pattern) (int, error) {
	return e.g.Count(pat.S, pat.P, pat.O)
}

// Selectivity estimates the result cardinality of pat. On a memory
// backend it never scans: exact for 2–3 bound positions (terminal-list
// lengths), vector length × average for 1 bound, store size for 0
// bound. On a SortedSource backend (the disk store) the 3-bound shape
// is one existence probe, the 2-bound shape one counting prefix scan,
// and the sparser shapes fall back to the store size, never a full
// scan. Other backends answer with an exact Count (a full scan);
// backend errors degrade to 0. Used by the sparql planner to order
// patterns.
func (e *Engine) Selectivity(pat Pattern) int {
	st := e.store
	if st == nil && e.sorted != nil {
		switch pat.Bound() {
		case 3:
			ok, err := e.g.Has(pat.S, pat.P, pat.O)
			if err != nil {
				return 0
			}
			if ok {
				return 1
			}
			return 0
		case 2:
			// A counting prefix scan — same I/O as fetching the sorted
			// list but without materializing it.
			n, err := e.g.Count(pat.S, pat.P, pat.O)
			if err != nil {
				return 0
			}
			return n
		default:
			return e.g.Len()
		}
	}
	if st == nil {
		n, err := e.g.Count(pat.S, pat.P, pat.O)
		if err != nil {
			return 0
		}
		return n
	}
	// One locked index computation: planners run concurrently with
	// updates, so the estimate must not read through accessors whose
	// results alias store internals (Head/Objects are only valid until
	// the next mutation).
	return st.PatternCardinality(pat.S, pat.P, pat.O)
}

// SubjectsRelatedToBothObjects returns the subjects related — by any
// property — to both o1 and o2. This is the paper's §4.2 showcase
// ("reduction of unions and joins"): the Hexastore answers it by linearly
// merge-joining the two subject vectors in osp indexing, where
// property-oriented schemes must union over every property table. Other
// backends collect the two subject sets by pattern matching; a backend
// error truncates the result.
func (e *Engine) SubjectsRelatedToBothObjects(o1, o2 ID) *idlist.List {
	if e.store != nil {
		v1 := e.store.Head(core.OSP, o1)
		v2 := e.store.Head(core.OSP, o2)
		if v1.Len() == 0 || v2.Len() == 0 {
			return &idlist.List{}
		}
		return idlist.Intersect(v1.KeyList(), v2.KeyList())
	}
	return idlist.Intersect(e.subjectsOf(o1), e.subjectsOf(o2))
}

// subjectsOf returns the distinct subjects related to object o.
func (e *Engine) subjectsOf(o ID) *idlist.List {
	var b idlist.Builder
	e.g.Match(None, None, o, func(s, _, _ ID) bool {
		b.Add(s)
		return true
	})
	return b.Finish()
}

// RelatedResources returns every (property, subject) pair pointing at
// object o — "a list of subjects or properties related to a given
// object", the functionality §3 argues no prior scheme provides
// directly. The ops index supplies it as a single vector walk on the
// memory backend; other backends stream the same pairs in their own
// index order.
func (e *Engine) RelatedResources(o ID, fn func(p, s ID) bool) {
	if e.store != nil {
		stop := false
		e.store.Head(core.OPS, o).Range(func(p ID, subjs *idlist.List) bool {
			subjs.Range(func(s ID) bool {
				if !fn(p, s) {
					stop = true
				}
				return !stop
			})
			return !stop
		})
		return
	}
	e.g.Match(None, None, o, func(s, p, _ ID) bool {
		return fn(p, s)
	})
}
