package query

import (
	"reflect"
	"testing"

	"hexastore/internal/core"
)

// buildGraph creates a small store:
//
//	1 -p10→ 100, 1 -p10→ 101, 1 -p11→ 102
//	2 -p10→ 100, 2 -p12→ 101
//	3 -p11→ 100
func buildGraph() *core.Store {
	st := core.New()
	for _, tr := range [][3]ID{
		{1, 10, 100}, {1, 10, 101}, {1, 11, 102},
		{2, 10, 100}, {2, 12, 101},
		{3, 11, 100},
	} {
		st.Add(tr[0], tr[1], tr[2])
	}
	return st
}

func TestPatternBound(t *testing.T) {
	cases := []struct {
		pat  Pattern
		want int
	}{
		{Pattern{}, 0},
		{Pattern{S: 1}, 1},
		{Pattern{S: 1, O: 2}, 2},
		{Pattern{S: 1, P: 2, O: 3}, 3},
	}
	for _, tc := range cases {
		if got := tc.pat.Bound(); got != tc.want {
			t.Errorf("Bound(%+v) = %d, want %d", tc.pat, got, tc.want)
		}
	}
}

func TestSelectivityExactForTwoBound(t *testing.T) {
	e := NewEngine(buildGraph())
	cases := []struct {
		pat  Pattern
		want int
	}{
		{Pattern{S: 1, P: 10}, 2},
		{Pattern{P: 10, O: 100}, 2},
		{Pattern{S: 1, O: 101}, 1},
		{Pattern{S: 1, P: 10, O: 100}, 1},
		{Pattern{S: 1, P: 10, O: 999}, 0},
		{Pattern{S: 1}, 3},
		{Pattern{P: 10}, 3},
		{Pattern{O: 100}, 3},
		{Pattern{}, 6},
	}
	for _, tc := range cases {
		if got := e.Selectivity(tc.pat); got != tc.want {
			t.Errorf("Selectivity(%+v) = %d, want %d", tc.pat, got, tc.want)
		}
	}
}

func TestSelectivityMatchesCount(t *testing.T) {
	e := NewEngine(buildGraph())
	// For every pattern over this small id space, the estimate must be
	// exact (our estimator sums real list lengths).
	for s := ID(0); s <= 3; s++ {
		for p := ID(0); p <= 12; p++ {
			for o := ID(0); o <= 102; o++ {
				pat := Pattern{S: s, P: p, O: o}
				want, err := e.Count(pat)
				if err != nil {
					t.Fatalf("Count(%+v): %v", pat, err)
				}
				if got := e.Selectivity(pat); got != want {
					t.Fatalf("Selectivity(%+v) = %d, Count = %d", pat, got, want)
				}
			}
		}
	}
}

func TestSubjectsRelatedToBothObjects(t *testing.T) {
	e := NewEngine(buildGraph())
	// Objects 100 and 101: subjects of 100 = {1,2,3}; of 101 = {1,2}.
	got := e.SubjectsRelatedToBothObjects(100, 101).IDs()
	if !reflect.DeepEqual(got, []ID{1, 2}) {
		t.Errorf("SubjectsRelatedToBothObjects(100,101) = %v, want [1 2]", got)
	}
	if e.SubjectsRelatedToBothObjects(100, 999).Len() != 0 {
		t.Error("intersection with absent object non-empty")
	}
}

func TestRelatedResources(t *testing.T) {
	e := NewEngine(buildGraph())
	var got [][2]ID
	e.RelatedResources(100, func(p, s ID) bool {
		got = append(got, [2]ID{p, s})
		return true
	})
	want := [][2]ID{{10, 1}, {10, 2}, {11, 3}} // ops order: by property, then subject
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RelatedResources(100) = %v, want %v", got, want)
	}
	// Early stop.
	n := 0
	e.RelatedResources(100, func(_, _ ID) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop invoked fn %d times", n)
	}
}

func TestMatchDelegates(t *testing.T) {
	e := NewEngine(buildGraph())
	if got, err := e.Count(Pattern{P: 10}); err != nil || got != 3 {
		t.Errorf("Count(p=10) = %d, %v, want 3", got, err)
	}
	n := 0
	e.Match(Pattern{S: 1}, func(_, _, _ ID) bool { n++; return true })
	if n != 3 {
		t.Errorf("Match(s=1) yielded %d, want 3", n)
	}
}
