package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseError describes a syntax error at a specific line of an N-Triples
// stream.
type ParseError struct {
	Line int    // 1-based line number
	Text string // the offending line, trimmed
	Err  error  // underlying cause
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("rdf: line %d: %v (in %q)", e.Line, e.Err, e.Text)
}

// Unwrap returns the underlying cause.
func (e *ParseError) Unwrap() error { return e.Err }

// Reader parses a stream in a pragmatic N-Triples subset: one triple per
// line, `<iri>`, `"literal"` (with \" \\ \n \r \t escapes), `_:blank`
// terms, `#` comment lines, and blank lines. Datatype/language suffixes on
// literals (^^<iri>, @tag) are accepted and folded into the literal value.
type Reader struct {
	scanner *bufio.Scanner
	line    int
}

// NewReader returns a Reader consuming r.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Reader{scanner: sc}
}

// Read returns the next triple. It returns io.EOF at end of stream and a
// *ParseError on malformed input.
func (r *Reader) Read() (Triple, error) {
	for r.scanner.Scan() {
		r.line++
		line := strings.TrimSpace(r.scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseLine(line)
		if err != nil {
			return Triple{}, &ParseError{Line: r.line, Text: line, Err: err}
		}
		return t, nil
	}
	if err := r.scanner.Err(); err != nil {
		return Triple{}, err
	}
	return Triple{}, io.EOF
}

// ReadAll parses every remaining triple in the stream.
func (r *Reader) ReadAll() ([]Triple, error) {
	var out []Triple
	for {
		t, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}

// ParseTriple parses a single N-Triples line (with or without the
// trailing dot).
func ParseTriple(line string) (Triple, error) {
	return parseLine(strings.TrimSpace(line))
}

func parseLine(line string) (Triple, error) {
	line = strings.TrimSuffix(strings.TrimSpace(line), ".")
	line = strings.TrimSpace(line)

	s, rest, err := parseTerm(line)
	if err != nil {
		return Triple{}, fmt.Errorf("subject: %w", err)
	}
	p, rest, err := parseTerm(rest)
	if err != nil {
		return Triple{}, fmt.Errorf("predicate: %w", err)
	}
	o, rest, err := parseTerm(rest)
	if err != nil {
		return Triple{}, fmt.Errorf("object: %w", err)
	}
	if strings.TrimSpace(rest) != "" {
		return Triple{}, fmt.Errorf("trailing content %q", strings.TrimSpace(rest))
	}
	t := Triple{Subject: s, Predicate: p, Object: o}
	if !t.Valid() {
		return Triple{}, fmt.Errorf("positionally invalid triple %s", t)
	}
	return t, nil
}

// parseTerm consumes one term from the front of s and returns it along
// with the unconsumed remainder.
func parseTerm(s string) (Term, string, error) {
	s = strings.TrimLeft(s, " \t")
	if s == "" {
		return Term{}, "", fmt.Errorf("unexpected end of line")
	}
	switch s[0] {
	case '<':
		end := strings.IndexByte(s, '>')
		if end < 0 {
			return Term{}, "", fmt.Errorf("unterminated IRI")
		}
		return NewIRI(s[1:end]), s[end+1:], nil
	case '_':
		if len(s) < 2 || s[1] != ':' {
			return Term{}, "", fmt.Errorf("malformed blank node")
		}
		end := strings.IndexAny(s, " \t")
		if end < 0 {
			end = len(s)
		}
		label := s[2:end]
		if label == "" {
			return Term{}, "", fmt.Errorf("empty blank node label")
		}
		return NewBlank(label), s[end:], nil
	case '"':
		end := closingQuote(s)
		if end < 0 {
			return Term{}, "", fmt.Errorf("unterminated literal")
		}
		value, err := unescapeLiteral(s[1:end])
		if err != nil {
			return Term{}, "", err
		}
		rest := s[end+1:]
		// Fold a datatype or language suffix into the literal value so
		// round-trips preserve information without a full datatype model.
		if strings.HasPrefix(rest, "^^<") {
			dtEnd := strings.IndexByte(rest, '>')
			if dtEnd < 0 {
				return Term{}, "", fmt.Errorf("unterminated datatype IRI")
			}
			value += rest[:dtEnd+1]
			rest = rest[dtEnd+1:]
		} else if strings.HasPrefix(rest, "@") {
			tagEnd := strings.IndexAny(rest, " \t")
			if tagEnd < 0 {
				tagEnd = len(rest)
			}
			value += rest[:tagEnd]
			rest = rest[tagEnd:]
		}
		return NewLiteral(value), rest, nil
	default:
		return Term{}, "", fmt.Errorf("unexpected character %q", s[0])
	}
}

// closingQuote returns the index of the unescaped closing quote of a
// literal beginning at s[0] == '"', or -1.
func closingQuote(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i
		}
	}
	return -1
}

// Writer serializes triples in N-Triples syntax.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write emits one triple. After the first error all writes fail with it.
func (w *Writer) Write(t Triple) error {
	if w.err != nil {
		return w.err
	}
	if !t.Valid() {
		return fmt.Errorf("rdf: refusing to serialize invalid triple %s", t)
	}
	_, w.err = w.w.WriteString(t.String() + "\n")
	return w.err
}

// Flush flushes buffered output.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}
