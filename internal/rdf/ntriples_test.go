package rdf

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseTripleBasic(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want Triple
	}{
		{
			name: "three IRIs",
			in:   "<http://ex/s> <http://ex/p> <http://ex/o> .",
			want: T(NewIRI("http://ex/s"), NewIRI("http://ex/p"), NewIRI("http://ex/o")),
		},
		{
			name: "literal object",
			in:   `<http://ex/s> <http://ex/p> "hello world" .`,
			want: T(NewIRI("http://ex/s"), NewIRI("http://ex/p"), NewLiteral("hello world")),
		},
		{
			name: "blank subject",
			in:   `_:b0 <http://ex/p> <http://ex/o> .`,
			want: T(NewBlank("b0"), NewIRI("http://ex/p"), NewIRI("http://ex/o")),
		},
		{
			name: "blank object",
			in:   `<http://ex/s> <http://ex/p> _:tail`,
			want: T(NewIRI("http://ex/s"), NewIRI("http://ex/p"), NewBlank("tail")),
		},
		{
			name: "no trailing dot",
			in:   "<a> <b> <c>",
			want: T(NewIRI("a"), NewIRI("b"), NewIRI("c")),
		},
		{
			name: "escaped quotes in literal",
			in:   `<a> <b> "say \"hi\"" .`,
			want: T(NewIRI("a"), NewIRI("b"), NewLiteral(`say "hi"`)),
		},
		{
			name: "escaped newline tab",
			in:   `<a> <b> "line1\nline2\tend" .`,
			want: T(NewIRI("a"), NewIRI("b"), NewLiteral("line1\nline2\tend")),
		},
		{
			name: "extra whitespace",
			in:   "  <a>\t<b>   <c>   .  ",
			want: T(NewIRI("a"), NewIRI("b"), NewIRI("c")),
		},
		{
			name: "datatype folded into literal",
			in:   `<a> <b> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .`,
			want: T(NewIRI("a"), NewIRI("b"), NewLiteral("42^^<http://www.w3.org/2001/XMLSchema#integer>")),
		},
		{
			name: "language tag folded into literal",
			in:   `<a> <b> "chat"@fr .`,
			want: T(NewIRI("a"), NewIRI("b"), NewLiteral("chat@fr")),
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseTriple(tc.in)
			if err != nil {
				t.Fatalf("ParseTriple(%q): %v", tc.in, err)
			}
			if got != tc.want {
				t.Errorf("ParseTriple(%q) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestParseTripleErrors(t *testing.T) {
	bad := []string{
		"",
		"<a>",
		"<a> <b>",
		"<a> <b> <c> <d>",
		"<a <b> <c>",
		`<a> <b> "unterminated`,
		"junk <b> <c>",
		"_: <b> <c>",
		`"literal subject" <b> <c>`, // literal not allowed as subject
		`<a> "literal predicate" <c>`,
		`<a> _:blankpred <c>`, // blank node not allowed as predicate
		`<a> <b> "x\q" .`,     // bad escape
	}
	for _, in := range bad {
		if _, err := ParseTriple(in); err == nil {
			t.Errorf("ParseTriple(%q): expected error, got nil", in)
		}
	}
}

func TestReaderSkipsCommentsAndBlanks(t *testing.T) {
	src := `
# a comment
<a> <b> <c> .

# another
<d> <e> "f" .
`
	r := NewReader(strings.NewReader(src))
	got, err := r.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("ReadAll returned %d triples, want 2", len(got))
	}
	if got[0].Subject.Value != "a" || got[1].Object.Value != "f" {
		t.Errorf("unexpected triples %v", got)
	}
}

func TestReaderReportsLineNumbers(t *testing.T) {
	src := "<a> <b> <c> .\nmalformed line\n"
	r := NewReader(strings.NewReader(src))
	if _, err := r.Read(); err != nil {
		t.Fatalf("first Read: %v", err)
	}
	_, err := r.Read()
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("second Read error = %v, want *ParseError", err)
	}
	if pe.Line != 2 {
		t.Errorf("ParseError.Line = %d, want 2", pe.Line)
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("Read on empty stream = %v, want io.EOF", err)
	}
}

func TestWriterRoundTrip(t *testing.T) {
	triples := []Triple{
		T(NewIRI("http://ex/s"), NewIRI("http://ex/p"), NewIRI("http://ex/o")),
		T(NewIRI("s2"), NewIRI("p2"), NewLiteral(`multi
line "quoted" \ tabbed	value`)),
		T(NewBlank("b1"), NewIRI("p3"), NewBlank("b2")),
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, tr := range triples {
		if err := w.Write(tr); err != nil {
			t.Fatalf("Write(%v): %v", tr, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(got) != len(triples) {
		t.Fatalf("round trip returned %d triples, want %d", len(got), len(triples))
	}
	for i := range triples {
		if got[i] != triples[i] {
			t.Errorf("round trip[%d] = %v, want %v", i, got[i], triples[i])
		}
	}
}

func TestWriterRejectsInvalidTriple(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.Write(Triple{}); err == nil {
		t.Error("Write(zero triple) succeeded, want error")
	}
}

func TestLiteralRoundTripProperty(t *testing.T) {
	f := func(value string) bool {
		// The scanner is line-based; values are arbitrary otherwise.
		tr := T(NewIRI("s"), NewIRI("p"), NewLiteral(value))
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(tr); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := NewReader(&buf).ReadAll()
		return err == nil && len(got) == 1 && got[0] == tr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTermKeyRoundTripProperty(t *testing.T) {
	f := func(kindSel uint8, value string) bool {
		var term Term
		switch kindSel % 3 {
		case 0:
			term = NewIRI(value)
		case 1:
			term = NewLiteral(value)
		default:
			term = NewBlank(value)
		}
		got, err := TermFromKey(term.Key())
		return err == nil && got == term
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTermString(t *testing.T) {
	if s := NewIRI("http://x").String(); s != "<http://x>" {
		t.Errorf("IRI String = %q", s)
	}
	if s := NewLiteral(`a"b`).String(); s != `"a\"b"` {
		t.Errorf("Literal String = %q", s)
	}
	if s := NewBlank("n1").String(); s != "_:n1" {
		t.Errorf("Blank String = %q", s)
	}
}

func TestTripleValid(t *testing.T) {
	valid := T(NewIRI("s"), NewIRI("p"), NewLiteral("o"))
	if !valid.Valid() {
		t.Error("valid triple reported invalid")
	}
	cases := []Triple{
		{},
		T(NewLiteral("s"), NewIRI("p"), NewIRI("o")),
		T(NewIRI("s"), NewBlank("p"), NewIRI("o")),
		T(NewIRI("s"), NewLiteral("p"), NewIRI("o")),
	}
	for _, tr := range cases {
		if tr.Valid() {
			t.Errorf("triple %v reported valid, want invalid", tr)
		}
	}
}

func TestTermFromKeyErrors(t *testing.T) {
	if _, err := TermFromKey(""); err == nil {
		t.Error("TermFromKey(\"\") succeeded, want error")
	}
	if _, err := TermFromKey("xabc"); err == nil {
		t.Error("TermFromKey with unknown tag succeeded, want error")
	}
}
