// Package rdf provides the RDF data model used throughout the repository:
// terms (IRIs, literals, blank nodes), triples, and an N-Triples subset
// parser and serializer.
//
// The model is deliberately small. A term is a tagged string; a triple is
// three terms with the usual subject/predicate/object positions. The
// stores in this repository operate on dictionary-encoded integer keys
// (see package dictionary); package rdf is the boundary where strings live.
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the three kinds of RDF terms.
type TermKind uint8

const (
	// IRI is an RDF IRI reference, e.g. <http://example.org/alice>.
	IRI TermKind = iota
	// Literal is an RDF literal, e.g. "Alice" (plain literals only;
	// datatypes and language tags are carried verbatim in the value).
	Literal
	// Blank is a blank node, e.g. _:b0.
	Blank
)

// String returns the kind name, for diagnostics.
func (k TermKind) String() string {
	switch k {
	case IRI:
		return "iri"
	case Literal:
		return "literal"
	case Blank:
		return "blank"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is one RDF term. The zero value is an empty IRI, which is not a
// valid term; use the constructors.
type Term struct {
	Kind  TermKind
	Value string
}

// NewIRI returns an IRI term with the given absolute or relative IRI text
// (without angle brackets).
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewLiteral returns a plain literal term with the given lexical value
// (without surrounding quotes).
func NewLiteral(value string) Term { return Term{Kind: Literal, Value: value} }

// NewBlank returns a blank-node term with the given label (without the
// leading "_:").
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// IsZero reports whether t is the zero Term (empty IRI), which the data
// model treats as invalid.
func (t Term) IsZero() bool { return t.Kind == IRI && t.Value == "" }

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Literal:
		return `"` + escapeLiteral(t.Value) + `"`
	case Blank:
		return "_:" + t.Value
	default:
		return fmt.Sprintf("!invalid term kind %d!", t.Kind)
	}
}

// Key returns a string that uniquely identifies the term across kinds.
// Two distinct terms never share a key: the kind is encoded in the first
// byte. Keys are used by the dictionary for encoding.
func (t Term) Key() string {
	switch t.Kind {
	case Literal:
		return "\"" + t.Value
	case Blank:
		return "_" + t.Value
	default:
		return "<" + t.Value
	}
}

// TermFromKey reverses Term.Key.
func TermFromKey(key string) (Term, error) {
	if key == "" {
		return Term{}, fmt.Errorf("rdf: empty term key")
	}
	switch key[0] {
	case '"':
		return NewLiteral(key[1:]), nil
	case '_':
		return NewBlank(key[1:]), nil
	case '<':
		return NewIRI(key[1:]), nil
	default:
		return Term{}, fmt.Errorf("rdf: malformed term key %q", key)
	}
}

func escapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func unescapeLiteral(s string) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("rdf: trailing backslash in literal %q", s)
		}
		switch s[i] {
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		case 't':
			b.WriteByte('\t')
		default:
			return "", fmt.Errorf("rdf: unknown escape \\%c in literal %q", s[i], s)
		}
	}
	return b.String(), nil
}
