package rdf

import "fmt"

// Triple is one RDF statement ⟨subject, predicate, object⟩.
type Triple struct {
	Subject   Term
	Predicate Term
	Object    Term
}

// T is a convenience constructor for a triple of three terms.
func T(s, p, o Term) Triple { return Triple{Subject: s, Predicate: p, Object: o} }

// String renders the triple in N-Triples syntax (with the trailing dot).
func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s .", t.Subject, t.Predicate, t.Object)
}

// Valid reports whether the triple satisfies the RDF positional rules:
// the subject is an IRI or blank node, the predicate is an IRI, and the
// object is any term. Zero-valued terms are invalid everywhere.
func (t Triple) Valid() bool {
	if t.Subject.IsZero() || t.Predicate.IsZero() || t.Object.IsZero() {
		return false
	}
	if t.Subject.Kind == Literal {
		return false
	}
	return t.Predicate.Kind == IRI
}
