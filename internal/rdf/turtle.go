package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode"
)

// TurtleReader parses a pragmatic Turtle subset, extending the N-Triples
// reader with the directives and abbreviations real-world RDF dumps use:
//
//   - @prefix name: <iri> . and @base <iri> . directives
//     (SPARQL-style PREFIX/BASE directives without the dot also accepted)
//   - prefixed names (ex:alice) in any position
//   - the 'a' keyword for rdf:type
//   - predicate lists (s p1 o1 ; p2 o2 .) and object lists (s p o1, o2 .)
//   - quoted literals with \" \\ \n \r \t escapes; language tags (@en)
//     and datatypes (^^xsd:int / ^^<iri>) are folded into the literal
//     value verbatim, matching the N-Triples reader's convention
//   - bare integer, decimal, and boolean literals
//   - '#' comments and arbitrary whitespace/newlines between tokens
//
// Unsupported Turtle features are reported with a clear error rather than
// misparsed: collections ( ), anonymous/bracketed blank nodes [ ], and
// multi-line """literals""".
type TurtleReader struct {
	r    *bufio.Reader
	line int

	base     string
	prefixes map[string]string

	// pending triples produced by predicate/object list expansion.
	pending []Triple
}

// NewTurtleReader returns a TurtleReader consuming r.
func NewTurtleReader(r io.Reader) *TurtleReader {
	return &TurtleReader{
		r:        bufio.NewReaderSize(r, 64*1024),
		line:     1,
		prefixes: make(map[string]string),
	}
}

// TurtleError describes a syntax error at a line of a Turtle stream.
type TurtleError struct {
	Line int
	Msg  string
}

func (e *TurtleError) Error() string {
	return fmt.Sprintf("rdf: turtle line %d: %s", e.Line, e.Msg)
}

func (tr *TurtleReader) errf(format string, args ...any) error {
	return &TurtleError{Line: tr.line, Msg: fmt.Sprintf(format, args...)}
}

// Read returns the next triple, io.EOF at end of stream, or a
// *TurtleError on malformed input.
func (tr *TurtleReader) Read() (Triple, error) {
	if len(tr.pending) > 0 {
		t := tr.pending[0]
		tr.pending = tr.pending[1:]
		return t, nil
	}
	for {
		if err := tr.skipSpace(); err != nil {
			return Triple{}, err // io.EOF included
		}
		c, err := tr.peek()
		if err != nil {
			return Triple{}, err
		}
		if c == '@' {
			if err := tr.parseDirective(); err != nil {
				return Triple{}, err
			}
			continue
		}
		// SPARQL-style PREFIX/BASE directives (case-insensitive keywords).
		if c == 'P' || c == 'p' || c == 'B' || c == 'b' {
			word, err := tr.peekWord()
			if err == nil && (strings.EqualFold(word, "PREFIX") || strings.EqualFold(word, "BASE")) {
				if err := tr.parseDirective(); err != nil {
					return Triple{}, err
				}
				continue
			}
		}
		return tr.parseStatement()
	}
}

// ReadAll parses every remaining triple.
func (tr *TurtleReader) ReadAll() ([]Triple, error) {
	var out []Triple
	for {
		t, err := tr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}

// ParseTurtle parses a complete Turtle document held in a string.
func ParseTurtle(src string) ([]Triple, error) {
	return NewTurtleReader(strings.NewReader(src)).ReadAll()
}

// low-level character helpers

func (tr *TurtleReader) peek() (byte, error) {
	b, err := tr.r.Peek(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (tr *TurtleReader) readByte() (byte, error) {
	c, err := tr.r.ReadByte()
	if err == nil && c == '\n' {
		tr.line++
	}
	return c, err
}

// skipSpace consumes whitespace and comments; io.EOF when exhausted.
func (tr *TurtleReader) skipSpace() error {
	for {
		c, err := tr.peek()
		if err != nil {
			return err
		}
		switch {
		case c == '#':
			for {
				c, err := tr.readByte()
				if err != nil {
					return err
				}
				if c == '\n' {
					break
				}
			}
		case unicode.IsSpace(rune(c)):
			if _, err := tr.readByte(); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}

// peekWord returns the upcoming bare word without consuming it.
func (tr *TurtleReader) peekWord() (string, error) {
	for n := 16; ; n *= 2 {
		buf, err := tr.r.Peek(n)
		if err != nil && len(buf) == 0 {
			return "", err
		}
		i := 0
		for i < len(buf) && isTurtleNameByte(buf[i]) {
			i++
		}
		if i < len(buf) || err != nil {
			return string(buf[:i]), nil
		}
	}
}

func isTurtleNameByte(c byte) bool {
	return c == '_' || c == '-' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// readWord consumes and returns a bare word.
func (tr *TurtleReader) readWord() (string, error) {
	var sb strings.Builder
	for {
		c, err := tr.peek()
		if err != nil || !isTurtleNameByte(c) {
			if sb.Len() == 0 {
				return "", tr.errf("expected name")
			}
			return sb.String(), nil
		}
		tr.readByte()
		sb.WriteByte(c)
	}
}

// parseDirective handles @prefix/@base and PREFIX/BASE.
func (tr *TurtleReader) parseDirective() error {
	atForm := false
	if c, _ := tr.peek(); c == '@' {
		atForm = true
		tr.readByte()
	}
	word, err := tr.readWord()
	if err != nil {
		return err
	}
	switch strings.ToLower(word) {
	case "prefix":
		if err := tr.skipSpace(); err != nil {
			return tr.errf("unexpected end of input in @prefix")
		}
		name, err := tr.readPrefixName()
		if err != nil {
			return err
		}
		if err := tr.skipSpace(); err != nil {
			return tr.errf("unexpected end of input in @prefix")
		}
		iri, err := tr.readIRIRef()
		if err != nil {
			return err
		}
		tr.prefixes[name] = iri
	case "base":
		if err := tr.skipSpace(); err != nil {
			return tr.errf("unexpected end of input in @base")
		}
		iri, err := tr.readIRIRef()
		if err != nil {
			return err
		}
		tr.base = iri
	default:
		return tr.errf("unknown directive @%s", word)
	}
	if atForm {
		// The @-form requires a terminating dot.
		if err := tr.skipSpace(); err != nil {
			return tr.errf("missing '.' after directive")
		}
		c, err := tr.readByte()
		if err != nil || c != '.' {
			return tr.errf("missing '.' after directive")
		}
	} else {
		// SPARQL form: an optional dot is tolerated.
		if err := tr.skipSpace(); err == nil {
			if c, err := tr.peek(); err == nil && c == '.' {
				tr.readByte()
			}
		}
	}
	return nil
}

// readPrefixName reads "name:" (possibly just ":").
func (tr *TurtleReader) readPrefixName() (string, error) {
	var sb strings.Builder
	for {
		c, err := tr.peek()
		if err != nil {
			return "", tr.errf("unterminated prefix name")
		}
		tr.readByte()
		if c == ':' {
			return sb.String(), nil
		}
		if !isTurtleNameByte(c) {
			return "", tr.errf("bad character %q in prefix name", c)
		}
		sb.WriteByte(c)
	}
}

// readIRIRef reads <...>.
func (tr *TurtleReader) readIRIRef() (string, error) {
	c, err := tr.readByte()
	if err != nil || c != '<' {
		return "", tr.errf("expected '<'")
	}
	var sb strings.Builder
	for {
		c, err := tr.readByte()
		if err != nil {
			return "", tr.errf("unterminated IRI")
		}
		if c == '>' {
			return sb.String(), nil
		}
		if c == ' ' || c == '\n' {
			return "", tr.errf("whitespace inside IRI")
		}
		sb.WriteByte(c)
	}
}

// parseStatement parses subject predicate-object-list '.' and queues the
// expanded triples.
func (tr *TurtleReader) parseStatement() (Triple, error) {
	subj, err := tr.parseTerm(true)
	if err != nil {
		return Triple{}, err
	}
	for {
		if err := tr.skipSpace(); err != nil {
			return Triple{}, tr.errf("unexpected end of statement")
		}
		pred, err := tr.parsePredicate()
		if err != nil {
			return Triple{}, err
		}
		// Object list: o1, o2, ...
		for {
			if err := tr.skipSpace(); err != nil {
				return Triple{}, tr.errf("unexpected end of statement")
			}
			obj, err := tr.parseTerm(false)
			if err != nil {
				return Triple{}, err
			}
			tr.pending = append(tr.pending, T(subj, pred, obj))
			if err := tr.skipSpace(); err != nil {
				return Triple{}, tr.errf("statement not terminated with '.'")
			}
			c, err := tr.peek()
			if err != nil {
				return Triple{}, tr.errf("statement not terminated with '.'")
			}
			if c != ',' {
				break
			}
			tr.readByte()
		}
		c, err := tr.readByte()
		if err != nil {
			return Triple{}, tr.errf("statement not terminated with '.'")
		}
		switch c {
		case '.':
			t := tr.pending[0]
			tr.pending = tr.pending[1:]
			return t, nil
		case ';':
			// A ';' may be followed by another ';', the '.', or a new
			// predicate; trailing semicolons are legal Turtle.
			if err := tr.skipSpace(); err != nil {
				return Triple{}, tr.errf("statement not terminated with '.'")
			}
			if nc, err := tr.peek(); err == nil && nc == '.' {
				tr.readByte()
				t := tr.pending[0]
				tr.pending = tr.pending[1:]
				return t, nil
			}
			continue
		default:
			return Triple{}, tr.errf("expected '.', ';' or ',' after object, found %q", c)
		}
	}
}

// parsePredicate parses a verb: 'a', an IRI, or a prefixed name.
func (tr *TurtleReader) parsePredicate() (Term, error) {
	c, err := tr.peek()
	if err != nil {
		return Term{}, tr.errf("expected predicate")
	}
	if c == 'a' {
		// 'a' only when followed by a non-name byte.
		buf, _ := tr.r.Peek(2)
		if len(buf) == 1 || !isTurtleNameByte(buf[1]) && buf[1] != ':' {
			tr.readByte()
			return NewIRI(rdfTypeIRI), nil
		}
	}
	return tr.parseTerm(false)
}

// rdfTypeIRI is the expansion of the 'a' keyword.
const rdfTypeIRI = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

// parseTerm parses an IRI, prefixed name, blank node, literal, or bare
// numeric/boolean literal. asSubject restricts literals.
func (tr *TurtleReader) parseTerm(asSubject bool) (Term, error) {
	c, err := tr.peek()
	if err != nil {
		return Term{}, tr.errf("expected term")
	}
	switch {
	case c == '<':
		iri, err := tr.readIRIRef()
		if err != nil {
			return Term{}, err
		}
		return NewIRI(tr.resolve(iri)), nil
	case c == '_':
		buf, _ := tr.r.Peek(2)
		if len(buf) < 2 || buf[1] != ':' {
			return Term{}, tr.errf("malformed blank node")
		}
		tr.readByte()
		tr.readByte()
		label, err := tr.readWord()
		if err != nil {
			return Term{}, err
		}
		return NewBlank(label), nil
	case c == '"':
		if asSubject {
			return Term{}, tr.errf("literal not allowed as subject")
		}
		return tr.parseLiteral()
	case c == '[':
		return Term{}, tr.errf("bracketed blank nodes [ ] are not supported")
	case c == '(':
		return Term{}, tr.errf("collections ( ) are not supported")
	case c >= '0' && c <= '9' || c == '+' || c == '-':
		if asSubject {
			return Term{}, tr.errf("literal not allowed as subject")
		}
		return tr.parseNumber()
	default:
		word, err := tr.readWord()
		if err != nil {
			return Term{}, err
		}
		if !asSubject && (word == "true" || word == "false") {
			if nc, err := tr.peek(); err != nil || nc != ':' {
				return NewLiteral(word), nil
			}
		}
		// Prefixed name: word ':' local.
		nc, err := tr.peek()
		if err != nil || nc != ':' {
			return Term{}, tr.errf("expected ':' after prefix %q", word)
		}
		tr.readByte()
		var local strings.Builder
		for {
			c, err := tr.peek()
			if err != nil || !isTurtleNameByte(c) {
				break
			}
			tr.readByte()
			local.WriteByte(c)
		}
		base, ok := tr.prefixes[word]
		if !ok {
			return Term{}, tr.errf("undeclared prefix %q", word)
		}
		return NewIRI(base + local.String()), nil
	}
}

// resolve applies @base to relative IRIs (those without a scheme).
func (tr *TurtleReader) resolve(iri string) string {
	if tr.base == "" || strings.Contains(iri, "://") || strings.HasPrefix(iri, "urn:") {
		return iri
	}
	return tr.base + iri
}

// parseLiteral parses "..." with optional @lang or ^^datatype suffixes,
// folding suffixes into the value verbatim (N-Triples reader convention).
func (tr *TurtleReader) parseLiteral() (Term, error) {
	tr.readByte() // opening quote
	var sb strings.Builder
	for {
		c, err := tr.readByte()
		if err != nil {
			return Term{}, tr.errf("unterminated literal")
		}
		switch c {
		case '\\':
			e, err := tr.readByte()
			if err != nil {
				return Term{}, tr.errf("trailing backslash in literal")
			}
			switch e {
			case '"':
				sb.WriteByte('"')
			case '\\':
				sb.WriteByte('\\')
			case 'n':
				sb.WriteByte('\n')
			case 'r':
				sb.WriteByte('\r')
			case 't':
				sb.WriteByte('\t')
			default:
				return Term{}, tr.errf("unknown escape \\%c", e)
			}
		case '"':
			value := sb.String()
			// Optional suffixes.
			if c, err := tr.peek(); err == nil {
				switch c {
				case '@':
					tr.readByte()
					tag, err := tr.readWord()
					if err != nil {
						return Term{}, err
					}
					value += "@" + tag
				case '^':
					tr.readByte()
					if c2, err := tr.readByte(); err != nil || c2 != '^' {
						return Term{}, tr.errf("malformed datatype suffix")
					}
					dt, err := tr.parseTerm(false)
					if err != nil {
						return Term{}, err
					}
					if dt.Kind != IRI {
						return Term{}, tr.errf("datatype must be an IRI")
					}
					value += "^^<" + dt.Value + ">"
				}
			}
			return NewLiteral(value), nil
		case '\n':
			return Term{}, tr.errf("newline inside literal (multi-line literals not supported)")
		default:
			sb.WriteByte(c)
		}
	}
}

// parseNumber parses a bare numeric literal.
func (tr *TurtleReader) parseNumber() (Term, error) {
	var sb strings.Builder
	if c, _ := tr.peek(); c == '+' || c == '-' {
		tr.readByte()
		sb.WriteByte(c)
	}
	digits := 0
	for {
		c, err := tr.peek()
		if err != nil {
			break
		}
		if c >= '0' && c <= '9' {
			tr.readByte()
			sb.WriteByte(c)
			digits++
			continue
		}
		if c == '.' {
			// A dot is part of the number only when followed by a digit;
			// otherwise it terminates the statement.
			buf, _ := tr.r.Peek(2)
			if len(buf) == 2 && buf[1] >= '0' && buf[1] <= '9' {
				tr.readByte()
				sb.WriteByte('.')
				continue
			}
		}
		break
	}
	if digits == 0 {
		return Term{}, tr.errf("malformed number")
	}
	return NewLiteral(sb.String()), nil
}
