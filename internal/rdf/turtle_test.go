package rdf

import (
	"strings"
	"testing"
)

func mustParseTurtle(t *testing.T, src string) []Triple {
	t.Helper()
	out, err := ParseTurtle(src)
	if err != nil {
		t.Fatalf("ParseTurtle: %v", err)
	}
	return out
}

func TestTurtleBasicTriple(t *testing.T) {
	ts := mustParseTurtle(t, `<http://a> <http://p> <http://b> .`)
	if len(ts) != 1 {
		t.Fatalf("triples = %d, want 1", len(ts))
	}
	if ts[0].Subject.Value != "http://a" || ts[0].Object.Value != "http://b" {
		t.Fatalf("triple = %v", ts[0])
	}
}

func TestTurtlePrefixes(t *testing.T) {
	ts := mustParseTurtle(t, `
		@prefix ex: <http://example.org/> .
		ex:alice ex:knows ex:bob .`)
	if len(ts) != 1 {
		t.Fatalf("triples = %d, want 1", len(ts))
	}
	if ts[0].Subject.Value != "http://example.org/alice" {
		t.Fatalf("subject = %q", ts[0].Subject.Value)
	}
}

func TestTurtleSPARQLStylePrefix(t *testing.T) {
	ts := mustParseTurtle(t, `
		PREFIX ex: <http://example.org/>
		ex:a ex:p ex:b .`)
	if len(ts) != 1 || ts[0].Predicate.Value != "http://example.org/p" {
		t.Fatalf("triples = %v", ts)
	}
}

func TestTurtleBase(t *testing.T) {
	ts := mustParseTurtle(t, `
		@base <http://example.org/> .
		<alice> <knows> <bob> .`)
	if ts[0].Subject.Value != "http://example.org/alice" {
		t.Fatalf("base not applied: %q", ts[0].Subject.Value)
	}
	// Absolute IRIs must not be rebased.
	ts2 := mustParseTurtle(t, `
		@base <http://example.org/> .
		<http://other.org/x> <p> <y> .`)
	if ts2[0].Subject.Value != "http://other.org/x" {
		t.Fatalf("absolute IRI rebased: %q", ts2[0].Subject.Value)
	}
}

func TestTurtleAKeyword(t *testing.T) {
	ts := mustParseTurtle(t, `
		@prefix ex: <http://example.org/> .
		ex:alice a ex:Person .`)
	if ts[0].Predicate.Value != "http://www.w3.org/1999/02/22-rdf-syntax-ns#type" {
		t.Fatalf("predicate = %q", ts[0].Predicate.Value)
	}
}

func TestTurtlePredicateList(t *testing.T) {
	ts := mustParseTurtle(t, `
		@prefix ex: <http://ex/> .
		ex:s ex:p1 ex:o1 ;
		     ex:p2 ex:o2 ;
		     ex:p3 ex:o3 .`)
	if len(ts) != 3 {
		t.Fatalf("triples = %d, want 3", len(ts))
	}
	for _, tr := range ts {
		if tr.Subject.Value != "http://ex/s" {
			t.Fatalf("subject changed mid-list: %v", tr)
		}
	}
	if ts[2].Predicate.Value != "http://ex/p3" || ts[2].Object.Value != "http://ex/o3" {
		t.Fatalf("third triple = %v", ts[2])
	}
}

func TestTurtleObjectList(t *testing.T) {
	ts := mustParseTurtle(t, `
		@prefix ex: <http://ex/> .
		ex:s ex:p ex:a, ex:b, ex:c .`)
	if len(ts) != 3 {
		t.Fatalf("triples = %d, want 3", len(ts))
	}
	for i, want := range []string{"http://ex/a", "http://ex/b", "http://ex/c"} {
		if ts[i].Object.Value != want {
			t.Fatalf("object %d = %q, want %q", i, ts[i].Object.Value, want)
		}
	}
}

func TestTurtleCombinedLists(t *testing.T) {
	ts := mustParseTurtle(t, `
		@prefix ex: <http://ex/> .
		ex:s ex:p ex:a, ex:b ; ex:q ex:c .
		ex:t ex:r ex:d .`)
	if len(ts) != 4 {
		t.Fatalf("triples = %d, want 4", len(ts))
	}
	if ts[3].Subject.Value != "http://ex/t" {
		t.Fatalf("fourth triple = %v", ts[3])
	}
}

func TestTurtleTrailingSemicolon(t *testing.T) {
	ts := mustParseTurtle(t, `
		@prefix ex: <http://ex/> .
		ex:s ex:p ex:o ; .`)
	if len(ts) != 1 {
		t.Fatalf("triples = %d, want 1", len(ts))
	}
}

func TestTurtleLiterals(t *testing.T) {
	ts := mustParseTurtle(t, `
		@prefix ex: <http://ex/> .
		@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
		ex:s ex:name "Alice \"A\" Smith" ;
		     ex:bio "line1\nline2" ;
		     ex:tag "hello"@en ;
		     ex:age "30"^^xsd:integer ;
		     ex:score "9.5"^^<http://dt> .`)
	if len(ts) != 5 {
		t.Fatalf("triples = %d, want 5", len(ts))
	}
	if ts[0].Object.Value != `Alice "A" Smith` {
		t.Fatalf("escaped literal = %q", ts[0].Object.Value)
	}
	if ts[1].Object.Value != "line1\nline2" {
		t.Fatalf("newline literal = %q", ts[1].Object.Value)
	}
	if ts[2].Object.Value != "hello@en" {
		t.Fatalf("lang literal = %q", ts[2].Object.Value)
	}
	if ts[3].Object.Value != "30^^<http://www.w3.org/2001/XMLSchema#integer>" {
		t.Fatalf("typed literal = %q", ts[3].Object.Value)
	}
	if ts[4].Object.Value != "9.5^^<http://dt>" {
		t.Fatalf("iri-typed literal = %q", ts[4].Object.Value)
	}
}

func TestTurtleBareNumbersAndBooleans(t *testing.T) {
	ts := mustParseTurtle(t, `
		@prefix ex: <http://ex/> .
		ex:s ex:count 42 ;
		     ex:ratio 3.14 ;
		     ex:neg -7 ;
		     ex:ok true ;
		     ex:no false .`)
	want := []string{"42", "3.14", "-7", "true", "false"}
	if len(ts) != len(want) {
		t.Fatalf("triples = %d, want %d", len(ts), len(want))
	}
	for i, w := range want {
		if ts[i].Object.Kind != Literal || ts[i].Object.Value != w {
			t.Fatalf("object %d = %v, want literal %q", i, ts[i].Object, w)
		}
	}
}

func TestTurtleNumberFollowedByDot(t *testing.T) {
	// "42 ." — the dot terminates the statement, it is not a decimal point.
	ts := mustParseTurtle(t, `<s> <p> 42 . <s2> <p> 7.`)
	if len(ts) != 2 {
		t.Fatalf("triples = %d, want 2", len(ts))
	}
	if ts[1].Object.Value != "7" {
		t.Fatalf("second object = %q, want 7", ts[1].Object.Value)
	}
}

func TestTurtleBlankNodes(t *testing.T) {
	ts := mustParseTurtle(t, `_:a <http://p> _:b .`)
	if ts[0].Subject.Kind != Blank || ts[0].Subject.Value != "a" {
		t.Fatalf("subject = %v", ts[0].Subject)
	}
	if ts[0].Object.Kind != Blank || ts[0].Object.Value != "b" {
		t.Fatalf("object = %v", ts[0].Object)
	}
}

func TestTurtleComments(t *testing.T) {
	ts := mustParseTurtle(t, `
		# leading comment
		@prefix ex: <http://ex/> . # trailing comment
		# between statements
		ex:s ex:p ex:o . # done`)
	if len(ts) != 1 {
		t.Fatalf("triples = %d, want 1", len(ts))
	}
}

func TestTurtleMultipleStatementsAcrossLines(t *testing.T) {
	ts := mustParseTurtle(t, `
		@prefix ex: <http://ex/> .
		ex:a
			ex:p
				ex:b .
		ex:c ex:q ex:d .`)
	if len(ts) != 2 {
		t.Fatalf("triples = %d, want 2", len(ts))
	}
}

func TestTurtleErrors(t *testing.T) {
	bad := map[string]string{
		`ex:s ex:p ex:o .`:                            "undeclared prefix",
		`@prefix ex: <http://ex/>`:                    "missing '.'",
		`<s> <p> "unterminated`:                       "unterminated literal",
		`<s> <p> [ <q> <r> ] .`:                       "bracketed",
		`<s> <p> ( <a> <b> ) .`:                       "collections",
		`<s> <p> <o>`:                                 "not terminated",
		`"lit" <p> <o> .`:                             "subject",
		`@nonsense <x> .`:                             "unknown directive",
		`<s> <p> "a"^x .`:                             "datatype",
		"<s> <p> \"line\nbreak\" .":                   "multi-line",
		`<s> <unterminated iri> <o> .`:                "whitespace inside IRI",
		`@prefix ex: <http://ex/> . ex:s ex:p "x"@ .`: "name",
	}
	for src, wantSubstr := range bad {
		_, err := ParseTurtle(src)
		if err == nil {
			t.Errorf("ParseTurtle(%q) succeeded, want error containing %q", src, wantSubstr)
			continue
		}
		if !strings.Contains(err.Error(), wantSubstr) {
			t.Errorf("ParseTurtle(%q) error = %v, want substring %q", src, err, wantSubstr)
		}
	}
}

func TestTurtleErrorReportsLineNumber(t *testing.T) {
	_, err := ParseTurtle("@prefix ex: <http://ex/> .\nex:s ex:p zzz:o .")
	te, ok := err.(*TurtleError)
	if !ok {
		t.Fatalf("error type %T, want *TurtleError", err)
	}
	if te.Line != 2 {
		t.Fatalf("error line = %d, want 2", te.Line)
	}
}

func TestTurtleRoundTripThroughNTriples(t *testing.T) {
	// Triples parsed from Turtle must serialize to N-Triples and parse
	// back identically.
	ts := mustParseTurtle(t, `
		@prefix ex: <http://ex/> .
		ex:s ex:p "v \"quoted\"", ex:o ; a ex:Thing .`)
	var sb strings.Builder
	w := NewWriter(&sb)
	for _, tr := range ts {
		if err := w.Write(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	back, err := NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ts) {
		t.Fatalf("round trip lost triples: %d -> %d", len(ts), len(back))
	}
	for i := range ts {
		if back[i] != ts[i] {
			t.Fatalf("triple %d changed: %v -> %v", i, ts[i], back[i])
		}
	}
}
