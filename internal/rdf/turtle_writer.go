package rdf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// TurtleWriter serializes triples in Turtle syntax, compacting IRIs
// against a set of declared prefixes and grouping consecutive triples
// that share a subject into predicate lists (s p1 o1 ; p2 o2 .). It is
// the inverse of TurtleReader for the supported subset.
//
// Literal values that carry folded language or datatype suffixes (the
// convention of this repository's Term model, e.g. `hello@en` or
// `30^^<iri>`) are re-expanded into proper Turtle suffix syntax.
type TurtleWriter struct {
	w        *bufio.Writer
	prefixes []prefixDecl // longest-first for greedy compaction

	headerDone  bool
	haveSubject bool
	lastSubject Term
}

type prefixDecl struct {
	name string
	iri  string
}

// NewTurtleWriter returns a TurtleWriter over w with no prefixes.
func NewTurtleWriter(w io.Writer) *TurtleWriter {
	return &TurtleWriter{w: bufio.NewWriter(w)}
}

// DeclarePrefix registers name: <iri> for compaction. All declarations
// must happen before the first Write; later calls return an error.
func (tw *TurtleWriter) DeclarePrefix(name, iri string) error {
	if tw.headerDone {
		return fmt.Errorf("rdf: turtle writer: DeclarePrefix after first Write")
	}
	for _, p := range tw.prefixes {
		if p.name == name {
			return fmt.Errorf("rdf: turtle writer: prefix %q declared twice", name)
		}
	}
	tw.prefixes = append(tw.prefixes, prefixDecl{name: name, iri: iri})
	// Longest IRI first so the most specific prefix wins.
	sort.Slice(tw.prefixes, func(i, j int) bool {
		return len(tw.prefixes[i].iri) > len(tw.prefixes[j].iri)
	})
	return nil
}

// writeHeader emits the @prefix block once.
func (tw *TurtleWriter) writeHeader() error {
	if tw.headerDone {
		return nil
	}
	tw.headerDone = true
	decls := append([]prefixDecl(nil), tw.prefixes...)
	sort.Slice(decls, func(i, j int) bool { return decls[i].name < decls[j].name })
	for _, p := range decls {
		if _, err := fmt.Fprintf(tw.w, "@prefix %s: <%s> .\n", p.name, p.iri); err != nil {
			return err
		}
	}
	if len(decls) > 0 {
		if err := tw.w.WriteByte('\n'); err != nil {
			return err
		}
	}
	return nil
}

// Write emits one triple, folding it into the previous statement when
// the subject repeats.
func (tw *TurtleWriter) Write(t Triple) error {
	if !t.Valid() {
		return fmt.Errorf("rdf: turtle writer: invalid triple %v", t)
	}
	if err := tw.writeHeader(); err != nil {
		return err
	}
	if tw.haveSubject && t.Subject == tw.lastSubject {
		if _, err := tw.w.WriteString(" ;\n    "); err != nil {
			return err
		}
	} else {
		if tw.haveSubject {
			if _, err := tw.w.WriteString(" .\n"); err != nil {
				return err
			}
		}
		if _, err := tw.w.WriteString(tw.renderTerm(t.Subject)); err != nil {
			return err
		}
		if err := tw.w.WriteByte(' '); err != nil {
			return err
		}
		tw.haveSubject = true
		tw.lastSubject = t.Subject
	}
	if _, err := tw.w.WriteString(tw.renderPredicate(t.Predicate)); err != nil {
		return err
	}
	if err := tw.w.WriteByte(' '); err != nil {
		return err
	}
	_, err := tw.w.WriteString(tw.renderTerm(t.Object))
	return err
}

// Flush terminates the last statement and flushes buffered output.
func (tw *TurtleWriter) Flush() error {
	if tw.haveSubject {
		if _, err := tw.w.WriteString(" .\n"); err != nil {
			return err
		}
		tw.haveSubject = false
	}
	return tw.w.Flush()
}

// renderPredicate renders a verb, using 'a' for rdf:type.
func (tw *TurtleWriter) renderPredicate(t Term) string {
	if t.Kind == IRI && t.Value == rdfTypeIRI {
		return "a"
	}
	return tw.renderTerm(t)
}

func (tw *TurtleWriter) renderTerm(t Term) string {
	switch t.Kind {
	case IRI:
		for _, p := range tw.prefixes {
			if local, ok := strings.CutPrefix(t.Value, p.iri); ok && isLocalName(local) {
				return p.name + ":" + local
			}
		}
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	default:
		return renderTurtleLiteral(tw, t.Value)
	}
}

// isLocalName reports whether s can appear after a ':' unquoted.
func isLocalName(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isTurtleNameByte(s[i]) {
			return false
		}
	}
	return true
}

// renderTurtleLiteral expands folded @lang / ^^<iri> suffixes back into
// Turtle suffix syntax.
func renderTurtleLiteral(tw *TurtleWriter, value string) string {
	// Datatype suffix: value^^<iri> (the reader always folds the IRI in
	// angle-bracket form).
	if i := strings.LastIndex(value, "^^<"); i >= 0 && strings.HasSuffix(value, ">") {
		base, dt := value[:i], value[i+3:len(value)-1]
		return quoteTurtle(base) + "^^" + tw.renderTerm(NewIRI(dt))
	}
	// Language suffix: value@tag, where tag must look like a language tag
	// (letters, digits, hyphens) to avoid mangling email-like literals.
	if i := strings.LastIndexByte(value, '@'); i > 0 {
		tag := value[i+1:]
		if tag != "" && isLangTag(tag) && !strings.ContainsAny(value[:i], "@") {
			return quoteTurtle(value[:i]) + "@" + tag
		}
	}
	return quoteTurtle(value)
}

func isLangTag(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c == '-' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
			return false
		}
	}
	// Language tags start with a letter.
	c := s[0]
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func quoteTurtle(s string) string {
	return `"` + escapeLiteral(s) + `"`
}

// WriteTurtle serializes all triples to w with the given prefix map,
// flushing at the end. Triples are written in input order; callers that
// want maximal subject grouping should sort by subject first.
func WriteTurtle(w io.Writer, prefixes map[string]string, triples []Triple) error {
	tw := NewTurtleWriter(w)
	names := make([]string, 0, len(prefixes))
	for name := range prefixes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := tw.DeclarePrefix(name, prefixes[name]); err != nil {
			return err
		}
	}
	for _, t := range triples {
		if err := tw.Write(t); err != nil {
			return err
		}
	}
	return tw.Flush()
}
