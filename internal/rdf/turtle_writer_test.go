package rdf

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTurtleWriterBasic(t *testing.T) {
	var sb strings.Builder
	err := WriteTurtle(&sb, map[string]string{"ex": "http://ex/"}, []Triple{
		T(NewIRI("http://ex/s"), NewIRI("http://ex/p"), NewIRI("http://ex/o")),
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "@prefix ex: <http://ex/> .") {
		t.Fatalf("missing prefix declaration in %q", out)
	}
	if !strings.Contains(out, "ex:s ex:p ex:o .") {
		t.Fatalf("triple not compacted: %q", out)
	}
}

func TestTurtleWriterGroupsSubjects(t *testing.T) {
	var sb strings.Builder
	err := WriteTurtle(&sb, map[string]string{"ex": "http://ex/"}, []Triple{
		T(NewIRI("http://ex/s"), NewIRI("http://ex/p1"), NewIRI("http://ex/a")),
		T(NewIRI("http://ex/s"), NewIRI("http://ex/p2"), NewIRI("http://ex/b")),
		T(NewIRI("http://ex/t"), NewIRI("http://ex/p1"), NewIRI("http://ex/c")),
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "ex:s") != 1 {
		t.Fatalf("subject repeated instead of grouped:\n%s", out)
	}
	if !strings.Contains(out, ";") {
		t.Fatalf("no predicate list separator:\n%s", out)
	}
}

func TestTurtleWriterRDFTypeAsA(t *testing.T) {
	var sb strings.Builder
	err := WriteTurtle(&sb, nil, []Triple{
		T(NewIRI("s"), NewIRI(rdfTypeIRI), NewIRI("T")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<s> a <T> .") {
		t.Fatalf("rdf:type not rendered as 'a': %q", sb.String())
	}
}

func TestTurtleWriterLiteralSuffixes(t *testing.T) {
	var sb strings.Builder
	err := WriteTurtle(&sb, nil, []Triple{
		T(NewIRI("s"), NewIRI("p"), NewLiteral("hello@en")),
		T(NewIRI("s"), NewIRI("p2"), NewLiteral("30^^<http://www.w3.org/2001/XMLSchema#integer>")),
		T(NewIRI("s"), NewIRI("p3"), NewLiteral("user@example.org_is_not_a_langtag!")),
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"hello"@en`) {
		t.Fatalf("language suffix not expanded: %q", out)
	}
	if !strings.Contains(out, `"30"^^<http://www.w3.org/2001/XMLSchema#integer>`) {
		t.Fatalf("datatype suffix not expanded: %q", out)
	}
	if !strings.Contains(out, `"user@example.org_is_not_a_langtag!"`) {
		t.Fatalf("email-like literal mangled: %q", out)
	}
}

func TestTurtleWriterRejectsInvalidTriple(t *testing.T) {
	tw := NewTurtleWriter(&strings.Builder{})
	if err := tw.Write(Triple{}); err == nil {
		t.Fatal("invalid triple accepted")
	}
}

func TestTurtleWriterPrefixAfterWriteRejected(t *testing.T) {
	var sb strings.Builder
	tw := NewTurtleWriter(&sb)
	if err := tw.Write(T(NewIRI("s"), NewIRI("p"), NewIRI("o"))); err != nil {
		t.Fatal(err)
	}
	if err := tw.DeclarePrefix("ex", "http://ex/"); err == nil {
		t.Fatal("DeclarePrefix after Write accepted")
	}
}

func TestTurtleWriterDuplicatePrefixRejected(t *testing.T) {
	tw := NewTurtleWriter(&strings.Builder{})
	if err := tw.DeclarePrefix("ex", "http://a/"); err != nil {
		t.Fatal(err)
	}
	if err := tw.DeclarePrefix("ex", "http://b/"); err == nil {
		t.Fatal("duplicate prefix accepted")
	}
}

func TestTurtleWriterLongestPrefixWins(t *testing.T) {
	var sb strings.Builder
	err := WriteTurtle(&sb, map[string]string{
		"a": "http://ex/",
		"b": "http://ex/sub/",
	}, []Triple{
		T(NewIRI("http://ex/sub/x"), NewIRI("http://ex/p"), NewIRI("http://ex/sub/y")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "b:x a:p b:y .") {
		t.Fatalf("longest prefix not preferred: %q", sb.String())
	}
}

func TestTurtleWriterUncompactableIRIStaysAngled(t *testing.T) {
	var sb strings.Builder
	// The local part contains '/', which cannot appear in a prefixed
	// local name; the IRI must stay in angle brackets.
	err := WriteTurtle(&sb, map[string]string{"ex": "http://ex/"}, []Triple{
		T(NewIRI("http://ex/path/deep"), NewIRI("http://ex/p"), NewIRI("http://other/x")),
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "<http://ex/path/deep>") {
		t.Fatalf("slashy IRI wrongly compacted: %q", out)
	}
	if !strings.Contains(out, "<http://other/x>") {
		t.Fatalf("foreign IRI wrongly compacted: %q", out)
	}
}

// TestTurtleWriterReaderRoundTrip checks Write → Parse returns the same
// triples for a representative mix.
func TestTurtleWriterReaderRoundTrip(t *testing.T) {
	triples := []Triple{
		T(NewIRI("http://ex/alice"), NewIRI(rdfTypeIRI), NewIRI("http://ex/Person")),
		T(NewIRI("http://ex/alice"), NewIRI("http://ex/name"), NewLiteral(`Alice "A"`)),
		T(NewIRI("http://ex/alice"), NewIRI("http://ex/bio"), NewLiteral("line1\nline2")),
		T(NewIRI("http://ex/alice"), NewIRI("http://ex/tag"), NewLiteral("hi@en")),
		T(NewBlank("b0"), NewIRI("http://ex/p"), NewIRI("http://ex/alice")),
	}
	var sb strings.Builder
	if err := WriteTurtle(&sb, map[string]string{"ex": "http://ex/"}, triples); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTurtle(sb.String())
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, sb.String())
	}
	if len(back) != len(triples) {
		t.Fatalf("round trip %d -> %d triples\n%s", len(triples), len(back), sb.String())
	}
	for i := range triples {
		if back[i] != triples[i] {
			t.Fatalf("triple %d changed: %v -> %v", i, triples[i], back[i])
		}
	}
}

// TestQuickTurtleRoundTrip property-tests Write → Parse identity over
// random triples.
func TestQuickTurtleRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var triples []Triple
		n := rng.Intn(40) + 1
		for i := 0; i < n; i++ {
			s := NewIRI(fmt.Sprintf("http://ex/s%d", rng.Intn(8)))
			p := NewIRI(fmt.Sprintf("http://ex/p%d", rng.Intn(4)))
			var o Term
			switch rng.Intn(3) {
			case 0:
				o = NewIRI(fmt.Sprintf("http://ex/o%d", rng.Intn(10)))
			case 1:
				o = NewLiteral(fmt.Sprintf("value %d with \"quotes\" and\ttabs", rng.Intn(100)))
			default:
				o = NewBlank(fmt.Sprintf("b%d", rng.Intn(5)))
			}
			triples = append(triples, T(s, p, o))
		}
		var sb strings.Builder
		if err := WriteTurtle(&sb, map[string]string{"ex": "http://ex/"}, triples); err != nil {
			return false
		}
		back, err := ParseTurtle(sb.String())
		if err != nil || len(back) != len(triples) {
			return false
		}
		for i := range triples {
			if back[i] != triples[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
