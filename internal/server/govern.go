package server

// Query governance for the /sparql endpoint: admission control (max
// concurrent queries with a bounded, deadline-aware wait queue),
// per-query deadlines and memory budgets, a slow-query log, and typed
// HTTP error mapping. This subsumes the generic -max-inflight semaphore
// for query traffic: the governor knows *why* a query ended (canceled,
// timed out, budget-killed, rejected) and surfaces each outcome as a
// distinct status code and /stats counter, where the load shedder could
// only answer an undifferentiated 503.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"time"

	"hexastore/internal/govern"
	"hexastore/internal/obs"
	"hexastore/internal/sparql"
)

// statusClientClosedRequest is the nginx-convention status for "the
// client went away before the response was ready". It never reaches the
// client (the connection is gone); it makes access logs and tests
// distinguish client disconnects from server faults.
const statusClientClosedRequest = 499

// SetGovernor installs the query governor on /sparql. cfg.Logf defaults
// to log.Printf so slow-query lines land on the server log. Configure
// before Handler; a nil-config governor still counts active queries.
func (s *Server) SetGovernor(cfg govern.Config) {
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	s.gov = govern.New(cfg)
	// Remember the threshold: serveQuery traces queries whenever the
	// slow-query log is live, so a slow line can name its most expensive
	// spans instead of just reporting a duration.
	s.slowQuery = cfg.SlowQuery
	s.registerGovernorMetrics()
}

// SetQueryLimits bounds every governed query: timeout is the per-query
// deadline (0 = none; the client's own context still applies) and
// memBudget is the per-query soft memory budget in bytes (0 =
// unlimited). Crossing the budget makes oversized join state spill to
// temp files; crossing its hard cap (4× the budget) fails the query
// with 503 instead of taking the process down. Configure before
// Handler.
func (s *Server) SetQueryLimits(timeout time.Duration, memBudget int64) {
	s.queryTimeout = timeout
	s.memBudget = memBudget
}

// GovernorStats returns the governor's counters (zero when no governor
// is installed).
func (s *Server) GovernorStats() govern.Stats { return s.gov.Stats() }

// serveQuery runs one governed SPARQL query: admission, limits,
// evaluation, observation, response. Tracing is enabled when the query
// asks for it (EXPLAIN / EXPLAIN ANALYZE prefix, or ?explain=1) or when
// the slow-query log is live — in the latter case the trace's most
// expensive spans ride along on the slow-query line.
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, queryText string) {
	q, err := sparql.Parse(queryText)
	if err != nil {
		httpError(w, http.StatusBadRequest, "query: %v", err)
		return
	}
	explainParam := r.URL.Query().Get("explain") == "1" || r.Form.Get("explain") == "1"
	var tr *obs.Trace
	if q.Explain != sparql.ExplainNone || explainParam || s.slowQuery > 0 {
		tr = obs.NewTrace("query")
	}

	ctx := r.Context()
	start := time.Now()
	release, err := s.gov.Acquire(ctx)
	if err != nil {
		s.gov.Observe(queryText, time.Since(start), err, nil)
		s.writeQueryError(w, r, err)
		return
	}
	defer release()

	if s.queryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.queryTimeout)
		defer cancel()
	}
	var m *govern.Meter
	if s.memBudget > 0 {
		// Hard cap at 4× the soft budget: spillable state stays under
		// the budget, so only unspillable growth reaches beyond it.
		m = govern.NewMeter(s.memBudget, 4*s.memBudget)
	}

	unlock := s.rlock()
	// ?explain=1 bypasses the result cache (EXPLAIN-prefixed queries
	// bypass it inside the evaluator): a trace must describe the
	// execution that produced these rows, never ride on cached ones.
	res, err := s.planner().EvalOpts(ctx, q, sparql.EvalOptions{
		Meter: m, Trace: tr, NoResultCache: explainParam,
	})
	unlock()
	tr.Finish()
	if tr != nil {
		s.gov.Observe(queryText, time.Since(start), err, m, cacheDetail(tr), tr.FormatTop(3))
	} else {
		s.gov.Observe(queryText, time.Since(start), err, m)
	}
	if err != nil {
		s.writeQueryError(w, r, err)
		return
	}
	out := resultsJSON(res)
	if q.Explain != sparql.ExplainNone || explainParam {
		// EXPLAIN (plan-only) returns the plan tree with no bindings;
		// EXPLAIN ANALYZE and ?explain=1 return bindings plus the executed
		// trace. Either way the span tree is one JSON field on the normal
		// results document, so existing clients keep parsing.
		out["explain"] = tr
	}
	w.Header().Set("Content-Type", "application/sparql-results+json")
	json.NewEncoder(w).Encode(out) //nolint:errcheck // client may be gone
}

// cacheDetail summarizes the trace's cache annotations for the
// slow-query log: "cache result=hit" / "cache plan=miss" /
// "cache result=miss plan=hit", or "" when neither cache was consulted.
// The result-cache verdict sits on the trace root; the plan-cache
// verdict on the (possibly nested) plan span.
func cacheDetail(tr *obs.Trace) string {
	out := ""
	if v, ok := tr.Attr("resultCache"); ok {
		out = "result=" + fmt.Sprint(v)
	}
	if v, ok := findAttr(tr, "planCache"); ok {
		if out != "" {
			out += " "
		}
		out += "plan=" + fmt.Sprint(v)
	}
	if out == "" {
		return ""
	}
	return "cache " + out
}

// findAttr depth-first-searches the span tree for key.
func findAttr(sp *obs.Span, key string) (any, bool) {
	if v, ok := sp.Attr(key); ok {
		return v, true
	}
	for _, c := range sp.Children() {
		if v, ok := findAttr(c, key); ok {
			return v, true
		}
	}
	return nil, false
}

// writeQueryError maps a query failure to its HTTP status:
//
//   - client disconnected → 499 (never a 500: the server did nothing
//     wrong, and the connection is gone anyway)
//   - deadline exceeded (per-query timeout or client deadline) → 408
//   - memory budget exhausted → 503 + Retry-After (the query may
//     succeed when the server is less loaded or with a tighter query)
//   - admission rejected / queue timeout → 503 + Retry-After
//   - syntax errors → 400; everything else → 500
func (s *Server) writeQueryError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case r.Context().Err() != nil && errors.Is(r.Context().Err(), context.Canceled):
		httpError(w, statusClientClosedRequest, "client closed request: %v", err)
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusRequestTimeout, "query deadline exceeded: %v", err)
	case errors.Is(err, context.Canceled):
		httpError(w, statusClientClosedRequest, "query canceled: %v", err)
	case errors.Is(err, govern.ErrBudgetExceeded):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "query rejected: %v", err)
	case errors.Is(err, govern.ErrRejected):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "query rejected: %v", err)
	default:
		if _, ok := err.(*sparql.SyntaxError); ok {
			httpError(w, http.StatusBadRequest, "query: %v", err)
			return
		}
		httpError(w, http.StatusInternalServerError, "query: %v", err)
	}
}
