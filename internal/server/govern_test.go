package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"hexastore/internal/core"
	"hexastore/internal/govern"
	"hexastore/internal/rdf"
)

// governStore builds a store whose <takes> self-join is expensive
// enough to outlive a short query timeout.
func governStore(students, courses, deg int) *core.Store {
	st := core.New()
	takes := rdf.NewIRI("http://ex/takes")
	for s := 0; s < students; s++ {
		subj := rdf.NewIRI(fmt.Sprintf("http://ex/student%03d", s))
		for d := 0; d < deg; d++ {
			st.AddTriple(rdf.T(subj, takes, rdf.NewIRI(fmt.Sprintf("http://ex/course%02d", (s+d*7)%courses))))
		}
	}
	return st
}

const governJoin = `SELECT ?a ?b WHERE { ?a <http://ex/takes> ?c . ?b <http://ex/takes> ?c }`

func governServer(t *testing.T, st *core.Store, cfg govern.Config, timeout time.Duration, budget int64) (*httptest.Server, *Server) {
	t.Helper()
	srv := New(st)
	cfg.Logf = func(string, ...any) {}
	srv.SetGovernor(cfg)
	srv.SetQueryLimits(timeout, budget)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

func queryStatus(t *testing.T, base, query string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + "/sparql?query=" + url.QueryEscape(query))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

// TestQueryTimeoutAnswers408 asserts a query that outlives the
// per-query deadline maps to 408, not 500, and bumps the canceled
// counter.
func TestQueryTimeoutAnswers408(t *testing.T) {
	ts, srv := governServer(t, governStore(800, 40, 20), govern.Config{}, 5*time.Millisecond, 0)
	code, body := queryStatus(t, ts.URL, governJoin)
	if code != http.StatusRequestTimeout {
		t.Fatalf("status = %d (%s), want 408", code, body)
	}
	if st := srv.GovernorStats(); st.Canceled < 1 {
		t.Fatalf("canceled counter = %d, want >= 1", st.Canceled)
	}
}

// TestBudgetKillAnswers503 asserts a budget-killed query maps to
// 503 + Retry-After and bumps the budget-kill counter. The tiny budget
// makes the hard cap (4x) unreachable for the join's result rows.
func TestBudgetKillAnswers503(t *testing.T) {
	ts, srv := governServer(t, governStore(120, 12, 6), govern.Config{}, 0, 4096)
	code, body := queryStatus(t, ts.URL, governJoin)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503", code, body)
	}
	if !strings.Contains(body, "budget") {
		t.Fatalf("body %q does not mention the budget", body)
	}
	if st := srv.GovernorStats(); st.BudgetKills < 1 {
		t.Fatalf("budgetKills counter = %d, want >= 1", st.BudgetKills)
	}
}

// TestAdmissionRejectAnswers503 fills the single execution slot with a
// slow query and asserts the next arrival sheds with 503 + Retry-After
// (no queue configured) and counts as rejected.
func TestAdmissionRejectAnswers503(t *testing.T) {
	ts, srv := governServer(t, governStore(800, 40, 20),
		govern.Config{MaxConcurrent: 1, MaxQueue: 0}, 300*time.Millisecond, 0)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		queryStatus(t, ts.URL, governJoin) // occupies the slot until its timeout
	}()
	time.Sleep(50 * time.Millisecond)
	code, body := queryStatus(t, ts.URL, governJoin)
	wg.Wait()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503", code, body)
	}
	if st := srv.GovernorStats(); st.Rejected < 1 {
		t.Fatalf("rejected counter = %d, want >= 1", st.Rejected)
	}
}

// TestClientDisconnectObservedAs499 cancels the client's request
// mid-query and asserts the governor records it as canceled; the 499
// never reaches a client (the connection is gone), so the observable
// contract is the counter plus a non-nil transport error.
func TestClientDisconnectObservedAs499(t *testing.T) {
	ts, srv := governServer(t, governStore(800, 40, 20), govern.Config{}, 0, 0)
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET",
		ts.URL+"/sparql?query="+url.QueryEscape(governJoin), nil)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		resp.Body.Close()
		t.Fatal("request succeeded; expected the cancel to kill it")
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.GovernorStats().Canceled < 1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if st := srv.GovernorStats(); st.Canceled < 1 {
		t.Fatalf("canceled counter = %d, want >= 1 after client disconnect", st.Canceled)
	}
}

// TestWriteQueryErrorStatusMapping unit-tests the error→status table,
// including the 499 no live client can observe.
func TestWriteQueryErrorStatusMapping(t *testing.T) {
	srv := New(core.New())
	cases := []struct {
		err  error
		want int
	}{
		{context.DeadlineExceeded, http.StatusRequestTimeout},
		{context.Canceled, statusClientClosedRequest},
		{fmt.Errorf("wrap: %w", govern.ErrBudgetExceeded), http.StatusServiceUnavailable},
		{fmt.Errorf("wrap: %w", govern.ErrRejected), http.StatusServiceUnavailable},
		{fmt.Errorf("some engine failure"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		w := httptest.NewRecorder()
		r := httptest.NewRequest("GET", "/sparql", nil)
		srv.writeQueryError(w, r, tc.err)
		if w.Code != tc.want {
			t.Errorf("writeQueryError(%v) = %d, want %d", tc.err, w.Code, tc.want)
		}
		if tc.want == http.StatusServiceUnavailable && w.Header().Get("Retry-After") == "" {
			t.Errorf("writeQueryError(%v): missing Retry-After", tc.err)
		}
	}
}

// TestStatsIncludesGovernCounters asserts /stats carries the governor
// section once one is installed.
func TestStatsIncludesGovernCounters(t *testing.T) {
	ts, _ := governServer(t, governStore(10, 4, 2), govern.Config{}, 0, 0)
	if code, _ := queryStatus(t, ts.URL, `SELECT ?a WHERE { ?a <http://ex/takes> ?c }`); code != 200 {
		t.Fatalf("warm-up query status = %d", code)
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Govern *govern.Stats `json:"govern"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Govern == nil {
		t.Fatal("/stats has no govern section")
	}
	if out.Govern.Admitted < 1 {
		t.Fatalf("admitted = %d, want >= 1", out.Govern.Admitted)
	}
}
