package server

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"time"

	"hexastore/internal/shard"
)

// Health and readiness. The two probes answer different questions:
//
//   - /healthz is liveness: is the process up and able to run a
//     handler? It never consults the store — a degraded store should be
//     pulled from rotation (readiness), not restarted (liveness), since
//     a restart loses nothing but also fixes nothing and loses caches.
//
//   - /readyz is readiness: should a load balancer send traffic here
//     *right now*? It fails while the server is draining for shutdown,
//     while the backend is sticky-degraded (poisoned WAL, failed
//     compaction), and — on a replica — while any WAL follower is
//     degraded or has not heard from its leader within the configured
//     lag bound. The body lists every failing reason so an operator can
//     see why a node left rotation from the probe output alone.
//
// Both bypass the load-shedding and timeout middleware: the moments a
// server is saturated or degraded are exactly the moments its probes
// must still answer.

// SetDraining flips the /readyz outcome; the server itself keeps
// serving. Call with true before stopping the listener so load
// balancers observe the 503 and drain traffic ahead of the actual
// shutdown (cmd/hexserver pairs it with a -drain-grace sleep).
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports whether SetDraining(true) was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// SetDegradedCheck installs the backend's sticky-failure probe —
// typically (*delta.Overlay).Degraded or (*shard.Cluster).Degraded. A
// non-nil error fails /readyz and sheds mutating requests with 503:
// once the WAL is poisoned, acknowledging a write would promise a
// durability the store can no longer provide. Configure before Handler.
func (s *Server) SetDegradedCheck(fn func() error) { s.degradedCheck = fn }

// SetFollowers registers the replica's WAL followers for readiness.
// /readyz fails while any follower is sticky-degraded, and — when
// maxLag > 0 — while any follower has not heard from its leader (a
// frame, a keepalive, or a successful file-mode poll) within maxLag.
// Configure before Handler.
func (s *Server) SetFollowers(maxLag time.Duration, fs ...*shard.Follower) {
	s.followers = fs
	s.maxLag = maxLag
	s.metricsInit()
	for i, f := range fs {
		f := f
		s.reg.GaugeFunc("hex_follower_lag_seconds",
			"Seconds since the follower last heard from its leader (-1 before first contact).",
			func() float64 { return f.Stats().LagSeconds },
			"follower", fmt.Sprintf("%d", i))
	}
}

// SetMaxInflight caps concurrently served data requests at n; arrivals
// beyond the cap are shed immediately with 503 + Retry-After rather
// than queueing without bound (unbounded queues turn overload into
// latency collapse for every request instead of fast failure for the
// excess). n <= 0 disables shedding. Configure before Handler.
func (s *Server) SetMaxInflight(n int) {
	if n <= 0 {
		s.inflight = nil
		return
	}
	s.inflight = make(chan struct{}, n)
}

// SetRequestTimeout bounds each data request end-to-end; expiry answers
// 503. 0 disables the limit. Configure before Handler.
func (s *Server) SetRequestTimeout(d time.Duration) { s.reqTimeout = d }

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	reasons := s.readyReasons()
	w.Header().Set("Content-Type", "application/json")
	if len(reasons) > 0 {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck // best-effort probe body
		"ready":   len(reasons) == 0,
		"reasons": reasons,
	})
}

// readyReasons collects every currently-failing readiness condition
// (empty means ready).
func (s *Server) readyReasons() []string {
	reasons := []string{}
	if s.draining.Load() {
		reasons = append(reasons, "draining: shutting down")
	}
	if s.degradedCheck != nil {
		if err := s.degradedCheck(); err != nil {
			reasons = append(reasons, "store degraded: "+err.Error())
		}
	}
	for i, f := range s.followers {
		st := f.Stats()
		if st.Degraded {
			r := fmt.Sprintf("follower %d degraded after %d failed connects", i, st.ConsecutiveFailures)
			if st.LastError != "" {
				r += ": " + st.LastError
			}
			reasons = append(reasons, r)
		}
		if s.maxLag <= 0 {
			continue
		}
		switch {
		case st.LagSeconds < 0:
			reasons = append(reasons, fmt.Sprintf("follower %d has no leader contact yet", i))
		case st.LagSeconds > s.maxLag.Seconds():
			reasons = append(reasons, fmt.Sprintf("follower %d last heard from leader %.1fs ago (bound %s)", i, st.LagSeconds, s.maxLag))
		}
	}
	return reasons
}

// shedDegradedWrite rejects a mutating request with 503 + Retry-After
// while the backend is sticky-degraded, and reports whether it did.
// Queries keep flowing — reads are still correct against the last
// consistent version; it is only new durability the store cannot offer.
func (s *Server) shedDegradedWrite(w http.ResponseWriter) bool {
	if s.degradedCheck == nil {
		return false
	}
	err := s.degradedCheck()
	if err == nil {
		return false
	}
	w.Header().Set("Retry-After", "1")
	httpError(w, http.StatusServiceUnavailable, "store degraded, writes shed: %v", err)
	return true
}

// shedLoad is the saturation middleware: requests take a slot from the
// inflight semaphore or are shed with 503 + Retry-After.
func (s *Server) shedLoad(next http.Handler) http.Handler {
	if s.inflight == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Governed /sparql traffic is admitted by the query governor
		// (bounded deadline-aware queue, typed rejections) instead of
		// the generic semaphore.
		if s.gov != nil && r.URL.Path == "/sparql" {
			next.ServeHTTP(w, r)
			return
		}
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
			next.ServeHTTP(w, r)
		default:
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, "server saturated: %d requests in flight", cap(s.inflight))
		}
	})
}

// recoverPanics converts a panicking request into a 500 response
// instead of letting one bad query kill the whole process (net/http
// would only kill the goroutine, but a panic during a shared-lock
// region can leave the server wedged; answering cleanly also gives the
// client a response instead of a reset). http.ErrAbortHandler is
// re-panicked — that is net/http's own abort protocol.
func recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			log.Printf("server: panic serving %s %s: %v", r.Method, r.URL.Path, p)
			httpError(w, http.StatusInternalServerError, "internal error: %v", p)
		}()
		next.ServeHTTP(w, r)
	})
}
