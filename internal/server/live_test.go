package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"hexastore/internal/core"
	"hexastore/internal/delta"
	"hexastore/internal/graph"
)

// liveServer starts an httptest server over a WAL-backed delta overlay.
func liveServer(t *testing.T) (*httptest.Server, *delta.Overlay) {
	t.Helper()
	ov, err := delta.Open(graph.Memory(core.New()), delta.Options{
		WALPath: filepath.Join(t.TempDir(), "wal.log"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ov.Close() })
	ts := httptest.NewServer(NewGraph(ov).Handler())
	t.Cleanup(ts.Close)
	return ts, ov
}

// TestStatsReportsDeltaAndWAL: /stats on an overlay backend must expose
// the live-update subsystem's state — delta size and WAL footprint.
func TestStatsReportsDeltaAndWAL(t *testing.T) {
	ts, _ := liveServer(t)

	resp, err := http.PostForm(ts.URL+"/sparql", url.Values{
		"update": {`INSERT DATA { <a> <p> <b> . <b> <p> <c> }`},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if got := stats["triples"]; got != float64(2) {
		t.Fatalf("triples = %v, want 2", got)
	}
	if got := stats["deltaAdds"]; got != float64(2) {
		t.Fatalf("deltaAdds = %v, want 2", got)
	}
	if got, ok := stats["walBytes"].(float64); !ok || got <= 8 {
		t.Fatalf("walBytes = %v, want > 8 (header plus two records)", stats["walBytes"])
	}
	if _, ok := stats["compactions"]; !ok {
		t.Fatalf("stats missing compactions: %v", stats)
	}
	if _, ok := stats["walPath"]; !ok {
		t.Fatalf("stats missing walPath: %v", stats)
	}
}

// TestLiveConcurrentQueryUpdate hammers the /sparql endpoint with
// concurrent SELECTs and UPDATEs over the overlay backend — the
// server-level reader/writer isolation path (no request lock), run under
// -race in CI. Each query response must be internally consistent: the
// two-pattern join can only bind members whose both edges are visible.
func TestLiveConcurrentQueryUpdate(t *testing.T) {
	ts, ov := liveServer(t)

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				u := fmt.Sprintf(
					`INSERT DATA { <m%d-%d> <in> <club> . <m%d-%d> <badge> <club> }`, w, i, w, i)
				resp, err := http.PostForm(ts.URL+"/sparql", url.Values{"update": {u}})
				if err != nil {
					t.Errorf("update: %v", err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("update status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	queryErrs := make(chan error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				q := url.QueryEscape(`SELECT ?m WHERE { ?m <in> <club> . ?m <badge> <club> }`)
				resp, err := http.Get(ts.URL + "/sparql?query=" + q)
				if err != nil {
					queryErrs <- err
					return
				}
				var body struct {
					Results struct {
						Bindings []map[string]any `json:"bindings"`
					} `json:"results"`
				}
				err = json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				if err != nil {
					queryErrs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(queryErrs)
	for err := range queryErrs {
		t.Error(err)
	}

	if got := ov.Len(); got != 160 {
		t.Fatalf("final triple count %d, want 160", got)
	}
}

// TestLiveTriplesBatchIngest: the /triples bulk endpoint goes through
// the overlay's atomic batch path.
func TestLiveTriplesBatchIngest(t *testing.T) {
	ts, ov := liveServer(t)
	var sb strings.Builder
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&sb, "<http://ex/s%d> <http://ex/p> <http://ex/o> .\n", i)
	}
	resp, err := http.Post(ts.URL+"/triples", "application/n-triples", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["added"] != 20 || out["total"] != 20 {
		t.Fatalf("ingest response %v, want added=20 total=20", out)
	}
	if st := ov.Stats(); st.WALBytes <= 8 {
		t.Fatalf("WAL empty after ingest: %+v", st)
	}
}
