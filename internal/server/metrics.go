package server

// Prometheus-style instrumentation for the HTTP serving tier. Each
// Server owns a registry for its own families (per-endpoint HTTP
// latency and status counts, governor counters, follower lag, runtime
// gauges); /metrics merges it with obs.Default, where the storage
// packages (wal, delta, sparql spill) publish their process-wide
// families. A fresh Server re-registering runtime gauges on its own
// registry is always consistent; the governor funcs are re-pointed by
// SetGovernor, so the most recently configured governor is the one
// observed.

import (
	"net/http"
	"runtime"
	"strconv"
	"time"

	"hexastore/internal/obs"
	"hexastore/internal/sparql"
)

// metricsInit lazily builds the per-server registry and its static
// families; called from every registration site so configuration order
// (SetGovernor/SetFollowers before or after Handler) does not matter.
func (s *Server) metricsInit() {
	if s.reg != nil {
		return
	}
	s.reg = obs.NewRegistry()
	s.httpSeconds = s.reg.HistogramVec(
		"hex_http_request_seconds",
		"HTTP request latency in seconds.",
		obs.LatencyBuckets, "endpoint")
	s.httpRequests = s.reg.CounterVec(
		"hex_http_requests_total",
		"HTTP requests served.",
		"endpoint", "code")
	s.reg.GaugeFunc("hex_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	s.reg.GaugeFunc("hex_heap_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	s.registerCacheMetrics()
}

// registerCacheMetrics publishes the planner's plan- and result-cache
// counters. Func-backed against the live planner accessor, so in-place
// stats refreshes and cache retuning are always reflected.
func (s *Server) registerCacheMetrics() {
	cs := func() sparql.CacheStats { return s.planner().CacheStats() }
	s.reg.CounterFunc("hex_plan_cache_hits_total",
		"Queries whose join order was served from the plan cache.",
		func() float64 { return float64(cs().PlanHits) })
	s.reg.CounterFunc("hex_plan_cache_misses_total",
		"Queries planned from scratch (shape absent or statistics epoch stale).",
		func() float64 { return float64(cs().PlanMisses) })
	s.reg.CounterFunc("hex_plan_cache_evictions_total",
		"Plan-cache entries evicted by the LRU capacity.",
		func() float64 { return float64(cs().PlanEvictions) })
	s.reg.GaugeFunc("hex_plan_cache_entries",
		"Query shapes currently memoized in the plan cache.",
		func() float64 { return float64(cs().PlanEntries) })
	s.reg.CounterFunc("hex_result_cache_hits_total",
		"Queries answered from the snapshot-epoch result cache.",
		func() float64 { return float64(cs().ResultHits) })
	s.reg.CounterFunc("hex_result_cache_misses_total",
		"Cacheable queries evaluated because no current-epoch entry existed.",
		func() float64 { return float64(cs().ResultMisses) })
	s.reg.CounterFunc("hex_result_cache_evictions_total",
		"Result-cache entries evicted by the byte cap.",
		func() float64 { return float64(cs().ResultEvictions) })
	s.reg.GaugeFunc("hex_result_cache_bytes",
		"Estimated bytes of cached query results resident now.",
		func() float64 { return float64(cs().ResultBytes) })
	s.reg.GaugeFunc("hex_result_cache_entries",
		"Query results resident in the result cache now.",
		func() float64 { return float64(cs().ResultEntries) })
	s.reg.CounterFunc("hex_cache_epoch_churn_total",
		"Times a write (epoch change) purged the resident result cache.",
		func() float64 { return float64(cs().EpochChurn) })
}

// registerGovernorMetrics points the governor families at the given
// governor's counters. Func-backed, so /metrics always reflects the
// live Stats() values without a second bookkeeping path.
func (s *Server) registerGovernorMetrics() {
	s.metricsInit()
	gov := s.gov
	s.reg.GaugeFunc("hex_govern_active",
		"Governed queries currently executing.",
		func() float64 { return float64(gov.Stats().Active) })
	s.reg.GaugeFunc("hex_govern_queued",
		"Governed queries waiting for admission.",
		func() float64 { return float64(gov.Stats().Queued) })
	s.reg.CounterFunc("hex_govern_admitted_total",
		"Queries admitted by the governor.",
		func() float64 { return float64(gov.Stats().Admitted) })
	s.reg.CounterFunc("hex_govern_rejected_total",
		"Queries rejected at admission (queue full or wait timeout).",
		func() float64 { return float64(gov.Stats().Rejected) })
	s.reg.CounterFunc("hex_govern_canceled_total",
		"Queries ended by cancellation or deadline.",
		func() float64 { return float64(gov.Stats().Canceled) })
	s.reg.CounterFunc("hex_govern_budget_kills_total",
		"Queries killed for crossing their hard memory cap.",
		func() float64 { return float64(gov.Stats().BudgetKills) })
	s.reg.CounterFunc("hex_govern_spilled_bytes_total",
		"Bytes of join state spilled to disk by governed queries.",
		func() float64 { return float64(gov.Stats().SpilledBytes) })
	s.reg.CounterFunc("hex_govern_slow_queries_total",
		"Queries at or over the slow-query threshold.",
		func() float64 { return float64(gov.Stats().SlowQueries) })
}

// statusWriter captures the response status for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.code == 0 {
		sw.code = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

// instrument wraps one endpoint with latency and status recording.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.httpSeconds.With(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		t0 := time.Now()
		h(sw, r)
		hist.Observe(time.Since(t0).Seconds())
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		s.httpRequests.With(endpoint, strconv.Itoa(sw.code)).Inc()
	}
}
