package server

// Tests for the observability layer: /metrics exposition, ?explain=1
// and the EXPLAIN prefixes over HTTP, per-shard spans on a sharded
// backend, and the golden /stats key sets per backend mode.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"hexastore/internal/core"
	"hexastore/internal/delta"
	"hexastore/internal/disk"
	"hexastore/internal/govern"
	"hexastore/internal/graph"
	"hexastore/internal/rdf"
)

func TestMetricsEndpoint(t *testing.T) {
	st := core.New()
	st.AddTriple(rdf.T(rdf.NewIRI("http://ex/a"), rdf.NewIRI("http://ex/p"), rdf.NewIRI("http://ex/b")))
	srv := New(st)
	srv.SetGovernor(govern.Config{MaxConcurrent: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Drive one query so the http and govern families have data.
	resp, err := http.Get(ts.URL + "/sparql?query=" + url.QueryEscape(`SELECT ?s WHERE { ?s ?p ?o }`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, family := range []string{
		"hex_http_request_seconds",
		"hex_http_requests_total",
		"hex_govern_admitted_total",
		"hex_govern_rejected_total",
		"hex_goroutines",
		"hex_heap_bytes",
		// obs.Default families registered by the storage packages; their
		// values may be zero here, but the families must be exposed.
		"hex_wal_fsync_seconds",
		"hex_wal_appended_bytes_total",
		"hex_delta_compactions_total",
		"hex_sparql_spill_bytes_total",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("/metrics missing family %s", family)
		}
	}
	if !strings.Contains(text, `endpoint="/sparql"`) {
		t.Error("/metrics missing per-endpoint label for /sparql")
	}
	if !strings.Contains(text, "# TYPE hex_http_request_seconds histogram") {
		t.Error("/metrics missing histogram TYPE line")
	}
	if !strings.Contains(text, `le="+Inf"`) {
		t.Error("/metrics missing +Inf bucket")
	}
}

// explainResults is sparqlResults plus the explain tree.
type explainResults struct {
	sparqlResults
	Explain *explainSpan `json:"explain"`
}

type explainSpan struct {
	Name     string         `json:"name"`
	Attrs    map[string]any `json:"attrs"`
	Children []*explainSpan `json:"children"`
}

func (sp *explainSpan) find(prefix string) []*explainSpan {
	var out []*explainSpan
	if strings.HasPrefix(sp.Name, prefix) {
		out = append(out, sp)
	}
	for _, c := range sp.Children {
		out = append(out, c.find(prefix)...)
	}
	return out
}

func TestExplainParamAndPrefix(t *testing.T) {
	ts, _ := newTestServer(t)

	// ?explain=1 attaches the executed trace to a plain query.
	q := url.QueryEscape(`SELECT ?who WHERE { <http://ex/alice> <http://ex/knows> ?who }`)
	var res explainResults
	if code := getJSON(t, ts.URL+"/sparql?explain=1&query="+q, &res); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(res.Results.Bindings) != 1 {
		t.Fatalf("bindings = %d, want 1", len(res.Results.Bindings))
	}
	if res.Explain == nil || res.Explain.Name != "query" {
		t.Fatalf("explain tree = %+v", res.Explain)
	}
	if steps := res.Explain.find("step["); len(steps) != 1 {
		t.Fatalf("step spans = %d, want 1", len(steps))
	} else if _, ok := steps[0].Attrs["rowsOut"]; !ok {
		t.Error("executed step span missing rowsOut")
	}

	// Without the param or prefix there is no explain field.
	var plain explainResults
	if code := getJSON(t, ts.URL+"/sparql?query="+q, &plain); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if plain.Explain != nil {
		t.Error("unrequested explain field present")
	}

	// The EXPLAIN prefix returns the plan tree and no bindings.
	pq := url.QueryEscape(`EXPLAIN SELECT ?who WHERE { <http://ex/alice> <http://ex/knows> ?who }`)
	var planned explainResults
	if code := getJSON(t, ts.URL+"/sparql?query="+pq, &planned); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(planned.Results.Bindings) != 0 {
		t.Fatalf("EXPLAIN returned %d bindings, want 0", len(planned.Results.Bindings))
	}
	if planned.Explain == nil {
		t.Fatal("EXPLAIN missing explain tree")
	}
	steps := planned.Explain.find("step[")
	if len(steps) != 1 {
		t.Fatalf("EXPLAIN step spans = %d, want 1", len(steps))
	}
	if _, ok := steps[0].Attrs["estRows"]; !ok {
		t.Error("plan step missing estRows")
	}
	if _, ok := steps[0].Attrs["rowsOut"]; ok {
		t.Error("plan-only step has rowsOut — it executed")
	}
}

// TestExplainAnalyzeSharded: EXPLAIN ANALYZE over a 3-shard cluster
// surfaces the scatter-gather leg — one span per shard with
// scanned/pruned stream counts.
func TestExplainAnalyzeSharded(t *testing.T) {
	ts, _ := newClusterServer(t)
	resp, err := http.PostForm(ts.URL+"/sparql", url.Values{"update": {`INSERT DATA {
		<http://ex/a> <http://ex/p> <http://ex/b> .
		<http://ex/b> <http://ex/p> <http://ex/c> .
		<http://ex/c> <http://ex/p> <http://ex/d> }`}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	q := url.QueryEscape(`EXPLAIN ANALYZE SELECT ?x ?z WHERE {
		?x <http://ex/p> ?y . ?y <http://ex/p> ?z }`)
	var res explainResults
	if code := getJSON(t, ts.URL+"/sparql?query="+q, &res); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(res.Results.Bindings) != 2 {
		t.Fatalf("bindings = %d, want 2", len(res.Results.Bindings))
	}
	if res.Explain == nil {
		t.Fatal("missing explain tree")
	}
	scatter := res.Explain.find("scatter")
	if len(scatter) != 1 {
		t.Fatalf("scatter spans = %d, want 1", len(scatter))
	}
	shardSpans := res.Explain.find("shard[")
	if len(shardSpans) != 3 {
		t.Fatalf("per-shard spans = %d, want 3", len(shardSpans))
	}
	touched := false
	for _, sp := range shardSpans {
		if _, ok := sp.Attrs["streamsScanned"]; ok {
			touched = true
		}
	}
	if !touched {
		t.Error("no shard span recorded a scanned stream")
	}
}

// TestSlowQueryLogIncludesSpans: with the slow-query log live, every
// query is traced and a slow line names its most expensive spans.
func TestSlowQueryLogIncludesSpans(t *testing.T) {
	st := core.New()
	st.AddTriple(rdf.T(rdf.NewIRI("http://ex/a"), rdf.NewIRI("http://ex/p"), rdf.NewIRI("http://ex/b")))
	var mu sync.Mutex
	var lines []string
	srv := New(st)
	srv.SetGovernor(govern.Config{
		MaxConcurrent: 2,
		SlowQuery:     time.Nanosecond, // everything is slow
		Logf: func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/sparql?query=" + url.QueryEscape(`SELECT ?s WHERE { ?s ?p ?o }`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	mu.Lock()
	defer mu.Unlock()
	if len(lines) == 0 {
		t.Fatal("no slow-query line logged")
	}
	if !strings.Contains(lines[0], "step[") && !strings.Contains(lines[0], "branch") {
		t.Errorf("slow-query line has no span detail: %q", lines[0])
	}
}

// statsKeys fetches /stats and returns its key set.
func statsKeys(t *testing.T, tsURL string) map[string]any {
	t.Helper()
	var out map[string]any
	if code := getJSON(t, tsURL+"/stats", &out); code != 200 {
		t.Fatalf("stats status = %d", code)
	}
	return out
}

func wantKeys(t *testing.T, mode string, got map[string]any, want []string) {
	t.Helper()
	for _, k := range want {
		if _, ok := got[k]; !ok {
			t.Errorf("%s /stats missing key %q (got %v)", mode, k, keysOf(got))
		}
	}
}

func rejectKeys(t *testing.T, mode string, got map[string]any, reject []string) {
	t.Helper()
	for _, k := range reject {
		if _, ok := got[k]; ok {
			t.Errorf("%s /stats has unexpected key %q", mode, k)
		}
	}
}

func keysOf(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestStatsGoldenShape pins the /stats key set per backend mode, so a
// dashboard built against one mode keeps working after refactors.
func TestStatsGoldenShape(t *testing.T) {
	base := []string{"triples", "dictionaryTerms", "distinctSubjects", "distinctPreds", "distinctObjects"}

	t.Run("memory", func(t *testing.T) {
		ts, _ := newTestServer(t)
		got := statsKeys(t, ts.URL)
		wantKeys(t, "memory", got, append(base,
			"headers", "vectorEntries", "listEntries", "expansionFactor",
			"indexSizeBytes", "indexBytes", "indexBytesPerTriple", "indexCompressed"))
		rejectKeys(t, "memory", got, []string{"shards", "deltaAdds", "diskBytes", "govern"})
	})

	t.Run("disk", func(t *testing.T) {
		ds, err := disk.Create(t.TempDir(), disk.Options{CacheSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ds.Close() })
		if _, err := ds.AddTriple(rdf.T(rdf.NewIRI("a"), rdf.NewIRI("p"), rdf.NewIRI("b"))); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(NewGraph(graph.Disk(ds)).Handler())
		t.Cleanup(ts.Close)
		got := statsKeys(t, ts.URL)
		wantKeys(t, "disk", got, append(base, "diskBytes", "diskBytesPerTriple"))
		rejectKeys(t, "disk", got, []string{"shards", "deltaAdds", "headers"})
	})

	t.Run("overlay", func(t *testing.T) {
		ov, err := delta.Open(graph.Memory(core.New()), delta.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ov.Close() })
		ts := httptest.NewServer(NewGraph(ov).Handler())
		t.Cleanup(ts.Close)
		got := statsKeys(t, ts.URL)
		wantKeys(t, "overlay", got, append(base,
			"deltaAdds", "deltaDels", "compactThreshold", "compactions", "mainTriples"))
		rejectKeys(t, "overlay", got, []string{"shards"})
	})

	t.Run("shards", func(t *testing.T) {
		ts, _ := newClusterServer(t)
		got := statsKeys(t, ts.URL)
		wantKeys(t, "shards", got, append(base, "shards", "perShard"))
		rejectKeys(t, "shards", got, []string{"deltaAdds", "headers", "diskBytes"})
	})

	t.Run("govern", func(t *testing.T) {
		st := core.New()
		srv := New(st)
		srv.SetGovernor(govern.Config{MaxConcurrent: 2, SlowQuery: time.Hour})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		got := statsKeys(t, ts.URL)
		wantKeys(t, "govern", got, append(base, "govern"))
		gov, ok := got["govern"].(map[string]any)
		if !ok {
			t.Fatalf("govern section = %T", got["govern"])
		}
		for _, k := range []string{"maxConcurrent", "active", "queued", "admitted", "rejected", "canceled", "budgetKills", "spilledBytes", "slowQueries"} {
			if _, ok := gov[k]; !ok {
				t.Errorf("govern section missing %q", k)
			}
		}
	})
}
