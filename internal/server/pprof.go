package server

import (
	"net/http"
	"net/http/pprof"
)

// mountPprof exposes the runtime profiling endpoints on the given mux.
// The handlers are mounted explicitly rather than relying on the
// package's DefaultServeMux side effect, because the server builds its
// own mux — and the endpoints only appear at all when the operator
// opted in (hexserver -pprof).
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
