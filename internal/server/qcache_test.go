package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"hexastore/internal/core"
	"hexastore/internal/delta"
	"hexastore/internal/dictionary"
	"hexastore/internal/disk"
	"hexastore/internal/graph"
	"hexastore/internal/rdf"
	"hexastore/internal/shard"
)

// cacheServers builds one HTTP server per serving substrate — memory,
// disk, 3-shard cluster, and a compactable delta overlay — each seeded
// with the same two triples and running the default cache configuration
// (both caches on, as hexserver deploys them).
func cacheServers(t *testing.T) map[string]*httptest.Server {
	t.Helper()
	seed := []rdf.Triple{
		rdf.T(rdf.NewIRI("http://ex/alice"), rdf.NewIRI("http://ex/knows"), rdf.NewIRI("http://ex/bob")),
		rdf.T(rdf.NewIRI("http://ex/bob"), rdf.NewIRI("http://ex/knows"), rdf.NewIRI("http://ex/carol")),
	}
	servers := make(map[string]*httptest.Server)
	serve := func(name string, g graph.Graph) {
		ts := httptest.NewServer(NewGraph(g).Handler())
		t.Cleanup(ts.Close)
		servers[name] = ts
	}

	mem := core.New()
	for _, tr := range seed {
		mem.AddTriple(tr)
	}
	serve("memory", graph.Memory(mem))

	ds, err := disk.Create(t.TempDir(), disk.Options{CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	for _, tr := range seed {
		if _, err := graph.AddTriple(graph.Disk(ds), tr); err != nil {
			t.Fatal(err)
		}
	}
	serve("disk", graph.Disk(ds))

	dict := dictionary.New()
	cl, err := shard.OpenCluster(shard.Config{
		Shards: 3,
		Dict:   dict,
		Load:   core.EncodeTriples(dict, seed, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	serve("shard3", cl)

	ov, err := delta.Open(graph.Memory(core.New()), delta.Options{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ov.Close() })
	for _, tr := range seed {
		if _, err := graph.AddTriple(ov, tr); err != nil {
			t.Fatal(err)
		}
	}
	serve("overlay", ov)

	return servers
}

// queryKnown runs the fixed lookup and returns the bound objects.
func queryKnown(t *testing.T, base string) []string {
	t.Helper()
	q := url.QueryEscape(`SELECT ?o WHERE { ?s <http://ex/knows> ?o } ORDER BY ?o`)
	var res sparqlResults
	if code := getJSON(t, base+"/sparql?query="+q, &res); code != http.StatusOK {
		t.Fatalf("query status = %d", code)
	}
	var out []string
	for _, b := range res.Results.Bindings {
		out = append(out, b["o"].Value)
	}
	return out
}

type cacheStatsBlock struct {
	Cache struct {
		PlanCacheHits   uint64 `json:"planCacheHits"`
		PlanCacheMisses uint64 `json:"planCacheMisses"`
		ResultHits      uint64 `json:"resultCacheHits"`
		ResultMisses    uint64 `json:"resultCacheMisses"`
		ResultEnabled   bool   `json:"resultCacheEnabled"`
		EpochChurn      uint64 `json:"epochChurn"`
	} `json:"cache"`
}

// TestResultCacheInvalidationHTTP proves at the HTTP level, on every
// substrate, that a write between two identical queries yields the
// post-write answer, and that repeating a query is served from the
// result cache (visible in /stats).
func TestResultCacheInvalidationHTTP(t *testing.T) {
	for name, ts := range cacheServers(t) {
		t.Run(name, func(t *testing.T) {
			want := []string{"http://ex/bob", "http://ex/carol"}
			for i := 0; i < 2; i++ {
				if got := queryKnown(t, ts.URL); fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("run %d: rows = %v, want %v", i, got, want)
				}
			}
			var st cacheStatsBlock
			if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
				t.Fatalf("stats status = %d", code)
			}
			if !st.Cache.ResultEnabled || st.Cache.ResultHits < 1 {
				t.Fatalf("cache stats = %+v, want resultCacheHits >= 1", st.Cache)
			}

			postUpdate(t, ts.URL, `INSERT DATA { <http://ex/carol> <http://ex/knows> <http://ex/dave> }`, true)
			want = append(want, "http://ex/dave")
			if got := queryKnown(t, ts.URL); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("post-write rows = %v, want %v (stale cache served?)", got, want)
			}

			postUpdate(t, ts.URL, `DELETE DATA { <http://ex/carol> <http://ex/knows> <http://ex/dave> }`, true)
			want = want[:2]
			if got := queryKnown(t, ts.URL); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("post-delete rows = %v, want %v (stale cache served?)", got, want)
			}
		})
	}
}

// TestResultCacheSurvivesCompactionHTTP: on the overlay server, a
// compaction between two identical queries neither churns the cache nor
// changes the answer (the rebuilt state is content-identical, so the
// epoch token is preserved).
func TestResultCacheSurvivesCompactionHTTP(t *testing.T) {
	ov, err := delta.Open(graph.Memory(core.New()), delta.Options{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ov.Close()
	srv := NewGraph(ov)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postUpdate(t, ts.URL, `INSERT DATA { <http://ex/alice> <http://ex/knows> <http://ex/bob> .
		<http://ex/bob> <http://ex/knows> <http://ex/carol> }`, true)
	want := []string{"http://ex/bob", "http://ex/carol"}
	if got := queryKnown(t, ts.URL); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("rows = %v", got)
	}
	var before cacheStatsBlock
	getJSON(t, ts.URL+"/stats", &before)

	if err := ov.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := queryKnown(t, ts.URL); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("post-compaction rows = %v", got)
	}
	var after cacheStatsBlock
	getJSON(t, ts.URL+"/stats", &after)
	if after.Cache.ResultHits != before.Cache.ResultHits+1 {
		t.Fatalf("result hits %d -> %d, want a hit across compaction",
			before.Cache.ResultHits, after.Cache.ResultHits)
	}
	if after.Cache.EpochChurn != before.Cache.EpochChurn {
		t.Fatalf("compaction churned the result-cache epoch (%d -> %d)",
			before.Cache.EpochChurn, after.Cache.EpochChurn)
	}
}

// TestExplainBypassesResultCacheHTTP: ?explain=1 responses always carry
// a trace describing a real execution — repeated explain requests never
// count result-cache hits — while plain repeats of the same query do.
func TestExplainBypassesResultCacheHTTP(t *testing.T) {
	st := core.New()
	st.AddTriple(rdf.T(rdf.NewIRI("http://ex/a"), rdf.NewIRI("http://ex/p"), rdf.NewIRI("http://ex/b")))
	ts := httptest.NewServer(New(st).Handler())
	defer ts.Close()

	q := url.QueryEscape(`SELECT ?s WHERE { ?s <http://ex/p> ?o }`)
	for i := 0; i < 2; i++ {
		var out struct {
			Explain any `json:"explain"`
			Results struct {
				Bindings []map[string]any `json:"bindings"`
			} `json:"results"`
		}
		if code := getJSON(t, ts.URL+"/sparql?explain=1&query="+q, &out); code != http.StatusOK {
			t.Fatalf("status = %d", code)
		}
		if out.Explain == nil {
			t.Fatalf("run %d: no explain tree", i)
		}
		if len(out.Results.Bindings) != 1 {
			t.Fatalf("run %d: bindings = %d", i, len(out.Results.Bindings))
		}
	}
	var st1 cacheStatsBlock
	getJSON(t, ts.URL+"/stats", &st1)
	if st1.Cache.ResultHits != 0 || st1.Cache.ResultMisses != 0 {
		t.Fatalf("explain requests touched the result cache: %+v", st1.Cache)
	}
}

// TestCacheMetricsExposed: /metrics publishes the plan- and
// result-cache families, and the hit counters move after a repeated
// query.
func TestCacheMetricsExposed(t *testing.T) {
	st := core.New()
	st.AddTriple(rdf.T(rdf.NewIRI("http://ex/a"), rdf.NewIRI("http://ex/p"), rdf.NewIRI("http://ex/b")))
	ts := httptest.NewServer(New(st).Handler())
	defer ts.Close()

	q := url.QueryEscape(`SELECT ?s WHERE { ?s <http://ex/p> ?o }`)
	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/sparql?query=" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, family := range []string{
		"hex_plan_cache_hits_total", "hex_plan_cache_misses_total",
		"hex_result_cache_hits_total", "hex_result_cache_misses_total",
		"hex_result_cache_bytes", "hex_cache_epoch_churn_total",
	} {
		if !strings.Contains(text, family) {
			t.Fatalf("/metrics missing %s", family)
		}
	}
	if !strings.Contains(text, "hex_result_cache_hits_total 1") {
		t.Fatalf("expected one result-cache hit in metrics:\n%s", text)
	}
}
