// Package server exposes a Hexastore over HTTP: a SPARQL-subset query
// endpoint returning results in the SPARQL 1.1 Query Results JSON
// format, a bulk N-Triples/Turtle ingestion endpoint, and store
// statistics. cmd/hexserver wires it to a listener; the package itself
// is transport-agnostic and tested with httptest.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"hexastore/internal/core"
	"hexastore/internal/rdf"
	"hexastore/internal/sparql"
)

// Server serves one Hexastore. It is safe for concurrent use: the store
// carries its own synchronization and the planner pointer is guarded
// here.
type Server struct {
	st *core.Store

	mu sync.RWMutex
	pl *sparql.Planner
}

// New returns a Server over st.
func New(st *core.Store) *Server {
	return &Server{st: st, pl: sparql.NewPlanner(st)}
}

// Handler returns the HTTP routing table:
//
//	GET/POST /sparql   query=<SELECT ...>      → application/sparql-results+json
//	POST     /triples  body: N-Triples|Turtle  → {"added": n} (Content-Type text/turtle selects Turtle)
//	GET      /stats                            → index statistics JSON
//	GET      /healthz                          → 200 ok
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/sparql", s.handleSPARQL)
	mux.HandleFunc("/triples", s.handleTriples)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// planner returns the current planner snapshot.
func (s *Server) planner() *sparql.Planner {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pl
}

// refreshPlanner rebuilds statistics after mutations.
func (s *Server) refreshPlanner() {
	pl := sparql.NewPlanner(s.st)
	s.mu.Lock()
	s.pl = pl
	s.mu.Unlock()
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSPARQL(w http.ResponseWriter, r *http.Request) {
	var queryText string
	switch r.Method {
	case http.MethodGet:
		queryText = r.URL.Query().Get("query")
	case http.MethodPost:
		ct := r.Header.Get("Content-Type")
		if strings.HasPrefix(ct, "application/sparql-query") {
			body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
			if err != nil {
				httpError(w, http.StatusBadRequest, "read body: %v", err)
				return
			}
			queryText = string(body)
		} else {
			if err := r.ParseForm(); err != nil {
				httpError(w, http.StatusBadRequest, "parse form: %v", err)
				return
			}
			queryText = r.Form.Get("query")
		}
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	if strings.TrimSpace(queryText) == "" {
		httpError(w, http.StatusBadRequest, "missing query parameter")
		return
	}

	res, err := s.planner().Exec(queryText)
	if err != nil {
		httpError(w, http.StatusBadRequest, "query: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/sparql-results+json")
	json.NewEncoder(w).Encode(resultsJSON(res))
}

// resultsJSON renders a Result in the SPARQL 1.1 Query Results JSON
// format ({"head":{},"boolean":…} for ASK queries).
func resultsJSON(res *sparql.Result) map[string]any {
	if res.IsAsk {
		return map[string]any{
			"head":    map[string]any{},
			"boolean": res.Answer,
		}
	}
	bindings := make([]map[string]any, 0, len(res.Rows))
	for _, row := range res.Rows {
		b := make(map[string]any, len(row))
		for name, term := range row {
			var entry map[string]any
			switch term.Kind {
			case rdf.IRI:
				entry = map[string]any{"type": "uri", "value": term.Value}
			case rdf.Literal:
				entry = map[string]any{"type": "literal", "value": term.Value}
			case rdf.Blank:
				entry = map[string]any{"type": "bnode", "value": term.Value}
			}
			b[name] = entry
		}
		bindings = append(bindings, b)
	}
	return map[string]any{
		"head":    map[string]any{"vars": res.Vars},
		"results": map[string]any{"bindings": bindings},
	}
}

func (s *Server) handleTriples(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	ct := r.Header.Get("Content-Type")
	body := io.LimitReader(r.Body, 256<<20)

	var (
		triples []rdf.Triple
		err     error
	)
	if strings.HasPrefix(ct, "text/turtle") {
		triples, err = rdf.NewTurtleReader(body).ReadAll()
	} else {
		triples, err = rdf.NewReader(body).ReadAll()
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "parse: %v", err)
		return
	}
	added := 0
	for _, t := range triples {
		if _, _, _, ok := s.st.AddTriple(t); ok {
			added++
		}
	}
	if added > 0 {
		s.refreshPlanner()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]int{"added": added, "total": s.st.Len()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	stats := s.st.Stats()
	sum := s.planner().Stats()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"triples":          s.st.Len(),
		"headers":          stats.Headers,
		"vectorEntries":    stats.VectorEntries,
		"listEntries":      stats.ListEntries,
		"expansionFactor":  stats.ExpansionFactor(),
		"indexSizeBytes":   stats.SizeBytes(),
		"distinctSubjects": sum.DistinctS,
		"distinctPreds":    sum.DistinctP,
		"distinctObjects":  sum.DistinctO,
	})
}
