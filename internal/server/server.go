// Package server exposes a Graph backend over HTTP: a SPARQL-subset
// query endpoint returning results in the SPARQL 1.1 Query Results JSON
// format, a SPARQL UPDATE endpoint (INSERT DATA / DELETE DATA), a bulk
// N-Triples/Turtle ingestion endpoint, and store statistics. The server
// is backend-neutral — the same HTTP API serves the in-memory
// Hexastore, the disk-based Hexastore, or the baseline triples table.
// cmd/hexserver wires it to a listener; the package itself is
// transport-agnostic and tested with httptest.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hexastore/internal/core"
	"hexastore/internal/delta"
	"hexastore/internal/disk"
	"hexastore/internal/govern"
	"hexastore/internal/graph"
	"hexastore/internal/obs"
	"hexastore/internal/rdf"
	"hexastore/internal/shard"
	"hexastore/internal/sparql"
)

// Server serves one Graph backend. It is safe for concurrent use: the
// backend carries its own synchronization, the planner pointer is
// guarded here, and mutating requests are serialized against query
// evaluation (see reqMu) — unless the backend offers consistent
// snapshots (graph.Snapshotter, the delta overlay), in which case
// queries and updates run fully concurrently: each query pins one
// immutable version and updates never block readers.
type Server struct {
	g graph.Graph

	// snapshots records that g is a graph.Snapshotter, so request-level
	// writer exclusion is unnecessary.
	snapshots bool

	// reqMu orders whole requests: queries share it, mutations take it
	// exclusively. Query evaluation nests Match calls (the depth-first
	// bind join re-enters the store's read lock per pattern step), so a
	// store-level writer arriving between two nested read locks would
	// deadlock reader and writer; excluding writers for the duration of
	// a query removes that interleaving. Snapshot-capable backends skip
	// this lock entirely.
	reqMu sync.RWMutex

	mu sync.RWMutex
	pl *sparql.Planner

	// readOnly rejects every mutating endpoint with 403; set for WAL
	// replicas, whose state must come only from the followed log.
	readOnly bool

	// draining flips /readyz to 503 ahead of listener shutdown, so a
	// load balancer stops routing here while in-flight requests finish
	// (set via SetDraining; see cmd/hexserver's SIGTERM path).
	draining atomic.Bool

	// inflight, when non-nil, is the load-shedding semaphore: a request
	// that cannot take a slot immediately is rejected with 503 and
	// Retry-After instead of queueing without bound. Probes bypass it.
	inflight chan struct{}

	// reqTimeout bounds each non-probe request; 0 means unlimited.
	reqTimeout time.Duration

	// gov, when non-nil, governs /sparql: admission control, per-query
	// outcome counters, slow-query log (see govern.go). Governed query
	// traffic bypasses the generic inflight semaphore — the governor is
	// its replacement for this endpoint, with typed errors and a bounded
	// deadline-aware queue instead of immediate shedding.
	gov *govern.Governor

	// queryTimeout and memBudget bound each governed query (see
	// SetQueryLimits); zero values mean unlimited.
	queryTimeout time.Duration
	memBudget    int64

	// degradedCheck, when non-nil, reports the backend's sticky failure
	// state (a poisoned WAL, a failed compaction). A non-nil error fails
	// /readyz and sheds mutating requests with 503 — accepting a write
	// that cannot be made durable would be silent data loss.
	degradedCheck func() error

	// followers and maxLag feed replica readiness: /readyz fails while
	// any follower is degraded or has not heard from the leader within
	// maxLag.
	followers []*shard.Follower
	maxLag    time.Duration

	// Observability (see metrics.go): reg is the per-server metric
	// registry exposed on /metrics (merged with obs.Default, where the
	// storage packages publish); slowQuery mirrors the governor's
	// threshold so serveQuery knows to trace queries for the slow-query
	// log; pprof mounts net/http/pprof on the root mux when set.
	reg          *obs.Registry
	httpSeconds  *obs.HistogramVec
	httpRequests *obs.CounterVec
	slowQuery    time.Duration
	pprof        bool
}

// New returns a Server over the in-memory store st.
func New(st *core.Store) *Server { return NewGraph(graph.Memory(st)) }

// DefaultResultCacheBytes is the server's default result-cache budget.
// Small enough to be invisible next to the indexes, large enough that a
// hot read query's answer survives between repeats.
const DefaultResultCacheBytes = 32 << 20

// NewGraph returns a Server over any Graph backend. Both query caches
// are on by default (plan cache at sparql.DefaultPlanCacheSize, result
// cache at DefaultResultCacheBytes); SetPlanCacheSize and
// SetResultCacheBytes retune or disable them.
func NewGraph(g graph.Graph) *Server {
	_, snapshots := g.(graph.Snapshotter)
	pl := sparql.NewPlanner(g)
	pl.SetResultCacheBytes(DefaultResultCacheBytes)
	return &Server{g: g, snapshots: snapshots, pl: pl}
}

// SetPlanCacheSize resizes the planner's query-shape plan cache
// (entries; <= 0 disables it).
func (s *Server) SetPlanCacheSize(n int) { s.planner().SetPlanCacheSize(n) }

// SetResultCacheBytes resizes the planner's snapshot-epoch result cache
// (bytes; <= 0 disables it).
func (s *Server) SetResultCacheBytes(n int64) { s.planner().SetResultCacheBytes(n) }

// rlock acquires the shared request lock (no-op on snapshot backends)
// and returns the unlock.
func (s *Server) rlock() func() {
	if s.snapshots {
		return func() {}
	}
	s.reqMu.RLock()
	return s.reqMu.RUnlock
}

// wlock acquires the exclusive request lock (no-op on snapshot
// backends, which serialize writers internally without blocking
// readers) and returns the unlock.
func (s *Server) wlock() func() {
	if s.snapshots {
		return func() {}
	}
	s.reqMu.Lock()
	return s.reqMu.Unlock
}

// Graph returns the backend the server serves.
func (s *Server) Graph() graph.Graph { return s.g }

// SetReadOnly switches the mutating endpoints (/sparql update,
// /triples) between accepting writes and rejecting them with 403.
// Queries are unaffected. Replica servers (hexserver -follow) are
// read-only: their state converges from the leader's WAL, and a direct
// write would fork them from it.
func (s *Server) SetReadOnly(ro bool) { s.readOnly = ro }

// Handler returns the HTTP routing table:
//
//	GET/POST /sparql   query=<SELECT ...>       → application/sparql-results+json
//	POST     /sparql   update=<INSERT DATA ...> → {"inserted": n, "deleted": n}
//	                   (or body with Content-Type application/sparql-update)
//	POST     /triples  body: N-Triples|Turtle   → {"added": n} (Content-Type text/turtle selects Turtle)
//	GET      /stats                             → store statistics JSON
//	GET      /healthz                           → 200 ok (process liveness only)
//	GET      /readyz                            → 200 ready / 503 + reasons (see health.go)
//
// The data endpoints sit behind the resilience middleware: panic
// recovery (a crashing request answers 500 instead of killing the
// process), the per-request timeout, and the load-shedding semaphore.
// The probe endpoints bypass all three — a saturated or degraded
// server must still answer its health checks, since those are exactly
// the signals that pull it from rotation. Configure the middleware
// (SetMaxInflight, SetRequestTimeout, SetDegradedCheck, SetFollowers)
// before calling Handler.
func (s *Server) Handler() http.Handler {
	s.metricsInit()
	mux := http.NewServeMux()
	mux.HandleFunc("/sparql", s.instrument("/sparql", s.handleSPARQL))
	mux.HandleFunc("/triples", s.instrument("/triples", s.handleTriples))
	mux.HandleFunc("/stats", s.instrument("/stats", s.handleStats))

	var h http.Handler = mux
	if s.reqTimeout > 0 {
		h = http.TimeoutHandler(h, s.reqTimeout, `{"error":"request timed out"}`)
	}
	h = s.shedLoad(h)
	h = recoverPanics(h)

	root := http.NewServeMux()
	root.Handle("/", h)
	root.HandleFunc("/healthz", s.handleHealthz)
	root.HandleFunc("/readyz", s.handleReadyz)
	// /metrics sits beside the probes, outside the shedding middleware: a
	// saturated server must still be scrapable — that is when the metrics
	// matter most.
	root.Handle("/metrics", obs.Handler(s.reg, obs.Default))
	if s.pprof {
		mountPprof(root)
	}
	return root
}

// EnablePprof mounts net/http/pprof's profile endpoints under
// /debug/pprof/ on the next Handler call (the hexserver -pprof flag).
// Off by default: profiling endpoints expose internals and add
// overhead-on-demand, so they are strictly opt-in.
func (s *Server) EnablePprof() { s.pprof = true }

// planner returns the current planner snapshot.
func (s *Server) planner() *sparql.Planner {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pl
}

// refreshPlanner rebuilds statistics after mutations, in place: the
// planner's Refresh bumps its stats epoch (invalidating memoized plans)
// but keeps the cache structures and their hit/miss counters, so a
// stats refresh never looks like a cache restart in /metrics. On
// memory-backed graphs the rebuild reads index heads and is cheap, so
// it always runs. On other backends it costs a full scan, so it is
// skipped until the store has drifted ≥10% from the cached summary:
// stale statistics only degrade pattern ordering, never result
// correctness (and the result cache keys on the snapshot epoch, not on
// statistics, so it invalidates on the write itself either way).
func (s *Server) refreshPlanner() {
	if _, ok := graph.Unwrap(s.g).(*core.Store); !ok {
		built := s.planner().Stats().Triples
		drift := s.g.Len() - built
		if drift < 0 {
			drift = -drift
		}
		if built > 0 && drift*10 < built {
			return
		}
	}
	s.planner().Refresh()
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSPARQL(w http.ResponseWriter, r *http.Request) {
	var queryText, updateText string
	switch r.Method {
	case http.MethodGet:
		queryText = r.URL.Query().Get("query")
	case http.MethodPost:
		ct := r.Header.Get("Content-Type")
		switch {
		case strings.HasPrefix(ct, "application/sparql-query"),
			strings.HasPrefix(ct, "application/sparql-update"):
			body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
			if err != nil {
				httpError(w, http.StatusBadRequest, "read body: %v", err)
				return
			}
			if strings.HasPrefix(ct, "application/sparql-update") {
				updateText = string(body)
			} else {
				queryText = string(body)
			}
		default:
			if err := r.ParseForm(); err != nil {
				httpError(w, http.StatusBadRequest, "parse form: %v", err)
				return
			}
			queryText = r.Form.Get("query")
			updateText = r.Form.Get("update")
		}
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}

	if strings.TrimSpace(updateText) != "" {
		s.execUpdate(w, r, updateText)
		return
	}
	if strings.TrimSpace(queryText) == "" {
		httpError(w, http.StatusBadRequest, "missing query parameter")
		return
	}

	s.serveQuery(w, r, queryText)
}

// execUpdate applies a SPARQL UPDATE request and reports its effect. On
// an overlay backend the request is one atomic batch (single WAL group
// commit) and concurrent queries keep streaming from their snapshots.
// Updates share the governor's admission control with queries (one
// concurrency pool for the whole endpoint) and are checked against the
// request context at request granularity — a batch is never aborted
// half-applied.
func (s *Server) execUpdate(w http.ResponseWriter, r *http.Request, updateText string) {
	if s.readOnly {
		httpError(w, http.StatusForbidden, "read-only replica: updates must go to the leader")
		return
	}
	if s.shedDegradedWrite(w) {
		return
	}
	start := time.Now()
	release, err := s.gov.Acquire(r.Context())
	if err != nil {
		s.gov.Observe(updateText, time.Since(start), err, nil)
		s.writeQueryError(w, r, err)
		return
	}
	defer release()
	defer s.wlock()()
	res, err := sparql.ExecUpdateContext(r.Context(), s.g, updateText)
	s.gov.Observe(updateText, time.Since(start), err, nil)
	if err != nil {
		if _, ok := err.(*sparql.SyntaxError); ok {
			httpError(w, http.StatusBadRequest, "update: %v", err)
			return
		}
		s.writeQueryError(w, r, err)
		return
	}
	if res.Inserted > 0 || res.Deleted > 0 {
		if err := graph.Flush(s.g); err != nil {
			httpError(w, http.StatusInternalServerError, "flush: %v", err)
			return
		}
		s.refreshPlanner()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(res)
}

// resultsJSON renders a Result in the SPARQL 1.1 Query Results JSON
// format ({"head":{},"boolean":…} for ASK queries).
func resultsJSON(res *sparql.Result) map[string]any {
	if res.IsAsk {
		return map[string]any{
			"head":    map[string]any{},
			"boolean": res.Answer,
		}
	}
	bindings := make([]map[string]any, 0, len(res.Rows))
	for _, row := range res.Rows {
		b := make(map[string]any, len(row))
		for name, term := range row {
			var entry map[string]any
			switch term.Kind {
			case rdf.IRI:
				entry = map[string]any{"type": "uri", "value": term.Value}
			case rdf.Literal:
				entry = map[string]any{"type": "literal", "value": term.Value}
			case rdf.Blank:
				entry = map[string]any{"type": "bnode", "value": term.Value}
			}
			b[name] = entry
		}
		bindings = append(bindings, b)
	}
	return map[string]any{
		"head":    map[string]any{"vars": res.Vars},
		"results": map[string]any{"bindings": bindings},
	}
}

func (s *Server) handleTriples(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.readOnly {
		httpError(w, http.StatusForbidden, "read-only replica: ingestion must go to the leader")
		return
	}
	if s.shedDegradedWrite(w) {
		return
	}
	ct := r.Header.Get("Content-Type")
	body := io.LimitReader(r.Body, 256<<20)

	var (
		triples []rdf.Triple
		err     error
	)
	if strings.HasPrefix(ct, "text/turtle") {
		triples, err = rdf.NewTurtleReader(body).ReadAll()
	} else {
		triples, err = rdf.NewReader(body).ReadAll()
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "parse: %v", err)
		return
	}
	defer s.wlock()()
	// One batch: on a BatchUpdater backend (the delta overlay) the whole
	// ingest is a single WAL commit and version swap.
	ops := make([]graph.TripleOp, len(triples))
	for i, t := range triples {
		ops[i] = graph.TripleOp{T: t}
	}
	added, _, err := graph.ApplyTriples(s.g, ops)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "insert: %v", err)
		return
	}
	if added > 0 {
		if err := graph.Flush(s.g); err != nil {
			httpError(w, http.StatusInternalServerError, "flush: %v", err)
			return
		}
		s.refreshPlanner()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]int{"added": added, "total": s.g.Len()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	sum := s.planner().Stats()
	out := map[string]any{
		"triples":          s.g.Len(),
		"dictionaryTerms":  s.g.Dictionary().Len(),
		"distinctSubjects": sum.DistinctS,
		"distinctPreds":    sum.DistinctP,
		"distinctObjects":  sum.DistinctO,
	}
	// The query caches report their counters under one block (emitted
	// for every backend, sharded included): plan-cache occupancy and
	// hit/miss/eviction totals, result-cache bytes and totals, and how
	// often a write invalidated the resident result epoch.
	cs := s.planner().CacheStats()
	out["cache"] = map[string]any{
		"planCacheEnabled":     cs.PlanEnabled,
		"planCacheEntries":     cs.PlanEntries,
		"planCacheCapacity":    cs.PlanCapacity,
		"planCacheHits":        cs.PlanHits,
		"planCacheMisses":      cs.PlanMisses,
		"planCacheEvictions":   cs.PlanEvictions,
		"statsEpoch":           cs.StatsEpoch,
		"resultCacheEnabled":   cs.ResultEnabled,
		"resultCacheEntries":   cs.ResultEntries,
		"resultCacheBytes":     cs.ResultBytes,
		"resultCacheCapBytes":  cs.ResultCapBytes,
		"resultCacheHits":      cs.ResultHits,
		"resultCacheMisses":    cs.ResultMisses,
		"resultCacheEvictions": cs.ResultEvictions,
		"epochChurn":           cs.EpochChurn,
	}
	// The query governor reports its live and cumulative counters:
	// active/queued now, and admitted/rejected/canceled/budget-killed/
	// spilled-bytes/slow-query totals since start.
	if s.gov != nil {
		out["govern"] = s.gov.Stats()
	}
	// A sharded cluster reports the serving tier's layout: shard count
	// and one row per shard (triples, predicates routed there, delta
	// state). The per-store sections below are skipped — there is no
	// single main store to describe.
	if cl, ok := s.g.(*shard.Cluster); ok {
		cs := cl.Stats()
		out["shards"] = cs.Shards
		out["perShard"] = cs.PerShard
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
		return
	}
	// A delta overlay reports the live-update subsystem's state: delta
	// size, WAL footprint, compaction count. The index-layout stats
	// below then describe the overlay's main store.
	inner := s.g
	if ov, ok := s.g.(*delta.Overlay); ok {
		ds := ov.Stats()
		out["deltaAdds"] = ds.DeltaAdds
		out["deltaDels"] = ds.DeltaDels
		out["compactThreshold"] = ds.CompactThreshold
		out["compactions"] = ds.Compactions
		out["mainTriples"] = ds.MainTriples
		if ds.WALPath != "" {
			out["walBytes"] = ds.WALBytes
			out["walPath"] = ds.WALPath
		}
		inner = ov.Main()
	}
	// The in-memory Hexastore additionally reports its index layout,
	// the §4.1 space-expansion factor, and the physical footprint of
	// the block-compressed index layer: approximate heap bytes, bytes
	// per triple, and the compression ratio against the raw layout's
	// estimated cost for the same content.
	if st, ok := graph.Unwrap(inner).(*core.Store); ok {
		stats := st.Stats()
		out["headers"] = stats.Headers
		out["vectorEntries"] = stats.VectorEntries
		out["listEntries"] = stats.ListEntries
		out["expansionFactor"] = stats.ExpansionFactor()
		out["indexSizeBytes"] = stats.SizeBytes()
		is := st.IndexStats()
		out["indexBytes"] = is.Bytes
		out["indexBytesPerTriple"] = is.BytesPerTriple()
		out["indexCompressed"] = is.Compressed
		if is.Compressed && is.Bytes > 0 {
			out["compressionRatio"] = float64(core.EstimateRawIndexBytes(stats)) / float64(is.Bytes)
		}
	}
	// The disk backend reports its on-disk footprint (pagefile plus
	// dictionary sidecar) per triple.
	if st, ok := graph.Unwrap(inner).(*disk.Store); ok {
		if bytes, err := st.SizeBytes(); err == nil {
			out["diskBytes"] = bytes
			if n := st.Len(); n > 0 {
				out["diskBytesPerTriple"] = float64(bytes) / float64(n)
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}
