package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"hexastore/internal/core"
	"hexastore/internal/graph"
	"hexastore/internal/rdf"
)

func newTestServer(t *testing.T) (*httptest.Server, *core.Store) {
	t.Helper()
	st := core.New()
	st.AddTriple(rdf.T(rdf.NewIRI("http://ex/alice"), rdf.NewIRI("http://ex/knows"), rdf.NewIRI("http://ex/bob")))
	st.AddTriple(rdf.T(rdf.NewIRI("http://ex/bob"), rdf.NewIRI("http://ex/knows"), rdf.NewIRI("http://ex/carol")))
	ts := httptest.NewServer(New(st).Handler())
	t.Cleanup(ts.Close)
	return ts, st
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp.StatusCode
}

type sparqlResults struct {
	Head struct {
		Vars []string `json:"vars"`
	} `json:"head"`
	Results struct {
		Bindings []map[string]struct {
			Type  string `json:"type"`
			Value string `json:"value"`
		} `json:"bindings"`
	} `json:"results"`
}

func TestSPARQLGet(t *testing.T) {
	ts, _ := newTestServer(t)
	q := url.QueryEscape(`SELECT ?who WHERE { <http://ex/alice> <http://ex/knows> ?who }`)
	var res sparqlResults
	if code := getJSON(t, ts.URL+"/sparql?query="+q, &res); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(res.Results.Bindings) != 1 {
		t.Fatalf("bindings = %d, want 1", len(res.Results.Bindings))
	}
	if got := res.Results.Bindings[0]["who"].Value; got != "http://ex/bob" {
		t.Fatalf("who = %q", got)
	}
	if res.Results.Bindings[0]["who"].Type != "uri" {
		t.Fatalf("type = %q, want uri", res.Results.Bindings[0]["who"].Type)
	}
}

func TestSPARQLPostForm(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.PostForm(ts.URL+"/sparql", url.Values{
		"query": {`SELECT ?s WHERE { ?s <http://ex/knows> ?o }`},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res sparqlResults
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if len(res.Results.Bindings) != 2 {
		t.Fatalf("bindings = %d, want 2", len(res.Results.Bindings))
	}
}

func TestSPARQLPostRawQuery(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/sparql", "application/sparql-query",
		strings.NewReader(`SELECT ?s WHERE { ?s ?p ?o }`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res sparqlResults
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if len(res.Results.Bindings) != 2 {
		t.Fatalf("bindings = %d, want 2", len(res.Results.Bindings))
	}
}

func TestSPARQLMissingQuery(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/sparql")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestSPARQLSyntaxError(t *testing.T) {
	ts, _ := newTestServer(t)
	q := url.QueryEscape(`SELECT WHERE {`)
	resp, err := http.Get(ts.URL + "/sparql?query=" + q)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var e map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e["error"] == "" {
		t.Fatal("error body missing")
	}
}

func TestIngestNTriples(t *testing.T) {
	ts, st := newTestServer(t)
	body := `<http://ex/dave> <http://ex/knows> <http://ex/alice> .
<http://ex/dave> <http://ex/age> "33" .`
	resp, err := http.Post(ts.URL+"/triples", "application/n-triples", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["added"] != 2 {
		t.Fatalf("added = %d, want 2", out["added"])
	}
	if st.Len() != 4 {
		t.Fatalf("store Len = %d, want 4", st.Len())
	}
}

func TestIngestTurtle(t *testing.T) {
	ts, st := newTestServer(t)
	body := `@prefix ex: <http://ex/> .
ex:eve ex:knows ex:alice, ex:bob ; ex:age 28 .`
	resp, err := http.Post(ts.URL+"/triples", "text/turtle", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["added"] != 3 {
		t.Fatalf("added = %d, want 3", out["added"])
	}
	if st.Len() != 5 {
		t.Fatalf("store Len = %d, want 5", st.Len())
	}
	// Ingested data must be immediately queryable (planner refreshed).
	q := url.QueryEscape(`SELECT ?who WHERE { <http://ex/eve> <http://ex/knows> ?who }`)
	var res sparqlResults
	getJSON(t, ts.URL+"/sparql?query="+q, &res)
	if len(res.Results.Bindings) != 2 {
		t.Fatalf("post-ingest bindings = %d, want 2", len(res.Results.Bindings))
	}
}

func TestIngestParseErrorRejected(t *testing.T) {
	ts, st := newTestServer(t)
	before := st.Len()
	resp, err := http.Post(ts.URL+"/triples", "application/n-triples",
		strings.NewReader("this is not n-triples at all"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if st.Len() != before {
		t.Fatal("store mutated by rejected ingest")
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var out map[string]any
	if code := getJSON(t, ts.URL+"/stats", &out); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if out["triples"].(float64) != 2 {
		t.Fatalf("triples = %v, want 2", out["triples"])
	}
	if out["expansionFactor"].(float64) <= 0 {
		t.Fatalf("expansionFactor = %v", out["expansionFactor"])
	}
	if out["indexBytes"].(float64) <= 0 {
		t.Fatalf("indexBytes = %v", out["indexBytes"])
	}
	if out["indexBytesPerTriple"].(float64) <= 0 {
		t.Fatalf("indexBytesPerTriple = %v", out["indexBytesPerTriple"])
	}
	if _, ok := out["indexCompressed"].(bool); !ok {
		t.Fatalf("indexCompressed missing: %v", out["indexCompressed"])
	}
}

// TestStatsCompressionRatio checks a server over a compressed
// bulk-built store reports the compression ratio.
func TestStatsCompressionRatio(t *testing.T) {
	b := core.NewBuilder(nil)
	for i := 0; i < 500; i++ {
		b.AddTriple(rdf.T(
			rdf.NewIRI(fmt.Sprintf("s%d", i%23)),
			rdf.NewIRI(fmt.Sprintf("p%d", i%5)),
			rdf.NewIRI(fmt.Sprintf("o%d", i%31)),
		))
	}
	srv := NewGraph(graph.Memory(b.BuildParallel(1)))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var out map[string]any
	if code := getJSON(t, ts.URL+"/stats", &out); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if c, ok := out["indexCompressed"].(bool); !ok || !c {
		t.Fatalf("indexCompressed = %v, want true", out["indexCompressed"])
	}
	if r, ok := out["compressionRatio"].(float64); !ok || r < 1.5 {
		t.Fatalf("compressionRatio = %v, want >= 1.5", out["compressionRatio"])
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/triples")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /triples status = %d, want 405", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sparql", nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /sparql status = %d, want 405", resp2.StatusCode)
	}
}

func TestLiteralAndBlankRendering(t *testing.T) {
	st := core.New()
	st.AddTriple(rdf.T(rdf.NewBlank("b0"), rdf.NewIRI("http://ex/label"), rdf.NewLiteral("hello")))
	ts := httptest.NewServer(New(st).Handler())
	defer ts.Close()
	q := url.QueryEscape(`SELECT ?s ?o WHERE { ?s <http://ex/label> ?o }`)
	var res sparqlResults
	getJSON(t, ts.URL+"/sparql?query="+q, &res)
	if len(res.Results.Bindings) != 1 {
		t.Fatalf("bindings = %d", len(res.Results.Bindings))
	}
	b := res.Results.Bindings[0]
	if b["s"].Type != "bnode" || b["o"].Type != "literal" || b["o"].Value != "hello" {
		t.Fatalf("bindings = %+v", b)
	}
}

func TestAskQueryJSON(t *testing.T) {
	ts, _ := newTestServer(t)
	q := url.QueryEscape(`ASK { <http://ex/alice> <http://ex/knows> <http://ex/bob> }`)
	var out map[string]any
	if code := getJSON(t, ts.URL+"/sparql?query="+q, &out); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if out["boolean"] != true {
		t.Fatalf("boolean = %v, want true", out["boolean"])
	}
	q = url.QueryEscape(`ASK { <http://ex/bob> <http://ex/knows> <http://ex/alice> }`)
	getJSON(t, ts.URL+"/sparql?query="+q, &out)
	if out["boolean"] != false {
		t.Fatalf("boolean = %v, want false", out["boolean"])
	}
}
