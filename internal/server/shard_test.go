package server

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"hexastore/internal/shard"
)

func newClusterServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	cl, err := shard.OpenCluster(shard.Config{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	srv := NewGraph(cl)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

// TestClusterStatsEndpoint: /stats on a sharded backend reports the
// shard count and one row per shard, and updates land across shards.
func TestClusterStatsEndpoint(t *testing.T) {
	ts, _ := newClusterServer(t)
	resp, err := http.PostForm(ts.URL+"/sparql", url.Values{"update": {`INSERT DATA {
		<http://ex/a> <http://ex/p> <http://ex/b> .
		<http://ex/b> <http://ex/p> <http://ex/c> .
		<http://ex/c> <http://ex/p> <http://ex/d> }`}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update status = %d", resp.StatusCode)
	}

	var stats struct {
		Triples  int `json:"triples"`
		Shards   int `json:"shards"`
		PerShard []struct {
			Triples int `json:"triples"`
		} `json:"perShard"`
	}
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status = %d", code)
	}
	if stats.Shards != 3 || len(stats.PerShard) != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	sum := 0
	for _, row := range stats.PerShard {
		sum += row.Triples
	}
	if stats.Triples != 3 || sum != 3 {
		t.Fatalf("triples = %d, per-shard sum = %d, want 3", stats.Triples, sum)
	}
}

// TestReadOnlyRejectsWrites: a replica server answers queries but turns
// away updates and ingestion with 403.
func TestReadOnlyRejectsWrites(t *testing.T) {
	ts, srv := newClusterServer(t)
	srv.SetReadOnly(true)

	resp, err := http.PostForm(ts.URL+"/sparql", url.Values{"update": {`INSERT DATA { <a> <p> <b> }`}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("update on read-only replica: status = %d, want 403", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/triples", "application/n-triples",
		strings.NewReader("<http://ex/a> <http://ex/p> <http://ex/b> .\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("ingest on read-only replica: status = %d, want 403", resp.StatusCode)
	}

	var res sparqlResults
	if code := getJSON(t, ts.URL+"/sparql?query="+url.QueryEscape("SELECT ?s WHERE { ?s ?p ?o }"), &res); code != http.StatusOK {
		t.Fatalf("query on read-only replica: status = %d", code)
	}
}
