package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"hexastore/internal/core"
	"hexastore/internal/disk"
	"hexastore/internal/graph"
	"hexastore/internal/triplestore"
)

// updateBackends returns an httptest server per storage engine, all
// empty, so the INSERT → SELECT → DELETE round-trip can be verified
// end-to-end over HTTP against every backend.
func updateBackends(t *testing.T) map[string]*httptest.Server {
	t.Helper()
	ds, err := disk.Create(t.TempDir(), disk.Options{CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	out := make(map[string]*httptest.Server)
	for name, g := range map[string]graph.Graph{
		"memory":   graph.Memory(core.New()),
		"disk":     graph.Disk(ds),
		"baseline": graph.Baseline(triplestore.New(nil)),
	} {
		ts := httptest.NewServer(NewGraph(g).Handler())
		t.Cleanup(ts.Close)
		out[name] = ts
	}
	return out
}

func postUpdate(t *testing.T, base, update string, viaForm bool) map[string]int {
	t.Helper()
	var (
		resp *http.Response
		err  error
	)
	if viaForm {
		resp, err = http.PostForm(base+"/sparql", url.Values{"update": {update}})
	} else {
		resp, err = http.Post(base+"/sparql", "application/sparql-update", strings.NewReader(update))
	}
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update status = %d", resp.StatusCode)
	}
	var out map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func selectValues(t *testing.T, base, query, v string) []string {
	t.Helper()
	var res sparqlResults
	if code := getJSON(t, base+"/sparql?query="+url.QueryEscape(query), &res); code != http.StatusOK {
		t.Fatalf("query status = %d", code)
	}
	var vals []string
	for _, b := range res.Results.Bindings {
		vals = append(vals, b[v].Value)
	}
	return vals
}

// TestUpdateRoundTripAllBackends drives INSERT DATA → SELECT →
// DELETE DATA → SELECT over HTTP against each backend.
func TestUpdateRoundTripAllBackends(t *testing.T) {
	insert := `PREFIX ex: <http://ex/>
		INSERT DATA { ex:alice ex:knows ex:bob . ex:alice ex:knows ex:carol }`
	sel := `SELECT ?who WHERE { <http://ex/alice> <http://ex/knows> ?who }`
	del := `PREFIX ex: <http://ex/> DELETE DATA { ex:alice ex:knows ex:bob }`

	for name, ts := range updateBackends(t) {
		t.Run(name, func(t *testing.T) {
			out := postUpdate(t, ts.URL, insert, false)
			if out["inserted"] != 2 || out["deleted"] != 0 {
				t.Fatalf("insert result = %v", out)
			}
			vals := selectValues(t, ts.URL, sel, "who")
			if len(vals) != 2 {
				t.Fatalf("post-insert rows = %v", vals)
			}
			out = postUpdate(t, ts.URL, del, true) // form-encoded this time
			if out["deleted"] != 1 {
				t.Fatalf("delete result = %v", out)
			}
			vals = selectValues(t, ts.URL, sel, "who")
			if len(vals) != 1 || vals[0] != "http://ex/carol" {
				t.Fatalf("post-delete rows = %v", vals)
			}
		})
	}
}

// TestUpdateSyntaxErrorRejected ensures malformed updates return 400
// without mutating the store.
func TestUpdateSyntaxErrorRejected(t *testing.T) {
	ts, st := newTestServer(t)
	before := st.Len()
	resp, err := http.Post(ts.URL+"/sparql", "application/sparql-update",
		strings.NewReader(`INSERT { missing data keyword }`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if st.Len() != before {
		t.Fatal("store mutated by rejected update")
	}
}

// TestConcurrentQueriesAndUpdates hammers one server with parallel
// SELECTs and UPDATEs. Queries nest store read locks per join step, so
// without request-level writer exclusion a concurrent writer deadlocks
// the store; this test (run with -race in CI) guards that path.
func TestConcurrentQueriesAndUpdates(t *testing.T) {
	ds, err := disk.Create(t.TempDir(), disk.Options{CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	ts := httptest.NewServer(NewGraph(graph.Disk(ds)).Handler())
	t.Cleanup(ts.Close)

	postUpdate(t, ts.URL, `PREFIX ex: <http://ex/>
		INSERT DATA { ex:a ex:knows ex:b . ex:b ex:knows ex:c }`, false)

	done := make(chan error, 2)
	go func() {
		for i := 0; i < 25; i++ {
			upd := `PREFIX ex: <http://ex/> INSERT DATA { ex:a ex:knows ex:x } ; DELETE DATA { ex:a ex:knows ex:x }`
			resp, err := http.PostForm(ts.URL+"/sparql", url.Values{"update": {upd}})
			if err != nil {
				done <- err
				return
			}
			resp.Body.Close()
		}
		done <- nil
	}()
	go func() {
		q := url.QueryEscape(`SELECT ?x ?z WHERE { ?x <http://ex/knows> ?y . ?y <http://ex/knows> ?z }`)
		for i := 0; i < 50; i++ {
			resp, err := http.Get(ts.URL + "/sparql?query=" + q)
			if err != nil {
				done <- err
				return
			}
			resp.Body.Close()
		}
		done <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestQueryAllBackends runs the same query through servers over all
// three backends after identical ingestion via /triples.
func TestQueryAllBackends(t *testing.T) {
	body := `<http://ex/a> <http://ex/p> <http://ex/b> .
<http://ex/b> <http://ex/p> <http://ex/c> .`
	q := `SELECT ?x ?z WHERE { ?x <http://ex/p> ?y . ?y <http://ex/p> ?z }`
	for name, ts := range updateBackends(t) {
		t.Run(name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/triples", "application/n-triples", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			vals := selectValues(t, ts.URL, q, "z")
			if len(vals) != 1 || vals[0] != "http://ex/c" {
				t.Fatalf("rows = %v", vals)
			}
			// Stats must work on every backend.
			var stats map[string]any
			if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
				t.Fatalf("stats status = %d", code)
			}
			if stats["triples"].(float64) != 2 {
				t.Fatalf("stats triples = %v", stats["triples"])
			}
		})
	}
}
