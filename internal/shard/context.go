package shard

import (
	"context"

	"hexastore/internal/dictionary"
	"hexastore/internal/graph"
	"hexastore/internal/obs"
)

// ctxView wraps a pinned cluster view with a context: every operation
// checks the context on entry, and streaming operations re-check it
// every ctxCheckEvery emitted elements. This is the cluster's side of
// the graph.ContextAware seam — a canceled query must stop the
// scatter-gather merges *inside* one Match or AppendSortedList call,
// because a single cluster-wide scan can run for the whole query while
// the evaluator never gets a gap to notice cancellation in.
//
// A callback returning false already stops gatherMerge's producers
// without leaks (the shared done channel), so the wrapper's streaming
// checks simply return false into that protocol and surface ctx.Err()
// afterwards.
type ctxView struct {
	v   *view
	ctx context.Context
}

// ctxCheckEvery is the streaming check interval: one check per 128
// emitted elements, matching the evaluator's block granularity.
const ctxCheckEvery = 128

// WithContext implements graph.ContextAware on the pinned view. When
// the context carries an execution trace (obs.NewContext — the SPARQL
// evaluator plants one for EXPLAIN ANALYZE and slow-query capture), the
// wrapper works on a shallow copy of the view that records per-shard
// scanned/pruned stream counts into that trace; the shared pinned view
// itself stays trace-free.
func (v *view) WithContext(ctx context.Context) graph.Graph {
	if ctx == nil {
		return v
	}
	vv := v
	if sp := obs.FromContext(ctx); sp != nil && v.tr == nil {
		cp := *v
		cp.tr = newShardTrace(sp, len(v.shards))
		vv = &cp
	}
	return &ctxView{v: vv, ctx: ctx}
}

// WithContext re-anchors an already-wrapped view to a new context.
func (cv *ctxView) WithContext(ctx context.Context) graph.Graph {
	return cv.v.WithContext(ctx)
}

func (cv *ctxView) Dictionary() *dictionary.Dictionary { return cv.v.Dictionary() }
func (cv *ctxView) Len() int                           { return cv.v.Len() }

// Snapshot returns the wrapper itself: the underlying view is already
// an immutable pin.
func (cv *ctxView) Snapshot() graph.Graph { return cv }

func (cv *ctxView) Add(s, p, o ID) (bool, error)    { return false, ErrReadOnly }
func (cv *ctxView) Remove(s, p, o ID) (bool, error) { return false, ErrReadOnly }

func (cv *ctxView) Has(s, p, o ID) (bool, error) {
	if err := cv.ctx.Err(); err != nil {
		return false, err
	}
	return cv.v.Has(s, p, o)
}

func (cv *ctxView) Count(s, p, o ID) (int, error) {
	if err := cv.ctx.Err(); err != nil {
		return 0, err
	}
	return cv.v.Count(s, p, o)
}

func (cv *ctxView) Match(s, p, o ID, fn func(s, p, o ID) bool) error {
	if err := cv.ctx.Err(); err != nil {
		return err
	}
	tick := 0
	err := cv.v.Match(s, p, o, func(ms, mp, mo ID) bool {
		if tick++; tick%ctxCheckEvery == 0 && cv.ctx.Err() != nil {
			return false
		}
		return fn(ms, mp, mo)
	})
	if err != nil {
		return err
	}
	return cv.ctx.Err()
}

func (cv *ctxView) AppendSortedList(dst []ID, s, p, o ID) ([]ID, error) {
	if err := cv.ctx.Err(); err != nil {
		return dst, err
	}
	return cv.v.AppendSortedList(dst, s, p, o)
}

func (cv *ctxView) SortedPairs(s, p, o ID, fn func(a, b ID) bool) error {
	if err := cv.ctx.Err(); err != nil {
		return err
	}
	tick := 0
	err := cv.v.SortedPairs(s, p, o, func(a, b ID) bool {
		if tick++; tick%ctxCheckEvery == 0 && cv.ctx.Err() != nil {
			return false
		}
		return fn(a, b)
	})
	if err != nil {
		return err
	}
	return cv.ctx.Err()
}
