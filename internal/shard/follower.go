package shard

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"hexastore/internal/graph"
	"hexastore/internal/rdf"
	"hexastore/internal/wal"
)

// Follower tails one shard's write-ahead log and replays it into its
// own graph — the read-replica primitive. The leader's WAL records
// carry RDF term keys, not dictionary ids, so the follower re-encodes
// terms into its own dictionary in log order; because both sides
// encode the same term sequence in the same order, a caught-up
// follower's store is id-for-id identical to the leader shard (its
// snapshot bytes match, which is how the tests assert convergence).
//
// File mode tails the log by path (same machine or shared filesystem);
// TCP mode (NewTCPFollower) streams frames from a leader running
// ServeWAL. If the leader checkpoints, the log is truncated: a
// caught-up follower lost nothing (every truncated record was already
// replayed here) and resumes from the new log; a follower that was
// behind has lost the truncated window and reports it via
// Stats().Resets — re-seed such a replica from a leader snapshot.
type Follower struct {
	dst         graph.Graph
	path        string // file mode
	addr        string // TCP mode leader address ("" = file mode)
	shard       int    // TCP mode shard index
	poll        time.Duration
	batchSz     int
	beforeApply func(ops []graph.TripleOp)

	backoffMin  time.Duration
	backoffMax  time.Duration
	dialTimeout time.Duration
	readTimeout time.Duration
	maxFailures int

	mu          sync.Mutex
	offset      int64 // leader-log offset of the first unconsumed byte
	applied     int64 // records replayed
	resets      int64 // truncation events observed
	consecFails int   // consecutive failed TCP attempts since the last good handshake
	degraded    bool  // sticky: the retry cap was hit; reconnects stopped
	connected   bool  // a TCP stream is currently established
	lastContact time.Time
	lastErr     error

	stop chan struct{}
	wg   sync.WaitGroup
}

// FollowerOptions tune a Follower.
type FollowerOptions struct {
	// Poll is the tail poll interval (default 100ms).
	Poll time.Duration
	// BatchSize caps the ops per replay batch (default 4096) so one
	// giant catch-up does not turn into one giant overlay commit.
	BatchSize int
	// BeforeApply, when non-nil, runs on every batch just before it is
	// applied. A replica cluster uses it to keep its read router's
	// predicate presence in sync (Cluster.NotePredicates).
	BeforeApply func(ops []graph.TripleOp)

	// BackoffMin and BackoffMax bound the TCP reconnect backoff: the
	// delay after the n-th consecutive failure is
	// min(BackoffMax, BackoffMin·2ⁿ⁻¹), jittered ±50% so a fleet of
	// replicas does not reconnect in lockstep. Defaults 100ms and 15s.
	BackoffMin time.Duration
	BackoffMax time.Duration

	// MaxFailures caps consecutive failed TCP connection attempts:
	// reaching it puts the follower into the sticky degraded state — no
	// further reconnects, Stats().Degraded set — until Resume is called.
	// A replica that cannot reach its leader is serving unboundedly
	// stale reads; going visibly degraded lets the health endpoint pull
	// it from rotation instead of silently thrashing. 0 means the
	// default (10); negative retries forever.
	MaxFailures int

	// DialTimeout bounds each TCP connection attempt (default 5s).
	DialTimeout time.Duration

	// ReadTimeout is the per-read deadline on an established stream.
	// The leader sends a keepalive byte when idle, so an expiry means
	// the leader is stalled or the network is dead — the follower
	// reconnects (with backoff) rather than blocking forever. It must
	// exceed the leader's keepalive interval (ShipOptions.Keepalive);
	// the default is 10s against a 1s keepalive.
	ReadTimeout time.Duration
}

func (o FollowerOptions) poll() time.Duration {
	if o.Poll <= 0 {
		return 100 * time.Millisecond
	}
	return o.Poll
}

func (o FollowerOptions) batch() int {
	if o.BatchSize <= 0 {
		return 4096
	}
	return o.BatchSize
}

func (o FollowerOptions) backoffMin() time.Duration {
	if o.BackoffMin <= 0 {
		return 100 * time.Millisecond
	}
	return o.BackoffMin
}

func (o FollowerOptions) backoffMax() time.Duration {
	if o.BackoffMax <= 0 {
		return 15 * time.Second
	}
	return o.BackoffMax
}

func (o FollowerOptions) maxFailures() int {
	if o.MaxFailures == 0 {
		return 10
	}
	return o.MaxFailures
}

func (o FollowerOptions) dialTimeout() time.Duration {
	if o.DialTimeout <= 0 {
		return 5 * time.Second
	}
	return o.DialTimeout
}

func (o FollowerOptions) readTimeout() time.Duration {
	if o.ReadTimeout <= 0 {
		return 10 * time.Second
	}
	return o.ReadTimeout
}

// NewFollower tails the write-ahead log at walPath into dst.
func NewFollower(dst graph.Graph, walPath string, opts FollowerOptions) *Follower {
	return &Follower{
		dst:         dst,
		path:        walPath,
		poll:        opts.poll(),
		batchSz:     opts.batch(),
		beforeApply: opts.BeforeApply,
		backoffMin:  opts.backoffMin(),
		backoffMax:  opts.backoffMax(),
		dialTimeout: opts.dialTimeout(),
		readTimeout: opts.readTimeout(),
		maxFailures: opts.maxFailures(),
		stop:        make(chan struct{}),
	}
}

// NewTCPFollower streams shard's log from a leader serving ServeWAL at
// addr into dst.
func NewTCPFollower(dst graph.Graph, addr string, shard int, opts FollowerOptions) *Follower {
	f := NewFollower(dst, "", opts)
	f.addr = addr
	f.shard = shard
	return f
}

// FollowerStats is a snapshot of replication progress and connectivity.
type FollowerStats struct {
	// Offset is the leader-log offset of the next byte to consume.
	Offset int64 `json:"offset"`
	// Applied is the number of records replayed so far.
	Applied int64 `json:"applied"`
	// Resets counts leader checkpoints observed (log truncations).
	Resets int64 `json:"resets"`
	// Connected reports an established TCP stream (false between
	// reconnect attempts; always false in file mode).
	Connected bool `json:"connected"`
	// Degraded reports the sticky state entered when MaxFailures
	// consecutive connection attempts failed; the follower has stopped
	// reconnecting and a replica serving from it is unboundedly stale.
	Degraded bool `json:"degraded"`
	// ConsecutiveFailures counts TCP attempts since the last successful
	// handshake.
	ConsecutiveFailures int `json:"consecutiveFailures"`
	// LagSeconds is the time since the follower last heard from the
	// leader (a frame or a keepalive) — the observable replica-lag
	// proxy: the replica can be behind by at most what the leader wrote
	// in this window. Negative when there has been no contact yet.
	LagSeconds float64 `json:"lagSeconds"`
	// LastError is the most recent replay or connection error, if any.
	LastError string `json:"lastError,omitempty"`
}

// Stats returns replication progress and connectivity counters.
func (f *Follower) Stats() FollowerStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FollowerStats{
		Offset:              f.offset,
		Applied:             f.applied,
		Resets:              f.resets,
		Connected:           f.connected,
		Degraded:            f.degraded,
		ConsecutiveFailures: f.consecFails,
		LagSeconds:          -1,
	}
	if !f.lastContact.IsZero() {
		st.LagSeconds = time.Since(f.lastContact).Seconds()
	}
	if f.lastErr != nil {
		st.LastError = f.lastErr.Error()
	}
	return st
}

// Degraded reports the sticky degraded state (see
// FollowerOptions.MaxFailures).
func (f *Follower) Degraded() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.degraded
}

// Resume clears the sticky degraded state, letting the running loop
// attempt to reconnect again (with the backoff restarting from its
// minimum). An operator calls this after repairing the leader.
func (f *Follower) Resume() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.degraded = false
	f.consecFails = 0
}

// touchContact records that the leader was heard from just now. Called
// on handshake completion, on every received frame batch, and on
// keepalives.
func (f *Follower) touchContact() {
	f.mu.Lock()
	f.lastContact = time.Now()
	f.mu.Unlock()
}

// CatchUp synchronously replays every record currently in the log
// (file mode only) and returns the number applied. Safe to call
// concurrently with a running poll loop; replay is serialized.
func (f *Follower) CatchUp() (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.catchUpLocked()
}

func (f *Follower) catchUpLocked() (int, error) {
	if f.addr != "" {
		return 0, errors.New("shard: CatchUp is file-mode only; TCP followers stream via Start")
	}
	total := 0
	for {
		var recs []wal.Record
		newOff, err := wal.Tail(f.path, f.offset, func(r wal.Record) error {
			if r.Op == wal.OpCommit {
				return nil // marker: its bytes are in newOff, no triple to apply
			}
			recs = append(recs, r)
			return nil
		})
		switch {
		case errors.Is(err, wal.ErrTruncated):
			f.offset = newOff // wal.HeaderSize
			f.resets++
			continue // the truncated log may already hold new records
		case err != nil && os.IsNotExist(err):
			return total, nil // leader has not created the log yet
		case err != nil && errors.Is(err, os.ErrNotExist):
			return total, nil
		case err != nil:
			f.lastErr = err
			return total, err
		}
		if len(recs) == 0 {
			// A successful read of the log — even an empty one — is
			// leader contact in file mode: the log is reachable and we
			// are provably caught up to its current end.
			f.lastContact = time.Now()
			f.offset = newOff
			return total, nil
		}
		n, aerr := f.applyLocked(recs)
		total += n
		if aerr != nil {
			// Offset not advanced: the next CatchUp re-reads from the
			// same point. Replaying an already-applied prefix is safe —
			// each triple's final state is decided by its last op, so a
			// doubled prefix converges to the same store.
			f.lastErr = aerr
			return total, aerr
		}
		f.offset = newOff
	}
}

// applyLocked replays records in order, in batches of at most batchSz.
func (f *Follower) applyLocked(recs []wal.Record) (int, error) {
	applied := 0
	for len(recs) > 0 {
		chunk := recs
		if len(chunk) > f.batchSz {
			chunk = chunk[:f.batchSz]
		}
		recs = recs[len(chunk):]
		ops := make([]graph.TripleOp, 0, len(chunk))
		for _, r := range chunk {
			op, err := recordOp(r)
			if err != nil {
				return applied, err
			}
			ops = append(ops, op)
		}
		if f.beforeApply != nil {
			f.beforeApply(ops)
		}
		if _, _, err := graph.ApplyTriples(f.dst, ops); err != nil {
			return applied, err
		}
		applied += len(ops)
	}
	f.applied += int64(applied)
	return applied, nil
}

// recordOp decodes a WAL record into a triple operation.
func recordOp(r wal.Record) (graph.TripleOp, error) {
	s, err := rdf.TermFromKey(r.S)
	if err != nil {
		return graph.TripleOp{}, fmt.Errorf("shard: follower: %w", err)
	}
	p, err := rdf.TermFromKey(r.P)
	if err != nil {
		return graph.TripleOp{}, fmt.Errorf("shard: follower: %w", err)
	}
	o, err := rdf.TermFromKey(r.O)
	if err != nil {
		return graph.TripleOp{}, fmt.Errorf("shard: follower: %w", err)
	}
	return graph.TripleOp{
		Del: r.Op == wal.OpRemove,
		T:   rdf.Triple{Subject: s, Predicate: p, Object: o},
	}, nil
}

// Start launches the background replication loop. File mode polls the
// log; TCP mode maintains a streaming connection (reconnecting with
// backoff). Stop with Close.
func (f *Follower) Start() {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		if f.addr != "" {
			f.runTCP()
			return
		}
		ticker := time.NewTicker(f.poll)
		defer ticker.Stop()
		for {
			select {
			case <-f.stop:
				return
			case <-ticker.C:
				f.CatchUp() //nolint:errcheck // recorded in lastErr, retried next tick
			}
		}
	}()
}

// Close stops the replication loop and returns the last replay error.
func (f *Follower) Close() error {
	select {
	case <-f.stop:
	default:
		close(f.stop)
	}
	f.wg.Wait()
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastErr
}
