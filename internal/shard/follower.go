package shard

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"hexastore/internal/graph"
	"hexastore/internal/rdf"
	"hexastore/internal/wal"
)

// Follower tails one shard's write-ahead log and replays it into its
// own graph — the read-replica primitive. The leader's WAL records
// carry RDF term keys, not dictionary ids, so the follower re-encodes
// terms into its own dictionary in log order; because both sides
// encode the same term sequence in the same order, a caught-up
// follower's store is id-for-id identical to the leader shard (its
// snapshot bytes match, which is how the tests assert convergence).
//
// File mode tails the log by path (same machine or shared filesystem);
// TCP mode (NewTCPFollower) streams frames from a leader running
// ServeWAL. If the leader checkpoints, the log is truncated: a
// caught-up follower lost nothing (every truncated record was already
// replayed here) and resumes from the new log; a follower that was
// behind has lost the truncated window and reports it via
// Stats().Resets — re-seed such a replica from a leader snapshot.
type Follower struct {
	dst         graph.Graph
	path        string // file mode
	addr        string // TCP mode leader address ("" = file mode)
	shard       int    // TCP mode shard index
	poll        time.Duration
	batchSz     int
	beforeApply func(ops []graph.TripleOp)

	mu      sync.Mutex
	offset  int64 // leader-log offset of the first unconsumed byte
	applied int64 // records replayed
	resets  int64 // truncation events observed
	lastErr error

	stop chan struct{}
	wg   sync.WaitGroup
}

// FollowerOptions tune a Follower.
type FollowerOptions struct {
	// Poll is the tail poll interval (default 100ms).
	Poll time.Duration
	// BatchSize caps the ops per replay batch (default 4096) so one
	// giant catch-up does not turn into one giant overlay commit.
	BatchSize int
	// BeforeApply, when non-nil, runs on every batch just before it is
	// applied. A replica cluster uses it to keep its read router's
	// predicate presence in sync (Cluster.NotePredicates).
	BeforeApply func(ops []graph.TripleOp)
}

func (o FollowerOptions) poll() time.Duration {
	if o.Poll <= 0 {
		return 100 * time.Millisecond
	}
	return o.Poll
}

func (o FollowerOptions) batch() int {
	if o.BatchSize <= 0 {
		return 4096
	}
	return o.BatchSize
}

// NewFollower tails the write-ahead log at walPath into dst.
func NewFollower(dst graph.Graph, walPath string, opts FollowerOptions) *Follower {
	return &Follower{
		dst:         dst,
		path:        walPath,
		poll:        opts.poll(),
		batchSz:     opts.batch(),
		beforeApply: opts.BeforeApply,
		stop:        make(chan struct{}),
	}
}

// NewTCPFollower streams shard's log from a leader serving ServeWAL at
// addr into dst.
func NewTCPFollower(dst graph.Graph, addr string, shard int, opts FollowerOptions) *Follower {
	f := NewFollower(dst, "", opts)
	f.addr = addr
	f.shard = shard
	return f
}

// FollowerStats is a snapshot of replication progress.
type FollowerStats struct {
	// Offset is the leader-log offset of the next byte to consume.
	Offset int64 `json:"offset"`
	// Applied is the number of records replayed so far.
	Applied int64 `json:"applied"`
	// Resets counts leader checkpoints observed (log truncations).
	Resets int64 `json:"resets"`
	// LastError is the most recent replay error, if any.
	LastError string `json:"lastError,omitempty"`
}

// Stats returns replication progress counters.
func (f *Follower) Stats() FollowerStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FollowerStats{Offset: f.offset, Applied: f.applied, Resets: f.resets}
	if f.lastErr != nil {
		st.LastError = f.lastErr.Error()
	}
	return st
}

// CatchUp synchronously replays every record currently in the log
// (file mode only) and returns the number applied. Safe to call
// concurrently with a running poll loop; replay is serialized.
func (f *Follower) CatchUp() (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.catchUpLocked()
}

func (f *Follower) catchUpLocked() (int, error) {
	if f.addr != "" {
		return 0, errors.New("shard: CatchUp is file-mode only; TCP followers stream via Start")
	}
	total := 0
	for {
		var recs []wal.Record
		newOff, err := wal.Tail(f.path, f.offset, func(r wal.Record) error {
			recs = append(recs, r)
			return nil
		})
		switch {
		case errors.Is(err, wal.ErrTruncated):
			f.offset = newOff // wal.HeaderSize
			f.resets++
			continue // the truncated log may already hold new records
		case err != nil && os.IsNotExist(err):
			return total, nil // leader has not created the log yet
		case err != nil && errors.Is(err, os.ErrNotExist):
			return total, nil
		case err != nil:
			f.lastErr = err
			return total, err
		}
		if len(recs) == 0 {
			return total, nil
		}
		n, aerr := f.applyLocked(recs)
		total += n
		if aerr != nil {
			// Offset not advanced: the next CatchUp re-reads from the
			// same point. Replaying an already-applied prefix is safe —
			// each triple's final state is decided by its last op, so a
			// doubled prefix converges to the same store.
			f.lastErr = aerr
			return total, aerr
		}
		f.offset = newOff
	}
}

// applyLocked replays records in order, in batches of at most batchSz.
func (f *Follower) applyLocked(recs []wal.Record) (int, error) {
	applied := 0
	for len(recs) > 0 {
		chunk := recs
		if len(chunk) > f.batchSz {
			chunk = chunk[:f.batchSz]
		}
		recs = recs[len(chunk):]
		ops := make([]graph.TripleOp, 0, len(chunk))
		for _, r := range chunk {
			op, err := recordOp(r)
			if err != nil {
				return applied, err
			}
			ops = append(ops, op)
		}
		if f.beforeApply != nil {
			f.beforeApply(ops)
		}
		if _, _, err := graph.ApplyTriples(f.dst, ops); err != nil {
			return applied, err
		}
		applied += len(ops)
	}
	f.applied += int64(applied)
	return applied, nil
}

// recordOp decodes a WAL record into a triple operation.
func recordOp(r wal.Record) (graph.TripleOp, error) {
	s, err := rdf.TermFromKey(r.S)
	if err != nil {
		return graph.TripleOp{}, fmt.Errorf("shard: follower: %w", err)
	}
	p, err := rdf.TermFromKey(r.P)
	if err != nil {
		return graph.TripleOp{}, fmt.Errorf("shard: follower: %w", err)
	}
	o, err := rdf.TermFromKey(r.O)
	if err != nil {
		return graph.TripleOp{}, fmt.Errorf("shard: follower: %w", err)
	}
	return graph.TripleOp{
		Del: r.Op == wal.OpRemove,
		T:   rdf.Triple{Subject: s, Predicate: p, Object: o},
	}, nil
}

// Start launches the background replication loop. File mode polls the
// log; TCP mode maintains a streaming connection (reconnecting with
// backoff). Stop with Close.
func (f *Follower) Start() {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		if f.addr != "" {
			f.runTCP()
			return
		}
		ticker := time.NewTicker(f.poll)
		defer ticker.Stop()
		for {
			select {
			case <-f.stop:
				return
			case <-ticker.C:
				f.CatchUp() //nolint:errcheck // recorded in lastErr, retried next tick
			}
		}
	}()
}

// Close stops the replication loop and returns the last replay error.
func (f *Follower) Close() error {
	select {
	case <-f.stop:
	default:
		close(f.stop)
	}
	f.wg.Wait()
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastErr
}
